package arch

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestColumnsArePowersOfTwo(t *testing.T) {
	check := func(bwTenths uint16, freqMHz uint16) bool {
		c := ChipSpec{
			PEBudget:         4096,
			MemBandwidthGBps: float64(bwTenths%2000)/10 + 0.1,
			FrequencyMHz:     float64(freqMHz%2000) + 1,
		}
		cols := c.Columns()
		if cols < 1 || cols > c.PEBudget {
			return false
		}
		return cols&(cols-1) == 0 // power of two
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestColumnsNeverExceedWordRate(t *testing.T) {
	c := ChipSpec{PEBudget: 10000, MemBandwidthGBps: 76.8, FrequencyMHz: 150}
	words := c.MemBandwidthGBps * 1e9 / (c.FrequencyMHz * 1e6 * WordBytes)
	if float64(c.Columns()) > words {
		t.Errorf("columns %d exceed the %f words/cycle the memory delivers", c.Columns(), words)
	}
}

func TestRowLimitRespectsBothBounds(t *testing.T) {
	noCap := ChipSpec{PEBudget: 1024, MemBandwidthGBps: 25.6, FrequencyMHz: 100} // 64 cols
	if r := noCap.RowLimit(); r != 16 {
		t.Errorf("row limit = %d, want 16", r)
	}
	capped := noCap
	capped.MaxRows = 5
	if r := capped.RowLimit(); r != 5 {
		t.Errorf("capped row limit = %d, want 5", r)
	}
}

func TestPaperPlatformConstants(t *testing.T) {
	// Table 2 cross-checks.
	if arch := UltraScalePlus; arch.PEBudget != 6840 || arch.TDPWatts != 42 || arch.FrequencyMHz != 150 {
		t.Errorf("UltraScale+ = %+v", arch)
	}
	if PASICF.PEBudget != 768 || PASICF.AreaMM2 != 29 || PASICF.TDPWatts != 11 {
		t.Errorf("P-ASIC-F = %+v", PASICF)
	}
	if PASICG.PEBudget != 2880 || PASICG.AreaMM2 != 105 || PASICG.TDPWatts != 37 {
		t.Errorf("P-ASIC-G = %+v", PASICG)
	}
	// Both P-ASICs run at 1 GHz, 45 nm.
	for _, c := range []ChipSpec{PASICF, PASICG} {
		if c.FrequencyMHz != 1000 || c.TechnologyNM != 45 || c.Kind != PASIC {
			t.Errorf("%s = %+v", c.Name, c)
		}
	}
}

func TestCyclesToSeconds(t *testing.T) {
	c := ChipSpec{FrequencyMHz: 150}
	if s := c.CyclesToSeconds(150e6); s != 1 {
		t.Errorf("150M cycles at 150 MHz = %g s", s)
	}
}

func TestPlanAccounting(t *testing.T) {
	p := Plan{Chip: UltraScalePlus, Columns: 128, Threads: 4, RowsPerThread: 8}
	if p.PEsPerThread() != 1024 || p.TotalRows() != 32 || p.TotalPEs() != 4096 {
		t.Errorf("plan accounting: %d/%d/%d", p.PEsPerThread(), p.TotalRows(), p.TotalPEs())
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if s := p.String(); !strings.Contains(s, "T4×R32") {
		t.Errorf("String() = %q", s)
	}
}

func TestPlanValidateRejectsOverflow(t *testing.T) {
	over := Plan{Chip: UltraScalePlus, Columns: 128, Threads: 7, RowsPerThread: 7} // 49 rows > 48
	if err := over.Validate(); err == nil {
		t.Error("expected row-limit error")
	}
	degenerate := Plan{Chip: UltraScalePlus}
	if err := degenerate.Validate(); err == nil {
		t.Error("expected degenerate-plan error")
	}
}

func TestKindStrings(t *testing.T) {
	if FPGA.String() != "FPGA" || PASIC.String() != "P-ASIC" {
		t.Error("kind strings")
	}
}
