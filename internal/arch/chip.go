// Package arch defines the acceleration-platform vocabulary shared by the
// CoSMIC stack: chip specifications (FPGAs and Programmable ASICs) and the
// architectural Plan the Planner produces — how the multi-threaded template
// is stretched or squeezed onto a chip (columns × rows of PEs, threads, and
// rows per thread).
package arch

import "fmt"

// ChipKind distinguishes reprogrammable FPGAs from fixed-function
// programmable ASICs. The Constructor emits schedule-specialized state
// machines for FPGAs and microcode-driven control for P-ASICs.
type ChipKind int

// Chip kinds.
const (
	FPGA ChipKind = iota
	PASIC
)

// String returns the kind name.
func (k ChipKind) String() string {
	if k == FPGA {
		return "FPGA"
	}
	return "P-ASIC"
}

// WordBytes is the size of one datapath word. The template operates on
// 32-bit values.
const WordBytes = 4

// ChipSpec is the high-level chip description the Planner consumes: compute
// budget, on-chip storage, off-chip bandwidth, and frequency (Figure 3's
// "Number of DSP units, off-chip memory bandwidth, number of BRAMs, size of
// each BRAM").
type ChipSpec struct {
	Name string
	Kind ChipKind

	// PEBudget is the maximum number of processing engines: DSP slices for
	// FPGAs, the synthesized PE count for P-ASICs.
	PEBudget int
	// StorageKB is the total on-chip buffer storage (BRAM/SRAM) in KB.
	StorageKB int
	// MemBandwidthGBps is the off-chip memory bandwidth.
	MemBandwidthGBps float64
	// FrequencyMHz is the datapath clock.
	FrequencyMHz float64
	// MaxRows structurally caps the row count (routing/congestion limit);
	// zero means no cap beyond PEBudget/Columns.
	MaxRows int
	// TDPWatts is the chip's power budget, used by the Performance-per-Watt
	// comparison.
	TDPWatts float64

	// LUTs and FlipFlops describe the FPGA fabric for resource-utilization
	// reports (Table 3); zero for P-ASICs.
	LUTs, FlipFlops int
	// AreaMM2 and TechnologyNM describe P-ASIC synthesis results; zero for
	// FPGAs.
	AreaMM2      float64
	TechnologyNM int
}

// Columns returns the number of PEs per row. The Planner sets it "equal to
// the number of words that can be fetched in parallel from memory" — fewer
// would waste bandwidth, more would pressure the interconnect — rounded
// down to a power of two so memory bursts, the shifter, and reduction
// trees stay aligned.
func (c ChipSpec) Columns() int {
	words := int(c.MemBandwidthGBps * 1e9 / (c.FrequencyMHz * 1e6 * WordBytes))
	if words > c.PEBudget {
		words = c.PEBudget
	}
	n := 1
	for n*2 <= words {
		n *= 2
	}
	return n
}

// RowLimit returns the maximum number of PE rows: PEBudget/Columns, capped
// by the structural MaxRows.
func (c ChipSpec) RowLimit() int {
	r := c.PEBudget / c.Columns()
	if r < 1 {
		r = 1
	}
	if c.MaxRows > 0 && r > c.MaxRows {
		r = c.MaxRows
	}
	return r
}

// StorageWords returns the on-chip storage budget in words.
func (c ChipSpec) StorageWords() int { return c.StorageKB * 1024 / WordBytes }

// CyclesToSeconds converts a cycle count at this chip's frequency.
func (c ChipSpec) CyclesToSeconds(cycles float64) float64 {
	return cycles / (c.FrequencyMHz * 1e6)
}

// The evaluation platforms of Table 2, plus the Zynq chip TABLA originally
// targeted (for the related-work comparison).
var (
	// UltraScalePlus is the Xilinx Virtex UltraScale+ VU9P, the paper's
	// FPGA platform, synthesized at 150 MHz. The 9720 KB storage budget is
	// the usable BRAM total from Table 3; 76.8 GB/s of DDR4 bandwidth
	// yields 128 memory words per cycle at 150 MHz, and the 48-row cap
	// matches the paper's design-space sweep ("rows from 1 to 48, the
	// maximum number of rows in UltraScale+").
	UltraScalePlus = ChipSpec{
		Name: "UltraScale+ VU9P", Kind: FPGA,
		PEBudget: 6840, StorageKB: 9720,
		MemBandwidthGBps: 76.8, FrequencyMHz: 150, MaxRows: 48,
		TDPWatts: 42, LUTs: 1182240, FlipFlops: 2364480,
	}

	// PASICF matches the FPGA's PE count class and off-chip bandwidth at
	// 1 GHz (Table 2, P-ASIC F: 768 PEs, 29 mm², 11 W, 45 nm). Keeping
	// byte bandwidth fixed while raising frequency leaves only ~19 words
	// per cycle — the paper's point that frequency alone does not deliver
	// proportional speedup.
	PASICF = ChipSpec{
		Name: "P-ASIC-F", Kind: PASIC,
		PEBudget: 768, StorageKB: 4096,
		MemBandwidthGBps: 76.8, FrequencyMHz: 1000,
		TDPWatts: 11, AreaMM2: 29, TechnologyNM: 45,
	}

	// PASICG matches the GPU's core count and bandwidth (Table 2, P-ASIC
	// G: 2880 PEs, 105 mm², 37 W): 288 GB/s at 1 GHz is 72 words/cycle.
	PASICG = ChipSpec{
		Name: "P-ASIC-G", Kind: PASIC,
		PEBudget: 2880, StorageKB: 8192,
		MemBandwidthGBps: 288, FrequencyMHz: 1000,
		TDPWatts: 37, AreaMM2: 105, TechnologyNM: 45,
	}

	// ZynqZC702 is the low-power FPGA TABLA originally targeted (220 DSP
	// slices), kept for the related-work comparison.
	ZynqZC702 = ChipSpec{
		Name: "Zynq ZC702", Kind: FPGA,
		PEBudget: 220, StorageKB: 560,
		MemBandwidthGBps: 4.2, FrequencyMHz: 150, MaxRows: 16,
		TDPWatts: 2, LUTs: 53200, FlipFlops: 106400,
	}
)

// Plan is the Planner's output: the shape of the multi-threaded template on
// a chip. All threads get the same allocation, at row granularity.
type Plan struct {
	Chip ChipSpec
	// Columns is the number of PEs per row (= memory words per cycle).
	Columns int
	// Threads is the number of MIMD worker threads on the chip.
	Threads int
	// RowsPerThread is the number of PE rows allocated to each thread.
	RowsPerThread int
}

// PEsPerThread returns RowsPerThread × Columns.
func (p Plan) PEsPerThread() int { return p.RowsPerThread * p.Columns }

// TotalRows returns the rows instantiated across all threads.
func (p Plan) TotalRows() int { return p.Threads * p.RowsPerThread }

// TotalPEs returns the PEs instantiated across all threads.
func (p Plan) TotalPEs() int { return p.TotalRows() * p.Columns }

// Validate checks the plan fits its chip.
func (p Plan) Validate() error {
	if p.Columns <= 0 || p.Threads <= 0 || p.RowsPerThread <= 0 {
		return fmt.Errorf("arch: degenerate plan %+v", p)
	}
	if p.TotalRows() > p.Chip.RowLimit() {
		return fmt.Errorf("arch: plan uses %d rows, chip %s allows %d",
			p.TotalRows(), p.Chip.Name, p.Chip.RowLimit())
	}
	if p.TotalPEs() > p.Chip.PEBudget {
		return fmt.Errorf("arch: plan uses %d PEs, chip %s has %d",
			p.TotalPEs(), p.Chip.Name, p.Chip.PEBudget)
	}
	return nil
}

// String renders the plan in the paper's TxRy notation (x threads, y rows).
func (p Plan) String() string {
	return fmt.Sprintf("T%d×R%d on %s (%d cols, %d PEs/thread)",
		p.Threads, p.TotalRows(), p.Chip.Name, p.Columns, p.PEsPerThread())
}
