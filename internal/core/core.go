// Package core wires CoSMIC's five layers into the end-to-end build
// pipeline — the stack's primary contribution is precisely this cohesion:
//
//	programming   dsl.ParseAndAnalyze   the math DSL → analyzed program
//	compilation   dfg.Translate         program → dataflow graph
//	architecture  planner.Plan          graph + chip → template plan
//	compilation   compiler.Compile      graph + plan → static schedule
//	circuit       verilog.Encode/Generate schedule → synthesizable RTL
//
// The public facade (package cosmic at the repository root) delegates here;
// the experiments and command-line drivers use the same path, so there is
// exactly one way a DSL program becomes an accelerator.
package core

import (
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/check"
	"repro/internal/compiler"
	"repro/internal/dfg"
	"repro/internal/dsl"
	"repro/internal/perf"
	"repro/internal/planner"
	"repro/internal/verilog"
)

// envVerify turns on post-compile artifact verification for every build in
// the process — the same switch dfg.CompileTape honors for its self-check.
var envVerify = os.Getenv("COSMIC_VET") != ""

// BuildOptions tunes the pipeline.
type BuildOptions struct {
	// MiniBatch is the node-local mini-batch size the Planner sizes
	// thread counts against (0 = the DSL program's own declaration).
	MiniBatch int
	// MaxThreads caps the worker-thread count (0 = chip limits only).
	MaxThreads int
	// Style selects CoSMIC's data-first mapping or the TABLA baseline.
	Style compiler.Style
	// Verify runs the full internal/check verification layer over the
	// compiled artifacts and fails the build on any error diagnostic.
	// Setting COSMIC_VET=1 in the environment enables it for every build.
	Verify bool
}

// Build is the fully compiled result: every layer's artifact.
type Build struct {
	Unit    *dsl.Unit
	Graph   *dfg.Graph
	Point   planner.DesignPoint
	Program *compiler.Program
}

// BuildProgram runs the stack front to back (everything except RTL
// emission, which Verilog does on demand).
func BuildProgram(source string, params map[string]int, chip arch.ChipSpec, opts BuildOptions) (*Build, error) {
	unit, err := dsl.ParseAndAnalyze(source, params)
	if err != nil {
		return nil, err
	}
	graph, err := dfg.Translate(unit)
	if err != nil {
		return nil, err
	}
	miniBatch := opts.MiniBatch
	if miniBatch <= 0 {
		miniBatch = unit.Program.MiniBatch
	}
	maxThreads := opts.MaxThreads
	if opts.Style == compiler.StyleTABLA {
		maxThreads = 1
	}
	point, err := planner.Plan(graph, chip, planner.Options{
		MiniBatch:  miniBatch,
		Style:      opts.Style,
		MaxThreads: maxThreads,
	})
	if err != nil {
		return nil, err
	}
	prog, err := compiler.Compile(graph, point.Plan, opts.Style)
	if err != nil {
		return nil, err
	}
	if opts.Verify || envVerify {
		if ds := check.All(prog); ds.HasErrors() {
			return nil, fmt.Errorf("core: artifact verification found %d errors:\n%s", ds.Errors(), ds)
		}
	}
	return &Build{Unit: unit, Graph: graph, Point: point, Program: prog}, nil
}

// Verilog runs the circuit layer over the build.
func (b *Build) Verilog() (string, error) {
	img, err := verilog.Encode(b.Program)
	if err != nil {
		return "", err
	}
	return verilog.Generate(img)
}

// Estimate returns the performance model for the build.
func (b *Build) Estimate() (perf.Estimate, error) {
	return perf.FromProgram(b.Program)
}
