// Package core wires CoSMIC's five layers into the end-to-end build
// pipeline — the stack's primary contribution is precisely this cohesion:
//
//	programming   dsl.ParseAndAnalyze   the math DSL → analyzed program
//	compilation   dfg.Translate         program → dataflow graph
//	architecture  planner.Plan          graph + chip → template plan
//	compilation   compiler.Compile      graph + plan → static schedule
//	circuit       verilog.Encode/Generate schedule → synthesizable RTL
//
// The public facade (package cosmic at the repository root) delegates here;
// the experiments and command-line drivers use the same path, so there is
// exactly one way a DSL program becomes an accelerator.
package core

import (
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/check"
	"repro/internal/compiler"
	"repro/internal/dfg"
	"repro/internal/dsl"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/planner"
	"repro/internal/verilog"
)

// envVerify turns on post-compile artifact verification for every build in
// the process — the same switch dfg.CompileTape honors for its self-check.
var envVerify = os.Getenv("COSMIC_VET") != ""

// BuildOptions tunes the pipeline.
type BuildOptions struct {
	// MiniBatch is the node-local mini-batch size the Planner sizes
	// thread counts against (0 = the DSL program's own declaration).
	MiniBatch int
	// MaxThreads caps the worker-thread count (0 = chip limits only).
	MaxThreads int
	// Style selects CoSMIC's data-first mapping or the TABLA baseline.
	Style compiler.Style
	// Verify runs the full internal/check verification layer over the
	// compiled artifacts and fails the build on any error diagnostic.
	// Setting COSMIC_VET=1 in the environment enables it for every build.
	Verify bool
	// Obs, when non-nil, records one wall-clock span per pipeline phase
	// (parse → translate → plan → map-schedule → verify, and microcode on
	// Verilog emission) plus build counters. nil disables all of it.
	Obs *obs.Observer
}

// Build is the fully compiled result: every layer's artifact.
type Build struct {
	Unit    *dsl.Unit
	Graph   *dfg.Graph
	Point   planner.DesignPoint
	Program *compiler.Program

	// obs carries the build's observer into on-demand phases (Verilog).
	obs *obs.Observer
}

// BuildProgram runs the stack front to back (everything except RTL
// emission, which Verilog does on demand).
func BuildProgram(source string, params map[string]int, chip arch.ChipSpec, opts BuildOptions) (*Build, error) {
	tr := opts.Obs.Tracer()
	whole := tr.Begin("compile", "build-program", 0)

	sp := tr.Begin("compile", "parse", 0)
	unit, err := dsl.ParseAndAnalyze(source, params)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.Begin("compile", "translate", 0)
	graph, err := dfg.Translate(unit)
	sp.End()
	if err != nil {
		return nil, err
	}
	miniBatch := opts.MiniBatch
	if miniBatch <= 0 {
		miniBatch = unit.Program.MiniBatch
	}
	maxThreads := opts.MaxThreads
	if opts.Style == compiler.StyleTABLA {
		maxThreads = 1
	}
	sp = tr.Begin("compile", "plan", 0)
	point, err := planner.Plan(graph, chip, planner.Options{
		MiniBatch:  miniBatch,
		Style:      opts.Style,
		MaxThreads: maxThreads,
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.Begin("compile", "map-schedule", 0)
	prog, err := compiler.Compile(graph, point.Plan, opts.Style)
	sp.End()
	if err != nil {
		return nil, err
	}
	if opts.Verify || envVerify {
		sp = tr.Begin("compile", "verify", 0)
		ds := check.All(prog)
		sp.End()
		if ds.HasErrors() {
			return nil, fmt.Errorf("core: artifact verification found %d errors:\n%s", ds.Errors(), ds)
		}
	}
	s := graph.Summary()
	whole.EndArgs(map[string]any{
		"ops": s.ComputeOps, "threads": point.Plan.Threads, "style": opts.Style.String(),
	})
	if reg := opts.Obs.Registry(); reg != nil {
		reg.Counter("cosmic_compile_builds_total").Inc()
		reg.Counter("cosmic_compile_ops_total").Add(int64(s.ComputeOps))
		reg.Gauge("cosmic_compile_last_threads").Set(float64(point.Plan.Threads))
		reg.Gauge("cosmic_compile_last_pes").Set(float64(point.Plan.PEsPerThread() * point.Plan.Threads))
	}
	return &Build{Unit: unit, Graph: graph, Point: point, Program: prog, obs: opts.Obs}, nil
}

// Verilog runs the circuit layer over the build.
func (b *Build) Verilog() (string, error) {
	sp := b.obs.Tracer().Begin("compile", "microcode", 0)
	img, err := verilog.Encode(b.Program)
	sp.End()
	if err != nil {
		return "", err
	}
	sp = b.obs.Tracer().Begin("compile", "generate-rtl", 0)
	defer sp.End()
	return verilog.Generate(img)
}

// Estimate returns the performance model for the build.
func (b *Build) Estimate() (perf.Estimate, error) {
	return perf.FromProgram(b.Program)
}
