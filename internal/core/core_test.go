package core

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/dsl"
	"repro/internal/obs"
)

func TestBuildProgramEndToEnd(t *testing.T) {
	b, err := BuildProgram(dsl.SourceSVM, map[string]int{"M": 64}, arch.UltraScalePlus, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Unit == nil || b.Graph == nil || b.Program == nil {
		t.Fatal("incomplete build")
	}
	// With no explicit mini-batch, the Planner uses the DSL's declaration.
	if b.Unit.Program.MiniBatch != 10000 {
		t.Errorf("declared mini-batch %d", b.Unit.Program.MiniBatch)
	}
	if err := b.Point.Plan.Validate(); err != nil {
		t.Error(err)
	}
	est, err := b.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Interval <= 0 {
		t.Errorf("estimate interval %d", est.Interval)
	}
	rtl, err := b.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rtl, "cosmic_top") {
		t.Error("RTL missing top module")
	}
}

func TestBuildProgramTABLAForcesSingleThread(t *testing.T) {
	b, err := BuildProgram(dsl.SourceSVM, map[string]int{"M": 64}, arch.UltraScalePlus,
		BuildOptions{Style: compiler.StyleTABLA, MaxThreads: 16})
	if err != nil {
		t.Fatal(err)
	}
	if b.Point.Plan.Threads != 1 {
		t.Errorf("TABLA build has %d threads", b.Point.Plan.Threads)
	}
}

func TestBuildProgramPropagatesFrontendErrors(t *testing.T) {
	if _, err := BuildProgram("nonsense!", nil, arch.UltraScalePlus, BuildOptions{}); err == nil {
		t.Error("expected parse error")
	}
	if _, err := BuildProgram(dsl.SourceSVM, nil, arch.UltraScalePlus, BuildOptions{}); err == nil {
		t.Error("expected missing-parameter error")
	}
}

// TestBuildProgramCompileSpans: with an observer attached, every pipeline
// phase must appear as a wall-clock span and the build counters must move.
func TestBuildProgramCompileSpans(t *testing.T) {
	o := obs.New()
	b, err := BuildProgram(dsl.SourceSVM, map[string]int{"M": 64}, arch.UltraScalePlus,
		BuildOptions{Verify: true, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Verilog(); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"parse": false, "translate": false, "plan": false,
		"map-schedule": false, "verify": false, "microcode": false,
		"build-program": false,
	}
	for _, e := range o.Trace.Events() {
		if e.Cat == "compile" {
			if _, ok := want[e.Name]; ok {
				want[e.Name] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("no %q span recorded", name)
		}
	}
	if got := o.Metrics.Counter("cosmic_compile_builds_total").Value(); got != 1 {
		t.Errorf("builds_total = %d, want 1", got)
	}
}
