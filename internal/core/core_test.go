package core

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/dsl"
)

func TestBuildProgramEndToEnd(t *testing.T) {
	b, err := BuildProgram(dsl.SourceSVM, map[string]int{"M": 64}, arch.UltraScalePlus, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Unit == nil || b.Graph == nil || b.Program == nil {
		t.Fatal("incomplete build")
	}
	// With no explicit mini-batch, the Planner uses the DSL's declaration.
	if b.Unit.Program.MiniBatch != 10000 {
		t.Errorf("declared mini-batch %d", b.Unit.Program.MiniBatch)
	}
	if err := b.Point.Plan.Validate(); err != nil {
		t.Error(err)
	}
	est, err := b.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.Interval <= 0 {
		t.Errorf("estimate interval %d", est.Interval)
	}
	rtl, err := b.Verilog()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rtl, "cosmic_top") {
		t.Error("RTL missing top module")
	}
}

func TestBuildProgramTABLAForcesSingleThread(t *testing.T) {
	b, err := BuildProgram(dsl.SourceSVM, map[string]int{"M": 64}, arch.UltraScalePlus,
		BuildOptions{Style: compiler.StyleTABLA, MaxThreads: 16})
	if err != nil {
		t.Fatal(err)
	}
	if b.Point.Plan.Threads != 1 {
		t.Errorf("TABLA build has %d threads", b.Point.Plan.Threads)
	}
}

func TestBuildProgramPropagatesFrontendErrors(t *testing.T) {
	if _, err := BuildProgram("nonsense!", nil, arch.UltraScalePlus, BuildOptions{}); err == nil {
		t.Error("expected parse error")
	}
	if _, err := BuildProgram(dsl.SourceSVM, nil, arch.UltraScalePlus, BuildOptions{}); err == nil {
		t.Error("expected missing-parameter error")
	}
}
