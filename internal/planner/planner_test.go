package planner

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/dfg"
	"repro/internal/dsl"
	"repro/internal/ml"
	"repro/internal/perf"
)

var testChip = arch.ChipSpec{
	Name: "test-chip", Kind: arch.FPGA,
	PEBudget: 64, StorageKB: 256,
	MemBandwidthGBps: 3.2, FrequencyMHz: 100,
	TDPWatts: 5, LUTs: 100000, FlipFlops: 200000,
}

func graphOf(t *testing.T, alg ml.Algorithm) *dfg.Graph {
	t.Helper()
	u, err := dsl.ParseAndAnalyze(alg.DSLSource(), alg.DSLParams())
	if err != nil {
		t.Fatal(err)
	}
	g, err := dfg.Translate(u)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExploreProducesValidPoints(t *testing.T) {
	g := graphOf(t, &ml.SVM{M: 32})
	points, err := Explore(g, testChip, Options{MiniBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("empty design space")
	}
	for _, p := range points {
		if err := p.Plan.Validate(); err != nil {
			t.Errorf("invalid plan %v: %v", p.Plan, err)
		}
		if p.BatchCycles <= 0 {
			t.Errorf("point %v: cycles %d", p.Plan, p.BatchCycles)
		}
	}
}

func TestDesignSpaceIsPruned(t *testing.T) {
	g := graphOf(t, &ml.SVM{M: 32})
	points, err := Explore(g, testChip, Options{MiniBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Rows ∈ {1,2,4,8}, threads dividing rows: 1+2+3+4 = 10 points. The
	// paper's UltraScale+ space is similarly small (27 points).
	if len(points) > 30 {
		t.Errorf("design space has %d points; pruning failed", len(points))
	}
}

func TestMiniBatchBoundsThreads(t *testing.T) {
	g := graphOf(t, &ml.SVM{M: 32})
	points, err := Explore(g, testChip, Options{MiniBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Plan.Threads > 2 {
			t.Errorf("point %v exceeds mini-batch thread bound", p.Plan)
		}
	}
}

func TestStorageBoundsThreads(t *testing.T) {
	// A chip with tiny storage cannot host many thread contexts.
	smallChip := testChip
	smallChip.StorageKB = 1
	g := graphOf(t, &ml.LinearRegression{M: 64})
	points, err := Explore(g, smallChip, Options{MiniBatch: 1000})
	if err != nil {
		t.Fatal(err)
	}
	bound := smallChip.StorageWords() / g.StorageWords()
	for _, p := range points {
		if p.Plan.Threads > bound && p.Plan.Threads > 1 {
			t.Errorf("point %v exceeds storage thread bound %d", p.Plan, bound)
		}
	}
}

func TestChooseSmallestBestPerforming(t *testing.T) {
	g := graphOf(t, &ml.LinearRegression{M: 512})
	points, err := Explore(g, testChip, Options{MiniBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	best, err := Choose(points)
	if err != nil {
		t.Fatal(err)
	}
	minCycles := points[0].BatchCycles
	for _, p := range points {
		if p.BatchCycles < minCycles {
			minCycles = p.BatchCycles
		}
	}
	bound := int64(float64(minCycles) * ChooseTolerance)
	if best.BatchCycles > bound {
		t.Errorf("chose %v (%d cycles) outside tolerance of best %d", best.Plan, best.BatchCycles, minCycles)
	}
	for _, p := range points {
		if p.BatchCycles <= bound && p.Plan.TotalPEs() < best.Plan.TotalPEs() {
			t.Errorf("chose %v but %v is smaller and within tolerance", best.Plan, p.Plan)
		}
	}
}

func TestChooseEmpty(t *testing.T) {
	if _, err := Choose(nil); err == nil {
		t.Error("expected error for empty design space")
	}
}

// TestComputeBoundPrefersMoreRows: backprop should choose a larger array
// than bandwidth-bound linear regression prefers (Figure 16's optima).
func TestComputeBoundPrefersMoreRows(t *testing.T) {
	mlp := graphOf(t, &ml.MLP{In: 16, Hid: 12, Out: 4})
	bestMLP, err := Plan(mlp, testChip, Options{MiniBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if bestMLP.Plan.TotalRows() < 4 {
		t.Errorf("backprop chose only %d rows", bestMLP.Plan.TotalRows())
	}
	lin := graphOf(t, &ml.LinearRegression{M: 512})
	pointsLin, err := Explore(lin, testChip, Options{MiniBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The performance of the largest linreg point must be within 15% of
	// the half-size point: the extra rows buy almost nothing.
	var half, maxPt *DesignPoint
	for i := range pointsLin {
		p := &pointsLin[i]
		if p.Plan.Threads != 1 {
			continue
		}
		switch p.Plan.TotalRows() {
		case 4:
			half = p
		case 8:
			maxPt = p
		}
	}
	if half == nil || maxPt == nil {
		t.Fatal("missing sweep points")
	}
	gain := float64(half.BatchCycles) / float64(maxPt.BatchCycles)
	if gain > 1.25 {
		t.Errorf("linreg gained %.2fx from doubling rows; should be bandwidth-bound", gain)
	}
}

// TestMultithreadingWinsAtFixedRows mirrors Figure 16: "for a fixed number
// of PE rows, increasing the number of threads improves performance".
func TestMultithreadingWinsAtFixedRows(t *testing.T) {
	g := graphOf(t, &ml.SVM{M: 24})
	points, err := Explore(g, testChip, Options{MiniBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	byConfig := map[[2]int]int64{}
	for _, p := range points {
		byConfig[[2]int{p.Plan.TotalRows(), p.Plan.Threads}] = p.BatchCycles
	}
	t1 := byConfig[[2]int{4, 1}]
	t4 := byConfig[[2]int{4, 4}]
	if t1 == 0 || t4 == 0 {
		t.Fatal("missing T1×R4 or T4×R4 points")
	}
	if t4 >= t1 {
		t.Errorf("T4 over 4 rows (%d cycles) not faster than T1 (%d)", t4, t1)
	}
}

func TestFullGeometryScalingChangesChoice(t *testing.T) {
	g := graphOf(t, &ml.LinearRegression{M: 64})
	full, err := perf.GeometryForFamily("linreg", []int{8000})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Explore(g, testChip, Options{MiniBatch: 64, FullGeometry: &full})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Estimate.DataWords != full.DataWords {
			t.Fatalf("estimate not rescaled: %d data words", p.Estimate.DataWords)
		}
	}
}

func TestTABLAStyleExplorable(t *testing.T) {
	g := graphOf(t, &ml.SVM{M: 32})
	best, err := Plan(g, testChip, Options{MiniBatch: 64, Style: compiler.StyleTABLA, MaxThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if best.Plan.Threads != 1 {
		t.Errorf("TABLA plan uses %d threads, capped at 1", best.Plan.Threads)
	}
}

func TestResourceEstimates(t *testing.T) {
	g := graphOf(t, &ml.LogisticRegression{M: 64})
	plan := arch.Plan{Chip: testChip, Columns: testChip.Columns(), Threads: 2, RowsPerThread: 2}
	r := EstimateResources(plan, g)
	if r.DSPs < plan.TotalPEs() {
		t.Errorf("DSPs %d below PE count %d", r.DSPs, plan.TotalPEs())
	}
	if r.LUTs <= lutsBase || r.FlipFlops <= ffsBase {
		t.Errorf("fabric estimates degenerate: %+v", r)
	}
	luts, ffs, bram, dsps := r.Utilization(testChip)
	for name, u := range map[string]float64{"luts": luts, "ffs": ffs, "bram": bram, "dsps": dsps} {
		if u <= 0 || u > 1 {
			t.Errorf("%s utilization %.2f out of range", name, u)
		}
	}
}

// TestResourcesTrackTable3Shape: at UltraScale+ scale, a 32-row design (the
// backprop class) must consume roughly the LUT/FF fractions Table 3 reports
// (72% / 33%), and a 10-row design (the linear class) roughly 24% / 11%.
func TestResourcesTrackTable3Shape(t *testing.T) {
	chip := arch.UltraScalePlus
	g := graphOf(t, &ml.MLP{In: 16, Hid: 12, Out: 4})
	big := arch.Plan{Chip: chip, Columns: chip.Columns(), Threads: 2, RowsPerThread: 16}
	small := arch.Plan{Chip: chip, Columns: chip.Columns(), Threads: 2, RowsPerThread: 5}

	bl, bf, _, _ := EstimateResources(big, g).Utilization(chip)
	if bl < 0.6 || bl > 0.85 {
		t.Errorf("32-row LUT utilization %.2f, Table 3 reports ≈0.72", bl)
	}
	if bf < 0.25 || bf > 0.45 {
		t.Errorf("32-row FF utilization %.2f, Table 3 reports ≈0.33", bf)
	}
	sl, sf, _, _ := EstimateResources(small, g).Utilization(chip)
	if sl < 0.15 || sl > 0.35 {
		t.Errorf("10-row LUT utilization %.2f, Table 3 reports ≈0.24", sl)
	}
	if sf < 0.05 || sf > 0.2 {
		t.Errorf("10-row FF utilization %.2f, Table 3 reports ≈0.11", sf)
	}
}
