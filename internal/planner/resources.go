package planner

import (
	"repro/internal/arch"
	"repro/internal/dfg"
)

// Resources models the FPGA fabric consumption of a planned accelerator,
// the quantities Table 3 reports. The per-PE coefficients are fitted to the
// paper's published utilization numbers (e.g. mnist: 851,276 LUTs and
// 772,029 flip-flops for a ~4,096-PE design ⇒ ≈208 LUTs and ≈188 FFs per
// PE), and the memory interface / controller contributes the fixed base.
type Resources struct {
	LUTs, FlipFlops, DSPs int
	BRAMBytes             int
}

// Per-PE and base fabric costs (see type comment).
const (
	lutsPerPE   = 207
	ffsPerPE    = 187
	lutsBase    = 3500
	ffsBase     = 6000
	lutsPerNLPE = 24 // extra LUTs when a PE instantiates the nonlinear unit
	// dspsPerTreeALU: each tree-bus switch carries a reduction ALU.
	dspsPerTreeALU = 1
)

// EstimateResources models the fabric cost of the plan for the given DFG.
func EstimateResources(plan arch.Plan, g *dfg.Graph) Resources {
	pes := plan.TotalPEs()
	treeALUs := plan.TotalRows() - 1
	if treeALUs < 0 {
		treeALUs = 0
	}
	r := Resources{
		DSPs:      pes + treeALUs*dspsPerTreeALU,
		LUTs:      lutsBase + lutsPerPE*pes,
		FlipFlops: ffsBase + ffsPerPE*pes,
	}
	if g.HasNonlinear() {
		// The nonlinear lookup table is "only instantiated in a PE if the
		// Compiler schedules a non-linear operation for that PE"; sizing
		// for the worst case charges every PE of one row per thread.
		r.LUTs += lutsPerNLPE * plan.Columns * plan.Threads
	}

	// Buffer storage: per-PE data/model/interim partitions sized for the
	// DFG, plus the prefetch buffer (double-buffered vectors per thread).
	perThreadWords := g.StorageWords()
	prefetchWords := 2 * g.DataWords() * plan.Threads
	bufferBytes := (perThreadWords*plan.Threads + prefetchWords) * arch.WordBytes
	// BRAM is allocated in fixed-size blocks; the planner rounds the
	// request up to its block budget and never exceeds the chip.
	const bramBlock = 18 * 1024 / 8 // 18 Kb blocks
	blocks := (bufferBytes + bramBlock - 1) / bramBlock
	r.BRAMBytes = blocks * bramBlock
	// The prefetch buffer is grown to absorb the remaining BRAM budget —
	// idle storage costs nothing and deepens latency hiding — which is why
	// Table 3 reports ~85-89% BRAM utilization across the suite.
	budget := plan.Chip.StorageKB * 1024
	if target := budget * 85 / 100; r.BRAMBytes < target {
		r.BRAMBytes = target
	}
	if r.BRAMBytes > budget {
		r.BRAMBytes = budget
	}
	return r
}

// Utilization expresses the resources as fractions of the chip's budget
// (zero for budgets the chip does not declare).
func (r Resources) Utilization(chip arch.ChipSpec) (luts, ffs, bram, dsps float64) {
	frac := func(used, total int) float64 {
		if total == 0 {
			return 0
		}
		return float64(used) / float64(total)
	}
	return frac(r.LUTs, chip.LUTs),
		frac(r.FlipFlops, chip.FlipFlops),
		frac(r.BRAMBytes, chip.StorageKB*1024),
		frac(r.DSPs, chip.PEBudget)
}
