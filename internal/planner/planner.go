// Package planner implements CoSMIC's architecture layer: given a chip
// specification, a learning algorithm's DFG, and the mini-batch size, the
// Planner decides how to stretch or squeeze the multi-threaded template —
// how many PE rows to instantiate, how many MIMD worker threads to run, and
// how many rows each thread gets.
//
// Following Section 4.4, the design space is pruned to row-granularity
// allocations: columns are fixed by the off-chip bandwidth, the row count is
// bounded by DSPs/columns (and the fabric's routing cap), and the thread
// count by on-chip storage, the row bound, and the mini-batch size. Each
// surviving design point is compiled and costed with the performance
// estimation tool; the Planner picks the smallest best-performing point.
package planner

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/dfg"
	"repro/internal/perf"
)

// DesignPoint is one evaluated configuration of the template.
type DesignPoint struct {
	Plan arch.Plan
	// Estimate is the performance model for the point (possibly rescaled
	// to a full benchmark geometry).
	Estimate perf.Estimate
	// BatchCycles is the estimated cycles for one node-local mini-batch.
	BatchCycles int64
}

// Options configures exploration.
type Options struct {
	// MiniBatch is the node-local mini-batch size (vectors per aggregation
	// step); it bounds the useful thread count.
	MiniBatch int
	// Style selects the mapping algorithm (CoSMIC by default).
	Style compiler.Style
	// FullGeometry, when non-nil, rescales every point's estimate to the
	// paper-scale benchmark geometry before comparison, so exploration on
	// a reduced DFG chooses the design the full-size benchmark wants.
	FullGeometry *perf.FullGeometry
	// MaxThreads, when positive, further caps the thread count (used to
	// reproduce the paper's per-benchmark thread limits).
	MaxThreads int
}

// Explore enumerates the pruned design space and returns all evaluated
// points, ordered by total rows then thread count.
func Explore(g *dfg.Graph, chip arch.ChipSpec, opts Options) ([]DesignPoint, error) {
	if opts.MiniBatch <= 0 {
		opts.MiniBatch = 1
	}
	columns := chip.Columns()
	rowLimit := chip.RowLimit()

	// t_max = min(storage bound, row bound, mini-batch) — Section 4.4.
	tmax := rowLimit
	if storage := g.StorageWords(); storage > 0 {
		if bound := chip.StorageWords() / storage; bound < tmax {
			tmax = bound
		}
	}
	if opts.MiniBatch < tmax {
		tmax = opts.MiniBatch
	}
	if opts.MaxThreads > 0 && opts.MaxThreads < tmax {
		tmax = opts.MaxThreads
	}
	if tmax < 1 {
		tmax = 1
	}

	var points []DesignPoint
	for _, rowsTotal := range rowChoices(rowLimit) {
		for _, threads := range divisorsUpTo(rowsTotal, tmax) {
			plan := arch.Plan{
				Chip:          chip,
				Columns:       columns,
				Threads:       threads,
				RowsPerThread: rowsTotal / threads,
			}
			// Skip points whose fabric cost exceeds the chip (LUT budget
			// binds first on big designs).
			if chip.LUTs > 0 {
				if res := EstimateResources(plan, g); res.LUTs > chip.LUTs {
					continue
				}
			}
			prog, err := compiler.Compile(g, plan, opts.Style)
			if err != nil {
				return nil, fmt.Errorf("planner: point T%d×R%d: %w", threads, rowsTotal, err)
			}
			est, err := perf.FromProgram(prog)
			if err != nil {
				return nil, err
			}
			if opts.FullGeometry != nil {
				est = est.ScaledTo(*opts.FullGeometry)
			}
			vecsPerThread := opts.MiniBatch / threads
			if vecsPerThread < 1 {
				vecsPerThread = 1
			}
			points = append(points, DesignPoint{
				Plan:        plan,
				Estimate:    est,
				BatchCycles: est.BatchCycles(vecsPerThread),
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		pi, pj := points[i], points[j]
		if pi.Plan.TotalRows() != pj.Plan.TotalRows() {
			return pi.Plan.TotalRows() < pj.Plan.TotalRows()
		}
		return pi.Plan.Threads < pj.Plan.Threads
	})
	return points, nil
}

// ChooseTolerance is the performance slack within which the Planner prefers
// a smaller design ("the smallest, best-performing design point").
const ChooseTolerance = 1.05

// Choose picks the smallest best-performing point: among all points within
// ChooseTolerance of the minimum batch cycles, the one with the fewest PEs
// (ties toward fewer threads).
func Choose(points []DesignPoint) (DesignPoint, error) {
	if len(points) == 0 {
		return DesignPoint{}, fmt.Errorf("planner: empty design space")
	}
	minCycles := points[0].BatchCycles
	for _, p := range points[1:] {
		if p.BatchCycles < minCycles {
			minCycles = p.BatchCycles
		}
	}
	bound := int64(float64(minCycles) * ChooseTolerance)
	var best *DesignPoint
	for i := range points {
		p := &points[i]
		if p.BatchCycles > bound {
			continue
		}
		switch {
		case best == nil,
			p.Plan.TotalPEs() < best.Plan.TotalPEs(),
			p.Plan.TotalPEs() == best.Plan.TotalPEs() && p.Plan.Threads < best.Plan.Threads:
			best = p
		}
	}
	return *best, nil
}

// Plan explores the design space and returns the chosen plan.
func Plan(g *dfg.Graph, chip arch.ChipSpec, opts Options) (DesignPoint, error) {
	points, err := Explore(g, chip, opts)
	if err != nil {
		return DesignPoint{}, err
	}
	return Choose(points)
}

// rowChoices returns the row-count sweep: powers of two up to the limit
// (1,2,4,8,16,32 on UltraScale+). Power-of-two arrays keep reduction trees
// aligned with the data layout, so the sweep never instantiates ragged
// row counts.
func rowChoices(limit int) []int {
	var out []int
	for r := 1; r <= limit; r *= 2 {
		out = append(out, r)
	}
	return out
}

// divisorsUpTo returns the divisors of n that are ≤ cap, ascending.
func divisorsUpTo(n, cap int) []int {
	var out []int
	for d := 1; d <= n && d <= cap; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}
