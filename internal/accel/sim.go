// Package accel is a cycle-level, functional simulator of CoSMIC's
// multi-threaded template accelerator (Section 5 of the paper). It stands in
// for the UltraScale+ FPGA / P-ASIC silicon the paper runs on: the generated
// Verilog cannot be synthesized here, so this simulator executes the
// Compiler's static schedules under the same structural constraints the RTL
// imposes —
//
//   - a 2-D array of PEs (Columns per row = memory words per cycle);
//   - five-stage in-order PE pipelines with a local bypass path;
//   - three levels of connectivity: bidirectional neighbor links, a shared
//     bus per row, and a tree bus (with Σ/Π ALUs) across rows, each carrying
//     one transmission per cycle that every PE on the segment can snoop;
//   - a smart memory interface that streams data to the PEs round-robin
//     across threads (Memory Schedule + Thread Index Table), broadcasts
//     model parameters, and hides latency behind a prefetch buffer;
//   - MIMD worker threads that each run the whole gradient DFG on their own
//     data sub-partition and locally accumulate partial updates.
//
// Timing follows the classic initiation-interval decomposition of a
// statically scheduled machine: a single training vector's makespan (an
// event-driven walk of the schedule with bus contention and transfer
// latencies) gives the pipeline's fill latency, and the per-round cost in
// steady state is the occupancy of the bottleneck resource — the busiest
// PE, the busiest bus segment, or the shared memory interface. The
// simulator produces both cycle counts and the numeric partial update, so it
// is checked end-to-end against the pure-Go ml reference.
package accel

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"repro/internal/compiler"
	"repro/internal/dfg"
	"repro/internal/dsl"
	"repro/internal/obs"
)

// PipelineDepth is the PE pipeline depth: read, register, operand-select,
// execute, write-back.
const PipelineDepth = 5

// Latencies of the three connectivity levels, in cycles.
const (
	// NeighborLatency is a hop over the dedicated bidirectional link
	// between adjacent PEs in a row.
	NeighborLatency = 1
	// RowBusLatency is a transfer over a row's shared bus.
	RowBusLatency = 2
	// treeBusBase is the fixed cost of entering and leaving the tree bus;
	// each tree level adds treeBusPerLevel.
	treeBusBase     = 4
	treeBusPerLevel = 2
)

// Bus identifiers for transmission bookkeeping: row buses use their row
// index; tree-bus switches use busTree plus the heap index of the lowest
// common ancestor (so disjoint subtrees transfer concurrently, as in the
// real hierarchical tree bus); the TABLA-style template uses 8-PE group
// buses under one global bus.
const (
	busNone  = -1
	busTree  = 1 << 20
	busFlat  = 1 << 21
	busGroup = 1 << 22
	// tablaGroupSize is the PE-group width of TABLA's template.
	tablaGroupSize = 8
)

// Sim simulates one accelerator chip configured by a compiled program.
type Sim struct {
	prog    *compiler.Program
	threads int

	// tape is the gradient DFG compiled to a flat evaluation tape — the
	// functional engine every simulated MIMD thread executes. arenas holds
	// one reusable scratch arena per simulated thread so the steady state
	// of RunBatch is allocation-free; they are lazily created and retained
	// across batches.
	tape    *dfg.Tape
	tapeErr error
	arenas  []*dfg.Arena
	// workers is the host-goroutine budget for RunBatch (0 = GOMAXPROCS,
	// 1 = sequential).
	workers int

	// peLoad is the static per-vector occupancy of each PE (ops plus
	// gradient accumulations); busLoad the per-vector transmissions per
	// bus segment. Identical across threads and vectors.
	peLoad  []int64
	busLoad map[int]int64
	// startup is the event-simulated makespan of one vector relative to
	// its first word delivery.
	startup int64
	// interval is the steady-state initiation interval of one round (one
	// vector on every thread).
	interval int64
	// streamPerVec is the memory-interface cycles to deliver one vector.
	streamPerVec int

	// mx holds the pre-resolved telemetry instruments (nil = disabled; the
	// RunBatch hot path then takes a single nil check). cycleBase is the
	// simulated-cycle offset of the next batch, so consecutive batches lay
	// out end to end on the trace timeline.
	mx        *simObs
	cycleBase int64

	// Cycle-attribution accounting for CycleProfile. RunBatch folds each
	// batch's exact cycle total into three phase buckets (model broadcast,
	// compute window, tree reduce/write-back) under profMu; attribution down
	// to tape instructions happens lazily at snapshot time, so the RunBatch
	// cost is five integer adds and an uncontended mutex — no allocation.
	// Invariant: profBroadcast+profWindow+profReduce == Σ BatchResult.Cycles.
	profMu        sync.Mutex
	profBatches   int64
	profVectors   int64 // Σ ThreadVectors across batches
	profBroadcast int64
	profWindow    int64
	profReduce    int64
}

// New creates a simulator for the compiled program. The thread count comes
// from the program's plan.
func New(prog *compiler.Program) *Sim {
	s := &Sim{prog: prog, threads: prog.Plan.Threads}
	s.tape, s.tapeErr = prog.Graph.CompileTape()
	s.streamPerVec = ceilDiv(len(prog.DataStream), prog.Columns)
	s.analyze()
	return s
}

// SetWorkers sets the number of host goroutines RunBatch spreads the
// simulated MIMD threads across: 0 (the default) uses GOMAXPROCS, 1 forces
// the sequential path. The partial update is bit-identical for every
// worker count — threads are functionally independent until the final
// cross-thread reduction, which always runs in thread order.
func (s *Sim) SetWorkers(n int) { s.workers = n }

// simObs is the simulator's telemetry: instruments resolved once at Attach
// so RunBatch never touches the registry's lock or allocates for metrics.
type simObs struct {
	tr *obs.Tracer

	batches, vectors, cycles    *obs.Counter
	streamCycles, computeCycles *obs.Counter
	broadcastCycles, aggCycles  *obs.Counter
	peBusy, peIdle              []*obs.Counter // indexed by PE
	busKeys                     []int          // sorted bus segment ids
	busTransfers                []*obs.Counter // parallel to busKeys
	threadVectors               *obs.Histogram
}

// Attach wires the simulator to an observer: per-PE busy/idle cycle
// counters, per-bus-segment transfer counters, thread-occupancy histogram,
// reduction-tree (aggregation write-back) latency, and simulated-cycle trace
// spans for every batch. Attach(nil) detaches; a detached simulator's
// RunBatch is allocation-free.
func (s *Sim) Attach(o *obs.Observer) {
	if o == nil {
		s.mx = nil
		return
	}
	reg := o.Registry()
	mx := &simObs{tr: o.Tracer()}
	mx.batches = reg.Counter("cosmic_sim_batches_total")
	mx.vectors = reg.Counter("cosmic_sim_vectors_total")
	mx.cycles = reg.Counter("cosmic_sim_cycles_total")
	mx.streamCycles = reg.Counter("cosmic_sim_stream_cycles_total")
	mx.computeCycles = reg.Counter("cosmic_sim_compute_cycles_total")
	mx.broadcastCycles = reg.Counter("cosmic_sim_broadcast_cycles_total")
	mx.aggCycles = reg.Counter("cosmic_sim_reduce_cycles_total")
	for pe := range s.peLoad {
		id := strconv.Itoa(pe)
		mx.peBusy = append(mx.peBusy, reg.Counter(obs.Labeled("cosmic_sim_pe_busy_cycles_total", "pe", id)))
		mx.peIdle = append(mx.peIdle, reg.Counter(obs.Labeled("cosmic_sim_pe_idle_cycles_total", "pe", id)))
	}
	for bus := range s.busLoad {
		mx.busKeys = append(mx.busKeys, bus)
	}
	sort.Ints(mx.busKeys)
	for _, bus := range mx.busKeys {
		mx.busTransfers = append(mx.busTransfers,
			reg.Counter(obs.Labeled("cosmic_sim_bus_transfers_total", "bus", busName(bus))))
	}
	mx.threadVectors = reg.Histogram("cosmic_sim_thread_vectors",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})

	for t := 0; t < s.threads; t++ {
		mx.tr.NameThread(obs.PIDAccel, t, "thread "+strconv.Itoa(t))
	}
	for pe := range s.peLoad {
		mx.tr.NameThread(obs.PIDAccel, peTraceTID+pe, "pe "+strconv.Itoa(pe))
	}
	s.mx = mx
}

// peTraceTID offsets per-PE trace rows past the per-thread rows.
const peTraceTID = 1 << 10

// busName renders a bus segment id for metric labels.
func busName(bus int) string {
	switch {
	case bus >= busGroup:
		return "group" + strconv.Itoa(bus-busGroup)
	case bus >= busFlat:
		return "flat"
	case bus >= busTree:
		return "tree" + strconv.Itoa(bus-busTree)
	default:
		return "row" + strconv.Itoa(bus)
	}
}

// recordBatch emits the batch's metrics and simulated-cycle spans. The
// analytic timing model gives per-resource occupancies, not per-cycle
// events, so spans are laid out on the model's phase boundaries: model
// broadcast, then the threads' (and their PEs') steady-state compute, then
// the tree-bus reduction and write-back.
func (s *Sim) recordBatch(res *BatchResult, maxVecs int) {
	mx := s.mx
	totalVecs := sumInts(res.ThreadVectors)

	mx.batches.Inc()
	mx.vectors.Add(totalVecs)
	mx.cycles.Add(res.Cycles)
	mx.streamCycles.Add(res.StreamCycles)
	mx.computeCycles.Add(res.ComputeCycles)
	broadcast := s.ModelBroadcastCycles()
	reduce := s.AggWritebackCycles()
	mx.broadcastCycles.Add(broadcast)
	mx.aggCycles.Add(reduce)
	for pe, load := range s.peLoad {
		busy := load * int64(maxVecs)
		mx.peBusy[pe].Add(busy)
		if idle := res.Cycles - busy; idle > 0 {
			mx.peIdle[pe].Add(idle)
		}
	}
	// busLoad counts one thread's per-vector transmissions; every thread
	// replays the schedule on its own sub-array's segments.
	for i, bus := range mx.busKeys {
		mx.busTransfers[i].Add(s.busLoad[bus] * totalVecs)
	}
	for _, n := range res.ThreadVectors {
		mx.threadVectors.Observe(float64(n))
	}

	base := s.cycleBase
	computeEnd := s.CyclesForRounds(maxVecs)
	mx.tr.Cycles("accel", "model-broadcast", 0, base, broadcast, nil)
	for t, n := range res.ThreadVectors {
		mx.tr.Cycles("accel", "thread-compute", t, base+broadcast, computeEnd-broadcast,
			map[string]any{"vectors": n})
	}
	for pe, load := range s.peLoad {
		if busy := load * int64(maxVecs); busy > 0 {
			mx.tr.Cycles("accel", "pe-busy", peTraceTID+pe, base+broadcast, busy, nil)
		}
	}
	mx.tr.Cycles("accel", "tree-reduce", 0, base+computeEnd, reduce, nil)
	s.cycleBase = base + computeEnd + reduce
}

// analyze derives the static occupancy profile and single-vector makespan.
func (s *Sim) analyze() {
	prog := s.prog
	s.peLoad = make([]int64, prog.NPE)
	s.busLoad = map[int]int64{}

	seen := map[int64]bool{}
	for _, id := range prog.IssueOrder {
		n := prog.Graph.Nodes[id]
		pe := prog.PE[id]
		s.peLoad[pe]++
		for _, a := range n.Args {
			if a.Op == dfg.OpConst {
				continue
			}
			src := prog.PE[a.ID]
			if src < 0 || src == pe {
				continue
			}
			bus := s.busFor(src, pe)
			if bus == busNone {
				continue
			}
			key := int64(a.ID)<<24 | int64(bus)
			if !seen[key] {
				seen[key] = true
				s.busLoad[bus]++
			}
		}
	}
	for pe, ids := range prog.GradAccum {
		s.peLoad[pe] += int64(len(ids))
	}

	s.startup = s.vectorMakespan()

	// Steady-state initiation interval of one round (Threads vectors): the
	// busiest private resource bounds each thread's vector; the shared
	// memory interface delivers Threads vectors per round.
	s.interval = int64(s.threads * s.streamPerVec)
	for _, l := range s.peLoad {
		if l > s.interval {
			s.interval = l
		}
	}
	for _, l := range s.busLoad {
		if l > s.interval {
			s.interval = l
		}
	}
	if s.interval < 1 {
		s.interval = 1
	}
}

// busFor classifies the interconnect segment a src→dst transfer rides.
func (s *Sim) busFor(src, dst int) int {
	if s.prog.Interconnect == compiler.FlatBus {
		if src/tablaGroupSize == dst/tablaGroupSize {
			return busGroup + src/tablaGroupSize
		}
		return busFlat
	}
	srcRow, dstRow := s.prog.RowOf(src), s.prog.RowOf(dst)
	switch {
	case sameRowAdjacent(s.prog, src, dst):
		return busNone // dedicated neighbor link, no shared segment
	case srcRow == dstRow:
		return srcRow
	default:
		return busTree + treeLCA(srcRow, dstRow, s.prog.Rows)
	}
}

// treeLCA returns the heap index of the lowest common ancestor of two rows
// in the complete binary tree the tree bus forms over the accelerator's
// rows: the switch where a cross-row transfer contends.
func treeLCA(a, b, rows int) int {
	n := 1
	for n < rows {
		n <<= 1
	}
	a += n
	b += n
	for a != b {
		if a > b {
			a >>= 1
		} else {
			b >>= 1
		}
	}
	return a
}

// transferLatency is the cycles a value spends in flight from src to dst
// once granted its segment.
func (s *Sim) transferLatency(src, dst int) int64 {
	if s.prog.Interconnect == compiler.FlatBus {
		if src/tablaGroupSize == dst/tablaGroupSize {
			return RowBusLatency
		}
		return 2 * RowBusLatency // the global bus spans the whole fabric
	}
	srcRow, dstRow := s.prog.RowOf(src), s.prog.RowOf(dst)
	switch {
	case sameRowAdjacent(s.prog, src, dst):
		return NeighborLatency
	case srcRow == dstRow:
		return RowBusLatency
	default:
		// The tree bus's latency grows logarithmically with the row span,
		// the property that keeps the template scalable ("communication
		// latency only grows by a logarithmic order").
		span := absInt(srcRow-dstRow) + 1
		levels := int(math.Ceil(math.Log2(float64(span))))
		return int64(treeBusBase + treeBusPerLevel*levels)
	}
}

// vectorMakespan event-simulates one vector on one thread: in-order PE
// issue, bus contention (one transmission per segment per cycle, snoopable
// by every PE on the segment), and word-by-word data delivery from cycle 0.
func (s *Sim) vectorMakespan() int64 {
	prog := s.prog
	g := prog.Graph

	arrival := make([]int64, len(g.Nodes))
	for k, id := range prog.DataStream {
		if id >= 0 {
			arrival[id] = int64(k/prog.Columns) + 1
		}
	}
	// Model parameters are resident before the batch starts (broadcast is
	// accounted separately in ModelBroadcastCycles).

	peFree := make([]int64, prog.NPE)
	busFree := map[int]int64{}
	sent := map[int64]int64{}

	var makespan int64
	for _, id := range prog.IssueOrder {
		n := g.Nodes[id]
		pe := prog.PE[id]
		ready := peFree[pe]
		for _, a := range n.Args {
			if a.Op == dfg.OpConst {
				continue
			}
			at := arrival[a.ID]
			src := prog.PE[a.ID]
			if src >= 0 && src != pe {
				at = s.scheduleTransfer(a.ID, src, pe, at, busFree, sent)
			}
			if at > ready {
				ready = at
			}
		}
		issue := ready
		peFree[pe] = issue + 1
		arrival[id] = issue + 1 // bypass path for local consumers
		if issue+1 > makespan {
			makespan = issue + 1
		}
	}
	// Per-vector gradient accumulation on the owning PEs.
	for pe, ids := range prog.GradAccum {
		if len(ids) == 0 {
			continue
		}
		t := peFree[pe]
		for _, id := range ids {
			if arrival[id] > t {
				t = arrival[id]
			}
			t++
		}
		if t > makespan {
			makespan = t
		}
	}
	return makespan
}

// scheduleTransfer books a bus slot for a value's transmission (or snoops
// one already made) and returns its arrival at dst.
func (s *Sim) scheduleTransfer(node, src, dst int, ready int64, busFree map[int]int64, sent map[int64]int64) int64 {
	// A remote reader sees the value after pipeline write-back, not the
	// bypass: charge the tail.
	ready += PipelineDepth - 2
	bus := s.busFor(src, dst)
	lat := s.transferLatency(src, dst)
	if bus == busNone {
		return ready + lat
	}
	key := int64(node)<<24 | int64(bus)
	if at, ok := sent[key]; ok {
		return at
	}
	start := ready
	if f := busFree[bus]; f > start {
		start = f
	}
	busFree[bus] = start + 1
	at := start + lat
	sent[key] = at
	return at
}

// BatchResult is the outcome of one mini-batch on one accelerator.
type BatchResult struct {
	// Cycles is the total cycle count: model broadcast, streaming, compute,
	// local cross-thread aggregation, and gradient write-back.
	Cycles int64
	// Partial is the accelerator's locally aggregated partial update: the
	// averaged per-thread models keyed by model symbol (AggAverage) or the
	// summed gradients keyed by gradient symbol (AggSum).
	Partial map[string][]float64
	// ThreadVectors records how many vectors each thread consumed.
	ThreadVectors []int
	// StreamCycles is the memory interface's busy time; ComputeCycles is
	// the busiest PE's occupancy summed over rounds. Their comparison
	// drives the Figure 13/15 analyses.
	StreamCycles, ComputeCycles int64
}

// ModelBroadcastCycles returns the per-batch model broadcast cost.
func (s *Sim) ModelBroadcastCycles() int64 {
	return int64(ceilDiv(len(s.prog.ModelStream), s.prog.Columns))
}

// AggWritebackCycles returns the end-of-batch cross-thread aggregation and
// write-back cost: the tree-bus ALUs combine thread partials level by level
// at Columns words per cycle, then the aggregate streams back to the host.
func (s *Sim) AggWritebackCycles() int64 {
	grads := s.prog.Graph.GradientWords()
	levels := 0
	if s.threads > 1 {
		levels = int(math.Ceil(math.Log2(float64(s.threads))))
	}
	return int64(ceilDiv(grads, s.prog.Columns) * (levels + 2))
}

// Interval returns the steady-state initiation interval per round (one
// vector on every thread).
func (s *Sim) Interval() int64 { return s.interval }

// Startup returns the single-vector makespan (pipeline fill latency).
func (s *Sim) Startup() int64 { return s.startup }

// StreamPerVector returns the memory cycles to deliver one vector.
func (s *Sim) StreamPerVector() int { return s.streamPerVec }

// MaxPELoad returns the busiest PE's per-vector occupancy.
func (s *Sim) MaxPELoad() int64 {
	var m int64
	for _, l := range s.peLoad {
		if l > m {
			m = l
		}
	}
	return m
}

// CyclesForRounds composes the timing model for the given number of rounds
// (one vector per thread per round), excluding aggregation/write-back.
func (s *Sim) CyclesForRounds(rounds int) int64 {
	if rounds <= 0 {
		return s.ModelBroadcastCycles()
	}
	return s.ModelBroadcastCycles() + int64(s.streamPerVec) + s.startup + int64(rounds-1)*s.interval
}

// RunBatch simulates the accelerator processing one mini-batch: parts[t]
// holds thread t's data sub-partition as per-vector data bindings. model is
// the broadcast model; lr and agg define the local update discipline
// (Equation 3a within each thread).
//
// Execution is MIMD on the host too: each simulated worker thread runs its
// vector sequence on its own compiled-tape arena, spread across up to
// SetWorkers host goroutines. Threads share no functional state until the
// final reduction, which combines their partials in ascending thread order,
// so the result is bit-identical to the sequential (workers=1) path.
func (s *Sim) RunBatch(model map[string][]float64, parts [][]map[string][]float64,
	lr float64, agg dsl.AggregatorKind) (*BatchResult, error) {

	if len(parts) != s.threads {
		return nil, fmt.Errorf("accel: %d sub-partitions for %d threads", len(parts), s.threads)
	}
	if s.tapeErr != nil {
		return nil, s.tapeErr
	}
	pairs, err := s.prog.Graph.Unit.ModelGradientPairs()
	if err != nil {
		return nil, err
	}

	maxVecs := 0
	for _, p := range parts {
		if len(p) > maxVecs {
			maxVecs = len(p)
		}
	}

	res := &BatchResult{
		Partial:       map[string][]float64{},
		ThreadVectors: make([]int, s.threads),
	}

	// Functional state per thread: a local model copy (average mode) or a
	// gradient accumulator (sum mode).
	localModels := make([]map[string][]float64, s.threads)
	gradSums := make([]map[string][]float64, s.threads)
	for t := 0; t < s.threads; t++ {
		localModels[t] = copyBindings(model)
		gradSums[t] = map[string][]float64{}
		for name, outs := range s.prog.Graph.Outputs {
			gradSums[t][name] = make([]float64, len(outs))
		}
	}
	for len(s.arenas) < s.threads {
		s.arenas = append(s.arenas, s.tape.NewArena())
	}

	// runThread executes thread t's whole vector sequence. It touches only
	// index-t state, so concurrent calls for distinct threads are
	// race-free.
	runThread := func(t int) error {
		arena := s.arenas[t]
		if err := arena.BindModel(localModels[t]); err != nil {
			return err
		}
		for _, data := range parts[t] {
			if err := arena.BindData(data); err != nil {
				return err
			}
			grads := arena.Eval()
			switch agg {
			case dsl.AggAverage:
				// Local SGD step: θ_t ← θ_t − μ·g (Equation 3a), then
				// re-bind so the next vector sees the updated parameters.
				for _, pr := range pairs {
					mvec := localModels[t][pr[0].Name]
					gvec := grads[pr[1].Name]
					for i := range mvec {
						mvec[i] -= lr * gvec[i]
					}
				}
				if err := arena.BindModel(localModels[t]); err != nil {
					return err
				}
			case dsl.AggSum:
				for name, g := range grads {
					acc := gradSums[t][name]
					for i := range g {
						acc[i] += g[i]
					}
				}
			}
		}
		res.ThreadVectors[t] = len(parts[t])
		return nil
	}

	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > s.threads {
		workers = s.threads
	}
	errs := make([]error, s.threads)
	if workers <= 1 {
		for t := 0; t < s.threads; t++ {
			errs[t] = runThread(t)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for t := w; t < s.threads; t += workers {
					errs[t] = runThread(t)
				}
			}(w)
		}
		wg.Wait()
	}
	// Report the lowest-indexed failure so the error is deterministic.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res.Cycles = s.CyclesForRounds(maxVecs) + s.AggWritebackCycles()
	res.StreamCycles = s.ModelBroadcastCycles() + int64(s.streamPerVec)*sumInts(res.ThreadVectors)
	res.ComputeCycles = s.MaxPELoad() * int64(maxVecs)
	broadcast, reduce := s.ModelBroadcastCycles(), s.AggWritebackCycles()
	s.profMu.Lock()
	s.profBatches++
	s.profVectors += sumInts(res.ThreadVectors)
	s.profBroadcast += broadcast
	s.profReduce += reduce
	s.profWindow += res.Cycles - broadcast - reduce
	s.profMu.Unlock()
	if s.mx != nil {
		s.recordBatch(res, maxVecs)
	}

	// Functional aggregation across threads (the tree-bus ALUs' job).
	switch agg {
	case dsl.AggAverage:
		for _, pr := range pairs {
			name := pr[0].Name
			out := make([]float64, len(model[name]))
			for t := 0; t < s.threads; t++ {
				for i, v := range localModels[t][name] {
					out[i] += v
				}
			}
			for i := range out {
				out[i] /= float64(s.threads)
			}
			res.Partial[name] = out
		}
	case dsl.AggSum:
		for name := range s.prog.Graph.Outputs {
			out := make([]float64, len(gradSums[0][name]))
			for t := 0; t < s.threads; t++ {
				for i, v := range gradSums[t][name] {
					out[i] += v
				}
			}
			res.Partial[name] = out
		}
	}
	return res, nil
}

// sameRowAdjacent reports whether two PEs share a dedicated bidirectional
// neighbor link: same row, adjacent columns. Such transfers ride no shared
// bus segment.
func sameRowAdjacent(p *compiler.Program, a, b int) bool {
	return p.RowOf(a) == p.RowOf(b) && absInt(p.ColOf(a)-p.ColOf(b)) == 1
}

// ceilDiv returns ⌈a/b⌉ for b > 0. The divisor is always a structural
// quantity (PE columns) that the plan validates as positive; a
// non-positive b is a programming error, so it panics rather than silently
// returning a wrong value.
func ceilDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("accel: ceilDiv by non-positive divisor %d", b))
	}
	return (a + b - 1) / b
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sumInts(xs []int) int64 {
	var s int64
	for _, x := range xs {
		s += int64(x)
	}
	return s
}

func copyBindings(m map[string][]float64) map[string][]float64 {
	out := make(map[string][]float64, len(m))
	for k, v := range m {
		c := make([]float64, len(v))
		copy(c, v)
		out[k] = c
	}
	return out
}

// MaxBusLoad returns the busiest bus segment's per-vector transmission
// count.
func (s *Sim) MaxBusLoad() int64 {
	var m int64
	for _, l := range s.busLoad {
		if l > m {
			m = l
		}
	}
	return m
}
