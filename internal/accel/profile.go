package accel

import (
	"fmt"

	"repro/internal/obs/profile"
)

// CycleProfile snapshots the simulator's cycle accounting as a pprof
// profile attributing every simulated cycle since construction to a stack:
//
//	n<id> <op> / op <op> / pe <pe> / compute   per-tape-instruction share
//	n<id> accum / op accum / pe <pe> / compute gradient running-sum updates
//	model-broadcast                            model distribution cycles
//	tree-reduce                                cross-thread reduce + write-back
//
// Stacks are leaf-first (pprof order), so `go tool pprof -top` shows DFG
// nodes as flat entries and compute/broadcast/reduce as roots. The second
// sample type counts executions (vectors for compute frames, batches for
// the broadcast/reduce phases).
//
// Attribution is exact, not sampled: the per-stack cycle values sum to the
// Σ of every BatchResult.Cycles the simulator returned. Within the compute
// window, cycles are apportioned uniformly across tape instructions and
// gradient-accumulation slots (each executes once per vector) using
// largest-remainder rounding so integer shares still sum exactly.
//
// Safe to call concurrently with RunBatch; the snapshot is consistent as of
// some batch boundary.
func (s *Sim) CycleProfile() (*profile.Raw, error) {
	if s.tapeErr != nil {
		return nil, s.tapeErr
	}
	s.profMu.Lock()
	batches, vectors := s.profBatches, s.profVectors
	broadcast, window, reduce := s.profBroadcast, s.profWindow, s.profReduce
	s.profMu.Unlock()
	if batches == 0 {
		return nil, fmt.Errorf("accel: no batches simulated yet")
	}

	cycles := profile.ValueType{Type: "cycles", Unit: "cycles"}
	p := profile.New(cycles, profile.ValueType{Type: "executions", Unit: "count"})
	p.SetPeriod(1, cycles)
	p.SetDefaultSampleType("cycles")
	p.AddComment(fmt.Sprintf("cosmic accel sim: threads=%d npe=%d batches=%d", s.threads, s.prog.NPE, batches))

	peFrame := func(node int) string {
		if node >= 0 && node < len(s.prog.PE) && s.prog.PE[node] >= 0 {
			return fmt.Sprintf("pe %d", s.prog.PE[node])
		}
		return "pe ?"
	}

	// The compute window is split uniformly over everything that executes
	// once per vector: tape instructions plus per-PE gradient accumulations.
	nInstr := s.tape.NumInstrs()
	items := nInstr
	for _, ids := range s.prog.GradAccum {
		items += len(ids)
	}
	var base, rem int64
	if items > 0 {
		base, rem = window/int64(items), window%int64(items)
	}
	next := 0
	share := func() int64 {
		v := base
		if int64(next) < rem {
			v++
		}
		next++
		return v
	}
	for i := 0; i < nInstr; i++ {
		op, node := s.tape.Instr(i)
		p.Add([]int64{share(), vectors},
			[]string{fmt.Sprintf("n%d %s", node, op), "op " + op.String(), peFrame(node), "compute"})
	}
	for pe, ids := range s.prog.GradAccum {
		for _, id := range ids {
			p.Add([]int64{share(), vectors},
				[]string{fmt.Sprintf("n%d accum", id), "op accum", fmt.Sprintf("pe %d", pe), "compute"})
		}
	}
	if items == 0 && window != 0 {
		p.Add([]int64{window, vectors}, []string{"compute"})
	}
	p.Add([]int64{broadcast, batches}, []string{"model-broadcast"})
	p.Add([]int64{reduce, batches}, []string{"tree-reduce"})
	return p.Raw(), nil
}
