package accel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/dfg"
	"repro/internal/dsl"
	"repro/internal/ml"
	"repro/internal/obs"
)

// obsTestSim builds a small 2-thread simulator with per-thread parts.
func obsTestSim(t testing.TB) (*Sim, map[string][]float64, [][]map[string][]float64) {
	t.Helper()
	alg := &ml.SVM{M: 48}
	unit, err := dsl.ParseAndAnalyze(alg.DSLSource(), alg.DSLParams())
	if err != nil {
		t.Fatal(err)
	}
	g, err := dfg.Translate(unit)
	if err != nil {
		t.Fatal(err)
	}
	chip := arch.ChipSpec{
		Name: "obs-chip", Kind: arch.FPGA,
		PEBudget: 64, StorageKB: 1024,
		MemBandwidthGBps: 6.4, FrequencyMHz: 100, TDPWatts: 10,
	}
	plan := arch.Plan{Chip: chip, Columns: chip.Columns(), Threads: 2, RowsPerThread: 2}
	prog, err := compiler.Compile(g, plan, compiler.StyleCoSMIC)
	if err != nil {
		t.Fatal(err)
	}
	sim := New(prog)
	rng := rand.New(rand.NewSource(3))
	model := alg.PackModel(alg.InitModel(rng))
	parts := make([][]map[string][]float64, 2)
	for tid := range parts {
		for v := 0; v < 4; v++ {
			s := ml.Sample{X: make([]float64, alg.M), Y: []float64{1}}
			for j := range s.X {
				s.X[j] = rng.NormFloat64()
			}
			parts[tid] = append(parts[tid], alg.PackSample(s))
		}
	}
	return sim, model, parts
}

// TestRunBatchTelemetry checks that an attached observer sees the batch:
// cycle counters agree with the BatchResult, per-PE busy cycles cover every
// loaded PE, bus transfer counters exist for every contended segment, and
// the trace carries per-PE and per-thread spans laid end to end.
func TestRunBatchTelemetry(t *testing.T) {
	sim, model, parts := obsTestSim(t)
	o := obs.New()
	sim.Attach(o)

	res1, err := sim.RunBatch(model, parts, 0.05, dsl.AggAverage)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sim.RunBatch(model, parts, 0.05, dsl.AggAverage)
	if err != nil {
		t.Fatal(err)
	}

	reg := o.Registry()
	if got := reg.Counter("cosmic_sim_batches_total").Value(); got != 2 {
		t.Errorf("batches_total = %d, want 2", got)
	}
	if got, want := reg.Counter("cosmic_sim_cycles_total").Value(), res1.Cycles+res2.Cycles; got != want {
		t.Errorf("cycles_total = %d, want %d", got, want)
	}
	if got, want := reg.Counter("cosmic_sim_vectors_total").Value(), int64(16); got != want {
		t.Errorf("vectors_total = %d, want %d", got, want)
	}

	var peBusy, busTx int64
	for _, s := range reg.Snapshot() {
		switch {
		case strings.HasPrefix(s.Name, "cosmic_sim_pe_busy_cycles_total"):
			peBusy += int64(s.Value)
		case strings.HasPrefix(s.Name, "cosmic_sim_bus_transfers_total"):
			busTx += int64(s.Value)
		}
	}
	if peBusy == 0 {
		t.Error("no per-PE busy cycles recorded")
	}
	if sim.MaxBusLoad() > 0 && busTx == 0 {
		t.Error("program has bus contention but no bus transfer counters")
	}

	var peSpans, threadSpans int
	var lastEnd int64
	for _, e := range o.Tracer().Events() {
		if e.Phase != "X" {
			continue
		}
		switch e.Name {
		case "pe-busy":
			peSpans++
		case "thread-compute":
			threadSpans++
		case "tree-reduce":
			if end := e.TS + e.Dur; end > lastEnd {
				lastEnd = end
			}
		}
	}
	if peSpans == 0 {
		t.Error("no per-PE spans in trace")
	}
	if threadSpans != 2*2 {
		t.Errorf("thread-compute spans = %d, want 4 (2 threads × 2 batches)", threadSpans)
	}
	if want := res1.Cycles + res2.Cycles; lastEnd != want {
		t.Errorf("trace timeline ends at cycle %d, want %d (batches laid end to end)", lastEnd, want)
	}
}

// TestRunBatchDetachedIsIdentical: attaching an observer must not perturb
// the numeric result, and detaching must stop recording.
func TestRunBatchDetachedIsIdentical(t *testing.T) {
	simA, model, parts := obsTestSim(t)
	simB, _, _ := obsTestSim(t)
	o := obs.New()
	simB.Attach(o)

	a, err := simA.RunBatch(model, parts, 0.05, dsl.AggAverage)
	if err != nil {
		t.Fatal(err)
	}
	b, err := simB.RunBatch(model, parts, 0.05, dsl.AggAverage)
	if err != nil {
		t.Fatal(err)
	}
	for name, av := range a.Partial {
		for i, v := range av {
			if b.Partial[name][i] != v {
				t.Fatalf("partial %s[%d] differs with observer attached", name, i)
			}
		}
	}

	simB.Attach(nil)
	if _, err := simB.RunBatch(model, parts, 0.05, dsl.AggAverage); err != nil {
		t.Fatal(err)
	}
	if got := o.Registry().Counter("cosmic_sim_batches_total").Value(); got != 1 {
		t.Errorf("detached simulator still recorded: batches_total = %d, want 1", got)
	}
}

// BenchmarkRunBatchObserved guards the no-op cost of instrumentation: the
// "detached" case must match the pre-telemetry RunBatch (zero allocations
// in steady state), and "attached" shows the enabled price.
func BenchmarkRunBatchObserved(b *testing.B) {
	for _, attached := range []bool{false, true} {
		b.Run(fmt.Sprintf("attached=%v", attached), func(b *testing.B) {
			sim, model, parts := obsTestSim(b)
			if attached {
				sim.Attach(obs.New())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunBatch(model, parts, 0.05, dsl.AggAverage); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
