package accel

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dsl"
	"repro/internal/obs/profile"
)

// The Table 1 exact-attribution sweep lives in attribution_test.go (package
// accel_test): it needs the planner, which reaches accel again via perf.

// TestCycleProfileStacks checks the frame structure on a small program:
// per-node leaves under op/pe/compute, plus the broadcast and reduce phase
// roots, and a working flat report.
func TestCycleProfileStacks(t *testing.T) {
	sim, model, parts := obsTestSim(t)
	if _, err := sim.CycleProfile(); err == nil {
		t.Fatal("CycleProfile before any batch should fail")
	}
	res, err := sim.RunBatch(model, parts, 0.05, dsl.AggAverage)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := sim.CycleProfile()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, f := range raw.Function {
		names[raw.StringTable[f.Name]] = true
	}
	for _, want := range []string{"compute", "model-broadcast", "tree-reduce"} {
		if !names[want] {
			t.Errorf("profile missing %q frame", want)
		}
	}
	foundOp, foundPE := false, false
	for n := range names {
		if strings.HasPrefix(n, "op ") {
			foundOp = true
		}
		if strings.HasPrefix(n, "pe ") {
			foundPE = true
		}
	}
	if !foundOp || !foundPE {
		t.Errorf("profile missing op/pe frames: %v %v", foundOp, foundPE)
	}

	var rep bytes.Buffer
	if err := profile.Top(&rep, raw, 0, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "flat%") {
		t.Errorf("Top report malformed:\n%s", rep.String())
	}

	// One more batch doubles the attributed total.
	if _, err := sim.RunBatch(model, parts, 0.05, dsl.AggAverage); err != nil {
		t.Fatal(err)
	}
	raw2, err := sim.CycleProfile()
	if err != nil {
		t.Fatal(err)
	}
	sum := func(r *profile.Raw) int64 {
		var v int64
		for _, s := range r.Sample {
			v += s.Value[0]
		}
		return v
	}
	if got, want := sum(raw2), 2*res.Cycles; got != want {
		t.Errorf("after 2 batches attributed %d cycles, want %d", got, want)
	}
}
