package accel_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/accel"
	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/dataset"
	"repro/internal/dfg"
	"repro/internal/dsl"
	"repro/internal/obs/profile"
	"repro/internal/planner"
)

// profScale shrinks a benchmark's geometry so the full Table 1 sweep stays
// tractable in unit-test time (same policy as `cosmicc vet`).
func profScale(b dataset.Benchmark) float64 {
	maxDim := 0
	for _, d := range b.Topology {
		if d > maxDim {
			maxDim = d
		}
	}
	s := 48.0 / float64(maxDim)
	if s > 1 {
		s = 1
	}
	return s
}

// TestCycleProfileExactAttribution is the attribution invariant over every
// Table 1 benchmark: the cycle values in the profile — per tape
// instruction, per gradient accumulation, plus the broadcast and reduce
// phases — must sum exactly to the Σ of every BatchResult.Cycles the
// simulator reported. The profile also has to survive the full .pb.gz
// encode → decode round trip. (External test package: the planner reaches
// accel again through perf, so this cannot live in package accel.)
func TestCycleProfileExactAttribution(t *testing.T) {
	for _, b := range dataset.Benchmarks {
		t.Run(b.Name, func(t *testing.T) {
			alg := b.Algorithm(profScale(b))
			unit, err := dsl.ParseAndAnalyze(alg.DSLSource(), alg.DSLParams())
			if err != nil {
				t.Fatal(err)
			}
			g, err := dfg.Translate(unit)
			if err != nil {
				t.Fatal(err)
			}
			point, err := planner.Plan(g, arch.UltraScalePlus, planner.Options{
				MiniBatch: 8, Style: compiler.StyleCoSMIC,
			})
			if err != nil {
				t.Fatal(err)
			}
			prog, err := compiler.Compile(g, point.Plan, compiler.StyleCoSMIC)
			if err != nil {
				t.Fatal(err)
			}
			sim := accel.New(prog)

			threads := prog.Plan.Threads
			samples := b.Generate(alg, 2*threads, 7)
			parts := make([][]map[string][]float64, threads)
			for i, s := range samples {
				parts[i%threads] = append(parts[i%threads], alg.PackSample(s))
			}
			model := alg.PackModel(alg.InitModel(rand.New(rand.NewSource(1))))

			var want int64
			for batch := 0; batch < 2; batch++ {
				res, err := sim.RunBatch(model, parts, 0.05, dsl.AggSum)
				if err != nil {
					t.Fatal(err)
				}
				want += res.Cycles
			}

			raw, err := sim.CycleProfile()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := raw.Write(&buf); err != nil {
				t.Fatal(err)
			}
			dec, err := profile.Decode(buf.Bytes())
			if err != nil {
				t.Fatalf("decoding emitted profile: %v", err)
			}
			ci := profile.SampleTypeIndex(dec, "cycles")
			if ci < 0 {
				t.Fatal("no cycles sample type")
			}
			var got int64
			for _, s := range dec.Sample {
				if s.Value[ci] < 0 {
					t.Errorf("negative cycle share %d", s.Value[ci])
				}
				got += s.Value[ci]
			}
			if got != want {
				t.Errorf("attributed cycles = %d, want exactly %d (Σ Result.Cycles)", got, want)
			}
		})
	}
}
