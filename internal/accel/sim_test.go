package accel

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/dfg"
	"repro/internal/dsl"
	"repro/internal/ml"
)

var testChip = arch.ChipSpec{
	Name: "test-chip", Kind: arch.FPGA,
	PEBudget: 64, StorageKB: 256,
	MemBandwidthGBps: 3.2, FrequencyMHz: 100,
	TDPWatts: 5,
}

func compileFor(t *testing.T, alg ml.Algorithm, threads, rows int, style compiler.Style) *compiler.Program {
	t.Helper()
	u, err := dsl.ParseAndAnalyze(alg.DSLSource(), alg.DSLParams())
	if err != nil {
		t.Fatal(err)
	}
	g, err := dfg.Translate(u)
	if err != nil {
		t.Fatal(err)
	}
	plan := arch.Plan{Chip: testChip, Columns: testChip.Columns(), Threads: threads, RowsPerThread: rows}
	prog, err := compiler.Compile(g, plan, style)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func packParts(alg ml.Algorithm, batch []ml.Sample, threads int) [][]map[string][]float64 {
	parts := ml.Partition(batch, threads)
	out := make([][]map[string][]float64, threads)
	for t, part := range parts {
		for _, s := range part {
			out[t] = append(out[t], alg.PackSample(s))
		}
	}
	return out
}

func randomBatch(alg ml.Algorithm, n int, rng *rand.Rand) []ml.Sample {
	batch := make([]ml.Sample, n)
	for i := range batch {
		s := ml.Sample{X: make([]float64, alg.FeatureSize()), Y: make([]float64, alg.OutputSize())}
		switch a := alg.(type) {
		case *ml.CF:
			s.X[rng.Intn(a.NU)] = 1
			s.X[a.NU+rng.Intn(a.NV)] = 1
			s.Y[0] = 1 + 4*rng.Float64()
		case *ml.SVM:
			for j := range s.X {
				s.X[j] = rng.NormFloat64()
			}
			s.Y[0] = float64(2*rng.Intn(2) - 1)
		default:
			for j := range s.X {
				s.X[j] = rng.NormFloat64()
			}
			for k := range s.Y {
				s.Y[k] = rng.Float64()
			}
		}
		batch[i] = s
	}
	return batch
}

// TestSimMatchesReferenceParallelSGD is the end-to-end functional check: the
// cycle-level simulator's partial update must equal the pure-Go parallel SGD
// reference bit-for-bit (both use float64 and the same operation order per
// thread).
func TestSimMatchesReferenceParallelSGD(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	algs := []ml.Algorithm{
		&ml.LinearRegression{M: 16},
		&ml.LogisticRegression{M: 12},
		&ml.SVM{M: 16},
		&ml.MLP{In: 6, Hid: 4, Out: 2},
		&ml.CF{NU: 4, NV: 6, K: 3},
	}
	for _, alg := range algs {
		t.Run(alg.Name(), func(t *testing.T) {
			const threads = 2
			prog := compileFor(t, alg, threads, 2, compiler.StyleCoSMIC)
			sim := New(prog)
			model := alg.InitModel(rng)
			batch := randomBatch(alg, 12, rng)
			const lr = 0.05

			res, err := sim.RunBatch(alg.PackModel(model), packParts(alg, batch, threads), lr, dsl.AggAverage)
			if err != nil {
				t.Fatal(err)
			}
			cfg := ml.SGDConfig{LearningRate: lr, Aggregator: dsl.AggAverage}
			want := ml.ParallelSGDBatch(alg, cfg, model, batch, threads)

			got := flattenModel(alg, res.Partial)
			if len(got) != len(want) {
				t.Fatalf("partial length %d, want %d", len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("θ[%d] = %g (sim), %g (reference)", i, got[i], want[i])
				}
			}
			if res.Cycles <= 0 {
				t.Errorf("cycles = %d", res.Cycles)
			}
		})
	}
}

// flattenModel concatenates per-symbol partials in the algorithm's flat
// model layout.
func flattenModel(alg ml.Algorithm, partial map[string][]float64) []float64 {
	packed := alg.PackModel(make([]float64, alg.ModelSize()))
	// Order of symbols follows PackModel's keys; reconstruct via known
	// layout: iterate alg.PackModel on an index-stamped model.
	stamp := make([]float64, alg.ModelSize())
	for i := range stamp {
		stamp[i] = float64(i)
	}
	stamped := alg.PackModel(stamp)
	out := make([]float64, alg.ModelSize())
	for name, vec := range stamped {
		for j, idx := range vec {
			out[int(idx)] = partial[name][j]
		}
	}
	_ = packed
	return out
}

func TestSimSumAggregatorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	alg := &ml.SVM{M: 16}
	const threads = 2
	prog := compileFor(t, alg, threads, 1, compiler.StyleCoSMIC)
	sim := New(prog)
	model := alg.InitModel(rng)
	batch := randomBatch(alg, 10, rng)

	res, err := sim.RunBatch(alg.PackModel(model), packParts(alg, batch, threads), 0.1, dsl.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	want := ml.AccumulateGradients(alg, model, batch)
	got := alg.UnpackGradient(res.Partial)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("Σg[%d] = %g (sim), %g (reference)", i, got[i], want[i])
		}
	}
}

func TestSimCyclesScaleWithVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	alg := &ml.LogisticRegression{M: 24}
	prog := compileFor(t, alg, 1, 2, compiler.StyleCoSMIC)
	sim := New(prog)
	model := alg.PackModel(alg.InitModel(rng))

	run := func(n int) int64 {
		res, err := sim.RunBatch(model, packParts(alg, randomBatch(alg, n, rng), 1), 0.1, dsl.AggAverage)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	c4, c16 := run(4), run(16)
	if c16 <= c4 {
		t.Errorf("cycles: 4 vectors -> %d, 16 vectors -> %d", c4, c16)
	}
	// Throughput should be roughly linear in vectors once pipelined: the
	// 16-vector run must cost less than 8× the 4-vector run.
	if c16 >= 8*c4 {
		t.Errorf("no pipelining: %d vs %d", c16, c4)
	}
}

// TestMultiThreadingImprovesThroughput: at equal total work and equal total
// PEs, two threads beat one (the paper's core architectural claim).
func TestMultiThreadingImprovesThroughput(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	alg := &ml.SVM{M: 16}
	batch := randomBatch(alg, 32, rng)
	model := alg.InitModel(rng)

	oneT := compileFor(t, alg, 1, 4, compiler.StyleCoSMIC) // T1×R4
	twoT := compileFor(t, alg, 2, 2, compiler.StyleCoSMIC) // T2×R4 total
	r1, err := New(oneT).RunBatch(alg.PackModel(model), packParts(alg, batch, 1), 0.05, dsl.AggAverage)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(twoT).RunBatch(alg.PackModel(model), packParts(alg, batch, 2), 0.05, dsl.AggAverage)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles >= r1.Cycles {
		t.Errorf("T2×R2/thread %d cycles, T1×R4 %d cycles: multithreading should win on this DFG",
			r2.Cycles, r1.Cycles)
	}
}

// TestTreeBusBeatsFlatBus: at identical mapping pressure, CoSMIC's template
// should outperform the TABLA-style single shared bus (Figure 17's shape).
func TestTreeBusBeatsFlatBus(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	alg := &ml.MLP{In: 8, Hid: 6, Out: 3}
	batch := randomBatch(alg, 8, rng)
	model := alg.InitModel(rng)

	cosmic := compileFor(t, alg, 1, 4, compiler.StyleCoSMIC)
	tabla := compileFor(t, alg, 1, 4, compiler.StyleTABLA)
	rc, err := New(cosmic).RunBatch(alg.PackModel(model), packParts(alg, batch, 1), 0.1, dsl.AggAverage)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(tabla).RunBatch(alg.PackModel(model), packParts(alg, batch, 1), 0.1, dsl.AggAverage)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Cycles >= rt.Cycles {
		t.Errorf("CoSMIC %d cycles, TABLA %d cycles: tree-bus + data-first mapping should win",
			rc.Cycles, rt.Cycles)
	}
	// Both must compute the same result regardless of template.
	for name, v := range rc.Partial {
		for i := range v {
			if math.Abs(v[i]-rt.Partial[name][i]) > 1e-9 {
				t.Fatalf("partials diverge at %s[%d]", name, i)
			}
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	alg := &ml.LinearRegression{M: 16}
	prog := compileFor(t, alg, 2, 1, compiler.StyleCoSMIC)
	model := alg.PackModel(alg.InitModel(rng))
	batch := randomBatch(alg, 8, rng)
	parts := packParts(alg, batch, 2)

	r1, err := New(prog).RunBatch(model, parts, 0.05, dsl.AggAverage)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(prog).RunBatch(model, parts, 0.05, dsl.AggAverage)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("cycles differ: %d vs %d", r1.Cycles, r2.Cycles)
	}
	// Reusing one Sim must also be deterministic (state fully reset).
	sim := New(prog)
	r3, _ := sim.RunBatch(model, parts, 0.05, dsl.AggAverage)
	r4, _ := sim.RunBatch(model, parts, 0.05, dsl.AggAverage)
	if r3.Cycles != r4.Cycles {
		t.Errorf("reused sim cycles differ: %d vs %d", r3.Cycles, r4.Cycles)
	}
}

func TestSimRejectsWrongPartitionCount(t *testing.T) {
	alg := &ml.SVM{M: 8}
	prog := compileFor(t, &ml.SVM{M: 8}, 2, 1, compiler.StyleCoSMIC)
	sim := New(prog)
	_, err := sim.RunBatch(alg.PackModel(make([]float64, 8)), make([][]map[string][]float64, 3), 0.1, dsl.AggAverage)
	if err == nil {
		t.Error("expected partition-count error")
	}
}

func TestBatchBreakdownPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	alg := &ml.LogisticRegression{M: 16}
	prog := compileFor(t, alg, 1, 1, compiler.StyleCoSMIC)
	res, err := New(prog).RunBatch(alg.PackModel(alg.InitModel(rng)),
		packParts(alg, randomBatch(alg, 6, rng), 1), 0.1, dsl.AggAverage)
	if err != nil {
		t.Fatal(err)
	}
	if res.StreamCycles <= 0 || res.ComputeCycles <= 0 {
		t.Errorf("breakdown: stream %d compute %d", res.StreamCycles, res.ComputeCycles)
	}
	if res.ThreadVectors[0] != 6 {
		t.Errorf("thread vectors = %v", res.ThreadVectors)
	}
}

// TestIntervalLowerBounds: the steady-state interval can never undercut the
// memory interface's delivery time, the busiest PE's occupancy, or the
// busiest bus segment — property-tested over random plan shapes.
func TestIntervalLowerBounds(t *testing.T) {
	check := func(mSeed, shapeSeed uint8) bool {
		m := 8 + int(mSeed%48)
		threads := 1 << (shapeSeed % 2)
		rows := 1 << (shapeSeed % 3)
		if threads*rows > testChip.RowLimit() {
			return true
		}
		alg := &ml.SVM{M: m}
		u, err := dsl.ParseAndAnalyze(alg.DSLSource(), alg.DSLParams())
		if err != nil {
			return false
		}
		g, err := dfg.Translate(u)
		if err != nil {
			return false
		}
		plan := arch.Plan{Chip: testChip, Columns: testChip.Columns(), Threads: threads, RowsPerThread: rows}
		prog, err := compiler.Compile(g, plan, compiler.StyleCoSMIC)
		if err != nil {
			return false
		}
		s := New(prog)
		iv := s.Interval()
		if iv < int64(threads*s.StreamPerVector()) {
			return false
		}
		if iv < s.MaxPELoad() || iv < s.MaxBusLoad() {
			return false
		}
		// The startup latency of a vector can never undercut its critical
		// path or its delivery time.
		if s.Startup() < int64(g.CriticalPath()) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCyclesForRoundsMonotone: more rounds always cost more cycles, and the
// marginal cost is exactly the interval.
func TestCyclesForRoundsMonotone(t *testing.T) {
	prog := compileFor(t, &ml.LogisticRegression{M: 32}, 2, 2, compiler.StyleCoSMIC)
	s := New(prog)
	prev := s.CyclesForRounds(0)
	for r := 1; r <= 32; r *= 2 {
		cur := s.CyclesForRounds(r)
		if cur <= prev {
			t.Fatalf("CyclesForRounds(%d) = %d not above previous %d", r, cur, prev)
		}
		prev = cur
	}
	d1 := s.CyclesForRounds(11) - s.CyclesForRounds(10)
	if d1 != s.Interval() {
		t.Errorf("marginal round cost %d != interval %d", d1, s.Interval())
	}
}

// TestPartialIndependentOfTemplate: the numeric result must not depend on
// the interconnect or thread shape (only timing does) — quick-checked over
// shapes.
func TestPartialIndependentOfTemplate(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	alg := &ml.LinearRegression{M: 16}
	model := alg.InitModel(rng)
	batch := randomBatch(alg, 8, rng)
	want := ml.AccumulateGradients(alg, model, batch)

	for _, shape := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {4, 1}} {
		prog := compileFor(t, alg, shape[0], shape[1], compiler.StyleCoSMIC)
		res, err := New(prog).RunBatch(alg.PackModel(model), packParts(alg, batch, shape[0]), 0.1, dsl.AggSum)
		if err != nil {
			t.Fatal(err)
		}
		got := alg.UnpackGradient(res.Partial)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("shape %v: Σg[%d] = %g, want %g", shape, i, got[i], want[i])
			}
		}
	}
}

// TestParallelRunBatchBitIdentical (satellite of the MIMD tentpole): the
// parallel RunBatch must produce byte-identical Partial maps to the
// sequential path for every worker count, GOMAXPROCS setting, and both
// aggregator kinds. Run under -race in CI to also prove the worker
// goroutines share no unsynchronized state.
func TestParallelRunBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	alg := &ml.MLP{In: 10, Hid: 8, Out: 4}
	const threads = 4
	prog := compileFor(t, alg, threads, 1, compiler.StyleCoSMIC)
	model := alg.PackModel(alg.InitModel(rng))
	batch := randomBatch(alg, 24, rng)
	parts := packParts(alg, batch, threads)

	for _, agg := range []dsl.AggregatorKind{dsl.AggAverage, dsl.AggSum} {
		seq := New(prog)
		seq.SetWorkers(1)
		want, err := seq.RunBatch(model, parts, 0.05, agg)
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range []int{1, 2, 4} {
			prev := runtime.GOMAXPROCS(procs)
			for _, workers := range []int{0, 2, 3, threads} {
				par := New(prog)
				par.SetWorkers(workers)
				got, err := par.RunBatch(model, parts, 0.05, agg)
				if err != nil {
					t.Fatal(err)
				}
				requirePartialBitEqual(t, want.Partial, got.Partial)
				if got.Cycles != want.Cycles {
					t.Errorf("agg %v workers %d: cycles %d != sequential %d",
						agg, workers, got.Cycles, want.Cycles)
				}
			}
			runtime.GOMAXPROCS(prev)
		}
		// Reusing one Sim (and its per-thread arenas) across batches must
		// also stay bit-identical.
		reused := New(prog)
		for i := 0; i < 3; i++ {
			got, err := reused.RunBatch(model, parts, 0.05, agg)
			if err != nil {
				t.Fatal(err)
			}
			requirePartialBitEqual(t, want.Partial, got.Partial)
		}
	}
}

func requirePartialBitEqual(t *testing.T, want, got map[string][]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("partial symbols: %d vs %d", len(want), len(got))
	}
	for name, wv := range want {
		gv := got[name]
		if len(wv) != len(gv) {
			t.Fatalf("%s: length %d vs %d", name, len(wv), len(gv))
		}
		for i := range wv {
			if math.Float64bits(wv[i]) != math.Float64bits(gv[i]) {
				t.Fatalf("%s[%d]: %v (%#x) vs %v (%#x)", name, i,
					wv[i], math.Float64bits(wv[i]), gv[i], math.Float64bits(gv[i]))
			}
		}
	}
}

// TestSimMatchesInterpreterEval: the tape-backed RunBatch must agree with a
// direct Graph.Eval interpreter loop bit-for-bit (AggSum makes the
// comparison exact: pure gradient sums, no learning-rate coupling).
func TestSimMatchesInterpreterEval(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	alg := &ml.SVM{M: 12}
	const threads = 2
	prog := compileFor(t, alg, threads, 1, compiler.StyleCoSMIC)
	model := alg.PackModel(alg.InitModel(rng))
	batch := randomBatch(alg, 10, rng)
	parts := packParts(alg, batch, threads)

	res, err := New(prog).RunBatch(model, parts, 0.1, dsl.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror RunBatch's reduction shape exactly: per-thread gradient sums,
	// then an ordered cross-thread reduction (float addition is not
	// associative, so the shape matters for bit equality).
	perThread := make([]map[string][]float64, threads)
	for th := 0; th < threads; th++ {
		perThread[th] = map[string][]float64{}
		for name, outs := range prog.Graph.Outputs {
			perThread[th][name] = make([]float64, len(outs))
		}
		for _, data := range parts[th] {
			grads, err := prog.Graph.Eval(dfg.Bindings{Data: data, Model: model})
			if err != nil {
				t.Fatal(err)
			}
			// cosmic:ordered — each key accumulates into its own vector, so
			// cross-key iteration order cannot change any element's sum.
			for name, g := range grads {
				for i := range g {
					perThread[th][name][i] += g[i]
				}
			}
		}
	}
	want := map[string][]float64{}
	for name, outs := range prog.Graph.Outputs {
		vec := make([]float64, len(outs))
		for th := 0; th < threads; th++ {
			for i, v := range perThread[th][name] {
				vec[i] += v
			}
		}
		want[name] = vec
	}
	requirePartialBitEqual(t, want, res.Partial)
}

// TestCeilDiv pins the contract: exact ceiling division for positive
// divisors, panic on non-positive ones.
func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 1, 0}, {1, 1, 1}, {7, 2, 4}, {8, 2, 4}, {9, 2, 5}, {1, 8, 1}, {16, 4, 4},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	for _, b := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ceilDiv(1, %d) did not panic", b)
				}
			}()
			ceilDiv(1, b)
		}()
	}
}
