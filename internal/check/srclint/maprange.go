package srclint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runMapRange reports order-sensitive work inside `for ... range someMap`
// bodies: emitting output, appending to an outer slice that is never
// sorted, and compound floating-point accumulation. Map iteration order is
// randomized per run, so all three produce run-to-run drift — fatal for the
// bit-reproducibility the system layer promises. `//cosmic:ordered` on the
// range statement's line (or the line above) silences a site where order is
// provably irrelevant.
func runMapRange(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ann := annotations(p.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			for i, s := range list {
				rng, ok := unwrapLabels(s).(*ast.RangeStmt)
				if !ok || !isMapRange(rng, p.Info) {
					continue
				}
				if annotatedAt(p.Fset, ann, rng.Pos(), markOrdered) {
					continue
				}
				out = append(out, checkMapRange(p.Fset, rng, list[i+1:], p.Info)...)
			}
			return true
		})
	}
	return out
}

// checkMapRange audits one map range loop's body; rest is the remainder of
// the enclosing statement list, scanned for the collect-then-sort idiom.
func checkMapRange(fset *token.FileSet, rng *ast.RangeStmt, rest []ast.Stmt, info *types.Info) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, diag(fset, "maprange", SeverityError, pos, format, args...))
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				lhs := n.Lhs[0]
				if isFloat(lhs, info) && declaredOutside(lhs, rng.Body, info) {
					report(n.Pos(), "floating-point accumulation in map iteration order: %s is not associative across the randomized order (annotate //cosmic:ordered if order is provably irrelevant)", n.Tok)
				}
			case token.ASSIGN:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					call, ok := n.Rhs[i].(*ast.CallExpr)
					if !ok || !isAppendCall(call, info) {
						continue
					}
					if !declaredOutside(lhs, rng.Body, info) {
						continue
					}
					if obj := rootObj(lhs, info); obj != nil && sortedAfter(rest, obj, info) {
						continue // collect-then-sort: deterministic
					}
					report(n.Pos(), "append to %s in map iteration order without a later sort in this block", exprString(lhs))
				}
			}
		case *ast.CallExpr:
			if name, ok := orderedOutputCall(n, info); ok {
				report(n.Pos(), "ordered output via %s inside map range: emission order is randomized per run", name)
			}
		}
		return true
	})
	return out
}

func isMapRange(rng *ast.RangeStmt, info *types.Info) bool {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isFloat(e ast.Expr, info *types.Info) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredOutside reports whether the expression's root variable is
// declared outside the loop body (true also when the root cannot be
// resolved — the pass stays conservative when type information degraded).
func declaredOutside(e ast.Expr, body *ast.BlockStmt, info *types.Info) bool {
	obj := rootObj(e, info)
	if obj == nil {
		return true
	}
	return obj.Pos() < body.Pos() || obj.Pos() >= body.End()
}

func isAppendCall(call *ast.CallExpr, info *types.Info) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if o, ok := info.Uses[id]; ok {
		_, isBuiltin := o.(*types.Builtin)
		return isBuiltin
	}
	return true // unresolved: assume the builtin
}

// sortedAfter reports whether a later statement in the same block hands the
// collected slice to the sort or slices package — the deterministic
// collect-then-sort idiom.
func sortedAfter(rest []ast.Stmt, obj types.Object, info *types.Info) bool {
	for _, s := range rest {
		es, ok := unwrapLabels(s).(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if p := pkgPathOf(sel.X, info); p != "sort" && p != "slices" {
			continue
		}
		for _, a := range call.Args {
			if mentionsObj(a, obj, info) {
				return true
			}
		}
	}
	return false
}

// orderedOutputCall recognizes calls that emit in iteration order: the fmt
// printers, and writer-shaped methods on any receiver.
func orderedOutputCall(call *ast.CallExpr, info *types.Info) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if p := pkgPathOf(sel.X, info); p != "" {
		if p == "fmt" {
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return "fmt." + name, true
			}
		}
		return "", false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println":
		return "(" + exprString(sel.X) + ")." + name, true
	}
	return "", false
}
