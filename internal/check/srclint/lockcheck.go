package srclint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runLockCheck audits mutex pairing and goroutine hygiene.
//
// Mutex pairing (every package): within one function, a Lock (or RLock)
// must be matched by an Unlock (or RUnlock) of the same receiver expression
// on every path — a deferred Unlock satisfies every path; a `return` while
// a lock is held with no deferred unlock is an error, as is locking the
// same mutex twice on one path (Go mutexes are not reentrant). The walk is
// block-structured: branches are analyzed independently and a mutex is
// considered held after a branch only if every surviving arm left it held.
//
// Goroutine hygiene (packages runtime and obs only, where the system
// layer's long-lived workers live): a `go` launch whose body captures an
// enclosing loop variable instead of taking it as an argument is flagged,
// and a launch whose body spins an unbounded `for` loop with no visible
// shutdown edge — no select, channel receive or range, WaitGroup
// Done/Wait, or ctx/done/stop/quit reference — is flagged unless the
// launch carries a //cosmic:shutdown annotation naming who stops it.
func runLockCheck(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ann := annotations(p.Fset, f)
		eachFunc(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			w := &lockWalker{p: p, ann: ann, reported: map[string]bool{}}
			env := &lockEnv{held: map[string]token.Pos{}, deferred: map[string]bool{}}
			terminated := w.walkStmts(body.List, env)
			if !terminated {
				w.pathCheck(env, token.NoPos)
			}
			out = append(out, w.diags...)
		})
	}
	base := strings.TrimSuffix(p.Name, "_test")
	if base == "runtime" || base == "obs" {
		out = append(out, checkGoroutines(p)...)
	}
	return out
}

type lockEnv struct {
	held     map[string]token.Pos // canonical mutex expr → Lock position
	deferred map[string]bool      // unlocked by a registered defer
}

func (e *lockEnv) clone() *lockEnv {
	c := &lockEnv{held: map[string]token.Pos{}, deferred: map[string]bool{}}
	for k, v := range e.held {
		c.held[k] = v
	}
	for k := range e.deferred {
		c.deferred[k] = true
	}
	return c
}

// mergeLocks keeps a mutex held only when every surviving branch holds it.
func mergeLocks(envs []*lockEnv) *lockEnv {
	if len(envs) == 0 {
		return &lockEnv{held: map[string]token.Pos{}, deferred: map[string]bool{}}
	}
	m := envs[0].clone()
	for _, e := range envs[1:] {
		for k := range m.held {
			if _, ok := e.held[k]; !ok {
				delete(m.held, k)
			}
		}
		for k := range e.deferred {
			m.deferred[k] = true
		}
	}
	return m
}

type lockWalker struct {
	p        *Package
	ann      map[int]map[string]bool
	diags    []Diagnostic
	reported map[string]bool
}

func (w *lockWalker) report(sev Severity, pos token.Pos, format string, args ...any) {
	d := diag(w.p.Fset, "lockcheck", sev, pos, format, args...)
	key := d.File + ":" + itoa(d.Line) + ":" + d.Message
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.diags = append(w.diags, d)
}

func (w *lockWalker) walkStmts(list []ast.Stmt, env *lockEnv) bool {
	for _, s := range list {
		if w.walkStmt(unwrapLabels(s), env) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, env *lockEnv) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := unwrapExpr(s.X).(*ast.CallExpr); ok {
			w.handleCall(call, env)
		}
	case *ast.DeferStmt:
		w.handleDefer(s, env)
	case *ast.ReturnStmt:
		w.pathCheck(env, s.Pos())
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		thenEnv := env.clone()
		thenTerm := w.walkStmts(s.Body.List, thenEnv)
		var surviving []*lockEnv
		if !thenTerm {
			surviving = append(surviving, thenEnv)
		}
		if s.Else != nil {
			elseEnv := env.clone()
			if !w.walkStmt(unwrapLabels(s.Else), elseEnv) {
				surviving = append(surviving, elseEnv)
			}
		} else {
			surviving = append(surviving, env.clone())
		}
		if len(surviving) == 0 {
			return true
		}
		*env = *mergeLocks(surviving)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		bodyEnv := env.clone()
		w.walkStmts(s.Body.List, bodyEnv)
		*env = *mergeLocks([]*lockEnv{env.clone(), bodyEnv})
	case *ast.RangeStmt:
		bodyEnv := env.clone()
		w.walkStmts(s.Body.List, bodyEnv)
		*env = *mergeLocks([]*lockEnv{env.clone(), bodyEnv})
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		return w.walkClauses(s.Body, env, hasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		return w.walkClauses(s.Body, env, hasDefault(s.Body))
	case *ast.SelectStmt:
		return w.walkClauses(s.Body, env, false)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, env)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, env)
	}
	return false
}

func (w *lockWalker) walkClauses(body *ast.BlockStmt, env *lockEnv, exhaustive bool) bool {
	var surviving []*lockEnv
	for _, s := range body.List {
		cEnv := env.clone()
		if cc, ok := s.(*ast.CommClause); ok && cc.Comm != nil {
			w.walkStmt(cc.Comm, cEnv)
		}
		if !w.walkStmts(stmtList(s), cEnv) {
			surviving = append(surviving, cEnv)
		}
	}
	if !exhaustive {
		surviving = append(surviving, env.clone())
	}
	if len(surviving) == 0 {
		return true
	}
	*env = *mergeLocks(surviving)
	return false
}

func (w *lockWalker) handleCall(call *ast.CallExpr, env *lockEnv) {
	key, op, ok := w.mutexOp(call)
	if !ok {
		return
	}
	switch op {
	case "Lock", "RLock":
		if pos, held := env.held[key]; held {
			w.report(SeverityError, call.Pos(), "double %s of %s (already locked at line %d; Go mutexes are not reentrant)",
				op, key, w.p.Fset.Position(pos).Line)
			return
		}
		env.held[key] = call.Pos()
	case "Unlock", "RUnlock":
		delete(env.held, key)
	}
}

func (w *lockWalker) handleDefer(s *ast.DeferStmt, env *lockEnv) {
	if key, op, ok := w.mutexOp(s.Call); ok {
		if op == "Unlock" || op == "RUnlock" {
			env.deferred[key] = true
		}
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, op, ok := w.mutexOp(call); ok && (op == "Unlock" || op == "RUnlock") {
					env.deferred[key] = true
				}
			}
			return true
		})
	}
}

// pathCheck reports locks held (and not defer-unlocked) at a return point.
func (w *lockWalker) pathCheck(env *lockEnv, pos token.Pos) {
	for key, lockPos := range env.held {
		if env.deferred[key] {
			continue
		}
		at := pos
		what := "return"
		if at == token.NoPos {
			at = lockPos
			what = "function end"
		}
		w.report(SeverityError, at, "%s reached with %s held (locked at line %d, no Unlock on this path)",
			what, key, w.p.Fset.Position(lockPos).Line)
	}
}

// mutexOp recognizes X.Lock/Unlock/RLock/RUnlock on a mutex-typed (or
// mutex-named, under degraded type information) receiver; key is the
// canonical receiver spelling, with an /R suffix for the read side.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if !w.mutexish(sel.X) {
		return "", "", false
	}
	key = exprString(sel.X)
	if op == "RLock" || op == "RUnlock" {
		key += "/R"
	}
	return key, op, true
}

func (w *lockWalker) mutexish(e ast.Expr) bool {
	if tv, ok := w.p.Info.Types[e]; ok && tv.Type != nil {
		t := tv.Type
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
				name := named.Obj().Name()
				return name == "Mutex" || name == "RWMutex"
			}
		}
		return false
	}
	// Degraded type info: fall back to the naming convention.
	s := exprString(e)
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.IndexByte(s, '['); i >= 0 {
		s = s[:i]
	}
	low := strings.ToLower(s)
	return low == "mu" || low == "mtx" || low == "lk" ||
		strings.HasSuffix(low, "mu") || strings.HasSuffix(low, "mutex") || strings.HasSuffix(low, "lock")
}

// checkGoroutines flags `go` launches that capture loop variables or have
// no shutdown edge, in the packages whose goroutines must be long-lived
// workers with explicit lifecycles.
func checkGoroutines(p *Package) []Diagnostic {
	var out []Diagnostic
	decls := funcDecls(p.Files)
	for _, f := range p.Files {
		ann := annotations(p.Fset, f)
		loopVars := map[types.Object]bool{}
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				added := addLoopVars(n, p.Info, loopVars)
				ast.Inspect(n.Body, visit)
				removeLoopVars(loopVars, added)
				return false
			case *ast.ForStmt:
				added := addForVars(n, p.Info, loopVars)
				ast.Inspect(n.Body, visit)
				removeLoopVars(loopVars, added)
				return false
			case *ast.GoStmt:
				out = append(out, checkGoStmt(p, ann, decls, n, loopVars)...)
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	return out
}

func addLoopVars(n *ast.RangeStmt, info *types.Info, vars map[types.Object]bool) []types.Object {
	var added []types.Object
	for _, e := range []ast.Expr{n.Key, n.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil && !vars[obj] {
				vars[obj] = true
				added = append(added, obj)
			}
		}
	}
	return added
}

func addForVars(n *ast.ForStmt, info *types.Info, vars map[types.Object]bool) []types.Object {
	var added []types.Object
	if a, ok := n.Init.(*ast.AssignStmt); ok && a.Tok == token.DEFINE {
		for _, e := range a.Lhs {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := info.Defs[id]; obj != nil && !vars[obj] {
					vars[obj] = true
					added = append(added, obj)
				}
			}
		}
	}
	return added
}

func removeLoopVars(vars map[types.Object]bool, added []types.Object) {
	for _, obj := range added {
		delete(vars, obj)
	}
}

func checkGoStmt(p *Package, ann map[int]map[string]bool, decls map[string]*ast.FuncDecl, g *ast.GoStmt, loopVars map[types.Object]bool) []Diagnostic {
	var out []Diagnostic
	var body *ast.BlockStmt
	switch fn := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fn.Body
		// Loop-variable capture: referencing an enclosing loop variable from
		// the goroutine body instead of passing it as an argument.
		seen := map[types.Object]bool{}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj != nil && loopVars[obj] && !seen[obj] {
				seen[obj] = true
				out = append(out, diag(p.Fset, "lockcheck", SeverityWarning, g.Pos(),
					"goroutine captures loop variable %s; pass it as an argument to pin the iteration's value", obj.Name()))
			}
			return true
		})
	case *ast.Ident:
		if fd, ok := decls[fn.Name]; ok {
			body = fd.Body
		}
	case *ast.SelectorExpr:
		if fd, ok := decls[fn.Sel.Name]; ok {
			body = fd.Body
		}
	}
	if body == nil {
		return out
	}
	if hasUnboundedLoop(body) && !hasShutdownEdge(body, p.Info) &&
		!annotatedAt(p.Fset, ann, g.Pos(), markShutdown) {
		out = append(out, diag(p.Fset, "lockcheck", SeverityWarning, g.Pos(),
			"goroutine loops forever with no shutdown edge (no select, channel receive/range, WaitGroup join, or ctx/done/stop reference); annotate //cosmic:shutdown naming who stops it"))
	}
	return out
}

func hasUnboundedLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil {
			found = true
		}
		return !found
	})
	return found
}

// hasShutdownEdge looks for any construct that lets the goroutine observe
// shutdown: select, channel receive, range over a channel, a WaitGroup
// Done/Wait, or a conventionally named signal variable.
func hasShutdownEdge(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			} else {
				// Degraded type info: a range could be draining a channel;
				// stay silent rather than speculate.
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Done" || sel.Sel.Name == "Wait" {
					found = true
				}
			}
		case *ast.Ident:
			switch n.Name {
			case "ctx", "done", "stop", "stopped", "quit", "closing":
				found = true
			}
		}
		return !found
	})
	return found
}
