package srclint

import "testing"

// A consistent mini-registry: distinct bits, mask is the union, both
// paths handle both flags, no raw literals.
const wireClean = `package cosmicnet

//cosmic:wire-registry
const (
	flagTrace = 0x80
	flagChunk = 0x40

	flagMask = flagTrace | flagChunk
)

func writeFrame(b []byte, traced, chunked bool) {
	if traced {
		b[0] |= flagTrace
	}
	if chunked {
		b[0] |= flagChunk
	}
}

func readFrameInto(b []byte) (bool, bool) {
	return b[0]&flagTrace != 0, b[0]&flagChunk != 0
}
`

func TestWireRegistryCleanPackage(t *testing.T) {
	wantClean(t, lintSource(t, "wireflag", wireClean))
}

func TestWireRegistryMissing(t *testing.T) {
	ds := lintSource(t, "wireflag", `package cosmicnet

const flagTrace = 0x80

func writeFrame(b []byte)    { b[0] |= flagTrace }
func readFrameInto(b []byte) { _ = b[0] & flagTrace }
`)
	wantFinding(t, ds, "no //cosmic:wire-registry flag declaration")
}

func TestWireFlagOverlapAndMultiBit(t *testing.T) {
	ds := lintSource(t, "wireflag", `package cosmicnet

//cosmic:wire-registry
const (
	flagA = 0x80
	flagB = 0x81
	flagC = 0x03

	flagMask = flagA | flagB | flagC
)

func writeFrame(b []byte) { b[0] |= flagA | flagB | flagC }

func readFrameInto(b []byte) byte { return b[0] & (flagA | flagB | flagC) }
`)
	wantFinding(t, ds, "flagB = 0x81 overlaps flagA")
	wantFinding(t, ds, "flagB = 0x81 is not a single bit")
	wantFinding(t, ds, "flagC = 0x3 is not a single bit")
}

func TestWireFlagMaskMismatch(t *testing.T) {
	ds := lintSource(t, "wireflag", `package cosmicnet

//cosmic:wire-registry
const (
	flagA = 0x80
	flagB = 0x40

	flagMask = flagA
)

func writeFrame(b []byte) { b[0] |= flagA | flagB }

func readFrameInto(b []byte) byte { return b[0] & (flagA | flagB) }
`)
	wantFinding(t, ds, "flagMask = 0x80 but the registered flags union to 0xC0")
}

func TestWireFlagUnhandledSides(t *testing.T) {
	ds := lintSource(t, "wireflag", `package cosmicnet

//cosmic:wire-registry
const (
	flagA = 0x80
	flagB = 0x40

	flagMask = flagA | flagB
)

func writeFrame(b []byte) { b[0] |= flagA }

func readFrameInto(b []byte) byte { return b[0] & flagA }
`)
	wantFinding(t, ds, "flagB is not handled in the encode path (writeFrame)")
	wantFinding(t, ds, "flagB is not handled in the decode path (readFrameInto)")
}

func TestWireFlagRawLiteral(t *testing.T) {
	ds := lintSource(t, "wireflag", wireClean+`
func peek(b byte) bool { return b&0x80 != 0 }
`)
	wantFinding(t, ds, "raw literal 0x80 carries registered wire-flag bits")
}

// TestWireFlagRegistryTable proves the WireExtension table form is parsed
// (keyed fields) and drives the same checks.
func TestWireFlagRegistryTable(t *testing.T) {
	ds := lintSource(t, "wireflag", `package cosmicnet

const (
	flagA = 0x80
	flagB = 0x80
)

type ext struct {
	Flag byte
	Name string
	Size int
}

//cosmic:wire-registry
var registry = [...]ext{
	{Flag: flagA, Name: "a", Size: 16},
	{Flag: flagB, Name: "b", Size: 0},
}

func writeFrame(b []byte) { b[0] |= flagA | flagB }

func readFrameInto(b []byte) byte { return b[0] & (flagA | flagB) }
`)
	wantFinding(t, ds, "flagB = 0x80 overlaps flagA")
	wantFinding(t, ds, "non-positive extension size 0")
}

// TestWireFlagOtherPackagesSilent: packages without the marker and not
// named cosmicnet are out of scope even if they use flag-like constants.
func TestWireFlagOtherPackagesSilent(t *testing.T) {
	wantClean(t, lintSource(t, "wireflag", `package other

const flagX = 0x80

func f(b byte) bool { return b&0x80 != 0 }
`))
}
