package srclint

import "testing"

// TestFlagsMapRangeOrderedEmission seeds the classic bug: printing while
// ranging over a map, so the report's line order changes run to run.
func TestFlagsMapRangeOrderedEmission(t *testing.T) {
	ds := lintSource(t, "maprange", `package p

import "fmt"

func report(stats map[string]int) {
	for name, n := range stats {
		fmt.Printf("%s: %d\n", name, n)
	}
}
`)
	wantFinding(t, ds, "fmt.Printf")
}

func TestFlagsWriterMethodInMapRange(t *testing.T) {
	ds := lintSource(t, "maprange", `package p

import "strings"

func render(stats map[string]int) string {
	var b strings.Builder
	for name := range stats {
		b.WriteString(name)
	}
	return b.String()
}
`)
	wantFinding(t, ds, "WriteString")
}

// TestFlagsUnorderedFloatAccumulation seeds the subtle one: float addition
// is not associative, so summing in randomized order drifts in the last
// bits — enough to fork a distributed training run.
func TestFlagsUnorderedFloatAccumulation(t *testing.T) {
	ds := lintSource(t, "maprange", `package p

func total(weights map[int]float64) float64 {
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	return sum
}
`)
	wantFinding(t, ds, "floating-point accumulation")
}

func TestIntAccumulationIsClean(t *testing.T) {
	wantClean(t, lintSource(t, "maprange", `package p

func count(stats map[string]int) int {
	n := 0
	for _, v := range stats {
		n += v
	}
	return n
}
`))
}

func TestFlagsAppendWithoutSort(t *testing.T) {
	ds := lintSource(t, "maprange", `package p

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	wantFinding(t, ds, "append to out")
}

// TestAppendThenSortIsClean proves the deterministic collect-then-sort
// idiom — how this repository iterates maps — stays quiet.
func TestAppendThenSortIsClean(t *testing.T) {
	wantClean(t, lintSource(t, "maprange", `package p

import "sort"

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`))
}

func TestSortSliceAfterAppendIsClean(t *testing.T) {
	wantClean(t, lintSource(t, "maprange", `package p

import "sort"

type pair struct {
	k string
	v int
}

func pairs(m map[string]int) []pair {
	var out []pair
	for k, v := range m {
		out = append(out, pair{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}
`))
}

func TestLoopLocalAppendIsClean(t *testing.T) {
	wantClean(t, lintSource(t, "maprange", `package p

func rows(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := []int{}
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
`))
}

// TestSuppressionComment proves //cosmic:ordered silences a site, on the
// range line or the line above.
func TestSuppressionComment(t *testing.T) {
	wantClean(t, lintSource(t, "maprange", `package p

import "fmt"

func debugDump(stats map[string]int) {
	//cosmic:ordered — debug-only dump, order is irrelevant
	for name, n := range stats {
		fmt.Printf("%s: %d\n", name, n)
	}
	for name := range stats { //cosmic:ordered
		fmt.Println(name)
	}
}
`))
}

func TestRangeOverSliceIsClean(t *testing.T) {
	wantClean(t, lintSource(t, "maprange", `package p

import "fmt"

func list(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
`))
}

func TestNestedMapRangeInsideSliceRange(t *testing.T) {
	ds := lintSource(t, "maprange", `package p

import "fmt"

func dump(groups []map[string]int) {
	for _, g := range groups {
		for k := range g {
			fmt.Println(k)
		}
	}
}
`)
	wantFinding(t, ds, "fmt.Println")
}
