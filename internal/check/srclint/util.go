package srclint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation markers recognized on the flagged line or the line above.
const (
	markOrdered   = "cosmic:ordered"
	markOwns      = "cosmic:owns"
	markTransfers = "cosmic:transfers"
	markShutdown  = "cosmic:shutdown"
)

// annotations maps line numbers to the cosmic: markers whose comment group
// covers them. A multi-line comment group annotates its whole span, so a
// statement under it is annotated no matter how long the justification runs.
func annotations(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	lines := map[int]map[string]bool{}
	for _, g := range f.Comments {
		var marks []string
		for _, c := range g.List {
			for _, m := range []string{markOrdered, markOwns, markTransfers, markShutdown} {
				if strings.Contains(c.Text, m) {
					marks = append(marks, m)
				}
			}
		}
		if len(marks) == 0 {
			continue
		}
		for l := fset.Position(g.Pos()).Line; l <= fset.Position(g.End()).Line; l++ {
			if lines[l] == nil {
				lines[l] = map[string]bool{}
			}
			for _, m := range marks {
				lines[l][m] = true
			}
		}
	}
	return lines
}

// annotatedAt reports whether the marker covers pos's line or the line
// directly above it.
func annotatedAt(fset *token.FileSet, ann map[int]map[string]bool, pos token.Pos, mark string) bool {
	line := fset.Position(pos).Line
	return ann[line][mark] || ann[line-1][mark]
}

// funcAnnotated reports whether a function declaration carries the marker in
// its doc comment or on the lines around its func keyword.
func funcAnnotated(fset *token.FileSet, ann map[int]map[string]bool, fd *ast.FuncDecl, mark string) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.Contains(c.Text, mark) {
				return true
			}
		}
	}
	return annotatedAt(fset, ann, fd.Pos(), mark)
}

// diag builds one diagnostic at pos.
func diag(fset *token.FileSet, pass string, sev Severity, pos token.Pos, format string, args ...any) Diagnostic {
	p := fset.Position(pos)
	return Diagnostic{
		File: p.Filename, Line: p.Line, Col: p.Column,
		Pass: pass, Severity: sev, Message: fmt.Sprintf(format, args...),
	}
}

// stmtList returns a node's statement list, for every node kind that owns
// one (blocks, switch cases, select clauses).
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func unwrapLabels(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

// unwrapExpr strips parens and type assertions.
func unwrapExpr(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		default:
			return e
		}
	}
}

// rootObj resolves the variable at the base of an lvalue expression:
// x, x.f, x[i], (*x), x.f[i].g all root at x.
func rootObj(e ast.Expr, info *types.Info) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if o := info.Uses[v]; o != nil {
				return o
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// identObj resolves a plain identifier's object (nil for anything else).
func identObj(e ast.Expr, info *types.Info) types.Object {
	id, ok := unwrapExpr(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// pkgPathOf returns the import path when e names a package, "" otherwise.
// With degraded type information it falls back to the identifier spelling
// for the packages the passes reason about.
func pkgPathOf(e ast.Expr, info *types.Info) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if o, resolved := info.Uses[id]; resolved {
		if pn, isPkg := o.(*types.PkgName); isPkg {
			return pn.Imported().Path()
		}
		return ""
	}
	switch id.Name {
	case "fmt", "sort", "slices", "cosmicnet":
		return id.Name
	}
	return ""
}

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[" + exprString(v.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.ParenExpr:
		return "(" + exprString(v.X) + ")"
	case *ast.BasicLit:
		return v.Value
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	}
	return "expr"
}

// mentionsObj reports whether the expression references obj.
func mentionsObj(e ast.Expr, obj types.Object, info *types.Info) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcDecls indexes a package's function declarations by bare name
// (methods included; this repository has no colliding method names the
// passes care about).
func funcDecls(files []*ast.File) map[string]*ast.FuncDecl {
	out := map[string]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out[fd.Name.Name] = fd
			}
		}
	}
	return out
}

// eachFunc visits every function declaration and function literal in the
// file, handing each body to fn exactly once (literals are visited as their
// own scope, not inside their enclosing declaration's walk).
func eachFunc(f *ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n, nil, n.Body)
			}
		case *ast.FuncLit:
			fn(nil, n, n.Body)
		}
		return true
	})
}
