package srclint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintSource runs the named passes over one in-memory file, type-checked
// best-effort against the real standard library.
func lintSource(t *testing.T, passNames, src string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "lintme.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	passes, err := SelectPasses(passNames)
	if err != nil {
		t.Fatal(err)
	}
	return LintDir(dir, passes)
}

func wantFinding(t *testing.T, ds []Diagnostic, frag string) {
	t.Helper()
	for _, d := range ds {
		if strings.Contains(d.Message, frag) {
			return
		}
	}
	t.Errorf("no finding mentioning %q; got %d findings: %+v", frag, len(ds), ds)
}

func wantClean(t *testing.T, ds []Diagnostic) {
	t.Helper()
	if len(ds) != 0 {
		t.Errorf("want no findings, got %d: %+v", len(ds), ds)
	}
}

func TestSelectPasses(t *testing.T) {
	all, err := SelectPasses("")
	if err != nil || len(all) != len(Passes()) {
		t.Fatalf("SelectPasses(\"\") = %d passes, err %v", len(all), err)
	}
	two, err := SelectPasses("wireflag, maprange")
	if err != nil || len(two) != 2 || two[0].Name != "wireflag" || two[1].Name != "maprange" {
		t.Fatalf("SelectPasses order/content wrong: %+v, err %v", two, err)
	}
	if _, err := SelectPasses("nope"); err == nil {
		t.Fatal("unknown pass name accepted")
	}
}

// TestSortStable pins the (file, line, col, pass, message) diagnostic
// order that CI diffs and golden files rely on.
func TestSortStable(t *testing.T) {
	ds := []Diagnostic{
		{File: "b.go", Line: 1, Pass: "maprange"},
		{File: "a.go", Line: 9, Pass: "poollife"},
		{File: "a.go", Line: 2, Col: 5, Pass: "wireflag"},
		{File: "a.go", Line: 2, Col: 5, Pass: "lockcheck"},
		{File: "a.go", Line: 2, Col: 1, Pass: "wireflag"},
	}
	Sort(ds)
	var got []string
	for _, d := range ds {
		got = append(got, d.File+":"+d.Pass)
	}
	want := []string{"a.go:wireflag", "a.go:lockcheck", "a.go:wireflag", "a.go:poollife", "b.go:maprange"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestWriteJSON pins the machine-readable shape: an array (never null) of
// objects with the documented lowercase keys.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("empty diagnostics serialize as %q, want []", buf.String())
	}
	buf.Reset()
	ds := []Diagnostic{{File: "x.go", Line: 3, Col: 7, Pass: "poollife", Severity: SeverityError, Message: "boom"}}
	if err := WriteJSON(&buf, ds); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d entries, want 1", len(decoded))
	}
	for _, key := range []string{"file", "line", "col", "pass", "severity", "message"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("JSON object missing key %q: %v", key, decoded[0])
		}
	}
}

// TestParseErrorCollectAndContinue is the exit-code bugfix regression: a
// package that fails to parse becomes diagnostics, and the remaining
// directories are still analyzed.
func TestParseErrorCollectAndContinue(t *testing.T) {
	root := t.TempDir()
	broken := filepath.Join(root, "broken")
	good := filepath.Join(root, "good")
	for _, d := range []string{broken, good} {
		if err := os.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(broken, "bad.go"), []byte("package broken\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	goodSrc := `package good

import "fmt"

func emit(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
`
	if err := os.WriteFile(filepath.Join(good, "good.go"), []byte(goodSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	ds := LintDirs([]string{broken, good}, Passes())
	var parses, finds int
	for _, d := range ds {
		switch d.Pass {
		case "parse":
			parses++
		case "maprange":
			finds++
		}
	}
	if parses == 0 {
		t.Errorf("broken package produced no parse diagnostics: %+v", ds)
	}
	if finds == 0 {
		t.Errorf("analysis did not continue past the broken package: %+v", ds)
	}
}

// TestExpandPatterns checks recursive expansion skips testdata, vendor,
// and hidden directories.
func TestExpandPatterns(t *testing.T) {
	root := t.TempDir()
	mk := func(rel string) {
		dir := filepath.Join(root, filepath.Dir(rel))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(root, rel), []byte("package x\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mk("a/a.go")
	mk("a/testdata/fixture.go")
	mk("b/vendor/v.go")
	mk("b/b.go")
	mk(".hidden/h.go")
	dirs, diags := ExpandPatterns([]string{root + "/..."})
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %+v", diags)
	}
	want := []string{filepath.Join(root, "a"), filepath.Join(root, "b")}
	if len(dirs) != len(want) {
		t.Fatalf("dirs = %v, want %v", dirs, want)
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Fatalf("dirs = %v, want %v", dirs, want)
		}
	}
	if _, diags := ExpandPatterns([]string{filepath.Join(root, "missing") + "/..."}); len(diags) == 0 {
		t.Error("unwalkable pattern produced no diagnostic")
	}
}
