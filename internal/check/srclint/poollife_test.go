package srclint

import "testing"

const poolPrelude = `package p

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

type holder struct{ buf *[]byte }

`

func TestPoolUseAfterPut(t *testing.T) {
	ds := lintSource(t, "poollife", poolPrelude+`func f() int {
	bp := pool.Get().(*[]byte)
	pool.Put(bp)
	return len(*bp)
}
`)
	wantFinding(t, ds, "use of pooled buffer bp after")
}

func TestPoolDoublePut(t *testing.T) {
	ds := lintSource(t, "poollife", poolPrelude+`func f() {
	bp := pool.Get().(*[]byte)
	pool.Put(bp)
	pool.Put(bp)
}
`)
	wantFinding(t, ds, "double Put of pooled buffer bp")
}

func TestPoolLeakOnOnePath(t *testing.T) {
	ds := lintSource(t, "poollife", poolPrelude+`func f(fail bool) int {
	bp := pool.Get().(*[]byte)
	if fail {
		return -1
	}
	n := len(*bp)
	pool.Put(bp)
	return n
}
`)
	wantFinding(t, ds, "no Put or //cosmic:transfers on this return path")
}

func TestPoolEscapeWithoutTransfer(t *testing.T) {
	ds := lintSource(t, "poollife", poolPrelude+`func f(h *holder) {
	bp := pool.Get().(*[]byte)
	h.buf = bp
}
`)
	wantFinding(t, ds, "escapes via store to h.buf without //cosmic:transfers")
}

func TestPoolAliasUseAfterPut(t *testing.T) {
	ds := lintSource(t, "poollife", poolPrelude+`func f() int {
	bp := pool.Get().(*[]byte)
	alias := bp
	pool.Put(bp)
	return len(*alias)
}
`)
	wantFinding(t, ds, "use of pooled buffer bp after")
}

func TestPoolDeferredPutIsClean(t *testing.T) {
	wantClean(t, lintSource(t, "poollife", poolPrelude+`func f(fail bool) int {
	bp := pool.Get().(*[]byte)
	defer pool.Put(bp)
	if fail {
		return -1
	}
	return len(*bp)
}
`))
}

func TestPoolTransferAnnotationIsClean(t *testing.T) {
	wantClean(t, lintSource(t, "poollife", poolPrelude+`func f(h *holder) {
	bp := pool.Get().(*[]byte)
	//cosmic:transfers h owns the buffer from here
	h.buf = bp
}
`))
}

func TestPoolOwnsFunctionIsClean(t *testing.T) {
	wantClean(t, lintSource(t, "poollife", poolPrelude+`//cosmic:owns
func acquire() *[]byte {
	bp := pool.Get().(*[]byte)
	return bp
}
`))
}

// TestOwnsCallerInheritsObligation proves a //cosmic:owns accessor's
// caller is tracked like a direct pool Get.
func TestOwnsCallerInheritsObligation(t *testing.T) {
	ds := lintSource(t, "poollife", poolPrelude+`//cosmic:owns
func acquire() *[]byte {
	bp := pool.Get().(*[]byte)
	return bp
}

func leaky(fail bool) int {
	bp := acquire()
	if fail {
		return -1
	}
	pool.Put(bp)
	return 0
}
`)
	wantFinding(t, ds, "no Put or //cosmic:transfers on this return path")
}

// TestDegradedImportStillTracksGetPayload proves the qualified
// cosmicnet.GetPayload spelling is tracked even when the import cannot be
// resolved (the source importer cannot see intra-repo packages).
func TestDegradedImportStillTracksGetPayload(t *testing.T) {
	ds := lintSource(t, "poollife", `package p

import "repro/internal/cosmicnet"

func f() {
	buf := cosmicnet.GetPayload(8)
	cosmicnet.PutPayload(buf)
	cosmicnet.PutPayload(buf)
}
`)
	wantFinding(t, ds, "double Put of pooled buffer buf")
}

// TestEncoderPutHelpersAreNotReleases pins the isReleaseCall shape rule:
// binary.LittleEndian.PutUint32(buf, v) writes INTO the buffer, it does
// not recycle it.
func TestEncoderPutHelpersAreNotReleases(t *testing.T) {
	wantClean(t, lintSource(t, "poollife", `package p

import (
	"encoding/binary"
	"sync"
)

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func f() {
	bp := pool.Get().(*[]byte)
	defer pool.Put(bp)
	buf := *bp
	binary.LittleEndian.PutUint32(buf, 7)
	binary.LittleEndian.PutUint32(buf[4:], 9)
}
`))
}
