// Package srclint is the source-level sibling of package check: where check
// verifies the compiler's *artifacts* (graphs, schedules, microcode),
// srclint verifies the *Go source* of the system layer against the
// repository's own cross-cutting conventions — conventions the stock vet
// passes and the race detector cannot see.
//
// It is a small multi-pass analysis driver over go/ast + go/types (standard
// library only, intra-procedural dataflow). The passes:
//
//   - maprange: order-sensitive work inside `for ... range someMap` bodies
//     (ordered output, unsorted appends, floating-point accumulation) —
//     run-to-run nondeterminism that breaks bit-reproducibility.
//   - poollife: lifecycle of pooled buffers (cosmicnet.GetPayload /
//     sync.Pool Get) — use-after-Put, double-Put, unannotated ownership
//     escapes, and Get paths that never Put.
//   - lockcheck: mutex Lock without Unlock on some return path
//     (defer-aware), double-Lock of the same mutex in one function, and
//     goroutine launches in the runtime/obs packages that capture loop
//     variables or have no shutdown edge.
//   - wireflag: the cosmicnet wire-flag registry — extension bits must be
//     declared once, non-overlapping, handled in both the encode and decode
//     paths, and never appear as raw literals outside the registry.
//
// Annotation convention (a comment on the flagged line or the line above):
//
//   - //cosmic:ordered    — map iteration order is provably irrelevant here
//   - //cosmic:owns       — this function returns/holds a pooled buffer it
//     legitimately owns; callers inherit the Put obligation
//   - //cosmic:transfers  — buffer ownership moves at this statement (ring
//     hand-off, parked copy, struct store); the Put obligation moves with it
//   - //cosmic:shutdown   — this goroutine's termination is managed
//     elsewhere (stated explicitly, e.g. "closed by Close")
//
// All analysis is intra-procedural and best-effort under degraded type
// information (unresolvable imports fall back to syntactic heuristics); the
// passes prefer silence over false positives and the annotations make the
// deliberate ownership handoffs explicit at the source.
package srclint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Severity classifies a diagnostic: errors are definite convention
// violations, warnings are heuristic findings (the intra-procedural
// approximations documented per pass).
type Severity string

// Severity levels.
const (
	SeverityError   Severity = "error"
	SeverityWarning Severity = "warning"
)

// Diagnostic is one finding, locatable and machine-readable.
type Diagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Pass     string   `json:"pass"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
}

// String renders the diagnostic in the classic compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Pass, d.Message)
}

// Package is one parsed, best-effort type-checked package handed to passes.
type Package struct {
	Fset  *token.FileSet
	Info  *types.Info
	Files []*ast.File
	// Dir is the directory the files came from; Name the package clause.
	Dir, Name string
}

// Pass is one analyzer.
type Pass struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// Passes returns every analyzer in fixed order.
func Passes() []Pass {
	return []Pass{
		{Name: "maprange", Doc: "order-sensitive work inside map range loops", Run: runMapRange},
		{Name: "poollife", Doc: "pooled-buffer lifecycle (use-after-put, double-put, leaks, escapes)", Run: runPoolLife},
		{Name: "lockcheck", Doc: "mutex pairing and goroutine hygiene", Run: runLockCheck},
		{Name: "wireflag", Doc: "wire-flag registry consistency", Run: runWireFlag},
	}
}

// SelectPasses resolves comma-separated pass names ("" selects all).
func SelectPasses(names string) ([]Pass, error) {
	all := Passes()
	if names == "" {
		return all, nil
	}
	byName := map[string]Pass{}
	for _, p := range all {
		byName[p.Name] = p
	}
	var out []Pass
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q", n)
		}
		out = append(out, p)
	}
	return out, nil
}

// LintDirs parses and lints every directory with the given passes.
// Per-package parse errors become "parse" diagnostics — the run continues
// over the remaining files and directories, so one broken package cannot
// mask findings elsewhere. The returned diagnostics are in the stable
// (file, line, col, pass, message) order. One file set and source importer
// serve the whole run, so the standard library is loaded once, not once
// per directory.
func LintDirs(dirs []string, passes []Pass) []Diagnostic {
	var out []Diagnostic
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	for _, dir := range dirs {
		out = append(out, lintDir(fset, imp, dir, passes)...)
	}
	Sort(out)
	return out
}

// LintDir parses every Go file in dir (tests included), groups files by
// package clause, type-checks best-effort, and runs the passes.
func LintDir(dir string, passes []Pass) []Diagnostic {
	fset := token.NewFileSet()
	return lintDir(fset, importer.ForCompiler(fset, "source", nil), dir, passes)
}

func lintDir(fset *token.FileSet, imp types.Importer, dir string, passes []Pass) []Diagnostic {
	var out []Diagnostic
	entries, err := os.ReadDir(dir)
	if err != nil {
		return []Diagnostic{parseDiag(dir, 0, 0, err.Error())}
	}
	pkgs := map[string][]*ast.File{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			out = append(out, parseErrDiags(path, err)...)
			if f == nil {
				continue
			}
		}
		pkgs[f.Name.Name] = append(pkgs[f.Name.Name], f)
	}
	names := make([]string, 0, len(pkgs))
	for n := range pkgs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := &Package{
			Fset:  fset,
			Info:  typeCheck(fset, imp, dir, pkgs[n]),
			Files: pkgs[n],
			Dir:   dir,
			Name:  n,
		}
		for _, pass := range passes {
			out = append(out, pass.Run(p)...)
		}
	}
	Sort(out)
	return out
}

// parseErrDiags converts a parse failure into diagnostics, one per scanner
// error when available.
func parseErrDiags(path string, err error) []Diagnostic {
	if list, ok := err.(scanner.ErrorList); ok {
		out := make([]Diagnostic, 0, len(list))
		for _, e := range list {
			out = append(out, parseDiag(e.Pos.Filename, e.Pos.Line, e.Pos.Column, e.Msg))
		}
		return out
	}
	return []Diagnostic{parseDiag(path, 0, 0, err.Error())}
}

func parseDiag(file string, line, col int, msg string) Diagnostic {
	return Diagnostic{File: file, Line: line, Col: col, Pass: "parse", Severity: SeverityError, Message: msg}
}

// Sort orders diagnostics by (file, line, col, pass, message) so repeated
// runs and CI diffs are deterministic.
func Sort(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
}

// WriteJSON emits the diagnostics as a JSON array (never null), one object
// per finding, in the already-sorted order.
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	if ds == nil {
		ds = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ds)
}

// HasErrors reports whether any diagnostic is severity error.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// ExpandPatterns resolves package patterns ("dir/..." recursive, plain
// directory otherwise) into a deduplicated, sorted directory list.
// Unwalkable patterns are reported as parse diagnostics, not fatal errors.
func ExpandPatterns(patterns []string) ([]string, []Diagnostic) {
	var dirs []string
	var diags []Diagnostic
	seen := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := expandPattern(pat)
		if err != nil {
			diags = append(diags, parseDiag(pat, 0, 0, err.Error()))
			continue
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	return dirs, diags
}

func expandPattern(pat string) ([]string, error) {
	root, recursive := strings.CutSuffix(pat, "/...")
	if root == "" || root == "." {
		root = "."
	}
	if !recursive {
		return []string{filepath.Clean(pat)}, nil
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, filepath.Clean(path))
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// typeCheck type-checks files best-effort: errors (including unresolvable
// imports) do not stop the analysis — whatever type information resolved is
// used, and the passes degrade to syntactic heuristics for the rest.
func typeCheck(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) *types.Info {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect what resolves, ignore the rest
	}
	conf.Check(path, fset, files, info) //nolint:errcheck // best-effort by design
	return info
}
