package srclint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runPoolLife tracks pooled buffers through one function at a time: values
// originating from cosmicnet.GetPayload, a sync.Pool Get, or a same-package
// function annotated //cosmic:owns. Through assignments, slicings, and
// dereferences the buffer keeps one abstract identity; the pass reports
//
//   - use-after-put (error): any read or call argument mentioning a buffer
//     after it was returned to its pool;
//   - double-put (error): returning the same buffer twice;
//   - escape-after-put (error): a recycled buffer stored, sent, returned,
//     or captured — an alias outliving the recycle;
//   - unannotated escape (warning): a live buffer stored into a struct
//     field, container, channel, or goroutine without //cosmic:transfers —
//     the ownership handoffs must be explicit;
//   - leaked path (warning): a Get whose buffer is neither Put (directly or
//     via defer) nor transferred on some return path.
//
// The analysis is intra-procedural and block-structured: branches are
// walked independently and merged (a buffer whose state disagrees across
// branches becomes untracked — the pass prefers silence to speculation).
// Functions annotated //cosmic:owns keep the use/double-put checks but skip
// the escape and leak obligations: they are the pool accessors themselves.
func runPoolLife(p *Package) []Diagnostic {
	ownsFns := map[string]bool{}
	anns := map[*ast.File]map[int]map[string]bool{}
	for _, f := range p.Files {
		anns[f] = annotations(p.Fset, f)
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && funcAnnotated(p.Fset, anns[f], fd, markOwns) {
				ownsFns[fd.Name.Name] = true
			}
		}
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ann := anns[f]
		eachFunc(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			w := &poolWalker{
				p: p, ann: ann, ownsFns: ownsFns,
				owns:     decl != nil && funcAnnotated(p.Fset, ann, decl, markOwns),
				pkgIsNet: p.Name == "cosmicnet",
				cells:    map[int]*pcell{},
				reported: map[string]bool{},
			}
			env := newPenv()
			terminated := w.walkStmts(body.List, env)
			if !terminated {
				w.leakCheck(env, token.NoPos)
			}
			out = append(out, w.diags...)
		})
	}
	return out
}

// pcell is one tracked buffer's identity.
type pcell struct {
	id   int
	name string    // the first variable bound to it, for messages
	pos  token.Pos // where it was obtained
	rel  token.Pos // where it was released (once released)
}

type cellState int

const (
	cellLive     cellState = iota
	cellReleased           // returned to the pool
	cellDone               // ownership transferred; no further obligations
)

// penv is the abstract state of one walk path.
type penv struct {
	vars     map[types.Object]int // variable → cell id
	state    map[int]cellState
	deferred map[int]bool // released by a registered defer at every return
}

func newPenv() *penv {
	return &penv{vars: map[types.Object]int{}, state: map[int]cellState{}, deferred: map[int]bool{}}
}

func (e *penv) clone() *penv {
	c := newPenv()
	for k, v := range e.vars {
		c.vars[k] = v
	}
	for k, v := range e.state {
		c.state[k] = v
	}
	for k, v := range e.deferred {
		c.deferred[k] = v
	}
	return c
}

// merge folds the surviving branch states into one: a cell or binding that
// disagrees across branches becomes untracked (conservative silence), one
// that exists on a single branch is carried through.
func merge(envs []*penv) *penv {
	if len(envs) == 0 {
		return newPenv()
	}
	m := envs[0].clone()
	for _, e := range envs[1:] {
		for id, st := range e.state {
			if prev, ok := m.state[id]; ok {
				if prev != st {
					delete(m.state, id)
				}
			} else {
				m.state[id] = st
			}
		}
		for obj, id := range e.vars {
			if prev, ok := m.vars[obj]; ok && prev != id {
				delete(m.vars, obj)
			} else if !ok {
				m.vars[obj] = id
			}
		}
		for id := range e.deferred {
			m.deferred[id] = true
		}
	}
	return m
}

type poolWalker struct {
	p        *Package
	ann      map[int]map[string]bool
	ownsFns  map[string]bool
	owns     bool // current function is a //cosmic:owns pool accessor
	pkgIsNet bool
	cells    map[int]*pcell
	nextID   int
	diags    []Diagnostic
	reported map[string]bool
}

func (w *poolWalker) report(sev Severity, pos token.Pos, format string, args ...any) {
	d := diag(w.p.Fset, "poollife", sev, pos, format, args...)
	key := d.File + ":" + d.Message + ":" + itoa(d.Line)
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.diags = append(w.diags, d)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func (w *poolWalker) line(pos token.Pos) int { return w.p.Fset.Position(pos).Line }

func (w *poolWalker) newCell(name string, pos token.Pos) int {
	w.nextID++
	w.cells[w.nextID] = &pcell{id: w.nextID, name: name, pos: pos}
	return w.nextID
}

// walkStmts walks one statement list, mutating env; it reports whether the
// list always terminates (return/branch) before falling through.
func (w *poolWalker) walkStmts(list []ast.Stmt, env *penv) bool {
	for _, s := range list {
		if w.walkStmt(unwrapLabels(s), env) {
			return true
		}
	}
	return false
}

func (w *poolWalker) walkStmt(s ast.Stmt, env *penv) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.handleAssign(s, env)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.bindValue(name, vs.Values[i], s.Pos(), env)
					}
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := unwrapExpr(s.X).(*ast.CallExpr); ok {
			w.handleCall(call, env, false)
		} else {
			w.checkUses(s.X, env)
		}
	case *ast.SendStmt:
		w.checkUses(s.Chan, env)
		if id, ok := w.directCell(s.Value, env); ok {
			w.escape(id, s.Pos(), env, "channel send")
		} else {
			w.checkUses(s.Value, env)
		}
	case *ast.DeferStmt:
		w.handleDefer(s, env)
	case *ast.GoStmt:
		w.handleGo(s, env)
	case *ast.ReturnStmt:
		w.handleReturn(s, env)
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto: stop this path conservatively
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		w.checkUses(s.Cond, env)
		thenEnv := env.clone()
		thenTerm := w.walkStmts(s.Body.List, thenEnv)
		var surviving []*penv
		if !thenTerm {
			surviving = append(surviving, thenEnv)
		}
		elseTerm := false
		if s.Else != nil {
			elseEnv := env.clone()
			elseTerm = w.walkStmt(unwrapLabels(s.Else), elseEnv)
			if !elseTerm {
				surviving = append(surviving, elseEnv)
			}
		} else {
			surviving = append(surviving, env.clone())
		}
		if len(surviving) == 0 {
			return true
		}
		*env = *merge(surviving)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		if s.Cond != nil {
			w.checkUses(s.Cond, env)
		}
		bodyEnv := env.clone()
		w.walkStmts(s.Body.List, bodyEnv)
		*env = *merge([]*penv{env.clone(), bodyEnv})
	case *ast.RangeStmt:
		w.checkUses(s.X, env)
		bodyEnv := env.clone()
		w.walkStmts(s.Body.List, bodyEnv)
		*env = *merge([]*penv{env.clone(), bodyEnv})
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		if s.Tag != nil {
			w.checkUses(s.Tag, env)
		}
		return w.walkClauses(s.Body, env, hasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, env)
		}
		return w.walkClauses(s.Body, env, hasDefault(s.Body))
	case *ast.SelectStmt:
		return w.walkClauses(s.Body, env, false)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, env)
	case *ast.IncDecStmt:
		w.checkUses(s.X, env)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, env)
	}
	return false
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// walkClauses walks each switch/select clause on a cloned env and merges
// the survivors; exhaustive reports whether some clause always runs.
func (w *poolWalker) walkClauses(body *ast.BlockStmt, env *penv, exhaustive bool) bool {
	var surviving []*penv
	for _, s := range body.List {
		clause := stmtList(s)
		if cc, ok := s.(*ast.CommClause); ok && cc.Comm != nil {
			cEnv := env.clone()
			w.walkStmt(cc.Comm, cEnv)
			if !w.walkStmts(clause, cEnv) {
				surviving = append(surviving, cEnv)
			}
			continue
		}
		cEnv := env.clone()
		if !w.walkStmts(clause, cEnv) {
			surviving = append(surviving, cEnv)
		}
	}
	if !exhaustive {
		surviving = append(surviving, env.clone())
	}
	if len(surviving) == 0 {
		return true
	}
	*env = *merge(surviving)
	return false
}

// bindValue processes `name := value` / `var name = value`.
func (w *poolWalker) bindValue(name *ast.Ident, value ast.Expr, pos token.Pos, env *penv) {
	value = unwrapExpr(value)
	obj := identObj(name, w.p.Info)
	if call, ok := value.(*ast.CallExpr); ok && w.isSourceCall(call) {
		if obj != nil && name.Name != "_" {
			env.vars[obj] = w.newCell(name.Name, pos)
			env.state[env.vars[obj]] = cellLive
		}
		return
	}
	if id, ok := w.directCell(value, env); ok {
		if st := env.state[id]; st == cellReleased {
			w.report(SeverityError, pos, "alias of pooled buffer %s created after it was returned to the pool (Put at line %d)",
				w.cells[id].name, w.line(w.cells[id].rel))
		}
		if obj != nil && name.Name != "_" {
			env.vars[obj] = id
		}
		return
	}
	// The buffer disappearing into a local container counts as a transfer
	// the pass cannot follow (documented intra-procedural limit).
	for _, id := range w.containedCells(value, env) {
		if env.state[id] == cellLive {
			env.state[id] = cellDone
		}
	}
	w.checkUses(value, env)
	if obj != nil {
		delete(env.vars, obj) // rebound to something unrelated
	}
}

func (w *poolWalker) handleAssign(a *ast.AssignStmt, env *penv) {
	// Single-value forms bind; everything else is use-checked.
	if len(a.Lhs) == len(a.Rhs) {
		for i, lhs := range a.Lhs {
			rhs := unwrapExpr(a.Rhs[i])
			if id, ok := unwrapExpr(lhs).(*ast.Ident); ok {
				w.bindValue(id, rhs, a.Pos(), env)
				continue
			}
			// Store into a field, element, or dereference.
			if call, ok := rhs.(*ast.CallExpr); ok && w.isSourceCall(call) {
				cell := w.newCell(exprString(lhs), a.Pos())
				env.state[cell] = cellLive
				w.escape(cell, a.Pos(), env, "store to "+exprString(lhs))
				continue
			}
			if _, isStar := unwrapExpr(lhs).(*ast.StarExpr); isStar {
				// *bp = ... writes through the pointer into the buffer —
				// a use, not an escape.
				w.checkUses(rhs, env)
				continue
			}
			if id, ok := w.directCell(rhs, env); ok {
				w.escape(id, a.Pos(), env, "store to "+exprString(lhs))
				continue
			}
			if ids := w.containedCells(rhs, env); len(ids) > 0 {
				for _, id := range ids {
					w.escape(id, a.Pos(), env, "store to "+exprString(lhs))
				}
				continue
			}
			w.checkUses(rhs, env)
			w.checkUses(lhs, env)
		}
		return
	}
	for _, e := range a.Rhs {
		if call, ok := unwrapExpr(e).(*ast.CallExpr); ok {
			w.handleCall(call, env, false)
		} else {
			w.checkUses(e, env)
		}
	}
	for _, e := range a.Lhs {
		if id, ok := unwrapExpr(e).(*ast.Ident); ok {
			if obj := identObj(id, w.p.Info); obj != nil {
				delete(env.vars, obj) // multi-value bind: untracked
			}
			continue
		}
		w.checkUses(e, env)
	}
}

func (w *poolWalker) handleDefer(s *ast.DeferStmt, env *penv) {
	if w.isReleaseCall(s.Call) {
		for _, arg := range s.Call.Args {
			if id, ok := w.directCell(arg, env); ok {
				if env.state[id] == cellReleased {
					w.report(SeverityError, s.Pos(), "double Put of pooled buffer %s (already returned at line %d)",
						w.cells[id].name, w.line(w.cells[id].rel))
				}
				env.deferred[id] = true
			}
		}
		return
	}
	// defer func() { ... Put(x) ... }(): scan the closure for releases.
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !w.isReleaseCall(call) {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := w.directCell(arg, env); ok {
					env.deferred[id] = true
				}
			}
			return true
		})
		return
	}
	w.checkUses(s.Call, env)
}

func (w *poolWalker) handleGo(s *ast.GoStmt, env *penv) {
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		seen := map[int]bool{}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := identObj(id, w.p.Info)
			if obj == nil {
				return true
			}
			if cid, ok := env.vars[obj]; ok && !seen[cid] {
				seen[cid] = true
				w.escape(cid, s.Pos(), env, "goroutine capture")
			}
			return true
		})
	}
	for _, arg := range s.Call.Args {
		if id, ok := w.directCell(arg, env); ok {
			w.escape(id, s.Pos(), env, "goroutine argument")
		} else {
			w.checkUses(arg, env)
		}
	}
}

func (w *poolWalker) handleReturn(r *ast.ReturnStmt, env *penv) {
	returned := map[int]bool{}
	for _, res := range r.Results {
		if id, ok := w.directCell(res, env); ok {
			returned[id] = true
			switch env.state[id] {
			case cellReleased:
				w.report(SeverityError, r.Pos(), "pooled buffer %s returned to caller after it was returned to the pool (Put at line %d)",
					w.cells[id].name, w.line(w.cells[id].rel))
			case cellLive:
				if !w.owns && !annotatedAt(w.p.Fset, w.ann, r.Pos(), markTransfers) {
					w.report(SeverityWarning, r.Pos(), "pooled buffer %s returned to caller: annotate the function //cosmic:owns or the return //cosmic:transfers to make the handoff explicit",
						w.cells[id].name)
				}
				env.state[id] = cellDone
			}
			continue
		}
		for _, id := range w.containedCells(res, env) {
			returned[id] = true
			if env.state[id] == cellLive {
				env.state[id] = cellDone
			}
		}
		w.checkUses(res, env)
	}
	w.leakCheck(env, r.Pos())
}

// leakCheck flags cells still live (and not defer-released) at a return
// point. pos == NoPos means the implicit return at the function's end.
func (w *poolWalker) leakCheck(env *penv, pos token.Pos) {
	if w.owns {
		return
	}
	for id, st := range env.state {
		if st != cellLive || env.deferred[id] {
			continue
		}
		c := w.cells[id]
		at := pos
		if at == token.NoPos {
			at = c.pos
		}
		w.report(SeverityWarning, at, "pooled buffer %s (obtained at line %d) has no Put or //cosmic:transfers on this return path",
			c.name, w.line(c.pos))
	}
}

func (w *poolWalker) handleCall(call *ast.CallExpr, env *penv, isDefer bool) {
	if w.isReleaseCall(call) {
		for _, arg := range call.Args {
			id, ok := w.directCell(arg, env)
			if !ok {
				w.checkUses(arg, env)
				continue
			}
			switch env.state[id] {
			case cellReleased:
				w.report(SeverityError, call.Pos(), "double Put of pooled buffer %s (already returned at line %d)",
					w.cells[id].name, w.line(w.cells[id].rel))
			case cellLive:
				env.state[id] = cellReleased
				w.cells[id].rel = call.Pos()
			}
		}
		return
	}
	w.checkUses(call, env)
}

// checkUses reports any mention of a released buffer inside the expression.
func (w *poolWalker) checkUses(e ast.Expr, env *penv) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		// Nested release calls are handled where they appear as statements;
		// here every mention of a released cell is a bug.
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := identObj(id, w.p.Info)
		if obj == nil {
			return true
		}
		if cid, ok := env.vars[obj]; ok && env.state[cid] == cellReleased {
			w.report(SeverityError, id.Pos(), "use of pooled buffer %s after it was returned to the pool (Put at line %d)",
				w.cells[cid].name, w.line(w.cells[cid].rel))
		}
		return true
	})
}

// escape handles a live or released buffer leaving the local frame.
func (w *poolWalker) escape(id int, pos token.Pos, env *penv, how string) {
	c := w.cells[id]
	switch env.state[id] {
	case cellReleased:
		w.report(SeverityError, pos, "pooled buffer %s escapes via %s after it was returned to the pool (Put at line %d)",
			c.name, how, w.line(c.rel))
	case cellLive:
		if w.owns || annotatedAt(w.p.Fset, w.ann, pos, markTransfers) {
			env.state[id] = cellDone
			return
		}
		w.report(SeverityWarning, pos, "pooled buffer %s escapes via %s without //cosmic:transfers (ownership handoffs must be explicit)",
			c.name, how)
		env.state[id] = cellDone // report once, then stop tracking
	case cellDone:
		// already handed off; nothing to enforce
	}
}

// directCell resolves an expression that IS the buffer (possibly sliced,
// dereferenced, or address-taken) to its cell.
func (w *poolWalker) directCell(e ast.Expr, env *penv) (int, bool) {
	e = unwrapExpr(e)
	for {
		switch v := e.(type) {
		case *ast.Ident:
			obj := identObj(v, w.p.Info)
			if obj == nil {
				return 0, false
			}
			id, ok := env.vars[obj]
			return id, ok
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return 0, false
			}
			e = v.X
		default:
			return 0, false
		}
	}
}

// containedCells finds buffers directly embedded in composite literals or
// append calls (the container now carries the buffer). Plain calls and
// conversions are borrows, not containment.
func (w *poolWalker) containedCells(e ast.Expr, env *penv) []int {
	var out []int
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		e = unwrapExpr(e)
		switch v := e.(type) {
		case *ast.CompositeLit:
			for _, elt := range v.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if id, ok := w.directCell(elt, env); ok {
					out = append(out, id)
					continue
				}
				visit(elt)
			}
		case *ast.CallExpr:
			if fn, ok := v.Fun.(*ast.Ident); ok && fn.Name == "append" {
				for _, arg := range v.Args {
					if id, ok := w.directCell(arg, env); ok {
						out = append(out, id)
						continue
					}
					visit(arg)
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				visit(v.X)
			}
		}
	}
	visit(e)
	return out
}

// isSourceCall recognizes pool accessors: cosmicnet.GetPayload (qualified,
// or bare inside package cosmicnet), <sync.Pool>.Get(), and same-package
// functions annotated //cosmic:owns.
func (w *poolWalker) isSourceCall(call *ast.CallExpr) bool {
	switch fn := unwrapExpr(call.Fun).(type) {
	case *ast.Ident:
		if fn.Name == "GetPayload" && w.pkgIsNet {
			return true
		}
		return w.ownsFns[fn.Name]
	case *ast.SelectorExpr:
		if fn.Sel.Name == "GetPayload" {
			if p := pkgPathOf(fn.X, w.p.Info); strings.HasSuffix(p, "cosmicnet") {
				return true
			}
		}
		if fn.Sel.Name == "Get" && len(call.Args) == 0 {
			if w.isSyncPool(fn.X) {
				return true
			}
		}
		// Same-package method annotated //cosmic:owns.
		return w.ownsFns[fn.Sel.Name]
	}
	return false
}

func (w *poolWalker) isSyncPool(e ast.Expr) bool {
	if tv, ok := w.p.Info.Types[e]; ok && tv.Type != nil {
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" && named.Obj().Name() == "Pool" {
				return true
			}
		}
		return false
	}
	// Degraded type info: fall back to the naming convention.
	return strings.HasSuffix(strings.ToLower(exprString(e)), "pool")
}

// isReleaseCall recognizes pool releases by the repository's naming
// convention: Put*/Release*/Recycle*/Free* functions and <pool>.Put. A
// release hands back exactly the buffer — one argument, at most one
// selector deep — which keeps encoder helpers like
// binary.LittleEndian.PutUint32(buf, v) from reading as recycles.
func (w *poolWalker) isReleaseCall(call *ast.CallExpr) bool {
	var name string
	switch fn := unwrapExpr(call.Fun).(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		if _, nested := fn.X.(*ast.SelectorExpr); nested {
			return false
		}
		name = fn.Sel.Name
	default:
		return false
	}
	if len(call.Args) != 1 {
		return false
	}
	for _, prefix := range []string{"Put", "put", "Release", "release", "Recycle", "recycle", "Free", "free"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
