package srclint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"math/bits"
	"strconv"
	"strings"
)

// markRegistry tags the declarations that ARE the wire-flag registry: the
// const block declaring the frame type-byte extension bits and the table
// describing them. Everything else in the package must refer to the flags
// by name.
const markRegistry = "cosmic:wire-registry"

// runWireFlag verifies the cosmicnet wire-flag registry: the frame
// type-byte extension bits must be declared once in a
// //cosmic:wire-registry-marked declaration, each flag a single distinct
// bit, the aggregate flagMask exactly their union, every flag handled in
// both the encode (writeFrame) and decode (readFrameInto) paths, and no
// raw literal carrying a registered bit used in a bitwise expression
// outside the registry declarations themselves. Only the cosmicnet
// package — or any package that carries the marker — is checked; wire
// layout tests poke raw bytes by design, so _test.go files are exempt
// from the literal-mask check.
func runWireFlag(p *Package) []Diagnostic {
	var out []Diagnostic
	reg := collectRegistry(p)
	if len(reg.entries) == 0 {
		if isWirePackage(p) {
			out = append(out, diag(p.Fset, "wireflag", SeverityError, p.Files[0].Pos(),
				"package %s declares wire frames but has no //cosmic:wire-registry flag declaration", p.Name))
		}
		return out
	}

	var mask uint64
	for i, e := range reg.entries {
		if !e.resolved {
			out = append(out, diag(p.Fset, "wireflag", SeverityWarning, e.pos,
				"wire flag %s: value could not be resolved to a constant", e.name))
			continue
		}
		if bits.OnesCount64(e.value) != 1 {
			out = append(out, diag(p.Fset, "wireflag", SeverityError, e.pos,
				"wire flag %s = 0x%X is not a single bit", e.name, e.value))
		}
		for _, prev := range reg.entries[:i] {
			if prev.resolved && prev.value&e.value != 0 {
				out = append(out, diag(p.Fset, "wireflag", SeverityError, e.pos,
					"wire flag %s = 0x%X overlaps %s = 0x%X", e.name, e.value, prev.name, prev.value))
			}
		}
		if e.sized && e.size <= 0 {
			out = append(out, diag(p.Fset, "wireflag", SeverityError, e.pos,
				"wire flag %s declares a non-positive extension size %d", e.name, e.size))
		}
		mask |= e.value
	}

	if reg.maskName != "" && reg.maskResolved && reg.maskValue != mask {
		out = append(out, diag(p.Fset, "wireflag", SeverityError, reg.maskPos,
			"%s = 0x%X but the registered flags union to 0x%X", reg.maskName, reg.maskValue, mask))
	}

	out = append(out, checkFlagHandling(p, reg)...)
	out = append(out, checkLiteralMasks(p, reg, mask)...)
	return out
}

type wireEntry struct {
	name     string // identifier of the flag constant
	pos      token.Pos
	value    uint64
	resolved bool
	size     int64
	sized    bool
}

type wireRegistry struct {
	entries []wireEntry
	// declared spans of the marker-carrying declarations, exempt from the
	// literal-mask check (the registry may state its values literally).
	spans []span
	// aggregate mask constant, when the package declares one.
	maskName     string
	maskPos      token.Pos
	maskValue    uint64
	maskResolved bool
}

type span struct{ lo, hi token.Pos }

func (r *wireRegistry) covers(pos token.Pos) bool {
	for _, s := range r.spans {
		if pos >= s.lo && pos <= s.hi {
			return true
		}
	}
	return false
}

// isWirePackage reports whether the package is the wire protocol package
// itself (non-test files in a package named cosmicnet).
func isWirePackage(p *Package) bool {
	if p.Name != "cosmicnet" {
		return false
	}
	for _, f := range p.Files {
		if !strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			return true
		}
	}
	return false
}

// collectRegistry finds the //cosmic:wire-registry declarations and
// extracts the flag entries: from the registry table's composite literal
// when present (keyed or positional WireExtension entries), else from the
// marked const block's flag* constants.
func collectRegistry(p *Package) *wireRegistry {
	reg := &wireRegistry{}
	consts := packageConsts(p)
	var tableEntries, constEntries []wireEntry
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || !declMarked(gd) {
				continue
			}
			reg.spans = append(reg.spans, span{gd.Pos(), gd.End()})
			switch gd.Tok {
			case token.CONST:
				constEntries = append(constEntries, constFlagEntries(p, gd, consts, reg)...)
			case token.VAR:
				tableEntries = append(tableEntries, tableFlagEntries(p, gd, consts)...)
			}
		}
	}
	if len(tableEntries) > 0 {
		reg.entries = tableEntries
	} else {
		reg.entries = constEntries
	}
	return reg
}

func declMarked(gd *ast.GenDecl) bool {
	if gd.Doc == nil {
		return false
	}
	for _, c := range gd.Doc.List {
		if strings.Contains(c.Text, markRegistry) {
			return true
		}
	}
	return false
}

// constFlagEntries reads flag constants out of a marked const block: names
// beginning with "flag" are flags, except an aggregate whose name contains
// "Mask", which is recorded separately.
func constFlagEntries(p *Package, gd *ast.GenDecl, consts map[string]uint64, reg *wireRegistry) []wireEntry {
	var out []wireEntry
	for _, s := range gd.Specs {
		vs, ok := s.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if !strings.HasPrefix(name.Name, "flag") && !strings.HasPrefix(name.Name, "Flag") {
				continue
			}
			var val uint64
			var resolved bool
			if i < len(vs.Values) {
				val, resolved = constValue(p, vs.Values[i], consts)
			}
			if strings.Contains(name.Name, "Mask") || strings.Contains(name.Name, "mask") {
				reg.maskName = name.Name
				reg.maskPos = name.Pos()
				reg.maskValue = val
				reg.maskResolved = resolved
				continue
			}
			out = append(out, wireEntry{name: name.Name, pos: name.Pos(), value: val, resolved: resolved})
		}
	}
	return out
}

// tableFlagEntries reads the registry table's composite literal: each
// element is a WireExtension-shaped literal, keyed (Flag/Name/Size) or
// positional (flag, name, size).
func tableFlagEntries(p *Package, gd *ast.GenDecl, consts map[string]uint64) []wireEntry {
	var out []wireEntry
	for _, s := range gd.Specs {
		vs, ok := s.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			lit, ok := v.(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, el := range lit.Elts {
				entry, ok := parseTableEntry(p, el, consts)
				if ok {
					out = append(out, entry)
				}
			}
		}
	}
	return out
}

func parseTableEntry(p *Package, el ast.Expr, consts map[string]uint64) (wireEntry, bool) {
	lit, ok := el.(*ast.CompositeLit)
	if !ok {
		return wireEntry{}, false
	}
	e := wireEntry{pos: lit.Pos()}
	bind := func(field string, expr ast.Expr) {
		switch field {
		case "Flag":
			e.value, e.resolved = constValue(p, expr, consts)
			if id, ok := unwrapExpr(expr).(*ast.Ident); ok {
				e.name = id.Name
			} else {
				e.name = exprString(expr)
			}
			e.pos = expr.Pos()
		case "Size":
			if v, ok := constValue(p, expr, consts); ok {
				e.size = int64(v)
				e.sized = true
			}
		}
	}
	for i, f := range lit.Elts {
		if kv, ok := f.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				bind(key.Name, kv.Value)
			}
			continue
		}
		switch i {
		case 0:
			bind("Flag", f)
		case 2:
			bind("Size", f)
		}
	}
	return e, e.name != ""
}

// packageConsts maps constant names to integer values for the degraded
// type-information fallback; only direct integer literals are resolved.
func packageConsts(p *Package) map[string]uint64 {
	out := map[string]uint64{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, s := range gd.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					if bl, ok := vs.Values[i].(*ast.BasicLit); ok && bl.Kind == token.INT {
						if v, err := strconv.ParseUint(bl.Value, 0, 64); err == nil {
							out[name.Name] = v
						}
					}
				}
			}
		}
	}
	return out
}

// constValue resolves an expression to a constant integer, preferring the
// type checker and falling back to the package's literal const table.
func constValue(p *Package, e ast.Expr, consts map[string]uint64) (uint64, bool) {
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Uint64Val(constant.ToInt(tv.Value)); exact {
			return v, true
		}
	}
	switch e := unwrapExpr(e).(type) {
	case *ast.BasicLit:
		if e.Kind == token.INT {
			if v, err := strconv.ParseUint(e.Value, 0, 64); err == nil {
				return v, true
			}
		}
	case *ast.Ident:
		if v, ok := consts[e.Name]; ok {
			return v, true
		}
	case *ast.BinaryExpr:
		l, lok := constValue(p, e.X, consts)
		r, rok := constValue(p, e.Y, consts)
		if lok && rok {
			switch e.Op {
			case token.OR:
				return l | r, true
			case token.AND:
				return l & r, true
			case token.XOR:
				return l ^ r, true
			}
		}
	}
	return 0, false
}

// checkFlagHandling verifies every registered flag is referenced by name
// inside both the encode and the decode function bodies.
func checkFlagHandling(p *Package, reg *wireRegistry) []Diagnostic {
	var out []Diagnostic
	decls := funcDecls(p.Files)
	sides := []struct{ role, fn string }{
		{"encode", "writeFrame"},
		{"decode", "readFrameInto"},
	}
	for _, side := range sides {
		fd, ok := decls[side.fn]
		for _, e := range reg.entries {
			if !ok || fd.Body == nil {
				out = append(out, diag(p.Fset, "wireflag", SeverityError, e.pos,
					"wire flag %s: no %s function (%s) found to handle it", e.name, side.role, side.fn))
				continue
			}
			if !bodyMentions(fd.Body, e.name) {
				out = append(out, diag(p.Fset, "wireflag", SeverityError, e.pos,
					"wire flag %s is not handled in the %s path (%s)", e.name, side.role, side.fn))
			}
		}
	}
	return out
}

func bodyMentions(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// checkLiteralMasks flags integer literals that carry a registered bit and
// appear as operands of bitwise operators outside the registry
// declarations. Byte-level wire tests are exempt (_test.go), as values
// above 0xFF cannot be type-byte masks.
func checkLiteralMasks(p *Package, reg *wireRegistry, mask uint64) []Diagnostic {
	var out []Diagnostic
	if mask == 0 {
		return out
	}
	check := func(e ast.Expr) {
		bl, ok := unwrapExpr(e).(*ast.BasicLit)
		if !ok || bl.Kind != token.INT || reg.covers(bl.Pos()) {
			return
		}
		v, err := strconv.ParseUint(bl.Value, 0, 64)
		if err != nil || v > 0xFF || v&mask == 0 {
			return
		}
		out = append(out, diag(p.Fset, "wireflag", SeverityError, bl.Pos(),
			"raw literal %s carries registered wire-flag bits (mask 0x%X); use the named flag constants from the registry", bl.Value, v&mask))
	}
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.AND, token.OR, token.XOR, token.AND_NOT:
					check(n.X)
					check(n.Y)
				}
			case *ast.AssignStmt:
				switch n.Tok {
				case token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
					for _, r := range n.Rhs {
						check(r)
					}
				}
			}
			return true
		})
	}
	return out
}
