package srclint

import "testing"

const lockPrelude = `package p

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

`

func TestLockHeldAtReturn(t *testing.T) {
	ds := lintSource(t, "lockcheck", lockPrelude+`func (b *box) get(skip bool) int {
	b.mu.Lock()
	if skip {
		return -1
	}
	n := b.n
	b.mu.Unlock()
	return n
}
`)
	wantFinding(t, ds, "return reached with b.mu held")
}

func TestDoubleLock(t *testing.T) {
	ds := lintSource(t, "lockcheck", lockPrelude+`func (b *box) bump() {
	b.mu.Lock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}
`)
	wantFinding(t, ds, "double Lock of b.mu")
}

func TestLockHeldAtFunctionEnd(t *testing.T) {
	ds := lintSource(t, "lockcheck", lockPrelude+`func (b *box) bump() {
	b.mu.Lock()
	b.n++
}
`)
	wantFinding(t, ds, "function end reached with b.mu held")
}

func TestDeferUnlockIsClean(t *testing.T) {
	wantClean(t, lintSource(t, "lockcheck", lockPrelude+`func (b *box) bump(skip bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if skip {
		return
	}
	b.n++
}
`))
}

func TestBranchBalancedUnlockIsClean(t *testing.T) {
	wantClean(t, lintSource(t, "lockcheck", lockPrelude+`func (b *box) bump(reset bool) {
	b.mu.Lock()
	if reset {
		b.n = 0
		b.mu.Unlock()
		return
	}
	b.n++
	b.mu.Unlock()
}
`))
}

// TestRWMutexSidesAreSeparate pins the /R key split: RLock is not paired
// by a write-side Unlock.
func TestRWMutexSidesAreSeparate(t *testing.T) {
	ds := lintSource(t, "lockcheck", `package p

import "sync"

type rbox struct {
	mu sync.RWMutex
	n  int
}

func (b *rbox) get() int {
	b.mu.RLock()
	n := b.n
	b.mu.Unlock()
	return n
}

func (b *rbox) ok() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.n
}
`)
	wantFinding(t, ds, "b.mu/R held")
	if len(ds) != 1 {
		t.Errorf("want exactly one finding, got %d: %+v", len(ds), ds)
	}
}

// Goroutine hygiene only fires in the runtime/obs packages.

func TestGoroutineLoopCapture(t *testing.T) {
	ds := lintSource(t, "lockcheck", `package runtime

func fan(items []int, out chan<- int) {
	for _, v := range items {
		go func() {
			out <- v
		}()
	}
}
`)
	wantFinding(t, ds, "captures loop variable v")
}

func TestGoroutineNoShutdownEdge(t *testing.T) {
	ds := lintSource(t, "lockcheck", `package runtime

func spin(tick func()) {
	go func() {
		for {
			tick()
		}
	}()
}
`)
	wantFinding(t, ds, "no shutdown edge")
}

func TestGoroutineSelectLoopIsClean(t *testing.T) {
	wantClean(t, lintSource(t, "lockcheck", `package runtime

func worker(tasks <-chan func(), stop <-chan struct{}) {
	go func() {
		for {
			select {
			case t := <-tasks:
				t()
			case <-stop:
				return
			}
		}
	}()
}
`))
}

func TestGoroutineShutdownAnnotationIsClean(t *testing.T) {
	wantClean(t, lintSource(t, "lockcheck", `package runtime

func spin(tick func()) {
	//cosmic:shutdown killed with the process
	go func() {
		for {
			tick()
		}
	}()
}
`))
}

func TestGoroutineChecksGatedToRuntimeObs(t *testing.T) {
	wantClean(t, lintSource(t, "lockcheck", `package other

func spin(tick func()) {
	go func() {
		for {
			tick()
		}
	}()
}
`))
}

func TestGoroutineArgPassedLoopVarIsClean(t *testing.T) {
	wantClean(t, lintSource(t, "lockcheck", `package runtime

func fan(items []int, out chan<- int) {
	for _, v := range items {
		go func(v int) {
			out <- v
		}(v)
	}
}
`))
}
