package check

import (
	"fmt"
	"reflect"

	"repro/internal/dfg"
	"repro/internal/verilog"
)

// Microcode field widths (see Instruction.Microcode): operand indices ride
// 13-bit fields, destinations and routing slots 16-bit fields. An index
// beyond its field is silently truncated by the packer, so the checker
// rejects it statically.
const (
	maxIdx13 = 0x1fff
	maxIdx16 = 0xffff
)

// Tape compiles the graph's evaluation tape and audits it (dfg.Tape.Check),
// lifting each issue into a diagnostic.
func Tape(g *dfg.Graph) Diagnostics {
	var ds Diagnostics
	t, err := g.CompileTape()
	if err != nil {
		ds.errorf(LayerTape, "compile", "%v", err)
		return ds
	}
	for _, issue := range t.Check(g) {
		ds.errorf(LayerTape, "tape", "%s", issue)
	}
	return ds
}

// Microcode audits the encoded accelerator image: buffer-slot allocation
// consistency, operand and routing-target validity (every bus read names a
// real remote PE and an in-range slot of the right partition — the
// microcode's "branch targets"), field-width fit, and the encode→disassemble
// round trip over every PE's control ROM.
func Microcode(img *verilog.Image) Diagnostics {
	var ds Diagnostics
	prog := img.Prog
	if len(img.PEs) != prog.NPE {
		ds.errorf(LayerMicrocode, "image", "%d PE programs for %d PEs", len(img.PEs), prog.NPE)
		return ds
	}

	for pe := range img.PEs {
		p := &img.PEs[pe]
		loc := func(i int) string { return fmt.Sprintf("PE %d instr %d", pe, i) }
		if want := len(prog.PEOps[pe]) + len(prog.GradAccum[pe]); len(p.Instructions) != want {
			ds.errorf(LayerMicrocode, fmt.Sprintf("PE %d", pe),
				"%d instructions, schedule has %d ops + %d accumulations", len(p.Instructions), len(prog.PEOps[pe]), len(prog.GradAccum[pe]))
		}
		for i, ins := range p.Instructions {
			if ins.Dst < 0 || ins.Dst >= p.InterimSlots {
				ds.errorf(LayerMicrocode, loc(i), "destination slot %d of %d interims", ins.Dst, p.InterimSlots)
			}
			if ins.Dst > maxIdx16 {
				ds.errorf(LayerMicrocode, loc(i), "destination slot %d overflows its 16-bit field", ins.Dst)
			}
			if len(ins.Srcs) > 3 {
				ds.errorf(LayerMicrocode, loc(i), "%d sources (ISA maximum 3)", len(ins.Srcs))
			}
			for k, s := range ins.Srcs {
				checkOperand(&ds, img, pe, loc(i), k, s)
			}
		}
	}

	// Slot maps: every scheduled compute node owns an in-range interim slot
	// on its PE; every accumulated output owns an accumulator slot.
	for pe, ops := range prog.PEOps {
		for _, id := range ops {
			slot, ok := img.InterimSlotOf[id]
			if !ok || slot < 0 || slot >= img.PEs[pe].InterimSlots {
				ds.errorf(LayerMicrocode, fmt.Sprintf("PE %d", pe), "compute node %d has no valid interim slot", id)
			}
		}
	}
	for pe, ids := range prog.GradAccum {
		for _, id := range ids {
			slot, ok := img.AccSlotOf[id]
			if !ok || slot < 0 || slot >= img.PEs[pe].InterimSlots {
				ds.errorf(LayerMicrocode, fmt.Sprintf("PE %d", pe), "output node %d has no valid accumulator slot", id)
			}
		}
	}

	// Encode→disassemble round trip: each PE's control ROM must decode back
	// to the same instructions and re-encode to identical words.
	for pe, words := range verilog.MicrocodeOf(img) {
		decoded, err := verilog.Disassemble(words)
		if err != nil {
			ds.errorf(LayerMicrocode, fmt.Sprintf("PE %d", pe), "disassembly failed: %v", err)
			continue
		}
		if !reflect.DeepEqual(normalizeSrcs(decoded), normalizeSrcs(img.PEs[pe].Instructions)) {
			ds.errorf(LayerMicrocode, fmt.Sprintf("PE %d", pe), "disassembly disagrees with the encoded program")
			continue
		}
		var rewords []uint32
		for _, ins := range decoded {
			rewords = append(rewords, ins.Microcode()...)
		}
		if !reflect.DeepEqual(rewords, words) {
			ds.errorf(LayerMicrocode, fmt.Sprintf("PE %d", pe), "re-encoded ROM differs from the original")
		}
	}
	return ds
}

// checkOperand audits one resolved operand against the image's buffer
// allocation and the microcode field widths.
func checkOperand(ds *Diagnostics, img *verilog.Image, pe int, loc string, k int, s verilog.Operand) {
	slots := func(p *verilog.PEImage, cls verilog.OperandClass) (int, bool) {
		switch cls {
		case verilog.ClsData:
			return p.DataSlots, true
		case verilog.ClsModel:
			return p.ModelSlots, true
		case verilog.ClsInterim:
			return p.InterimSlots, true
		}
		return 0, false
	}
	if s.Index > maxIdx13 {
		ds.errorf(LayerMicrocode, loc, "src %d index %d overflows its 13-bit field", k, s.Index)
	}
	switch s.Class {
	case verilog.ClsImm:
		if s.Index < 0 || s.Index >= len(img.Consts) {
			ds.errorf(LayerMicrocode, loc, "src %d immediate %d of %d constants", k, s.Index, len(img.Consts))
		}
	case verilog.ClsBus:
		if s.SrcPE < 0 || s.SrcPE >= len(img.PEs) {
			ds.errorf(LayerMicrocode, loc, "src %d routes from PE %d of %d", k, s.SrcPE, len(img.PEs))
			return
		}
		if s.SrcPE == pe {
			ds.errorf(LayerMicrocode, loc, "src %d routes over the bus from its own PE", k)
		}
		if s.SrcPE > maxIdx13 {
			ds.errorf(LayerMicrocode, loc, "src %d source PE %d overflows its 13-bit field", k, s.SrcPE)
		}
		n, ok := slots(&img.PEs[s.SrcPE], s.SrcClass)
		if !ok {
			ds.errorf(LayerMicrocode, loc, "src %d routes from class %s", k, s.SrcClass)
		} else if s.Index < 0 || s.Index >= n {
			ds.errorf(LayerMicrocode, loc, "src %d routes from PE %d %s slot %d of %d", k, s.SrcPE, s.SrcClass, s.Index, n)
		}
	default:
		n, ok := slots(&img.PEs[pe], s.Class)
		if !ok {
			ds.errorf(LayerMicrocode, loc, "src %d has class %s", k, s.Class)
		} else if s.Index < 0 || s.Index >= n {
			ds.errorf(LayerMicrocode, loc, "src %d reads %s slot %d of %d", k, s.Class, s.Index, n)
		}
	}
}

// normalizeSrcs maps empty source slices to nil so DeepEqual compares the
// operands, not an allocation artifact of the decoder.
func normalizeSrcs(ins []verilog.Instruction) []verilog.Instruction {
	out := make([]verilog.Instruction, len(ins))
	copy(out, ins)
	for i := range out {
		if len(out[i].Srcs) == 0 {
			out[i].Srcs = nil
		}
	}
	return out
}
