// Package check is CoSMIC's cross-layer static verification layer: a
// unified audit of every compiled artifact the stack's correctness rests on
// — the dataflow graph, the static schedule, the memory-interface schedule,
// the compiled evaluation tape, and the encoded microcode. Each checker
// returns structured Diagnostics instead of a bare error so callers (the
// `cosmicc vet` driver, CI, the debug hook in core.BuildProgram) can report
// every violation at once, grouped by layer.
//
// The invariants live here, in one place, because they are cross-layer by
// nature: the schedule is only correct *with respect to* the graph, the
// microcode only with respect to the schedule. A checker never mutates an
// artifact and never consults how it was built — only what it claims.
package check

import (
	"fmt"
	"strings"
)

// Layer names the artifact a diagnostic is about.
type Layer string

// The checked layers, in pipeline order.
const (
	LayerDFG       Layer = "dfg"
	LayerSchedule  Layer = "schedule"
	LayerMemSched  Layer = "memsched"
	LayerTape      Layer = "tape"
	LayerMicrocode Layer = "microcode"
)

// Severity grades a diagnostic. Errors fail `cosmicc vet`; warnings do not.
type Severity int

// Severities.
const (
	Warning Severity = iota
	Error
)

// String names the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one verification finding.
type Diagnostic struct {
	Layer    Layer
	Severity Severity
	// Loc locates the finding within the artifact (a node, PE, queue
	// entry, …); free-form but stable.
	Loc string
	Msg string
}

// String renders the diagnostic in a vet-style one-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", d.Layer, d.Severity, d.Loc, d.Msg)
}

// Diagnostics is an ordered finding list.
type Diagnostics []Diagnostic

// errorf appends an error diagnostic.
func (ds *Diagnostics) errorf(layer Layer, loc, format string, args ...any) {
	*ds = append(*ds, Diagnostic{Layer: layer, Severity: Error, Loc: loc, Msg: fmt.Sprintf(format, args...)})
}

// warnf appends a warning diagnostic.
func (ds *Diagnostics) warnf(layer Layer, loc, format string, args ...any) {
	*ds = append(*ds, Diagnostic{Layer: layer, Severity: Warning, Loc: loc, Msg: fmt.Sprintf(format, args...)})
}

// Errors counts error-severity findings.
func (ds Diagnostics) Errors() int {
	n := 0
	for _, d := range ds {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// HasErrors reports whether any finding is an error.
func (ds Diagnostics) HasErrors() bool { return ds.Errors() > 0 }

// ByLayer returns the findings for one layer.
func (ds Diagnostics) ByLayer(l Layer) Diagnostics {
	var out Diagnostics
	for _, d := range ds {
		if d.Layer == l {
			out = append(out, d)
		}
	}
	return out
}

// String renders all findings, one per line.
func (ds Diagnostics) String() string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
