package check

import (
	"fmt"

	"repro/internal/dfg"
	"repro/internal/dsl"
)

// Graph audits the dataflow graph: structural validity (dense topological
// IDs — which is the acyclicity proof, since every edge then points
// backward), arg/consumer edge symmetry, exact ASAP levels and heights, no
// orphan compute nodes, and binding-table completeness against the DSL
// unit's symbol table.
func Graph(g *dfg.Graph) Diagnostics {
	var ds Diagnostics
	if err := g.Validate(); err != nil {
		ds.errorf(LayerDFG, "graph", "%v", err)
		return ds // IDs unreliable; the remaining checks index by them
	}

	// Arg/consumer symmetry: the forward and backward edge sets must
	// describe the same graph, or level/height and the mappers (which walk
	// Consumers) silently disagree with evaluation (which walks Args).
	for _, n := range g.Nodes {
		for _, a := range n.Args {
			if !containsNode(a.Consumers, n) {
				ds.errorf(LayerDFG, nodeLoc(n), "argument %d does not list it as a consumer", a.ID)
			}
		}
		for _, c := range n.Consumers {
			if !containsNode(c.Args, n) {
				ds.errorf(LayerDFG, nodeLoc(n), "consumer %d does not list it as an argument", c.ID)
			}
		}
	}

	// Exact level/height invariants (the scheduler's priority order and the
	// planner's width profile both read these).
	for _, n := range g.Nodes {
		lvl := 0
		for _, a := range n.Args {
			al := a.Level
			if !a.Op.IsLeaf() {
				al++
			}
			if al > lvl {
				lvl = al
			}
		}
		if n.Level != lvl {
			ds.errorf(LayerDFG, nodeLoc(n), "level %d, want %d (ASAP)", n.Level, lvl)
		}
		h := 0
		for _, c := range n.Consumers {
			if c.Height+1 > h {
				h = c.Height + 1
			}
		}
		if n.Height != h {
			ds.errorf(LayerDFG, nodeLoc(n), "height %d, want %d", n.Height, h)
		}
	}

	// Orphan compute nodes: a compute node must feed another node or be a
	// gradient output; anything else is dead work the mapper will still
	// schedule onto a PE.
	output := map[int]bool{}
	for _, outs := range g.Outputs {
		for _, o := range outs {
			if o != nil {
				output[o.ID] = true
			}
		}
	}
	for _, n := range g.Nodes {
		if !n.Op.IsLeaf() && len(n.Consumers) == 0 && !output[n.ID] {
			ds.errorf(LayerDFG, nodeLoc(n), "orphan compute node: no consumers and not an output")
		}
	}

	// Binding-table completeness per DSL unit: every data/model/gradient
	// symbol's table must exist with exactly Size() entries, and each leaf
	// must sit at its own element index.
	if g.Unit != nil {
		checkLeafTables(&ds, g, dsl.KindModelInput, g.DataLeaves)
		checkLeafTables(&ds, g, dsl.KindModelOutput, g.DataLeaves)
		checkLeafTables(&ds, g, dsl.KindModel, g.ModelLeaves)
		grads := map[string]bool{}
		for _, sym := range g.Unit.SymbolsOfKind(dsl.KindGradient) {
			grads[sym.Name] = true
			outs, ok := g.Outputs[sym.Name]
			if !ok {
				ds.errorf(LayerDFG, "output "+sym.Name, "gradient symbol has no output table")
				continue
			}
			if len(outs) != sym.Size() {
				ds.errorf(LayerDFG, "output "+sym.Name, "table has %d entries, symbol has %d elements", len(outs), sym.Size())
			}
		}
		for name := range g.Outputs {
			if !grads[name] {
				ds.errorf(LayerDFG, "output "+name, "output table for non-gradient symbol")
			}
		}
		order := map[string]bool{}
		for _, name := range g.OutputOrder {
			order[name] = true
		}
		if len(g.OutputOrder) != len(g.Outputs) {
			ds.errorf(LayerDFG, "outputs", "OutputOrder lists %d symbols, Outputs holds %d", len(g.OutputOrder), len(g.Outputs))
		}
		for name := range grads {
			if !order[name] {
				ds.errorf(LayerDFG, "output "+name, "gradient symbol missing from OutputOrder")
			}
		}
	}
	return ds
}

// checkLeafTables audits the leaf tables of one symbol kind against the
// unit: table length matches the symbol extent, and every non-nil leaf
// carries its own (Var, Index) identity.
func checkLeafTables(ds *Diagnostics, g *dfg.Graph, kind dsl.VarKind, tables map[string][]*dfg.Node) {
	leafOp := dfg.OpData
	if kind == dsl.KindModel {
		leafOp = dfg.OpModel
	}
	for _, sym := range g.Unit.SymbolsOfKind(kind) {
		leaves, ok := tables[sym.Name]
		if !ok {
			// Legal — the words still stream and are discarded by the
			// shifter — but worth surfacing: it is usually a typo in the DSL.
			ds.warnf(LayerDFG, "leaf "+sym.Name, "%s symbol is never referenced; its words stream as padding", sym.Kind)
			continue
		}
		loc := "leaf " + sym.Name
		if len(leaves) != sym.Size() {
			ds.errorf(LayerDFG, loc, "table has %d entries, symbol has %d elements", len(leaves), sym.Size())
			continue
		}
		for i, leaf := range leaves {
			if leaf == nil {
				continue
			}
			if leaf.Op != leafOp || leaf.Var != sym.Name || leaf.Index != i {
				ds.errorf(LayerDFG, loc, "entry %d is %s %s[%d]", i, leaf.Op, leaf.Var, leaf.Index)
			}
		}
	}
}

func containsNode(ns []*dfg.Node, want *dfg.Node) bool {
	for _, n := range ns {
		if n == want {
			return true
		}
	}
	return false
}

func nodeLoc(n *dfg.Node) string { return fmt.Sprintf("node %d (%s)", n.ID, n.Op) }
