package check

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/dfg"
	"repro/internal/dsl"
	"repro/internal/verilog"
)

var testChip = arch.ChipSpec{
	Name: "check-chip", Kind: arch.FPGA,
	PEBudget: 64, StorageKB: 256,
	MemBandwidthGBps: 3.2, FrequencyMHz: 100,
	TDPWatts: 5,
}

func compileFor(t *testing.T, src string, params map[string]int, style compiler.Style) *compiler.Program {
	t.Helper()
	u, err := dsl.ParseAndAnalyze(src, params)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dfg.Translate(u)
	if err != nil {
		t.Fatal(err)
	}
	plan := arch.Plan{Chip: testChip, Columns: testChip.Columns(), Threads: 1, RowsPerThread: 2}
	p, err := compiler.Compile(g, plan, style)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAllCleanOnEverySource proves the shipped DSL programs compile to
// artifacts that pass every layer's checker under both mapping styles.
func TestAllCleanOnEverySource(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		params map[string]int
	}{
		{"linreg", dsl.SourceLinearRegression, map[string]int{"M": 24}},
		{"logreg", dsl.SourceLogisticRegression, map[string]int{"M": 24}},
		{"svm", dsl.SourceSVM, map[string]int{"M": 24}},
		{"backprop", dsl.SourceBackprop, map[string]int{"IN": 8, "HID": 6, "OUT": 3}},
		{"cf", dsl.SourceCollaborativeFiltering, map[string]int{"NU": 6, "NV": 5, "K": 3}},
		{"softmax", dsl.SourceSoftmax, map[string]int{"M": 10, "C": 4}},
	}
	for _, c := range cases {
		for _, style := range []compiler.Style{compiler.StyleCoSMIC, compiler.StyleTABLA} {
			t.Run(c.name+"/"+style.String(), func(t *testing.T) {
				p := compileFor(t, c.src, c.params, style)
				ds := All(p)
				if ds.HasErrors() {
					t.Errorf("clean program reported %d errors:\n%s", ds.Errors(), ds)
				}
			})
		}
	}
}

func wantError(t *testing.T, ds Diagnostics, layer Layer, frag string) {
	t.Helper()
	for _, d := range ds.ByLayer(layer) {
		if d.Severity == Error && strings.Contains(d.Msg, frag) {
			return
		}
	}
	t.Errorf("no %s error mentioning %q:\n%s", layer, frag, ds)
}

func TestGraphCatchesLevelDrift(t *testing.T) {
	p := compileFor(t, dsl.SourceSVM, map[string]int{"M": 12}, compiler.StyleCoSMIC)
	for _, n := range p.Graph.Nodes {
		if !n.Op.IsLeaf() {
			n.Level += 5
			break
		}
	}
	wantError(t, Graph(p.Graph), LayerDFG, "ASAP")
}

func TestGraphCatchesBrokenConsumerEdges(t *testing.T) {
	p := compileFor(t, dsl.SourceSVM, map[string]int{"M": 12}, compiler.StyleCoSMIC)
	for _, n := range p.Graph.Nodes {
		if !n.Op.IsLeaf() && len(n.Consumers) > 0 {
			n.Consumers = nil
			break
		}
	}
	wantError(t, Graph(p.Graph), LayerDFG, "consumer")
}

func TestGraphCatchesLeafTableCorruption(t *testing.T) {
	p := compileFor(t, dsl.SourceSVM, map[string]int{"M": 12}, compiler.StyleCoSMIC)
	leaves := p.Graph.DataLeaves["x"]
	leaves[0], leaves[1] = leaves[1], leaves[0]
	wantError(t, Graph(p.Graph), LayerDFG, "entry")
}

func TestScheduleCatchesUnplacedComputeNode(t *testing.T) {
	p := compileFor(t, dsl.SourceSVM, map[string]int{"M": 12}, compiler.StyleCoSMIC)
	for _, n := range p.Graph.Nodes {
		if !n.Op.IsLeaf() {
			p.PE[n.ID] = -5
			break
		}
	}
	wantError(t, Schedule(p), LayerSchedule, "PE")
}

func TestScheduleCatchesDroppedAccumulation(t *testing.T) {
	p := compileFor(t, dsl.SourceSVM, map[string]int{"M": 12}, compiler.StyleCoSMIC)
	for pe, ids := range p.GradAccum {
		if len(ids) > 0 {
			p.GradAccum[pe] = ids[:len(ids)-1]
			break
		}
	}
	wantError(t, Schedule(p), LayerSchedule, "accumulated")
}

func TestScheduleCatchesStorageOverflow(t *testing.T) {
	p := compileFor(t, dsl.SourceSVM, map[string]int{"M": 12}, compiler.StyleCoSMIC)
	p.Plan.Chip.StorageKB = 0
	wantError(t, Schedule(p), LayerSchedule, "budget")
}

func TestMemScheduleCatchesDroppedEntry(t *testing.T) {
	p := compileFor(t, dsl.SourceSVM, map[string]int{"M": 12}, compiler.StyleCoSMIC)
	p.MemSchedule = p.MemSchedule[:len(p.MemSchedule)-1]
	wantError(t, MemSchedule(p), LayerMemSched, "words")
}

func TestMemScheduleCatchesBadBasePE(t *testing.T) {
	p := compileFor(t, dsl.SourceSVM, map[string]int{"M": 12}, compiler.StyleCoSMIC)
	p.MemSchedule[0].BasePE = -1
	wantError(t, MemSchedule(p), LayerMemSched, "base PE")
}

func TestMemScheduleCatchesEmptyTransfer(t *testing.T) {
	p := compileFor(t, dsl.SourceSVM, map[string]int{"M": 12}, compiler.StyleCoSMIC)
	p.MemSchedule[0].Size = 0
	wantError(t, MemSchedule(p), LayerMemSched, "empty")
}

func TestTapeDiagnosticsOnCorruptGraph(t *testing.T) {
	p := compileFor(t, dsl.SourceSVM, map[string]int{"M": 12}, compiler.StyleCoSMIC)
	// Breaking topological IDs makes tape compilation itself refuse.
	p.Graph.Nodes[0].ID = 7
	ds := Tape(p.Graph)
	if !ds.HasErrors() {
		t.Fatalf("corrupt graph compiled a tape cleanly:\n%s", ds)
	}
}

func TestMicrocodeCatchesBadDestination(t *testing.T) {
	p := compileFor(t, dsl.SourceSVM, map[string]int{"M": 12}, compiler.StyleCoSMIC)
	img, err := verilog.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	for pe := range img.PEs {
		if len(img.PEs[pe].Instructions) > 0 {
			img.PEs[pe].Instructions[0].Dst = img.PEs[pe].InterimSlots + 9
			break
		}
	}
	wantError(t, Microcode(img), LayerMicrocode, "destination")
}

func TestMicrocodeCatchesBadRoutingTarget(t *testing.T) {
	p := compileFor(t, dsl.SourceSVM, map[string]int{"M": 12}, compiler.StyleCoSMIC)
	img, err := verilog.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for pe := range img.PEs {
		for i, ins := range img.PEs[pe].Instructions {
			for k, s := range ins.Srcs {
				if s.Class == verilog.ClsBus {
					img.PEs[pe].Instructions[i].Srcs[k].SrcPE = len(img.PEs) + 3
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("mapping produced no bus transfer")
	}
	wantError(t, Microcode(img), LayerMicrocode, "routes from PE")
}

func TestMicrocodeCatchesUndecodableOpcode(t *testing.T) {
	p := compileFor(t, dsl.SourceSVM, map[string]int{"M": 12}, compiler.StyleCoSMIC)
	img, err := verilog.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	for pe := range img.PEs {
		if len(img.PEs[pe].Instructions) > 0 {
			img.PEs[pe].Instructions[0].Opc = verilog.Opcode(200)
			break
		}
	}
	wantError(t, Microcode(img), LayerMicrocode, "disassembly failed")
}

func TestDiagnosticsRendering(t *testing.T) {
	var ds Diagnostics
	ds.errorf(LayerDFG, "node 3", "bad thing")
	ds.warnf(LayerTape, "tape", "odd thing")
	if ds.Errors() != 1 || !ds.HasErrors() {
		t.Errorf("errors = %d, want 1", ds.Errors())
	}
	out := ds.String()
	for _, want := range []string{"dfg: error: node 3: bad thing", "tape: warning: tape: odd thing"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	if len(ds.ByLayer(LayerTape)) != 1 {
		t.Error("ByLayer(tape) should return one finding")
	}
}
