package check

import (
	"repro/internal/compiler"
	"repro/internal/verilog"
)

// All runs every layer's checker over a compiled program, bottom of the
// stack to the top: the dataflow graph, the static schedule, the memory
// schedule, the evaluation tape, and the encoded microcode. It is what
// `cosmicc vet` and the COSMIC_VET debug hook execute.
func All(p *compiler.Program) Diagnostics {
	ds := Graph(p.Graph)
	ds = append(ds, Schedule(p)...)
	ds = append(ds, MemSchedule(p)...)
	ds = append(ds, Tape(p.Graph)...)
	img, err := verilog.Encode(p)
	if err != nil {
		ds.errorf(LayerMicrocode, "encode", "%v", err)
		return ds
	}
	ds = append(ds, Microcode(img)...)
	return ds
}
