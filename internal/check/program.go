package check

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/dfg"
)

// Schedule audits the compiled static schedule against its graph: the
// compiler's own Validate invariants (placement consistency, IssueOrder a
// topological permutation of the compute nodes, per-PE programs exact
// subsequences of it), plus leaf placement, gradient-accumulation coverage,
// and the per-PE storage accounting against the chip budget.
func Schedule(p *compiler.Program) Diagnostics {
	var ds Diagnostics
	// Program.Validate is the single source of truth for the core schedule
	// invariants; check reuses it rather than re-deriving them.
	if err := p.Validate(); err != nil {
		ds.errorf(LayerSchedule, "program", "%v", err)
	}
	g := p.Graph

	// Placement: every node the schedule touches must live on a real PE.
	peOK := func(pe int) bool { return pe >= 0 && pe < p.NPE }
	for _, n := range g.Nodes {
		pe := p.PE[n.ID]
		switch {
		case n.Op.IsLeaf():
			// Constants are immediates (-1); referenced data/model leaves
			// must be pinned somewhere the memory interface can reach.
			if pe != -1 && !peOK(pe) {
				ds.errorf(LayerSchedule, nodeLoc(n), "placed on PE %d of %d", pe, p.NPE)
			}
		case !peOK(pe):
			ds.errorf(LayerSchedule, nodeLoc(n), "compute node on PE %d of %d", pe, p.NPE)
		}
	}

	// Streams: every entry must be a leaf of the right kind, placed, and
	// appear at most once (the memory interface delivers each word once).
	seen := map[int]bool{}
	for k, id := range p.DataStream {
		loc := fmt.Sprintf("data stream word %d", k)
		if id < 0 {
			continue // padding word
		}
		if id >= len(g.Nodes) || g.Nodes[id].Op != dfg.OpData {
			ds.errorf(LayerSchedule, loc, "entry %d is not a DATA leaf", id)
			continue
		}
		if seen[id] {
			ds.errorf(LayerSchedule, loc, "leaf %d streamed twice", id)
		}
		seen[id] = true
		if !peOK(p.PE[id]) {
			ds.errorf(LayerSchedule, loc, "streamed leaf %d is unplaced", id)
		}
	}
	for k, id := range p.ModelStream {
		loc := fmt.Sprintf("model stream word %d", k)
		if id < 0 || id >= len(g.Nodes) || g.Nodes[id].Op != dfg.OpModel {
			ds.errorf(LayerSchedule, loc, "entry %d is not a MODEL leaf", id)
			continue
		}
		if seen[id] {
			ds.errorf(LayerSchedule, loc, "leaf %d streamed twice", id)
		}
		seen[id] = true
		if !peOK(p.PE[id]) {
			ds.errorf(LayerSchedule, loc, "broadcast leaf %d is unplaced", id)
		}
	}

	// Gradient accumulation: every output node exactly once, on its own PE.
	accum := map[int]int{}
	for pe, ids := range p.GradAccum {
		for _, id := range ids {
			accum[id]++
			if owner := p.PE[id]; owner >= 0 && owner != pe {
				ds.errorf(LayerSchedule, fmt.Sprintf("gradaccum PE %d", pe), "output %d produced on PE %d", id, owner)
			}
		}
	}
	for name, outs := range g.Outputs {
		for i, o := range outs {
			if o == nil {
				continue
			}
			if accum[o.ID] != 1 {
				ds.errorf(LayerSchedule, fmt.Sprintf("output %s[%d]", name, i), "accumulated %d times", accum[o.ID])
			}
		}
	}

	// Storage accounting: the per-PE partitions must sum to exactly the
	// graph's storage footprint, and the planned thread count must fit the
	// chip's buffer budget (the Planner's own bound, re-proved here).
	perPE := make([]int, p.NPE)
	for _, id := range p.DataStream {
		if id >= 0 && peOK(p.PE[id]) {
			perPE[p.PE[id]]++
		}
	}
	for _, id := range p.ModelStream {
		if id >= 0 && id < len(g.Nodes) && peOK(p.PE[id]) {
			perPE[p.PE[id]]++
		}
	}
	for _, n := range g.Nodes {
		if !n.Op.IsLeaf() && peOK(p.PE[n.ID]) {
			perPE[p.PE[n.ID]]++
		}
	}
	total := 0
	for _, w := range perPE {
		total += w
	}
	if want := g.StorageWords(); total != want {
		ds.errorf(LayerSchedule, "storage", "per-PE partitions hold %d words, graph needs %d", total, want)
	}
	chip := p.Plan.Chip
	if budget := chip.StorageWords(); p.Plan.Threads*g.StorageWords() > budget {
		ds.errorf(LayerSchedule, "storage", "%d threads × %d words exceed %s's %d-word budget",
			p.Plan.Threads, g.StorageWords(), chip.Name, budget)
	}
	return ds
}

// MemSchedule audits the memory-interface schedule queue: every entry
// in-range and non-empty, and the word accounting exactly covering the model
// broadcast, the data stream, and the gradient write-back — no word
// delivered twice, none forgotten.
func MemSchedule(p *compiler.Program) Diagnostics {
	var ds Diagnostics
	var bcast, read, write int
	for i, e := range p.MemSchedule {
		loc := fmt.Sprintf("entry %d", i)
		if e.Size <= 0 {
			ds.errorf(LayerMemSched, loc, "empty transfer (size %d)", e.Size)
		}
		if e.Size > p.Columns {
			ds.errorf(LayerMemSched, loc, "size %d exceeds the %d-column interface", e.Size, p.Columns)
		}
		if e.BasePE < 0 || e.BasePE >= p.NPE {
			ds.errorf(LayerMemSched, loc, "base PE %d of %d", e.BasePE, p.NPE)
		}
		if e.Write && e.Broadcast {
			ds.errorf(LayerMemSched, loc, "transfer is both write-back and broadcast")
		}
		switch {
		case e.Broadcast:
			bcast += e.Size
		case e.Write:
			write += e.Size
		default:
			read += e.Size
		}
	}
	if bcast != len(p.ModelStream) {
		ds.errorf(LayerMemSched, "accounting", "broadcast words %d, model stream needs %d", bcast, len(p.ModelStream))
	}
	if read != len(p.DataStream) {
		ds.errorf(LayerMemSched, "accounting", "read words %d, data stream needs %d", read, len(p.DataStream))
	}
	if grads := p.Graph.GradientWords(); write != grads {
		ds.errorf(LayerMemSched, "accounting", "write-back words %d, gradient has %d", write, grads)
	}
	return ds
}
