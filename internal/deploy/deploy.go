// Package deploy runs CoSMIC's system layer across OS processes: a master
// process hosts the System Director and the master Sigma; worker processes
// (cmd/cosmic-node) join over TCP, receive their role, group, and upstream
// assignment from the Director (the MsgConfig protocol), and then run the
// ordinary Delta / group-Sigma loops of package runtime. The in-process
// Cluster of package runtime is the same machinery with goroutine nodes;
// this package is the multi-machine deployment the paper's 16-node EC2
// experiments used.
//
// The Director's handshake is two-phase, because a Delta's upstream address
// is its group Sigma's listener, which exists only after that Sigma is
// configured:
//
//	worker → master   MsgHello                   (join)
//	master → sigmas   MsgConfig{role, ...}       (phase 1)
//	sigma  → master   MsgAck{listener address}
//	master → deltas   MsgConfig{role, upstream}  (phase 2)
//	workers           dial upstream and run; training proceeds as in
//	                  package runtime
package deploy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cosmicnet"
	"repro/internal/dataset"
	"repro/internal/dsl"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/runtime"
)

// Spec is the System Specification of Figure 3 — the deployment-level
// inputs to the stack (number of nodes, number of groups, workload) — plus
// the training hyperparameters the Director distributes.
type Spec struct {
	Nodes  int `json:"nodes"`
	Groups int `json:"groups"`

	// Benchmark and Scale select the workload; every node generates its
	// own shard deterministically from Seed and its node ID.
	Benchmark string  `json:"benchmark"`
	Scale     float64 `json:"scale"`
	Samples   int     `json:"samples"` // per node
	Seed      int64   `json:"seed"`

	MiniBatch    int     `json:"mini_batch"`
	Rounds       int     `json:"rounds"`
	Threads      int     `json:"threads"`
	LearningRate float64 `json:"learning_rate"`
	Average      bool    `json:"average"`

	// RoundTimeout bounds each aggregation round at every Sigma
	// (nanoseconds on the wire; 0 = wait forever). MinQuorum, when > 0,
	// turns a round timeout into exclude-and-continue: the Sigma folds the
	// round with the members that arrived (at least MinQuorum of them,
	// its own contribution included) and marks the absentees suspect until
	// they speak again. The Director distributes both, so every Sigma in
	// the hierarchy applies the same policy.
	RoundTimeout time.Duration `json:"round_timeout,omitempty"`
	MinQuorum    int           `json:"min_quorum,omitempty"`

	// ChunkWords is the cluster-wide streaming-chunk boundary in vector
	// elements (0 = the runtime default; must be a power of two). Every
	// node must agree on it — fixed boundaries are what keep the
	// aggregation deterministic — so the Director distributes it.
	ChunkWords int `json:"chunk_words,omitempty"`
	// Monolithic disables streaming: whole-vector partial/aggregate frames,
	// as pre-streaming binaries sent them.
	Monolithic bool `json:"monolithic,omitempty"`

	// Simulate routes every node's gradient computation through the
	// cycle-level accelerator simulator (each worker compiles the
	// benchmark's program locally) instead of the reference engine. Nodes
	// then attribute simulated cycles per DFG op and serve the profile on
	// /debug/cosmic/cycles for cosmic-prof. Keep Scale small: the simulator
	// is orders of magnitude slower than the reference engine.
	Simulate bool `json:"simulate,omitempty"`
}

// Validate fills defaults and rejects nonsense.
func (s *Spec) Validate() error {
	if s.Nodes < 1 {
		return fmt.Errorf("deploy: %d nodes", s.Nodes)
	}
	if s.Groups < 1 {
		s.Groups = 1
	}
	if s.Groups > s.Nodes {
		return fmt.Errorf("deploy: %d groups for %d nodes", s.Groups, s.Nodes)
	}
	if s.Scale <= 0 || s.Scale > 1 {
		s.Scale = 0.02
	}
	if s.Samples <= 0 {
		s.Samples = 512
	}
	if s.Threads <= 0 {
		s.Threads = 2
	}
	if s.Rounds <= 0 {
		s.Rounds = 10
	}
	if s.MiniBatch <= 0 {
		s.MiniBatch = s.Nodes * 64
	}
	if !runtime.ValidChunkWords(s.ChunkWords) {
		return fmt.Errorf("deploy: chunk_words %d is not a power of two", s.ChunkWords)
	}
	if s.MinQuorum < 0 {
		return fmt.Errorf("deploy: min_quorum %d", s.MinQuorum)
	}
	if s.MinQuorum > 0 && s.RoundTimeout <= 0 {
		// Quorum mode is meaningless without a bounded round.
		s.RoundTimeout = 2 * time.Second
	}
	if _, err := dataset.ByName(s.Benchmark); err != nil {
		return err
	}
	return nil
}

// agg returns the aggregator kind.
func (s Spec) agg() dsl.AggregatorKind {
	if s.Average {
		return dsl.AggAverage
	}
	return dsl.AggSum
}

// workerConfig is the MsgConfig payload.
type workerConfig struct {
	NodeID       uint32   `json:"node_id"`
	Role         int      `json:"role"`
	Group        int      `json:"group"`
	UpstreamAddr string   `json:"upstream_addr"`
	Members      int      `json:"members"`
	MemberIDs    []uint32 `json:"member_ids,omitempty"`
	Spec         Spec     `json:"spec"`
	LR           float64  `json:"lr"`
	// MasterUnixUS is the Director's clock (Unix micros) at config-send
	// time. The worker derives its clock skew from it so cosmic-trace can
	// align per-node trace timelines; the one-way control-plane latency is
	// absorbed into the estimate, which is fine at loopback/LAN scales.
	MasterUnixUS int64 `json:"master_unix_us,omitempty"`
}

// NodeStats is the MsgStats reply a node sends the Director: identity,
// round progress, flight-recorder depth, and the node's full metrics
// exposition for federation into the Director's /metrics.
type NodeStats struct {
	ID               uint32  `json:"id"`
	Role             string  `json:"role"`
	Group            int     `json:"group"`
	LastSeq          uint32  `json:"last_seq"`
	RingDepth        int     `json:"ring_depth"`
	FlightDepth      int     `json:"flight_depth"`
	LastRoundSeconds float64 `json:"last_round_seconds"`
	// HTTPAddr is the node's debug HTTP listener (empty when none):
	// cosmic-prof reads it from the Director's /cluster roster to discover
	// where to scrape /debug/pprof/profile and /debug/cosmic/cycles.
	HTTPAddr   string `json:"http_addr,omitempty"`
	Exposition string `json:"exposition,omitempty"`
}

// statsFor snapshots a node's stats, attaching the observer's exposition
// when one is wired and the node's debug HTTP address when it serves one.
func statsFor(node *runtime.Node, o *obs.Observer, httpAddr string) NodeStats {
	h := node.Health()
	st := NodeStats{
		ID: h.ID, Role: h.Role, Group: h.Group, LastSeq: h.LastSeq,
		RingDepth: h.RingDepth, FlightDepth: h.FlightDepth,
		LastRoundSeconds: h.LastRoundSeconds,
		HTTPAddr:         httpAddr,
	}
	if o != nil {
		var buf bytes.Buffer
		if err := o.Registry().WritePrometheus(&buf); err == nil {
			st.Exposition = buf.String()
		}
	}
	return st
}

// serveStats answers MsgStats scrapes on the worker's control connection,
// which is otherwise idle between configuration and shutdown (the Director
// is its only other user). Returns when the connection closes.
func serveStats(conn *cosmicnet.Conn, node *runtime.Node, o *obs.Observer, httpAddr string) {
	for {
		f, err := conn.Recv()
		if err != nil {
			return
		}
		if f.Type != cosmicnet.MsgStats {
			continue
		}
		st := statsFor(node, o, httpAddr)
		blob, err := json.Marshal(st)
		if err != nil {
			continue
		}
		if err := conn.Send(&cosmicnet.Frame{
			Type: cosmicnet.MsgStats, From: st.ID, Seq: f.Seq, Text: string(blob),
		}); err != nil {
			return
		}
	}
}

// scrapeWorker round-trips one MsgStats request on a worker's control
// connection, bounded by a deadline so a wedged worker cannot stall the
// Director's scrape loop.
func scrapeWorker(conn *cosmicnet.Conn, seq uint32) (NodeStats, error) {
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	defer conn.SetDeadline(time.Time{})
	if err := conn.Send(&cosmicnet.Frame{Type: cosmicnet.MsgStats, Seq: seq}); err != nil {
		return NodeStats{}, err
	}
	f, err := conn.Recv()
	if err != nil {
		return NodeStats{}, err
	}
	if f.Type != cosmicnet.MsgStats {
		return NodeStats{}, fmt.Errorf("deploy: stats reply was %v", f.Type)
	}
	var st NodeStats
	if err := json.Unmarshal([]byte(f.Text), &st); err != nil {
		return NodeStats{}, err
	}
	return st, nil
}

// clusterView is the Director's live roster — the last stats scraped from
// every node, when each last answered, how many scrapes of it have failed,
// and the current straggler flags — served as /cluster.
type clusterView struct {
	mu         sync.Mutex
	nodes      map[uint32]NodeStats
	seen       map[uint32]time.Time
	scrapeErrs map[uint32]int64
	stragglers []string
}

func newClusterView() *clusterView {
	return &clusterView{
		nodes:      make(map[uint32]NodeStats),
		seen:       make(map[uint32]time.Time),
		scrapeErrs: make(map[uint32]int64),
	}
}

func (cv *clusterView) update(st NodeStats) {
	cv.mu.Lock()
	cv.nodes[st.ID] = st
	cv.seen[st.ID] = time.Now()
	cv.mu.Unlock()
}

// scrapeError counts one failed scrape of a node.
func (cv *clusterView) scrapeError(id uint32) {
	cv.mu.Lock()
	cv.scrapeErrs[id]++
	cv.mu.Unlock()
}

func (cv *clusterView) setStragglers(s []string) {
	cv.mu.Lock()
	cv.stragglers = append(cv.stragglers[:0], s...)
	cv.mu.Unlock()
}

// rosterNode is one /cluster entry: the node's last stats plus how stale
// they are and how many scrapes of the node have failed.
type rosterNode struct {
	NodeStats
	// StalenessSeconds is how long ago the node last answered a scrape.
	StalenessSeconds float64 `json:"staleness_seconds"`
	ScrapeErrors     int64   `json:"scrape_errors,omitempty"`
}

// handler serves the roster as JSON, node IDs ascending. The per-node
// exposition is stripped — raw metrics are /metrics' job.
func (cv *clusterView) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		cv.mu.Lock()
		ids := make([]int, 0, len(cv.nodes))
		for id := range cv.nodes {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		nodes := make([]rosterNode, 0, len(ids))
		for _, id := range ids {
			st := cv.nodes[uint32(id)]
			st.Exposition = ""
			nodes = append(nodes, rosterNode{
				NodeStats:        st,
				StalenessSeconds: now.Sub(cv.seen[uint32(id)]).Seconds(),
				ScrapeErrors:     cv.scrapeErrs[uint32(id)],
			})
		}
		doc := map[string]any{
			"nodes":      nodes,
			"stragglers": append([]string(nil), cv.stragglers...),
		}
		cv.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(doc) //nolint:errcheck // best-effort HTTP write
	}
}

// buildNode constructs the local node for a config: engine, shard, and the
// runtime Node. o, when non-nil, receives the node's telemetry; logger,
// when non-nil, its structured diagnostics. reconnect/reconnectWait are the
// local process's redial policy (a per-worker choice, not distributed).
func buildNode(cfg workerConfig, o *obs.Observer, logger *slog.Logger, reconnect bool, reconnectWait time.Duration) (*runtime.Node, error) {
	bench, err := dataset.ByName(cfg.Spec.Benchmark)
	if err != nil {
		return nil, err
	}
	alg := bench.Algorithm(cfg.Spec.Scale)
	lr := cfg.LR
	if lr == 0 {
		lr = bench.DefaultLR(alg)
	}
	shard := bench.Generate(alg, cfg.Spec.Samples, cfg.Spec.Seed+int64(cfg.NodeID))
	perNode := cfg.Spec.MiniBatch / cfg.Spec.Nodes
	if perNode < 1 {
		perNode = 1
	}
	var engine runtime.Engine
	if cfg.Spec.Simulate {
		build, err := core.BuildProgram(alg.DSLSource(), alg.DSLParams(), arch.UltraScalePlus, core.BuildOptions{
			MiniBatch: perNode, Style: compiler.StyleCoSMIC, Obs: o,
		})
		if err != nil {
			return nil, fmt.Errorf("deploy: compiling simulator program: %w", err)
		}
		engine = &runtime.AccelEngine{Alg: alg, Prog: build.Program, LR: lr, Agg: cfg.Spec.agg()}
	} else {
		engine = &runtime.RefEngine{Alg: alg, Threads: cfg.Spec.Threads, LR: lr, Agg: cfg.Spec.agg()}
	}
	return runtime.StartNode(runtime.NodeConfig{
		ID:            cfg.NodeID,
		Role:          runtime.Role(cfg.Role),
		Group:         cfg.Group,
		UpstreamAddr:  cfg.UpstreamAddr,
		Members:       cfg.Members,
		MemberIDs:     cfg.MemberIDs,
		ChunkWords:    cfg.Spec.ChunkWords,
		Monolithic:    cfg.Spec.Monolithic,
		Engine:        engine,
		ModelSize:     alg.ModelSize(),
		Agg:           cfg.Spec.agg(),
		LR:            lr,
		ShardBatch:    perNode,
		RoundTimeout:  cfg.Spec.RoundTimeout,
		MinQuorum:     cfg.Spec.MinQuorum,
		Reconnect:     reconnect,
		ReconnectWait: reconnectWait,
		Obs:           o,
		Logger:        logger,
	}, shard)
}

// Result reports a distributed run from the master's side.
type Result struct {
	Model       []float64
	Stats       runtime.TrainStats
	InitialLoss float64
	FinalLoss   float64
}

// MasterOptions tunes the System Director's observability: metrics
// federation over the control plane, the /metrics and /cluster HTTP
// endpoints, straggler detection, and distributed tracing.
type MasterOptions struct {
	// Obs observes the master node itself; its registry is also the local
	// half of the federated /metrics.
	Obs *obs.Observer
	// HTTPAddr, when set, serves the Director's federated /metrics and the
	// /cluster roster for the duration of the run.
	HTTPAddr string
	// OnHTTP, when set, receives the bound HTTP address once listening.
	OnHTTP func(addr string)
	// ScrapeInterval is how often the Director scrapes every worker's stats
	// over the control plane (0 disables scraping and straggler detection).
	ScrapeInterval time.Duration
	// StragglerK and StragglerM tune the detector: a node flags after M
	// consecutive scrapes with round latency over K×cluster-p50 (0 = the
	// defaults of 2 and 3).
	StragglerK float64
	StragglerM int
	// TraceIDBase, when nonzero, enables distributed trace propagation
	// across the cluster's wire frames.
	TraceIDBase uint64
	Logger      *slog.Logger
	// DiagDir is where the master's round-failure flight dumps land.
	DiagDir string
	// Retention bounds the Director's in-memory TSDB: every scrape tick
	// folds the federated snapshot into compressed chunks, and chunks older
	// than Retention are evicted (0 = the tsdb default of 15m). The store
	// answers /query and feeds /dash.
	Retention time.Duration
	// AlertRules are evaluated against the TSDB every scrape tick, on top
	// of tsdb.DefaultClusterRules. Firing alerts surface on /alerts, the
	// cosmic_alert_firing gauge, the log, and the master's flight recorder.
	AlertRules []tsdb.Rule
}

// RunMaster listens on controlAddr, admits spec.Nodes-1 workers, assigns
// roles, drives training, and shuts the cluster down. It blocks until
// training completes.
func RunMaster(controlAddr string, spec Spec) (*Result, error) {
	return RunMasterOpts(controlAddr, spec, MasterOptions{})
}

// RunMasterOpts is RunMaster with the Director's observability attached.
func RunMasterOpts(controlAddr string, spec Spec, opts MasterOptions) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	topo, err := runtime.Assign(spec.Nodes, spec.Groups)
	if err != nil {
		return nil, err
	}

	control, err := net.Listen("tcp", controlAddr)
	if err != nil {
		return nil, err
	}
	defer control.Close()

	bench, _ := dataset.ByName(spec.Benchmark)
	alg := bench.Algorithm(spec.Scale)
	lr := spec.LearningRate
	if lr == 0 {
		lr = bench.DefaultLR(alg)
	}

	// The master node itself (group 0's Sigma + top-level combiner).
	masterCfg := workerConfig{
		NodeID: 0, Role: int(runtime.RoleMasterSigma), Group: 0,
		Members: len(topo.Members[0]), MemberIDs: topo.MasterMemberIDs(),
		Spec: spec, LR: lr,
	}
	master, err := buildNode(masterCfg, opts.Obs, opts.Logger, false, 0)
	if err != nil {
		return nil, err
	}
	defer master.Close()

	// The Director's federated registry: the master's own metrics locally,
	// every worker's scraped exposition as a source.
	localReg := obs.NewRegistry()
	if opts.Obs != nil {
		localReg = opts.Obs.Registry()
	}
	fed := obs.NewFederation(localReg)
	mon := runtime.NewMonitor(localReg, opts.StragglerK, opts.StragglerM, opts.Logger)
	view := newClusterView()
	// The Director's TSDB: every scrape tick folds the federated snapshot
	// into compressed chunks (raw samples for Retention, minute-averaged
	// tier beyond that), and the alert rules run against it.
	store := tsdb.NewStore(tsdb.Options{Retention: opts.Retention, Downsample: time.Minute})
	eval, err := tsdb.NewEvaluator(
		append(tsdb.DefaultClusterRules(), opts.AlertRules...),
		localReg, opts.Logger, master.Flight())
	if err != nil {
		return nil, err
	}
	if opts.HTTPAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", fed.Handler())
		mux.HandleFunc("/cluster", view.handler())
		mux.Handle("/query", store.QueryHandler())
		mux.Handle("/dash", tsdb.DashHandler())
		mux.Handle("/alerts", eval.Handler())
		// The master node advertises the Director's address in the roster,
		// so cosmic-prof expects its cycle profile here like any worker's.
		cycles := obs.NewProfileSource()
		if ae, ok := master.Engine().(*runtime.AccelEngine); ok {
			cycles.Set(ae.CycleProfile)
		}
		mux.Handle(obs.CycleProfilePath, cycles.Handler())
		httpLn, err := net.Listen("tcp", opts.HTTPAddr)
		if err != nil {
			return nil, err
		}
		if opts.OnHTTP != nil {
			opts.OnHTTP(httpLn.Addr().String())
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(httpLn) //nolint:errcheck // closed on return
		defer srv.Close()
	}

	// Phase 0: admit every worker's join connection. A slot's conn can be
	// replaced mid-run by the rejoin acceptor (quorum mode), so access goes
	// through the mutex once training starts.
	type joined struct {
		mu   sync.Mutex
		conn *cosmicnet.Conn
		cfg  workerConfig
		dead bool
	}
	workers := make([]*joined, 0, spec.Nodes-1)
	for len(workers) < spec.Nodes-1 {
		raw, err := control.Accept()
		if err != nil {
			return nil, err
		}
		conn := &cosmicnet.Conn{Conn: raw}
		f, err := conn.Recv()
		if err != nil || f.Type != cosmicnet.MsgHello {
			conn.Close()
			continue
		}
		workers = append(workers, &joined{conn: conn})
	}

	sendConfig := func(conn *cosmicnet.Conn, cfg workerConfig) error {
		cfg.MasterUnixUS = time.Now().UnixMicro()
		blob, err := json.Marshal(cfg)
		if err != nil {
			return err
		}
		return conn.Send(&cosmicnet.Frame{Type: cosmicnet.MsgConfig, Text: string(blob)})
	}

	// Phase 1: configure group Sigmas (workers 0..Groups-2 become node IDs
	// 1..Groups-1) and collect their data-plane listener addresses.
	sigmaAddr := make([]string, spec.Groups)
	sigmaAddr[0] = master.Addr()
	for g := 1; g < spec.Groups; g++ {
		w := workers[g-1]
		cfg := workerConfig{
			NodeID: uint32(g), Role: int(runtime.RoleGroupSigma), Group: g,
			UpstreamAddr: master.Addr(), Members: len(topo.Members[g]),
			MemberIDs: topo.MemberIDs(g), Spec: spec, LR: lr,
		}
		w.cfg = cfg
		if err := sendConfig(w.conn, cfg); err != nil {
			return nil, err
		}
		ack, err := w.conn.Recv()
		if err != nil || ack.Type != cosmicnet.MsgAck {
			return nil, fmt.Errorf("deploy: sigma %d did not ack: %v", g, err)
		}
		sigmaAddr[g] = ack.Text
	}

	// Phase 2: configure Deltas.
	for id := spec.Groups; id < spec.Nodes; id++ {
		w := workers[id-1]
		group := topo.GroupOf[id]
		cfg := workerConfig{
			NodeID: uint32(id), Role: int(runtime.RoleDelta), Group: group,
			UpstreamAddr: sigmaAddr[group], Spec: spec, LR: lr,
		}
		w.cfg = cfg
		if err := sendConfig(w.conn, cfg); err != nil {
			return nil, err
		}
	}

	// Rejoin acceptor (quorum mode): a restarted worker process dials the
	// control port and sends MsgHello exactly like a fresh join; hand it the
	// config of a dead Delta slot so it can redial its Sigma and resume.
	// Sigma rejoin is not supported — a Sigma's listener address is baked
	// into its Deltas' configs, so a dead Sigma strands its group. The
	// goroutine exits when the deferred control.Close() fires.
	if spec.MinQuorum > 0 {
		go func() {
			for {
				raw, err := control.Accept()
				if err != nil {
					return
				}
				conn := &cosmicnet.Conn{Conn: raw}
				conn.SetDeadline(time.Now().Add(3 * time.Second))
				f, err := conn.Recv()
				conn.SetDeadline(time.Time{})
				if err != nil || f.Type != cosmicnet.MsgHello {
					conn.Close()
					continue
				}
				var slot *joined
				for _, w := range workers {
					w.mu.Lock()
					ok := w.dead && runtime.Role(w.cfg.Role) == runtime.RoleDelta
					w.mu.Unlock()
					if ok {
						slot = w
						break
					}
				}
				if slot == nil {
					conn.Close()
					continue
				}
				slot.mu.Lock()
				cfg := slot.cfg
				slot.mu.Unlock()
				if err := sendConfig(conn, cfg); err != nil {
					conn.Close()
					continue
				}
				slot.mu.Lock()
				slot.conn = conn
				slot.dead = false
				slot.mu.Unlock()
				if opts.Logger != nil {
					opts.Logger.Info("worker rejoined", "node", cfg.NodeID)
				}
			}
		}()
	}

	// Wait for the data plane to assemble, then train.
	direct := (spec.Groups - 1) + (len(topo.Members[0]) - 1)
	master.WaitMembers(direct)

	// Metrics federation: the control connections are idle during training,
	// so the Director periodically round-trips a MsgStats on each one,
	// merges every worker's exposition into /metrics, and feeds the round
	// latencies to the straggler detector. The scrape goroutine is this
	// side's only reader/writer on those connections until it is stopped.
	var scrapeWG sync.WaitGroup
	var stopScrape chan struct{}
	stopScrapers := func() {
		if stopScrape != nil {
			close(stopScrape)
			scrapeWG.Wait()
			stopScrape = nil
		}
	}
	defer stopScrapers()
	if opts.ScrapeInterval > 0 {
		stopScrape = make(chan struct{})
		scrapeWG.Add(1)
		// Pre-resolve one scrape-error counter per worker (worker i holds
		// node ID i+1) so the loop never touches the registry lock.
		scrapeErrs := make([]*obs.Counter, len(workers))
		for wi := range workers {
			scrapeErrs[wi] = localReg.Counter(obs.Labeled(
				"cosmic_cluster_scrape_errors_total", "node", strconv.Itoa(wi+1)))
		}
		go func() {
			defer scrapeWG.Done()
			ticker := time.NewTicker(opts.ScrapeInterval)
			defer ticker.Stop()
			var seq uint32
			for {
				select {
				case <-stopScrape:
					return
				case <-ticker.C:
				}
				seq++
				lat := make(map[string]float64)
				mst := statsFor(master, opts.Obs, opts.HTTPAddr)
				view.update(mst)
				if mst.LastRoundSeconds > 0 {
					lat[strconv.Itoa(int(mst.ID))] = mst.LastRoundSeconds
				}
				for wi, w := range workers {
					w.mu.Lock()
					conn, alive := w.conn, !w.dead
					w.mu.Unlock()
					if !alive {
						view.scrapeError(uint32(wi + 1))
						scrapeErrs[wi].Inc()
						continue
					}
					st, err := scrapeWorker(conn, seq)
					if err != nil {
						view.scrapeError(uint32(wi + 1))
						scrapeErrs[wi].Inc()
						// In quorum mode a hard connection error (not a slow
						// reply) frees the slot for the rejoin acceptor.
						if ne, ok := err.(net.Error); spec.MinQuorum > 0 && (!ok || !ne.Timeout()) {
							w.mu.Lock()
							if !w.dead && w.conn == conn {
								w.dead = true
								conn.Close()
							}
							w.mu.Unlock()
						}
						continue
					}
					view.update(st)
					if st.Exposition != "" {
						if samples, err := obs.ParseExposition(st.Exposition); err == nil {
							fed.Update(fmt.Sprintf("node-%d", st.ID), samples)
						}
					}
					if st.LastRoundSeconds > 0 {
						lat[strconv.Itoa(int(st.ID))] = st.LastRoundSeconds
					}
				}
				view.setStragglers(mon.Observe(lat))
				// Fold the whole federated snapshot into the TSDB at this
				// tick's timestamp, then run the alert rules against it.
				nowMS := time.Now().UnixMilli()
				store.AppendSet(nowMS, fed.Snapshot())
				eval.Eval(store, nowMS)
			}
		}()
	}

	model := alg.InitModel(rand.New(rand.NewSource(spec.Seed)))
	res := &Result{}
	full := bench.Generate(alg, spec.Samples, spec.Seed) // master's view of the loss
	res.InitialLoss = ml.MeanLoss(alg, model, full)

	trained, stats, err := master.DriveTraining(runtime.DriveConfig{
		Groups:       spec.Groups,
		ModelSize:    alg.ModelSize(),
		Agg:          spec.agg(),
		LR:           lr,
		MiniBatch:    spec.MiniBatch,
		RoundTimeout: spec.RoundTimeout,
		MinQuorum:    spec.MinQuorum,
		TraceIDBase:  opts.TraceIDBase,
	}, model, spec.Rounds)
	if err != nil {
		return nil, err
	}
	master.SendDone()
	// Quiesce the scrape loop before tearing down the control connections
	// it shares.
	stopScrapers()
	res.Model = trained
	res.Stats = stats
	res.Stats.NetworkSentBytes, res.Stats.NetworkReceivedBytes = master.NetworkBytes()
	res.FinalLoss = ml.MeanLoss(alg, trained, full)

	// Give the workers a moment to read the Done before the control
	// connections drop.
	for _, w := range workers {
		w.mu.Lock()
		w.conn.SetDeadline(time.Now().Add(2 * time.Second))
		w.conn.Close()
		w.mu.Unlock()
	}
	return res, nil
}

// WorkerOptions attaches observability to a worker process.
type WorkerOptions struct {
	// Obs receives the node's telemetry; its exposition also rides MsgStats
	// replies so the Director can federate it.
	Obs *obs.Observer
	// Logger receives the node's structured diagnostics.
	Logger *slog.Logger
	// OnNode, when set, receives the running node once configured — the
	// hook cmd/cosmic-node uses to wire its /healthz probe.
	OnNode func(n *runtime.Node)
	// ChunkWords, when non-zero, is the streaming-chunk boundary this
	// worker insists on. The boundary is cluster-wide (fixed boundaries are
	// what keep the ordered fold deterministic), so a Director whose spec
	// resolves to a different value is rejected instead of silently
	// diverging.
	ChunkWords int
	// HTTPAddr is the worker's debug HTTP listener address, advertised in
	// MsgStats replies so the Director's /cluster roster (and cosmic-prof)
	// can find this node's profiling endpoints.
	HTTPAddr string
	// Reconnect makes this worker's node redial its upstream Sigma (with
	// backoff, bounded by ReconnectWait; 0 = 30s) when the data-plane
	// connection drops mid-run, instead of exiting. Pair it with a quorum
	// spec so the Sigma keeps folding rounds while this node is away.
	Reconnect     bool
	ReconnectWait time.Duration
}

// dialControl dials the Director's control address, retrying with backoff
// for a few seconds: a worker is routinely launched a beat before the
// master's listener is up, and a refused first dial should not strand the
// whole cluster in the join phase.
func dialControl(addr string) (*cosmicnet.Conn, error) {
	deadline := time.Now().Add(3 * time.Second)
	for wait := 10 * time.Millisecond; ; wait *= 2 {
		conn, err := cosmicnet.Dial(addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(wait)
	}
}

// RunWorker joins the master at controlAddr, receives its assignment, and
// runs its node loop until training completes.
func RunWorker(controlAddr string) error {
	return RunWorkerOpts(controlAddr, WorkerOptions{})
}

// RunWorkerObs is RunWorker with an observer attached to the local node, so
// a long-running worker process can serve live /metrics while training.
func RunWorkerObs(controlAddr string, o *obs.Observer) error {
	return RunWorkerOpts(controlAddr, WorkerOptions{Obs: o})
}

// RunWorkerOpts is RunWorker with full observability wiring. After
// configuration the worker answers the Director's MsgStats scrapes on the
// control connection while the node loop runs on the data plane.
func RunWorkerOpts(controlAddr string, opts WorkerOptions) error {
	conn, err := dialControl(controlAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(&cosmicnet.Frame{Type: cosmicnet.MsgHello}); err != nil {
		return err
	}
	f, err := conn.Recv()
	if err != nil {
		return err
	}
	if f.Type != cosmicnet.MsgConfig {
		return fmt.Errorf("deploy: expected config, got %v", f.Type)
	}
	var cfg workerConfig
	if err := json.Unmarshal([]byte(f.Text), &cfg); err != nil {
		return err
	}
	if cfg.MasterUnixUS != 0 {
		// Clock alignment for cosmic-trace: skew is positive when this
		// worker's clock runs ahead of the Director's.
		opts.Obs.Tracer().SetClockSkew(time.Now().UnixMicro() - cfg.MasterUnixUS)
	}
	if opts.ChunkWords != 0 {
		want, got := opts.ChunkWords, cfg.Spec.ChunkWords
		if got == 0 {
			got = runtime.ChunkSize
		}
		if want != got {
			return fmt.Errorf("deploy: worker wants chunk-words %d but the Director's spec uses %d", want, got)
		}
	}
	node, err := buildNode(cfg, opts.Obs, opts.Logger, opts.Reconnect, opts.ReconnectWait)
	if err != nil {
		return err
	}
	defer node.Close()
	if opts.OnNode != nil {
		opts.OnNode(node)
	}
	if runtime.Role(cfg.Role) == runtime.RoleGroupSigma {
		// Report the data-plane listener so the Director can point this
		// group's Deltas at it.
		if err := conn.Send(&cosmicnet.Frame{Type: cosmicnet.MsgAck, From: cfg.NodeID, Text: node.Addr()}); err != nil {
			return err
		}
	}
	// The control connection is now idle on this side; serve the Director's
	// stats scrapes until it closes.
	go serveStats(conn, node, opts.Obs, opts.HTTPAddr)
	return node.Run()
}
