// Package deploy runs CoSMIC's system layer across OS processes: a master
// process hosts the System Director and the master Sigma; worker processes
// (cmd/cosmic-node) join over TCP, receive their role, group, and upstream
// assignment from the Director (the MsgConfig protocol), and then run the
// ordinary Delta / group-Sigma loops of package runtime. The in-process
// Cluster of package runtime is the same machinery with goroutine nodes;
// this package is the multi-machine deployment the paper's 16-node EC2
// experiments used.
//
// The Director's handshake is two-phase, because a Delta's upstream address
// is its group Sigma's listener, which exists only after that Sigma is
// configured:
//
//	worker → master   MsgHello                   (join)
//	master → sigmas   MsgConfig{role, ...}       (phase 1)
//	sigma  → master   MsgAck{listener address}
//	master → deltas   MsgConfig{role, upstream}  (phase 2)
//	workers           dial upstream and run; training proceeds as in
//	                  package runtime
package deploy

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/cosmicnet"
	"repro/internal/dataset"
	"repro/internal/dsl"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Spec is the System Specification of Figure 3 — the deployment-level
// inputs to the stack (number of nodes, number of groups, workload) — plus
// the training hyperparameters the Director distributes.
type Spec struct {
	Nodes  int `json:"nodes"`
	Groups int `json:"groups"`

	// Benchmark and Scale select the workload; every node generates its
	// own shard deterministically from Seed and its node ID.
	Benchmark string  `json:"benchmark"`
	Scale     float64 `json:"scale"`
	Samples   int     `json:"samples"` // per node
	Seed      int64   `json:"seed"`

	MiniBatch    int     `json:"mini_batch"`
	Rounds       int     `json:"rounds"`
	Threads      int     `json:"threads"`
	LearningRate float64 `json:"learning_rate"`
	Average      bool    `json:"average"`
}

// Validate fills defaults and rejects nonsense.
func (s *Spec) Validate() error {
	if s.Nodes < 1 {
		return fmt.Errorf("deploy: %d nodes", s.Nodes)
	}
	if s.Groups < 1 {
		s.Groups = 1
	}
	if s.Groups > s.Nodes {
		return fmt.Errorf("deploy: %d groups for %d nodes", s.Groups, s.Nodes)
	}
	if s.Scale <= 0 || s.Scale > 1 {
		s.Scale = 0.02
	}
	if s.Samples <= 0 {
		s.Samples = 512
	}
	if s.Threads <= 0 {
		s.Threads = 2
	}
	if s.Rounds <= 0 {
		s.Rounds = 10
	}
	if s.MiniBatch <= 0 {
		s.MiniBatch = s.Nodes * 64
	}
	if _, err := dataset.ByName(s.Benchmark); err != nil {
		return err
	}
	return nil
}

// agg returns the aggregator kind.
func (s Spec) agg() dsl.AggregatorKind {
	if s.Average {
		return dsl.AggAverage
	}
	return dsl.AggSum
}

// workerConfig is the MsgConfig payload.
type workerConfig struct {
	NodeID       uint32  `json:"node_id"`
	Role         int     `json:"role"`
	Group        int     `json:"group"`
	UpstreamAddr string  `json:"upstream_addr"`
	Members      int     `json:"members"`
	Spec         Spec    `json:"spec"`
	LR           float64 `json:"lr"`
}

// buildNode constructs the local node for a config: engine, shard, and the
// runtime Node. o, when non-nil, receives the node's telemetry.
func buildNode(cfg workerConfig, o *obs.Observer) (*runtime.Node, error) {
	bench, err := dataset.ByName(cfg.Spec.Benchmark)
	if err != nil {
		return nil, err
	}
	alg := bench.Algorithm(cfg.Spec.Scale)
	lr := cfg.LR
	if lr == 0 {
		lr = bench.DefaultLR(alg)
	}
	shard := bench.Generate(alg, cfg.Spec.Samples, cfg.Spec.Seed+int64(cfg.NodeID))
	engine := &runtime.RefEngine{Alg: alg, Threads: cfg.Spec.Threads, LR: lr, Agg: cfg.Spec.agg()}
	perNode := cfg.Spec.MiniBatch / cfg.Spec.Nodes
	if perNode < 1 {
		perNode = 1
	}
	return runtime.StartNode(runtime.NodeConfig{
		ID:           cfg.NodeID,
		Role:         runtime.Role(cfg.Role),
		Group:        cfg.Group,
		UpstreamAddr: cfg.UpstreamAddr,
		Members:      cfg.Members,
		Engine:       engine,
		ModelSize:    alg.ModelSize(),
		Agg:          cfg.Spec.agg(),
		LR:           lr,
		ShardBatch:   perNode,
		Obs:          o,
	}, shard)
}

// Result reports a distributed run from the master's side.
type Result struct {
	Model       []float64
	Stats       runtime.TrainStats
	InitialLoss float64
	FinalLoss   float64
}

// RunMaster listens on controlAddr, admits spec.Nodes-1 workers, assigns
// roles, drives training, and shuts the cluster down. It blocks until
// training completes.
func RunMaster(controlAddr string, spec Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	topo, err := runtime.Assign(spec.Nodes, spec.Groups)
	if err != nil {
		return nil, err
	}

	control, err := net.Listen("tcp", controlAddr)
	if err != nil {
		return nil, err
	}
	defer control.Close()

	bench, _ := dataset.ByName(spec.Benchmark)
	alg := bench.Algorithm(spec.Scale)
	lr := spec.LearningRate
	if lr == 0 {
		lr = bench.DefaultLR(alg)
	}

	// The master node itself (group 0's Sigma + top-level combiner).
	masterCfg := workerConfig{
		NodeID: 0, Role: int(runtime.RoleMasterSigma), Group: 0,
		Members: len(topo.Members[0]), Spec: spec, LR: lr,
	}
	master, err := buildNode(masterCfg, nil)
	if err != nil {
		return nil, err
	}
	defer master.Close()

	// Phase 0: admit every worker's join connection.
	type joined struct {
		conn *cosmicnet.Conn
	}
	workers := make([]joined, 0, spec.Nodes-1)
	for len(workers) < spec.Nodes-1 {
		raw, err := control.Accept()
		if err != nil {
			return nil, err
		}
		conn := &cosmicnet.Conn{Conn: raw}
		f, err := conn.Recv()
		if err != nil || f.Type != cosmicnet.MsgHello {
			conn.Close()
			continue
		}
		workers = append(workers, joined{conn: conn})
	}

	sendConfig := func(w joined, cfg workerConfig) error {
		blob, err := json.Marshal(cfg)
		if err != nil {
			return err
		}
		return w.conn.Send(&cosmicnet.Frame{Type: cosmicnet.MsgConfig, Text: string(blob)})
	}

	// Phase 1: configure group Sigmas (workers 0..Groups-2 become node IDs
	// 1..Groups-1) and collect their data-plane listener addresses.
	sigmaAddr := make([]string, spec.Groups)
	sigmaAddr[0] = master.Addr()
	for g := 1; g < spec.Groups; g++ {
		w := workers[g-1]
		cfg := workerConfig{
			NodeID: uint32(g), Role: int(runtime.RoleGroupSigma), Group: g,
			UpstreamAddr: master.Addr(), Members: len(topo.Members[g]),
			Spec: spec, LR: lr,
		}
		if err := sendConfig(w, cfg); err != nil {
			return nil, err
		}
		ack, err := w.conn.Recv()
		if err != nil || ack.Type != cosmicnet.MsgAck {
			return nil, fmt.Errorf("deploy: sigma %d did not ack: %v", g, err)
		}
		sigmaAddr[g] = ack.Text
	}

	// Phase 2: configure Deltas.
	for id := spec.Groups; id < spec.Nodes; id++ {
		w := workers[id-1]
		group := topo.GroupOf[id]
		cfg := workerConfig{
			NodeID: uint32(id), Role: int(runtime.RoleDelta), Group: group,
			UpstreamAddr: sigmaAddr[group], Spec: spec, LR: lr,
		}
		if err := sendConfig(w, cfg); err != nil {
			return nil, err
		}
	}

	// Wait for the data plane to assemble, then train.
	direct := (spec.Groups - 1) + (len(topo.Members[0]) - 1)
	master.WaitMembers(direct)

	model := alg.InitModel(rand.New(rand.NewSource(spec.Seed)))
	res := &Result{}
	full := bench.Generate(alg, spec.Samples, spec.Seed) // master's view of the loss
	res.InitialLoss = ml.MeanLoss(alg, model, full)

	trained, stats, err := master.DriveTraining(runtime.DriveConfig{
		Groups:           spec.Groups,
		GroupZeroMembers: len(topo.Members[0]),
		ModelSize:        alg.ModelSize(),
		Agg:              spec.agg(),
		LR:               lr,
		MiniBatch:        spec.MiniBatch,
	}, model, spec.Rounds)
	if err != nil {
		return nil, err
	}
	master.SendDone()
	res.Model = trained
	res.Stats = stats
	res.Stats.NetworkSentBytes, res.Stats.NetworkReceivedBytes = master.NetworkBytes()
	res.FinalLoss = ml.MeanLoss(alg, trained, full)

	// Give the workers a moment to read the Done before the control
	// connections drop.
	for _, w := range workers {
		w.conn.SetDeadline(time.Now().Add(2 * time.Second))
		w.conn.Close()
	}
	return res, nil
}

// RunWorker joins the master at controlAddr, receives its assignment, and
// runs its node loop until training completes.
func RunWorker(controlAddr string) error {
	return RunWorkerObs(controlAddr, nil)
}

// RunWorkerObs is RunWorker with an observer attached to the local node, so
// a long-running worker process can serve live /metrics while training.
func RunWorkerObs(controlAddr string, o *obs.Observer) error {
	conn, err := cosmicnet.Dial(controlAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(&cosmicnet.Frame{Type: cosmicnet.MsgHello}); err != nil {
		return err
	}
	f, err := conn.Recv()
	if err != nil {
		return err
	}
	if f.Type != cosmicnet.MsgConfig {
		return fmt.Errorf("deploy: expected config, got %v", f.Type)
	}
	var cfg workerConfig
	if err := json.Unmarshal([]byte(f.Text), &cfg); err != nil {
		return err
	}
	node, err := buildNode(cfg, o)
	if err != nil {
		return err
	}
	defer node.Close()
	if runtime.Role(cfg.Role) == runtime.RoleGroupSigma {
		// Report the data-plane listener so the Director can point this
		// group's Deltas at it.
		if err := conn.Send(&cosmicnet.Frame{Type: cosmicnet.MsgAck, From: cfg.NodeID, Text: node.Addr()}); err != nil {
			return err
		}
	}
	return node.Run()
}
