package deploy

import (
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cosmicnet"
	"repro/internal/obs"
)

// TestMasterWorkersEndToEnd runs the full Director handshake and a training
// run with workers joining over TCP exactly as separate cosmic-node
// processes would (the worker code path is identical; only the process
// boundary differs).
func TestMasterWorkersEndToEnd(t *testing.T) {
	spec := Spec{
		Nodes: 5, Groups: 2,
		Benchmark: "tumor", Scale: 0.02, Samples: 200, Seed: 3,
		MiniBatch: 100, Rounds: 12, Threads: 2, Average: true,
	}
	addr := freeAddr(t)

	var wg sync.WaitGroup
	workerErrs := make([]error, spec.Nodes-1)
	for i := 0; i < spec.Nodes-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = RunWorker(addr)
		}(i)
	}

	res, err := RunMaster(addr, spec)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	if res.Stats.Rounds != spec.Rounds {
		t.Errorf("rounds = %d", res.Stats.Rounds)
	}
	if res.FinalLoss >= res.InitialLoss {
		t.Errorf("distributed training did not learn: %g -> %g", res.InitialLoss, res.FinalLoss)
	}
}

func TestMasterFlatTopology(t *testing.T) {
	spec := Spec{
		Nodes: 3, Groups: 1,
		Benchmark: "face", Scale: 0.02, Samples: 120, Seed: 5,
		MiniBatch: 60, Rounds: 8, Average: true,
	}
	addr := freeAddr(t)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(addr); err != nil {
				t.Error(err)
			}
		}()
	}
	res, err := RunMaster(addr, spec)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if res.FinalLoss >= res.InitialLoss {
		t.Errorf("loss %g -> %g", res.InitialLoss, res.FinalLoss)
	}
}

func TestSingleNodeMaster(t *testing.T) {
	spec := Spec{
		Nodes: 1, Groups: 1,
		Benchmark: "stock", Scale: 0.01, Samples: 100, Seed: 2,
		MiniBatch: 50, Rounds: 5, Average: true,
	}
	res, err := RunMaster(freeAddr(t), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.InitialLoss {
		t.Errorf("loss %g -> %g", res.InitialLoss, res.FinalLoss)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Nodes: 0, Benchmark: "face"},
		{Nodes: 2, Groups: 5, Benchmark: "face"},
		{Nodes: 2, Benchmark: "no-such-benchmark"},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should fail validation", i)
		}
	}
	good := Spec{Nodes: 4, Benchmark: "face"}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Groups != 1 || good.Samples == 0 || good.Rounds == 0 || good.MiniBatch == 0 {
		t.Errorf("defaults not filled: %+v", good)
	}
}

// TestMasterIgnoresGarbageJoin: a connection that speaks nonsense is
// dropped without wedging the handshake.
func TestMasterIgnoresGarbageJoin(t *testing.T) {
	spec := Spec{
		Nodes: 2, Groups: 1,
		Benchmark: "face", Scale: 0.02, Samples: 80, Seed: 9,
		MiniBatch: 40, Rounds: 3, Average: true,
	}
	addr := freeAddr(t)
	done := make(chan error, 1)
	go func() {
		_, err := RunMaster(addr, spec)
		done <- err
	}()

	// A garbage client connects first and sends a non-hello frame.
	garbage, err := cosmicnet.Dial(addr)
	if err != nil {
		// The master may not be listening yet; retry once it is.
		for err != nil {
			garbage, err = cosmicnet.Dial(addr)
		}
	}
	_ = garbage.Send(&cosmicnet.Frame{Type: cosmicnet.MsgDone})

	// A real worker follows.
	go func() {
		if err := RunWorker(addr); err != nil {
			t.Error(err)
		}
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	garbage.Close()
}

// TestMasterFederatesWorkerMetrics: the Director scrapes workers over the
// control plane during training and serves their metrics, its own, and the
// cluster roster over HTTP.
func TestMasterFederatesWorkerMetrics(t *testing.T) {
	spec := Spec{
		Nodes: 3, Groups: 1,
		Benchmark: "face", Scale: 0.02, Samples: 120, Seed: 7,
		MiniBatch: 60, Rounds: 200, Average: true,
	}
	addr := freeAddr(t)

	var wg sync.WaitGroup
	for i := 0; i < spec.Nodes-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorkerObs(addr, obs.New()); err != nil {
				t.Error(err)
			}
		}()
	}

	httpAddr := make(chan string, 1)
	masterDone := make(chan error, 1)
	var res *Result
	go func() {
		var err error
		res, err = RunMasterOpts(addr, spec, MasterOptions{
			Obs:            obs.New(),
			HTTPAddr:       "127.0.0.1:0",
			OnHTTP:         func(a string) { httpAddr <- a },
			ScrapeInterval: 2 * time.Millisecond,
			TraceIDBase:    1 << 32,
		})
		masterDone <- err
	}()

	base := "http://" + <-httpAddr
	fetch := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			return ""
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	// Poll /metrics until a worker's federated series and the Director's
	// derived round-latency gauge appear. Bounded: training runs 200 rounds,
	// far longer than a few scrape ticks.
	deadline := time.Now().Add(10 * time.Second)
	for {
		body := fetch("/metrics")
		if strings.Contains(body, `cosmic_node_rounds_total{node="1"}`) &&
			strings.Contains(body, `cosmic_cluster_node_round_seconds{node="1"}`) {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("federated series never appeared:\n%s", body)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	roster := fetch("/cluster")
	for _, want := range []string{`"id":0`, `"id":1`, `"id":2`, `"stragglers"`} {
		if !strings.Contains(roster, want) {
			t.Errorf("/cluster missing %s:\n%s", want, roster)
		}
	}

	if err := <-masterDone; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if res.FinalLoss >= res.InitialLoss {
		t.Errorf("loss %g -> %g", res.InitialLoss, res.FinalLoss)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}
