package ml

import (
	"fmt"

	"repro/internal/dfg"
)

// TapeEvaluator executes an algorithm's gradient DFG on the compiled
// evaluation tape — the same compiled evaluator the accelerator simulator's
// MIMD threads run, minus the timing model. It gives the software reference
// stack a path that computes gradients from the DSL artifact itself, so
// models defined only as DSL programs (no hand-written Gradient) can train
// on the reference engine, and the hand-written gradients can be
// cross-checked against the compiled artifact.
type TapeEvaluator struct {
	alg  Algorithm
	tape *dfg.Tape
	// pairs matches model symbols to their updating gradient symbols in
	// declaration order (the fixed update rule θ ← θ − μ·∂f/∂θ).
	pairs [][2]string
	// gradSizes holds each gradient symbol's element count for
	// accumulator sizing.
	gradSizes map[string]int
}

// NewTapeEvaluator compiles the graph's evaluation tape for alg. The graph
// must carry its analyzed DSL unit (as every translated graph does) so
// model and gradient symbols can be paired.
func NewTapeEvaluator(alg Algorithm, g *dfg.Graph) (*TapeEvaluator, error) {
	if g.Unit == nil {
		return nil, fmt.Errorf("ml: tape evaluator needs a graph with its DSL unit")
	}
	tape, err := g.CompileTape()
	if err != nil {
		return nil, err
	}
	symPairs, err := g.Unit.ModelGradientPairs()
	if err != nil {
		return nil, err
	}
	te := &TapeEvaluator{alg: alg, tape: tape, gradSizes: map[string]int{}}
	for _, pr := range symPairs {
		te.pairs = append(te.pairs, [2]string{pr[0].Name, pr[1].Name})
	}
	for name, outs := range g.Outputs {
		te.gradSizes[name] = len(outs)
	}
	return te, nil
}

// LocalSGD is the tape-backed analog of ml.LocalSGD: sequential SGD over
// samples from a copy of model, evaluating each per-sample gradient on the
// tape, returning the updated flat parameters.
func (te *TapeEvaluator) LocalSGD(model []float64, samples []Sample, lr float64) ([]float64, error) {
	arena := te.tape.NewArena()
	// PackModel may alias the flat vector it is given; copy first so the
	// in-place local steps never leak into the caller's model.
	local := make([]float64, len(model))
	copy(local, model)
	packed := te.alg.PackModel(local)
	if err := arena.BindModel(packed); err != nil {
		return nil, err
	}
	for _, s := range samples {
		if err := arena.BindData(te.alg.PackSample(s)); err != nil {
			return nil, err
		}
		grads := arena.Eval()
		for _, pr := range te.pairs {
			mvec := packed[pr[0]]
			gvec := grads[pr[1]]
			for i := range mvec {
				mvec[i] -= lr * gvec[i]
			}
		}
		// Re-bind so the next sample's evaluation sees the update.
		if err := arena.BindModel(packed); err != nil {
			return nil, err
		}
	}
	return UnpackModel(te.alg, packed), nil
}

// AccumulateGradients is the tape-backed analog of ml.AccumulateGradients:
// the per-sample gradient sum at a fixed model, flattened to the model
// layout.
func (te *TapeEvaluator) AccumulateGradients(model []float64, samples []Sample) ([]float64, error) {
	arena := te.tape.NewArena()
	if err := arena.BindModel(te.alg.PackModel(model)); err != nil {
		return nil, err
	}
	acc := make(map[string][]float64, len(te.gradSizes))
	for name, n := range te.gradSizes {
		acc[name] = make([]float64, n)
	}
	for _, s := range samples {
		if err := arena.BindData(te.alg.PackSample(s)); err != nil {
			return nil, err
		}
		for name, g := range arena.Eval() {
			vec := acc[name]
			for i := range g {
				vec[i] += g[i]
			}
		}
	}
	return te.alg.UnpackGradient(acc), nil
}

// UnpackModel flattens per-symbol model vectors back into the algorithm's
// flat layout, recovering the symbol→offset correspondence from an
// index-stamped probe of PackModel.
func UnpackModel(alg Algorithm, packed map[string][]float64) []float64 {
	stamp := make([]float64, alg.ModelSize())
	for i := range stamp {
		stamp[i] = float64(i)
	}
	stamped := alg.PackModel(stamp)
	out := make([]float64, alg.ModelSize())
	for name, vec := range stamped {
		src := packed[name]
		for j, idx := range vec {
			out[int(idx)] = src[j]
		}
	}
	return out
}
