package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsl"
)

// TestPredictConsistentWithLoss: for the squared-loss families the loss
// must equal ½(prediction − label)².
func TestPredictConsistentWithLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	lin := &LinearRegression{M: 8}
	model := lin.InitModel(rng)
	for i := 0; i < 10; i++ {
		s := randomSample(lin, rng)
		pred := lin.Predict(model, s.X)[0]
		want := 0.5 * (pred - s.Y[0]) * (pred - s.Y[0])
		if got := lin.Loss(model, s); math.Abs(got-want) > 1e-12 {
			t.Fatalf("loss %g, want %g from prediction", got, want)
		}
	}
}

// TestTrainedModelPredictsWell: after training, classification accuracy on
// the training distribution is high for every classifier family.
func TestTrainedModelPredictsWell(t *testing.T) {
	rng := rand.New(rand.NewSource(82))

	t.Run("svm", func(t *testing.T) {
		a := &SVM{M: 10}
		truth := make([]float64, a.M)
		for i := range truth {
			truth[i] = rng.NormFloat64()
		}
		data := make([]Sample, 400)
		for i := range data {
			s := randomSample(a, rng)
			if Dot(truth, s.X) >= 0 {
				s.Y[0] = 1
			} else {
				s.Y[0] = -1
			}
			data[i] = s
		}
		cfg := SGDConfig{LearningRate: 0.05, MiniBatch: 100, Aggregator: dsl.AggAverage}
		res := Train(a, cfg, a.InitModel(rng), data, 2, 10)
		acc, err := Accuracy(a, res.Model, data)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.9 {
			t.Errorf("trained SVM accuracy %.2f", acc)
		}
	})

	t.Run("softmax", func(t *testing.T) {
		a := &Softmax{M: 8, C: 3}
		truth := make([]float64, a.ModelSize())
		for i := range truth {
			truth[i] = rng.NormFloat64()
		}
		data := make([]Sample, 400)
		for i := range data {
			s := softmaxSample(a, rng)
			for c := range s.Y {
				s.Y[c] = 0
			}
			best, bestZ := 0, math.Inf(-1)
			for c := 0; c < a.C; c++ {
				if z := Dot(truth[c*a.M:(c+1)*a.M], s.X); z > bestZ {
					best, bestZ = c, z
				}
			}
			s.Y[best] = 1
			data[i] = s
		}
		cfg := SGDConfig{LearningRate: 0.2, MiniBatch: 100, Aggregator: dsl.AggAverage}
		res := Train(a, cfg, a.InitModel(rng), data, 2, 12)
		acc, err := Accuracy(a, res.Model, data)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.85 {
			t.Errorf("trained softmax accuracy %.2f", acc)
		}
	})
}

// TestRMSEDropsWithTraining: the recommender's rating RMSE falls as it
// trains.
func TestRMSEDropsWithTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := &CF{NU: 12, NV: 16, K: 4}
	truth := a.InitModel(rng)
	Scale(3, truth)
	data := make([]Sample, 500)
	for i := range data {
		s := randomSample(a, rng)
		s.Y[0] = a.Predict(truth, s.X)[0]
		data[i] = s
	}
	model := a.InitModel(rng)
	before, err := RMSE(a, model, data)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SGDConfig{LearningRate: 0.05, MiniBatch: 100, Aggregator: dsl.AggAverage}
	res := Train(a, cfg, model, data, 2, 10)
	after, err := RMSE(a, res.Model, data)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before/2 {
		t.Errorf("RMSE %g -> %g; recommender barely improved", before, after)
	}
}

func TestAccuracyErrors(t *testing.T) {
	lin := &LinearRegression{M: 2}
	if _, err := Accuracy(lin, []float64{0, 0}, []Sample{{X: []float64{1, 1}, Y: []float64{0}}}); err == nil {
		t.Error("linear regression must not have a classification accuracy")
	}
	svm := &SVM{M: 2}
	if _, err := Accuracy(svm, []float64{0, 0}, nil); err == nil {
		t.Error("empty data must error")
	}
	if _, err := RMSE(svm, []float64{0, 0}, nil); err == nil {
		t.Error("empty data must error")
	}
}

func TestArgmax(t *testing.T) {
	if argmax([]float64{0.1, 0.7, 0.2}) != 1 {
		t.Error("argmax broken")
	}
	if argmax([]float64{3}) != 0 {
		t.Error("argmax singleton broken")
	}
}
