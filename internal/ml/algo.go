// Package ml provides reference implementations of the paper's five learning
// algorithm families (linear regression, logistic regression, support vector
// machines, backpropagation, collaborative filtering) together with the
// sequential and parallel stochastic-gradient-descent optimizers CoSMIC
// distributes.
//
// These implementations are the golden functional reference: the DFG
// evaluator and the cycle-level accelerator simulator are both checked
// against them, and the distributed runtime uses them as its fast
// gradient engine.
package ml

import (
	"fmt"
	"math/rand"
)

// Sample is one training example: the model_input values X and the
// model_output values Y, flattened per the algorithm's layout.
type Sample struct {
	X []float64
	Y []float64
}

// Algorithm is a trainable learning algorithm expressed as a loss and its
// gradient, the two ingredients stochastic gradient descent needs. The model
// is a flat parameter vector whose layout the algorithm defines.
type Algorithm interface {
	// Name returns the algorithm family name.
	Name() string
	// ModelSize returns the length of the flat parameter vector.
	ModelSize() int
	// FeatureSize returns the length of Sample.X.
	FeatureSize() int
	// OutputSize returns the length of Sample.Y.
	OutputSize() int
	// Gradient computes the partial gradient of the per-sample loss at
	// model into grad (len(grad) == ModelSize()).
	Gradient(model []float64, s Sample, grad []float64)
	// Loss returns the per-sample loss at model.
	Loss(model []float64, s Sample) float64
	// InitModel returns a freshly initialized parameter vector drawn
	// from rng.
	InitModel(rng *rand.Rand) []float64
	// DSLSource returns the CoSMIC DSL program for this algorithm.
	DSLSource() string
	// DSLParams returns the dimension parameters that instantiate
	// DSLSource at this algorithm's geometry.
	DSLParams() map[string]int
	// PackSample converts a flat sample into the per-symbol data bindings
	// the DFG evaluator and accelerator simulator consume.
	PackSample(s Sample) map[string][]float64
	// PackModel converts the flat model into per-symbol bindings.
	PackModel(model []float64) map[string][]float64
	// UnpackGradient flattens per-symbol gradient outputs back into the
	// flat layout of the model vector.
	UnpackGradient(grads map[string][]float64) []float64
}

// checkLens panics if the model or gradient slices do not match the
// algorithm geometry; misuse here is a programming error, not an input
// error.
func checkLens(a Algorithm, model, grad []float64) {
	if len(model) != a.ModelSize() {
		panic(fmt.Sprintf("ml: %s: model length %d, want %d", a.Name(), len(model), a.ModelSize()))
	}
	if grad != nil && len(grad) != a.ModelSize() {
		panic(fmt.Sprintf("ml: %s: gradient length %d, want %d", a.Name(), len(grad), a.ModelSize()))
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// MeanLoss returns the average per-sample loss over samples.
func MeanLoss(a Algorithm, model []float64, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	total := 0.0
	for _, s := range samples {
		total += a.Loss(model, s)
	}
	return total / float64(len(samples))
}

// gaussianVec fills a vector with N(0, sigma) draws.
func gaussianVec(rng *rand.Rand, n int, sigma float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * sigma
	}
	return v
}
