package ml

import (
	"math"
	"math/rand"

	"repro/internal/dsl"
)

// sigmoid is the logistic function.
func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// LinearRegression trains y = w·x under squared loss (benchmarks: stock,
// texture).
type LinearRegression struct {
	M int // feature count
}

// Name returns "linreg".
func (a *LinearRegression) Name() string { return "linreg" }

// ModelSize returns M.
func (a *LinearRegression) ModelSize() int { return a.M }

// FeatureSize returns M.
func (a *LinearRegression) FeatureSize() int { return a.M }

// OutputSize returns 1.
func (a *LinearRegression) OutputSize() int { return 1 }

// Loss returns ½(w·x − y)².
func (a *LinearRegression) Loss(model []float64, s Sample) float64 {
	checkLens(a, model, nil)
	e := Dot(model, s.X) - s.Y[0]
	return 0.5 * e * e
}

// Gradient computes ∂L/∂wᵢ = (w·x − y)·xᵢ.
func (a *LinearRegression) Gradient(model []float64, s Sample, grad []float64) {
	checkLens(a, model, grad)
	e := Dot(model, s.X) - s.Y[0]
	for i := range grad {
		grad[i] = e * s.X[i]
	}
}

// InitModel returns small random weights.
func (a *LinearRegression) InitModel(rng *rand.Rand) []float64 {
	return gaussianVec(rng, a.M, 0.01)
}

// DSLSource returns the linear-regression DSL program.
func (a *LinearRegression) DSLSource() string { return dsl.SourceLinearRegression }

// DSLParams returns {M}.
func (a *LinearRegression) DSLParams() map[string]int { return map[string]int{"M": a.M} }

// PackSample maps X to symbol x and Y to symbol y.
func (a *LinearRegression) PackSample(s Sample) map[string][]float64 {
	return map[string][]float64{"x": s.X, "y": s.Y}
}

// PackModel maps the flat model to symbol w.
func (a *LinearRegression) PackModel(model []float64) map[string][]float64 {
	return map[string][]float64{"w": model}
}

// UnpackGradient flattens symbol g.
func (a *LinearRegression) UnpackGradient(grads map[string][]float64) []float64 {
	return grads["g"]
}

// LogisticRegression trains p = σ(w·x) under cross-entropy loss
// (benchmarks: tumor, cancer1).
type LogisticRegression struct {
	M int
}

// Name returns "logreg".
func (a *LogisticRegression) Name() string { return "logreg" }

// ModelSize returns M.
func (a *LogisticRegression) ModelSize() int { return a.M }

// FeatureSize returns M.
func (a *LogisticRegression) FeatureSize() int { return a.M }

// OutputSize returns 1.
func (a *LogisticRegression) OutputSize() int { return 1 }

// Loss returns the binary cross-entropy with label y ∈ {0,1}.
func (a *LogisticRegression) Loss(model []float64, s Sample) float64 {
	checkLens(a, model, nil)
	p := sigmoid(Dot(model, s.X))
	const eps = 1e-12
	y := s.Y[0]
	return -(y*math.Log(p+eps) + (1-y)*math.Log(1-p+eps))
}

// Gradient computes ∂L/∂wᵢ = (σ(w·x) − y)·xᵢ.
func (a *LogisticRegression) Gradient(model []float64, s Sample, grad []float64) {
	checkLens(a, model, grad)
	e := sigmoid(Dot(model, s.X)) - s.Y[0]
	for i := range grad {
		grad[i] = e * s.X[i]
	}
}

// InitModel returns small random weights.
func (a *LogisticRegression) InitModel(rng *rand.Rand) []float64 {
	return gaussianVec(rng, a.M, 0.01)
}

// DSLSource returns the logistic-regression DSL program.
func (a *LogisticRegression) DSLSource() string { return dsl.SourceLogisticRegression }

// DSLParams returns {M}.
func (a *LogisticRegression) DSLParams() map[string]int { return map[string]int{"M": a.M} }

// PackSample maps X to symbol x and Y to symbol y.
func (a *LogisticRegression) PackSample(s Sample) map[string][]float64 {
	return map[string][]float64{"x": s.X, "y": s.Y}
}

// PackModel maps the flat model to symbol w.
func (a *LogisticRegression) PackModel(model []float64) map[string][]float64 {
	return map[string][]float64{"w": model}
}

// UnpackGradient flattens symbol g.
func (a *LogisticRegression) UnpackGradient(grads map[string][]float64) []float64 {
	return grads["g"]
}

// SVM trains a linear support vector machine under hinge loss with labels
// y ∈ {−1,+1} (benchmarks: face, cancer2).
type SVM struct {
	M int
}

// Name returns "svm".
func (a *SVM) Name() string { return "svm" }

// ModelSize returns M.
func (a *SVM) ModelSize() int { return a.M }

// FeatureSize returns M.
func (a *SVM) FeatureSize() int { return a.M }

// OutputSize returns 1.
func (a *SVM) OutputSize() int { return 1 }

// Loss returns max(0, 1 − y·(w·x)).
func (a *SVM) Loss(model []float64, s Sample) float64 {
	checkLens(a, model, nil)
	return math.Max(0, 1-s.Y[0]*Dot(model, s.X))
}

// Gradient computes the hinge subgradient: −y·xᵢ inside the margin, else 0.
func (a *SVM) Gradient(model []float64, s Sample, grad []float64) {
	checkLens(a, model, grad)
	margin := s.Y[0] * Dot(model, s.X)
	if margin < 1 {
		for i := range grad {
			grad[i] = -s.Y[0] * s.X[i]
		}
		return
	}
	for i := range grad {
		grad[i] = 0
	}
}

// InitModel returns small random weights.
func (a *SVM) InitModel(rng *rand.Rand) []float64 {
	return gaussianVec(rng, a.M, 0.01)
}

// DSLSource returns the SVM DSL program.
func (a *SVM) DSLSource() string { return dsl.SourceSVM }

// DSLParams returns {M}.
func (a *SVM) DSLParams() map[string]int { return map[string]int{"M": a.M} }

// PackSample maps X to symbol x and Y to symbol y.
func (a *SVM) PackSample(s Sample) map[string][]float64 {
	return map[string][]float64{"x": s.X, "y": s.Y}
}

// PackModel maps the flat model to symbol w.
func (a *SVM) PackModel(model []float64) map[string][]float64 {
	return map[string][]float64{"w": model}
}

// UnpackGradient flattens symbol g.
func (a *SVM) UnpackGradient(grads map[string][]float64) []float64 {
	return grads["g"]
}

// MLP trains a fully connected In×Hid×Out perceptron with sigmoid
// activations under squared loss via backpropagation (benchmarks: mnist,
// acoustic). The flat model layout is w1 (Hid×In, row-major) followed by w2
// (Out×Hid, row-major).
type MLP struct {
	In, Hid, Out int
}

// Name returns "backprop".
func (a *MLP) Name() string { return "backprop" }

// ModelSize returns Hid·In + Out·Hid.
func (a *MLP) ModelSize() int { return a.Hid*a.In + a.Out*a.Hid }

// FeatureSize returns In.
func (a *MLP) FeatureSize() int { return a.In }

// OutputSize returns Out.
func (a *MLP) OutputSize() int { return a.Out }

func (a *MLP) split(model []float64) (w1, w2 []float64) {
	return model[:a.Hid*a.In], model[a.Hid*a.In:]
}

// forward computes hidden activations h and outputs o.
func (a *MLP) forward(model []float64, x []float64) (h, o []float64) {
	w1, w2 := a.split(model)
	h = make([]float64, a.Hid)
	for j := 0; j < a.Hid; j++ {
		h[j] = sigmoid(Dot(w1[j*a.In:(j+1)*a.In], x))
	}
	o = make([]float64, a.Out)
	for k := 0; k < a.Out; k++ {
		o[k] = sigmoid(Dot(w2[k*a.Hid:(k+1)*a.Hid], h))
	}
	return h, o
}

// Loss returns ½‖o − y‖².
func (a *MLP) Loss(model []float64, s Sample) float64 {
	checkLens(a, model, nil)
	_, o := a.forward(model, s.X)
	l := 0.0
	for k, ok := range o {
		d := ok - s.Y[k]
		l += 0.5 * d * d
	}
	return l
}

// Gradient backpropagates the squared loss through both layers.
func (a *MLP) Gradient(model []float64, s Sample, grad []float64) {
	checkLens(a, model, grad)
	_, w2 := a.split(model)
	g1, g2 := grad[:a.Hid*a.In], grad[a.Hid*a.In:]
	h, o := a.forward(model, s.X)
	d2 := make([]float64, a.Out)
	for k := 0; k < a.Out; k++ {
		d2[k] = (o[k] - s.Y[k]) * o[k] * (1 - o[k])
		for j := 0; j < a.Hid; j++ {
			g2[k*a.Hid+j] = d2[k] * h[j]
		}
	}
	for j := 0; j < a.Hid; j++ {
		e := 0.0
		for k := 0; k < a.Out; k++ {
			e += d2[k] * w2[k*a.Hid+j]
		}
		d1 := e * h[j] * (1 - h[j])
		for i := 0; i < a.In; i++ {
			g1[j*a.In+i] = d1 * s.X[i]
		}
	}
}

// InitModel returns Xavier-ish small random weights.
func (a *MLP) InitModel(rng *rand.Rand) []float64 {
	m := make([]float64, a.ModelSize())
	s1 := 1 / math.Sqrt(float64(a.In))
	s2 := 1 / math.Sqrt(float64(a.Hid))
	for i := 0; i < a.Hid*a.In; i++ {
		m[i] = rng.NormFloat64() * s1
	}
	for i := a.Hid * a.In; i < len(m); i++ {
		m[i] = rng.NormFloat64() * s2
	}
	return m
}

// DSLSource returns the backpropagation DSL program.
func (a *MLP) DSLSource() string { return dsl.SourceBackprop }

// DSLParams returns {IN, HID, OUT}.
func (a *MLP) DSLParams() map[string]int {
	return map[string]int{"IN": a.In, "HID": a.Hid, "OUT": a.Out}
}

// PackSample maps X to symbol x and Y to symbol y.
func (a *MLP) PackSample(s Sample) map[string][]float64 {
	return map[string][]float64{"x": s.X, "y": s.Y}
}

// PackModel splits the flat model into symbols w1 and w2.
func (a *MLP) PackModel(model []float64) map[string][]float64 {
	w1, w2 := a.split(model)
	return map[string][]float64{"w1": w1, "w2": w2}
}

// UnpackGradient concatenates symbols g1 and g2.
func (a *MLP) UnpackGradient(grads map[string][]float64) []float64 {
	out := make([]float64, 0, a.ModelSize())
	out = append(out, grads["g1"]...)
	return append(out, grads["g2"]...)
}

// CF trains a rank-K matrix-factorization recommender (benchmarks:
// movielens, netflix). A sample one-hot encodes the user in X[0:NU] and the
// item in X[NU:NU+NV]; Y[0] is the rating. The flat model layout is the
// user-factor matrix U (NU×K, row-major) followed by the item-factor matrix
// V (NV×K, row-major).
type CF struct {
	NU, NV, K int
}

// Name returns "cf".
func (a *CF) Name() string { return "cf" }

// ModelSize returns (NU+NV)·K.
func (a *CF) ModelSize() int { return (a.NU + a.NV) * a.K }

// FeatureSize returns NU+NV.
func (a *CF) FeatureSize() int { return a.NU + a.NV }

// OutputSize returns 1.
func (a *CF) OutputSize() int { return 1 }

func (a *CF) split(model []float64) (u, v []float64) {
	return model[:a.NU*a.K], model[a.NU*a.K:]
}

// factors gathers the active user and item factor rows through the one-hot
// encodings (exactly what the DFG's Σ over the one-hot vectors computes).
func (a *CF) factors(model []float64, x []float64) (uf, vf []float64) {
	u, v := a.split(model)
	uf = make([]float64, a.K)
	vf = make([]float64, a.K)
	for i := 0; i < a.NU; i++ {
		if x[i] != 0 {
			AXPY(x[i], u[i*a.K:(i+1)*a.K], uf)
		}
	}
	for j := 0; j < a.NV; j++ {
		if x[a.NU+j] != 0 {
			AXPY(x[a.NU+j], v[j*a.K:(j+1)*a.K], vf)
		}
	}
	return uf, vf
}

// Loss returns ½(uf·vf − r)².
func (a *CF) Loss(model []float64, s Sample) float64 {
	checkLens(a, model, nil)
	uf, vf := a.factors(model, s.X)
	e := Dot(uf, vf) - s.Y[0]
	return 0.5 * e * e
}

// Gradient computes ∂L/∂U[a,k] = e·xu[a]·vf[k] and ∂L/∂V[b,k] =
// e·xv[b]·uf[k].
func (a *CF) Gradient(model []float64, s Sample, grad []float64) {
	checkLens(a, model, grad)
	uf, vf := a.factors(model, s.X)
	e := Dot(uf, vf) - s.Y[0]
	gu, gv := grad[:a.NU*a.K], grad[a.NU*a.K:]
	for i := 0; i < a.NU; i++ {
		for k := 0; k < a.K; k++ {
			gu[i*a.K+k] = e * s.X[i] * vf[k]
		}
	}
	for j := 0; j < a.NV; j++ {
		for k := 0; k < a.K; k++ {
			gv[j*a.K+k] = e * s.X[a.NU+j] * uf[k]
		}
	}
}

// InitModel returns small positive random factors.
func (a *CF) InitModel(rng *rand.Rand) []float64 {
	m := make([]float64, a.ModelSize())
	for i := range m {
		m[i] = 0.1 + 0.1*rng.Float64()
	}
	return m
}

// DSLSource returns the collaborative-filtering DSL program.
func (a *CF) DSLSource() string { return dsl.SourceCollaborativeFiltering }

// DSLParams returns {NU, NV, K}.
func (a *CF) DSLParams() map[string]int {
	return map[string]int{"NU": a.NU, "NV": a.NV, "K": a.K}
}

// PackSample splits X into one-hot symbols xu, xv and Y into rating r.
func (a *CF) PackSample(s Sample) map[string][]float64 {
	return map[string][]float64{"xu": s.X[:a.NU], "xv": s.X[a.NU:], "r": s.Y}
}

// PackModel splits the flat model into symbols u and v.
func (a *CF) PackModel(model []float64) map[string][]float64 {
	u, v := a.split(model)
	return map[string][]float64{"u": u, "v": v}
}

// UnpackGradient concatenates symbols gu and gv.
func (a *CF) UnpackGradient(grads map[string][]float64) []float64 {
	out := make([]float64, 0, a.ModelSize())
	out = append(out, grads["gu"]...)
	return append(out, grads["gv"]...)
}

// Softmax trains a multi-class softmax (multinomial logistic) regression
// with cross-entropy loss; labels are one-hot vectors of length C. The flat
// model layout is W (C×M, row-major). It is not part of the paper's Table 1
// suite — it exists to exercise the stack's support for new learning
// models.
type Softmax struct {
	M, C int
}

// Name returns "softmax".
func (a *Softmax) Name() string { return "softmax" }

// ModelSize returns C·M.
func (a *Softmax) ModelSize() int { return a.C * a.M }

// FeatureSize returns M.
func (a *Softmax) FeatureSize() int { return a.M }

// OutputSize returns C.
func (a *Softmax) OutputSize() int { return a.C }

// probs computes the class probabilities.
func (a *Softmax) probs(model []float64, x []float64) []float64 {
	p := make([]float64, a.C)
	maxZ := math.Inf(-1)
	for c := 0; c < a.C; c++ {
		p[c] = Dot(model[c*a.M:(c+1)*a.M], x)
		if p[c] > maxZ {
			maxZ = p[c]
		}
	}
	sum := 0.0
	for c := range p {
		p[c] = math.Exp(p[c] - maxZ)
		sum += p[c]
	}
	for c := range p {
		p[c] /= sum
	}
	return p
}

// Loss returns the cross-entropy −Σ y_c log p_c.
func (a *Softmax) Loss(model []float64, s Sample) float64 {
	checkLens(a, model, nil)
	p := a.probs(model, s.X)
	const eps = 1e-12
	l := 0.0
	for c := 0; c < a.C; c++ {
		if s.Y[c] != 0 {
			l -= s.Y[c] * math.Log(p[c]+eps)
		}
	}
	return l
}

// Gradient computes ∂L/∂w_{c,i} = (p_c − y_c)·x_i.
func (a *Softmax) Gradient(model []float64, s Sample, grad []float64) {
	checkLens(a, model, grad)
	p := a.probs(model, s.X)
	for c := 0; c < a.C; c++ {
		d := p[c] - s.Y[c]
		for i := 0; i < a.M; i++ {
			grad[c*a.M+i] = d * s.X[i]
		}
	}
}

// InitModel returns small random weights.
func (a *Softmax) InitModel(rng *rand.Rand) []float64 {
	return gaussianVec(rng, a.ModelSize(), 0.01)
}

// DSLSource returns the softmax DSL program.
func (a *Softmax) DSLSource() string { return dsl.SourceSoftmax }

// DSLParams returns {M, C}.
func (a *Softmax) DSLParams() map[string]int { return map[string]int{"M": a.M, "C": a.C} }

// PackSample maps X to symbol x and the one-hot label to symbol y.
func (a *Softmax) PackSample(s Sample) map[string][]float64 {
	return map[string][]float64{"x": s.X, "y": s.Y}
}

// PackModel maps the flat model to symbol w.
func (a *Softmax) PackModel(model []float64) map[string][]float64 {
	return map[string][]float64{"w": model}
}

// UnpackGradient flattens symbol g.
func (a *Softmax) UnpackGradient(grads map[string][]float64) []float64 {
	return grads["g"]
}
