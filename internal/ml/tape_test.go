package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dfg"
	"repro/internal/dsl"
)

func tapeEvaluatorFor(t *testing.T, a Algorithm) *TapeEvaluator {
	t.Helper()
	unit, err := dsl.ParseAndAnalyze(a.DSLSource(), a.DSLParams())
	if err != nil {
		t.Fatal(err)
	}
	g, err := dfg.Translate(unit)
	if err != nil {
		t.Fatal(err)
	}
	te, err := NewTapeEvaluator(a, g)
	if err != nil {
		t.Fatal(err)
	}
	return te
}

// TestTapeEvaluatorMatchesReference: the tape-backed LocalSGD and
// AccumulateGradients must agree with the hand-written reference paths for
// every algorithm family (within floating-point tolerance — the DFG's
// balanced reduction trees order additions differently).
func TestTapeEvaluatorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, a := range testAlgorithms() {
		t.Run(a.Name(), func(t *testing.T) {
			te := tapeEvaluatorFor(t, a)
			model := a.InitModel(rng)
			samples := make([]Sample, 8)
			for i := range samples {
				samples[i] = randomSample(a, rng)
			}
			const lr = 0.05

			gotSGD, err := te.LocalSGD(model, samples, lr)
			if err != nil {
				t.Fatal(err)
			}
			wantSGD := LocalSGD(a, model, samples, lr)
			requireClose(t, "LocalSGD", wantSGD, gotSGD)

			gotAcc, err := te.AccumulateGradients(model, samples)
			if err != nil {
				t.Fatal(err)
			}
			wantAcc := AccumulateGradients(a, model, samples)
			requireClose(t, "AccumulateGradients", wantAcc, gotAcc)
		})
	}
}

func requireClose(t *testing.T, what string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("%s[%d] = %g via tape, %g via reference", what, i, got[i], want[i])
		}
	}
}

// TestUnpackModelRoundTrip: PackModel followed by UnpackModel is the
// identity on the flat layout.
func TestUnpackModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, a := range testAlgorithms() {
		model := a.InitModel(rng)
		back := UnpackModel(a, a.PackModel(model))
		for i := range model {
			if model[i] != back[i] {
				t.Fatalf("%s: θ[%d] = %g after round trip, want %g", a.Name(), i, back[i], model[i])
			}
		}
	}
}
