package ml

import (
	"fmt"

	"repro/internal/dsl"
)

// SGDConfig parameterizes a stochastic-gradient-descent run.
type SGDConfig struct {
	LearningRate float64
	// MiniBatch is the number of samples processed (system-wide) between
	// aggregation steps of the parallel variants.
	MiniBatch int
	// Aggregator selects parallelized SGD (average of partial model
	// updates, Zinkevich et al.) or batched gradient descent (sum of
	// partial gradients, Dekel et al.).
	Aggregator dsl.AggregatorKind
}

// SGDStep performs one classic SGD update in place: θ ← θ − μ·∇f(θ, s).
func SGDStep(a Algorithm, model []float64, s Sample, lr float64, scratch []float64) {
	a.Gradient(model, s, scratch)
	AXPY(-lr, scratch, model)
}

// LocalSGD runs sequential SGD over samples starting from a copy of model
// and returns the updated parameters: the per-worker computation of
// Equation 3a.
func LocalSGD(a Algorithm, model []float64, samples []Sample, lr float64) []float64 {
	local := make([]float64, len(model))
	copy(local, model)
	scratch := make([]float64, len(model))
	for _, s := range samples {
		SGDStep(a, local, s, lr, scratch)
	}
	return local
}

// AccumulateGradients sums per-sample gradients at a fixed model over
// samples, the per-worker computation of batched gradient descent.
func AccumulateGradients(a Algorithm, model []float64, samples []Sample) []float64 {
	acc := make([]float64, len(model))
	scratch := make([]float64, len(model))
	for _, s := range samples {
		a.Gradient(model, s, scratch)
		AXPY(1, scratch, acc)
	}
	return acc
}

// Partition splits samples into n contiguous, nearly equal parts, matching
// how CoSMIC sub-partitions a node's data across worker threads.
func Partition(samples []Sample, n int) [][]Sample {
	if n <= 0 {
		panic(fmt.Sprintf("ml: partition into %d parts", n))
	}
	parts := make([][]Sample, n)
	for i := range parts {
		lo := i * len(samples) / n
		hi := (i + 1) * len(samples) / n
		parts[i] = samples[lo:hi]
	}
	return parts
}

// AggregateModels combines per-worker results according to the aggregation
// operator. For AggAverage the inputs are updated models and the result is
// their mean (Equation 3b). For AggSum the inputs are accumulated gradients
// and the result is θ − μ/b · Σ gradients.
func AggregateModels(cfg SGDConfig, base []float64, partials [][]float64) []float64 {
	out := make([]float64, len(base))
	switch cfg.Aggregator {
	case dsl.AggAverage:
		for _, p := range partials {
			AXPY(1, p, out)
		}
		Scale(1/float64(len(partials)), out)
	case dsl.AggSum:
		copy(out, base)
		scale := -cfg.LearningRate
		if cfg.MiniBatch > 0 {
			scale /= float64(cfg.MiniBatch)
		}
		for _, p := range partials {
			AXPY(scale, p, out)
		}
	}
	return out
}

// ParallelSGDBatch performs one mini-batch of parallel SGD across workers
// worker partitions and returns the aggregated model. It is the single-node,
// in-memory equivalent of what the distributed runtime computes across
// accelerator threads and cluster nodes; the runtime's integration tests
// check equivalence against it.
func ParallelSGDBatch(a Algorithm, cfg SGDConfig, model []float64, batch []Sample, workers int) []float64 {
	parts := Partition(batch, workers)
	partials := make([][]float64, len(parts))
	for i, part := range parts {
		switch cfg.Aggregator {
		case dsl.AggAverage:
			partials[i] = LocalSGD(a, model, part, cfg.LearningRate)
		case dsl.AggSum:
			partials[i] = AccumulateGradients(a, model, part)
		}
	}
	return AggregateModels(cfg, model, partials)
}

// TrainResult reports a training run's loss trajectory.
type TrainResult struct {
	Model []float64
	// LossPerEpoch is the mean training loss measured after each epoch.
	LossPerEpoch []float64
}

// Train runs epochs of parallel SGD over the dataset with the given number
// of workers, aggregating every cfg.MiniBatch samples.
func Train(a Algorithm, cfg SGDConfig, model []float64, data []Sample, workers, epochs int) TrainResult {
	cur := make([]float64, len(model))
	copy(cur, model)
	res := TrainResult{}
	batch := cfg.MiniBatch
	if batch <= 0 || batch > len(data) {
		batch = len(data)
	}
	for e := 0; e < epochs; e++ {
		for lo := 0; lo < len(data); lo += batch {
			hi := lo + batch
			if hi > len(data) {
				hi = len(data)
			}
			cur = ParallelSGDBatch(a, cfg, cur, data[lo:hi], workers)
		}
		res.LossPerEpoch = append(res.LossPerEpoch, MeanLoss(a, cur, data))
	}
	res.Model = cur
	return res
}
