package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/dsl"
)

// testAlgorithms returns one small instance of every family.
func testAlgorithms() []Algorithm {
	return []Algorithm{
		&LinearRegression{M: 7},
		&LogisticRegression{M: 7},
		&SVM{M: 7},
		&MLP{In: 5, Hid: 4, Out: 3},
		&CF{NU: 4, NV: 5, K: 3},
	}
}

func randomSample(a Algorithm, rng *rand.Rand) Sample {
	s := Sample{X: make([]float64, a.FeatureSize()), Y: make([]float64, a.OutputSize())}
	switch alg := a.(type) {
	case *CF:
		// One-hot user and item plus a rating.
		s.X[rng.Intn(alg.NU)] = 1
		s.X[alg.NU+rng.Intn(alg.NV)] = 1
		s.Y[0] = 1 + 4*rng.Float64()
	case *SVM:
		for i := range s.X {
			s.X[i] = rng.NormFloat64()
		}
		s.Y[0] = float64(2*rng.Intn(2) - 1) // ±1
	case *LogisticRegression:
		for i := range s.X {
			s.X[i] = rng.NormFloat64()
		}
		s.Y[0] = float64(rng.Intn(2))
	default:
		for i := range s.X {
			s.X[i] = rng.NormFloat64()
		}
		for k := range s.Y {
			s.Y[k] = rng.Float64()
		}
	}
	return s
}

// TestGradientMatchesFiniteDifference validates every family's analytic
// gradient against a central finite difference of its loss.
func TestGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, a := range testAlgorithms() {
		t.Run(a.Name(), func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				model := a.InitModel(rng)
				s := randomSample(a, rng)
				if a.Name() == "svm" {
					// The hinge subgradient is discontinuous at margin 1;
					// keep the test point away from the kink.
					if math.Abs(1-s.Y[0]*Dot(model, s.X)) < 1e-3 {
						continue
					}
				}
				grad := make([]float64, a.ModelSize())
				a.Gradient(model, s, grad)
				const h = 1e-6
				for i := 0; i < a.ModelSize(); i++ {
					orig := model[i]
					model[i] = orig + h
					lp := a.Loss(model, s)
					model[i] = orig - h
					lm := a.Loss(model, s)
					model[i] = orig
					num := (lp - lm) / (2 * h)
					if math.Abs(num-grad[i]) > 1e-4*(1+math.Abs(num)) {
						t.Fatalf("trial %d: dL/dw[%d]: analytic %g, numeric %g", trial, i, grad[i], num)
					}
				}
			}
		})
	}
}

// TestGradientMatchesDFG checks that the hand-written gradients agree with
// functional evaluation of the DSL program's dataflow graph — i.e. that the
// DSL programs faithfully express the same algorithms.
func TestGradientMatchesDFG(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, a := range testAlgorithms() {
		t.Run(a.Name(), func(t *testing.T) {
			unit, err := dsl.ParseAndAnalyze(a.DSLSource(), a.DSLParams())
			if err != nil {
				t.Fatal(err)
			}
			graph, err := dfg.Translate(unit)
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.Validate(); err != nil {
				t.Fatal(err)
			}
			tape, err := graph.CompileTape()
			if err != nil {
				t.Fatal(err)
			}
			arena := tape.NewArena()
			for trial := 0; trial < 10; trial++ {
				model := a.InitModel(rng)
				s := randomSample(a, rng)
				want := make([]float64, a.ModelSize())
				a.Gradient(model, s, want)
				bind := dfg.Bindings{
					Data:  a.PackSample(s),
					Model: a.PackModel(model),
				}
				outs, err := graph.Eval(bind)
				if err != nil {
					t.Fatal(err)
				}
				// The compiled tape must reproduce the interpreter
				// bit-for-bit.
				tapeOuts, err := arena.EvalBindings(bind)
				if err != nil {
					t.Fatal(err)
				}
				for name, ov := range outs {
					for i := range ov {
						if math.Float64bits(ov[i]) != math.Float64bits(tapeOuts[name][i]) {
							t.Fatalf("trial %d: tape %s[%d] = %g, interpreter %g",
								trial, name, i, tapeOuts[name][i], ov[i])
						}
					}
				}
				got := a.UnpackGradient(outs)
				if len(got) != len(want) {
					t.Fatalf("gradient length %d, want %d", len(got), len(want))
				}
				for i := range want {
					if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
						t.Fatalf("trial %d: g[%d] = %g via DFG, %g via reference", trial, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestPartitionProperties(t *testing.T) {
	check := func(n uint8, parts uint8) bool {
		p := int(parts%16) + 1
		samples := make([]Sample, int(n))
		out := Partition(samples, p)
		if len(out) != p {
			return false
		}
		total := 0
		minLen, maxLen := len(samples), 0
		for _, part := range out {
			total += len(part)
			if len(part) < minLen {
				minLen = len(part)
			}
			if len(part) > maxLen {
				maxLen = len(part)
			}
		}
		// All samples covered exactly once and balanced within one.
		return total == len(samples) && maxLen-minLen <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAggregateAverageIdentity: averaging identical partials returns the
// partial itself.
func TestAggregateAverageIdentity(t *testing.T) {
	check := func(vals []float64, n uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		k := int(n%5) + 1
		partials := make([][]float64, k)
		for i := range partials {
			partials[i] = vals
		}
		cfg := SGDConfig{Aggregator: dsl.AggAverage}
		out := AggregateModels(cfg, make([]float64, len(vals)), partials)
		for i := range vals {
			if math.Abs(out[i]-vals[i]) > 1e-9*(1+math.Abs(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestParallelSGDSingleWorkerMatchesSequential: with one worker and the
// averaging aggregator, a parallel batch is exactly sequential local SGD.
func TestParallelSGDSingleWorkerMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := &LinearRegression{M: 6}
	model := a.InitModel(rng)
	batch := make([]Sample, 32)
	for i := range batch {
		batch[i] = randomSample(a, rng)
	}
	cfg := SGDConfig{LearningRate: 0.05, Aggregator: dsl.AggAverage}
	got := ParallelSGDBatch(a, cfg, model, batch, 1)
	want := LocalSGD(a, model, batch, 0.05)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("w[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestTrainConverges: every family's loss decreases over training on
// learnable synthetic data.
func TestTrainConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, a := range testAlgorithms() {
		t.Run(a.Name(), func(t *testing.T) {
			truth := a.InitModel(rng)
			// Make the ground truth meaningful for linear families.
			for i := range truth {
				truth[i] = rng.NormFloat64()
			}
			data := make([]Sample, 256)
			for i := range data {
				s := randomSample(a, rng)
				// Relabel from the ground-truth model so the problem is
				// learnable.
				switch a.(type) {
				case *LinearRegression:
					s.Y[0] = Dot(truth, s.X)
				case *LogisticRegression:
					if sigmoid(Dot(truth, s.X)) > 0.5 {
						s.Y[0] = 1
					} else {
						s.Y[0] = 0
					}
				case *SVM:
					if Dot(truth, s.X) >= 0 {
						s.Y[0] = 1
					} else {
						s.Y[0] = -1
					}
				}
				data[i] = s
			}
			model := a.InitModel(rng)
			lr := 0.05
			if a.Name() == "backprop" {
				lr = 0.5
			}
			cfg := SGDConfig{LearningRate: lr, MiniBatch: 64, Aggregator: dsl.AggAverage}
			res := Train(a, cfg, model, data, 4, 8)
			first, last := res.LossPerEpoch[0], res.LossPerEpoch[len(res.LossPerEpoch)-1]
			initial := MeanLoss(a, model, data)
			if last >= initial {
				t.Errorf("loss did not improve: initial %g, epochs %v", initial, res.LossPerEpoch)
			}
			if last > first {
				t.Errorf("loss increased across epochs: %g -> %g", first, last)
			}
		})
	}
}

// TestAggregatorSumMode checks the batched-gradient-descent path performs
// the θ − μ/b Σg update.
func TestAggregatorSumMode(t *testing.T) {
	a := &LinearRegression{M: 3}
	model := []float64{1, 2, 3}
	batch := []Sample{
		{X: []float64{1, 0, 0}, Y: []float64{0}},
		{X: []float64{0, 1, 0}, Y: []float64{0}},
	}
	cfg := SGDConfig{LearningRate: 0.1, MiniBatch: 2, Aggregator: dsl.AggSum}
	got := ParallelSGDBatch(a, cfg, model, batch, 2)
	// Gradients: sample0 -> (w·x − y)x = (1,0,0); sample1 -> (0,2,0).
	// Update: θ − 0.1/2 · Σg = (1−0.05, 2−0.1, 3).
	want := []float64{0.95, 1.9, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("w[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Errorf("Dot = %g", d)
	}
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Errorf("Scale = %v", y)
	}
}

func TestMeanLossEmpty(t *testing.T) {
	a := &SVM{M: 2}
	if l := MeanLoss(a, []float64{0, 0}, nil); l != 0 {
		t.Errorf("MeanLoss(empty) = %g", l)
	}
}
