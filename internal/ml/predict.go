package ml

import (
	"fmt"
	"math"
)

// Predictor exposes an algorithm's transfer function g(θ, X) for inference.
// Training subsumes prediction in this class of algorithms ("since training
// involves prediction, CoSMIC can accelerate prediction as well"), so every
// algorithm family implements it.
type Predictor interface {
	// Predict evaluates the trained model on one input vector, returning
	// the predicted output(s) in the same layout as Sample.Y.
	Predict(model []float64, x []float64) []float64
}

// Predict evaluates w·x.
func (a *LinearRegression) Predict(model []float64, x []float64) []float64 {
	return []float64{Dot(model, x)}
}

// Predict evaluates σ(w·x), the class-1 probability.
func (a *LogisticRegression) Predict(model []float64, x []float64) []float64 {
	return []float64{sigmoid(Dot(model, x))}
}

// Predict evaluates the signed margin w·x.
func (a *SVM) Predict(model []float64, x []float64) []float64 {
	return []float64{Dot(model, x)}
}

// Predict runs the forward pass.
func (a *MLP) Predict(model []float64, x []float64) []float64 {
	_, o := a.forward(model, x)
	return o
}

// Predict evaluates the factor model's rating uf·vf for the one-hot
// encoded (user, item) pair.
func (a *CF) Predict(model []float64, x []float64) []float64 {
	uf, vf := a.factors(model, x)
	return []float64{Dot(uf, vf)}
}

// Predict returns the class probabilities.
func (a *Softmax) Predict(model []float64, x []float64) []float64 {
	return a.probs(model, x)
}

// Statically assert every family implements Predictor.
var (
	_ Predictor = (*LinearRegression)(nil)
	_ Predictor = (*LogisticRegression)(nil)
	_ Predictor = (*SVM)(nil)
	_ Predictor = (*MLP)(nil)
	_ Predictor = (*CF)(nil)
	_ Predictor = (*Softmax)(nil)
)

// Accuracy returns the fraction of samples an algorithm classifies
// correctly, with the decision rule appropriate to each family: sign of
// the margin for SVM, a 0.5 threshold for logistic regression, and argmax
// for the multi-output families. It fails for pure-regression algorithms,
// which have no classification semantics — use RMSE for those.
func Accuracy(alg Algorithm, model []float64, data []Sample) (float64, error) {
	p, ok := alg.(Predictor)
	if !ok {
		return 0, fmt.Errorf("ml: %s does not predict", alg.Name())
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("ml: no samples")
	}
	correct := 0
	for _, s := range data {
		out := p.Predict(model, s.X)
		switch alg.(type) {
		case *SVM:
			pred := 1.0
			if out[0] < 0 {
				pred = -1
			}
			if pred == s.Y[0] {
				correct++
			}
		case *LogisticRegression:
			pred := 0.0
			if out[0] >= 0.5 {
				pred = 1
			}
			if pred == s.Y[0] {
				correct++
			}
		case *MLP, *Softmax:
			if argmax(out) == argmax(s.Y) {
				correct++
			}
		default:
			return 0, fmt.Errorf("ml: %s has no classification rule; use RMSE", alg.Name())
		}
	}
	return float64(correct) / float64(len(data)), nil
}

// RMSE returns the root-mean-square prediction error over data.
func RMSE(alg Algorithm, model []float64, data []Sample) (float64, error) {
	p, ok := alg.(Predictor)
	if !ok {
		return 0, fmt.Errorf("ml: %s does not predict", alg.Name())
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("ml: no samples")
	}
	sum := 0.0
	n := 0
	for _, s := range data {
		out := p.Predict(model, s.X)
		for k := range out {
			d := out[k] - s.Y[k]
			sum += d * d
			n++
		}
	}
	return math.Sqrt(sum / float64(n)), nil
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	_ = xs[best]
	return best
}
