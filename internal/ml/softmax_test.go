package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dfg"
	"repro/internal/dsl"
)

func softmaxSample(a *Softmax, rng *rand.Rand) Sample {
	s := Sample{X: make([]float64, a.M), Y: make([]float64, a.C)}
	for i := range s.X {
		s.X[i] = rng.NormFloat64()
	}
	s.Y[rng.Intn(a.C)] = 1
	return s
}

func TestSoftmaxGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := &Softmax{M: 6, C: 4}
	for trial := 0; trial < 5; trial++ {
		model := a.InitModel(rng)
		s := softmaxSample(a, rng)
		grad := make([]float64, a.ModelSize())
		a.Gradient(model, s, grad)
		const h = 1e-6
		for i := range model {
			orig := model[i]
			model[i] = orig + h
			lp := a.Loss(model, s)
			model[i] = orig - h
			lm := a.Loss(model, s)
			model[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-grad[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("dL/dw[%d]: analytic %g, numeric %g", i, grad[i], num)
			}
		}
	}
}

// TestSoftmaxDSLMatchesReference: the new model flows through the DSL and
// translator with no stack changes and computes the same gradients.
func TestSoftmaxDSLMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := &Softmax{M: 5, C: 3}
	unit, err := dsl.ParseAndAnalyze(a.DSLSource(), a.DSLParams())
	if err != nil {
		t.Fatal(err)
	}
	g, err := dfg.Translate(unit)
	if err != nil {
		t.Fatal(err)
	}
	tape, err := g.CompileTape()
	if err != nil {
		t.Fatal(err)
	}
	arena := tape.NewArena()
	for trial := 0; trial < 10; trial++ {
		model := a.InitModel(rng)
		s := softmaxSample(a, rng)
		want := make([]float64, a.ModelSize())
		a.Gradient(model, s, want)
		bind := dfg.Bindings{Data: a.PackSample(s), Model: a.PackModel(model)}
		outs, err := g.Eval(bind)
		if err != nil {
			t.Fatal(err)
		}
		tapeOuts, err := arena.EvalBindings(bind)
		if err != nil {
			t.Fatal(err)
		}
		for name, ov := range outs {
			for i := range ov {
				if math.Float64bits(ov[i]) != math.Float64bits(tapeOuts[name][i]) {
					t.Fatalf("tape %s[%d] = %g, interpreter %g", name, i, tapeOuts[name][i], ov[i])
				}
			}
		}
		got := a.UnpackGradient(outs)
		for i := range want {
			// The DSL program does not use the max-z stabilization, so
			// tolerate ordinary floating-point divergence.
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("g[%d] = %g via DFG, %g via reference", i, got[i], want[i])
			}
		}
	}
}

func TestSoftmaxProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	a := &Softmax{M: 8, C: 5}
	model := a.InitModel(rng)
	for trial := 0; trial < 20; trial++ {
		s := softmaxSample(a, rng)
		p := a.probs(model, s.X)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("probability %g out of range", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("probabilities sum to %g", sum)
		}
	}
}

func TestSoftmaxTrainingConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	a := &Softmax{M: 10, C: 3}
	truth := make([]float64, a.ModelSize())
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	data := make([]Sample, 300)
	for i := range data {
		s := Sample{X: make([]float64, a.M), Y: make([]float64, a.C)}
		for j := range s.X {
			s.X[j] = rng.NormFloat64()
		}
		// Label with the truth model's argmax.
		best, bestZ := 0, math.Inf(-1)
		for c := 0; c < a.C; c++ {
			z := Dot(truth[c*a.M:(c+1)*a.M], s.X)
			if z > bestZ {
				best, bestZ = c, z
			}
		}
		s.Y[best] = 1
		data[i] = s
	}
	model := a.InitModel(rng)
	initial := MeanLoss(a, model, data)
	cfg := SGDConfig{LearningRate: 0.1, MiniBatch: 50, Aggregator: dsl.AggAverage}
	res := Train(a, cfg, model, data, 4, 8)
	final := res.LossPerEpoch[len(res.LossPerEpoch)-1]
	if final >= initial/2 {
		t.Errorf("softmax barely learned: %g -> %g", initial, final)
	}
}
