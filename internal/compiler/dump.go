package compiler

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/dfg"
)

// DumpSchedule writes a human-readable listing of the static schedule: the
// per-PE operation programs, the data/model placement summary, and the
// memory interface schedule — the artifacts a hardware engineer would
// inspect before signing off on generated control logic.
func (p *Program) DumpSchedule(w io.Writer) error {
	fmt.Fprintf(w, "schedule: %s mapping on %s\n", p.Style, p.Plan)
	fmt.Fprintf(w, "  %d compute ops over %d PEs/thread (%d rows x %d cols), %d threads\n",
		len(p.IssueOrder), p.NPE, p.Rows, p.Columns, p.Plan.Threads)
	fmt.Fprintf(w, "  stream: %d data words, %d model words, %d gradient words\n",
		len(p.DataStream), len(p.ModelStream), p.Graph.GradientWords())
	fmt.Fprintf(w, "  inter-PE transfers: %d\n\n", p.CommunicationCost())

	// Busiest PEs first; quiet PEs are summarized.
	type peLoad struct{ pe, ops int }
	loads := make([]peLoad, 0, p.NPE)
	for pe, ops := range p.PEOps {
		if len(ops)+len(p.GradAccum[pe]) > 0 {
			loads = append(loads, peLoad{pe, len(ops) + len(p.GradAccum[pe])})
		}
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].ops != loads[j].ops {
			return loads[i].ops > loads[j].ops
		}
		return loads[i].pe < loads[j].pe
	})
	const showPEs = 4
	const showOps = 12
	for i, l := range loads {
		if i >= showPEs {
			fmt.Fprintf(w, "... %d more active PEs\n", len(loads)-showPEs)
			break
		}
		fmt.Fprintf(w, "PE %d (row %d, col %d): %d ops", l.pe, p.RowOf(l.pe), p.ColOf(l.pe), l.ops)
		if n := len(p.GradAccum[l.pe]); n > 0 {
			fmt.Fprintf(w, " (+%d gradient accumulations)", n)
		}
		fmt.Fprintln(w)
		for k, id := range p.PEOps[l.pe] {
			if k >= showOps {
				fmt.Fprintf(w, "    ... %d more\n", len(p.PEOps[l.pe])-showOps)
				break
			}
			n := p.Graph.Nodes[id]
			fmt.Fprintf(w, "    %3d: %-8s %s\n", k, n.Op, describeArgs(p, n))
		}
	}

	fmt.Fprintf(w, "\nmemory schedule (%d entries):\n", len(p.MemSchedule))
	const showEntries = 8
	for i, e := range p.MemSchedule {
		if i >= showEntries {
			fmt.Fprintf(w, "  ... %d more entries\n", len(p.MemSchedule)-showEntries)
			break
		}
		kind := "read "
		if e.Write {
			kind = "write"
		}
		if e.Broadcast {
			kind = "bcast"
		}
		fmt.Fprintf(w, "  %3d: %s base-PE %-4d size %d\n", i, kind, e.BasePE, e.Size)
	}
	return nil
}

// describeArgs renders a node's operands with their placements.
func describeArgs(p *Program, n *dfg.Node) string {
	s := ""
	for i, a := range n.Args {
		if i > 0 {
			s += ", "
		}
		switch a.Op {
		case dfg.OpConst:
			s += fmt.Sprintf("#%g", a.Const)
		case dfg.OpData:
			s += fmt.Sprintf("%s[%d]@pe%d", a.Var, a.Index, p.PE[a.ID])
		case dfg.OpModel:
			s += fmt.Sprintf("%s[%d]@pe%d", a.Var, a.Index, p.PE[a.ID])
		default:
			place := "local"
			if p.PE[a.ID] != p.PE[n.ID] {
				place = fmt.Sprintf("pe%d", p.PE[a.ID])
			}
			s += fmt.Sprintf("t%d@%s", a.ID, place)
		}
	}
	return s
}
