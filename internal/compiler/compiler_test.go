package compiler

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/dsl"
)

// testChip is a small fabric: 8 columns (3.2 GB/s at 100 MHz), 64 PEs.
var testChip = arch.ChipSpec{
	Name: "test-chip", Kind: arch.FPGA,
	PEBudget: 64, StorageKB: 256,
	MemBandwidthGBps: 3.2, FrequencyMHz: 100,
	TDPWatts: 5,
}

func testPlan(threads, rows int) arch.Plan {
	return arch.Plan{Chip: testChip, Columns: testChip.Columns(), Threads: threads, RowsPerThread: rows}
}

func graphFor(t *testing.T, src string, params map[string]int) *dfg.Graph {
	t.Helper()
	u, err := dsl.ParseAndAnalyze(src, params)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dfg.Translate(u)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChipColumnsFromBandwidth(t *testing.T) {
	if c := testChip.Columns(); c != 8 {
		t.Fatalf("columns = %d, want 8", c)
	}
	if r := testChip.RowLimit(); r != 8 {
		t.Fatalf("row limit = %d, want 8", r)
	}
	// Paper platforms: UltraScale+ gets 128 words/cycle and 48 rows;
	// P-ASIC-F is bandwidth-starved per cycle at 1 GHz.
	if c := arch.UltraScalePlus.Columns(); c != 128 {
		t.Errorf("UltraScale+ columns = %d, want 128", c)
	}
	if r := arch.UltraScalePlus.RowLimit(); r != 48 {
		t.Errorf("UltraScale+ row limit = %d, want 48", r)
	}
	// Columns round down to powers of two (19.2 -> 16, 72 -> 64) so the
	// memory bursts and reduction trees stay aligned.
	if c := arch.PASICF.Columns(); c != 16 {
		t.Errorf("P-ASIC-F columns = %d, want 16", c)
	}
	if c := arch.PASICG.Columns(); c != 64 {
		t.Errorf("P-ASIC-G columns = %d, want 64", c)
	}
}

func TestPlanValidate(t *testing.T) {
	good := testPlan(2, 2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testPlan(4, 3) // 12 rows > limit 8
	if err := bad.Validate(); err == nil {
		t.Error("expected row-limit violation")
	}
	if err := (arch.Plan{Chip: testChip}).Validate(); err == nil {
		t.Error("expected degenerate-plan error")
	}
}

func TestCompileSVMBothStyles(t *testing.T) {
	g := graphFor(t, dsl.SourceSVM, map[string]int{"M": 32})
	for _, style := range []Style{StyleCoSMIC, StyleTABLA} {
		p, err := Compile(g, testPlan(2, 2), style)
		if err != nil {
			t.Fatalf("%v: %v", style, err)
		}
		if p.NPE != 16 {
			t.Errorf("%v: NPE = %d, want 16", style, p.NPE)
		}
		scheduled := 0
		for _, ops := range p.PEOps {
			scheduled += len(ops)
		}
		if scheduled != g.NumOps() {
			t.Errorf("%v: scheduled %d ops, graph has %d", style, scheduled, g.NumOps())
		}
	}
}

func TestDataPlacementFollowsMemoryLayout(t *testing.T) {
	g := graphFor(t, dsl.SourceLinearRegression, map[string]int{"M": 24})
	p, err := Compile(g, testPlan(1, 2), StyleCoSMIC)
	if err != nil {
		t.Fatal(err)
	}
	// x[0..23] then y stream in order; word k must land on column k%8,
	// row (k/8)%2.
	if len(p.DataStream) != 25 {
		t.Fatalf("stream length %d, want 25", len(p.DataStream))
	}
	for k, id := range p.DataStream {
		if id < 0 {
			t.Fatalf("word %d unexpectedly unreferenced", k)
		}
		wantPE := (k/8%2)*8 + k%8
		if p.PE[id] != wantPE {
			t.Errorf("word %d placed on PE %d, want %d", k, p.PE[id], wantPE)
		}
	}
	// Leaf identity: the k-th streamed word is x[k] for k<24, then y.
	for k := 0; k < 24; k++ {
		n := g.Nodes[p.DataStream[k]]
		if n.Var != "x" || n.Index != k {
			t.Errorf("word %d is %s[%d], want x[%d]", k, n.Var, n.Index, k)
		}
	}
	if n := g.Nodes[p.DataStream[24]]; n.Var != "y" {
		t.Errorf("word 24 is %s, want y", n.Var)
	}
}

func TestCoSMICCoLocatesModelWithData(t *testing.T) {
	g := graphFor(t, dsl.SourceLinearRegression, map[string]int{"M": 16})
	p, err := Compile(g, testPlan(1, 2), StyleCoSMIC)
	if err != nil {
		t.Fatal(err)
	}
	// Every w[i]*x[i] multiply must execute on x[i]'s PE, with w[i] stored
	// there too: zero transfers for the elementwise stage.
	xLeaves := g.DataLeaves["x"]
	wLeaves := g.ModelLeaves["w"]
	for i := range wLeaves {
		if p.PE[wLeaves[i].ID] != p.PE[xLeaves[i].ID] {
			t.Errorf("w[%d] on PE %d but x[%d] on PE %d",
				i, p.PE[wLeaves[i].ID], i, p.PE[xLeaves[i].ID])
		}
	}
}

func TestCoSMICBeatsTABLAOnCommunication(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		params map[string]int
		strict bool
	}{
		// On purely element-wise graphs TABLA's greedy converges to the
		// same placement; the data-first advantage shows on graphs with
		// real cross-communication (reductions feeding broadcasts feeding
		// outer products).
		{"linreg", dsl.SourceLinearRegression, map[string]int{"M": 128}, false},
		{"svm", dsl.SourceSVM, map[string]int{"M": 128}, false},
		{"logreg", dsl.SourceLogisticRegression, map[string]int{"M": 128}, false},
		{"backprop", dsl.SourceBackprop, map[string]int{"IN": 16, "HID": 12, "OUT": 4}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := graphFor(t, c.src, c.params)
			plan := testPlan(1, 4)
			cosmic, err := Compile(g, plan, StyleCoSMIC)
			if err != nil {
				t.Fatal(err)
			}
			tabla, err := Compile(g, plan, StyleTABLA)
			if err != nil {
				t.Fatal(err)
			}
			cc, tc := cosmic.CommunicationCost(), tabla.CommunicationCost()
			if cc > tc || (c.strict && cc == tc) {
				t.Errorf("CoSMIC transfers %d, TABLA %d: data-first mapping should communicate less", cc, tc)
			}
		})
	}
}

func TestGradAccumCoversEveryOutput(t *testing.T) {
	g := graphFor(t, dsl.SourceSVM, map[string]int{"M": 20})
	p, err := Compile(g, testPlan(2, 1), StyleCoSMIC)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for pe, ids := range p.GradAccum {
		for _, id := range ids {
			seen[id]++
			if owner := p.PE[id]; owner >= 0 && owner != pe {
				t.Errorf("output %d accumulated on PE %d but produced on %d", id, pe, owner)
			}
		}
	}
	for _, outs := range g.Outputs {
		for _, o := range outs {
			if seen[o.ID] != 1 {
				t.Errorf("output node %d accumulated %d times", o.ID, seen[o.ID])
			}
		}
	}
}

func TestMemScheduleAccountsForAllWords(t *testing.T) {
	g := graphFor(t, dsl.SourceLogisticRegression, map[string]int{"M": 20})
	p, err := Compile(g, testPlan(1, 2), StyleCoSMIC)
	if err != nil {
		t.Fatal(err)
	}
	var bcast, read, write int
	for _, e := range p.MemSchedule {
		if e.Size <= 0 || e.Size > p.Columns {
			t.Fatalf("entry size %d out of range (columns %d)", e.Size, p.Columns)
		}
		switch {
		case e.Broadcast:
			bcast += e.Size
		case e.Write:
			write += e.Size
		default:
			read += e.Size
		}
	}
	if bcast != len(p.ModelStream) {
		t.Errorf("broadcast words %d, model stream %d", bcast, len(p.ModelStream))
	}
	if read != len(p.DataStream) {
		t.Errorf("read words %d, data stream %d", read, len(p.DataStream))
	}
	if write != g.GradientWords() {
		t.Errorf("write-back words %d, gradients %d", write, g.GradientWords())
	}
}

func TestCompileRejectsBadPlan(t *testing.T) {
	g := graphFor(t, dsl.SourceSVM, map[string]int{"M": 8})
	if _, err := Compile(g, testPlan(8, 8), StyleCoSMIC); err == nil {
		t.Error("expected plan-validation error")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := graphFor(t, dsl.SourceSVM, map[string]int{"M": 8})
	p, err := Compile(g, testPlan(1, 1), StyleCoSMIC)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate a scheduled op.
	p.PEOps[0] = append(p.PEOps[0], p.PEOps[0][0])
	if err := p.Validate(); err == nil {
		t.Error("expected duplicate-schedule error")
	}
}

func TestValidateCatchesIssueOrderOmission(t *testing.T) {
	g := graphFor(t, dsl.SourceSVM, map[string]int{"M": 8})
	p, err := Compile(g, testPlan(1, 2), StyleCoSMIC)
	if err != nil {
		t.Fatal(err)
	}
	p.IssueOrder = p.IssueOrder[:len(p.IssueOrder)-1]
	if err := p.Validate(); err == nil {
		t.Error("expected issue-order omission error")
	}
}

func TestValidateCatchesIssueOrderDuplicate(t *testing.T) {
	g := graphFor(t, dsl.SourceSVM, map[string]int{"M": 8})
	p, err := Compile(g, testPlan(1, 2), StyleCoSMIC)
	if err != nil {
		t.Fatal(err)
	}
	p.IssueOrder[len(p.IssueOrder)-1] = p.IssueOrder[0]
	if err := p.Validate(); err == nil {
		t.Error("expected issue-order duplicate error")
	}
}

func TestValidateCatchesCrossPEDependencyViolation(t *testing.T) {
	g := graphFor(t, dsl.SourceSVM, map[string]int{"M": 32})
	p, err := Compile(g, testPlan(1, 2), StyleCoSMIC)
	if err != nil {
		t.Fatal(err)
	}
	// Find a consumer issued after a compute operand that lives on a
	// different PE, and swap the pair: each PE's own program order is
	// untouched, so only the global (cross-PE) dependency check can fire.
	pos := map[int]int{}
	for i, id := range p.IssueOrder {
		pos[id] = i
	}
	found := false
	for j, id := range p.IssueOrder {
		for _, a := range g.Nodes[id].Args {
			if a.Op.IsLeaf() || p.PE[a.ID] == p.PE[id] {
				continue
			}
			i := pos[a.ID]
			p.IssueOrder[i], p.IssueOrder[j] = p.IssueOrder[j], p.IssueOrder[i]
			found = true
			break
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no cross-PE dependency in this mapping")
	}
	if err := p.Validate(); err == nil {
		t.Error("expected cross-PE dependency violation")
	}
}

func TestInterconnectFollowsStyle(t *testing.T) {
	g := graphFor(t, dsl.SourceSVM, map[string]int{"M": 8})
	c, _ := Compile(g, testPlan(1, 1), StyleCoSMIC)
	tb, _ := Compile(g, testPlan(1, 1), StyleTABLA)
	if c.Interconnect != TreeBus || tb.Interconnect != FlatBus {
		t.Errorf("interconnects: cosmic %v, tabla %v", c.Interconnect, tb.Interconnect)
	}
}

func TestRowColHelpers(t *testing.T) {
	g := graphFor(t, dsl.SourceSVM, map[string]int{"M": 8})
	p, _ := Compile(g, testPlan(1, 2), StyleCoSMIC)
	if p.RowOf(9) != 1 || p.ColOf(9) != 1 {
		t.Errorf("PE 9: row %d col %d, want 1,1", p.RowOf(9), p.ColOf(9))
	}
}

func TestDumpSchedule(t *testing.T) {
	g := graphFor(t, dsl.SourceSVM, map[string]int{"M": 24})
	p, err := Compile(g, testPlan(2, 2), StyleCoSMIC)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := p.DumpSchedule(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"schedule: CoSMIC", "memory schedule", "PE ", "compute ops"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}
