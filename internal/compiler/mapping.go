package compiler

import (
	"container/heap"

	"repro/internal/dfg"
)

// nodeHeap is a max-heap of ready compute nodes ordered by Height (longest
// dependence chain first — the Compiler "prioritizes scheduling operations
// that have the longest dependence chain"), breaking ties by node ID for
// determinism.
type nodeHeap []*dfg.Node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].Height != h[j].Height {
		return h[i].Height > h[j].Height
	}
	return h[i].ID < h[j].ID
}
func (h nodeHeap) Swap(i, j int)         { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)           { *h = append(*h, x.(*dfg.Node)) }
func (h *nodeHeap) Pop() any             { old := *h; n := old[len(old)-1]; *h = old[:len(old)-1]; return n }
func (h *nodeHeap) PushNode(n *dfg.Node) { heap.Push(h, n) }

// readyWalk drives a topological traversal in priority order: visit is
// called once per compute node, after all its compute arguments have been
// visited.
func readyWalk(g *dfg.Graph, visit func(*dfg.Node)) {
	pending := make([]int, len(g.Nodes))
	ready := &nodeHeap{}
	for _, n := range g.Nodes {
		if n.Op.IsLeaf() {
			continue
		}
		cnt := 0
		for _, a := range n.Args {
			if !a.Op.IsLeaf() {
				cnt++
			}
		}
		pending[n.ID] = cnt
		if cnt == 0 {
			ready.PushNode(n)
		}
	}
	for ready.Len() > 0 {
		n := heap.Pop(ready).(*dfg.Node)
		visit(n)
		for _, c := range n.Consumers {
			pending[c.ID]--
			if pending[c.ID] == 0 {
				ready.PushNode(c)
			}
		}
	}
}

// mapCoSMIC is Algorithm 1: data-first, minimum-communication mapping.
// Training data has already been pinned by placeData; this pass walks the
// DFG in dependence order and maps each operation to the PE that holds its
// operands, placing model parameters next to their consumers on the way.
func (p *Program) mapCoSMIC() {
	rr := 0 // the PE_i round-robin counter of Algorithm 1
	readyWalk(p.Graph, func(v *dfg.Node) {
		pe := -1

		// Step 3: an operand of type DATA anchors the operation. When
		// several operands are DATA (e.g. y·xᵢ pairs a scalar label with a
		// vector element), follow the least-loaded one — anchoring on the
		// scalar would serialize every instance onto its PE.
		for _, a := range v.Args {
			if a.Op == dfg.OpData {
				cand := p.PE[a.ID]
				if pe < 0 || len(p.PEOps[cand]) < len(p.PEOps[pe]) {
					pe = cand
				}
			}
		}
		if pe >= 0 {
			// Co-locate any unplaced MODEL operand with the operation.
			for _, a := range v.Args {
				if a.Op == dfg.OpModel && p.PE[a.ID] < 0 {
					p.PE[a.ID] = pe
				}
			}
		}

		// Step 4: otherwise a MODEL operand anchors it (placing the model
		// parameter round-robin if it has no home yet — incremental
		// assignment "enables parallel execution of the operations in
		// neighboring PEs"). Among several placed MODEL operands, follow
		// the least loaded.
		if pe < 0 {
			for _, a := range v.Args {
				if a.Op == dfg.OpModel && p.PE[a.ID] >= 0 {
					cand := p.PE[a.ID]
					if pe < 0 || len(p.PEOps[cand]) < len(p.PEOps[pe]) {
						pe = cand
					}
				}
			}
			if pe < 0 {
				for _, a := range v.Args {
					if a.Op == dfg.OpModel {
						p.PE[a.ID] = rr
						rr = (rr + 1) % p.NPE
						pe = p.PE[a.ID]
						break
					}
				}
			}
		}

		// Step 5: otherwise follow an INTERIM operand. Among the operands'
		// PEs pick the least loaded one: any choice avoids a transfer for
		// that operand, and balancing keeps deep reduction trees from
		// piling every level onto one PE.
		if pe < 0 {
			for _, a := range v.Args {
				if !a.Op.IsLeaf() && p.PE[a.ID] >= 0 {
					cand := p.PE[a.ID]
					if pe < 0 || len(p.PEOps[cand]) < len(p.PEOps[pe]) {
						pe = cand
					}
				}
			}
		}

		// Operations over constants alone go round-robin.
		if pe < 0 {
			pe = rr
			rr = (rr + 1) % p.NPE
		}

		p.PE[v.ID] = pe
		p.PEOps[pe] = append(p.PEOps[pe], v.ID)
		p.IssueOrder = append(p.IssueOrder, v.ID)
	})
}

// tablaTransferPenalty is the greedy scheduler's estimate of one operand
// transfer, in load units.
const tablaTransferPenalty = 4

// mapTABLA is the baseline operation-first mapper modeled on TABLA's
// scheduler: a latency-greedy list scheduler that weighs each candidate
// PE's queue length against the transfers the placement would cost, one
// operation at a time ("map operations before the data to find the
// lowest-latency schedule"). It is locally sensible but — unlike Algorithm
// 1 — never plans data placement globally, and its template's flat bus
// hierarchy (8-PE group buses under one global bus) is what Figure 17
// charges at UltraScale+ scale.
func (p *Program) mapTABLA() {
	rr := 0
	readyWalk(p.Graph, func(v *dfg.Node) {
		// Candidate PEs: the operands' homes plus a rotating fallback.
		cands := make([]int, 0, len(v.Args)+1)
		for _, a := range v.Args {
			if a.Op != dfg.OpConst && p.PE[a.ID] >= 0 {
				cands = append(cands, p.PE[a.ID])
			}
		}
		cands = append(cands, rr)
		rr = (rr + 1) % p.NPE

		best, bestScore := -1, 1<<30
		for _, cand := range cands {
			score := len(p.PEOps[cand])
			for _, a := range v.Args {
				if a.Op != dfg.OpConst && p.PE[a.ID] >= 0 && p.PE[a.ID] != cand {
					score += tablaTransferPenalty
				}
			}
			if score < bestScore {
				best, bestScore = cand, score
			}
		}
		p.PE[v.ID] = best
		p.PEOps[best] = append(p.PEOps[best], v.ID)
		p.IssueOrder = append(p.IssueOrder, v.ID)
		for _, a := range v.Args {
			if a.Op == dfg.OpModel && p.PE[a.ID] < 0 {
				p.PE[a.ID] = best
			}
		}
	})
	// Any model parameter that is never consumed directly still needs a
	// home for broadcast.
	for _, leaves := range p.Graph.ModelLeaves {
		for _, leaf := range leaves {
			if leaf != nil && p.PE[leaf.ID] < 0 {
				p.PE[leaf.ID] = 0
			}
		}
	}
}

// CommunicationCost counts the inter-PE value transfers the mapping implies:
// for every compute node, each argument living on a different PE is one
// transfer. The CoSMIC mapper exists to minimize this number; the Figure 17
// ablation reports it for both styles.
func (p *Program) CommunicationCost() int {
	cost := 0
	for _, n := range p.Graph.Nodes {
		if n.Op.IsLeaf() {
			continue
		}
		for _, a := range n.Args {
			if a.Op == dfg.OpConst {
				continue
			}
			if p.PE[a.ID] != p.PE[n.ID] {
				cost++
			}
		}
	}
	return cost
}
