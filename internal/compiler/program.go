// Package compiler implements CoSMIC's compilation layer: the static
// mapping and scheduling of a dataflow graph onto the planned multi-threaded
// template accelerator.
//
// The centerpiece is the paper's Algorithm 1, a minimum-communication
// mapping that places *data before operations*: training-data elements are
// pinned to the PEs their memory-interface column feeds (so no marshaling is
// ever needed), then operations are mapped onto the PEs that already hold
// their operands, and model parameters onto the PEs of their consuming
// operations. A TABLA-style operation-first mapper is provided as the
// baseline for the paper's Figure 17 comparison.
//
// Because every thread executes the same gradient DFG on a different data
// sub-partition, the compiler maps and schedules one thread; the memory
// interface replays the single schedule per thread through the Thread Index
// Table (PE offset + data base address).
package compiler

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/dfg"
	"repro/internal/dsl"
)

// Style selects the mapping algorithm.
type Style int

// Mapping styles.
const (
	// StyleCoSMIC is the paper's Algorithm 1: data-first,
	// minimum-communication mapping onto the tree-bus template.
	StyleCoSMIC Style = iota
	// StyleTABLA is the baseline: operation-first, latency-balancing
	// mapping onto a single-shared-bus template (the prior work's design).
	StyleTABLA
)

// String names the style.
func (s Style) String() string {
	if s == StyleTABLA {
		return "TABLA"
	}
	return "CoSMIC"
}

// Interconnect identifies the on-chip interconnect the schedule assumes.
type Interconnect int

// Interconnect kinds.
const (
	// TreeBus is CoSMIC's template: bidirectional neighbor links, a shared
	// bus per row, and a tree bus (with reduction ALUs) across rows.
	TreeBus Interconnect = iota
	// FlatBus is TABLA's template: one shared bus across all PEs.
	FlatBus
)

// MemEntry is one entry of the programmable memory interface's Memory
// Schedule queue (Section 5.2): the base PE index the transfer targets, the
// direction, whether the transfer is broadcast to all threads, and its size
// in words. At runtime the interface adds each thread's PE Offset from the
// Thread Index Table.
type MemEntry struct {
	BasePE    int
	Write     bool // true = accelerator writes back to memory
	Broadcast bool // true = one read delivered to all worker threads
	Size      int
}

// Program is the compiled artifact for one worker thread: placement of data,
// model parameters and operations, per-PE issue order, and the memory
// interface schedule. All threads share it (MIMD execution differs only in
// base addresses and PE offsets).
type Program struct {
	Plan         arch.Plan
	Graph        *dfg.Graph
	Style        Style
	Interconnect Interconnect

	// NPE is the number of PEs per thread (Plan.PEsPerThread()).
	NPE int
	// Columns and Rows describe the thread's PE sub-array shape.
	Columns, Rows int

	// PE[nodeID] is the PE index (within the thread) that holds the node's
	// value: for DATA/MODEL leaves the buffer that stores the element, for
	// compute nodes the PE that executes the operation. Constants are
	// immediates and carry -1.
	PE []int

	// PEOps[pe] lists compute node IDs in the static issue order of that
	// PE's scheduler.
	PEOps [][]int

	// IssueOrder lists all compute node IDs in the global mapping order (a
	// topological order of the DFG); each PE's PEOps list is a subsequence
	// of it. Timing simulation walks this order.
	IssueOrder []int

	// DataStream lists DATA leaf node IDs in the order their words stream
	// from off-chip memory (the training vector's memory layout); entries
	// of -1 are padding words the shifter discards.
	DataStream []int
	// ModelStream lists MODEL leaf node IDs in broadcast order.
	ModelStream []int

	// GradAccum[pe] lists gradient output node IDs whose running sums the
	// PE accumulates locally after each training vector ("the accelerator
	// internally aggregates the partial gradients for all its worker
	// threads" — the per-PE halves of that work).
	GradAccum [][]int

	// MemSchedule is the Memory Schedule queue contents.
	MemSchedule []MemEntry
}

// Validate checks structural invariants of the compiled program.
func (p *Program) Validate() error {
	if p.NPE != p.Columns*p.Rows {
		return fmt.Errorf("compiler: NPE %d != %d cols × %d rows", p.NPE, p.Columns, p.Rows)
	}
	seen := make(map[int]bool)
	for pe, ops := range p.PEOps {
		if pe >= p.NPE {
			return fmt.Errorf("compiler: ops scheduled on PE %d of %d", pe, p.NPE)
		}
		for _, id := range ops {
			if seen[id] {
				return fmt.Errorf("compiler: node %d scheduled twice", id)
			}
			seen[id] = true
			if p.PE[id] != pe {
				return fmt.Errorf("compiler: node %d on PE list %d but placed on %d", id, pe, p.PE[id])
			}
		}
	}
	for _, n := range p.Graph.Nodes {
		if n.Op.IsLeaf() {
			continue
		}
		if !seen[n.ID] {
			return fmt.Errorf("compiler: compute node %d never scheduled", n.ID)
		}
	}
	// IssueOrder must be a permutation of the compute nodes…
	pos := make(map[int]int, len(p.IssueOrder))
	for i, id := range p.IssueOrder {
		if id < 0 || id >= len(p.Graph.Nodes) || p.Graph.Nodes[id].Op.IsLeaf() {
			return fmt.Errorf("compiler: issue order entry %d is not a compute node", id)
		}
		if _, dup := pos[id]; dup {
			return fmt.Errorf("compiler: node %d issued twice", id)
		}
		pos[id] = i
	}
	if len(pos) != p.Graph.NumOps() {
		return fmt.Errorf("compiler: issue order covers %d of %d compute nodes", len(pos), p.Graph.NumOps())
	}
	// …in a topological order: every compute operand — on any PE — is
	// issued before its consumer (global def-before-use).
	for i, id := range p.IssueOrder {
		for _, a := range p.Graph.Nodes[id].Args {
			if a.Op.IsLeaf() {
				continue
			}
			if pos[a.ID] > i {
				return fmt.Errorf("compiler: node %d (PE %d) issued before operand %d (PE %d)",
					id, p.PE[id], a.ID, p.PE[a.ID])
			}
		}
	}
	// Each PE's program must be exactly its subsequence of the issue order
	// (the memory interface replays one global schedule per thread).
	cursor := make([]int, p.NPE)
	for _, id := range p.IssueOrder {
		pe := p.PE[id]
		if cursor[pe] >= len(p.PEOps[pe]) || p.PEOps[pe][cursor[pe]] != id {
			return fmt.Errorf("compiler: PE %d program disagrees with issue order at node %d", pe, id)
		}
		cursor[pe]++
	}
	return nil
}

// RowOf returns the row of a PE index within the thread's sub-array.
func (p *Program) RowOf(pe int) int { return pe / p.Columns }

// ColOf returns the column of a PE index.
func (p *Program) ColOf(pe int) int { return pe % p.Columns }

// Compile maps and schedules the graph onto one thread of the planned
// accelerator using the selected style.
func Compile(g *dfg.Graph, plan arch.Plan, style Style) (*Program, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	p := &Program{
		Plan:    plan,
		Graph:   g,
		Style:   style,
		NPE:     plan.PEsPerThread(),
		Columns: plan.Columns,
		Rows:    plan.RowsPerThread,
		PE:      make([]int, len(g.Nodes)),
	}
	for i := range p.PE {
		p.PE[i] = -1
	}
	p.PEOps = make([][]int, p.NPE)
	p.Interconnect = TreeBus
	if style == StyleTABLA {
		p.Interconnect = FlatBus
	}

	p.placeData()
	switch style {
	case StyleCoSMIC:
		p.mapCoSMIC()
	case StyleTABLA:
		p.mapTABLA()
	default:
		return nil, fmt.Errorf("compiler: unknown style %d", style)
	}
	p.buildModelStream()
	p.buildGradAccum()
	p.buildMemSchedule()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// placeData pins each training-data element to the PE fed by the memory
// column that delivers it: word k of the vector arrives on column k mod
// Columns and is steered to row (k / Columns) mod Rows. This is the step
// that lets the accelerator consume data in its raw memory layout, with the
// shifter handling alignment instead of software marshaling.
func (p *Program) placeData() {
	for _, leaves := range p.dataSymbolLeaves() {
		for _, leaf := range leaves {
			pe := p.peForStreamIndex(len(p.DataStream))
			if leaf != nil {
				p.PE[leaf.ID] = pe
				p.DataStream = append(p.DataStream, leaf.ID)
			} else {
				// The element exists in memory but the DFG never reads it;
				// the word still occupies a stream slot.
				p.DataStream = append(p.DataStream, -1)
			}
		}
	}
}

// peForStreamIndex maps the k-th streamed word to its PE.
func (p *Program) peForStreamIndex(k int) int {
	col := k % p.Columns
	row := (k / p.Columns) % p.Rows
	return row*p.Columns + col
}

// dataSymbolLeaves returns the DATA leaf tables in the training vector's
// memory order: model_input and model_output symbols in declaration order.
func (p *Program) dataSymbolLeaves() [][]*dfg.Node {
	u := p.Graph.Unit
	var out [][]*dfg.Node
	for _, name := range u.Order {
		if leaves, ok := p.Graph.DataLeaves[name]; ok {
			out = append(out, leaves)
			continue
		}
		// Data symbols that the DFG never references at all still occupy
		// stream slots; synthesize an all-nil table for them.
		sym := u.Symbols[name]
		if sym.Kind == dsl.KindModelInput || sym.Kind == dsl.KindModelOutput {
			out = append(out, make([]*dfg.Node, sym.Size()))
		}
	}
	return out
}

// buildModelStream records model parameters in broadcast order: symbol
// declaration order, flat element order. Only referenced parameters are
// broadcast.
func (p *Program) buildModelStream() {
	u := p.Graph.Unit
	for _, name := range u.Order {
		leaves, ok := p.Graph.ModelLeaves[name]
		if !ok {
			continue
		}
		for _, leaf := range leaves {
			if leaf != nil {
				p.ModelStream = append(p.ModelStream, leaf.ID)
			}
		}
	}
}

// buildGradAccum assigns each gradient output's local accumulation to the
// PE that produces it.
func (p *Program) buildGradAccum() {
	p.GradAccum = make([][]int, p.NPE)
	for _, name := range p.Graph.OutputOrder {
		for _, out := range p.Graph.Outputs[name] {
			pe := p.PE[out.ID]
			if pe < 0 {
				// Constant outputs (e.g. hinge-loss zeros) still need a
				// home for their running sum; column 0 of row 0 keeps them.
				pe = 0
			}
			p.GradAccum[pe] = append(p.GradAccum[pe], out.ID)
		}
	}
}

// buildMemSchedule lowers the data and model streams into Memory Schedule
// queue entries: row-sized read bursts for training data, broadcast reads
// for model parameters, and a write-back burst for the locally aggregated
// gradient.
func (p *Program) buildMemSchedule() {
	// Model broadcast precedes data streaming for each mini-batch.
	for off := 0; off < len(p.ModelStream); off += p.Columns {
		size := p.Columns
		if off+size > len(p.ModelStream) {
			size = len(p.ModelStream) - off
		}
		p.MemSchedule = append(p.MemSchedule, MemEntry{
			BasePE: 0, Broadcast: true, Size: size,
		})
	}
	for off := 0; off < len(p.DataStream); off += p.Columns {
		size := p.Columns
		if off+size > len(p.DataStream) {
			size = len(p.DataStream) - off
		}
		p.MemSchedule = append(p.MemSchedule, MemEntry{
			BasePE: p.peForStreamIndex(off), Size: size,
		})
	}
	grads := p.Graph.GradientWords()
	for off := 0; off < grads; off += p.Columns {
		size := p.Columns
		if off+size > grads {
			size = grads - off
		}
		p.MemSchedule = append(p.MemSchedule, MemEntry{
			BasePE: p.peForStreamIndex(off), Write: true, Size: size,
		})
	}
}
