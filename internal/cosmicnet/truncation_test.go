package cosmicnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// fullFeatureFrame builds a frame exercising every wire extension at once:
// trace IDs, the chunk extension, text, and a payload large enough that its
// read buffer comes from the pool's upper classes.
func fullFeatureFrame() *Frame {
	p := make([]float64, 1024)
	for i := range p {
		p[i] = float64(i) * 0.5
	}
	return &Frame{
		Type: MsgGroupAggregate, Seq: 3, From: 9, Weight: 2.5,
		Text: "meta", TraceID: 0xabcdef, SpanID: 0x123456,
		ChunkIndex: 2, ChunkCount: 8, ChunkOffset: 8192,
		Payload: p,
	}
}

// TestTruncationAtEveryOffset cuts a chunked+traced frame's encoding at
// every byte boundary and asserts the reader fails each cut with a clean
// stream error — never a panic, a hang, or a bogus decode. The full
// encoding still decodes afterwards, proving the sweep covered a valid
// frame.
func TestTruncationAtEveryOffset(t *testing.T) {
	var enc bytes.Buffer
	if err := WriteFrame(&enc, fullFeatureFrame()); err != nil {
		t.Fatal(err)
	}
	raw := enc.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		_, err := ReadFrame(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("cut at byte %d/%d decoded successfully", cut, len(raw))
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at byte %d/%d: %v, want a stream error", cut, len(raw), err)
		}
	}
	got, err := ReadFrame(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 3 || got.ChunkCount != 8 || got.Text != "meta" || len(got.Payload) != 1024 {
		t.Fatalf("full decode corrupted: %+v", got)
	}
}

// TestTruncatedReadReturnsPoolBuffer: the error path of a truncated body
// read must still return its staging buffer to the pool. A leak would force
// a fresh multi-KB allocation on every failed read (≥2 allocs per attempt);
// with the pool intact only the fixed length-prefix scratch allocates (1).
func TestTruncatedReadReturnsPoolBuffer(t *testing.T) {
	var enc bytes.Buffer
	if err := WriteFrame(&enc, fullFeatureFrame()); err != nil {
		t.Fatal(err)
	}
	raw := enc.Bytes()
	cut := raw[:len(raw)/2]
	// Warm the pool class once.
	if _, err := ReadFrame(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(cut)
	var f Frame
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(cut)
		if err := ReadFrameInto(r, &f); err == nil {
			t.Fatal("truncated read succeeded")
		}
	})
	if allocs > 1.5 {
		t.Errorf("truncated read allocates %.1f per attempt; the staging buffer is leaking from the pool", allocs)
	}
}

// TestCorruptHeaderRejected: corruption the truncation sweep cannot reach —
// length prefixes and header fields that lie about the body.
func TestCorruptHeaderRejected(t *testing.T) {
	var enc bytes.Buffer
	if err := WriteFrame(&enc, fullFeatureFrame()); err != nil {
		t.Fatal(err)
	}
	raw := enc.Bytes()
	mutate := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), raw...)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"length below header", mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b, 5)
		})},
		{"length above cap", mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b, 0xFFFFFFFF)
		})},
		{"text length lies", mutate(func(b []byte) {
			// textLen lives at byte 17 of the header, after the 4-byte
			// length prefix.
			binary.LittleEndian.PutUint32(b[4+17:], 9999)
		})},
		{"payload length wraps 32 bits", mutate(func(b []byte) {
			// payloadLen*8 wraps uint32 at 1<<29; the reader must do the
			// consistency check in 64-bit arithmetic.
			binary.LittleEndian.PutUint32(b[4+21:], 1<<29)
		})},
		{"chunk count zero with chunk flag", mutate(func(b []byte) {
			off := 4 + headerBytes + traceExtBytes
			binary.LittleEndian.PutUint32(b[off+4:], 0)
		})},
		{"chunk index beyond count", mutate(func(b []byte) {
			off := 4 + headerBytes + traceExtBytes
			binary.LittleEndian.PutUint32(b[off:], 8)
		})},
	}
	for _, c := range cases {
		if _, err := ReadFrame(bytes.NewReader(c.b)); err == nil {
			t.Errorf("%s: decoded successfully", c.name)
		}
	}
}
