package cosmicnet

// This file is the single source of truth for the frame type-byte
// extension flags. Every flag is declared exactly once here, described in
// the WireExtensions table, and referenced everywhere else by name — the
// wireflag lint pass (cmd/cosmic-lint, cosmicc vet -source) enforces that
// the bits are distinct, that flagMask is exactly their union, that both
// the encode (writeFrame) and decode (readFrameInto) paths handle every
// flag, and that no raw flag-mask literal appears outside this file's
// marked declarations.

// Extension flags on the type byte. Each flag marks a fixed-size extension
// inserted between the fixed header and the text, in flag order: trace
// first, chunk second. Frames that use no extension never set a flag, so a
// pre-extension reader parses a new writer's plain frames unchanged — and
// rejects extended frames via its length-consistency check.
//
//cosmic:wire-registry
const (
	// flagTrace marks the trace extension: traceID(8) + spanID(8).
	flagTrace     = 0x80
	traceExtBytes = 16
	// flagChunk marks the chunk extension: chunkIndex(4) + chunkCount(4) +
	// chunkOffset(4).
	flagChunk     = 0x40
	chunkExtBytes = 12

	flagMask = flagTrace | flagChunk
)

// WireExtension describes one registered type-byte extension: the flag
// bit, a stable name for diagnostics, and the extension's on-wire size in
// bytes.
type WireExtension struct {
	Flag byte
	Name string
	Size int
}

// WireExtensions is the registry table, in flag order (extensions appear
// on the wire in this order when multiple flags are set).
//
//cosmic:wire-registry
var WireExtensions = [...]WireExtension{
	{Flag: flagTrace, Name: "trace", Size: traceExtBytes},
	{Flag: flagChunk, Name: "chunk", Size: chunkExtBytes},
}
