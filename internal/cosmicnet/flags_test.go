package cosmicnet

import (
	"math/bits"
	"testing"
)

// TestWireExtensionRegistry checks the runtime half of what the wireflag
// lint pass checks statically: single-bit flags, no overlap, sizes
// consistent with the extension byte counts, and flagMask exactly the
// union of the registered bits.
func TestWireExtensionRegistry(t *testing.T) {
	var union byte
	for i, e := range WireExtensions {
		if bits.OnesCount8(e.Flag) != 1 {
			t.Errorf("extension %q: flag 0x%X is not a single bit", e.Name, e.Flag)
		}
		if union&e.Flag != 0 {
			t.Errorf("extension %q: flag 0x%X overlaps an earlier entry", e.Name, e.Flag)
		}
		if e.Size <= 0 {
			t.Errorf("extension %q: non-positive size %d", e.Name, e.Size)
		}
		if e.Name == "" {
			t.Errorf("extension %d: empty name", i)
		}
		union |= e.Flag
	}
	if union != flagMask {
		t.Errorf("flagMask = 0x%X, registered flags union to 0x%X", flagMask, union)
	}
}

func TestWireExtensionSizes(t *testing.T) {
	want := map[string]int{"trace": traceExtBytes, "chunk": chunkExtBytes}
	for _, e := range WireExtensions {
		if w, ok := want[e.Name]; !ok {
			t.Errorf("unexpected extension %q in registry", e.Name)
		} else if e.Size != w {
			t.Errorf("extension %q: size %d, want %d", e.Name, e.Size, w)
		}
	}
	if len(WireExtensions) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(WireExtensions), len(want))
	}
}
