package cosmicnet

// Transport abstracts how nodes reach each other: opening data-plane
// listeners and dialing peers. The production transport is plain TCP; the
// chaos fault-injection fabric (internal/cosmicnet/chaos) substitutes an
// in-process network or a fault-wrapped TCP so the same runtime code runs
// under deterministic adversarial conditions.
type Transport interface {
	// Listen opens a framed listener. addr is advisory — an in-process
	// transport may assign its own address scheme; the bound address is
	// recovered from the listener.
	Listen(addr string) (*Listener, error)
	// Dial connects to a peer's listener address.
	Dial(addr string) (*Conn, error)
}

// tcpTransport is the production transport: real TCP sockets.
type tcpTransport struct{}

func (tcpTransport) Listen(addr string) (*Listener, error) { return Listen(addr) }
func (tcpTransport) Dial(addr string) (*Conn, error)       { return Dial(addr) }

// TCP is the default Transport, used whenever a NodeConfig leaves its
// Transport nil.
var TCP Transport = tcpTransport{}
