package chaos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cosmicnet"
)

// startEcho opens a listener on the named endpoint and returns its address
// plus a channel of everything the accept loop receives (closed on conn
// error). One connection is served.
func startEcho(t *testing.T, nw *Network, name string) (string, <-chan *cosmicnet.Frame) {
	t.Helper()
	ln, err := nw.Endpoint(name).Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	out := make(chan *cosmicnet.Frame, 1024)
	go func() {
		defer close(out)
		conn, err := ln.AcceptConn()
		if err != nil {
			return
		}
		for {
			f, err := conn.Recv()
			if err != nil {
				return
			}
			out <- f
		}
	}()
	return ln.Addr().String(), out
}

func TestLoopbackRoundTrip(t *testing.T) {
	nw := NewNetwork(nil, nil)
	addr, got := startEcho(t, nw, "b")
	conn, err := nw.Endpoint("a").Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	want := []float64{1, 2.5, -3, 4}
	for seq := uint32(0); seq < 8; seq++ {
		f := &cosmicnet.Frame{
			Type: cosmicnet.MsgPartial, Seq: seq, From: 7, Weight: 2,
			Payload: want, TraceID: 99, SpanID: 100,
			ChunkIndex: 1, ChunkCount: 4, ChunkOffset: 64,
		}
		if err := conn.Send(f); err != nil {
			t.Fatal(err)
		}
		r := <-got
		if r == nil {
			t.Fatal("connection dropped")
		}
		if r.Seq != seq || r.From != 7 || r.Weight != 2 || r.TraceID != 99 ||
			r.ChunkCount != 4 || len(r.Payload) != len(want) {
			t.Fatalf("frame %d corrupted: %+v", seq, r)
		}
		for i, v := range want {
			if r.Payload[i] != v {
				t.Fatalf("payload[%d] = %g, want %g", i, r.Payload[i], v)
			}
		}
	}
}

// sendAndCollect pushes n data frames plus a MsgDone end marker through a
// fresh network built from the schedule and returns the Seqs that arrived.
// The schedule must leave control frames intact (data-only rules) so the
// marker always lands.
func sendAndCollect(t *testing.T, src string, n int) []uint32 {
	t.Helper()
	sched, err := ParseSchedule(src)
	if err != nil {
		t.Fatal(err)
	}
	nw := NewNetwork(sched, nil)
	addr, got := startEcho(t, nw, "b")
	conn, err := nw.Endpoint("a").Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for seq := 0; seq < n; seq++ {
		f := &cosmicnet.Frame{Type: cosmicnet.MsgPartial, Seq: uint32(seq), Payload: []float64{float64(seq)}}
		if err := conn.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Send(&cosmicnet.Frame{Type: cosmicnet.MsgDone}); err != nil {
		t.Fatal(err)
	}
	var seqs []uint32
	for f := range got {
		if f.Type == cosmicnet.MsgDone {
			return seqs
		}
		seqs = append(seqs, f.Seq)
	}
	t.Fatal("end marker never arrived")
	return nil
}

func TestDropIsSeedDeterministic(t *testing.T) {
	const src = "seed 7\nlink a->b drop 0.4 data-only\n"
	first := sendAndCollect(t, src, 200)
	if len(first) == 0 || len(first) == 200 {
		t.Fatalf("drop 0.4 delivered %d/200 frames", len(first))
	}
	second := sendAndCollect(t, src, 200)
	if len(first) != len(second) {
		t.Fatalf("same seed delivered %d then %d frames", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed diverged at arrival %d: %d vs %d", i, first[i], second[i])
		}
	}
	other := sendAndCollect(t, "seed 8\nlink a->b drop 0.4 data-only\n", 200)
	same := len(other) == len(first)
	for i := 0; same && i < len(first); i++ {
		same = first[i] == other[i]
	}
	if same {
		t.Error("different seeds made identical drop decisions across 200 frames")
	}
}

func TestReorderSwapsAdjacentFrames(t *testing.T) {
	got := sendAndCollect(t, "link a->b reorder 1 data-only\n", 4)
	want := []uint32{1, 0, 3, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrival order %v, want %v", got, want)
		}
	}
}

func TestKillMidFrameSeversBothSides(t *testing.T) {
	sched, err := ParseSchedule("link a->b kill-frame 2 once\n")
	if err != nil {
		t.Fatal(err)
	}
	nw := NewNetwork(sched, nil)
	ln, err := nw.Endpoint("b").Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptErr := make(chan error, 1)
	go func() {
		conn, err := ln.AcceptConn()
		if err != nil {
			acceptErr <- err
			return
		}
		if _, err := conn.Recv(); err != nil {
			acceptErr <- err
			return
		}
		_, err = conn.Recv() // frame 2 arrives truncated, then EOF
		acceptErr <- err
	}()
	conn, err := nw.Endpoint("a").Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f := &cosmicnet.Frame{Type: cosmicnet.MsgPartial, Payload: make([]float64, 32)}
	if err := conn.Send(f); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(f); err == nil {
		t.Error("send of the killed frame should fail")
	}
	if err := <-acceptErr; err == nil {
		t.Error("receiver should see a truncated frame or EOF")
	}
	// once: a redial survives its second frame.
	conn2, err := nw.Endpoint("a").Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	for i := 0; i < 4; i++ {
		if err := conn2.Send(f); err != nil {
			t.Fatalf("frame %d after redial: %v", i, err)
		}
	}
}

func TestPartitionHealsOnVirtualClock(t *testing.T) {
	sched, err := ParseSchedule("partition a->b at 1ms heal 2ms\n")
	if err != nil {
		t.Fatal(err)
	}
	vc := NewVirtualClock()
	nw := NewNetwork(sched, vc)
	addr, got := startEcho(t, nw, "b")
	conn, err := nw.Endpoint("a").Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send := func(seq uint32) {
		if err := conn.Send(&cosmicnet.Frame{Type: cosmicnet.MsgPartial, Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	send(0) // t=0: before the window
	vc.Advance(1500 * time.Microsecond)
	send(1) // t=1.5ms: inside, blackholed
	vc.Advance(1 * time.Millisecond)
	send(2) // t=2.5ms: healed
	if f := <-got; f.Seq != 0 {
		t.Fatalf("first arrival seq %d, want 0", f.Seq)
	}
	if f := <-got; f.Seq != 2 {
		t.Fatalf("second arrival seq %d, want 2 (1 blackholed)", f.Seq)
	}
}

func TestLatencyAccruesOnVirtualClock(t *testing.T) {
	sched, err := ParseSchedule("link a->b latency 10ms\n")
	if err != nil {
		t.Fatal(err)
	}
	vc := NewVirtualClock()
	stop := vc.StartAuto()
	defer stop()
	nw := NewNetwork(sched, vc)
	addr, got := startEcho(t, nw, "b")
	conn, err := nw.Endpoint("a").Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(&cosmicnet.Frame{Type: cosmicnet.MsgPartial}); err != nil {
		t.Fatal(err)
	}
	<-got
	if now := vc.Now(); now < 10*time.Millisecond {
		t.Errorf("frame arrived at virtual t=%v, want >= 10ms", now)
	}
}

func TestBandwidthSerializesFrames(t *testing.T) {
	// 1000 B/s: each ~49-byte frame costs ~49ms of serialization, and the
	// second frame queues behind the first.
	sched, err := ParseSchedule("link a->b bandwidth 1000\n")
	if err != nil {
		t.Fatal(err)
	}
	vc := NewVirtualClock()
	stop := vc.StartAuto()
	defer stop()
	nw := NewNetwork(sched, vc)
	addr, got := startEcho(t, nw, "b")
	conn, err := nw.Endpoint("a").Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f := &cosmicnet.Frame{Type: cosmicnet.MsgPartial, Payload: make([]float64, 2)}
	for i := 0; i < 2; i++ {
		if err := conn.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	<-got
	<-got
	if now := vc.Now(); now < 80*time.Millisecond {
		t.Errorf("two frames serialized by virtual t=%v, want >= 80ms", now)
	}
}

// TestWrapTransportDataOnlyDrop interposes the fault engine on real TCP:
// control frames pass, data frames vanish.
func TestWrapTransportDataOnlyDrop(t *testing.T) {
	sched, err := ParseSchedule("link w->* drop 1 data-only\n")
	if err != nil {
		t.Fatal(err)
	}
	nw := NewNetwork(sched, nil)
	ln, err := cosmicnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan *cosmicnet.Frame, 16)
	go func() {
		defer close(got)
		conn, err := ln.AcceptConn()
		if err != nil {
			return
		}
		for {
			f, err := conn.Recv()
			if err != nil {
				return
			}
			got <- f
		}
	}()
	tr := nw.WrapTransport(cosmicnet.TCP, "w")
	conn, err := tr.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&cosmicnet.Frame{Type: cosmicnet.MsgPartial, Payload: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&cosmicnet.Frame{Type: cosmicnet.MsgHello, Text: "here"}); err != nil {
		t.Fatal(err)
	}
	f := <-got
	if f == nil || f.Type != cosmicnet.MsgHello {
		t.Fatalf("first surviving frame %+v, want the hello (data dropped)", f)
	}
	conn.Close()
	if f, ok := <-got; ok {
		t.Fatalf("unexpected extra frame %+v", f)
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	const src = `seed 42
link a->b latency 5ms jitter 1ms drop 0.25 reorder 0.1 bandwidth 1048576 kill-frame 9 once data-only
link *->a drop 0.5
partition a->b at 100ms heal 250ms
partition b<->c at 1s
`
	s, err := ParseSchedule(src)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("reparsing %q: %v", s.String(), err)
	}
	if s.String() != again.String() {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", s.String(), again.String())
	}
	if len(s.Links) != 2 || len(s.Partitions) != 2 || s.Seed != 42 {
		t.Fatalf("parsed %+v", s)
	}
	r := s.Links[0]
	if r.Latency != 5*time.Millisecond || r.Jitter != time.Millisecond ||
		r.Drop != 0.25 || r.Reorder != 0.1 || r.Bandwidth != 1<<20 ||
		r.KillFrame != 9 || !r.KillOnce || !r.DataOnly {
		t.Fatalf("rule %+v", r)
	}
	if p := s.Partitions[1]; !p.TwoWay || p.Heals {
		t.Fatalf("partition %+v", p)
	}
}

func TestScheduleParseErrors(t *testing.T) {
	cases := []struct{ src, wantSub string }{
		{"bogus 1\n", "line 1"},
		{"seed\n", "seed"},
		{"link a-b drop 0.5\n", "from->to"},
		{"link a->b drop 1.5\n", "probability"},
		{"link a->b warp 3\n", "unknown link option"},
		{"link a<->b drop 0.5\n", "one-way"},
		{"link a->b once\n", "kill-frame"},
		{"partition a->b\n", "partition wants"},
		{"partition a->b at 2ms heal 1ms\n", "heal"},
		{"# fine\nlink ->b drop 1\n", "line 2"},
	}
	for _, c := range cases {
		if _, err := ParseSchedule(c.src); err == nil {
			t.Errorf("%q parsed", c.src)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q lacks %q", c.src, err, c.wantSub)
		}
	}
}

// TestLastMatchingLinkRuleWins: a later, more specific rule replaces the
// wildcard wholesale.
func TestLastMatchingLinkRuleWins(t *testing.T) {
	sched, err := ParseSchedule("link *->b drop 1\nlink a->b latency 1ms\n")
	if err != nil {
		t.Fatal(err)
	}
	f := sched.faultsFor("a", "b")
	if f.rule.Drop != 0 || f.rule.Latency != time.Millisecond {
		t.Fatalf("resolved rule %+v, want the later rule only", f.rule)
	}
	g := sched.faultsFor("c", "b")
	if g.rule.Drop != 1 {
		t.Fatalf("wildcard rule lost: %+v", g.rule)
	}
}
