package chaos

import (
	"testing"
	"time"

	"repro/internal/cosmicnet"
)

// FuzzChaosSchedule feeds arbitrary schedule text to the parser and, when it
// parses, runs the schedule against a two-endpoint loopback exchange on a
// virtual clock. The property under test is robustness, not delivery: no
// panic, no deadlock (the exchange is bounded by a real-time watchdog that
// severs the connection), and the fabric keeps accepting writes or fails
// them cleanly.
func FuzzChaosSchedule(f *testing.F) {
	f.Add("seed 3\nlink a->b drop 0.5 data-only\n")
	f.Add("link a->b latency 1ms jitter 1ms reorder 0.9\npartition b->a at 1ms heal 2ms\n")
	f.Add("link *->* kill-frame 3\n")
	f.Add("link a->b bandwidth 17\npartition a<->b at 0\n")
	f.Add("seed -9\nlink b->a drop 1\nlink a->b reorder 1 data-only\n# comment\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip("oversized schedule")
		}
		sched, err := ParseSchedule(src)
		if err != nil {
			return // rejecting bad grammar cleanly is the contract
		}
		vc := NewVirtualClock()
		stopAuto := vc.StartAuto()
		defer stopAuto()
		nw := NewNetwork(sched, vc)
		ln, err := nw.Endpoint("b").Listen("")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		done := make(chan struct{})
		go func() {
			defer close(done)
			conn, err := ln.AcceptConn()
			if err != nil {
				return
			}
			defer conn.Close()
			for {
				if _, err := conn.Recv(); err != nil {
					return
				}
			}
		}()
		conn, err := nw.Endpoint("a").Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		// Watchdog: whatever the schedule does, the exchange must wind down
		// once the connection is severed. Virtual latency collapses under
		// StartAuto, so 5s of real time only passes if something deadlocks.
		watchdog := time.AfterFunc(5*time.Second, func() { conn.Close() })
		defer watchdog.Stop()
		frame := &cosmicnet.Frame{Type: cosmicnet.MsgPartial, Payload: make([]float64, 8)}
		for i := 0; i < 6; i++ {
			frame.Seq = uint32(i)
			if err := conn.Send(frame); err != nil {
				break // a killed link fails writes cleanly
			}
		}
		conn.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("receiver never unblocked after close")
		}
	})
}
