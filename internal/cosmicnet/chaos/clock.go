// Package chaos is a deterministic fault-injection transport for CoSMIC's
// wire layer: a cosmicnet.Transport whose connections delay, drop, reorder,
// throttle, partition, and kill frames according to a seeded schedule, so a
// cluster's behavior under network misbehavior replays bit-identically from
// a seed. The fabric is frame-aware — it parses the length-prefixed framing
// at each conn's write side and applies faults at frame boundaries (plus a
// mid-frame variant for conn kills), which is what makes fault decisions a
// pure function of (seed, link, frame index).
//
// Two deployment shapes share the fault engine: NewNetwork wires a fully
// in-process fabric (no sockets — tests run thousands of faulty rounds per
// second), and Network.WrapTransport interposes the same fault rules on a
// real transport's connections for process-level deployments.
package chaos

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts time for the fault engine: latency sleeps, bandwidth
// serialization, and partition windows all read one clock, so a test can
// swap in a virtual clock and replay a schedule without wall-time cost.
type Clock interface {
	// Now is the elapsed time since the clock's origin.
	Now() time.Duration
	// Sleep blocks the caller for d of this clock's time.
	Sleep(d time.Duration)
}

// realClock is wall time, origin at construction.
type realClock struct {
	start time.Time
}

// NewRealClock returns a Clock backed by wall time.
func NewRealClock() Clock { return &realClock{start: time.Now()} }

func (c *realClock) Now() time.Duration    { return time.Since(c.start) }
func (c *realClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock is a logical clock: Sleep parks the caller on a deadline
// heap and Advance (or the auto-advance driver) releases sleepers by moving
// virtual now forward. Schedules replay identically no matter how loaded
// the host machine is.
type VirtualClock struct {
	mu       sync.Mutex
	cond     *sync.Cond
	now      time.Duration
	pending  deadlineHeap
	stopAuto chan struct{}
	autoOnce sync.Once
}

// NewVirtualClock returns a virtual clock at time zero.
func NewVirtualClock() *VirtualClock {
	vc := &VirtualClock{}
	vc.cond = sync.NewCond(&vc.mu)
	return vc
}

// Now returns the current virtual time.
func (vc *VirtualClock) Now() time.Duration {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.now
}

// Sleep blocks until virtual now has advanced by at least d.
func (vc *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	vc.mu.Lock()
	deadline := vc.now + d
	heap.Push(&vc.pending, deadline)
	vc.cond.Broadcast() // the auto-advance driver watches the heap
	for vc.now < deadline {
		vc.cond.Wait()
	}
	vc.pending.remove(deadline)
	vc.mu.Unlock()
}

// Advance moves virtual time forward by d, releasing every sleeper whose
// deadline it passes.
func (vc *VirtualClock) Advance(d time.Duration) {
	vc.mu.Lock()
	vc.now += d
	vc.mu.Unlock()
	vc.cond.Broadcast()
}

// StartAuto runs a driver that jumps virtual time to the earliest pending
// deadline whenever sleepers exist, with a short real-time idle grace so
// concurrent goroutines get to register their sleeps. Call the returned
// stop function when done.
func (vc *VirtualClock) StartAuto() (stop func()) {
	ch := make(chan struct{})
	vc.mu.Lock()
	vc.stopAuto = ch
	vc.mu.Unlock()
	go func() {
		for {
			select {
			case <-ch:
				return
			case <-time.After(200 * time.Microsecond):
			}
			vc.mu.Lock()
			if len(vc.pending) > 0 && vc.pending[0] > vc.now {
				vc.now = vc.pending[0]
				vc.cond.Broadcast()
			}
			vc.mu.Unlock()
		}
	}()
	return func() {
		vc.autoOnce.Do(func() { close(ch) })
	}
}

// deadlineHeap is a min-heap of sleep deadlines.
type deadlineHeap []time.Duration

func (h deadlineHeap) Len() int           { return len(h) }
func (h deadlineHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h deadlineHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *deadlineHeap) Push(x any)        { *h = append(*h, x.(time.Duration)) }
func (h *deadlineHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// remove drops one instance of deadline from the heap (the sleeper that
// owned it has woken).
func (h *deadlineHeap) remove(deadline time.Duration) {
	for i, d := range *h {
		if d == deadline {
			heap.Remove(h, i)
			return
		}
	}
}
