package chaos

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cosmicnet"
)

// Network is an in-process fabric of named endpoints whose connections
// route every frame through the schedule's fault rules. Each ordered pair
// of endpoint names is one link with its own PRNG stream (seeded from the
// schedule seed and the link's name), so fault decisions replay exactly —
// per link, per frame index — across runs and are unaffected by what other
// links do.
type Network struct {
	sched *Schedule
	clock Clock

	mu        sync.Mutex
	listeners map[string]*listener
	links     map[string]*linkState
	nextPort  int
}

// NewNetwork builds a fabric over the schedule. A nil clock selects wall
// time; pass a VirtualClock to replay latency schedules without wall-time
// cost.
func NewNetwork(sched *Schedule, clock Clock) *Network {
	if sched == nil {
		sched = &Schedule{Seed: 1}
	}
	if clock == nil {
		clock = NewRealClock()
	}
	return &Network{
		sched:     sched,
		clock:     clock,
		listeners: make(map[string]*listener),
		links:     make(map[string]*linkState),
	}
}

// Endpoint returns the named endpoint's Transport. The name is what the
// schedule's link rules match against.
func (nw *Network) Endpoint(name string) cosmicnet.Transport {
	return endpoint{nw: nw, name: name}
}

// endpoint is one named attachment point on the fabric.
type endpoint struct {
	nw   *Network
	name string
}

// Listen opens an in-process listener. The addr argument is advisory (the
// fabric assigns chaos:// addresses); the bound address comes from the
// returned listener.
func (e endpoint) Listen(addr string) (*cosmicnet.Listener, error) {
	_ = addr
	nw := e.nw
	nw.mu.Lock()
	nw.nextPort++
	a := chaosAddr(fmt.Sprintf("chaos://%s/%d", e.name, nw.nextPort))
	ln := &listener{nw: nw, name: e.name, addr: a, ch: make(chan net.Conn, 64)}
	nw.listeners[string(a)] = ln
	nw.mu.Unlock()
	return &cosmicnet.Listener{Listener: ln}, nil
}

// Dial connects to a fabric listener address, applying this endpoint's
// outbound link faults on the way there and the listener endpoint's
// outbound faults on the way back.
func (e endpoint) Dial(addr string) (*cosmicnet.Conn, error) {
	nw := e.nw
	nw.mu.Lock()
	ln := nw.listeners[addr]
	nw.mu.Unlock()
	if ln == nil {
		return nil, fmt.Errorf("chaos: connection refused: %s", addr)
	}
	fwd := nw.newPipe(e.name, ln.name) // dialer writes here
	rev := nw.newPipe(ln.name, e.name) // listener side writes here
	client := &conn{out: fwd, in: rev, local: endpointAddr(e.name), remote: ln.addr}
	server := &conn{out: rev, in: fwd, local: ln.addr, remote: endpointAddr(e.name)}
	// A mid-frame kill severs the whole connection, both directions, as a
	// dying peer or a RST would.
	kill := func() {
		closePipePair(fwd, rev)
	}
	fwd.onKill = kill
	rev.onKill = kill
	if !ln.offer(server) {
		closePipePair(fwd, rev)
		return nil, fmt.Errorf("chaos: connection refused: %s", addr)
	}
	return &cosmicnet.Conn{Conn: client}, nil
}

// linkState is the shared fault state of one ordered endpoint pair: the
// resolved rules, the PRNG decision stream, and whether a kill-once rule
// has fired. Reconnections on a link continue the same decision stream.
type linkState struct {
	faults linkFaults
	mu     sync.Mutex
	rng    *rand.Rand
	killed bool
}

// allowKill consumes one kill event; under once semantics only the first
// connection on the link dies.
func (ls *linkState) allowKill(once bool) bool {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if once && ls.killed {
		return false
	}
	ls.killed = true
	return true
}

func (nw *Network) linkState(from, to string) *linkState {
	key := from + "\x00" + to
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if ls, ok := nw.links[key]; ok {
		return ls
	}
	ls := &linkState{faults: nw.sched.faultsFor(from, to)}
	ls.rng = rand.New(rand.NewSource(nw.sched.Seed ^ int64(fnv64(key))))
	nw.links[key] = ls
	return ls
}

func (nw *Network) newPipe(from, to string) *pipe {
	p := &pipe{clock: nw.clock, link: nw.linkState(from, to)}
	p.rcond = sync.NewCond(&p.rmu)
	p.deliver = p.pushRead
	return p
}

// fnv64 is FNV-1a over s, the link-name half of each link's PRNG seed.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// pipe is one direction of a connection: writers push bytes in, the fault
// engine parses frame boundaries and decides each frame's fate, survivors
// land in the read buffer (or the wrapped transport's socket). The read
// buffer is unbounded, so a slow reader never deadlocks the fabric; the
// wire framing's own flow is bounded by the runtime's round structure.
type pipe struct {
	clock  Clock
	link   *linkState
	onKill func()

	// wmu serializes writers and is held across fault delays: a link
	// delivers in order, later frames queue behind a delayed one.
	wmu       sync.Mutex
	acc       []byte
	frames    int
	killCtr   int
	held      []byte
	busyUntil time.Duration
	wclosed   atomic.Bool

	// deliver hands surviving bytes to the reader side (in-process) or the
	// underlying socket (wrapped transports).
	deliver func(b []byte) error

	rmu     sync.Mutex
	rcond   *sync.Cond
	rbuf    []byte
	rclosed bool
}

// Write accepts bytes from the sender, cuts them at frame boundaries, and
// runs each complete frame through the fault engine. Dropped frames still
// count as written — the sender sees success, as with a one-way loss on a
// real network path.
func (p *pipe) Write(b []byte) (int, error) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.wclosed.Load() {
		return 0, io.ErrClosedPipe
	}
	p.acc = append(p.acc, b...)
	for {
		frame, ok := p.nextFrame()
		if !ok {
			break
		}
		if err := p.handleFrame(frame); err != nil {
			return 0, err
		}
		if p.wclosed.Load() {
			return 0, io.ErrClosedPipe
		}
	}
	return len(b), nil
}

// nextFrame cuts one complete length-prefixed frame off the accumulator.
// Bytes that cannot be a cosmicnet frame (absurd length prefix) flush as
// one opaque pseudo-frame so a garbage stream cannot stall or hoard memory.
func (p *pipe) nextFrame() ([]byte, bool) {
	if len(p.acc) == 0 {
		return nil, false
	}
	if len(p.acc) < 4 {
		return nil, false
	}
	total := int64(binary.LittleEndian.Uint32(p.acc))
	if total <= 0 || total > int64(cosmicnet.FrameCap()) {
		frame := p.acc
		p.acc = nil
		return frame, true
	}
	frameLen := int(4 + total)
	if len(p.acc) < frameLen {
		return nil, false
	}
	frame := p.acc[:frameLen]
	p.acc = p.acc[frameLen:]
	if len(p.acc) == 0 {
		p.acc = nil
	}
	return frame, true
}

// handleFrame decides one frame's fate. Random draws happen in a fixed
// order (drop, reorder, jitter) regardless of the outcome, so the decision
// stream depends only on the link's seed and the frame index.
func (p *pipe) handleFrame(frame []byte) error {
	p.frames++
	f := &p.link.faults
	r := &f.rule
	var dropRoll, reorderRoll, jitterRoll float64
	if f.hasRule {
		p.link.mu.Lock()
		if r.Drop > 0 {
			dropRoll = p.link.rng.Float64()
		}
		if r.Reorder > 0 {
			reorderRoll = p.link.rng.Float64()
		}
		if r.Jitter > 0 {
			jitterRoll = p.link.rng.Float64()
		}
		p.link.mu.Unlock()
	}
	isData := len(frame) >= 5 && cosmicnet.TypeOf(frame[4]).DataFrame()
	eligible := f.hasRule && (!r.DataOnly || isData)
	if eligible && r.KillFrame > 0 {
		p.killCtr++
		if p.killCtr == r.KillFrame && p.link.allowKill(r.KillOnce) {
			// Mid-frame kill: deliver a truncated prefix, then sever the
			// connection. The peer reads a partial frame and then EOF.
			cut := len(frame) / 2
			if cut < 5 && len(frame) > 5 {
				cut = 5
			}
			if err := p.deliver(frame[:cut]); err != nil {
				return err
			}
			if p.onKill != nil {
				p.onKill()
			}
			return io.ErrClosedPipe
		}
	}
	if f.partitioned(p.clock.Now()) {
		return nil
	}
	if eligible && r.Drop > 0 && dropRoll < r.Drop {
		return nil
	}
	if eligible && r.Reorder > 0 && p.held == nil && reorderRoll < r.Reorder {
		// Hold this frame; it departs after the link's next frame.
		p.held = append([]byte(nil), frame...)
		return nil
	}
	p.delay(len(frame), jitterRoll)
	if err := p.deliver(frame); err != nil {
		return err
	}
	if p.held != nil {
		held := p.held
		p.held = nil
		if err := p.deliver(held); err != nil {
			return err
		}
	}
	return nil
}

// delay sleeps out the frame's propagation latency, jitter, and bandwidth
// serialization on the fault clock.
func (p *pipe) delay(nbytes int, jitterRoll float64) {
	f := &p.link.faults
	if !f.hasRule {
		return
	}
	r := &f.rule
	d := r.Latency
	if r.Jitter > 0 {
		d += time.Duration(jitterRoll * float64(r.Jitter))
	}
	if r.Bandwidth > 0 {
		now := p.clock.Now()
		tx := time.Duration(float64(nbytes) / float64(r.Bandwidth) * float64(time.Second))
		start := now
		if p.busyUntil > start {
			start = p.busyUntil
		}
		p.busyUntil = start + tx
		d += p.busyUntil - now
	}
	if d > 0 {
		p.clock.Sleep(d)
	}
}

// pushRead appends delivered bytes to the read buffer.
func (p *pipe) pushRead(b []byte) error {
	p.rmu.Lock()
	defer p.rmu.Unlock()
	if p.rclosed {
		return io.ErrClosedPipe
	}
	p.rbuf = append(p.rbuf, b...)
	p.rcond.Broadcast()
	return nil
}

// Read returns buffered bytes, blocking while none are available. A closed
// pipe drains its buffer before reporting EOF, as a TCP FIN would.
func (p *pipe) Read(b []byte) (int, error) {
	p.rmu.Lock()
	defer p.rmu.Unlock()
	for len(p.rbuf) == 0 && !p.rclosed {
		p.rcond.Wait()
	}
	if len(p.rbuf) == 0 {
		return 0, io.EOF
	}
	n := copy(b, p.rbuf)
	p.rbuf = p.rbuf[n:]
	if len(p.rbuf) == 0 {
		p.rbuf = nil
	}
	return n, nil
}

// closeRead stops deliveries and unblocks readers (data-then-EOF).
func (p *pipe) closeRead() {
	p.rmu.Lock()
	p.rclosed = true
	p.rmu.Unlock()
	p.rcond.Broadcast()
}

// closeWrite makes subsequent writes fail.
func (p *pipe) closeWrite() { p.wclosed.Store(true) }

func closePipePair(a, b *pipe) {
	a.closeWrite()
	b.closeWrite()
	a.closeRead()
	b.closeRead()
}

// conn is one side of an in-process chaos connection.
type conn struct {
	out, in       *pipe
	local, remote net.Addr
	closeOnce     sync.Once
}

func (c *conn) Read(b []byte) (int, error)  { return c.in.Read(b) }
func (c *conn) Write(b []byte) (int, error) { return c.out.Write(b) }

// Close severs both directions: the peer drains buffered bytes then sees
// EOF, and its writes start failing.
func (c *conn) Close() error {
	c.closeOnce.Do(func() { closePipePair(c.out, c.in) })
	return nil
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

// Deadlines are accepted and ignored: the runtime's data plane does not use
// them, and the fault clock governs all timing on the fabric.
func (c *conn) SetDeadline(t time.Time) error      { return nil }
func (c *conn) SetReadDeadline(t time.Time) error  { return nil }
func (c *conn) SetWriteDeadline(t time.Time) error { return nil }

// chaosAddr is the fabric's address scheme.
type chaosAddr string

func (a chaosAddr) Network() string { return "chaos" }
func (a chaosAddr) String() string  { return string(a) }

func endpointAddr(name string) chaosAddr { return chaosAddr("chaos://" + name) }

// listener accepts in-process connections.
type listener struct {
	nw   *Network
	name string
	addr chaosAddr

	mu     sync.Mutex
	closed bool
	ch     chan net.Conn
}

// offer hands a freshly dialed server-side conn to Accept.
func (l *listener) offer(c net.Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	select {
	case l.ch <- c:
		return true
	default:
		return false // accept backlog full: refuse, as a kernel would
	}
}

func (l *listener) Accept() (net.Conn, error) {
	c, ok := <-l.ch
	if !ok {
		return nil, fmt.Errorf("chaos: listener %s closed", l.addr)
	}
	return c, nil
}

func (l *listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.nw.mu.Lock()
	delete(l.nw.listeners, string(l.addr))
	l.nw.mu.Unlock()
	close(l.ch)
	for c := range l.ch {
		c.Close()
	}
	return nil
}

func (l *listener) Addr() net.Addr { return l.addr }

// WrapTransport interposes the schedule's fault rules on a real transport:
// Listen and Dial delegate to inner, and every connection's outbound bytes
// route through the fault engine before reaching the socket. Peer names are
// unknown at the socket level, so each side applies the rules of its own
// outbound links with To "*"; name is this process's endpoint name in the
// schedule. Reads pass through untouched — in a wrapped deployment each
// process faults its own sends, which covers both directions of every link.
func (nw *Network) WrapTransport(inner cosmicnet.Transport, name string) cosmicnet.Transport {
	if inner == nil {
		inner = cosmicnet.TCP
	}
	return &wrapTransport{nw: nw, inner: inner, name: name}
}

type wrapTransport struct {
	nw    *Network
	inner cosmicnet.Transport
	name  string
}

func (w *wrapTransport) Dial(addr string) (*cosmicnet.Conn, error) {
	c, err := w.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &cosmicnet.Conn{Conn: w.nw.wrapConn(c.Conn, w.name)}, nil
}

func (w *wrapTransport) Listen(addr string) (*cosmicnet.Listener, error) {
	ln, err := w.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &cosmicnet.Listener{Listener: &wrapListener{nw: w.nw, inner: ln.Listener, name: w.name}}, nil
}

type wrapListener struct {
	nw    *Network
	inner net.Listener
	name  string
}

func (l *wrapListener) Accept() (net.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return l.nw.wrapConn(c, l.name), nil
}

func (l *wrapListener) Close() error   { return l.inner.Close() }
func (l *wrapListener) Addr() net.Addr { return l.inner.Addr() }

// wrapConn faults the write path of one real connection.
type wrappedConn struct {
	net.Conn
	out *pipe
}

func (nw *Network) wrapConn(raw net.Conn, from string) net.Conn {
	p := nw.newPipe(from, "*")
	p.deliver = func(b []byte) error {
		_, err := raw.Write(b)
		return err
	}
	p.onKill = func() { raw.Close() }
	return &wrappedConn{Conn: raw, out: p}
}

func (c *wrappedConn) Write(b []byte) (int, error) { return c.out.Write(b) }

func (c *wrappedConn) Close() error {
	c.out.closeWrite()
	return c.Conn.Close()
}
