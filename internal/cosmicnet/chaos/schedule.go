package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Schedule is a parsed fault schedule: a PRNG seed plus per-link fault
// rules and partition windows. The same schedule, seed, and frame sequence
// produce the same fault decisions on every run — replay a failure by
// replaying its schedule.
//
// The grammar is line-oriented; # starts a comment:
//
//	seed <int>
//	link <from>-><to> [latency <dur>] [jitter <dur>] [drop <p>] [reorder <p>]
//	     [bandwidth <bytes-per-sec>] [kill-frame <n> [once]] [data-only]
//	partition <a>-><b> at <dur> [heal <dur>]
//	partition <a><-><b> at <dur> [heal <dur>]
//
// Endpoint names match the names given to Network.Endpoint (node IDs in the
// runtime's case); "*" matches any endpoint. For link rules the last
// matching rule wins wholesale. data-only restricts the rule's drop,
// reorder, and kill faults to data frames (model/partial/group-aggregate),
// leaving control traffic (hello, done, stats) intact — the usual choice
// for training-survival scenarios, since a dropped MsgDone only tests
// whether shutdown wedges. Partition windows accumulate: a frame is dropped
// while any window covering its link is open.
type Schedule struct {
	Seed       int64
	Links      []LinkRule
	Partitions []PartitionRule
}

// LinkRule is one link's fault configuration, applied to frames flowing
// from From to To.
type LinkRule struct {
	From, To string
	// Latency and Jitter delay each frame by Latency + U[0,Jitter).
	Latency, Jitter time.Duration
	// Drop and Reorder are per-frame probabilities in [0,1]. A reordered
	// frame is held and swapped with the next frame on the link.
	Drop, Reorder float64
	// Bandwidth caps the link in bytes per second (0 = unlimited); frames
	// serialize behind each other as on a real pipe.
	Bandwidth int64
	// KillFrame, when > 0, severs the connection mid-frame at the KillFrame-th
	// frame (1-based): the peer receives a truncated frame then EOF. With
	// KillOnce only the first connection on the link is killed; otherwise
	// every connection dies at its KillFrame-th frame.
	KillFrame int
	KillOnce  bool
	// DataOnly restricts drop/reorder/kill to data frames.
	DataOnly bool
}

// PartitionRule blackholes a link (one-way, or both directions with
// TwoWay) from At until Heal; Heals false means the partition never heals.
type PartitionRule struct {
	From, To string
	TwoWay   bool
	At       time.Duration
	Heal     time.Duration
	Heals    bool
}

// matches reports whether the rule's endpoint pattern covers the link
// from→to (either direction for two-way partitions).
func matchEnd(pat, name string) bool { return pat == "*" || pat == name }

func (r *LinkRule) matches(from, to string) bool {
	return matchEnd(r.From, from) && matchEnd(r.To, to)
}

func (p *PartitionRule) matches(from, to string) bool {
	if matchEnd(p.From, from) && matchEnd(p.To, to) {
		return true
	}
	return p.TwoWay && matchEnd(p.From, to) && matchEnd(p.To, from)
}

// ParseSchedule parses the fault-schedule grammar.
func ParseSchedule(src string) (*Schedule, error) {
	s := &Schedule{Seed: 1}
	for ln, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		var err error
		switch fields[0] {
		case "seed":
			err = parseSeed(s, fields[1:])
		case "link":
			err = parseLink(s, fields[1:])
		case "partition":
			err = parsePartition(s, fields[1:])
		default:
			err = fmt.Errorf("unknown directive %q", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: line %d: %w", ln+1, err)
		}
	}
	return s, nil
}

func parseSeed(s *Schedule, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("seed wants one integer")
	}
	v, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return fmt.Errorf("seed: %w", err)
	}
	s.Seed = v
	return nil
}

// parseEnds splits "a->b" or "a<->b" into endpoints.
func parseEnds(tok string) (from, to string, twoWay bool, err error) {
	if i := strings.Index(tok, "<->"); i >= 0 {
		from, to, twoWay = tok[:i], tok[i+3:], true
	} else if i := strings.Index(tok, "->"); i >= 0 {
		from, to = tok[:i], tok[i+2:]
	} else {
		return "", "", false, fmt.Errorf("link %q wants from->to", tok)
	}
	if from == "" || to == "" {
		return "", "", false, fmt.Errorf("link %q has an empty endpoint", tok)
	}
	return from, to, twoWay, nil
}

func parseLink(s *Schedule, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("link wants from->to")
	}
	from, to, twoWay, err := parseEnds(args[0])
	if err != nil {
		return err
	}
	if twoWay {
		return fmt.Errorf("link rules are one-way; add the reverse rule explicitly")
	}
	r := LinkRule{From: from, To: to}
	args = args[1:]
	for len(args) > 0 {
		key := args[0]
		args = args[1:]
		switch key {
		case "once":
			if r.KillFrame == 0 {
				return fmt.Errorf("once must follow kill-frame")
			}
			r.KillOnce = true
			continue
		case "data-only":
			r.DataOnly = true
			continue
		}
		if len(args) == 0 {
			return fmt.Errorf("%s wants a value", key)
		}
		val := args[0]
		args = args[1:]
		switch key {
		case "latency", "jitter":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return fmt.Errorf("%s %q: want a non-negative duration", key, val)
			}
			if key == "latency" {
				r.Latency = d
			} else {
				r.Jitter = d
			}
		case "drop", "reorder":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return fmt.Errorf("%s %q: want a probability in [0,1]", key, val)
			}
			if key == "drop" {
				r.Drop = p
			} else {
				r.Reorder = p
			}
		case "bandwidth":
			b, err := strconv.ParseInt(val, 10, 64)
			if err != nil || b <= 0 {
				return fmt.Errorf("bandwidth %q: want positive bytes per second", val)
			}
			r.Bandwidth = b
		case "kill-frame":
			k, err := strconv.Atoi(val)
			if err != nil || k <= 0 {
				return fmt.Errorf("kill-frame %q: want a positive frame ordinal", val)
			}
			r.KillFrame = k
		default:
			return fmt.Errorf("unknown link option %q", key)
		}
	}
	s.Links = append(s.Links, r)
	return nil
}

func parsePartition(s *Schedule, args []string) error {
	if len(args) < 3 || args[1] != "at" {
		return fmt.Errorf("partition wants: <a>-><b> at <dur> [heal <dur>]")
	}
	from, to, twoWay, err := parseEnds(args[0])
	if err != nil {
		return err
	}
	at, err := time.ParseDuration(args[2])
	if err != nil || at < 0 {
		return fmt.Errorf("partition at %q: want a non-negative duration", args[2])
	}
	p := PartitionRule{From: from, To: to, TwoWay: twoWay, At: at}
	switch {
	case len(args) == 3:
	case len(args) == 5 && args[3] == "heal":
		h, err := time.ParseDuration(args[4])
		if err != nil || h < at {
			return fmt.Errorf("partition heal %q: want a duration >= at", args[4])
		}
		p.Heal, p.Heals = h, true
	default:
		return fmt.Errorf("partition wants: <a>-><b> at <dur> [heal <dur>]")
	}
	s.Partitions = append(s.Partitions, p)
	return nil
}

// String renders the schedule back in the grammar (parse∘String is the
// identity on the semantic content).
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", s.Seed)
	for _, r := range s.Links {
		fmt.Fprintf(&b, "link %s->%s", r.From, r.To)
		if r.Latency > 0 {
			fmt.Fprintf(&b, " latency %s", r.Latency)
		}
		if r.Jitter > 0 {
			fmt.Fprintf(&b, " jitter %s", r.Jitter)
		}
		if r.Drop > 0 {
			fmt.Fprintf(&b, " drop %s", strconv.FormatFloat(r.Drop, 'g', -1, 64))
		}
		if r.Reorder > 0 {
			fmt.Fprintf(&b, " reorder %s", strconv.FormatFloat(r.Reorder, 'g', -1, 64))
		}
		if r.Bandwidth > 0 {
			fmt.Fprintf(&b, " bandwidth %d", r.Bandwidth)
		}
		if r.KillFrame > 0 {
			fmt.Fprintf(&b, " kill-frame %d", r.KillFrame)
			if r.KillOnce {
				b.WriteString(" once")
			}
		}
		if r.DataOnly {
			b.WriteString(" data-only")
		}
		b.WriteByte('\n')
	}
	for _, p := range s.Partitions {
		arrow := "->"
		if p.TwoWay {
			arrow = "<->"
		}
		fmt.Fprintf(&b, "partition %s%s%s at %s", p.From, arrow, p.To, p.At)
		if p.Heals {
			fmt.Fprintf(&b, " heal %s", p.Heal)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// faultsFor resolves the faults governing one link: the last matching link
// rule plus every partition window covering the link.
func (s *Schedule) faultsFor(from, to string) linkFaults {
	var f linkFaults
	for i := range s.Links {
		if s.Links[i].matches(from, to) {
			f.rule = s.Links[i]
			f.hasRule = true
		}
	}
	for i := range s.Partitions {
		if s.Partitions[i].matches(from, to) {
			w := window{at: s.Partitions[i].At, heal: s.Partitions[i].Heal, heals: s.Partitions[i].Heals}
			f.partitions = append(f.partitions, w)
		}
	}
	sort.Slice(f.partitions, func(i, j int) bool { return f.partitions[i].at < f.partitions[j].at })
	return f
}

// linkFaults is a link's resolved fault configuration.
type linkFaults struct {
	rule       LinkRule
	hasRule    bool
	partitions []window
}

// window is one partition interval on a link.
type window struct {
	at, heal time.Duration
	heals    bool
}

// partitioned reports whether any partition window covers time t.
func (f *linkFaults) partitioned(t time.Duration) bool {
	for _, w := range f.partitions {
		if t >= w.at && (!w.heals || t < w.heal) {
			return true
		}
	}
	return false
}
