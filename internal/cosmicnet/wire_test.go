package cosmicnet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: MsgHello, From: 3, Text: "127.0.0.1:9999"},
		{Type: MsgModel, Seq: 42, Payload: []float64{1, -2.5, math.Pi}},
		{Type: MsgPartial, Seq: 7, From: 2, Weight: 3.5, Payload: []float64{0.25}},
		{Type: MsgDone},
		{Type: MsgGroupAggregate, Seq: 1, From: 1, Weight: 4, Payload: make([]float64, 10000)},
		{Type: MsgModel, Seq: 3, Payload: []float64{1}, TraceID: 0xdeadbeefcafe, SpanID: 0x1234},
		{Type: MsgPartial, Seq: 3, From: 5, Weight: 1, TraceID: 1, SpanID: 1 << 63, Text: "x"},
		{Type: MsgStats, From: 2, Text: `{"node":2}`},
	}
	for _, f := range frames {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Payload == nil {
			f.Payload = []float64{}
		}
		if !reflect.DeepEqual(f, got) {
			t.Errorf("round trip mismatch:\n sent %+v\n got  %+v", f, got)
		}
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	check := func(seq, from uint32, weight float64, payload []float64, text string, traceID, spanID uint64) bool {
		if math.IsNaN(weight) {
			return true
		}
		for _, v := range payload {
			if math.IsNaN(v) {
				return true
			}
		}
		f := &Frame{Type: MsgPartial, Seq: seq, From: from, Weight: weight, Payload: payload, Text: text,
			TraceID: traceID, SpanID: spanID}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		if got.Seq != seq || got.From != from || got.Weight != weight || got.Text != text {
			return false
		}
		if got.TraceID != traceID || got.SpanID != spanID {
			return false
		}
		if len(got.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// The untraced half of the space, explicitly: trace/span zero must take
	// the legacy encoding path.
	untraced := func(seq, from uint32, payload []float64) bool {
		for _, v := range payload {
			if math.IsNaN(v) {
				return true
			}
		}
		f := &Frame{Type: MsgModel, Seq: seq, From: from, Payload: payload}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			return false
		}
		if buf.Bytes()[4]&flagTrace != 0 {
			return false // untraced frame must not set the extension flag
		}
		got, err := ReadFrame(&buf)
		return err == nil && got.TraceID == 0 && got.SpanID == 0 && got.Seq == seq
	}
	if err := quick.Check(untraced, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// readLegacyFrame is a copy of the pre-trace reader: fixed 25-byte header,
// no extension awareness. It stands in for an old binary on the other end
// of the connection.
func readLegacyFrame(r io.Reader) (*Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	total := binary.LittleEndian.Uint32(lenBuf[:])
	if total < headerBytes || total > MaxFrameBytes {
		return nil, fmt.Errorf("bad frame length %d", total)
	}
	buf := make([]byte, total)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	f := &Frame{
		Type:   MsgType(buf[0]),
		Seq:    binary.LittleEndian.Uint32(buf[1:]),
		From:   binary.LittleEndian.Uint32(buf[5:]),
		Weight: math.Float64frombits(binary.LittleEndian.Uint64(buf[9:])),
	}
	textLen := binary.LittleEndian.Uint32(buf[17:])
	payloadLen := binary.LittleEndian.Uint32(buf[21:])
	if uint32(len(buf)) != headerBytes+textLen+payloadLen*8 {
		return nil, fmt.Errorf("inconsistent frame")
	}
	f.Text = string(buf[headerBytes : headerBytes+textLen])
	f.Payload = make([]float64, payloadLen)
	off := headerBytes + int(textLen)
	for i := range f.Payload {
		f.Payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return f, nil
}

// TestOldReaderNewWriterCompatibility: a new writer's untraced frames are
// byte-identical to the legacy format, so a pre-trace reader parses them.
func TestOldReaderNewWriterCompatibility(t *testing.T) {
	check := func(seq, from uint32, weight float64, payload []float64, text string) bool {
		if math.IsNaN(weight) {
			return true
		}
		for _, v := range payload {
			if math.IsNaN(v) {
				return true
			}
		}
		f := &Frame{Type: MsgPartial, Seq: seq, From: from, Weight: weight, Payload: payload, Text: text}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			return false
		}
		got, err := readLegacyFrame(&buf)
		if err != nil {
			return false
		}
		if got.Seq != seq || got.From != from || got.Weight != weight || got.Text != text {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// And a traced frame is visibly not legacy: the flag bit is set and the
	// extension bytes sit between the fixed header and the text.
	f := &Frame{Type: MsgModel, Seq: 9, TraceID: 0xa1b2c3d4e5f60708, SpanID: 0x1122334455667788, Text: "hi"}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if raw[4]&flagTrace == 0 {
		t.Fatal("traced frame missing extension flag")
	}
	if got := binary.LittleEndian.Uint64(raw[4+headerBytes:]); got != f.TraceID {
		t.Errorf("trace ID at extension offset = %#x, want %#x", got, f.TraceID)
	}
	if got := binary.LittleEndian.Uint64(raw[4+headerBytes+8:]); got != f.SpanID {
		t.Errorf("span ID at extension offset = %#x, want %#x", got, f.SpanID)
	}
	if got := string(raw[4+headerBytes+traceExtBytes:]); got != "hi" {
		t.Errorf("text after extension = %q", got)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	// Length below the header size.
	var buf bytes.Buffer
	buf.Write([]byte{1, 0, 0, 0})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("expected error for undersized frame")
	}
	// Length exceeding the cap.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("expected error for oversized frame")
	}
	// Inconsistent inner lengths.
	f := &Frame{Type: MsgModel, Payload: []float64{1, 2}}
	buf.Reset()
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4+21] = 0xee // corrupt the text length
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("expected error for inconsistent frame")
	}
	// Truncated stream.
	if _, err := ReadFrame(bytes.NewReader(raw[:8])); err == nil {
		t.Error("expected error for truncated frame")
	}
}

func TestLoopbackConn(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Frame, 1)
	go func() {
		conn, err := ln.AcceptConn()
		if err != nil {
			done <- nil
			return
		}
		defer conn.Close()
		f, err := conn.Recv()
		if err != nil {
			done <- nil
			return
		}
		_ = conn.Send(&Frame{Type: MsgAck, Seq: f.Seq})
		done <- f
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(&Frame{Type: MsgModel, Seq: 9, Payload: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	ack, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != MsgAck || ack.Seq != 9 {
		t.Errorf("ack = %+v", ack)
	}
	if f := <-done; f == nil || len(f.Payload) != 3 {
		t.Errorf("server frame = %+v", f)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if MsgModel.String() != "model" || MsgType(99).String() == "" {
		t.Error("bad MsgType strings")
	}
}

func TestConnByteAccounting(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan int64, 1)
	go func() {
		conn, err := ln.AcceptConn()
		if err != nil {
			done <- -1
			return
		}
		defer conn.Close()
		if _, err := conn.Recv(); err != nil {
			done <- -1
			return
		}
		done <- conn.BytesReceived()
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(&Frame{Type: MsgModel, Payload: make([]float64, 100)}); err != nil {
		t.Fatal(err)
	}
	sent := c.BytesSent()
	if sent < 800 { // 100 float64s plus framing
		t.Errorf("sent %d bytes, expected at least the payload", sent)
	}
	if got := <-done; got != sent {
		t.Errorf("receiver counted %d bytes, sender %d", got, sent)
	}
}
