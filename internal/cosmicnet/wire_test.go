package cosmicnet

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: MsgHello, From: 3, Text: "127.0.0.1:9999"},
		{Type: MsgModel, Seq: 42, Payload: []float64{1, -2.5, math.Pi}},
		{Type: MsgPartial, Seq: 7, From: 2, Weight: 3.5, Payload: []float64{0.25}},
		{Type: MsgDone},
		{Type: MsgGroupAggregate, Seq: 1, From: 1, Weight: 4, Payload: make([]float64, 10000)},
	}
	for _, f := range frames {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Payload == nil {
			f.Payload = []float64{}
		}
		if !reflect.DeepEqual(f, got) {
			t.Errorf("round trip mismatch:\n sent %+v\n got  %+v", f, got)
		}
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	check := func(seq, from uint32, weight float64, payload []float64, text string) bool {
		if math.IsNaN(weight) {
			return true
		}
		for _, v := range payload {
			if math.IsNaN(v) {
				return true
			}
		}
		f := &Frame{Type: MsgPartial, Seq: seq, From: from, Weight: weight, Payload: payload, Text: text}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		if got.Seq != seq || got.From != from || got.Weight != weight || got.Text != text {
			return false
		}
		if len(got.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	// Length below the header size.
	var buf bytes.Buffer
	buf.Write([]byte{1, 0, 0, 0})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("expected error for undersized frame")
	}
	// Length exceeding the cap.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("expected error for oversized frame")
	}
	// Inconsistent inner lengths.
	f := &Frame{Type: MsgModel, Payload: []float64{1, 2}}
	buf.Reset()
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4+21] = 0xee // corrupt the text length
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("expected error for inconsistent frame")
	}
	// Truncated stream.
	if _, err := ReadFrame(bytes.NewReader(raw[:8])); err == nil {
		t.Error("expected error for truncated frame")
	}
}

func TestLoopbackConn(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Frame, 1)
	go func() {
		conn, err := ln.AcceptConn()
		if err != nil {
			done <- nil
			return
		}
		defer conn.Close()
		f, err := conn.Recv()
		if err != nil {
			done <- nil
			return
		}
		_ = conn.Send(&Frame{Type: MsgAck, Seq: f.Seq})
		done <- f
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(&Frame{Type: MsgModel, Seq: 9, Payload: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	ack, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != MsgAck || ack.Seq != 9 {
		t.Errorf("ack = %+v", ack)
	}
	if f := <-done; f == nil || len(f.Payload) != 3 {
		t.Errorf("server frame = %+v", f)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if MsgModel.String() != "model" || MsgType(99).String() == "" {
		t.Error("bad MsgType strings")
	}
}

func TestConnByteAccounting(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan int64, 1)
	go func() {
		conn, err := ln.AcceptConn()
		if err != nil {
			done <- -1
			return
		}
		defer conn.Close()
		if _, err := conn.Recv(); err != nil {
			done <- -1
			return
		}
		done <- conn.BytesReceived()
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(&Frame{Type: MsgModel, Payload: make([]float64, 100)}); err != nil {
		t.Fatal(err)
	}
	sent := c.BytesSent()
	if sent < 800 { // 100 float64s plus framing
		t.Errorf("sent %d bytes, expected at least the payload", sent)
	}
	if got := <-done; got != sent {
		t.Errorf("receiver counted %d bytes, sender %d", got, sent)
	}
}
