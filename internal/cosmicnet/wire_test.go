package cosmicnet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: MsgHello, From: 3, Text: "127.0.0.1:9999"},
		{Type: MsgModel, Seq: 42, Payload: []float64{1, -2.5, math.Pi}},
		{Type: MsgPartial, Seq: 7, From: 2, Weight: 3.5, Payload: []float64{0.25}},
		{Type: MsgDone},
		{Type: MsgGroupAggregate, Seq: 1, From: 1, Weight: 4, Payload: make([]float64, 10000)},
		{Type: MsgModel, Seq: 3, Payload: []float64{1}, TraceID: 0xdeadbeefcafe, SpanID: 0x1234},
		{Type: MsgPartial, Seq: 3, From: 5, Weight: 1, TraceID: 1, SpanID: 1 << 63, Text: "x"},
		{Type: MsgStats, From: 2, Text: `{"node":2}`},
	}
	for _, f := range frames {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Payload == nil {
			f.Payload = []float64{}
		}
		if !reflect.DeepEqual(f, got) {
			t.Errorf("round trip mismatch:\n sent %+v\n got  %+v", f, got)
		}
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	check := func(seq, from uint32, weight float64, payload []float64, text string, traceID, spanID uint64) bool {
		if math.IsNaN(weight) {
			return true
		}
		for _, v := range payload {
			if math.IsNaN(v) {
				return true
			}
		}
		f := &Frame{Type: MsgPartial, Seq: seq, From: from, Weight: weight, Payload: payload, Text: text,
			TraceID: traceID, SpanID: spanID}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		if got.Seq != seq || got.From != from || got.Weight != weight || got.Text != text {
			return false
		}
		if got.TraceID != traceID || got.SpanID != spanID {
			return false
		}
		if len(got.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// The untraced half of the space, explicitly: trace/span zero must take
	// the legacy encoding path.
	untraced := func(seq, from uint32, payload []float64) bool {
		for _, v := range payload {
			if math.IsNaN(v) {
				return true
			}
		}
		f := &Frame{Type: MsgModel, Seq: seq, From: from, Payload: payload}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			return false
		}
		if buf.Bytes()[4]&flagTrace != 0 {
			return false // untraced frame must not set the extension flag
		}
		got, err := ReadFrame(&buf)
		return err == nil && got.TraceID == 0 && got.SpanID == 0 && got.Seq == seq
	}
	if err := quick.Check(untraced, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// readLegacyFrame is a copy of the pre-trace reader: fixed 25-byte header,
// no extension awareness. It stands in for an old binary on the other end
// of the connection.
func readLegacyFrame(r io.Reader) (*Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	total := binary.LittleEndian.Uint32(lenBuf[:])
	if total < headerBytes || total > MaxFrameBytes {
		return nil, fmt.Errorf("bad frame length %d", total)
	}
	buf := make([]byte, total)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	f := &Frame{
		Type:   MsgType(buf[0]),
		Seq:    binary.LittleEndian.Uint32(buf[1:]),
		From:   binary.LittleEndian.Uint32(buf[5:]),
		Weight: math.Float64frombits(binary.LittleEndian.Uint64(buf[9:])),
	}
	textLen := binary.LittleEndian.Uint32(buf[17:])
	payloadLen := binary.LittleEndian.Uint32(buf[21:])
	if uint32(len(buf)) != headerBytes+textLen+payloadLen*8 {
		return nil, fmt.Errorf("inconsistent frame")
	}
	f.Text = string(buf[headerBytes : headerBytes+textLen])
	f.Payload = make([]float64, payloadLen)
	off := headerBytes + int(textLen)
	for i := range f.Payload {
		f.Payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return f, nil
}

// TestOldReaderNewWriterCompatibility: a new writer's untraced frames are
// byte-identical to the legacy format, so a pre-trace reader parses them.
func TestOldReaderNewWriterCompatibility(t *testing.T) {
	check := func(seq, from uint32, weight float64, payload []float64, text string) bool {
		if math.IsNaN(weight) {
			return true
		}
		for _, v := range payload {
			if math.IsNaN(v) {
				return true
			}
		}
		f := &Frame{Type: MsgPartial, Seq: seq, From: from, Weight: weight, Payload: payload, Text: text}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			return false
		}
		got, err := readLegacyFrame(&buf)
		if err != nil {
			return false
		}
		if got.Seq != seq || got.From != from || got.Weight != weight || got.Text != text {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// And a traced frame is visibly not legacy: the flag bit is set and the
	// extension bytes sit between the fixed header and the text.
	f := &Frame{Type: MsgModel, Seq: 9, TraceID: 0xa1b2c3d4e5f60708, SpanID: 0x1122334455667788, Text: "hi"}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if raw[4]&flagTrace == 0 {
		t.Fatal("traced frame missing extension flag")
	}
	if got := binary.LittleEndian.Uint64(raw[4+headerBytes:]); got != f.TraceID {
		t.Errorf("trace ID at extension offset = %#x, want %#x", got, f.TraceID)
	}
	if got := binary.LittleEndian.Uint64(raw[4+headerBytes+8:]); got != f.SpanID {
		t.Errorf("span ID at extension offset = %#x, want %#x", got, f.SpanID)
	}
	if got := string(raw[4+headerBytes+traceExtBytes:]); got != "hi" {
		t.Errorf("text after extension = %q", got)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	// Length below the header size.
	var buf bytes.Buffer
	buf.Write([]byte{1, 0, 0, 0})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("expected error for undersized frame")
	}
	// Length exceeding the cap.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("expected error for oversized frame")
	}
	// Inconsistent inner lengths.
	f := &Frame{Type: MsgModel, Payload: []float64{1, 2}}
	buf.Reset()
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4+21] = 0xee // corrupt the text length
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("expected error for inconsistent frame")
	}
	// Truncated stream.
	if _, err := ReadFrame(bytes.NewReader(raw[:8])); err == nil {
		t.Error("expected error for truncated frame")
	}
}

func TestChunkedFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: MsgPartial, Seq: 4, From: 2, Weight: 1, ChunkIndex: 0, ChunkCount: 3, ChunkOffset: 0,
			Payload: []float64{1, 2, 3, 4}},
		{Type: MsgPartial, Seq: 4, From: 2, Weight: 1, ChunkIndex: 2, ChunkCount: 3, ChunkOffset: 8,
			Payload: []float64{9}},
		{Type: MsgGroupAggregate, Seq: 1, From: 1, Weight: 3, ChunkIndex: 1, ChunkCount: 2, ChunkOffset: 4096,
			Payload: make([]float64, 4096), TraceID: 77, SpanID: 12},
		{Type: MsgPartial, ChunkIndex: 0, ChunkCount: 1}, // empty chunk payload
	}
	for _, f := range frames {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.Payload == nil {
			f.Payload = []float64{}
		}
		if !reflect.DeepEqual(f, got) {
			t.Errorf("chunked round trip mismatch:\n sent %+v\n got  %+v", f, got)
		}
		if !got.Chunked() {
			t.Errorf("decoded chunk frame not Chunked(): %+v", got)
		}
	}
}

func TestChunkedFrameRoundTripProperty(t *testing.T) {
	check := func(seq, from, count, index, offset uint32, payload []float64, traceID uint64) bool {
		for _, v := range payload {
			if math.IsNaN(v) {
				return true
			}
		}
		if count == 0 {
			count = 1
		}
		index %= count
		f := &Frame{Type: MsgPartial, Seq: seq, From: from, Weight: 1, Payload: payload,
			ChunkIndex: index, ChunkCount: count, ChunkOffset: offset, TraceID: traceID}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		if got.ChunkIndex != index || got.ChunkCount != count || got.ChunkOffset != offset {
			return false
		}
		if got.TraceID != traceID || got.Seq != seq || len(got.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// The unchunked half of the space: chunk count zero must take the legacy
	// encoding path, flag clear.
	unchunked := func(seq uint32, payload []float64) bool {
		for _, v := range payload {
			if math.IsNaN(v) {
				return true
			}
		}
		f := &Frame{Type: MsgPartial, Seq: seq, Weight: 1, Payload: payload}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			return false
		}
		if buf.Bytes()[4]&flagChunk != 0 {
			return false
		}
		got, err := ReadFrame(&buf)
		return err == nil && !got.Chunked() && got.ChunkOffset == 0
	}
	if err := quick.Check(unchunked, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestOldReaderRejectsChunkedFrames: the compatibility contract is that an
// old binary visibly rejects (rather than silently misparses) frames
// carrying the chunk extension, mirroring the trace-flag discipline.
func TestOldReaderRejectsChunkedFrames(t *testing.T) {
	f := &Frame{Type: MsgPartial, Seq: 5, From: 3, Weight: 1,
		ChunkIndex: 1, ChunkCount: 4, ChunkOffset: 4096, Payload: []float64{1, 2}}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	if _, err := readLegacyFrame(&buf); err == nil {
		t.Fatal("legacy reader accepted a chunk-flagged frame")
	}
	// Chunk + trace combined must also be rejected.
	f.TraceID, f.SpanID = 9, 9
	buf.Reset()
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	if _, err := readLegacyFrame(&buf); err == nil {
		t.Fatal("legacy reader accepted a chunk+trace frame")
	}
}

// TestChunkExtensionLayout pins the wire layout: trace extension first,
// chunk extension second, text after both.
func TestChunkExtensionLayout(t *testing.T) {
	f := &Frame{Type: MsgModel, Seq: 9, TraceID: 0xa1, SpanID: 0xb2,
		ChunkIndex: 3, ChunkCount: 7, ChunkOffset: 12288, Text: "hi"}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if raw[4]&flagTrace == 0 || raw[4]&flagChunk == 0 {
		t.Fatalf("type byte %#x missing extension flags", raw[4])
	}
	chunkOff := 4 + headerBytes + traceExtBytes
	if got := binary.LittleEndian.Uint32(raw[chunkOff:]); got != 3 {
		t.Errorf("chunk index on wire = %d, want 3", got)
	}
	if got := binary.LittleEndian.Uint32(raw[chunkOff+4:]); got != 7 {
		t.Errorf("chunk count on wire = %d, want 7", got)
	}
	if got := binary.LittleEndian.Uint32(raw[chunkOff+8:]); got != 12288 {
		t.Errorf("chunk offset on wire = %d, want 12288", got)
	}
	if got := string(raw[chunkOff+chunkExtBytes:]); got != "hi" {
		t.Errorf("text after chunk extension = %q", got)
	}
}

func TestWriteFrameRejectsBadChunkFields(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: MsgPartial, ChunkIndex: 2, ChunkCount: 2}); err == nil {
		t.Error("expected error for chunk index >= count")
	}
	if err := WriteFrame(&buf, &Frame{Type: MsgPartial, ChunkIndex: 1}); err == nil {
		t.Error("expected error for chunk index without count")
	}
	if err := WriteFrame(&buf, &Frame{Type: MsgPartial, ChunkOffset: 8}); err == nil {
		t.Error("expected error for chunk offset without count")
	}
}

func TestReadFrameRejectsBadChunkExtension(t *testing.T) {
	f := &Frame{Type: MsgPartial, ChunkIndex: 1, ChunkCount: 4, Payload: []float64{1}}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Zero out the chunk count on the wire: index 1 of count 0 is invalid.
	binary.LittleEndian.PutUint32(raw[4+headerBytes+4:], 0)
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("expected error for chunk count 0 with flag set")
	}
}

// TestReadFrameRejectsOverflowingPayloadLength crafts a frame whose payload
// length field wraps uint32 multiplication (payloadLen*8 ≡ 0 mod 2^32): a
// 32-bit consistency check would accept it and the decode loop would run
// off the buffer. The reader must reject it as inconsistent.
func TestReadFrameRejectsOverflowingPayloadLength(t *testing.T) {
	raw := make([]byte, 4+headerBytes)
	binary.LittleEndian.PutUint32(raw[0:], headerBytes) // total = bare header
	raw[4] = byte(MsgModel)
	binary.LittleEndian.PutUint32(raw[4+17:], 0)     // textLen
	binary.LittleEndian.PutUint32(raw[4+21:], 1<<29) // payloadLen*8 wraps to 0
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected error for uint32-overflowing payload length")
	}
}

func TestConfigurableFrameCap(t *testing.T) {
	defer SetMaxFrameBytes(0) // restore default
	SetMaxFrameBytes(256)
	if FrameCap() != 256 {
		t.Fatalf("FrameCap() = %d after SetMaxFrameBytes(256)", FrameCap())
	}
	big := &Frame{Type: MsgModel, Payload: make([]float64, 1024)}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, big); err == nil {
		t.Error("expected writer to enforce the cap")
	}
	// A frame written under a looser cap must be rejected by a tighter
	// reader before any allocation.
	SetMaxFrameBytes(1 << 20)
	buf.Reset()
	if err := WriteFrame(&buf, big); err != nil {
		t.Fatal(err)
	}
	SetMaxFrameBytes(256)
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("expected reader to enforce the cap")
	}
	SetMaxFrameBytes(0)
	if FrameCap() != MaxFrameBytes {
		t.Errorf("FrameCap() = %d after reset, want default", FrameCap())
	}
}

// TestFrameIOAllocs enforces the pooling contract: steady-state send and
// receive of a data frame stay within the O(1)-allocation budget (the
// acceptance bar is ≤2 allocs per direction).
func TestFrameIOAllocs(t *testing.T) {
	f := &Frame{Type: MsgPartial, Seq: 1, From: 2, Weight: 1,
		ChunkIndex: 0, ChunkCount: 2, ChunkOffset: 0, Payload: make([]float64, 4096)}
	var enc bytes.Buffer
	if err := WriteFrame(&enc, f); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), enc.Bytes()...)

	sendAllocs := testing.AllocsPerRun(200, func() {
		if err := WriteFrame(io.Discard, f); err != nil {
			t.Fatal(err)
		}
	})
	if sendAllocs > 2 {
		t.Errorf("send allocates %.1f per frame, want <= 2", sendAllocs)
	}

	var into Frame
	r := bytes.NewReader(raw)
	recvAllocs := testing.AllocsPerRun(200, func() {
		r.Reset(raw)
		if err := ReadFrameInto(r, &into); err != nil {
			t.Fatal(err)
		}
	})
	if recvAllocs > 2 {
		t.Errorf("recv allocates %.1f per frame, want <= 2", recvAllocs)
	}
	if len(into.Payload) != 4096 || into.ChunkCount != 2 {
		t.Errorf("decoded frame = %+v", &into)
	}
}

// TestRecvIntoOverwritesEveryField: a reused Frame must not leak the
// previous frame's extension fields into the next decode.
func TestRecvIntoOverwritesEveryField(t *testing.T) {
	first := &Frame{Type: MsgPartial, Seq: 1, From: 2, Weight: 3, Text: "x",
		TraceID: 7, SpanID: 8, ChunkIndex: 1, ChunkCount: 2, ChunkOffset: 4, Payload: []float64{1, 2}}
	second := &Frame{Type: MsgAck, Seq: 9}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, first); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, second); err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := ReadFrameInto(&buf, &f); err != nil {
		t.Fatal(err)
	}
	if err := ReadFrameInto(&buf, &f); err != nil {
		t.Fatal(err)
	}
	if f.TraceID != 0 || f.SpanID != 0 || f.Chunked() || f.ChunkOffset != 0 ||
		f.Text != "" || f.Weight != 0 || len(f.Payload) != 0 {
		t.Errorf("stale fields after RecvInto reuse: %+v", &f)
	}
}

func TestPayloadPool(t *testing.T) {
	p := GetPayload(128)
	if len(p) != 128 {
		t.Fatalf("GetPayload(128) length %d", len(p))
	}
	for i := range p {
		p[i] = float64(i)
	}
	PutPayload(p)
	q := GetPayload(64)
	if len(q) != 64 {
		t.Fatalf("GetPayload(64) length %d", len(q))
	}
	PutPayload(q)
	PutPayload(nil) // must not panic
}

func TestLoopbackConn(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Frame, 1)
	go func() {
		conn, err := ln.AcceptConn()
		if err != nil {
			done <- nil
			return
		}
		defer conn.Close()
		f, err := conn.Recv()
		if err != nil {
			done <- nil
			return
		}
		_ = conn.Send(&Frame{Type: MsgAck, Seq: f.Seq})
		done <- f
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(&Frame{Type: MsgModel, Seq: 9, Payload: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	ack, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != MsgAck || ack.Seq != 9 {
		t.Errorf("ack = %+v", ack)
	}
	if f := <-done; f == nil || len(f.Payload) != 3 {
		t.Errorf("server frame = %+v", f)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if MsgModel.String() != "model" || MsgType(99).String() == "" {
		t.Error("bad MsgType strings")
	}
}

func TestConnByteAccounting(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan int64, 1)
	go func() {
		conn, err := ln.AcceptConn()
		if err != nil {
			done <- -1
			return
		}
		defer conn.Close()
		if _, err := conn.Recv(); err != nil {
			done <- -1
			return
		}
		done <- conn.BytesReceived()
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(&Frame{Type: MsgModel, Payload: make([]float64, 100)}); err != nil {
		t.Fatal(err)
	}
	sent := c.BytesSent()
	if sent < 800 { // 100 float64s plus framing
		t.Errorf("sent %d bytes, expected at least the payload", sent)
	}
	if got := <-done; got != sent {
		t.Errorf("receiver counted %d bytes, sender %d", got, sent)
	}
}
