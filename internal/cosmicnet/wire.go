// Package cosmicnet is the wire layer of CoSMIC's system software: a
// length-prefixed binary framing protocol over TCP that Sigma and Delta
// nodes use to exchange model parameters, partial gradient updates, and
// control messages. The paper's system targets commodity networking ("the
// nodes communicate through conventional TCP/IP stack via a NIC"); this
// package is the same design over Go's net.Conn.
package cosmicnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
)

// MsgType discriminates frames on the wire.
type MsgType uint8

// Message types.
const (
	// MsgHello registers a node with the director, carrying its listen
	// address.
	MsgHello MsgType = iota + 1
	// MsgConfig tells a node its role, group, peers, and training
	// hyperparameters.
	MsgConfig
	// MsgModel broadcasts the current model parameters for the next
	// mini-batch.
	MsgModel
	// MsgPartial carries a node's locally aggregated partial update to its
	// group Sigma node.
	MsgPartial
	// MsgGroupAggregate carries a group Sigma's combined partial to the
	// master Sigma.
	MsgGroupAggregate
	// MsgDone ends training.
	MsgDone
	// MsgAck acknowledges a control message.
	MsgAck
)

const (
	// MsgStats is the metrics-federation round trip on the Director's
	// control plane: an empty request from the director, answered by a
	// frame whose Text is the node's JSON status + Prometheus exposition.
	MsgStats MsgType = iota + 8
)

var msgNames = map[MsgType]string{
	MsgHello: "hello", MsgConfig: "config", MsgModel: "model",
	MsgPartial: "partial", MsgGroupAggregate: "group-aggregate",
	MsgDone: "done", MsgAck: "ack", MsgStats: "stats",
}

// String names the message type.
func (t MsgType) String() string {
	if s, ok := msgNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// DataFrame reports whether t carries vector payload (model broadcasts,
// partial updates, group aggregates) as opposed to control traffic. The
// chaos transport's data-only fault rules key on this split: dropping a
// partial degrades a round, dropping a MsgDone wedges shutdown.
func (t MsgType) DataFrame() bool {
	return t == MsgModel || t == MsgPartial || t == MsgGroupAggregate
}

// TypeOf extracts the message type from a raw wire type byte, stripping the
// extension flags. It lets frame-boundary middleware (the chaos transport)
// classify frames without knowing the flag layout.
func TypeOf(typeByte byte) MsgType { return MsgType(typeByte &^ flagMask) }

// Frame is one protocol message.
type Frame struct {
	Type MsgType
	// Seq is the mini-batch sequence number (for Model/Partial frames).
	Seq uint32
	// From is the sender's node ID.
	From uint32
	// Weight is the aggregation credit a Partial/GroupAggregate carries
	// (number of node partials behind the payload).
	Weight float64
	// Payload is the vector body for data frames or an encoded control
	// blob for control frames.
	Payload []float64
	// Text carries small string payloads (e.g. the Hello listen address).
	Text string
	// TraceID identifies the distributed operation (one training round)
	// this frame belongs to; SpanID identifies the individual send, so a
	// trace merger can draw a flow arrow from the sender's span to every
	// receiver's span. Both are optional: a frame with neither set encodes
	// byte-identically to the pre-trace wire format.
	TraceID, SpanID uint64
	// ChunkIndex/ChunkCount/ChunkOffset carry the streaming-aggregation
	// chunk extension: a data frame whose Payload is chunk ChunkIndex of
	// ChunkCount fixed-boundary sub-vectors of one contribution, starting
	// at element ChunkOffset of the full vector. A frame is chunked iff
	// ChunkCount > 0; unchunked frames encode byte-identically to the
	// pre-chunk wire format.
	ChunkIndex, ChunkCount, ChunkOffset uint32
}

// Chunked reports whether the frame carries the chunk extension.
func (f *Frame) Chunked() bool { return f.ChunkCount > 0 }

// MaxFrameBytes is the default bound on a frame's wire size; a frame larger
// than this is corrupt (the largest legitimate payload is a full model
// vector). SetMaxFrameBytes tightens or relaxes the bound at runtime.
const MaxFrameBytes = 256 << 20

// frameCap is the live frame-size bound, checked on both encode and decode
// before any allocation happens.
var frameCap atomic.Int64

func init() { frameCap.Store(MaxFrameBytes) }

// SetMaxFrameBytes bounds the wire size of every subsequently encoded or
// decoded frame. Receiving a length prefix above the bound fails the frame
// before allocating, so a corrupt or malicious peer cannot induce an
// arbitrarily large allocation. Values below the fixed header size or zero
// restore the default.
func SetMaxFrameBytes(n int) {
	if n < headerBytes {
		n = MaxFrameBytes
	}
	frameCap.Store(int64(n))
}

// FrameCap returns the current frame-size bound.
func FrameCap() int { return int(frameCap.Load()) }

// header: type(1) seq(4) from(4) weight(8) textLen(4) payloadLen(4)
const headerBytes = 25

// bufPool recycles encode/decode scratch buffers so steady-state frame I/O
// is allocation-free.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getBuf returns a pooled byte slice of length n. The caller owns the
// buffer and must return it with putBuf.
//
//cosmic:owns
func getBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putBuf(bp *[]byte) { bufPool.Put(bp) }

// payloadPool recycles decoded payload vectors. The runtime returns a
// received chunk's payload here once it has been folded into the
// aggregation buffer, closing the loop so a streaming round recycles a
// handful of buffers instead of allocating one per frame.
var payloadPool = sync.Pool{
	New: func() any {
		p := make([]float64, 0)
		return &p
	},
}

// GetPayload returns a pooled []float64 of length n (contents undefined).
// The caller owns the buffer and must hand it back with PutPayload once it
// is folded or forwarded.
//
//cosmic:owns
func GetPayload(n int) []float64 {
	pp := payloadPool.Get().(*[]float64)
	p := *pp
	if cap(p) < n {
		p = make([]float64, n)
	}
	return p[:n]
}

// PutPayload recycles a payload slice obtained from GetPayload or a decoded
// frame. The caller must not use the slice afterwards.
func PutPayload(p []float64) {
	if cap(p) == 0 {
		return
	}
	p = p[:0]
	payloadPool.Put(&p)
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, f *Frame) error {
	_, err := writeFrame(w, f)
	return err
}

// writeFrame reports the bytes written.
func writeFrame(w io.Writer, f *Frame) (int, error) {
	traced := f.TraceID != 0 || f.SpanID != 0
	chunked := f.ChunkCount > 0
	if !chunked && (f.ChunkIndex != 0 || f.ChunkOffset != 0) {
		return 0, fmt.Errorf("cosmicnet: chunk index/offset set without chunk count")
	}
	if chunked && f.ChunkIndex >= f.ChunkCount {
		return 0, fmt.Errorf("cosmicnet: chunk index %d out of range for count %d", f.ChunkIndex, f.ChunkCount)
	}
	ext := 0
	if traced {
		ext += traceExtBytes
	}
	if chunked {
		ext += chunkExtBytes
	}
	textLen := len(f.Text)
	payloadLen := len(f.Payload) * 8
	total := headerBytes + ext + textLen + payloadLen
	if int64(total) > frameCap.Load() {
		return 0, fmt.Errorf("cosmicnet: frame of %d bytes exceeds limit %d", total, FrameCap())
	}
	bp := getBuf(4 + total)
	defer putBuf(bp)
	buf := *bp
	binary.LittleEndian.PutUint32(buf[0:], uint32(total))
	typeByte := byte(f.Type)
	if traced {
		typeByte |= flagTrace
	}
	if chunked {
		typeByte |= flagChunk
	}
	buf[4] = typeByte
	binary.LittleEndian.PutUint32(buf[5:], f.Seq)
	binary.LittleEndian.PutUint32(buf[9:], f.From)
	binary.LittleEndian.PutUint64(buf[13:], math.Float64bits(f.Weight))
	binary.LittleEndian.PutUint32(buf[21:], uint32(textLen))
	binary.LittleEndian.PutUint32(buf[25:], uint32(len(f.Payload)))
	off := 29
	if traced {
		binary.LittleEndian.PutUint64(buf[off:], f.TraceID)
		binary.LittleEndian.PutUint64(buf[off+8:], f.SpanID)
		off += traceExtBytes
	}
	if chunked {
		binary.LittleEndian.PutUint32(buf[off:], f.ChunkIndex)
		binary.LittleEndian.PutUint32(buf[off+4:], f.ChunkCount)
		binary.LittleEndian.PutUint32(buf[off+8:], f.ChunkOffset)
		off += chunkExtBytes
	}
	copy(buf[off:], f.Text)
	off += textLen
	for _, v := range f.Payload {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	n, err := w.Write(buf)
	return n, err
}

// ReadFrame reads and decodes one frame.
func ReadFrame(r io.Reader) (*Frame, error) {
	f := new(Frame)
	_, err := readFrameInto(r, f)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ReadFrameInto reads and decodes one frame into f, reusing f.Payload's
// capacity when it suffices. Every field of f is overwritten.
func ReadFrameInto(r io.Reader, f *Frame) error {
	_, err := readFrameInto(r, f)
	return err
}

// readFrameInto reports the bytes consumed.
func readFrameInto(r io.Reader, f *Frame) (int, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, err
	}
	total := binary.LittleEndian.Uint32(lenBuf[:])
	// Bound the length prefix before allocating anything: a corrupt peer
	// must not be able to induce an arbitrarily large allocation.
	if total < headerBytes || int64(total) > frameCap.Load() {
		return 4, fmt.Errorf("cosmicnet: bad frame length %d (cap %d)", total, FrameCap())
	}
	bp := getBuf(int(total))
	defer putBuf(bp)
	buf := *bp
	if _, err := io.ReadFull(r, buf); err != nil {
		return 4, err
	}
	traced := buf[0]&flagTrace != 0
	chunked := buf[0]&flagChunk != 0
	ext := 0
	if traced {
		ext += traceExtBytes
	}
	if chunked {
		ext += chunkExtBytes
	}
	f.Type = MsgType(buf[0] &^ flagMask)
	f.Seq = binary.LittleEndian.Uint32(buf[1:])
	f.From = binary.LittleEndian.Uint32(buf[5:])
	f.Weight = math.Float64frombits(binary.LittleEndian.Uint64(buf[9:]))
	textLen := binary.LittleEndian.Uint32(buf[17:])
	payloadLen := binary.LittleEndian.Uint32(buf[21:])
	// The consistency check is done in 64-bit arithmetic: payloadLen*8 in
	// uint32 can wrap (e.g. payloadLen = 2^29) and match total, which would
	// send the decode loop out of bounds.
	if int64(len(buf)) != int64(headerBytes)+int64(ext)+int64(textLen)+int64(payloadLen)*8 {
		return 4 + int(total), fmt.Errorf("cosmicnet: inconsistent frame: total %d, ext %d, text %d, payload %d",
			total, ext, textLen, payloadLen)
	}
	off := headerBytes
	f.TraceID, f.SpanID = 0, 0
	if traced {
		f.TraceID = binary.LittleEndian.Uint64(buf[off:])
		f.SpanID = binary.LittleEndian.Uint64(buf[off+8:])
		off += traceExtBytes
	}
	f.ChunkIndex, f.ChunkCount, f.ChunkOffset = 0, 0, 0
	if chunked {
		f.ChunkIndex = binary.LittleEndian.Uint32(buf[off:])
		f.ChunkCount = binary.LittleEndian.Uint32(buf[off+4:])
		f.ChunkOffset = binary.LittleEndian.Uint32(buf[off+8:])
		off += chunkExtBytes
		if f.ChunkCount == 0 || f.ChunkIndex >= f.ChunkCount {
			return 4 + int(total), fmt.Errorf("cosmicnet: bad chunk extension: index %d, count %d", f.ChunkIndex, f.ChunkCount)
		}
	}
	f.Text = string(buf[off : off+int(textLen)])
	off += int(textLen)
	n := int(payloadLen)
	if f.Payload == nil || cap(f.Payload) < n {
		// make([]float64, 0) is allocation-free and non-nil, keeping decoded
		// frames uniform (a decoded payload is never nil, as before).
		f.Payload = make([]float64, n)
	} else {
		f.Payload = f.Payload[:n]
	}
	for i := range f.Payload {
		f.Payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return 4 + int(total), nil
}

// Conn wraps a net.Conn with frame I/O and byte accounting (the
// communication-volume numbers Figures 13/14 reason about).
type Conn struct {
	net.Conn
	sent, received atomic.Int64
}

// Dial connects to a peer node.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{Conn: c}, nil
}

// Send writes one frame.
func (c *Conn) Send(f *Frame) error {
	n, err := writeFrame(c.Conn, f)
	c.sent.Add(int64(n))
	return err
}

// Recv reads one frame.
func (c *Conn) Recv() (*Frame, error) {
	f := new(Frame)
	n, err := readFrameInto(c.Conn, f)
	c.received.Add(int64(n))
	if err != nil {
		return nil, err
	}
	return f, nil
}

// RecvInto reads one frame into f, reusing f.Payload's capacity. Every
// field of f is overwritten.
func (c *Conn) RecvInto(f *Frame) error {
	n, err := readFrameInto(c.Conn, f)
	c.received.Add(int64(n))
	return err
}

// BytesSent returns the total frame bytes written on this connection.
func (c *Conn) BytesSent() int64 { return c.sent.Load() }

// BytesReceived returns the total frame bytes read on this connection.
func (c *Conn) BytesReceived() int64 { return c.received.Load() }

// Listener accepts framed connections.
type Listener struct {
	net.Listener
}

// Listen opens a TCP listener on addr ("127.0.0.1:0" for an ephemeral
// port).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{Listener: l}, nil
}

// AcceptConn accepts the next framed connection.
func (l *Listener) AcceptConn() (*Conn, error) {
	c, err := l.Accept()
	if err != nil {
		return nil, err
	}
	return &Conn{Conn: c}, nil
}
