// Package cosmicnet is the wire layer of CoSMIC's system software: a
// length-prefixed binary framing protocol over TCP that Sigma and Delta
// nodes use to exchange model parameters, partial gradient updates, and
// control messages. The paper's system targets commodity networking ("the
// nodes communicate through conventional TCP/IP stack via a NIC"); this
// package is the same design over Go's net.Conn.
package cosmicnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync/atomic"
)

// MsgType discriminates frames on the wire.
type MsgType uint8

// Message types.
const (
	// MsgHello registers a node with the director, carrying its listen
	// address.
	MsgHello MsgType = iota + 1
	// MsgConfig tells a node its role, group, peers, and training
	// hyperparameters.
	MsgConfig
	// MsgModel broadcasts the current model parameters for the next
	// mini-batch.
	MsgModel
	// MsgPartial carries a node's locally aggregated partial update to its
	// group Sigma node.
	MsgPartial
	// MsgGroupAggregate carries a group Sigma's combined partial to the
	// master Sigma.
	MsgGroupAggregate
	// MsgDone ends training.
	MsgDone
	// MsgAck acknowledges a control message.
	MsgAck
)

const (
	// MsgStats is the metrics-federation round trip on the Director's
	// control plane: an empty request from the director, answered by a
	// frame whose Text is the node's JSON status + Prometheus exposition.
	MsgStats MsgType = iota + 8
)

var msgNames = map[MsgType]string{
	MsgHello: "hello", MsgConfig: "config", MsgModel: "model",
	MsgPartial: "partial", MsgGroupAggregate: "group-aggregate",
	MsgDone: "done", MsgAck: "ack", MsgStats: "stats",
}

// String names the message type.
func (t MsgType) String() string {
	if s, ok := msgNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Frame is one protocol message.
type Frame struct {
	Type MsgType
	// Seq is the mini-batch sequence number (for Model/Partial frames).
	Seq uint32
	// From is the sender's node ID.
	From uint32
	// Weight is the aggregation credit a Partial/GroupAggregate carries
	// (number of node partials behind the payload).
	Weight float64
	// Payload is the vector body for data frames or an encoded control
	// blob for control frames.
	Payload []float64
	// Text carries small string payloads (e.g. the Hello listen address).
	Text string
	// TraceID identifies the distributed operation (one training round)
	// this frame belongs to; SpanID identifies the individual send, so a
	// trace merger can draw a flow arrow from the sender's span to every
	// receiver's span. Both are optional: a frame with neither set encodes
	// byte-identically to the pre-trace wire format.
	TraceID, SpanID uint64
}

// MaxFrameBytes bounds a frame's wire size; a frame larger than this is
// corrupt (the largest legitimate payload is a full model vector).
const MaxFrameBytes = 256 << 20

// header: type(1) seq(4) from(4) weight(8) textLen(4) payloadLen(4)
const headerBytes = 25

// flagTrace on the type byte marks a trace extension: traceExtBytes
// (traceID 8 + spanID 8) inserted between the fixed header and the text.
// Frames without trace context never set the flag, so a pre-trace reader
// parses a new writer's untraced frames unchanged.
const (
	flagTrace     = 0x80
	traceExtBytes = 16
)

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, f *Frame) error {
	_, err := writeFrame(w, f)
	return err
}

// writeFrame reports the bytes written.
func writeFrame(w io.Writer, f *Frame) (int, error) {
	traced := f.TraceID != 0 || f.SpanID != 0
	ext := 0
	if traced {
		ext = traceExtBytes
	}
	textLen := len(f.Text)
	payloadLen := len(f.Payload) * 8
	total := headerBytes + ext + textLen + payloadLen
	if total > MaxFrameBytes {
		return 0, fmt.Errorf("cosmicnet: frame of %d bytes exceeds limit", total)
	}
	buf := make([]byte, 4+total)
	binary.LittleEndian.PutUint32(buf[0:], uint32(total))
	typeByte := byte(f.Type)
	if traced {
		typeByte |= flagTrace
	}
	buf[4] = typeByte
	binary.LittleEndian.PutUint32(buf[5:], f.Seq)
	binary.LittleEndian.PutUint32(buf[9:], f.From)
	binary.LittleEndian.PutUint64(buf[13:], math.Float64bits(f.Weight))
	binary.LittleEndian.PutUint32(buf[21:], uint32(textLen))
	binary.LittleEndian.PutUint32(buf[25:], uint32(len(f.Payload)))
	off := 29
	if traced {
		binary.LittleEndian.PutUint64(buf[off:], f.TraceID)
		binary.LittleEndian.PutUint64(buf[off+8:], f.SpanID)
		off += traceExtBytes
	}
	copy(buf[off:], f.Text)
	off += textLen
	for _, v := range f.Payload {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	n, err := w.Write(buf)
	return n, err
}

// ReadFrame reads and decodes one frame.
func ReadFrame(r io.Reader) (*Frame, error) {
	f, _, err := readFrame(r)
	return f, err
}

// readFrame reports the bytes consumed.
func readFrame(r io.Reader) (*Frame, int, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, 0, err
	}
	total := binary.LittleEndian.Uint32(lenBuf[:])
	if total < headerBytes || total > MaxFrameBytes {
		return nil, 4, fmt.Errorf("cosmicnet: bad frame length %d", total)
	}
	buf := make([]byte, total)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, 4, err
	}
	traced := buf[0]&flagTrace != 0
	ext := uint32(0)
	if traced {
		ext = traceExtBytes
	}
	f := &Frame{
		Type:   MsgType(buf[0] &^ flagTrace),
		Seq:    binary.LittleEndian.Uint32(buf[1:]),
		From:   binary.LittleEndian.Uint32(buf[5:]),
		Weight: math.Float64frombits(binary.LittleEndian.Uint64(buf[9:])),
	}
	textLen := binary.LittleEndian.Uint32(buf[17:])
	payloadLen := binary.LittleEndian.Uint32(buf[21:])
	if uint32(len(buf)) != headerBytes+ext+textLen+payloadLen*8 {
		return nil, 4 + int(total), fmt.Errorf("cosmicnet: inconsistent frame: total %d, ext %d, text %d, payload %d",
			total, ext, textLen, payloadLen)
	}
	off := headerBytes
	if traced {
		f.TraceID = binary.LittleEndian.Uint64(buf[off:])
		f.SpanID = binary.LittleEndian.Uint64(buf[off+8:])
		off += traceExtBytes
	}
	f.Text = string(buf[off : off+int(textLen)])
	off += int(textLen)
	f.Payload = make([]float64, payloadLen)
	for i := range f.Payload {
		f.Payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return f, 4 + int(total), nil
}

// Conn wraps a net.Conn with frame I/O and byte accounting (the
// communication-volume numbers Figures 13/14 reason about).
type Conn struct {
	net.Conn
	sent, received atomic.Int64
}

// Dial connects to a peer node.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{Conn: c}, nil
}

// Send writes one frame.
func (c *Conn) Send(f *Frame) error {
	n, err := writeFrame(c.Conn, f)
	c.sent.Add(int64(n))
	return err
}

// Recv reads one frame.
func (c *Conn) Recv() (*Frame, error) {
	f, n, err := readFrame(c.Conn)
	c.received.Add(int64(n))
	return f, err
}

// BytesSent returns the total frame bytes written on this connection.
func (c *Conn) BytesSent() int64 { return c.sent.Load() }

// BytesReceived returns the total frame bytes read on this connection.
func (c *Conn) BytesReceived() int64 { return c.received.Load() }

// Listener accepts framed connections.
type Listener struct {
	net.Listener
}

// Listen opens a TCP listener on addr ("127.0.0.1:0" for an ephemeral
// port).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{Listener: l}, nil
}

// AcceptConn accepts the next framed connection.
func (l *Listener) AcceptConn() (*Conn, error) {
	c, err := l.Accept()
	if err != nil {
		return nil, err
	}
	return &Conn{Conn: c}, nil
}
