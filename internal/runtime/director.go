package runtime

import "fmt"

// Role is a node's function in the scale-out system.
type Role int

// Roles. The master Sigma is also its group's Sigma; every Sigma computes
// its own partial updates too ("the Sigma nodes compute their own partial
// gradient updates, as they are also equipped with accelerators").
const (
	RoleDelta Role = iota
	RoleGroupSigma
	RoleMasterSigma
)

var roleNames = [...]string{"delta", "group-sigma", "master-sigma"}

// String names the role.
func (r Role) String() string {
	if int(r) < len(roleNames) {
		return roleNames[r]
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// Topology is the System Director's role and group assignment: the output
// of the topmost component of the system layer, derived from the system
// specification (number of nodes, number of groups).
type Topology struct {
	Nodes  int
	Groups int
	// RoleOf[node] is the node's role.
	RoleOf []Role
	// GroupOf[node] is the node's group.
	GroupOf []int
	// SigmaOf[group] is the group's Sigma node.
	SigmaOf []int
	// Members[group] lists the group's nodes (its Sigma first).
	Members [][]int
}

// Assign derives the topology: node 0 is the master Sigma (and group 0's
// Sigma); nodes 1..groups-1 are the remaining group Sigmas; the rest are
// Delta nodes distributed round-robin over groups.
func Assign(nodes, groups int) (Topology, error) {
	if nodes < 1 {
		return Topology{}, fmt.Errorf("runtime: %d nodes", nodes)
	}
	if groups < 1 || groups > nodes {
		return Topology{}, fmt.Errorf("runtime: %d groups for %d nodes", groups, nodes)
	}
	t := Topology{
		Nodes:   nodes,
		Groups:  groups,
		RoleOf:  make([]Role, nodes),
		GroupOf: make([]int, nodes),
		SigmaOf: make([]int, groups),
		Members: make([][]int, groups),
	}
	for g := 0; g < groups; g++ {
		t.SigmaOf[g] = g
		t.GroupOf[g] = g
		t.RoleOf[g] = RoleGroupSigma
		t.Members[g] = []int{g}
	}
	t.RoleOf[0] = RoleMasterSigma
	for n := groups; n < nodes; n++ {
		g := (n - groups) % groups
		t.RoleOf[n] = RoleDelta
		t.GroupOf[n] = g
		t.Members[g] = append(t.Members[g], n)
	}
	return t, nil
}

// ExpectedContributions returns how many partials a group's Sigma waits for
// per mini-batch: one per member (including its own).
func (t Topology) ExpectedContributions(group int) int {
	return len(t.Members[group])
}

// MemberIDs returns the node IDs whose contributions the group's Sigma
// folds each round (its own included) — the ordered aggregation buffer's
// member set.
func (t Topology) MemberIDs(group int) []uint32 {
	out := make([]uint32, 0, len(t.Members[group]))
	for _, n := range t.Members[group] {
		out = append(out, uint32(n))
	}
	return out
}

// MasterMemberIDs returns the node IDs the master Sigma folds each round:
// its own group's members plus one pre-summed aggregate per other group's
// Sigma.
func (t Topology) MasterMemberIDs() []uint32 {
	out := t.MemberIDs(0)
	for g := 1; g < t.Groups; g++ {
		out = append(out, uint32(t.SigmaOf[g]))
	}
	return out
}

// Validate checks internal consistency.
func (t Topology) Validate() error {
	if t.RoleOf[0] != RoleMasterSigma {
		return fmt.Errorf("runtime: node 0 is %v, want master sigma", t.RoleOf[0])
	}
	total := 0
	for g, members := range t.Members {
		total += len(members)
		for _, n := range members {
			if t.GroupOf[n] != g {
				return fmt.Errorf("runtime: node %d listed in group %d but assigned %d", n, g, t.GroupOf[n])
			}
		}
	}
	if total != t.Nodes {
		return fmt.Errorf("runtime: %d members across groups for %d nodes", total, t.Nodes)
	}
	return nil
}
