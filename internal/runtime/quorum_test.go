package runtime

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// waitChunksTimeoutGuarded runs WaitChunksTimeout under a generous real-time
// watchdog: the historical missed-wakeup race left the waiter parked on the
// condition variable forever, which a plain call would turn into a hung test
// run instead of a failure.
func waitChunksTimeoutGuarded(t *testing.T, ab *AggregationBuffer, n int, timeout time.Duration) bool {
	t.Helper()
	done := make(chan bool, 1)
	go func() { done <- ab.WaitChunksTimeout(n, timeout) }()
	select {
	case ok := <-done:
		return ok
	case <-time.After(timeout + 10*time.Second):
		t.Fatal("WaitChunksTimeout never returned: the deadline wakeup was missed")
		return false
	}
}

// TestWaitChunksTimeoutExpiresQuiet: no chunks ever arrive, so the only
// wakeup the waiter can get is the watchdog's. Regression for the missed
// wakeup: a flagless timer broadcast could land while the waiter was between
// its deadline check and cond.Wait, after which nothing would ever wake it.
func TestWaitChunksTimeoutExpiresQuiet(t *testing.T) {
	ab := NewAggregationBuffer(64)
	start := time.Now()
	if waitChunksTimeoutGuarded(t, ab, 1, 50*time.Millisecond) {
		t.Fatal("reported chunks arrived on an empty buffer")
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("returned after %v, before the %v deadline", elapsed, 50*time.Millisecond)
	}
}

// TestWaitChunksTimeoutExpiresUnderBroadcastStorm: concurrent adds broadcast
// the condition variable continuously while the waiter's target stays
// unreachable. Every spurious wakeup re-parks the waiter, so the test churns
// through exactly the window the missed-wakeup race needed: the deadline
// broadcast must still get through.
func TestWaitChunksTimeoutExpiresUnderBroadcastStorm(t *testing.T) {
	const n = 64
	ab := NewAggregationBuffer(n)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	vec := make([]float64, n)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, c := range SplitIntoChunks(0, uint32(id), vec, 0) {
					if err := ab.Add(c); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// The target is unreachably high, so the adds only generate wakeups.
	if waitChunksTimeoutGuarded(t, ab, 1<<30, 100*time.Millisecond) {
		t.Error("reported an unreachable chunk target as satisfied")
	}
	close(stop)
	wg.Wait()
}

// TestWaitChunksTimeoutSatisfied: chunks that do arrive before the deadline
// report success, with the full chunk count folded.
func TestWaitChunksTimeoutSatisfied(t *testing.T) {
	const n = 128
	ab := NewAggregationBuffer(n)
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = 1
	}
	go func() {
		for _, c := range SplitIntoChunks(0, 1, vec, 1) {
			ab.Add(c)
		}
	}()
	if !waitChunksTimeoutGuarded(t, ab, ChunksFor(n), 10*time.Second) {
		t.Fatal("timed out waiting for chunks that were delivered")
	}
	sum, w := ab.Sum()
	if w != 1 || sum[0] != 1 {
		t.Fatalf("folded state: weight %g sum[0] %g", w, sum[0])
	}
}

// quorumMemberVec is member id's deterministic contribution: values whose
// floating-point sums are order-sensitive, so any fold-order drift shows up
// as a bitwise difference.
func quorumMemberVec(id uint32, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Sin(float64(id)*13.7 + float64(i)*0.31)
	}
	return v
}

// foldQuorum runs one quorum fold: five members, contributions from
// {1, 3, 5} only, arrival order shuffled by seed, members {2, 4} excluded —
// before the adds when excludeFirst, after them otherwise. Returns the
// folded sum and weight.
func foldQuorum(t *testing.T, n, words int, seed int64, excludeFirst bool) ([]float64, float64) {
	t.Helper()
	ab := NewAggregationBufferChunked(n, words)
	if err := ab.SetMembers([]uint32{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	ab.Reset(7)
	if excludeFirst {
		ab.Exclude([]uint32{2, 4})
	}
	var chunks []Chunk
	for _, id := range []uint32{1, 3, 5} {
		chunks = append(chunks, SplitIntoChunksWords(7, id, quorumMemberVec(id, n), 1, words)...)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
	for _, c := range chunks {
		if err := ab.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if !excludeFirst {
		ab.Exclude([]uint32{2, 4})
	}
	ok, err := ab.WaitComplete(5*time.Second, nil)
	if err != nil || !ok {
		t.Fatalf("quorum fold did not complete: ok=%v err=%v", ok, err)
	}
	sum, w := ab.Sum()
	return sum, w
}

// TestQuorumFoldDeterministic: the folded vector of a quorum round is a pure
// function of the included member set — bitwise identical across arrival
// orders, across excluding before or after the contributions land, and equal
// to the sequential rank-order fold.
func TestQuorumFoldDeterministic(t *testing.T) {
	const n, words = 300, 64
	ref, refW := foldQuorum(t, n, words, 1, false)
	if refW != 3 {
		t.Fatalf("weight %g, want 3", refW)
	}
	for seed := int64(2); seed <= 9; seed++ {
		sum, w := foldQuorum(t, n, words, seed, seed%2 == 0)
		if w != refW {
			t.Fatalf("seed %d: weight %g, want %g", seed, w, refW)
		}
		for i := range sum {
			if sum[i] != ref[i] {
				t.Fatalf("seed %d: sum[%d] = %b, want %b (fold order leaked into the result)", seed, i, sum[i], ref[i])
			}
		}
	}
	// The rank-order fold is the spec: members fold in sorted-ID order, so
	// summing the vectors sequentially 1, 3, 5 per element must match bitwise.
	want := make([]float64, n)
	for _, id := range []uint32{1, 3, 5} {
		v := quorumMemberVec(id, n)
		for i := range want {
			want[i] += v[i]
		}
	}
	for i := range want {
		if ref[i] != want[i] {
			t.Fatalf("sum[%d] = %b, want the rank-order fold %b", i, ref[i], want[i])
		}
	}
}

// TestQuorumFoldDeterministicConcurrent: concurrent contributors with the
// members {2, 4} excluded up front still produce the bitwise rank-order fold.
func TestQuorumFoldDeterministicConcurrent(t *testing.T) {
	const n, words = 300, 64
	ref, _ := foldQuorum(t, n, words, 1, false)
	for run := 0; run < 4; run++ {
		ab := NewAggregationBufferChunked(n, words)
		if err := ab.SetMembers([]uint32{1, 2, 3, 4, 5}); err != nil {
			t.Fatal(err)
		}
		ab.Reset(7)
		ab.Exclude([]uint32{2, 4})
		var wg sync.WaitGroup
		for _, id := range []uint32{1, 3, 5} {
			wg.Add(1)
			go func(id uint32) {
				defer wg.Done()
				for _, c := range SplitIntoChunksWords(7, id, quorumMemberVec(id, n), 1, words) {
					if err := ab.Add(c); err != nil {
						t.Error(err)
					}
				}
			}(id)
		}
		wg.Wait()
		ok, err := ab.WaitComplete(5*time.Second, nil)
		if err != nil || !ok {
			t.Fatalf("run %d: fold did not complete: ok=%v err=%v", run, ok, err)
		}
		sum, _ := ab.Sum()
		for i := range sum {
			if sum[i] != ref[i] {
				t.Fatalf("run %d: sum[%d] = %b, want %b", run, i, sum[i], ref[i])
			}
		}
	}
}

// TestQuorumStatusCensus tracks the member census through a partial round:
// full contributors are present, excluded members move to the excluded list,
// and a member with only part of its chunks stays missing.
func TestQuorumStatusCensus(t *testing.T) {
	const n, words = 300, 64
	ab := NewAggregationBufferChunked(n, words)
	if err := ab.SetMembers([]uint32{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	ab.Reset(3)
	for _, id := range []uint32{1, 5} {
		for _, c := range SplitIntoChunksWords(3, id, quorumMemberVec(id, n), 1, words) {
			if err := ab.Add(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Member 3 delivers only its first chunk: started, not present.
	partial := SplitIntoChunksWords(3, 3, quorumMemberVec(3, n), 1, words)
	if err := ab.Add(partial[0]); err != nil {
		t.Fatal(err)
	}
	present, excluded, missing := ab.QuorumStatus()
	if !equalIDs(present, []uint32{1, 5}) || excluded != nil || !equalIDs(missing, []uint32{2, 3, 4}) {
		t.Fatalf("census before exclusion: present=%v excluded=%v missing=%v", present, excluded, missing)
	}
	if newly := ab.Exclude([]uint32{2, 4, 99}); newly != 2 {
		t.Fatalf("Exclude reported %d newly excluded, want 2 (unknown IDs ignored)", newly)
	}
	if again := ab.Exclude([]uint32{2}); again != 0 {
		t.Fatalf("re-excluding reported %d, want 0", again)
	}
	present, excluded, missing = ab.QuorumStatus()
	if !equalIDs(present, []uint32{1, 5}) || !equalIDs(excluded, []uint32{2, 4}) || !equalIDs(missing, []uint32{3}) {
		t.Fatalf("census after exclusion: present=%v excluded=%v missing=%v", present, excluded, missing)
	}
}

// TestExcludedMemberTrafficDiscarded: chunks from an excluded member —
// whether parked before the exclusion or arriving after it — never reach the
// folded vector, and stale-round chunks are dropped silently once Reset arms
// the sequence filter.
func TestExcludedMemberTrafficDiscarded(t *testing.T) {
	const n, words = 300, 64
	ab := NewAggregationBufferChunked(n, words)
	if err := ab.SetMembers([]uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ab.Reset(9)
	// Member 2's chunks park (rank 1 waits on rank 0), then the exclusion
	// sweep must discard them.
	for _, c := range SplitIntoChunksWords(9, 2, quorumMemberVec(2, n), 1, words) {
		if err := ab.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	ab.Exclude([]uint32{2})
	for _, id := range []uint32{1, 3} {
		for _, c := range SplitIntoChunksWords(9, id, quorumMemberVec(id, n), 1, words) {
			if err := ab.Add(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Late traffic from the excluded member, and a stale round's chunk, both
	// vanish without error.
	for _, c := range SplitIntoChunksWords(9, 2, quorumMemberVec(2, n), 1, words) {
		if err := ab.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	stale := SplitIntoChunksWords(8, 1, quorumMemberVec(1, n), 1, words)
	if err := ab.Add(stale[0]); err != nil {
		t.Fatal(err)
	}
	ok, err := ab.WaitComplete(5*time.Second, nil)
	if err != nil || !ok {
		t.Fatalf("fold did not complete: ok=%v err=%v", ok, err)
	}
	sum, w := ab.Sum()
	if w != 2 {
		t.Fatalf("weight %g, want 2 (excluded member credited)", w)
	}
	want := make([]float64, n)
	for _, id := range []uint32{1, 3} {
		v := quorumMemberVec(id, n)
		for i := range want {
			want[i] += v[i]
		}
	}
	for i := range want {
		if sum[i] != want[i] {
			t.Fatalf("sum[%d] = %b, want %b (excluded traffic leaked into the fold)", i, sum[i], want[i])
		}
	}
}

func equalIDs(got, want []uint32) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
