package runtime

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dsl"
	"repro/internal/ml"
)

// TestOrderedFoldArrivalOrderInvariant: in ordered mode the accumulated sum
// is a pure function of the member set — bitwise identical no matter how
// chunk arrivals interleave — and every chunk index completes exactly once
// with the full member weight.
func TestOrderedFoldArrivalOrderInvariant(t *testing.T) {
	const n, words = 1000, 64
	members := []uint32{2, 5, 9}
	vecs := make(map[uint32][]float64, len(members))
	rng := rand.New(rand.NewSource(3))
	for _, id := range members {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		vecs[id] = v
	}

	run := func(shuffleSeed int64) []float64 {
		ab := NewAggregationBufferChunked(n, words)
		if err := ab.SetMembers(members); err != nil {
			t.Fatal(err)
		}
		completed := make(map[int]float64)
		ab.SetOnComplete(func(idx int, span []float64, weight float64) {
			if _, dup := completed[idx]; dup {
				t.Errorf("chunk %d completed twice", idx)
			}
			completed[idx] = weight
		})
		var chunks []Chunk
		for _, id := range members {
			chunks = append(chunks, SplitIntoChunksWords(0, id, vecs[id], 1, words)...)
		}
		rand.New(rand.NewSource(shuffleSeed)).Shuffle(len(chunks), func(i, j int) {
			chunks[i], chunks[j] = chunks[j], chunks[i]
		})
		for _, c := range chunks {
			if err := ab.Add(c); err != nil {
				t.Fatal(err)
			}
		}
		ok, err := ab.WaitComplete(time.Second, nil)
		if err != nil || !ok {
			t.Fatalf("WaitComplete: %v %v", ok, err)
		}
		if len(completed) != ab.ChunkCount() {
			t.Fatalf("%d chunk indexes completed, want %d", len(completed), ab.ChunkCount())
		}
		for idx, w := range completed {
			if w != float64(len(members)) {
				t.Fatalf("chunk %d completed with weight %g", idx, w)
			}
		}
		sum, w := ab.Sum()
		if w != float64(len(members)) {
			t.Fatalf("total weight %g", w)
		}
		return sum
	}

	want := run(0)
	for seed := int64(1); seed <= 8; seed++ {
		got := run(seed)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: sum[%d] = %.17g, want bitwise %.17g", seed, i, got[i], want[i])
			}
		}
	}
}

// TestOrderedFoldRejectsOffBoundaryChunks: ordered mode insists on the fixed
// boundaries the determinism argument depends on.
func TestOrderedFoldRejectsOffBoundaryChunks(t *testing.T) {
	ab := NewAggregationBufferChunked(256, 64)
	if err := ab.SetMembers([]uint32{1}); err != nil {
		t.Fatal(err)
	}
	if err := ab.Add(Chunk{From: 1, Offset: 32, Data: make([]float64, 64)}); err == nil {
		t.Error("off-boundary offset accepted")
	}
	if err := ab.Add(Chunk{From: 1, Offset: 0, Data: make([]float64, 32)}); err == nil {
		t.Error("short non-tail chunk accepted")
	}
	if err := ab.Add(Chunk{From: 9, Offset: 0, Data: make([]float64, 64)}); err == nil {
		t.Error("unknown member accepted")
	}
	if err := ab.Add(Chunk{From: 1, Offset: 0, Data: make([]float64, 64)}); err != nil {
		t.Errorf("well-formed chunk rejected: %v", err)
	}
	if err := ab.Add(Chunk{From: 1, Offset: 0, Data: make([]float64, 64)}); err == nil {
		t.Error("duplicate chunk accepted")
	}
}

// TestOrderedFoldAllocs: the local-contribution path — splitting a partial
// into aliasing chunks and folding them in order — must not allocate per
// element or per chunk (one slice header for the split is the budget).
func TestOrderedFoldAllocs(t *testing.T) {
	const n, words = 1 << 14, 1024
	ab := NewAggregationBufferChunked(n, words)
	if err := ab.SetMembers([]uint32{0}); err != nil {
		t.Fatal(err)
	}
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = float64(i)
	}
	avg := testing.AllocsPerRun(100, func() {
		ab.Reset(0)
		for _, c := range SplitIntoChunksWords(0, 0, vec, 1, words) {
			if err := ab.Add(c); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg > 1.5 {
		t.Errorf("local fold allocates %.1f objects per contribution, want <= 1 (the chunk-slice header)", avg)
	}
}

// jitterEngine delays each partial by a pseudo-random amount so member
// contributions arrive at the Sigmas in shuffled order, then defers to the
// wrapped engine. The math stays untouched — only timing moves.
type jitterEngine struct {
	inner Engine
	mu    sync.Mutex
	rng   *rand.Rand
}

func (e *jitterEngine) Name() string { return "jitter+" + e.inner.Name() }

func (e *jitterEngine) PartialUpdate(model []float64, shard []ml.Sample) ([]float64, error) {
	e.mu.Lock()
	d := time.Duration(e.rng.Intn(2500)) * time.Microsecond
	e.mu.Unlock()
	time.Sleep(d)
	return e.inner.PartialUpdate(model, shard)
}

// TestStreamingMatchesMonolithicBitwise is the streaming pipeline's
// differential test: across two model families, two chunk boundaries,
// monolithic whole-vector frames, and shuffled member arrival orders, a
// hierarchical cluster must train to the bitwise-identical model. The
// ordered member-rank fold is what makes this hold exactly, not just to
// floating-point tolerance.
func TestStreamingMatchesMonolithicBitwise(t *testing.T) {
	const nodes, groups, rounds = 6, 2, 3
	algs := []struct {
		name   string
		alg    ml.Algorithm
		labels int
	}{
		{"linreg", &ml.LinearRegression{M: 777}, 1},
		{"mlp", &ml.MLP{In: 9, Hid: 7, Out: 2}, 2},
	}
	for _, tc := range algs {
		t.Run(tc.name, func(t *testing.T) {
			alg := tc.alg
			rng := rand.New(rand.NewSource(17))
			shards := make([][]ml.Sample, nodes)
			for n := range shards {
				shards[n] = make([]ml.Sample, 8)
				for i := range shards[n] {
					x := make([]float64, alg.FeatureSize())
					for j := range x {
						x[j] = rng.NormFloat64()
					}
					y := make([]float64, tc.labels)
					for j := range y {
						y[j] = rng.NormFloat64()
					}
					shards[n][i] = ml.Sample{X: x, Y: y}
				}
			}
			model := alg.InitModel(rand.New(rand.NewSource(5)))

			run := func(chunkWords int, monolithic bool, delaySeed int64) []float64 {
				cl, err := Launch(ClusterOptions{
					Nodes: nodes, Groups: groups,
					Engines: func(id int) Engine {
						return &jitterEngine{
							inner: &RefEngine{Alg: alg, Threads: 1, LR: 0.01, Agg: dsl.AggAverage},
							rng:   rand.New(rand.NewSource(delaySeed + int64(id))),
						}
					},
					Shards:     func(id int) []ml.Sample { return shards[id] },
					ModelSize:  alg.ModelSize(),
					Agg:        dsl.AggAverage,
					LR:         0.01,
					MiniBatch:  nodes * 4,
					ChunkWords: chunkWords,
					Monolithic: monolithic,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Close()
				got, _, err := cl.Train(append([]float64(nil), model...), rounds)
				if err != nil {
					t.Fatal(err)
				}
				if err := cl.Shutdown(); err != nil {
					t.Fatal(err)
				}
				return got
			}

			want := run(64, false, 100)
			variants := []struct {
				label      string
				chunkWords int
				monolithic bool
				delaySeed  int64
			}{
				{"chunk-64/reshuffled", 64, false, 900},
				{"chunk-1024", 1024, false, 300},
				{"monolithic", 0, true, 500},
			}
			for _, v := range variants {
				got := run(v.chunkWords, v.monolithic, v.delaySeed)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: w[%d] = %.17g, want bitwise %.17g",
							v.label, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestChunkWordsValidation pins the power-of-two rule shared by every
// config surface.
func TestChunkWordsValidation(t *testing.T) {
	for _, w := range []int{0, 1, 2, 64, 4096, 1 << 20} {
		if !ValidChunkWords(w) {
			t.Errorf("ValidChunkWords(%d) = false", w)
		}
	}
	for _, w := range []int{-1, -64, 3, 63, 100, 4095} {
		if ValidChunkWords(w) {
			t.Errorf("ValidChunkWords(%d) = true", w)
		}
	}
	_, err := Launch(ClusterOptions{
		Nodes: 2, Groups: 1,
		Engines:    func(int) Engine { return &RefEngine{Alg: &ml.LinearRegression{M: 4}, Threads: 1} },
		Shards:     func(int) []ml.Sample { return nil },
		ModelSize:  4,
		ChunkWords: 100,
	})
	if err == nil {
		t.Fatal("non-power-of-two ChunkWords accepted")
	}
}
