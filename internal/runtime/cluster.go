package runtime

import (
	"log/slog"
	"os"
	"strconv"
	"time"

	"repro/internal/cosmicnet"
	"repro/internal/dsl"
	"repro/internal/ml"
	"repro/internal/obs"
)

// ClusterOptions configures an in-process scale-out cluster: every node is
// a goroutine with its own TCP listener/connections on the loopback device,
// so all training traffic crosses real sockets.
type ClusterOptions struct {
	Nodes  int
	Groups int
	// Engines supplies each node's compute engine.
	Engines func(nodeID int) Engine
	// Shards supplies each node's partition of the training data.
	Shards func(nodeID int) []ml.Sample
	// ModelSize is the flat parameter-vector length.
	ModelSize int
	Agg       dsl.AggregatorKind
	LR        float64
	// MiniBatch is the system-wide mini-batch size; each node consumes
	// MiniBatch/Nodes samples per round.
	MiniBatch int
	// RoundTimeout bounds each aggregation round (0 = forever).
	RoundTimeout time.Duration
	// MinQuorum, when > 0, makes every Sigma (master included) fold a
	// timed-out round with the members that arrived instead of failing —
	// see NodeConfig.MinQuorum. A node death then costs rounds, not the run.
	MinQuorum int
	// Reconnect makes worker nodes redial their upstream (with backoff
	// bounded by ReconnectWait) when the connection drops mid-run.
	Reconnect     bool
	ReconnectWait time.Duration
	// Transports, when non-nil, supplies each node's Transport (nil entries
	// fall back to cosmicnet.TCP). The chaos fabric plugs in here.
	Transports func(nodeID int) cosmicnet.Transport
	// ChunkWords is the fixed streaming-chunk boundary in vector elements
	// (0 = the default; must be a power of two).
	ChunkWords int
	// Monolithic ships whole-vector partial/aggregate frames instead of
	// chunk streams (the pre-streaming wire behavior). Results are
	// bit-identical to streaming either way.
	Monolithic bool
	// NetWorkers/AggWorkers/RingCapacity tune the Sigma pools.
	NetWorkers, AggWorkers, RingCapacity int
	Logf                                 func(format string, args ...any)
	// Obs, when non-nil, is shared by every node: per-node frame and
	// fan-in counters, ring depth gauges, and per-round spans land in it.
	Obs *obs.Observer
	// PerNodeObs, when non-nil, gives each node its own observer instead of
	// the shared Obs — the deployment shape (one tracer per process) that
	// cosmic-trace merges back together. Takes precedence over Obs.
	PerNodeObs func(nodeID int) *obs.Observer
	// Logger receives structured diagnostics from every node, with
	// node/role/group attributes attached per node.
	Logger *slog.Logger
	// TraceIDBase, when nonzero, enables distributed trace propagation
	// (round seq → trace ID TraceIDBase+seq on the wire).
	TraceIDBase uint64
	// FlightSize bounds each node's flight recorder (0 = default 256);
	// DiagDir is where round-failure diagnostic bundles land.
	FlightSize int
	DiagDir    string
}

// Cluster is a running scale-out system.
type Cluster struct {
	opts   ClusterOptions
	topo   Topology
	master *Node
	nodes  []*Node
	runErr chan error
}

// TrainStats reports a training run.
type TrainStats struct {
	Rounds int
	// RoundDurations are the wall times of each mini-batch round at the
	// master.
	RoundDurations []time.Duration
	// RoundP50/P95/Max summarize RoundDurations (nearest-rank percentiles).
	RoundP50, RoundP95, RoundMax time.Duration
	// NetworkSentBytes/NetworkReceivedBytes sum the frame bytes every node
	// moved during the run — each transfer counted once sent and once
	// received, as a switch port would see it.
	NetworkSentBytes, NetworkReceivedBytes int64
	// ExcludedRounds counts the master's rounds folded without a full
	// member set (quorum mode only).
	ExcludedRounds int
}

// Launch assigns roles, starts every node, and waits until the hierarchy is
// fully connected.
func Launch(opts ClusterOptions) (*Cluster, error) {
	topo, err := Assign(opts.Nodes, opts.Groups)
	if err != nil {
		return nil, err
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if opts.MiniBatch < opts.Nodes {
		opts.MiniBatch = opts.Nodes
	}
	perNode := opts.MiniBatch / opts.Nodes

	c := &Cluster{opts: opts, topo: topo, runErr: make(chan error, opts.Nodes)}
	baseCfg := func(id int) NodeConfig {
		cfg := NodeConfig{
			ID:            uint32(id),
			Group:         topo.GroupOf[id],
			Engine:        opts.Engines(id),
			ModelSize:     opts.ModelSize,
			Agg:           opts.Agg,
			LR:            opts.LR,
			ShardBatch:    perNode,
			RoundTimeout:  opts.RoundTimeout,
			ChunkWords:    opts.ChunkWords,
			Monolithic:    opts.Monolithic,
			NetWorkers:    opts.NetWorkers,
			AggWorkers:    opts.AggWorkers,
			RingCapacity:  opts.RingCapacity,
			Logf:          opts.Logf,
			Obs:           opts.Obs,
			Logger:        opts.Logger,
			FlightSize:    opts.FlightSize,
			DiagDir:       opts.DiagDir,
			MinQuorum:     opts.MinQuorum,
			Reconnect:     opts.Reconnect,
			ReconnectWait: opts.ReconnectWait,
		}
		if opts.PerNodeObs != nil {
			cfg.Obs = opts.PerNodeObs(id)
		}
		if opts.Transports != nil {
			cfg.Transport = opts.Transports(id)
		}
		return cfg
	}

	// Master first: every group Sigma dials it.
	mcfg := baseCfg(0)
	mcfg.Role = RoleMasterSigma
	mcfg.Members = len(topo.Members[0])
	mcfg.MemberIDs = topo.MasterMemberIDs()
	master, err := StartNode(mcfg, opts.Shards(0))
	if err != nil {
		return nil, err
	}
	c.master = master
	c.nodes = []*Node{master}

	// Group Sigmas next.
	sigmaAddr := make([]string, topo.Groups)
	sigmaAddr[0] = master.Addr()
	for g := 1; g < topo.Groups; g++ {
		cfg := baseCfg(g)
		cfg.Role = RoleGroupSigma
		cfg.UpstreamAddr = master.Addr()
		cfg.Members = len(topo.Members[g])
		cfg.MemberIDs = topo.MemberIDs(g)
		node, err := StartNode(cfg, opts.Shards(g))
		if err != nil {
			c.Close()
			return nil, err
		}
		sigmaAddr[g] = node.Addr()
		c.nodes = append(c.nodes, node)
		go func() { c.runErr <- node.Run() }()
	}

	// Deltas last.
	for id := topo.Groups; id < topo.Nodes; id++ {
		cfg := baseCfg(id)
		cfg.Role = RoleDelta
		cfg.UpstreamAddr = sigmaAddr[topo.GroupOf[id]]
		node, err := StartNode(cfg, opts.Shards(id))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
		go func() { c.runErr <- node.Run() }()
	}

	// Startup barrier: the master hears directly from the other group
	// Sigmas and its own group's Deltas.
	direct := (topo.Groups - 1) + (len(topo.Members[0]) - 1)
	master.WaitMembers(direct)
	return c, nil
}

// Topology returns the Director's assignment.
func (c *Cluster) Topology() Topology { return c.topo }

// NetworkBytes sums the frame bytes every node moved — each transfer is
// counted twice (once sent, once received), as a switch port would see it.
func (c *Cluster) NetworkBytes() (sent, received int64) {
	for _, n := range c.nodes {
		s, r := n.NetworkBytes()
		sent += s
		received += r
	}
	return sent, received
}

// Train drives the given number of mini-batch rounds from the master and
// returns the final model.
func (c *Cluster) Train(model []float64, rounds int) ([]float64, TrainStats, error) {
	// In quorum mode a node death must not abort the run — the timed-out
	// round folds on the survivors instead — so the fail channel stays out
	// of the wait (Shutdown still collects the exit errors).
	fail := c.runErr
	if c.opts.MinQuorum > 0 {
		fail = nil
	}
	final, stats, err := c.master.DriveTraining(DriveConfig{
		Groups:       c.topo.Groups,
		ModelSize:    c.opts.ModelSize,
		Agg:          c.opts.Agg,
		LR:           c.opts.LR,
		MiniBatch:    c.opts.MiniBatch,
		RoundTimeout: c.opts.RoundTimeout,
		MinQuorum:    c.opts.MinQuorum,
		Fail:         fail,
		TraceIDBase:  c.opts.TraceIDBase,
		Diagnostics:  c.DumpDiagnostics,
	}, model, rounds)
	stats.NetworkSentBytes, stats.NetworkReceivedBytes = c.NetworkBytes()
	return final, stats, err
}

// Nodes returns every node of the cluster, master first.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// DumpDiagnostics writes every node's flight recorder into one fresh
// directory under DiagDir (OS temp dir when unset) and returns its path —
// the bundle a round failure points the operator at. Best-effort: nodes
// whose dump fails are skipped so a sick node cannot block the bundle.
func (c *Cluster) DumpDiagnostics(reason string) string {
	base := c.opts.DiagDir
	if base == "" {
		base = os.TempDir()
	}
	dir, err := os.MkdirTemp(base, "cosmic-diag-*")
	if err != nil {
		return "(diagnostics unavailable: " + err.Error() + ")"
	}
	for _, n := range c.nodes {
		n.flight.Record(obs.FlightEvent{Dir: obs.FlightMark, Type: reason, Seq: n.lastSeq.Load()})
		_, _ = n.DumpFlight(dir)
	}
	return dir
}

// ScrapeLatencies returns each node's most recent round wall time in seconds
// keyed by node ID — the straggler detector's input for in-process clusters.
// Nodes that have not finished a round yet are omitted.
func (c *Cluster) ScrapeLatencies() map[string]float64 {
	out := make(map[string]float64, len(c.nodes))
	for _, n := range c.nodes {
		if v := n.LastRoundSeconds(); v > 0 {
			out[strconv.Itoa(int(n.cfg.ID))] = v
		}
	}
	return out
}

// Shutdown sends MsgDone down the hierarchy and waits for the worker nodes
// to exit.
func (c *Cluster) Shutdown() error {
	c.master.forwardDone()
	var firstErr error
	for i := 0; i < len(c.nodes)-1; i++ {
		if err := <-c.runErr; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close releases all node resources.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		n.Close()
	}
}
