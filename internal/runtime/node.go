package runtime

import (
	"fmt"
	"io"
	"log/slog"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cosmicnet"
	"repro/internal/dsl"
	"repro/internal/ml"
	"repro/internal/obs"
)

// NodeConfig configures one node of the scale-out system.
type NodeConfig struct {
	ID    uint32
	Role  Role
	Group int
	// UpstreamAddr is where this node sends its results: the group Sigma's
	// address for Deltas, the master's address for group Sigmas; empty for
	// the master.
	UpstreamAddr string
	// Members is the number of contributions this node's aggregation stage
	// expects per mini-batch (Sigma roles only).
	Members int
	// MemberIDs lists the node IDs whose contributions this node's
	// aggregation stage folds each round, its own included (Sigma roles
	// only; required). The sorted order of the IDs fixes the fold order,
	// which is what makes aggregation bit-deterministic.
	MemberIDs []uint32
	// ChunkWords is the fixed chunk boundary in vector elements — the unit
	// partials stream, fold, and forward at. 0 selects the default
	// (ChunkSize); other values must be powers of two.
	ChunkWords int
	// Monolithic ships partials and group aggregates as single
	// whole-vector frames (the pre-streaming wire behavior, byte-compatible
	// with old binaries) instead of chunk-frame streams. Aggregation still
	// folds in member order, so trained models match streaming bitwise.
	Monolithic bool
	// Engine computes partial updates.
	Engine Engine
	// ModelSize is the flat parameter-vector length.
	ModelSize int
	Agg       dsl.AggregatorKind
	LR        float64
	// ShardBatch is how many local samples the node consumes per
	// mini-batch round.
	ShardBatch int
	// RoundTimeout bounds how long a Sigma waits for its members'
	// contributions each round (0 = forever). With a timeout, a dead
	// member fails the round instead of wedging the cluster.
	RoundTimeout time.Duration
	// MinQuorum, when > 0, turns a round timeout into exclude-and-continue:
	// instead of failing, the Sigma folds the round with the contributions
	// that arrived — as long as at least MinQuorum members (its own
	// contribution included) are present — and marks the absentees suspect.
	// Suspects are pre-excluded from later rounds until they speak again
	// (a fresh hello or data from a newer round), so one dead member costs
	// one RoundTimeout, not one per round. 0 keeps fail-fast behavior.
	MinQuorum int
	// Reconnect makes a non-master node redial its upstream with bounded
	// exponential backoff when the connection drops mid-run, re-announcing
	// itself with a hello, instead of failing. ReconnectWait bounds the
	// total redial budget (0 = 30s).
	Reconnect     bool
	ReconnectWait time.Duration
	// Transport opens this node's listener and upstream connection. nil
	// selects cosmicnet.TCP; the chaos fabric substitutes its own.
	Transport cosmicnet.Transport
	// NetWorkers and AggWorkers size the Sigma thread pools.
	NetWorkers, AggWorkers int
	// RingCapacity bounds the circular buffer.
	RingCapacity int
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
	// Logger, when set, receives structured diagnostics (failures,
	// timeouts, straggler warnings) with node/role/group attributes
	// attached; nil discards them (Logf still fires).
	Logger *slog.Logger
	// Obs, when non-nil, records per-frame counters, aggregation fan-in,
	// ring depth, and per-round spans for this node. nil disables all of it.
	Obs *obs.Observer
	// FlightSize bounds the node's flight recorder (last-N wire events
	// kept for post-mortem dumps); 0 means the default of 256.
	FlightSize int
	// DiagDir is where round-failure diagnostic dumps land; empty means
	// the OS temp directory.
	DiagDir string
}

func (c *NodeConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// ValidChunkWords reports whether w is an acceptable ChunkWords setting:
// zero (default) or a power of two.
func ValidChunkWords(w int) bool {
	return w == 0 || (w > 0 && bits.OnesCount(uint(w)) == 1)
}

// discardLogger drops records; the default when no Logger is configured.
var discardLogger = slog.New(slog.NewTextHandler(io.Discard, nil))

// Node is one running member of the cluster.
type Node struct {
	cfg NodeConfig
	// transport is the resolved Transport (cosmicnet.TCP by default).
	transport cosmicnet.Transport
	obs       *nodeObs
	logger    *slog.Logger
	// chunkWords is the resolved fixed chunk boundary.
	chunkWords int
	// flight is the node's bounded forensic ring of wire events; always on
	// (it is alloc-free), dumped when a round fails.
	flight *obs.FlightRecorder
	// spanCtr mints this node's wire span IDs; lastSeq and lastRoundNanos
	// feed /healthz and the director's straggler detector.
	spanCtr        atomic.Uint64
	lastSeq        atomic.Uint32
	lastRoundNanos atomic.Int64
	data           []ml.Sample
	// cursor is the node's position in its data shard.
	cursor int

	ln   *cosmicnet.Listener
	upMu sync.Mutex
	// upstream is the current upstream connection; sentBase/recvBase carry
	// the byte counters of connections replaced by a reconnect.
	upstream           *cosmicnet.Conn
	sentBase, recvBase int64
	// sendMu serializes upstream frame writes: with fold-on-arrival
	// forwarding, per-chunk completion callbacks send from concurrent
	// aggregation workers.
	sendMu sync.Mutex

	// Sigma machinery.
	ring    *CircularBuffer
	agg     *AggregationBuffer
	netPool *Pool
	aggPool *Pool
	// downstream are the member connections a Sigma forwards models to.
	// Dead ones are pruned on send failure; downSentBase/downRecvBase carry
	// the pruned connections' byte counters.
	downstream                 []*cosmicnet.Conn
	downstreamMu               sync.Mutex
	downSentBase, downRecvBase int64

	helloMu    sync.Mutex
	helloCond  *sync.Cond
	helloCount int

	// suspects maps a member ID to the round that timed it out (quorum
	// mode). A suspect is pre-excluded from new rounds until it clears.
	suspectMu sync.Mutex
	suspects  map[uint32]uint32

	wg        sync.WaitGroup
	stopped   chan struct{}
	closing   atomic.Bool
	closeCh   chan struct{}
	closeOnce sync.Once
	errOnce   sync.Once
	err       error
}

// Addr returns the node's listen address (Sigma roles).
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Err returns the first fatal error the node hit.
func (n *Node) Err() error { return n.err }

// Engine returns the node's compute engine (set at configuration, read-only
// after). HTTP handlers use it to reach an AccelEngine's cycle profile.
func (n *Node) Engine() Engine { return n.cfg.Engine }

func (n *Node) fail(err error) {
	if err == nil {
		return
	}
	n.errOnce.Do(func() {
		n.err = err
		n.cfg.logf("node %d failed: %v", n.cfg.ID, err)
		n.logger.Error("node failed", "round", n.lastSeq.Load(), "err", err)
		n.flight.Record(obs.FlightEvent{Dir: obs.FlightMark, Type: "node-failed", Seq: n.lastSeq.Load()})
	})
}

// nextSpanID mints a node-unique wire span ID: node ID in the high bits, a
// monotonic counter below.
func (n *Node) nextSpanID() uint64 {
	return uint64(n.cfg.ID+1)<<40 | n.spanCtr.Add(1)
}

// NodeHealth is the /healthz document of one node.
type NodeHealth struct {
	ID      uint32 `json:"node"`
	Role    string `json:"role"`
	Group   int    `json:"group"`
	LastSeq uint32 `json:"last_round_seq"`
	// RingDepth is the Sigma aggregation ring's current occupancy (0 for
	// Deltas); FlightDepth the retained flight-recorder events.
	RingDepth   int `json:"ring_depth"`
	FlightDepth int `json:"flight_depth"`
	// LastRoundSeconds is the node's most recent round wall time.
	LastRoundSeconds float64 `json:"last_round_seconds"`
}

// Health reports the node's live state.
func (n *Node) Health() NodeHealth {
	h := NodeHealth{
		ID:               n.cfg.ID,
		Role:             n.cfg.Role.String(),
		Group:            n.cfg.Group,
		LastSeq:          n.lastSeq.Load(),
		FlightDepth:      n.flight.Len(),
		LastRoundSeconds: time.Duration(n.lastRoundNanos.Load()).Seconds(),
	}
	if n.ring != nil {
		h.RingDepth = n.ring.Len()
	}
	return h
}

// LastRoundSeconds returns the node's most recent round wall time (0 before
// the first completed round).
func (n *Node) LastRoundSeconds() float64 {
	return time.Duration(n.lastRoundNanos.Load()).Seconds()
}

// noteRound records a completed round for health and straggler reporting.
func (n *Node) noteRound(seq uint32, d time.Duration) {
	n.lastSeq.Store(seq)
	n.lastRoundNanos.Store(int64(d))
	n.obs.roundDone(seq, d)
}

// Flight returns the node's flight recorder, so deployment-level machinery
// (the worker's alert evaluator) can mark alert transitions alongside the
// node's own wire events.
func (n *Node) Flight() *obs.FlightRecorder { return n.flight }

// DumpFlight writes the node's flight-recorder contents to a file named
// node-<id>.flight in dir (created if needed) and returns its path.
func (n *Node) DumpFlight(dir string) (string, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("node-%d.flight", n.cfg.ID))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if _, err := n.flight.Dump(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// dumpDiagnostics is the node's own round-failure bundle: a fresh directory
// under DiagDir holding this node's flight dump. Best-effort — on error it
// returns a placeholder path so the caller's error message stays useful.
func (n *Node) dumpDiagnostics(reason string) string {
	n.flight.Record(obs.FlightEvent{Dir: obs.FlightMark, Type: reason, Seq: n.lastSeq.Load()})
	base := n.cfg.DiagDir
	if base == "" {
		base = os.TempDir()
	}
	dir, err := os.MkdirTemp(base, "cosmic-diag-*")
	if err != nil {
		return "(diagnostics unavailable: " + err.Error() + ")"
	}
	if _, err := n.DumpFlight(dir); err != nil {
		return "(diagnostics unavailable: " + err.Error() + ")"
	}
	return dir
}

// lastSeenSummary formats the flight recorder's per-peer last receive seqs
// ("peer 3: seq 12, peer 4: none") for timeout diagnostics.
func (n *Node) lastSeenSummary() string {
	seqs := n.flight.LastRecvSeqs()
	if len(seqs) == 0 {
		return "no frames received"
	}
	peers := make([]int, 0, len(seqs))
	for p := range seqs {
		peers = append(peers, int(p))
	}
	sort.Ints(peers)
	parts := make([]string, 0, len(peers))
	for _, p := range peers {
		parts = append(parts, fmt.Sprintf("peer %d: seq %d", p, seqs[uint32(p)]))
	}
	return strings.Join(parts, ", ")
}

// StartNode launches a node over its shard. Sigma roles open a listener and
// start the networking/aggregation pools; Delta roles only dial upstream
// (from Run).
func StartNode(cfg NodeConfig, shard []ml.Sample) (*Node, error) {
	if cfg.NetWorkers <= 0 {
		cfg.NetWorkers = 4
	}
	if cfg.AggWorkers <= 0 {
		cfg.AggWorkers = 4
	}
	if cfg.RingCapacity <= 0 {
		cfg.RingCapacity = 64
	}
	if cfg.FlightSize <= 0 {
		cfg.FlightSize = 256
	}
	if !ValidChunkWords(cfg.ChunkWords) {
		return nil, fmt.Errorf("runtime: ChunkWords %d is not a power of two", cfg.ChunkWords)
	}
	if cfg.ChunkWords == 0 {
		cfg.ChunkWords = ChunkSize
	}
	n := &Node{cfg: cfg, data: shard, stopped: make(chan struct{}), chunkWords: cfg.ChunkWords}
	n.transport = cfg.Transport
	if n.transport == nil {
		n.transport = cosmicnet.TCP
	}
	n.closeCh = make(chan struct{})
	n.suspects = make(map[uint32]uint32)
	n.obs = newNodeObs(cfg.Obs, cfg.ID, cfg.Role)
	n.flight = obs.NewFlightRecorder(cfg.FlightSize)
	logger := cfg.Logger
	if logger == nil {
		logger = discardLogger
	}
	n.logger = logger.With("node", cfg.ID, "role", cfg.Role.String(), "group", cfg.Group)
	n.helloCond = sync.NewCond(&n.helloMu)
	if cfg.Role != RoleDelta {
		if len(cfg.MemberIDs) == 0 {
			return nil, fmt.Errorf("runtime: node %d: %v role requires MemberIDs", cfg.ID, cfg.Role)
		}
		ln, err := n.transport.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		n.ln = ln
		n.ring = NewCircularBuffer(cfg.RingCapacity)
		n.agg = NewAggregationBufferChunked(cfg.ModelSize, cfg.ChunkWords)
		if err := n.agg.SetMembers(cfg.MemberIDs); err != nil {
			ln.Close()
			return nil, err
		}
		if cfg.Obs != nil {
			n.ring.SetDepthGauge(cfg.Obs.Registry().Gauge(
				obs.Labeled("cosmic_node_ring_depth", "node", strconv.Itoa(int(cfg.ID)))))
			n.agg.SetPipelineGauge(cfg.Obs.Registry().Gauge(
				obs.Labeled("cosmic_sigma_pipeline_depth", "node", strconv.Itoa(int(cfg.ID)))))
		}
		n.netPool = NewPool(cfg.NetWorkers)
		n.aggPool = NewPool(cfg.AggWorkers)
		for i := 0; i < cfg.AggWorkers; i++ {
			n.wg.Add(1)
			go n.aggWorker()
		}
		n.wg.Add(1)
		go n.acceptLoop()
	}
	return n, nil
}

// aggWorker is one Aggregation Pool thread: it drains the circular buffer
// into the aggregation buffer until the ring closes. Pooled wire payloads
// are recycled once folded — the Add path never retains the chunk's slice.
func (n *Node) aggWorker() {
	defer n.wg.Done()
	for {
		c, ok := n.ring.Pop()
		if !ok {
			return
		}
		err := n.agg.Add(c)
		if c.Recycle {
			cosmicnet.PutPayload(c.Data)
		}
		if err != nil {
			n.fail(err)
			return
		}
		n.obs.chunkFolded(c.Last)
	}
}

// acceptLoop is the Incoming Network Handler: it admits member connections
// and spawns a bounded reader per socket. (Go's netpoller is the epoll
// loop underneath; readers block cheaply until their socket is readable.)
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.AcceptConn()
		if err != nil {
			return // listener closed
		}
		n.downstreamMu.Lock()
		n.downstream = append(n.downstream, conn)
		n.downstreamMu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop dispatches inbound frames from one member connection. The frame
// is decoded into reused storage; data-frame payloads are handed off to the
// fold pipeline and replaced from the payload pool, so a steady-state round
// recycles a few buffers instead of allocating per frame.
func (n *Node) readLoop(conn *cosmicnet.Conn) {
	defer n.wg.Done()
	f := new(cosmicnet.Frame)
	for {
		if err := conn.RecvInto(f); err != nil {
			return // peer closed
		}
		n.flight.Record(obs.FlightEvent{
			Dir: obs.FlightRecv, Type: f.Type.String(), Peer: f.From,
			Seq: f.Seq, Bytes: len(f.Payload) * 8,
		})
		switch f.Type {
		case cosmicnet.MsgHello:
			n.cfg.logf("node %d: member %d connected (%s)", n.cfg.ID, f.From, f.Text)
			if n.obs != nil {
				n.obs.recvFrame(n.obs.framesHello, len(f.Payload))
			}
			// A fresh hello from a suspect member is a rejoin: stop
			// pre-excluding it from the next round.
			n.clearSuspect(f.From, 0, true)
			n.helloMu.Lock()
			n.helloCount++
			n.helloMu.Unlock()
			n.helloCond.Broadcast()
		case cosmicnet.MsgPartial, cosmicnet.MsgGroupAggregate:
			// Data from a round newer than the one that timed the member out
			// means it caught back up on its existing connection.
			n.clearSuspect(f.From, f.Seq, false)
			if n.obs != nil {
				ctr, name := n.obs.framesPartial, "recv-partial"
				if f.Type == cosmicnet.MsgGroupAggregate {
					ctr, name = n.obs.framesGroupAgg, "recv-group-aggregate"
				}
				n.obs.recvFrame(ctr, len(f.Payload))
				sp := n.obs.tracer().Begin("runtime", name, n.obs.threadID())
				sp.EndArgs(traceArgs(f, obs.ArgFlowIn))
			}
			if f.Chunked() {
				// Fold on arrival: the frame already is one ring chunk, so it
				// goes straight to the Aggregation Pool — no staging of the
				// full vector, no re-chunking. The payload's ownership moves
				// to the chunk (Recycle: true makes aggWorker Put it after
				// folding); the read frame draws a recycled one.
				//cosmic:transfers f.Payload moves into the ring chunk
				c := Chunk{
					Seq: f.Seq, From: f.From, Offset: int(f.ChunkOffset),
					Data: f.Payload, Weight: f.Weight,
					Last: f.ChunkIndex == f.ChunkCount-1, Recycle: true,
				}
				//cosmic:transfers replacement buffer owned by the frame reader
				f.Payload = cosmicnet.GetPayload(0)
				if !n.ring.Push(c) {
					return
				}
				continue
			}
			// Monolithic frame: Networking Pool cuts the received vector into
			// circular-buffer chunks; the Aggregation Pool picks them up
			// concurrently (producer-consumer overlap).
			payload := f.Payload
			f.Payload = nil
			seq, from, weight := f.Seq, f.From, f.Weight
			n.netPool.Submit(func() {
				for _, c := range SplitIntoChunksWords(seq, from, payload, weight, n.chunkWords) {
					if !n.ring.Push(c) {
						return
					}
				}
			})
		default:
			n.fail(fmt.Errorf("node %d: unexpected %v frame from %d", n.cfg.ID, f.Type, f.From))
		}
	}
}

// nextShardBatch returns the node's next ShardBatch samples, cycling
// through its shard.
func (n *Node) nextShardBatch() []ml.Sample {
	if len(n.data) == 0 {
		return nil
	}
	batch := make([]ml.Sample, 0, n.cfg.ShardBatch)
	for len(batch) < n.cfg.ShardBatch {
		batch = append(batch, n.data[n.cursor])
		n.cursor = (n.cursor + 1) % len(n.data)
	}
	return batch
}

// computePartial runs the engine over the next shard batch.
func (n *Node) computePartial(model []float64) ([]float64, error) {
	batch := n.nextShardBatch()
	if batch == nil {
		return make([]float64, n.cfg.ModelSize), nil
	}
	return n.cfg.Engine.PartialUpdate(model, batch)
}

// pushLocalChunks feeds the node's own partial into its aggregation
// pipeline: fixed-boundary subslices of the vector go straight onto the
// ring, no copy and no chunk-slice allocation (the local-contribution
// fast path).
func (n *Node) pushLocalChunks(seq uint32, vec []float64, weight float64) error {
	if len(vec) == 0 {
		if !n.ring.Push(Chunk{Seq: seq, From: n.cfg.ID, Weight: weight, Last: true}) {
			return fmt.Errorf("node %d: ring closed mid-batch", n.cfg.ID)
		}
		return nil
	}
	for off := 0; off < len(vec); off += n.chunkWords {
		end := off + n.chunkWords
		if end > len(vec) {
			end = len(vec)
		}
		if !n.ring.Push(Chunk{
			Seq: seq, From: n.cfg.ID, Offset: off,
			Data: vec[off:end], Weight: weight, Last: end == len(vec),
		}) {
			return fmt.Errorf("node %d: ring closed mid-batch", n.cfg.ID)
		}
	}
	return nil
}

// NetworkBytes sums the frame bytes this node moved over its upstream and
// member connections.
func (n *Node) NetworkBytes() (sent, received int64) {
	n.upMu.Lock()
	sent, received = n.sentBase, n.recvBase
	if n.upstream != nil {
		sent += n.upstream.BytesSent()
		received += n.upstream.BytesReceived()
	}
	n.upMu.Unlock()
	n.downstreamMu.Lock()
	sent += n.downSentBase
	received += n.downRecvBase
	for _, c := range n.downstream {
		sent += c.BytesSent()
		received += c.BytesReceived()
	}
	n.downstreamMu.Unlock()
	return sent, received
}

// WaitMembers blocks until k member hellos have arrived (Sigma startup
// barrier: a Sigma must know all its members before forwarding the first
// model broadcast).
func (n *Node) WaitMembers(k int) {
	n.helloMu.Lock()
	for n.helloCount < k {
		n.helloCond.Wait()
	}
	n.helloMu.Unlock()
}

// markSuspect flags a member that missed a quorum fold: it stays
// pre-excluded from later rounds until it speaks again.
func (n *Node) markSuspect(id, seq uint32) {
	n.suspectMu.Lock()
	_, already := n.suspects[id]
	n.suspects[id] = seq
	n.suspectMu.Unlock()
	if !already {
		n.logger.Warn("member suspect", "member", id, "round", seq)
		n.flight.Record(obs.FlightEvent{Dir: obs.FlightMark, Type: "member-suspect", Peer: id, Seq: seq})
		n.obs.suspect(id, 1)
	}
}

// clearSuspect lifts a member's suspect mark when it shows signs of life: a
// fresh hello (always trusted — it is a reconnect), or data from a round
// newer than the one that timed it out.
func (n *Node) clearSuspect(id, seq uint32, hello bool) {
	n.suspectMu.Lock()
	marked, was := n.suspects[id]
	cleared := was && (hello || seq > marked)
	if cleared {
		delete(n.suspects, id)
	}
	n.suspectMu.Unlock()
	if cleared {
		n.logger.Info("member rejoined", "member", id, "round", seq)
		n.flight.Record(obs.FlightEvent{Dir: obs.FlightMark, Type: "member-rejoined", Peer: id, Seq: seq})
		n.obs.suspect(id, 0)
	}
}

// preExcludeSuspects excludes known-suspect members from a fresh round so a
// dead member costs one RoundTimeout total, not one per round — but only
// while enough members remain for a quorum; otherwise the round waits for
// the suspects like any other member. Reports whether anyone was excluded.
func (n *Node) preExcludeSuspects(seq uint32, minQuorum int) bool {
	if minQuorum <= 0 {
		return false
	}
	n.suspectMu.Lock()
	ids := make([]uint32, 0, len(n.suspects))
	for id := range n.suspects {
		ids = append(ids, id)
	}
	n.suspectMu.Unlock()
	if len(ids) == 0 {
		return false
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Count survivors against the fold set the buffer actually waits on.
	// cfg.Members is the node's own group size, which undercounts for the
	// master (its buffer also folds one aggregate per other group's Sigma);
	// using it here would veto pre-exclusion and re-pay the round timeout
	// for every round a dead member stays dead.
	members := n.cfg.Members
	if len(n.cfg.MemberIDs) > 0 {
		members = len(n.cfg.MemberIDs)
	}
	if members-len(ids) < minQuorum {
		return false
	}
	if n.agg.Exclude(ids) == 0 {
		return false
	}
	n.flight.Record(obs.FlightEvent{Dir: obs.FlightMark, Type: "member-excluded", Seq: seq})
	n.logger.Warn("round started without suspect members", "round", seq, "excluded", ids)
	return true
}

// quorumFold rescues a timed-out round: if a quorum of members delivered
// full contributions, the absentees are excluded (completing the fold with
// what arrived) and marked suspect. Reports whether the round was saved.
func (n *Node) quorumFold(seq uint32, minQuorum int, rewait time.Duration) bool {
	if minQuorum <= 0 {
		return false
	}
	present, _, missing := n.agg.QuorumStatus()
	if len(missing) == 0 || len(present) < minQuorum {
		return false
	}
	for _, id := range missing {
		n.markSuspect(id, seq)
	}
	if n.agg.Exclude(missing) == 0 {
		return false
	}
	n.flight.Record(obs.FlightEvent{Dir: obs.FlightMark, Type: "member-excluded", Seq: seq})
	n.logger.Warn("round folded on quorum", "round", seq,
		"present", len(present), "excluded", missing)
	// Exclusion completes every chunk that was only waiting on the missing
	// members; the short re-wait covers completion callbacks in flight.
	ok, err := n.agg.WaitComplete(rewait, nil)
	return err == nil && ok
}

// connectUpstream dials the node's upstream and announces the node with a
// hello, replacing (and accounting for) any previous connection.
func (n *Node) connectUpstream() (*cosmicnet.Conn, error) {
	up, err := n.transport.Dial(n.cfg.UpstreamAddr)
	if err != nil {
		return nil, err
	}
	n.upMu.Lock()
	if n.upstream != nil {
		n.sentBase += n.upstream.BytesSent()
		n.recvBase += n.upstream.BytesReceived()
		n.upstream.Close()
	}
	n.upstream = up
	n.upMu.Unlock()
	n.flight.Record(obs.FlightEvent{Dir: obs.FlightSend, Type: cosmicnet.MsgHello.String()})
	if err := up.Send(&cosmicnet.Frame{Type: cosmicnet.MsgHello, From: n.cfg.ID, Text: n.Addr()}); err != nil {
		return nil, err
	}
	return up, nil
}

// redialUpstream re-establishes a lost upstream connection with bounded
// exponential backoff: 50ms doubling to a 2s cap, within a total budget of
// ReconnectWait. Close interrupts the wait.
func (n *Node) redialUpstream(cause error) (*cosmicnet.Conn, error) {
	budget := n.cfg.ReconnectWait
	if budget <= 0 {
		budget = 30 * time.Second
	}
	n.logger.Warn("upstream lost; reconnecting", "err", cause)
	n.flight.Record(obs.FlightEvent{Dir: obs.FlightMark, Type: "reconnecting"})
	deadline := time.Now().Add(budget)
	delay := 50 * time.Millisecond
	for {
		if n.closing.Load() {
			return nil, fmt.Errorf("node %d: closed while reconnecting", n.cfg.ID)
		}
		up, err := n.connectUpstream()
		if err == nil {
			n.logger.Info("upstream reconnected")
			n.flight.Record(obs.FlightEvent{Dir: obs.FlightMark, Type: "reconnected"})
			return up, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("node %d: reconnect budget exhausted: %w", n.cfg.ID, err)
		}
		select {
		case <-n.closeCh:
			return nil, fmt.Errorf("node %d: closed while reconnecting", n.cfg.ID)
		case <-time.After(delay):
		}
		delay *= 2
		if delay > 2*time.Second {
			delay = 2 * time.Second
		}
	}
}

// Run executes the node's role loop until MsgDone. It blocks; callers run
// it in a goroutine. The master does not use Run — the driver in
// Cluster.Train plays that role.
func (n *Node) Run() error {
	defer close(n.stopped)
	up, err := n.connectUpstream()
	if err != nil {
		n.fail(err)
		return err
	}
	defer func() {
		n.upMu.Lock()
		if n.upstream != nil {
			n.upstream.Close()
		}
		n.upMu.Unlock()
	}()
	if n.cfg.Role == RoleGroupSigma {
		// All group members must be connected before the first model
		// forward, or they would miss the round.
		n.WaitMembers(n.cfg.Members - 1)
	}

	for {
		f, err := up.Recv()
		if err != nil {
			if n.closing.Load() || !n.cfg.Reconnect {
				n.fail(fmt.Errorf("node %d: upstream: %w", n.cfg.ID, err))
				return n.err
			}
			up, err = n.redialUpstream(err)
			if err != nil {
				n.fail(err)
				return err
			}
			continue
		}
		n.flight.Record(obs.FlightEvent{
			Dir: obs.FlightRecv, Type: f.Type.String(), Peer: f.From,
			Seq: f.Seq, Bytes: len(f.Payload) * 8,
		})
		switch f.Type {
		case cosmicnet.MsgModel:
			if err := n.handleModel(f); err != nil {
				n.fail(err)
				return err
			}
		case cosmicnet.MsgDone:
			n.forwardDone()
			return nil
		default:
			n.logger.Warn("ignoring unexpected frame", "type", f.Type.String(), "from", f.From, "seq", f.Seq)
		}
	}
}

// handleModel processes one mini-batch round for a Delta or group Sigma.
func (n *Node) handleModel(f *cosmicnet.Frame) error {
	tr := n.obs.tracer()
	roundStart := time.Now()
	switch n.cfg.Role {
	case RoleDelta:
		sp := tr.Begin("runtime", "delta-compute", n.obs.threadID())
		partial, err := n.computePartial(f.Payload)
		sp.EndArgs(traceArgs(f, obs.ArgFlowIn))
		if err != nil {
			return err
		}
		n.obs.sent(len(partial))
		n.noteRound(f.Seq, time.Since(roundStart))
		if n.cfg.Monolithic {
			return n.sendUpstream(&cosmicnet.Frame{
				Type: cosmicnet.MsgPartial, Seq: f.Seq, From: n.cfg.ID,
				Weight: 1, Payload: partial, TraceID: f.TraceID,
			})
		}
		return n.streamUpstream(cosmicnet.MsgPartial, f.Seq, 1, partial, f.TraceID)

	case RoleGroupSigma:
		round := tr.Begin("runtime", "sigma-round", n.obs.threadID())
		// New round: clear the aggregation state before any member can
		// respond to the forwarded model. Reset arms the stale-round filter
		// on f.Seq, so an excluded member's late chunks fold into nothing.
		n.agg.Reset(f.Seq)
		seq, traceID := f.Seq, f.TraceID
		excludedRound := n.preExcludeSuspects(seq, n.cfg.MinQuorum)
		if n.cfg.Monolithic {
			n.agg.SetOnComplete(nil)
		} else {
			// Fold-on-arrival forwarding: the moment chunk idx has every
			// member's contribution, ship it upstream — the master starts
			// folding this group's early chunks while later ones are still
			// crossing the group's own links. The callback runs on
			// aggregation workers; sendUpstream serializes the writes.
			count := uint32(n.agg.ChunkCount())
			n.agg.SetOnComplete(func(idx int, span []float64, weight float64) {
				n.obs.sent(len(span))
				if err := n.sendUpstream(&cosmicnet.Frame{
					Type: cosmicnet.MsgGroupAggregate, Seq: seq, From: n.cfg.ID,
					Weight: weight, Payload: span, TraceID: traceID,
					ChunkIndex: uint32(idx), ChunkCount: count,
					ChunkOffset: uint32(idx * n.chunkWords),
				}); err != nil {
					n.fail(err)
				}
			})
		}
		n.broadcastDownstream(f)
		// The Sigma computes its own partial too; its contribution takes
		// the same chunked path as remote ones.
		sp := tr.Begin("runtime", "sigma-compute", n.obs.threadID())
		partial, err := n.computePartial(f.Payload)
		sp.End()
		if err != nil {
			return err
		}
		if err := n.pushLocalChunks(seq, partial, 1); err != nil {
			return err
		}
		// Wait until every chunk has every member (streaming mode has then
		// already forwarded each one).
		sp = tr.Begin("runtime", "sigma-aggregate-wait", n.obs.threadID())
		ok, err := n.agg.WaitComplete(n.cfg.RoundTimeout, nil)
		sp.End()
		if err != nil {
			return err
		}
		if !ok {
			if n.quorumFold(seq, n.cfg.MinQuorum, n.cfg.RoundTimeout) {
				excludedRound = true
			} else {
				lastSeen := n.lastSeenSummary()
				dump := n.dumpDiagnostics("round-timeout")
				n.logger.Error("round timed out waiting for group members",
					"round", seq, "last_seen", lastSeen, "diagnostics", dump)
				return fmt.Errorf("node %d: round %d timed out waiting for group members (last seen: %s; flight dump: %s)",
					n.cfg.ID, seq, lastSeen, dump)
			}
		}
		if excludedRound {
			n.obs.roundExcluded()
		}
		n.noteRound(seq, time.Since(roundStart))
		round.EndArgs(traceArgs(f, obs.ArgFlowIn))
		if !n.cfg.Monolithic {
			return nil // every chunk already forwarded on completion
		}
		sum, weight := n.agg.Sum()
		n.obs.sent(len(sum))
		return n.sendUpstream(&cosmicnet.Frame{
			Type: cosmicnet.MsgGroupAggregate, Seq: seq, From: n.cfg.ID,
			Weight: weight, Payload: sum, TraceID: traceID,
		})
	}
	return fmt.Errorf("node %d: role %v cannot handle model frames via Run", n.cfg.ID, n.cfg.Role)
}

// streamUpstream sends vec as a stream of fixed-boundary chunk frames. The
// payloads alias vec — nothing is copied.
func (n *Node) streamUpstream(typ cosmicnet.MsgType, seq uint32, weight float64, vec []float64, traceID uint64) error {
	count := uint32(ChunksForWords(len(vec), n.chunkWords))
	if len(vec) == 0 {
		return n.sendUpstream(&cosmicnet.Frame{
			Type: typ, Seq: seq, From: n.cfg.ID, Weight: weight,
			TraceID: traceID, ChunkIndex: 0, ChunkCount: 1,
		})
	}
	idx := uint32(0)
	for off := 0; off < len(vec); off += n.chunkWords {
		end := off + n.chunkWords
		if end > len(vec) {
			end = len(vec)
		}
		if err := n.sendUpstream(&cosmicnet.Frame{
			Type: typ, Seq: seq, From: n.cfg.ID, Weight: weight,
			Payload: vec[off:end], TraceID: traceID,
			ChunkIndex: idx, ChunkCount: count, ChunkOffset: uint32(off),
		}); err != nil {
			return err
		}
		idx++
	}
	return nil
}

// sendUpstream stamps the frame with a fresh wire span ID when it belongs to
// a trace, emits the matching send span (its ArgFlowOut is what the trace
// merger joins to the receiver's ArgFlowIn), records the flight event, and
// writes the frame upstream. Concurrent senders (per-chunk completion
// callbacks run on aggregation workers) are serialized.
func (n *Node) sendUpstream(f *cosmicnet.Frame) error {
	if f.TraceID != 0 {
		f.SpanID = n.nextSpanID()
	}
	if n.obs != nil {
		sp := n.obs.tracer().Begin("runtime", "send-"+f.Type.String(), n.obs.threadID())
		sp.EndArgs(traceArgs(f, obs.ArgFlowOut))
	}
	n.flight.Record(obs.FlightEvent{
		Dir: obs.FlightSend, Type: f.Type.String(), Seq: f.Seq, Bytes: len(f.Payload) * 8,
	})
	n.sendMu.Lock()
	defer n.sendMu.Unlock()
	n.upMu.Lock()
	up := n.upstream
	n.upMu.Unlock()
	if up == nil {
		return fmt.Errorf("node %d: no upstream connection", n.cfg.ID)
	}
	err := up.Send(f)
	if err != nil && n.cfg.Reconnect && !n.closing.Load() {
		// The Run loop is (or will be) redialing; this round's contribution
		// is lost, but the member survives to rejoin the next one.
		n.logger.Warn("upstream send failed; contribution dropped", "round", f.Seq, "err", err)
		return nil
	}
	return err
}

// broadcastDownstream forwards a frame to every member connection. Each hop
// gets its own wire span ID (a broadcast is one arrow per receiver in the
// merged trace), so the frame is copied per connection.
func (n *Node) broadcastDownstream(f *cosmicnet.Frame) {
	n.downstreamMu.Lock()
	conns := append([]*cosmicnet.Conn(nil), n.downstream...)
	n.downstreamMu.Unlock()
	// In quorum mode the sends are bounded: the broadcast walks the members
	// serially, so one flooded socket (a pre-excluded member that fell
	// rounds behind and stopped draining) would otherwise block the model
	// frame for every healthy member and starve the round below quorum. A
	// member that cannot absorb a frame within the round budget is treated
	// like one that cannot be written at all: pruned, to rejoin on a fresh
	// connection.
	var sendBudget time.Duration
	if n.cfg.MinQuorum > 0 && n.cfg.RoundTimeout > 0 {
		sendBudget = n.cfg.RoundTimeout
	}
	for _, c := range conns {
		out := *f
		if out.TraceID != 0 {
			out.SpanID = n.nextSpanID()
		}
		if n.obs != nil {
			sp := n.obs.tracer().Begin("runtime", "send-"+out.Type.String(), n.obs.threadID())
			sp.EndArgs(traceArgs(&out, obs.ArgFlowOut))
		}
		n.flight.Record(obs.FlightEvent{
			Dir: obs.FlightSend, Type: out.Type.String(), Seq: out.Seq, Bytes: len(out.Payload) * 8,
		})
		if sendBudget > 0 {
			c.SetWriteDeadline(time.Now().Add(sendBudget))
		}
		err := c.Send(&out)
		if sendBudget > 0 {
			c.SetWriteDeadline(time.Time{})
		}
		if err != nil {
			n.cfg.logf("node %d: downstream send: %v", n.cfg.ID, err)
			n.logger.Warn("downstream send failed", "round", out.Seq, "err", err)
			// A member connection that cannot be written to is dead: prune
			// it so later broadcasts stop burning a send on it. A rejoining
			// member arrives on a fresh connection via the accept loop.
			n.pruneDownstream(c)
		}
	}
}

// pruneDownstream drops one dead member connection, folding its byte
// counters into the node totals.
func (n *Node) pruneDownstream(dead *cosmicnet.Conn) {
	n.downstreamMu.Lock()
	for i, c := range n.downstream {
		if c == dead {
			n.downSentBase += c.BytesSent()
			n.downRecvBase += c.BytesReceived()
			n.downstream[i] = n.downstream[len(n.downstream)-1]
			n.downstream[len(n.downstream)-1] = nil
			n.downstream = n.downstream[:len(n.downstream)-1]
			break
		}
	}
	n.downstreamMu.Unlock()
	dead.Close()
}

func (n *Node) forwardDone() {
	n.flight.Record(obs.FlightEvent{Dir: obs.FlightMark, Type: "done"})
	n.broadcastDownstream(&cosmicnet.Frame{Type: cosmicnet.MsgDone, From: n.cfg.ID})
}

// Close releases the node's resources, severing the upstream connection if
// the node is mid-run (so a Close mid-training looks like a node crash to
// its Sigma, which the round timeout then surfaces).
func (n *Node) Close() {
	n.closing.Store(true)
	n.closeOnce.Do(func() { close(n.closeCh) })
	n.upMu.Lock()
	if n.upstream != nil {
		n.upstream.Close()
	}
	n.upMu.Unlock()
	if n.ln != nil {
		n.ln.Close()
	}
	if n.ring != nil {
		n.ring.Close()
	}
	n.downstreamMu.Lock()
	for _, c := range n.downstream {
		c.Close()
	}
	n.downstreamMu.Unlock()
	if n.netPool != nil {
		n.netPool.Close()
	}
	n.wg.Wait()
	if n.aggPool != nil {
		n.aggPool.Close()
	}
}
