package runtime

import (
	"fmt"
	"log"
	"strconv"
	"sync"
	"time"

	"repro/internal/cosmicnet"
	"repro/internal/dsl"
	"repro/internal/ml"
	"repro/internal/obs"
)

// NodeConfig configures one node of the scale-out system.
type NodeConfig struct {
	ID    uint32
	Role  Role
	Group int
	// UpstreamAddr is where this node sends its results: the group Sigma's
	// address for Deltas, the master's address for group Sigmas; empty for
	// the master.
	UpstreamAddr string
	// Members is the number of contributions this node's aggregation stage
	// expects per mini-batch (Sigma roles only).
	Members int
	// Engine computes partial updates.
	Engine Engine
	// ModelSize is the flat parameter-vector length.
	ModelSize int
	Agg       dsl.AggregatorKind
	LR        float64
	// ShardBatch is how many local samples the node consumes per
	// mini-batch round.
	ShardBatch int
	// RoundTimeout bounds how long a Sigma waits for its members'
	// contributions each round (0 = forever). With a timeout, a dead
	// member fails the round instead of wedging the cluster.
	RoundTimeout time.Duration
	// NetWorkers and AggWorkers size the Sigma thread pools.
	NetWorkers, AggWorkers int
	// RingCapacity bounds the circular buffer.
	RingCapacity int
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
	// Obs, when non-nil, records per-frame counters, aggregation fan-in,
	// ring depth, and per-round spans for this node. nil disables all of it.
	Obs *obs.Observer
}

func (c *NodeConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Node is one running member of the cluster.
type Node struct {
	cfg  NodeConfig
	obs  *nodeObs
	data []ml.Sample
	// cursor is the node's position in its data shard.
	cursor int

	ln       *cosmicnet.Listener
	upMu     sync.Mutex
	upstream *cosmicnet.Conn

	// Sigma machinery.
	ring    *CircularBuffer
	agg     *AggregationBuffer
	netPool *Pool
	aggPool *Pool
	// downstream are the member connections a Sigma forwards models to.
	downstream   []*cosmicnet.Conn
	downstreamMu sync.Mutex

	// groupAgg receives remote group aggregates at the master.
	groupAgg chan *cosmicnet.Frame

	helloMu    sync.Mutex
	helloCond  *sync.Cond
	helloCount int

	wg      sync.WaitGroup
	stopped chan struct{}
	errOnce sync.Once
	err     error
}

// Addr returns the node's listen address (Sigma roles).
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Err returns the first fatal error the node hit.
func (n *Node) Err() error { return n.err }

func (n *Node) fail(err error) {
	if err == nil {
		return
	}
	n.errOnce.Do(func() {
		n.err = err
		n.cfg.logf("node %d failed: %v", n.cfg.ID, err)
	})
}

// StartNode launches a node over its shard. Sigma roles open a listener and
// start the networking/aggregation pools; Delta roles only dial upstream
// (from Run).
func StartNode(cfg NodeConfig, shard []ml.Sample) (*Node, error) {
	if cfg.NetWorkers <= 0 {
		cfg.NetWorkers = 4
	}
	if cfg.AggWorkers <= 0 {
		cfg.AggWorkers = 4
	}
	if cfg.RingCapacity <= 0 {
		cfg.RingCapacity = 64
	}
	n := &Node{cfg: cfg, data: shard, stopped: make(chan struct{})}
	n.obs = newNodeObs(cfg.Obs, cfg.ID, cfg.Role)
	n.helloCond = sync.NewCond(&n.helloMu)
	if cfg.Role != RoleDelta {
		ln, err := cosmicnet.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		n.ln = ln
		n.ring = NewCircularBuffer(cfg.RingCapacity)
		if cfg.Obs != nil {
			n.ring.SetDepthGauge(cfg.Obs.Registry().Gauge(
				obs.Labeled("cosmic_node_ring_depth", "node", strconv.Itoa(int(cfg.ID)))))
		}
		n.agg = NewAggregationBuffer(cfg.ModelSize)
		n.netPool = NewPool(cfg.NetWorkers)
		n.aggPool = NewPool(cfg.AggWorkers)
		for i := 0; i < cfg.AggWorkers; i++ {
			n.wg.Add(1)
			go n.aggWorker()
		}
		n.wg.Add(1)
		go n.acceptLoop()
	}
	if cfg.Role == RoleMasterSigma {
		n.groupAgg = make(chan *cosmicnet.Frame, 16)
	}
	return n, nil
}

// aggWorker is one Aggregation Pool thread: it drains the circular buffer
// into the aggregation buffer until the ring closes.
func (n *Node) aggWorker() {
	defer n.wg.Done()
	for {
		c, ok := n.ring.Pop()
		if !ok {
			return
		}
		if err := n.agg.Add(c); err != nil {
			n.fail(err)
			return
		}
		n.obs.chunkFolded(c.Last)
	}
}

// acceptLoop is the Incoming Network Handler: it admits member connections
// and spawns a bounded reader per socket. (Go's netpoller is the epoll
// loop underneath; readers block cheaply until their socket is readable.)
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.AcceptConn()
		if err != nil {
			return // listener closed
		}
		n.downstreamMu.Lock()
		n.downstream = append(n.downstream, conn)
		n.downstreamMu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop dispatches inbound frames from one member connection.
func (n *Node) readLoop(conn *cosmicnet.Conn) {
	defer n.wg.Done()
	for {
		f, err := conn.Recv()
		if err != nil {
			return // peer closed
		}
		switch f.Type {
		case cosmicnet.MsgHello:
			n.cfg.logf("node %d: member %d connected (%s)", n.cfg.ID, f.From, f.Text)
			if n.obs != nil {
				n.obs.recvFrame(n.obs.framesHello, len(f.Payload))
			}
			n.helloMu.Lock()
			n.helloCount++
			n.helloMu.Unlock()
			n.helloCond.Broadcast()
		case cosmicnet.MsgPartial:
			if n.obs != nil {
				n.obs.recvFrame(n.obs.framesPartial, len(f.Payload))
			}
			// Networking Pool: copy the received vector into the circular
			// buffer as chunks; the Aggregation Pool picks them up
			// concurrently (producer-consumer overlap).
			frame := f
			n.netPool.Submit(func() {
				for _, c := range SplitIntoChunks(frame.Seq, frame.From, frame.Payload, frame.Weight) {
					if !n.ring.Push(c) {
						return
					}
				}
			})
		case cosmicnet.MsgGroupAggregate:
			if n.obs != nil {
				n.obs.recvFrame(n.obs.framesGroupAgg, len(f.Payload))
			}
			if n.groupAgg != nil {
				n.groupAgg <- f
			} else {
				n.fail(fmt.Errorf("node %d: unexpected group aggregate from %d", n.cfg.ID, f.From))
			}
		default:
			n.fail(fmt.Errorf("node %d: unexpected %v frame from %d", n.cfg.ID, f.Type, f.From))
		}
	}
}

// nextShardBatch returns the node's next ShardBatch samples, cycling
// through its shard.
func (n *Node) nextShardBatch() []ml.Sample {
	if len(n.data) == 0 {
		return nil
	}
	batch := make([]ml.Sample, 0, n.cfg.ShardBatch)
	for len(batch) < n.cfg.ShardBatch {
		batch = append(batch, n.data[n.cursor])
		n.cursor = (n.cursor + 1) % len(n.data)
	}
	return batch
}

// computePartial runs the engine over the next shard batch.
func (n *Node) computePartial(model []float64) ([]float64, error) {
	batch := n.nextShardBatch()
	if batch == nil {
		return make([]float64, n.cfg.ModelSize), nil
	}
	return n.cfg.Engine.PartialUpdate(model, batch)
}

// NetworkBytes sums the frame bytes this node moved over its upstream and
// member connections.
func (n *Node) NetworkBytes() (sent, received int64) {
	n.upMu.Lock()
	if n.upstream != nil {
		sent += n.upstream.BytesSent()
		received += n.upstream.BytesReceived()
	}
	n.upMu.Unlock()
	n.downstreamMu.Lock()
	for _, c := range n.downstream {
		sent += c.BytesSent()
		received += c.BytesReceived()
	}
	n.downstreamMu.Unlock()
	return sent, received
}

// WaitMembers blocks until k member hellos have arrived (Sigma startup
// barrier: a Sigma must know all its members before forwarding the first
// model broadcast).
func (n *Node) WaitMembers(k int) {
	n.helloMu.Lock()
	for n.helloCount < k {
		n.helloCond.Wait()
	}
	n.helloMu.Unlock()
}

// Run executes the node's role loop until MsgDone. It blocks; callers run
// it in a goroutine. The master does not use Run — the driver in
// Cluster.Train plays that role.
func (n *Node) Run() error {
	defer close(n.stopped)
	up, err := cosmicnet.Dial(n.cfg.UpstreamAddr)
	if err != nil {
		n.fail(err)
		return err
	}
	n.upMu.Lock()
	n.upstream = up
	n.upMu.Unlock()
	defer up.Close()
	if err := up.Send(&cosmicnet.Frame{Type: cosmicnet.MsgHello, From: n.cfg.ID, Text: n.Addr()}); err != nil {
		n.fail(err)
		return err
	}
	if n.cfg.Role == RoleGroupSigma {
		// All group members must be connected before the first model
		// forward, or they would miss the round.
		n.WaitMembers(n.cfg.Members - 1)
	}

	for {
		f, err := up.Recv()
		if err != nil {
			n.fail(fmt.Errorf("node %d: upstream: %w", n.cfg.ID, err))
			return n.err
		}
		switch f.Type {
		case cosmicnet.MsgModel:
			if err := n.handleModel(f); err != nil {
				n.fail(err)
				return err
			}
		case cosmicnet.MsgDone:
			n.forwardDone()
			return nil
		default:
			log.Printf("node %d: ignoring %v frame", n.cfg.ID, f.Type)
		}
	}
}

// handleModel processes one mini-batch round for a Delta or group Sigma.
func (n *Node) handleModel(f *cosmicnet.Frame) error {
	tr := n.obs.tracer()
	roundStart := time.Now()
	switch n.cfg.Role {
	case RoleDelta:
		sp := tr.Begin("runtime", "delta-compute", n.obs.threadID())
		partial, err := n.computePartial(f.Payload)
		sp.EndArgs(map[string]any{"seq": f.Seq})
		if err != nil {
			return err
		}
		n.obs.sent(len(partial))
		n.obs.roundDone(time.Since(roundStart))
		return n.upstream.Send(&cosmicnet.Frame{
			Type: cosmicnet.MsgPartial, Seq: f.Seq, From: n.cfg.ID,
			Weight: 1, Payload: partial,
		})

	case RoleGroupSigma:
		round := tr.Begin("runtime", "sigma-round", n.obs.threadID())
		// New round: clear the aggregation state before any member can
		// respond to the forwarded model.
		n.agg.Reset()
		n.broadcastDownstream(f)
		// The Sigma computes its own partial too; its contribution takes
		// the same chunked path as remote ones.
		sp := tr.Begin("runtime", "sigma-compute", n.obs.threadID())
		partial, err := n.computePartial(f.Payload)
		sp.End()
		if err != nil {
			return err
		}
		for _, c := range SplitIntoChunks(f.Seq, n.cfg.ID, partial, 1) {
			if !n.ring.Push(c) {
				return fmt.Errorf("node %d: ring closed mid-batch", n.cfg.ID)
			}
		}
		// Wait for every member's every chunk, then ship the group sum.
		sp = tr.Begin("runtime", "sigma-aggregate-wait", n.obs.threadID())
		ok := n.agg.WaitChunksTimeout(n.cfg.Members*ChunksFor(n.cfg.ModelSize), n.cfg.RoundTimeout)
		sp.End()
		if !ok {
			return fmt.Errorf("node %d: round %d timed out waiting for group members", n.cfg.ID, f.Seq)
		}
		sum, weight := n.agg.Sum()
		n.obs.sent(len(sum))
		n.obs.roundDone(time.Since(roundStart))
		round.EndArgs(map[string]any{"seq": f.Seq})
		return n.upstream.Send(&cosmicnet.Frame{
			Type: cosmicnet.MsgGroupAggregate, Seq: f.Seq, From: n.cfg.ID,
			Weight: weight, Payload: sum,
		})
	}
	return fmt.Errorf("node %d: role %v cannot handle model frames via Run", n.cfg.ID, n.cfg.Role)
}

// broadcastDownstream forwards a frame to every member connection.
func (n *Node) broadcastDownstream(f *cosmicnet.Frame) {
	n.downstreamMu.Lock()
	conns := append([]*cosmicnet.Conn(nil), n.downstream...)
	n.downstreamMu.Unlock()
	for _, c := range conns {
		if err := c.Send(f); err != nil {
			n.cfg.logf("node %d: downstream send: %v", n.cfg.ID, err)
		}
	}
}

func (n *Node) forwardDone() {
	n.broadcastDownstream(&cosmicnet.Frame{Type: cosmicnet.MsgDone, From: n.cfg.ID})
}

// Close releases the node's resources, severing the upstream connection if
// the node is mid-run (so a Close mid-training looks like a node crash to
// its Sigma, which the round timeout then surfaces).
func (n *Node) Close() {
	n.upMu.Lock()
	if n.upstream != nil {
		n.upstream.Close()
	}
	n.upMu.Unlock()
	if n.ln != nil {
		n.ln.Close()
	}
	if n.ring != nil {
		n.ring.Close()
	}
	n.downstreamMu.Lock()
	for _, c := range n.downstream {
		c.Close()
	}
	n.downstreamMu.Unlock()
	if n.netPool != nil {
		n.netPool.Close()
	}
	n.wg.Wait()
	if n.aggPool != nil {
		n.aggPool.Close()
	}
}
