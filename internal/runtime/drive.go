package runtime

import (
	"fmt"
	"time"

	"repro/internal/cosmicnet"
	"repro/internal/dsl"
	"repro/internal/obs"
)

// DriveConfig parameterizes the master Sigma's training loop, independent
// of whether the other nodes are goroutines in this process (Cluster) or
// remote processes (package deploy).
type DriveConfig struct {
	// Groups is the number of aggregation groups.
	Groups    int
	ModelSize int
	Agg       dsl.AggregatorKind
	LR        float64
	// MiniBatch is the system-wide samples per round (for the summing
	// aggregator's update scale).
	MiniBatch int
	// RoundTimeout bounds each round's aggregation waits (0 = forever).
	RoundTimeout time.Duration
	// MinQuorum, when > 0, folds a timed-out round with the members that
	// arrived (at least MinQuorum of them) instead of failing the run; see
	// NodeConfig.MinQuorum.
	MinQuorum int
	// Fail, when non-nil, aborts a round when a node failure arrives.
	Fail <-chan error
	// TraceIDBase, when nonzero, turns on distributed trace propagation:
	// round seq gets trace ID TraceIDBase+seq, stamped on the model
	// broadcast and carried by every partial and group aggregate back up.
	TraceIDBase uint64
	// Diagnostics, when non-nil, is invoked on round failure to dump
	// whatever forensic state the driver's environment has (e.g. every
	// in-process node's flight recorder) and returns the bundle's path for
	// the error message. Nil falls back to the master's own flight dump.
	Diagnostics func(reason string) string
}

// RoundTraceID is the trace ID of round seq under the given base (0 base =
// tracing off).
func RoundTraceID(base uint64, seq int) uint64 {
	if base == 0 {
		return 0
	}
	return base + uint64(seq)
}

// DriveTraining runs the master Sigma's side of training for the given
// number of mini-batch rounds: broadcast the model, compute the master's
// own partial, fold every member's contribution — its own group's partials
// and the other groups' (streamed) aggregates all flow through the same
// ring — and apply the update rule to each chunk of the model the moment
// that chunk has every member, repeat. There is no whole-vector barrier:
// by the time the last chunk completes, the rest of the model is already
// updated. The receiver must be a node started with RoleMasterSigma.
func (m *Node) DriveTraining(cfg DriveConfig, model []float64, rounds int) ([]float64, TrainStats, error) {
	if m.cfg.Role != RoleMasterSigma {
		return nil, TrainStats{}, fmt.Errorf("runtime: DriveTraining on a %v node", m.cfg.Role)
	}
	if len(model) != cfg.ModelSize {
		return nil, TrainStats{}, fmt.Errorf("runtime: model length %d, want %d", len(model), cfg.ModelSize)
	}
	cur := append([]float64(nil), model...)
	stats := TrainStats{Rounds: rounds}
	tr := m.obs.tracer()
	diag := func(reason string) string {
		if cfg.Diagnostics != nil {
			return cfg.Diagnostics(reason)
		}
		return m.dumpDiagnostics(reason)
	}
	scale := cfg.LR / float64(cfg.MiniBatch)

	for seq := 0; seq < rounds; seq++ {
		start := time.Now()
		traceID := RoundTraceID(cfg.TraceIDBase, seq)
		roundArgs := map[string]any{"seq": seq}
		if traceID != 0 {
			roundArgs[obs.ArgTraceID] = obs.IDString(traceID)
		}
		roundSp := tr.Begin("runtime", "round", m.obs.threadID())
		m.agg.Reset(uint32(seq))
		excludedRound := m.preExcludeSuspects(uint32(seq), cfg.MinQuorum)
		// Apply-on-complete: the moment chunk idx has every member's
		// contribution, the update rule of the stack (Equations 2 and 3b)
		// lands on that span of the model. No member can complete a chunk
		// before the master's own local push below, and the broadcast is
		// done by then, so cur is never mutated while a send reads it.
		m.agg.SetOnComplete(func(idx int, span []float64, weight float64) {
			out := cur[idx*m.chunkWords : idx*m.chunkWords+len(span)]
			switch cfg.Agg {
			case dsl.AggAverage:
				for j, v := range span {
					out[j] = v / weight
				}
			case dsl.AggSum:
				for j, v := range span {
					out[j] -= scale * v
				}
			}
		})
		// Hierarchical model broadcast: one frame to each direct child
		// (group Sigmas forward to their Deltas); broadcastDownstream stamps
		// a fresh wire span ID per hop so the merged trace shows one flow
		// arrow per receiver.
		sp := tr.Begin("runtime", "broadcast", m.obs.threadID())
		m.broadcastDownstream(&cosmicnet.Frame{
			Type: cosmicnet.MsgModel, Seq: uint32(seq), Payload: cur, TraceID: traceID,
		})
		sp.EndArgs(roundArgs)
		// The master is group 0's Sigma and computes its own partial.
		sp = tr.Begin("runtime", "master-compute", m.obs.threadID())
		partial, err := m.computePartial(cur)
		sp.End()
		if err != nil {
			return nil, stats, err
		}
		if err := m.pushLocalChunks(uint32(seq), partial, 1); err != nil {
			return nil, stats, err
		}
		// Wait for every chunk of the model to finish folding (the update
		// rule has then already been applied chunk by chunk).
		sp = tr.Begin("runtime", "aggregate-wait", m.obs.threadID())
		ok, err := m.agg.WaitComplete(cfg.RoundTimeout, cfg.Fail)
		sp.End()
		if err != nil {
			dump := diag("node-failed")
			return nil, stats, fmt.Errorf("runtime: node failed mid-round: %w (last seen: %s; flight dump: %s)",
				err, m.lastSeenSummary(), dump)
		}
		if !ok {
			if m.quorumFold(uint32(seq), cfg.MinQuorum, cfg.RoundTimeout) {
				excludedRound = true
			} else {
				lastSeen := m.lastSeenSummary()
				dump := diag("round-timeout")
				m.logger.Error("round timed out waiting for contributions",
					"round", seq, "last_seen", lastSeen, "diagnostics", dump)
				return nil, stats, fmt.Errorf("runtime: round %d timed out waiting for contributions (last seen: %s; flight dump: %s)",
					seq, lastSeen, dump)
			}
		}
		if excludedRound {
			stats.ExcludedRounds++
			m.obs.roundExcluded()
		}
		d := time.Since(start)
		stats.RoundDurations = append(stats.RoundDurations, d)
		m.noteRound(uint32(seq), d)
		roundSp.EndArgs(roundArgs)
	}
	stats.RoundP50, stats.RoundP95, stats.RoundMax = summarizeRounds(stats.RoundDurations)
	return cur, stats, nil
}

// SendDone broadcasts the shutdown message down the hierarchy.
func (m *Node) SendDone() { m.forwardDone() }
