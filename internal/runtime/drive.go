package runtime

import (
	"fmt"
	"time"

	"repro/internal/cosmicnet"
	"repro/internal/dsl"
	"repro/internal/obs"
)

// DriveConfig parameterizes the master Sigma's training loop, independent
// of whether the other nodes are goroutines in this process (Cluster) or
// remote processes (package deploy).
type DriveConfig struct {
	// Groups is the number of aggregation groups; GroupZeroMembers the
	// size of the master's own group (including itself).
	Groups, GroupZeroMembers int
	ModelSize                int
	Agg                      dsl.AggregatorKind
	LR                       float64
	// MiniBatch is the system-wide samples per round (for the summing
	// aggregator's update scale).
	MiniBatch int
	// RoundTimeout bounds each round's aggregation waits (0 = forever).
	RoundTimeout time.Duration
	// Fail, when non-nil, aborts a round when a node failure arrives.
	Fail <-chan error
	// TraceIDBase, when nonzero, turns on distributed trace propagation:
	// round seq gets trace ID TraceIDBase+seq, stamped on the model
	// broadcast and carried by every partial and group aggregate back up.
	TraceIDBase uint64
	// Diagnostics, when non-nil, is invoked on round failure to dump
	// whatever forensic state the driver's environment has (e.g. every
	// in-process node's flight recorder) and returns the bundle's path for
	// the error message. Nil falls back to the master's own flight dump.
	Diagnostics func(reason string) string
}

// RoundTraceID is the trace ID of round seq under the given base (0 base =
// tracing off).
func RoundTraceID(base uint64, seq int) uint64 {
	if base == 0 {
		return 0
	}
	return base + uint64(seq)
}

// DriveTraining runs the master Sigma's side of training for the given
// number of mini-batch rounds: broadcast the model, compute the master's
// own partial, aggregate group 0 locally, combine the other groups'
// aggregates, apply the update rule, repeat. The receiver must be a node
// started with RoleMasterSigma.
func (m *Node) DriveTraining(cfg DriveConfig, model []float64, rounds int) ([]float64, TrainStats, error) {
	if m.cfg.Role != RoleMasterSigma {
		return nil, TrainStats{}, fmt.Errorf("runtime: DriveTraining on a %v node", m.cfg.Role)
	}
	if len(model) != cfg.ModelSize {
		return nil, TrainStats{}, fmt.Errorf("runtime: model length %d, want %d", len(model), cfg.ModelSize)
	}
	cur := append([]float64(nil), model...)
	stats := TrainStats{Rounds: rounds}
	groupZeroChunks := cfg.GroupZeroMembers * ChunksFor(cfg.ModelSize)
	tr := m.obs.tracer()
	diag := func(reason string) string {
		if cfg.Diagnostics != nil {
			return cfg.Diagnostics(reason)
		}
		return m.dumpDiagnostics(reason)
	}

	for seq := 0; seq < rounds; seq++ {
		start := time.Now()
		traceID := RoundTraceID(cfg.TraceIDBase, seq)
		roundArgs := map[string]any{"seq": seq}
		if traceID != 0 {
			roundArgs[obs.ArgTraceID] = obs.IDString(traceID)
		}
		roundSp := tr.Begin("runtime", "round", m.obs.threadID())
		m.agg.Reset()
		// Hierarchical model broadcast: one frame to each direct child
		// (group Sigmas forward to their Deltas); broadcastDownstream stamps
		// a fresh wire span ID per hop so the merged trace shows one flow
		// arrow per receiver.
		sp := tr.Begin("runtime", "broadcast", m.obs.threadID())
		m.broadcastDownstream(&cosmicnet.Frame{
			Type: cosmicnet.MsgModel, Seq: uint32(seq), Payload: cur, TraceID: traceID,
		})
		sp.EndArgs(roundArgs)
		// The master is group 0's Sigma and computes its own partial.
		sp = tr.Begin("runtime", "master-compute", m.obs.threadID())
		partial, err := m.computePartial(cur)
		sp.End()
		if err != nil {
			return nil, stats, err
		}
		for _, ch := range SplitIntoChunks(uint32(seq), 0, partial, 1) {
			if !m.ring.Push(ch) {
				return nil, stats, fmt.Errorf("runtime: master ring closed")
			}
		}
		// Level 1: group 0 aggregates locally.
		sp = tr.Begin("runtime", "group-zero-aggregate", m.obs.threadID())
		ok := m.agg.WaitChunksTimeout(groupZeroChunks, cfg.RoundTimeout)
		sp.End()
		if !ok {
			lastSeen := m.lastSeenSummary()
			dump := diag("round-timeout")
			m.logger.Error("round timed out waiting for group 0 partials",
				"round", seq, "last_seen", lastSeen, "diagnostics", dump)
			return nil, stats, fmt.Errorf("runtime: round %d timed out waiting for group 0 partials (last seen: %s; flight dump: %s)",
				seq, lastSeen, dump)
		}
		sum, weight := m.agg.Sum()
		// Level 2: combine the other groups' aggregates.
		combine := tr.Begin("runtime", "combine-groups", m.obs.threadID())
		for g := 1; g < cfg.Groups; g++ {
			var timeoutC <-chan time.Time
			if cfg.RoundTimeout > 0 {
				timer := time.NewTimer(cfg.RoundTimeout)
				timeoutC = timer.C
				defer timer.Stop()
			}
			var failC <-chan error
			if cfg.Fail != nil {
				failC = cfg.Fail
			}
			var f *cosmicnet.Frame
			select {
			case f = <-m.groupAgg:
			case err := <-failC:
				if err != nil {
					dump := diag("node-failed")
					return nil, stats, fmt.Errorf("runtime: node failed mid-round: %w (last seen: %s; flight dump: %s)",
						err, m.lastSeenSummary(), dump)
				}
				return nil, stats, fmt.Errorf("runtime: node exited mid-round")
			case <-timeoutC:
				lastSeen := m.lastSeenSummary()
				dump := diag("round-timeout")
				m.logger.Error("round timed out waiting for group aggregate",
					"round", seq, "group", g, "last_seen", lastSeen, "diagnostics", dump)
				return nil, stats, fmt.Errorf("runtime: round %d timed out waiting for group %d (last seen: %s; flight dump: %s)",
					seq, g, lastSeen, dump)
			}
			if int(f.Seq) != seq {
				return nil, stats, fmt.Errorf("runtime: group aggregate for round %d during round %d", f.Seq, seq)
			}
			for i, v := range f.Payload {
				sum[i] += v
			}
			weight += f.Weight
		}
		combine.End()
		// The update rule of the stack (Equations 2 and 3b).
		switch cfg.Agg {
		case dsl.AggAverage:
			for i := range cur {
				cur[i] = sum[i] / weight
			}
		case dsl.AggSum:
			scale := cfg.LR / float64(cfg.MiniBatch)
			for i := range cur {
				cur[i] -= scale * sum[i]
			}
		}
		d := time.Since(start)
		stats.RoundDurations = append(stats.RoundDurations, d)
		m.noteRound(uint32(seq), d)
		roundSp.EndArgs(roundArgs)
	}
	stats.RoundP50, stats.RoundP95, stats.RoundMax = summarizeRounds(stats.RoundDurations)
	return cur, stats, nil
}

// SendDone broadcasts the shutdown message down the hierarchy.
func (m *Node) SendDone() { m.forwardDone() }
