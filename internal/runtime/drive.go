package runtime

import (
	"fmt"
	"time"

	"repro/internal/cosmicnet"
	"repro/internal/dsl"
)

// DriveConfig parameterizes the master Sigma's training loop, independent
// of whether the other nodes are goroutines in this process (Cluster) or
// remote processes (package deploy).
type DriveConfig struct {
	// Groups is the number of aggregation groups; GroupZeroMembers the
	// size of the master's own group (including itself).
	Groups, GroupZeroMembers int
	ModelSize                int
	Agg                      dsl.AggregatorKind
	LR                       float64
	// MiniBatch is the system-wide samples per round (for the summing
	// aggregator's update scale).
	MiniBatch int
	// RoundTimeout bounds each round's aggregation waits (0 = forever).
	RoundTimeout time.Duration
	// Fail, when non-nil, aborts a round when a node failure arrives.
	Fail <-chan error
}

// DriveTraining runs the master Sigma's side of training for the given
// number of mini-batch rounds: broadcast the model, compute the master's
// own partial, aggregate group 0 locally, combine the other groups'
// aggregates, apply the update rule, repeat. The receiver must be a node
// started with RoleMasterSigma.
func (m *Node) DriveTraining(cfg DriveConfig, model []float64, rounds int) ([]float64, TrainStats, error) {
	if m.cfg.Role != RoleMasterSigma {
		return nil, TrainStats{}, fmt.Errorf("runtime: DriveTraining on a %v node", m.cfg.Role)
	}
	if len(model) != cfg.ModelSize {
		return nil, TrainStats{}, fmt.Errorf("runtime: model length %d, want %d", len(model), cfg.ModelSize)
	}
	cur := append([]float64(nil), model...)
	stats := TrainStats{Rounds: rounds}
	groupZeroChunks := cfg.GroupZeroMembers * ChunksFor(cfg.ModelSize)
	tr := m.obs.tracer()

	for seq := 0; seq < rounds; seq++ {
		start := time.Now()
		roundSp := tr.Begin("runtime", "round", m.obs.threadID())
		m.agg.Reset()
		// Hierarchical model broadcast: one frame to each direct child
		// (group Sigmas forward to their Deltas).
		sp := tr.Begin("runtime", "broadcast", m.obs.threadID())
		m.broadcastDownstream(&cosmicnet.Frame{
			Type: cosmicnet.MsgModel, Seq: uint32(seq), Payload: cur,
		})
		sp.End()
		// The master is group 0's Sigma and computes its own partial.
		sp = tr.Begin("runtime", "master-compute", m.obs.threadID())
		partial, err := m.computePartial(cur)
		sp.End()
		if err != nil {
			return nil, stats, err
		}
		for _, ch := range SplitIntoChunks(uint32(seq), 0, partial, 1) {
			if !m.ring.Push(ch) {
				return nil, stats, fmt.Errorf("runtime: master ring closed")
			}
		}
		// Level 1: group 0 aggregates locally.
		sp = tr.Begin("runtime", "group-zero-aggregate", m.obs.threadID())
		ok := m.agg.WaitChunksTimeout(groupZeroChunks, cfg.RoundTimeout)
		sp.End()
		if !ok {
			return nil, stats, fmt.Errorf("runtime: round %d timed out waiting for group 0 partials", seq)
		}
		sum, weight := m.agg.Sum()
		// Level 2: combine the other groups' aggregates.
		combine := tr.Begin("runtime", "combine-groups", m.obs.threadID())
		for g := 1; g < cfg.Groups; g++ {
			var timeoutC <-chan time.Time
			if cfg.RoundTimeout > 0 {
				timer := time.NewTimer(cfg.RoundTimeout)
				timeoutC = timer.C
				defer timer.Stop()
			}
			var failC <-chan error
			if cfg.Fail != nil {
				failC = cfg.Fail
			}
			var f *cosmicnet.Frame
			select {
			case f = <-m.groupAgg:
			case err := <-failC:
				if err != nil {
					return nil, stats, fmt.Errorf("runtime: node failed mid-round: %w", err)
				}
				return nil, stats, fmt.Errorf("runtime: node exited mid-round")
			case <-timeoutC:
				return nil, stats, fmt.Errorf("runtime: round %d timed out waiting for group %d", seq, g)
			}
			if int(f.Seq) != seq {
				return nil, stats, fmt.Errorf("runtime: group aggregate for round %d during round %d", f.Seq, seq)
			}
			for i, v := range f.Payload {
				sum[i] += v
			}
			weight += f.Weight
		}
		combine.End()
		// The update rule of the stack (Equations 2 and 3b).
		switch cfg.Agg {
		case dsl.AggAverage:
			for i := range cur {
				cur[i] = sum[i] / weight
			}
		case dsl.AggSum:
			scale := cfg.LR / float64(cfg.MiniBatch)
			for i := range cur {
				cur[i] -= scale * sum[i]
			}
		}
		d := time.Since(start)
		stats.RoundDurations = append(stats.RoundDurations, d)
		m.obs.roundDone(d)
		roundSp.EndArgs(map[string]any{"seq": seq})
	}
	stats.RoundP50, stats.RoundP95, stats.RoundMax = summarizeRounds(stats.RoundDurations)
	return cur, stats, nil
}

// SendDone broadcasts the shutdown message down the hierarchy.
func (m *Node) SendDone() { m.forwardDone() }
