package runtime

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dfg"
	"repro/internal/dsl"
	"repro/internal/ml"
)

func TestCircularBufferFIFO(t *testing.T) {
	cb := NewCircularBuffer(4)
	for i := 0; i < 4; i++ {
		if !cb.Push(Chunk{Offset: i}) {
			t.Fatal("push failed")
		}
	}
	for i := 0; i < 4; i++ {
		c, ok := cb.Pop()
		if !ok || c.Offset != i {
			t.Fatalf("pop %d: got %v %v", i, c.Offset, ok)
		}
	}
}

func TestCircularBufferBlocksAndCloses(t *testing.T) {
	cb := NewCircularBuffer(1)
	cb.Push(Chunk{})
	done := make(chan bool)
	go func() {
		done <- cb.Push(Chunk{}) // blocks until close
	}()
	cb.Close()
	if ok := <-done; ok {
		t.Error("push after close should report false")
	}
	if _, ok := cb.Pop(); !ok {
		t.Error("pending chunk should remain poppable after close")
	}
	if _, ok := cb.Pop(); ok {
		t.Error("drained closed ring should report false")
	}
}

// TestCircularBufferConcurrent delivers every chunk exactly once under
// concurrent producers and consumers.
func TestCircularBufferConcurrent(t *testing.T) {
	const producers, perProducer = 8, 200
	cb := NewCircularBuffer(16)
	var got sync.Map
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ch, ok := cb.Pop()
				if !ok {
					return
				}
				if _, dup := got.LoadOrStore(ch.Offset, true); dup {
					t.Errorf("chunk %d delivered twice", ch.Offset)
				}
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				cb.Push(Chunk{Offset: p*perProducer + i})
			}
		}(p)
	}
	pwg.Wait()
	cb.Close()
	wg.Wait()
	count := 0
	got.Range(func(any, any) bool { count++; return true })
	if count != producers*perProducer {
		t.Errorf("delivered %d chunks, want %d", count, producers*perProducer)
	}
}

func TestAggregationBufferConcurrentSum(t *testing.T) {
	const n, contributors = 5000, 10
	ab := NewAggregationBuffer(n)
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = float64(i % 17)
	}
	var wg sync.WaitGroup
	for c := 0; c < contributors; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for _, ch := range SplitIntoChunks(0, uint32(id), vec, 1) {
				if err := ab.Add(ch); err != nil {
					t.Error(err)
				}
			}
		}(c)
	}
	wg.Wait()
	ab.WaitChunks(contributors * ChunksFor(n))
	mean, w := ab.WeightedMean()
	if w != contributors {
		t.Fatalf("weight %g, want %d", w, contributors)
	}
	for i := range vec {
		if math.Abs(mean[i]-vec[i]) > 1e-12 {
			t.Fatalf("mean[%d] = %g, want %g", i, mean[i], vec[i])
		}
	}
	if ab.Contributions() != contributors {
		t.Errorf("contributions %d", ab.Contributions())
	}
	ab.Reset(0)
	if _, w := ab.Sum(); w != 0 {
		t.Error("reset left weight")
	}
}

func TestSplitIntoChunksProperties(t *testing.T) {
	check := func(n uint16) bool {
		vec := make([]float64, int(n))
		for i := range vec {
			vec[i] = float64(i)
		}
		chunks := SplitIntoChunks(3, 7, vec, 2)
		if len(chunks) != ChunksFor(len(vec)) {
			return false
		}
		lastSeen := 0
		covered := 0
		for i, c := range chunks {
			covered += len(c.Data)
			if c.Seq != 3 || c.From != 7 || c.Weight != 2 {
				return false
			}
			if c.Last {
				lastSeen++
				if i != len(chunks)-1 {
					return false
				}
			}
		}
		if len(vec) > 0 && covered != len(vec) {
			return false
		}
		return lastSeen == 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestAssignTopologies(t *testing.T) {
	cases := []struct{ nodes, groups int }{
		{1, 1}, {3, 1}, {4, 1}, {6, 2}, {16, 4}, {5, 5},
	}
	for _, c := range cases {
		topo, err := Assign(c.nodes, c.groups)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		sigmas := 0
		for _, r := range topo.RoleOf {
			if r != RoleDelta {
				sigmas++
			}
		}
		if sigmas != c.groups {
			t.Errorf("%v: %d sigma nodes, want %d", c, sigmas, c.groups)
		}
		total := 0
		for _, m := range topo.Members {
			total += len(m)
		}
		if total != c.nodes {
			t.Errorf("%v: members cover %d nodes", c, total)
		}
	}
	if _, err := Assign(2, 5); err == nil {
		t.Error("more groups than nodes should fail")
	}
	if _, err := Assign(0, 1); err == nil {
		t.Error("zero nodes should fail")
	}
}

// makeCluster builds a linear-regression cluster over loopback TCP.
func makeCluster(t *testing.T, nodes, groups, threads int, agg dsl.AggregatorKind) (*Cluster, *ml.LinearRegression, [][]ml.Sample) {
	t.Helper()
	alg := &ml.LinearRegression{M: 24}
	rng := rand.New(rand.NewSource(31))
	truth := alg.InitModel(rng)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	shards := make([][]ml.Sample, nodes)
	for n := range shards {
		shards[n] = make([]ml.Sample, 40)
		for i := range shards[n] {
			x := make([]float64, alg.M)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			shards[n][i] = ml.Sample{X: x, Y: []float64{ml.Dot(truth, x)}}
		}
	}
	const lr = 0.01
	cl, err := Launch(ClusterOptions{
		Nodes: nodes, Groups: groups,
		Engines: func(int) Engine {
			return &RefEngine{Alg: alg, Threads: threads, LR: lr, Agg: agg}
		},
		Shards:    func(id int) []ml.Sample { return shards[id] },
		ModelSize: alg.ModelSize(),
		Agg:       agg,
		LR:        lr,
		MiniBatch: nodes * 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, alg, shards
}

// referenceRounds mirrors the cluster's math in-process: per round each
// node's engine partial over its next shard slice, combined per the
// aggregator.
func referenceRounds(alg ml.Algorithm, shards [][]ml.Sample, model []float64,
	rounds, perNode, threads int, lr float64, agg dsl.AggregatorKind, miniBatch int) []float64 {

	cur := append([]float64(nil), model...)
	cursors := make([]int, len(shards))
	for r := 0; r < rounds; r++ {
		var partials [][]float64
		for n := range shards {
			batch := make([]ml.Sample, 0, perNode)
			for len(batch) < perNode {
				batch = append(batch, shards[n][cursors[n]])
				cursors[n] = (cursors[n] + 1) % len(shards[n])
			}
			eng := &RefEngine{Alg: alg, Threads: threads, LR: lr, Agg: agg}
			p, _ := eng.PartialUpdate(cur, batch)
			partials = append(partials, p)
		}
		switch agg {
		case dsl.AggAverage:
			next := make([]float64, len(cur))
			for _, p := range partials {
				ml.AXPY(1, p, next)
			}
			ml.Scale(1/float64(len(partials)), next)
			cur = next
		case dsl.AggSum:
			for _, p := range partials {
				ml.AXPY(-lr/float64(miniBatch), p, cur)
			}
		}
	}
	return cur
}

func TestClusterMatchesReferenceFlat(t *testing.T) {
	const nodes, threads, rounds = 4, 2, 3
	cl, alg, shards := makeCluster(t, nodes, 1, threads, dsl.AggAverage)
	defer cl.Close()

	model := make([]float64, alg.ModelSize()) // zero init, deterministic
	got, stats, err := cl.Train(model, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != rounds || len(stats.RoundDurations) != rounds {
		t.Errorf("stats: %+v", stats)
	}
	want := referenceRounds(alg, shards, model, rounds, 8, threads, 0.01, dsl.AggAverage, nodes*8)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("w[%d] = %.15g distributed, %.15g reference", i, got[i], want[i])
		}
	}
}

// TestHierarchyIsTransparent: a 6-node cluster must produce the same model
// whether aggregation is flat (1 group) or hierarchical (2 groups), modulo
// floating-point association.
func TestHierarchyIsTransparent(t *testing.T) {
	const nodes, threads, rounds = 6, 1, 3
	run := func(groups int) []float64 {
		cl, alg, _ := makeCluster(t, nodes, groups, threads, dsl.AggAverage)
		defer cl.Close()
		model := make([]float64, alg.ModelSize())
		got, _, err := cl.Train(model, rounds)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Shutdown(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	flat := run(1)
	hier := run(2)
	for i := range flat {
		if math.Abs(flat[i]-hier[i]) > 1e-9*(1+math.Abs(flat[i])) {
			t.Fatalf("w[%d]: flat %.12g, hierarchical %.12g", i, flat[i], hier[i])
		}
	}
}

func TestClusterSumAggregator(t *testing.T) {
	const nodes, rounds = 3, 2
	cl, alg, shards := makeCluster(t, nodes, 1, 1, dsl.AggSum)
	defer cl.Close()
	model := make([]float64, alg.ModelSize())
	got, _, err := cl.Train(model, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Shutdown(); err != nil {
		t.Fatal(err)
	}
	want := referenceRounds(alg, shards, model, rounds, 8, 1, 0.01, dsl.AggSum, nodes*8)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("w[%d] = %.15g distributed, %.15g reference", i, got[i], want[i])
		}
	}
}

// TestClusterTrainingConverges: loss over the union of shards decreases.
func TestClusterTrainingConverges(t *testing.T) {
	cl, alg, shards := makeCluster(t, 4, 2, 2, dsl.AggAverage)
	defer cl.Close()
	var all []ml.Sample
	for _, s := range shards {
		all = append(all, s...)
	}
	model := make([]float64, alg.ModelSize())
	before := ml.MeanLoss(alg, model, all)
	got, _, err := cl.Train(model, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Shutdown(); err != nil {
		t.Fatal(err)
	}
	after := ml.MeanLoss(alg, got, all)
	if after >= before/2 {
		t.Errorf("loss %g -> %g; distributed training is not learning", before, after)
	}
}

func TestFlattenModelRoundTrip(t *testing.T) {
	alg := &ml.MLP{In: 3, Hid: 4, Out: 2}
	model := make([]float64, alg.ModelSize())
	for i := range model {
		model[i] = float64(i) * 1.5
	}
	flat := FlattenModel(alg, alg.PackModel(model))
	for i := range model {
		if flat[i] != model[i] {
			t.Fatalf("flat[%d] = %g, want %g", i, flat[i], model[i])
		}
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(3)
	var mu sync.Mutex
	count := 0
	for i := 0; i < 100; i++ {
		p.Submit(func() {
			mu.Lock()
			count++
			mu.Unlock()
		})
	}
	p.Close()
	if count != 100 {
		t.Errorf("ran %d tasks, want 100", count)
	}
}

// TestRoundTimeoutSurfacesDeadNode: with a bounded round, killing a Delta
// turns into a prompt training error instead of a wedged cluster.
func TestRoundTimeoutSurfacesDeadNode(t *testing.T) {
	alg := &ml.LinearRegression{M: 8}
	shards := make([][]ml.Sample, 4)
	for i := range shards {
		shards[i] = make([]ml.Sample, 8)
		for j := range shards[i] {
			shards[i][j] = ml.Sample{X: make([]float64, 8), Y: []float64{0}}
		}
	}
	cl, err := Launch(ClusterOptions{
		Nodes: 4, Groups: 2,
		Engines: func(int) Engine {
			return &RefEngine{Alg: alg, Threads: 1, LR: 0.01, Agg: dsl.AggAverage}
		},
		Shards:       func(id int) []ml.Sample { return shards[id] },
		ModelSize:    alg.ModelSize(),
		Agg:          dsl.AggAverage,
		LR:           0.01,
		MiniBatch:    8,
		RoundTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Kill a worker node before training starts: the group Sigma (or the
	// master) will wait for its contribution and must time out.
	cl.nodes[len(cl.nodes)-1].Close()

	done := make(chan error, 1)
	go func() {
		_, _, err := cl.Train(make([]float64, alg.ModelSize()), 3)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("training succeeded despite a dead node")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("training wedged: round timeout did not fire")
	}
}

// TestWaitChunksTimeoutSemantics exercises the timed wait directly.
func TestWaitChunksTimeoutSemantics(t *testing.T) {
	ab := NewAggregationBuffer(16)
	start := time.Now()
	if ab.WaitChunksTimeout(1, 50*time.Millisecond) {
		t.Error("wait reported success with no chunks")
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("timed wait returned too early")
	}
	// Satisfied waits report true and do not consume the full timeout.
	go func() {
		ab.Add(Chunk{Data: []float64{1}, Weight: 1, Last: true})
	}()
	if !ab.WaitChunksTimeout(1, 2*time.Second) {
		t.Error("wait missed an arriving chunk")
	}
	// Zero timeout means wait forever (here: already satisfied).
	if !ab.WaitChunksTimeout(1, 0) {
		t.Error("zero-timeout wait failed on satisfied condition")
	}
}

// TestNetworkBytesAccounting: every round moves at least the model down and
// the partials up, and the cluster-wide sent/received totals agree.
func TestNetworkBytesAccounting(t *testing.T) {
	const nodes, rounds = 4, 3
	cl, alg, _ := makeCluster(t, nodes, 2, 1, dsl.AggAverage)
	defer cl.Close()
	if _, _, err := cl.Train(make([]float64, alg.ModelSize()), rounds); err != nil {
		t.Fatal(err)
	}
	if err := cl.Shutdown(); err != nil {
		t.Fatal(err)
	}
	sent, received := cl.NetworkBytes()
	// Lower bound: each round, 3 nodes receive the model and send a
	// partial of the same size.
	minBytes := int64(rounds * (nodes - 1) * alg.ModelSize() * 8 * 2)
	if sent < minBytes {
		t.Errorf("sent %d bytes, expected at least %d", sent, minBytes)
	}
	if sent != received {
		t.Errorf("sent %d != received %d; loopback traffic must balance", sent, received)
	}
}

// TestRefEngineTapeMatchesHandwritten: a RefEngine given the algorithm's
// DFG computes its partial with the compiled evaluation tape, and must
// agree with the hand-written gradient path for both aggregators.
func TestRefEngineTapeMatchesHandwritten(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	alg := &ml.MLP{In: 6, Hid: 5, Out: 3}
	unit, err := dsl.ParseAndAnalyze(alg.DSLSource(), alg.DSLParams())
	if err != nil {
		t.Fatal(err)
	}
	g, err := dfg.Translate(unit)
	if err != nil {
		t.Fatal(err)
	}
	model := alg.InitModel(rng)
	shard := make([]ml.Sample, 12)
	for i := range shard {
		x := make([]float64, alg.FeatureSize())
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := make([]float64, alg.OutputSize())
		for j := range y {
			y[j] = rng.Float64()
		}
		shard[i] = ml.Sample{X: x, Y: y}
	}
	for _, agg := range []dsl.AggregatorKind{dsl.AggAverage, dsl.AggSum} {
		plain := &RefEngine{Alg: alg, Threads: 2, LR: 0.05, Agg: agg}
		taped := &RefEngine{Alg: alg, Threads: 2, LR: 0.05, Agg: agg, Graph: g}
		want, err := plain.PartialUpdate(model, shard)
		if err != nil {
			t.Fatal(err)
		}
		got, err := taped.PartialUpdate(model, shard)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("agg %v: partial length %d, want %d", agg, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("agg %v: partial[%d] = %g via tape, %g via reference", agg, i, got[i], want[i])
			}
		}
	}
}
