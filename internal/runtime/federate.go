package runtime

import (
	"log/slog"

	"repro/internal/obs"
)

// Monitor turns per-node round latencies into cluster-level straggler
// signals: every observation is mirrored into
// cosmic_cluster_node_round_seconds{node=...}, a
// cosmic_cluster_straggler{node=...} gauge flips to 1 while a node is over
// the detector's bar, and flag transitions emit structured log warnings.
// The System Director runs one Monitor over whatever latency source fits the
// deployment — Cluster.ScrapeLatencies in process, MsgStats scrapes over the
// control plane.
type Monitor struct {
	reg     *obs.Registry
	det     *obs.StragglerDetector
	logger  *slog.Logger
	flagged map[string]bool
}

// NewMonitor builds a monitor flagging nodes whose round latency exceeds
// k×cluster-p50 for m consecutive observations (0 values take the detector's
// defaults). A nil logger discards the warnings.
func NewMonitor(reg *obs.Registry, k float64, m int, logger *slog.Logger) *Monitor {
	if logger == nil {
		logger = discardLogger
	}
	return &Monitor{
		reg:     reg,
		det:     obs.NewStragglerDetector(k, m),
		logger:  logger,
		flagged: make(map[string]bool),
	}
}

// Observe folds one scrape of per-node round latencies (seconds, keyed by
// node name) into the gauges and returns the currently flagged stragglers.
func (mo *Monitor) Observe(latencies map[string]float64) []string {
	for node, v := range latencies {
		mo.reg.Gauge(obs.Labeled("cosmic_cluster_node_round_seconds", "node", node)).Set(v)
	}
	flagged := mo.det.Observe(latencies)
	now := make(map[string]bool, len(flagged))
	for _, node := range flagged {
		now[node] = true
		mo.reg.Gauge(obs.Labeled("cosmic_cluster_straggler", "node", node)).Set(1)
		if !mo.flagged[node] {
			mo.logger.Warn("straggler detected",
				"node", node, "round_seconds", latencies[node], "streak", mo.det.Streak(node))
		}
	}
	for node := range mo.flagged {
		if !now[node] {
			mo.reg.Gauge(obs.Labeled("cosmic_cluster_straggler", "node", node)).Set(0)
			mo.logger.Info("straggler recovered", "node", node)
		}
	}
	mo.flagged = now
	return flagged
}
