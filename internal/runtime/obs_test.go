package runtime

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/dsl"
	"repro/internal/ml"
	"repro/internal/obs"
)

// TestClusterTelemetry trains a small hierarchical cluster with an observer
// attached and checks every layer reported: round stats and percentiles,
// network byte totals, per-node counters, and per-round trace spans.
func TestClusterTelemetry(t *testing.T) {
	const nodes, groups, rounds = 4, 2, 3
	alg := &ml.LinearRegression{M: 24}
	rng := rand.New(rand.NewSource(7))
	shards := make([][]ml.Sample, nodes)
	for n := range shards {
		shards[n] = make([]ml.Sample, 16)
		for i := range shards[n] {
			x := make([]float64, alg.M)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			shards[n][i] = ml.Sample{X: x, Y: []float64{rng.NormFloat64()}}
		}
	}
	o := obs.New()
	cl, err := Launch(ClusterOptions{
		Nodes: nodes, Groups: groups,
		Engines: func(int) Engine {
			return &RefEngine{Alg: alg, Threads: 1, LR: 0.01, Agg: dsl.AggAverage}
		},
		Shards:    func(id int) []ml.Sample { return shards[id] },
		ModelSize: alg.ModelSize(),
		Agg:       dsl.AggAverage,
		LR:        0.01,
		MiniBatch: nodes * 4,
		Obs:       o,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	_, stats, err := cl.Train(make([]float64, alg.ModelSize()), rounds)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// TrainStats: percentiles ordered and non-zero, network totals balanced.
	if stats.RoundP50 <= 0 || stats.RoundP95 < stats.RoundP50 || stats.RoundMax < stats.RoundP95 {
		t.Errorf("round percentiles not ordered: p50=%v p95=%v max=%v",
			stats.RoundP50, stats.RoundP95, stats.RoundMax)
	}
	if stats.NetworkSentBytes <= 0 || stats.NetworkSentBytes != stats.NetworkReceivedBytes {
		t.Errorf("network bytes sent=%d received=%d; want equal and positive",
			stats.NetworkSentBytes, stats.NetworkReceivedBytes)
	}

	// Registry: the master counted its rounds, partial frames arrived, the
	// Sigma fan-in processed chunks, and ring depth gauges exist.
	reg := o.Registry()
	if got := reg.Counter(obs.Labeled("cosmic_node_rounds_total", "node", "0")).Value(); got != rounds {
		t.Errorf("master rounds_total = %d, want %d", got, rounds)
	}
	var partials, chunks, contribs, rings int64
	for _, s := range reg.Snapshot() {
		switch {
		case strings.HasPrefix(s.Name, `cosmic_node_frames_received_total`) &&
			strings.Contains(s.Name, `type="partial"`):
			partials += int64(s.Value)
		case strings.HasPrefix(s.Name, "cosmic_sigma_chunks_total"):
			chunks += int64(s.Value)
		case strings.HasPrefix(s.Name, "cosmic_sigma_contributions_total"):
			contribs += int64(s.Value)
		case strings.HasPrefix(s.Name, "cosmic_node_ring_depth"):
			rings++
		}
	}
	// Each round, the nodes-groups Deltas each send one partial frame.
	if want := int64(rounds * (nodes - groups)); partials != want {
		t.Errorf("partial frames = %d, want %d", partials, want)
	}
	// Every node contributes at its own Sigma, and each non-master group
	// Sigma additionally streams one aggregate contribution into the
	// master's fan-in, every round.
	if want := int64(rounds * (nodes + groups - 1)); contribs != want {
		t.Errorf("sigma contributions = %d, want %d", contribs, want)
	}
	if chunks < contribs {
		t.Errorf("chunks = %d < contributions = %d", chunks, contribs)
	}
	if rings != groups {
		t.Errorf("ring depth gauges = %d, want %d (one per Sigma)", rings, groups)
	}

	// Trace: one master round span per round, and compute spans from both
	// Deltas and the group Sigma.
	var roundSpans, deltaSpans, sigmaSpans int
	for _, e := range o.Tracer().Events() {
		if e.Phase != "X" {
			continue
		}
		switch e.Name {
		case "round":
			roundSpans++
		case "delta-compute":
			deltaSpans++
		case "sigma-round":
			sigmaSpans++
		}
	}
	if roundSpans != rounds {
		t.Errorf("round spans = %d, want %d", roundSpans, rounds)
	}
	if want := rounds * (nodes - groups); deltaSpans != want {
		t.Errorf("delta-compute spans = %d, want %d", deltaSpans, want)
	}
	if want := rounds * (groups - 1); sigmaSpans != want {
		t.Errorf("sigma-round spans = %d, want %d", sigmaSpans, want)
	}
}

// TestSummarizeRounds pins the nearest-rank percentile math.
func TestSummarizeRounds(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	p50, p95, max := summarizeRounds([]time.Duration{ms(4), ms(1), ms(3), ms(2)})
	if p50 != ms(2) || p95 != ms(4) || max != ms(4) {
		t.Errorf("got p50=%v p95=%v max=%v, want 2ms 4ms 4ms", p50, p95, max)
	}
	if p50, p95, max := summarizeRounds(nil); p50 != 0 || p95 != 0 || max != 0 {
		t.Error("empty input should summarize to zeros")
	}
}
