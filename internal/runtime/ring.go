// Package runtime is CoSMIC's system layer: the lean, specialized system
// software that orchestrates accelerator-augmented nodes for distributed
// training (Section 3 of the paper).
//
// The System Director assigns Sigma (aggregator) and Delta (worker) roles
// and configures the cluster. Within a Sigma node, an incoming-network
// handler hands received partial updates to a fixed Networking Pool, whose
// workers copy the data into a Circular Buffer in cache-friendly chunks; a
// fixed Aggregation Pool consumes chunks and folds them into the
// Aggregation Buffer. The two pools form a producer-consumer pair, so
// communication and aggregation overlap and no thread is created per
// connection. (Goroutines are the user-level threads here — the Go runtime
// multiplexes them over a fixed set of OS threads, which is precisely the
// "internally managed thread pool avoiding OS-level context switches" the
// paper builds by hand in C++.)
package runtime

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Chunk is one unit of work flowing from the Networking Pool to the
// Aggregation Pool: a contiguous span of a partial-update vector.
type Chunk struct {
	// Seq is the mini-batch sequence number the chunk belongs to.
	Seq uint32
	// From identifies the contributing node.
	From uint32
	// Offset is the span's start index within the full vector.
	Offset int
	// Data is the span's values. The chunk owns this slice.
	Data []float64
	// Weight is the credit the contribution carries toward the weighted
	// average: 1 for a single node's partial, the member count for a
	// group Sigma's pre-summed aggregate.
	Weight float64
	// Last marks the final chunk of one contribution.
	Last bool
}

// CircularBuffer is a bounded, blocking MPMC ring of chunks: networking
// workers produce, aggregation workers consume. Bounding the ring is what
// "reduces the memory required for aggregating partial results from
// multiple sources while enabling overlap between communication and
// computation".
type CircularBuffer struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	buf      []Chunk
	head     int // next pop
	count    int
	closed   bool
	// depth, when set, mirrors count so /metrics shows queue pressure live.
	depth *obs.Gauge
}

// SetDepthGauge publishes the ring's occupancy to the given gauge on every
// push and pop. Call before the ring is shared; a nil gauge is a no-op.
func (cb *CircularBuffer) SetDepthGauge(g *obs.Gauge) {
	cb.mu.Lock()
	cb.depth = g
	cb.mu.Unlock()
}

// NewCircularBuffer creates a ring with the given capacity.
func NewCircularBuffer(capacity int) *CircularBuffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("runtime: ring capacity %d", capacity))
	}
	cb := &CircularBuffer{buf: make([]Chunk, capacity)}
	cb.notEmpty = sync.NewCond(&cb.mu)
	cb.notFull = sync.NewCond(&cb.mu)
	return cb
}

// Push blocks until space is available, then enqueues the chunk. It reports
// false if the ring was closed.
func (cb *CircularBuffer) Push(c Chunk) bool {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	for cb.count == len(cb.buf) && !cb.closed {
		cb.notFull.Wait()
	}
	if cb.closed {
		return false
	}
	cb.buf[(cb.head+cb.count)%len(cb.buf)] = c
	cb.count++
	cb.depth.Set(float64(cb.count))
	cb.notEmpty.Signal()
	return true
}

// Pop blocks until a chunk is available and dequeues it. It reports false
// if the ring is closed and drained.
func (cb *CircularBuffer) Pop() (Chunk, bool) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	for cb.count == 0 && !cb.closed {
		cb.notEmpty.Wait()
	}
	if cb.count == 0 {
		return Chunk{}, false
	}
	c := cb.buf[cb.head]
	cb.buf[cb.head] = Chunk{}
	cb.head = (cb.head + 1) % len(cb.buf)
	cb.count--
	cb.depth.Set(float64(cb.count))
	cb.notFull.Signal()
	return c, true
}

// Close wakes all blocked producers and consumers; pending chunks remain
// poppable.
func (cb *CircularBuffer) Close() {
	cb.mu.Lock()
	cb.closed = true
	cb.mu.Unlock()
	cb.notEmpty.Broadcast()
	cb.notFull.Broadcast()
}

// Len returns the number of buffered chunks.
func (cb *CircularBuffer) Len() int {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return cb.count
}

// AggregationBuffer accumulates partial updates. Aggregation-pool workers
// call Add concurrently on disjoint or overlapping spans; the buffer is
// striped with fine-grained locks so concurrent adds to different regions
// do not serialize.
type AggregationBuffer struct {
	stripes []sync.Mutex
	sum     []float64
	weight  float64
	wmu     sync.Mutex
	done    *sync.Cond
	// contributions counts completed (Last-marked) partials; chunks counts
	// every processed chunk. Waiting on the chunk count is what makes
	// completion safe when several aggregation workers process one
	// contribution's chunks out of order.
	contributions int
	chunks        int
}

// aggStripe is the span of values guarded by one lock stripe.
const aggStripe = 1024

// NewAggregationBuffer creates a buffer for vectors of length n.
func NewAggregationBuffer(n int) *AggregationBuffer {
	ab := &AggregationBuffer{
		stripes: make([]sync.Mutex, (n+aggStripe-1)/aggStripe+1),
		sum:     make([]float64, n),
	}
	ab.done = sync.NewCond(&ab.wmu)
	return ab
}

// Add folds a chunk into the running sum and, on a contribution's final
// chunk, credits its weight toward the average.
func (ab *AggregationBuffer) Add(c Chunk) error {
	if c.Offset < 0 || c.Offset+len(c.Data) > len(ab.sum) {
		return fmt.Errorf("runtime: chunk [%d,%d) outside buffer of %d", c.Offset, c.Offset+len(c.Data), len(ab.sum))
	}
	for start := c.Offset; start < c.Offset+len(c.Data); {
		stripe := start / aggStripe
		end := (stripe + 1) * aggStripe
		if end > c.Offset+len(c.Data) {
			end = c.Offset + len(c.Data)
		}
		ab.stripes[stripe].Lock()
		for i := start; i < end; i++ {
			ab.sum[i] += c.Data[i-c.Offset]
		}
		ab.stripes[stripe].Unlock()
		start = end
	}
	ab.wmu.Lock()
	ab.chunks++
	if c.Last {
		ab.weight += c.Weight
		ab.contributions++
	}
	ab.wmu.Unlock()
	ab.done.Broadcast()
	return nil
}

// ChunksFor returns how many ring chunks a vector of length n splits into.
func ChunksFor(n int) int {
	if n == 0 {
		return 1
	}
	return (n + ChunkSize - 1) / ChunkSize
}

// WaitChunks blocks until at least n chunks have been folded in.
func (ab *AggregationBuffer) WaitChunks(n int) {
	ab.wmu.Lock()
	for ab.chunks < n {
		ab.done.Wait()
	}
	ab.wmu.Unlock()
}

// WaitChunksTimeout blocks until n chunks have been folded in or the
// timeout elapses, reporting whether the chunks arrived. A zero timeout
// waits forever. This is the Sigma node's defense against a dead member: a
// bounded round instead of a wedged aggregation.
func (ab *AggregationBuffer) WaitChunksTimeout(n int, timeout time.Duration) bool {
	if timeout <= 0 {
		ab.WaitChunks(n)
		return true
	}
	deadline := time.Now().Add(timeout)
	// A watchdog broadcast wakes the waiter when the deadline passes.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-time.After(timeout):
			ab.done.Broadcast()
		case <-stop:
		}
	}()
	ab.wmu.Lock()
	defer ab.wmu.Unlock()
	for ab.chunks < n {
		if time.Now().After(deadline) {
			return false
		}
		ab.done.Wait()
	}
	return true
}

// WaitContributions blocks until at least n contributions have completed.
func (ab *AggregationBuffer) WaitContributions(n int) {
	ab.wmu.Lock()
	for ab.contributions < n {
		ab.done.Wait()
	}
	ab.wmu.Unlock()
}

// Contributions returns the number of completed partials folded in.
func (ab *AggregationBuffer) Contributions() int {
	ab.wmu.Lock()
	defer ab.wmu.Unlock()
	return ab.contributions
}

// WeightedMean returns sum/weight (the Equation 3b average) and the total
// weight.
func (ab *AggregationBuffer) WeightedMean() ([]float64, float64) {
	ab.wmu.Lock()
	w := ab.weight
	ab.wmu.Unlock()
	out := make([]float64, len(ab.sum))
	if w == 0 {
		return out, 0
	}
	for i, v := range ab.sum {
		out[i] = v / w
	}
	return out, w
}

// Sum returns the raw accumulated sum and total weight.
func (ab *AggregationBuffer) Sum() ([]float64, float64) {
	ab.wmu.Lock()
	w := ab.weight
	ab.wmu.Unlock()
	out := make([]float64, len(ab.sum))
	copy(out, ab.sum)
	return out, w
}

// Reset clears the buffer for the next mini-batch.
func (ab *AggregationBuffer) Reset() {
	ab.wmu.Lock()
	ab.weight = 0
	ab.contributions = 0
	ab.chunks = 0
	ab.wmu.Unlock()
	for i := range ab.sum {
		ab.sum[i] = 0
	}
}

// ChunkSize is the span length networking workers cut incoming vectors
// into: small enough that aggregation starts while later chunks are still
// in flight, large enough to amortize ring overhead.
const ChunkSize = 4096

// SplitIntoChunks cuts a received partial update into ring chunks.
func SplitIntoChunks(seq, from uint32, vec []float64, weight float64) []Chunk {
	if len(vec) == 0 {
		return []Chunk{{Seq: seq, From: from, Weight: weight, Last: true}}
	}
	var out []Chunk
	for off := 0; off < len(vec); off += ChunkSize {
		end := off + ChunkSize
		if end > len(vec) {
			end = len(vec)
		}
		out = append(out, Chunk{
			Seq: seq, From: from, Offset: off,
			Data: vec[off:end], Weight: weight,
			Last: end == len(vec),
		})
	}
	return out
}

// Pool is a fixed-size worker pool: the system software's internally
// managed threads. Submitted tasks run on one of n long-lived workers.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
}

// NewPool starts n workers.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = 1
	}
	p := &Pool{tasks: make(chan func(), 4*n)}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Submit enqueues a task; it blocks when all workers are busy and the
// backlog is full (bounded, like a real pool).
func (p *Pool) Submit(task func()) { p.tasks <- task }

// Close stops accepting tasks and waits for the workers to drain.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}
