// Package runtime is CoSMIC's system layer: the lean, specialized system
// software that orchestrates accelerator-augmented nodes for distributed
// training (Section 3 of the paper).
//
// The System Director assigns Sigma (aggregator) and Delta (worker) roles
// and configures the cluster. Within a Sigma node, an incoming-network
// handler hands received partial updates to a fixed Networking Pool, whose
// workers copy the data into a Circular Buffer in cache-friendly chunks; a
// fixed Aggregation Pool consumes chunks and folds them into the
// Aggregation Buffer. The two pools form a producer-consumer pair, so
// communication and aggregation overlap and no thread is created per
// connection. (Goroutines are the user-level threads here — the Go runtime
// multiplexes them over a fixed set of OS threads, which is precisely the
// "internally managed thread pool avoiding OS-level context switches" the
// paper builds by hand in C++.)
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cosmicnet"
	"repro/internal/obs"
)

// Chunk is one unit of work flowing from the Networking Pool to the
// Aggregation Pool: a contiguous span of a partial-update vector.
type Chunk struct {
	// Seq is the mini-batch sequence number the chunk belongs to.
	Seq uint32
	// From identifies the contributing node.
	From uint32
	// Offset is the span's start index within the full vector.
	Offset int
	// Data is the span's values. The chunk owns this slice.
	Data []float64
	// Weight is the credit the contribution carries toward the weighted
	// average: 1 for a single node's partial, the member count for a
	// group Sigma's pre-summed aggregate.
	Weight float64
	// Last marks the final chunk of one contribution.
	Last bool
	// Recycle marks Data as a pooled wire payload: the aggregation worker
	// returns it to cosmicnet's payload pool once folded.
	Recycle bool
}

// CircularBuffer is a bounded, blocking MPMC ring of chunks: networking
// workers produce, aggregation workers consume. Bounding the ring is what
// "reduces the memory required for aggregating partial results from
// multiple sources while enabling overlap between communication and
// computation".
type CircularBuffer struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	buf      []Chunk
	head     int // next pop
	count    int
	closed   bool
	// depth, when set, mirrors count so /metrics shows queue pressure live.
	depth *obs.Gauge
}

// SetDepthGauge publishes the ring's occupancy to the given gauge on every
// push and pop. Call before the ring is shared; a nil gauge is a no-op.
func (cb *CircularBuffer) SetDepthGauge(g *obs.Gauge) {
	cb.mu.Lock()
	cb.depth = g
	cb.mu.Unlock()
}

// NewCircularBuffer creates a ring with the given capacity.
func NewCircularBuffer(capacity int) *CircularBuffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("runtime: ring capacity %d", capacity))
	}
	cb := &CircularBuffer{buf: make([]Chunk, capacity)}
	cb.notEmpty = sync.NewCond(&cb.mu)
	cb.notFull = sync.NewCond(&cb.mu)
	return cb
}

// Push blocks until space is available, then enqueues the chunk. It reports
// false if the ring was closed.
func (cb *CircularBuffer) Push(c Chunk) bool {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	for cb.count == len(cb.buf) && !cb.closed {
		cb.notFull.Wait()
	}
	if cb.closed {
		return false
	}
	cb.buf[(cb.head+cb.count)%len(cb.buf)] = c
	cb.count++
	cb.depth.Set(float64(cb.count))
	cb.notEmpty.Signal()
	return true
}

// Pop blocks until a chunk is available and dequeues it. It reports false
// if the ring is closed and drained.
func (cb *CircularBuffer) Pop() (Chunk, bool) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	for cb.count == 0 && !cb.closed {
		cb.notEmpty.Wait()
	}
	if cb.count == 0 {
		return Chunk{}, false
	}
	c := cb.buf[cb.head]
	cb.buf[cb.head] = Chunk{}
	cb.head = (cb.head + 1) % len(cb.buf)
	cb.count--
	cb.depth.Set(float64(cb.count))
	cb.notFull.Signal()
	return c, true
}

// Close wakes all blocked producers and consumers; pending chunks remain
// poppable.
func (cb *CircularBuffer) Close() {
	cb.mu.Lock()
	cb.closed = true
	cb.mu.Unlock()
	cb.notEmpty.Broadcast()
	cb.notFull.Broadcast()
}

// Len returns the number of buffered chunks.
func (cb *CircularBuffer) Len() int {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return cb.count
}

// AggregationBuffer accumulates partial updates. Aggregation-pool workers
// call Add concurrently; chunks of different regions never serialize
// against each other.
//
// The buffer has two folding modes. The legacy mode (no member set) folds
// chunks in arrival order under striped locks — fast, but the floating-
// point result depends on arrival order. Ordered mode (after SetMembers)
// folds each fixed-boundary chunk index in member-rank order: an in-order
// arrival folds immediately, an out-of-order one is parked (as a pooled
// copy) until its rank comes up. Per-element fold order is then a pure
// function of the member set — independent of chunk size, arrival order,
// and aggregation-worker count — which is what keeps training bit-identical
// across those knobs. Ordered mode also knows when chunk index i has every
// member's contribution and fires the OnComplete callback right then, which
// is what lets a Sigma forward chunk i upstream with no whole-vector
// barrier.
type AggregationBuffer struct {
	stripes []sync.Mutex
	sum     []float64
	// chunkWords is the fixed chunk boundary; states has one entry per
	// chunk index in ordered mode.
	chunkWords int
	states     []chunkAgg
	// rank maps a member's node ID to its fold position; nil selects the
	// legacy arrival-order mode. members = len(rank); ids is the sorted
	// member list (ids[rank[id]] == id).
	rank    map[uint32]int
	members int
	ids     []uint32
	// seqWord gates ordered-mode adds to the current round: once Reset has
	// armed it, a chunk whose Seq differs is stale traffic from an earlier
	// round (an excluded member catching up late) and is dropped silently.
	seqWord atomic.Uint64
	// excluded flags member ranks dropped from the current round's fold
	// (quorum mode). An excluded rank's chunks are discarded, so the folded
	// vector is a pure function of the included member set.
	excluded []atomic.Bool
	// onComplete, when set, runs when a chunk index has every member's
	// contribution folded, before WaitComplete can observe the completion.
	// span aliases the buffer's accumulated sum for that chunk.
	onComplete func(idx int, span []float64, weight float64)
	// pipeline, when set, tracks chunk indexes started but not complete.
	pipeline *obs.Gauge

	weight float64
	wmu    sync.Mutex
	done   *sync.Cond
	// contributions counts completed (Last-marked) partials; chunks counts
	// every folded chunk; complete counts finished chunk indexes; inflight
	// the started-but-incomplete ones.
	contributions int
	chunks        int
	complete      int
	inflight      int
	// got counts accepted chunks per member rank this round; a member is
	// present once it has contributed every chunk index.
	got []int
}

// seqArmed marks seqWord as holding a live round sequence.
const seqArmed = 1 << 32

// chunkAgg is the per-chunk-index fold state of ordered mode.
type chunkAgg struct {
	mu sync.Mutex
	// next is the member rank whose contribution folds next.
	next    int
	weight  float64
	started bool
	// completed records that this index fired its completion, so an
	// exclusion sweep cannot complete an already-complete chunk twice.
	completed bool
	// pending parks out-of-order arrivals (pooled copies) until their rank
	// comes up.
	pending []parkedChunk
}

type parkedChunk struct {
	rank   int
	weight float64
	last   bool
	data   []float64
}

// aggStripe is the span of values guarded by one lock stripe.
const aggStripe = 1024

// NewAggregationBuffer creates a buffer for vectors of length n with the
// default chunk boundary.
func NewAggregationBuffer(n int) *AggregationBuffer {
	return NewAggregationBufferChunked(n, ChunkSize)
}

// NewAggregationBufferChunked creates a buffer for vectors of length n cut
// at fixed boundaries of words elements (words <= 0 selects the default).
func NewAggregationBufferChunked(n, words int) *AggregationBuffer {
	if words <= 0 {
		words = ChunkSize
	}
	ab := &AggregationBuffer{
		stripes:    make([]sync.Mutex, (n+aggStripe-1)/aggStripe+1),
		sum:        make([]float64, n),
		chunkWords: words,
		states:     make([]chunkAgg, ChunksForWords(n, words)),
	}
	ab.done = sync.NewCond(&ab.wmu)
	return ab
}

// SetMembers switches the buffer to ordered folding over the given member
// node IDs: member rank is the ID's position in the sorted ID list. Call
// before the buffer is shared.
func (ab *AggregationBuffer) SetMembers(ids []uint32) error {
	rank := make(map[uint32]int, len(ids))
	sorted := append([]uint32(nil), ids...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for i, id := range sorted {
		if _, dup := rank[id]; dup {
			return fmt.Errorf("runtime: duplicate member %d", id)
		}
		rank[id] = i
	}
	ab.rank = rank
	ab.members = len(rank)
	ab.ids = sorted
	ab.excluded = make([]atomic.Bool, len(sorted))
	ab.got = make([]int, len(sorted))
	return nil
}

// SetOnComplete installs the per-chunk completion callback (ordered mode).
// The callback runs on an aggregation worker with no buffer locks held;
// span aliases the buffer's sum and must not be retained past the round.
// Call before the buffer is shared.
func (ab *AggregationBuffer) SetOnComplete(fn func(idx int, span []float64, weight float64)) {
	ab.onComplete = fn
}

// SetPipelineGauge publishes the number of in-flight (started, incomplete)
// chunk indexes — the streaming pipeline's depth. A nil gauge is a no-op.
func (ab *AggregationBuffer) SetPipelineGauge(g *obs.Gauge) { ab.pipeline = g }

// ChunkCount returns the number of fixed-boundary chunk indexes.
func (ab *AggregationBuffer) ChunkCount() int { return len(ab.states) }

// ChunkWords returns the fixed chunk boundary in elements.
func (ab *AggregationBuffer) ChunkWords() int { return ab.chunkWords }

// spanLen is chunk idx's element count (the last chunk may run short).
func (ab *AggregationBuffer) spanLen(idx int) int {
	if len(ab.sum) == 0 {
		return 0
	}
	if idx == len(ab.states)-1 {
		return len(ab.sum) - idx*ab.chunkWords
	}
	return ab.chunkWords
}

// Add folds a chunk into the running sum and, on a contribution's final
// chunk, credits its weight toward the average. In ordered mode the chunk
// must sit exactly on a fixed boundary and come from a known member.
func (ab *AggregationBuffer) Add(c Chunk) error {
	if c.Offset < 0 || c.Offset+len(c.Data) > len(ab.sum) {
		return fmt.Errorf("runtime: chunk [%d,%d) outside buffer of %d", c.Offset, c.Offset+len(c.Data), len(ab.sum))
	}
	if ab.rank != nil {
		return ab.addOrdered(c)
	}
	for start := c.Offset; start < c.Offset+len(c.Data); {
		stripe := start / aggStripe
		end := (stripe + 1) * aggStripe
		if end > c.Offset+len(c.Data) {
			end = c.Offset + len(c.Data)
		}
		ab.stripes[stripe].Lock()
		for i := start; i < end; i++ {
			ab.sum[i] += c.Data[i-c.Offset]
		}
		ab.stripes[stripe].Unlock()
		start = end
	}
	ab.wmu.Lock()
	ab.chunks++
	if c.Last {
		ab.weight += c.Weight
		ab.contributions++
	}
	ab.wmu.Unlock()
	ab.done.Broadcast()
	return nil
}

// addOrdered folds chunks of one index in member-rank order, parking
// early arrivals, and fires onComplete when the index has every included
// member. Stale-round chunks and chunks from excluded members are dropped
// silently: after a quorum fold moves on, a late member's traffic must not
// corrupt the next round.
func (ab *AggregationBuffer) addOrdered(c Chunk) error {
	if w := ab.seqWord.Load(); w&seqArmed != 0 && uint32(w) != c.Seq {
		return nil
	}
	idx := 0
	if len(ab.sum) > 0 {
		idx = c.Offset / ab.chunkWords
	}
	if idx >= len(ab.states) || c.Offset != idx*ab.chunkWords {
		return fmt.Errorf("runtime: chunk offset %d off the %d-word boundary", c.Offset, ab.chunkWords)
	}
	if want := ab.spanLen(idx); len(c.Data) != want {
		return fmt.Errorf("runtime: chunk %d spans %d words, want %d (fixed boundaries)", idx, len(c.Data), want)
	}
	r, ok := ab.rank[c.From]
	if !ok {
		return fmt.Errorf("runtime: chunk from unknown member %d", c.From)
	}
	st := &ab.states[idx]
	span := ab.sum[c.Offset : c.Offset+ab.spanLen(idx)]

	folded, contribs := 0, 0
	lastWeight := 0.0
	startedNow, completeNow := false, false
	chunkWeight := 0.0

	st.mu.Lock()
	if ab.excluded[r].Load() {
		// Checked under the chunk lock: an exclusion sweep that already
		// passed this state must not see this member's data fold afterward.
		st.mu.Unlock()
		return nil
	}
	if !st.started {
		st.started, startedNow = true, true
	}
	switch {
	case r < st.next:
		st.mu.Unlock()
		return fmt.Errorf("runtime: duplicate chunk %d from member %d", idx, c.From)
	case r > st.next:
		// Early arrival: park a pooled copy until its rank comes up. The
		// buffer never retains the caller's slice, so pooled wire payloads
		// can be recycled unconditionally after Add. Ownership of the copy
		// moves into st.pending; the drain paths Put it after folding
		// (advanceLocked, or Reset on teardown).
		data := cosmicnet.GetPayload(len(c.Data))
		copy(data, c.Data)
		//cosmic:transfers parked copy owned by st.pending until drained
		st.pending = append(st.pending, parkedChunk{rank: r, weight: c.Weight, last: c.Last, data: data})
		st.mu.Unlock()
	default: // in order: fold, then advance past parked and excluded ranks
		for i, v := range c.Data {
			span[i] += v
		}
		st.next++
		st.weight += c.Weight
		folded++
		if c.Last {
			contribs++
			lastWeight += c.Weight
		}
		var f2, c2 int
		var lw2 float64
		f2, c2, lw2, completeNow, chunkWeight = ab.advanceLocked(st, span)
		folded += f2
		contribs += c2
		lastWeight += lw2
		st.mu.Unlock()
	}

	// The callback fires before the completion counter moves, so a
	// WaitComplete return implies every per-chunk callback has finished.
	if completeNow && ab.onComplete != nil {
		ab.onComplete(idx, span, chunkWeight)
	}

	ab.wmu.Lock()
	ab.chunks += folded
	ab.contributions += contribs
	ab.weight += lastWeight
	ab.got[r]++
	if startedNow {
		ab.inflight++
	}
	if completeNow {
		ab.complete++
		ab.inflight--
	}
	depth := ab.inflight
	ab.wmu.Unlock()
	ab.pipeline.Set(float64(depth))
	ab.done.Broadcast()
	return nil
}

// advanceLocked advances st.next past excluded ranks (discarding any parked
// chunks they delivered) and folds parked chunks as their ranks come up,
// reporting what folded and whether the chunk index just completed. Call
// with st.mu held.
func (ab *AggregationBuffer) advanceLocked(st *chunkAgg, span []float64) (folded, contribs int, lastWeight float64, completeNow bool, chunkWeight float64) {
	for st.next < ab.members {
		if ab.excluded[st.next].Load() {
			for i := 0; i < len(st.pending); {
				if st.pending[i].rank == st.next {
					cosmicnet.PutPayload(st.pending[i].data)
					st.pending[i] = st.pending[len(st.pending)-1]
					st.pending = st.pending[:len(st.pending)-1]
					continue
				}
				i++
			}
			st.next++
			continue
		}
		found := false
		for i := range st.pending {
			if st.pending[i].rank != st.next {
				continue
			}
			p := st.pending[i]
			for j, v := range p.data {
				span[j] += v
			}
			cosmicnet.PutPayload(p.data)
			st.next++
			st.weight += p.weight
			folded++
			if p.last {
				contribs++
				lastWeight += p.weight
			}
			st.pending[i] = st.pending[len(st.pending)-1]
			st.pending = st.pending[:len(st.pending)-1]
			found = true
			break
		}
		if !found {
			break
		}
	}
	if st.next >= ab.members && !st.completed {
		st.completed = true
		completeNow = true
		chunkWeight = st.weight
	}
	return folded, contribs, lastWeight, completeNow, chunkWeight
}

// Exclude drops members from the current round's fold: their chunks stop
// being waited for, anything they parked is discarded, and chunk indexes
// that were only waiting on them complete immediately (firing OnComplete in
// index order). It returns how many of the IDs were newly excluded; unknown
// IDs and repeats are ignored. Exclusions last until the next Reset. This
// is the exclude-and-continue primitive: a Sigma that times out a round
// folds with the quorum that arrived instead of wedging on the absent.
func (ab *AggregationBuffer) Exclude(ids []uint32) int {
	if ab.rank == nil {
		return 0
	}
	newly := 0
	for _, id := range ids {
		r, ok := ab.rank[id]
		if !ok {
			continue
		}
		if !ab.excluded[r].Swap(true) {
			newly++
		}
	}
	if newly == 0 {
		return 0
	}
	folded, contribs := 0, 0
	lastWeight := 0.0
	startedNow, completed := 0, 0
	for idx := range ab.states {
		st := &ab.states[idx]
		span := ab.sum[idx*ab.chunkWords : idx*ab.chunkWords+ab.spanLen(idx)]
		st.mu.Lock()
		f2, c2, lw2, completeNow, chunkWeight := ab.advanceLocked(st, span)
		if completeNow && !st.started {
			st.started = true
			startedNow++
		}
		st.mu.Unlock()
		folded += f2
		contribs += c2
		lastWeight += lw2
		if completeNow {
			completed++
			if ab.onComplete != nil {
				ab.onComplete(idx, span, chunkWeight)
			}
		}
	}
	ab.wmu.Lock()
	ab.chunks += folded
	ab.contributions += contribs
	ab.weight += lastWeight
	ab.inflight += startedNow
	ab.complete += completed
	ab.inflight -= completed
	depth := ab.inflight
	ab.wmu.Unlock()
	ab.pipeline.Set(float64(depth))
	ab.done.Broadcast()
	return newly
}

// QuorumStatus reports the round's member census: present members (every
// chunk index accepted), excluded members, and missing members (absent or
// partial). Each list is sorted by node ID.
func (ab *AggregationBuffer) QuorumStatus() (present, excluded, missing []uint32) {
	if ab.rank == nil {
		return nil, nil, nil
	}
	target := len(ab.states)
	ab.wmu.Lock()
	defer ab.wmu.Unlock()
	for r, id := range ab.ids {
		switch {
		case ab.excluded[r].Load():
			excluded = append(excluded, id)
		case ab.got[r] >= target:
			present = append(present, id)
		default:
			missing = append(missing, id)
		}
	}
	return present, excluded, missing
}

// WaitComplete blocks until every chunk index has all members folded (and
// every OnComplete callback has returned), the timeout elapses, or fail
// delivers. It reports (true, nil) on completion, (false, nil) on timeout,
// and (false, err) on node failure. A zero timeout waits forever.
func (ab *AggregationBuffer) WaitComplete(timeout time.Duration, fail <-chan error) (bool, error) {
	target := len(ab.states)
	var timedOut, failed bool
	var failErr error
	stop := make(chan struct{})
	defer close(stop)
	if timeout > 0 || fail != nil {
		var timeC <-chan time.Time
		if timeout > 0 {
			timer := time.NewTimer(timeout)
			defer timer.Stop()
			timeC = timer.C
		}
		go func() {
			select {
			case <-timeC:
				ab.wmu.Lock()
				timedOut = true
				ab.wmu.Unlock()
				ab.done.Broadcast()
			case err := <-fail:
				ab.wmu.Lock()
				failed, failErr = true, err
				ab.wmu.Unlock()
				ab.done.Broadcast()
			case <-stop:
			}
		}()
	}
	ab.wmu.Lock()
	defer ab.wmu.Unlock()
	for ab.complete < target {
		if failed {
			if failErr != nil {
				return false, failErr
			}
			return false, fmt.Errorf("runtime: node exited mid-round")
		}
		if timedOut {
			return false, nil
		}
		ab.done.Wait()
	}
	return true, nil
}

// ChunksFor returns how many ring chunks a vector of length n splits into
// at the default boundary.
func ChunksFor(n int) int { return ChunksForWords(n, ChunkSize) }

// ChunksForWords returns how many chunks a vector of length n splits into
// at a words-element boundary.
func ChunksForWords(n, words int) int {
	if words <= 0 {
		words = ChunkSize
	}
	if n == 0 {
		return 1
	}
	return (n + words - 1) / words
}

// WaitChunks blocks until at least n chunks have been folded in.
func (ab *AggregationBuffer) WaitChunks(n int) {
	ab.wmu.Lock()
	for ab.chunks < n {
		ab.done.Wait()
	}
	ab.wmu.Unlock()
}

// WaitChunksTimeout blocks until n chunks have been folded in or the
// timeout elapses, reporting whether the chunks arrived. A zero timeout
// waits forever. This is the Sigma node's defense against a dead member: a
// bounded round instead of a wedged aggregation.
func (ab *AggregationBuffer) WaitChunksTimeout(n int, timeout time.Duration) bool {
	if timeout <= 0 {
		ab.WaitChunks(n)
		return true
	}
	// One timer, one deadline: the watchdog sets the timed-out flag under
	// the counter lock before broadcasting, so the waiter cannot miss the
	// wakeup (a flagless broadcast races with a waiter that re-checks the
	// clock just before the deadline and then sleeps forever).
	var timedOut bool
	stop := make(chan struct{})
	defer close(stop)
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	go func() {
		select {
		case <-timer.C:
			ab.wmu.Lock()
			timedOut = true
			ab.wmu.Unlock()
			ab.done.Broadcast()
		case <-stop:
		}
	}()
	ab.wmu.Lock()
	defer ab.wmu.Unlock()
	for ab.chunks < n {
		if timedOut {
			return false
		}
		ab.done.Wait()
	}
	return true
}

// WaitContributions blocks until at least n contributions have completed.
func (ab *AggregationBuffer) WaitContributions(n int) {
	ab.wmu.Lock()
	for ab.contributions < n {
		ab.done.Wait()
	}
	ab.wmu.Unlock()
}

// Contributions returns the number of completed partials folded in.
func (ab *AggregationBuffer) Contributions() int {
	ab.wmu.Lock()
	defer ab.wmu.Unlock()
	return ab.contributions
}

// WeightedMean returns sum/weight (the Equation 3b average) and the total
// weight.
func (ab *AggregationBuffer) WeightedMean() ([]float64, float64) {
	ab.wmu.Lock()
	w := ab.weight
	ab.wmu.Unlock()
	out := make([]float64, len(ab.sum))
	if w == 0 {
		return out, 0
	}
	for i, v := range ab.sum {
		out[i] = v / w
	}
	return out, w
}

// Sum returns the raw accumulated sum and total weight.
func (ab *AggregationBuffer) Sum() ([]float64, float64) {
	ab.wmu.Lock()
	w := ab.weight
	ab.wmu.Unlock()
	out := make([]float64, len(ab.sum))
	copy(out, ab.sum)
	return out, w
}

// Reset clears the buffer for mini-batch seq, recycling any parked chunks
// and lifting exclusions. It also arms the stale-round filter: from here on
// ordered-mode chunks carrying a different sequence number — a timed-out
// member's late traffic — are dropped instead of folded.
func (ab *AggregationBuffer) Reset(seq uint32) {
	ab.seqWord.Store(seqArmed | uint64(seq))
	ab.wmu.Lock()
	ab.weight = 0
	ab.contributions = 0
	ab.chunks = 0
	ab.complete = 0
	ab.inflight = 0
	for r := range ab.got {
		ab.got[r] = 0
	}
	ab.wmu.Unlock()
	for i := range ab.excluded {
		ab.excluded[i].Store(false)
	}
	for i := range ab.states {
		st := &ab.states[i]
		st.mu.Lock()
		st.next, st.weight, st.started, st.completed = 0, 0, false, false
		for _, p := range st.pending {
			cosmicnet.PutPayload(p.data)
		}
		st.pending = st.pending[:0]
		st.mu.Unlock()
	}
	for i := range ab.sum {
		ab.sum[i] = 0
	}
	ab.pipeline.Set(0)
}

// ChunkSize is the default span length vectors are cut into: small enough
// that aggregation starts while later chunks are still in flight, large
// enough to amortize ring and frame overhead.
const ChunkSize = 4096

// SplitIntoChunks cuts a partial update into ring chunks at the default
// boundary.
func SplitIntoChunks(seq, from uint32, vec []float64, weight float64) []Chunk {
	return SplitIntoChunksWords(seq, from, vec, weight, ChunkSize)
}

// SplitIntoChunksWords cuts a partial update into ring chunks of words
// elements. The chunks alias vec (no copy).
func SplitIntoChunksWords(seq, from uint32, vec []float64, weight float64, words int) []Chunk {
	if words <= 0 {
		words = ChunkSize
	}
	if len(vec) == 0 {
		return []Chunk{{Seq: seq, From: from, Weight: weight, Last: true}}
	}
	out := make([]Chunk, 0, ChunksForWords(len(vec), words))
	for off := 0; off < len(vec); off += words {
		end := off + words
		if end > len(vec) {
			end = len(vec)
		}
		out = append(out, Chunk{
			Seq: seq, From: from, Offset: off,
			Data: vec[off:end], Weight: weight,
			Last: end == len(vec),
		})
	}
	return out
}

// Pool is a fixed-size worker pool: the system software's internally
// managed threads. Submitted tasks run on one of n long-lived workers.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
}

// NewPool starts n workers.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = 1
	}
	p := &Pool{tasks: make(chan func(), 4*n)}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Submit enqueues a task; it blocks when all workers are busy and the
// backlog is full (bounded, like a real pool).
func (p *Pool) Submit(task func()) { p.tasks <- task }

// Close stops accepting tasks and waits for the workers to drain.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}
