package runtime

import (
	"fmt"
	"sync"

	"repro/internal/accel"
	"repro/internal/compiler"
	"repro/internal/dfg"
	"repro/internal/dsl"
	"repro/internal/ml"
	"repro/internal/obs/profile"
)

// Engine computes a node's locally aggregated partial update for one
// mini-batch shard. It abstracts the node's compute substrate: the
// reference engine is the pure-Go parallel SGD (the role the host CPU plays
// in a software-only deployment), and the accelerator engine drives the
// cycle-level simulator of the generated hardware.
type Engine interface {
	// Name identifies the engine for logs.
	Name() string
	// PartialUpdate computes the node's partial for the shard at the given
	// model: an updated local model under the averaging aggregator
	// (Equation 3a), or a gradient sum under the summing aggregator.
	PartialUpdate(model []float64, shard []ml.Sample) ([]float64, error)
}

// RefEngine computes partials with the pure-Go reference implementation,
// emulating the accelerator's worker threads with ml.Partition + LocalSGD.
type RefEngine struct {
	Alg     ml.Algorithm
	Threads int
	LR      float64
	Agg     dsl.AggregatorKind

	// Graph, when non-nil, computes gradients with the DFG compiled to an
	// evaluation tape — the same compiled evaluator the accelerator
	// simulator's MIMD threads execute — instead of the algorithm's
	// hand-written Gradient. This is the path for models defined only as
	// DSL programs.
	Graph *dfg.Graph

	tapeOnce sync.Once
	tape     *ml.TapeEvaluator
	tapeErr  error
}

// Name returns "reference".
func (e *RefEngine) Name() string { return "reference" }

// PartialUpdate runs Threads-way parallel SGD over the shard.
func (e *RefEngine) PartialUpdate(model []float64, shard []ml.Sample) ([]float64, error) {
	threads := e.Threads
	if threads <= 0 {
		threads = 1
	}
	if e.Graph != nil {
		return e.tapePartial(model, shard, threads)
	}
	switch e.Agg {
	case dsl.AggAverage:
		cfg := ml.SGDConfig{LearningRate: e.LR, Aggregator: dsl.AggAverage}
		return ml.ParallelSGDBatch(e.Alg, cfg, model, shard, threads), nil
	case dsl.AggSum:
		return ml.AccumulateGradients(e.Alg, model, shard), nil
	}
	return nil, fmt.Errorf("runtime: unknown aggregator %v", e.Agg)
}

// tapePartial mirrors the reference partial computation with the compiled
// tape evaluator, compiled once per engine.
func (e *RefEngine) tapePartial(model []float64, shard []ml.Sample, threads int) ([]float64, error) {
	e.tapeOnce.Do(func() { e.tape, e.tapeErr = ml.NewTapeEvaluator(e.Alg, e.Graph) })
	if e.tapeErr != nil {
		return nil, e.tapeErr
	}
	switch e.Agg {
	case dsl.AggAverage:
		parts := ml.Partition(shard, threads)
		partials := make([][]float64, len(parts))
		for i, part := range parts {
			p, err := e.tape.LocalSGD(model, part, e.LR)
			if err != nil {
				return nil, err
			}
			partials[i] = p
		}
		cfg := ml.SGDConfig{LearningRate: e.LR, Aggregator: dsl.AggAverage}
		return ml.AggregateModels(cfg, model, partials), nil
	case dsl.AggSum:
		return e.tape.AccumulateGradients(model, shard)
	}
	return nil, fmt.Errorf("runtime: unknown aggregator %v", e.Agg)
}

// AccelEngine computes partials on the cycle-level simulator of the
// compiled accelerator, and tracks the cycles consumed.
type AccelEngine struct {
	Alg  ml.Algorithm
	Prog *compiler.Program
	LR   float64
	Agg  dsl.AggregatorKind

	// simMu guards the lazily built simulator: PartialUpdate runs on the
	// node's drive goroutine while CycleProfile is served from HTTP scrape
	// goroutines.
	simMu  sync.Mutex
	sim    *accel.Sim
	cycles int64
}

// Name returns "accelerator-sim".
func (e *AccelEngine) Name() string { return "accelerator-sim" }

// Cycles returns the accumulated simulated cycle count.
func (e *AccelEngine) Cycles() int64 {
	e.simMu.Lock()
	defer e.simMu.Unlock()
	return e.cycles
}

// CycleProfile snapshots the simulator's per-op cycle attribution as a
// pprof profile (see accel.Sim.CycleProfile). It errors until the engine
// has simulated at least one batch.
func (e *AccelEngine) CycleProfile() (*profile.Raw, error) {
	e.simMu.Lock()
	sim := e.sim
	e.simMu.Unlock()
	if sim == nil {
		return nil, fmt.Errorf("runtime: accelerator engine has not run yet")
	}
	return sim.CycleProfile()
}

// PartialUpdate runs the shard through the simulated accelerator's MIMD
// threads and returns the flattened partial.
func (e *AccelEngine) PartialUpdate(model []float64, shard []ml.Sample) ([]float64, error) {
	e.simMu.Lock()
	if e.sim == nil {
		e.sim = accel.New(e.Prog)
	}
	sim := e.sim
	e.simMu.Unlock()
	threads := e.Prog.Plan.Threads
	parts := make([][]map[string][]float64, threads)
	for t, part := range ml.Partition(shard, threads) {
		for _, s := range part {
			parts[t] = append(parts[t], e.Alg.PackSample(s))
		}
	}
	res, err := sim.RunBatch(e.Alg.PackModel(model), parts, e.LR, e.Agg)
	if err != nil {
		return nil, err
	}
	e.simMu.Lock()
	e.cycles += res.Cycles
	e.simMu.Unlock()
	switch e.Agg {
	case dsl.AggAverage:
		return FlattenModel(e.Alg, res.Partial), nil
	case dsl.AggSum:
		return e.Alg.UnpackGradient(res.Partial), nil
	}
	return nil, fmt.Errorf("runtime: unknown aggregator %v", e.Agg)
}

// FlattenModel converts per-symbol model vectors back into the algorithm's
// flat layout. It delegates to ml.UnpackModel, kept here under its
// historical name for the runtime's callers.
func FlattenModel(alg ml.Algorithm, partial map[string][]float64) []float64 {
	return ml.UnpackModel(alg, partial)
}
