package runtime

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/compiler"
	"repro/internal/dsl"
	"repro/internal/ml"
)

// Engine computes a node's locally aggregated partial update for one
// mini-batch shard. It abstracts the node's compute substrate: the
// reference engine is the pure-Go parallel SGD (the role the host CPU plays
// in a software-only deployment), and the accelerator engine drives the
// cycle-level simulator of the generated hardware.
type Engine interface {
	// Name identifies the engine for logs.
	Name() string
	// PartialUpdate computes the node's partial for the shard at the given
	// model: an updated local model under the averaging aggregator
	// (Equation 3a), or a gradient sum under the summing aggregator.
	PartialUpdate(model []float64, shard []ml.Sample) ([]float64, error)
}

// RefEngine computes partials with the pure-Go reference implementation,
// emulating the accelerator's worker threads with ml.Partition + LocalSGD.
type RefEngine struct {
	Alg     ml.Algorithm
	Threads int
	LR      float64
	Agg     dsl.AggregatorKind
}

// Name returns "reference".
func (e *RefEngine) Name() string { return "reference" }

// PartialUpdate runs Threads-way parallel SGD over the shard.
func (e *RefEngine) PartialUpdate(model []float64, shard []ml.Sample) ([]float64, error) {
	threads := e.Threads
	if threads <= 0 {
		threads = 1
	}
	switch e.Agg {
	case dsl.AggAverage:
		cfg := ml.SGDConfig{LearningRate: e.LR, Aggregator: dsl.AggAverage}
		return ml.ParallelSGDBatch(e.Alg, cfg, model, shard, threads), nil
	case dsl.AggSum:
		return ml.AccumulateGradients(e.Alg, model, shard), nil
	}
	return nil, fmt.Errorf("runtime: unknown aggregator %v", e.Agg)
}

// AccelEngine computes partials on the cycle-level simulator of the
// compiled accelerator, and tracks the cycles consumed.
type AccelEngine struct {
	Alg  ml.Algorithm
	Prog *compiler.Program
	LR   float64
	Agg  dsl.AggregatorKind

	sim    *accel.Sim
	cycles int64
}

// Name returns "accelerator-sim".
func (e *AccelEngine) Name() string { return "accelerator-sim" }

// Cycles returns the accumulated simulated cycle count.
func (e *AccelEngine) Cycles() int64 { return e.cycles }

// PartialUpdate runs the shard through the simulated accelerator's MIMD
// threads and returns the flattened partial.
func (e *AccelEngine) PartialUpdate(model []float64, shard []ml.Sample) ([]float64, error) {
	if e.sim == nil {
		e.sim = accel.New(e.Prog)
	}
	threads := e.Prog.Plan.Threads
	parts := make([][]map[string][]float64, threads)
	for t, part := range ml.Partition(shard, threads) {
		for _, s := range part {
			parts[t] = append(parts[t], e.Alg.PackSample(s))
		}
	}
	res, err := e.sim.RunBatch(e.Alg.PackModel(model), parts, e.LR, e.Agg)
	if err != nil {
		return nil, err
	}
	e.cycles += res.Cycles
	switch e.Agg {
	case dsl.AggAverage:
		return FlattenModel(e.Alg, res.Partial), nil
	case dsl.AggSum:
		return e.Alg.UnpackGradient(res.Partial), nil
	}
	return nil, fmt.Errorf("runtime: unknown aggregator %v", e.Agg)
}

// FlattenModel converts per-symbol model vectors back into the algorithm's
// flat layout, using an index-stamped probe of PackModel to recover the
// symbol→offset correspondence.
func FlattenModel(alg ml.Algorithm, partial map[string][]float64) []float64 {
	stamp := make([]float64, alg.ModelSize())
	for i := range stamp {
		stamp[i] = float64(i)
	}
	stamped := alg.PackModel(stamp)
	out := make([]float64, alg.ModelSize())
	for name, vec := range stamped {
		src := partial[name]
		for j, idx := range vec {
			out[int(idx)] = src[j]
		}
	}
	return out
}
