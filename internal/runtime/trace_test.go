package runtime

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/dsl"
	"repro/internal/ml"
	"repro/internal/obs"
)

// tracedCluster launches a 2-group cluster where every node has its own
// observer — the multi-process deployment shape, so the per-node traces
// must be merged to read a round end to end.
func tracedCluster(t *testing.T, nodes int, base uint64, engines func(id int) Engine) (*Cluster, []*obs.Observer) {
	t.Helper()
	alg := &ml.LinearRegression{M: 16}
	rng := rand.New(rand.NewSource(7))
	shards := make([][]ml.Sample, nodes)
	for n := range shards {
		shards[n] = make([]ml.Sample, 24)
		for i := range shards[n] {
			x := make([]float64, alg.M)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			shards[n][i] = ml.Sample{X: x, Y: []float64{x[0]}}
		}
	}
	observers := make([]*obs.Observer, nodes)
	cl, err := Launch(ClusterOptions{
		Nodes: nodes, Groups: 2,
		Engines:   engines,
		Shards:    func(id int) []ml.Sample { return shards[id] },
		ModelSize: alg.ModelSize(),
		Agg:       dsl.AggAverage,
		LR:        0.01,
		MiniBatch: nodes * 4,
		PerNodeObs: func(id int) *obs.Observer {
			o := obs.New()
			observers[id] = o
			return o
		},
		TraceIDBase:  base,
		RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, observers
}

// TestMergedTraceConnectsRound: a 2-group cluster with one tracer per node
// trains a few rounds; merging the per-node traces yields a timeline where
// every partial/group-aggregate span carries its round's trace ID and every
// send is connected to its receivers by flow events — the
// broadcast → partial → group-aggregate → master chain of one round reads
// as one connected graph.
func TestMergedTraceConnectsRound(t *testing.T) {
	const nodes, groups, rounds = 6, 2, 3
	const base = uint64(0xb000)
	alg := &ml.LinearRegression{M: 16}
	cl, observers := tracedCluster(t, nodes, base, func(int) Engine {
		return &RefEngine{Alg: alg, Threads: 1, LR: 0.01, Agg: dsl.AggAverage}
	})
	defer cl.Close()
	model := make([]float64, alg.ModelSize())
	if _, _, err := cl.Train(model, rounds); err != nil {
		t.Fatal(err)
	}
	if err := cl.Shutdown(); err != nil {
		t.Fatal(err)
	}

	inputs := make([][]byte, 0, nodes)
	for id, o := range observers {
		var buf bytes.Buffer
		if err := o.Trace.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("node %d trace: %v", id, err)
		}
		inputs = append(inputs, buf.Bytes())
	}
	merged, stats, err := obs.MergeChromeTraces(inputs)
	if err != nil {
		t.Fatal(err)
	}
	// Per round, one flow arrow per traced frame: a model broadcast to every
	// non-master node, a partial from every Delta, and a group aggregate
	// from every non-master Sigma.
	deltas := nodes - groups
	wantFlows := rounds * ((nodes - 1) + deltas + (groups - 1))
	if stats.Flows != wantFlows || stats.UnmatchedFlows != 0 {
		t.Errorf("flows = %d (unmatched %d), want %d matched", stats.Flows, stats.UnmatchedFlows, wantFlows)
	}

	var doc struct {
		TraceEvents []obs.Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatal(err)
	}
	// Every wire-level partial / group-aggregate span must carry the trace
	// ID derived from its round seq.
	namesSeen := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Args == nil {
			continue
		}
		wire := strings.Contains(e.Name, "partial") || strings.Contains(e.Name, "group-aggregate")
		if !wire {
			continue
		}
		namesSeen[e.Name]++
		seq, ok := e.Args["seq"].(float64)
		if !ok {
			t.Errorf("%s span has no seq arg: %v", e.Name, e.Args)
			continue
		}
		want := obs.IDString(RoundTraceID(base, int(seq)))
		if got := e.Args[obs.ArgTraceID]; got != want {
			t.Errorf("%s span (seq %v) trace id = %v, want %s", e.Name, seq, got, want)
		}
	}
	for _, name := range []string{"send-partial", "recv-partial", "send-group-aggregate", "recv-group-aggregate"} {
		if namesSeen[name] == 0 {
			t.Errorf("merged trace has no %s spans (saw %v)", name, namesSeen)
		}
	}

	// The chain of one round: collect round 1's flow IDs and check both
	// ends of each arrow exist ("s" on the sender row, "f" with bp=e on a
	// receiver row).
	starts, finishes := map[string]bool{}, map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "s":
			starts[e.ID] = true
		case "f":
			if e.BP != "e" {
				t.Errorf("flow finish %s without bp=e", e.ID)
			}
			finishes[e.ID] = true
		}
	}
	if len(starts) != wantFlows || len(finishes) != wantFlows {
		t.Errorf("flow starts/finishes = %d/%d, want %d", len(starts), len(finishes), wantFlows)
	}
	for id := range starts {
		if !finishes[id] {
			t.Errorf("flow %s has a start but no finish", id)
		}
	}
}

// slowEngine injects a fixed delay before delegating — a straggling node.
type slowEngine struct {
	Engine
	delay time.Duration
}

func (s *slowEngine) PartialUpdate(model []float64, shard []ml.Sample) ([]float64, error) {
	time.Sleep(s.delay)
	return s.Engine.PartialUpdate(model, shard)
}

// TestMonitorFlagsInjectedStraggler: with one node's engine slowed, the
// director-side monitor flags exactly that node after M consecutive slow
// scrapes, raises its straggler gauge, and logs a structured warning.
func TestMonitorFlagsInjectedStraggler(t *testing.T) {
	const nodes, slowID = 6, 5
	alg := &ml.LinearRegression{M: 16}
	cl, _ := tracedCluster(t, nodes, 0, func(id int) Engine {
		var e Engine = &RefEngine{Alg: alg, Threads: 1, LR: 0.01, Agg: dsl.AggAverage}
		if id == slowID {
			e = &slowEngine{Engine: e, delay: 30 * time.Millisecond}
		}
		return e
	})
	defer cl.Close()

	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	mon := NewMonitor(reg, 2, 3, slog.New(slog.NewTextHandler(&logBuf, nil)))

	model := make([]float64, alg.ModelSize())
	var flagged []string
	for round := 0; round < 6; round++ {
		var err error
		if model, _, err = cl.Train(model, 1); err != nil {
			t.Fatal(err)
		}
		flagged = mon.Observe(cl.ScrapeLatencies())
	}
	if err := cl.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// The slow Delta must be flagged. Its Sigma (and the master) wait on it,
	// so they may legitimately cross the bar too — but the fast Deltas whose
	// rounds are pure compute must not.
	set := map[string]bool{}
	for _, n := range flagged {
		set[n] = true
	}
	if !set["5"] {
		t.Fatalf("flagged = %v, want node 5 among them", flagged)
	}
	for _, fast := range []string{"2", "3", "4"} {
		if set[fast] {
			t.Errorf("fast delta %s flagged as straggler (flagged = %v)", fast, flagged)
		}
	}
	found := false
	for _, s := range reg.Snapshot() {
		if s.Name == `cosmic_cluster_straggler{node="5"}` {
			found = true
			if s.Value != 1 {
				t.Errorf("straggler gauge = %g, want 1", s.Value)
			}
		}
	}
	if !found {
		t.Error("no straggler gauge for node 5 in registry")
	}
	if !strings.Contains(logBuf.String(), "straggler detected") || !strings.Contains(logBuf.String(), "node=5") {
		t.Errorf("no structured straggler warning logged:\n%s", logBuf.String())
	}
}
