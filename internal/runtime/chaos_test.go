package runtime

import (
	"log/slog"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cosmicnet"
	"repro/internal/cosmicnet/chaos"
	"repro/internal/dsl"
	"repro/internal/ml"
	"repro/internal/obs"
)

// chaosWorkload builds the deterministic linear-regression workload shared
// by every scenario: same seed, same shards, so two cluster runs differ only
// in their transport.
func chaosWorkload(nodes int) (*ml.LinearRegression, [][]ml.Sample) {
	alg := &ml.LinearRegression{M: 24}
	rng := rand.New(rand.NewSource(31))
	truth := alg.InitModel(rng)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	shards := make([][]ml.Sample, nodes)
	for n := range shards {
		shards[n] = make([]ml.Sample, 40)
		for i := range shards[n] {
			x := make([]float64, alg.M)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			shards[n][i] = ml.Sample{X: x, Y: []float64{ml.Dot(truth, x)}}
		}
	}
	return alg, shards
}

// chaosOptions assembles ClusterOptions over the given fabric (nil = real
// TCP) for the shared workload.
func chaosOptions(nodes, groups int, alg *ml.LinearRegression, shards [][]ml.Sample, nw *chaos.Network) ClusterOptions {
	const lr = 0.01
	opts := ClusterOptions{
		Nodes: nodes, Groups: groups,
		Engines: func(int) Engine {
			return &RefEngine{Alg: alg, Threads: 2, LR: lr, Agg: dsl.AggAverage}
		},
		Shards:    func(id int) []ml.Sample { return shards[id] },
		ModelSize: alg.ModelSize(),
		Agg:       dsl.AggAverage,
		LR:        lr,
		MiniBatch: nodes * 8,
	}
	if nw != nil {
		opts.Transports = func(id int) cosmicnet.Transport {
			return nw.Endpoint(strconv.Itoa(id))
		}
	}
	return opts
}

// chaosFabric parses the schedule and builds a real-clock fabric whose
// endpoint names are the cluster's node IDs.
func chaosFabric(t *testing.T, schedule string) *chaos.Network {
	t.Helper()
	sched, err := chaos.ParseSchedule(schedule)
	if err != nil {
		t.Fatal(err)
	}
	return chaos.NewNetwork(sched, nil)
}

// trainUnderChaos launches, trains the zero-initialized model for rounds,
// and shuts down, failing the test on any error.
func trainUnderChaos(t *testing.T, opts ClusterOptions, rounds int) ([]float64, TrainStats) {
	t.Helper()
	cl, err := Launch(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	model := make([]float64, opts.ModelSize)
	got, stats, err := cl.Train(model, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != rounds {
		t.Fatalf("trained %d rounds, want %d", stats.Rounds, rounds)
	}
	for i, v := range got {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("model[%d] = %v", i, v)
		}
	}
	return got, stats
}

// meanLoss evaluates the model over every shard.
func meanLoss(alg ml.Algorithm, model []float64, shards [][]ml.Sample) float64 {
	var all []ml.Sample
	for _, s := range shards {
		all = append(all, s...)
	}
	return ml.MeanLoss(alg, model, all)
}

// metricSum sums every registry sample whose series name starts with prefix.
func metricSum(reg *obs.Registry, prefix string) float64 {
	total := 0.0
	for _, s := range reg.Snapshot() {
		if strings.HasPrefix(s.Name, prefix) {
			total += s.Value
		}
	}
	return total
}

// TestChaosNoFaultMatchesTCPBitwise: the fault fabric with an empty schedule
// is a transparent transport — training over it produces the bitwise-
// identical model to training over real TCP sockets.
func TestChaosNoFaultMatchesTCPBitwise(t *testing.T) {
	const nodes, groups, rounds = 6, 2, 5
	alg, shards := chaosWorkload(nodes)
	want, _ := trainUnderChaos(t, chaosOptions(nodes, groups, alg, shards, nil), rounds)
	nw := chaosFabric(t, "seed 1\n")
	got, _ := trainUnderChaos(t, chaosOptions(nodes, groups, alg, shards, nw), rounds)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("model[%d] = %b over chaos, %b over TCP", i, got[i], want[i])
		}
	}
}

// TestChaosStragglerBitwiseIdentical: latency and jitter on two member links
// slow rounds down but lose nothing, and ordered folding makes arrival time
// irrelevant — the trained model stays bitwise identical to the clean run.
func TestChaosStragglerBitwiseIdentical(t *testing.T) {
	const nodes, groups, rounds = 6, 2, 5
	alg, shards := chaosWorkload(nodes)
	want, _ := trainUnderChaos(t, chaosOptions(nodes, groups, alg, shards, nil), rounds)
	nw := chaosFabric(t, `seed 23
link 4->0 latency 8ms jitter 4ms data-only
link 5->1 latency 6ms jitter 2ms data-only
`)
	got, stats := trainUnderChaos(t, chaosOptions(nodes, groups, alg, shards, nw), rounds)
	if stats.ExcludedRounds != 0 {
		t.Fatalf("straggler run excluded %d rounds; delays must not cost members", stats.ExcludedRounds)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("model[%d] = %b with stragglers, %b clean", i, got[i], want[i])
		}
	}
}

// TestChaosDropRecoversWithQuorum: random data-frame loss on every link
// makes members miss rounds; exclude-and-continue folds each timed-out round
// on the members that arrived, and training still completes and converges.
func TestChaosDropRecoversWithQuorum(t *testing.T) {
	const nodes, groups, rounds = 6, 2, 10
	alg, shards := chaosWorkload(nodes)
	nw := chaosFabric(t, "seed 5\nlink *->* drop 0.04 data-only\n")
	opts := chaosOptions(nodes, groups, alg, shards, nw)
	opts.RoundTimeout = 250 * time.Millisecond
	opts.MinQuorum = 2
	got, _ := trainUnderChaos(t, opts, rounds)
	initial := meanLoss(alg, make([]float64, alg.ModelSize()), shards)
	final := meanLoss(alg, got, shards)
	if final >= initial {
		t.Fatalf("loss %g after training, %g before: lossy run did not converge", final, initial)
	}
}

// TestChaosReorderRecoversWithQuorum: aggressive reordering on two member
// links can hold a round's final frame hostage until the next one flushes
// it; the quorum machinery turns each such stall into an excluded round and
// training completes anyway.
func TestChaosReorderRecoversWithQuorum(t *testing.T) {
	const nodes, groups, rounds = 6, 2, 8
	alg, shards := chaosWorkload(nodes)
	nw := chaosFabric(t, `seed 11
link 3->1 reorder 0.5 data-only
link 4->0 reorder 0.5 data-only
`)
	opts := chaosOptions(nodes, groups, alg, shards, nw)
	opts.RoundTimeout = 250 * time.Millisecond
	opts.MinQuorum = 2
	got, _ := trainUnderChaos(t, opts, rounds)
	initial := meanLoss(alg, make([]float64, alg.ModelSize()), shards)
	final := meanLoss(alg, got, shards)
	if final >= initial {
		t.Fatalf("loss %g after training, %g before", final, initial)
	}
}

// TestChaosPartitionHealsAndRejoins: a one-way partition blackholes Delta
// 5's contributions mid-run. Its Sigma times the rounds out, folds on the
// quorum, and marks 5 suspect; when the partition heals, 5's next
// contribution clears the mark and the cluster finishes with a full member
// set. The broadcast latency paces rounds so the partition window overlaps
// live training on any machine.
func TestChaosPartitionHealsAndRejoins(t *testing.T) {
	const nodes, groups, rounds = 6, 2, 20
	alg, shards := chaosWorkload(nodes)
	o := obs.New()
	nw := chaosFabric(t, `seed 17
link 0->* latency 10ms data-only
partition 5->1 at 100ms heal 500ms
`)
	opts := chaosOptions(nodes, groups, alg, shards, nw)
	opts.RoundTimeout = 250 * time.Millisecond
	opts.MinQuorum = 2
	opts.Obs = o
	got, _ := trainUnderChaos(t, opts, rounds)
	if excluded := metricSum(o.Registry(), "cosmic_round_excluded_total"); excluded < 1 {
		t.Fatalf("cosmic_round_excluded_total = %g; the partition cost no rounds", excluded)
	}
	if stuck := metricSum(o.Registry(), "cosmic_node_suspect"); stuck != 0 {
		t.Fatalf("cosmic_node_suspect sums to %g after the heal; the rejoin never cleared", stuck)
	}
	initial := meanLoss(alg, make([]float64, alg.ModelSize()), shards)
	final := meanLoss(alg, got, shards)
	if final >= initial {
		t.Fatalf("loss %g after training, %g before", final, initial)
	}
}

// TestChaosDeadDeltaQuorumSurvives: Delta 5's data never arrives — the
// permanently dead member. Its Sigma folds every round on the surviving
// quorum, keeps the member marked suspect, and the run completes.
func TestChaosDeadDeltaQuorumSurvives(t *testing.T) {
	const nodes, groups, rounds = 6, 2, 6
	alg, shards := chaosWorkload(nodes)
	o := obs.New()
	nw := chaosFabric(t, "seed 31\nlink 5->1 drop 1 data-only\n")
	opts := chaosOptions(nodes, groups, alg, shards, nw)
	opts.RoundTimeout = 200 * time.Millisecond
	opts.MinQuorum = 2
	opts.Obs = o
	got, _ := trainUnderChaos(t, opts, rounds)
	reg := o.Registry()
	if excluded := metricSum(reg, "cosmic_round_excluded_total"); excluded < float64(rounds-1) {
		t.Fatalf("cosmic_round_excluded_total = %g, want >= %d (every round folds without the dead member)", excluded, rounds-1)
	}
	if v := metricSum(reg, `cosmic_node_suspect{node="1",peer="5"}`); v != 1 {
		t.Fatalf("sigma 1's suspect gauge for member 5 = %g, want 1", v)
	}
	initial := meanLoss(alg, make([]float64, alg.ModelSize()), shards)
	final := meanLoss(alg, got, shards)
	if final >= initial {
		t.Fatalf("loss %g after training, %g before", final, initial)
	}
}

// TestChaosMidFrameKillReconnects: the fabric severs Delta 3's upstream
// connection mid-frame. The Sigma reads a truncated frame and drops the
// connection; the Delta's contribution for that round is lost (one excluded
// round), and its backoff redial plus hello rejoin restores the full member
// set for the remaining rounds.
func TestChaosMidFrameKillReconnects(t *testing.T) {
	const nodes, groups, rounds = 6, 2, 8
	alg, shards := chaosWorkload(nodes)
	o := obs.New()
	nw := chaosFabric(t, "seed 41\nlink 3->1 kill-frame 3 once data-only\n")
	opts := chaosOptions(nodes, groups, alg, shards, nw)
	opts.RoundTimeout = 300 * time.Millisecond
	opts.MinQuorum = 2
	opts.Reconnect = true
	opts.ReconnectWait = 10 * time.Second
	opts.Obs = o
	got, _ := trainUnderChaos(t, opts, rounds)
	reg := o.Registry()
	if excluded := metricSum(reg, "cosmic_round_excluded_total"); excluded < 1 {
		t.Fatalf("cosmic_round_excluded_total = %g; the kill cost no rounds", excluded)
	}
	if stuck := metricSum(reg, `cosmic_node_suspect{node="1",peer="3"}`); stuck != 0 {
		t.Fatalf("member 3's suspect gauge = %g after its rejoin, want 0", stuck)
	}
	initial := meanLoss(alg, make([]float64, alg.ModelSize()), shards)
	final := meanLoss(alg, got, shards)
	if final >= initial {
		t.Fatalf("loss %g after training, %g before", final, initial)
	}
}

// TestChaosLossCostsRoundsNotTheRun: under a seeded drop schedule the same
// frames vanish on every run (fault decisions are a pure function of seed,
// link, and frame index — the wire-level replay tests in package chaos pin
// that down), so this schedule reliably costs rounds; exclude-and-continue
// must turn each of them into an excluded round rather than a failed run.
// Bitwise replay of a whole faulted training run is deliberately NOT
// asserted: which members make a timeout's cut depends on wall-clock
// arrival, so only fault-free runs are bit-reproducible end to end.
func TestChaosLossCostsRoundsNotTheRun(t *testing.T) {
	const nodes, groups, rounds = 6, 2, 8
	alg, shards := chaosWorkload(nodes)
	o := obs.New()
	nw := chaosFabric(t, "seed 97\nlink *->* drop 0.06 data-only\n")
	opts := chaosOptions(nodes, groups, alg, shards, nw)
	opts.RoundTimeout = 250 * time.Millisecond
	opts.MinQuorum = 2
	opts.Obs = o
	got, _ := trainUnderChaos(t, opts, rounds)
	if excluded := metricSum(o.Registry(), "cosmic_round_excluded_total"); excluded < 1 {
		t.Fatalf("cosmic_round_excluded_total = %g; the seeded drops cost no rounds", excluded)
	}
	initial := meanLoss(alg, make([]float64, alg.ModelSize()), shards)
	final := meanLoss(alg, got, shards)
	if final >= initial {
		t.Fatalf("loss %g after training, %g before", final, initial)
	}
}

// chaosLogBuf is a goroutine-safe sink for the cluster's structured logs.
type chaosLogBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *chaosLogBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *chaosLogBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestChaosMasterPreExcludesDeadDelta pins a regression in the master's
// pre-exclusion arithmetic. The master's cfg.Members counts only its own
// group ({0,2} here), but its fold set also carries one aggregate per other
// group's Sigma — three members in total. Counting quorum survivors against
// the short number vetoed pre-exclusion whenever the master's own group
// alone could not make quorum, so a permanently dead Delta re-paid the
// round timeout on every round. With the fix the master folds the first
// timed-out round on quorum, then starts every later round without the
// suspect: one "round folded on quorum", pre-exclusions for the rest.
func TestChaosMasterPreExcludesDeadDelta(t *testing.T) {
	const nodes, groups, rounds = 4, 2, 8
	alg, shards := chaosWorkload(nodes)
	nw := chaosFabric(t, "seed 53\nlink 2->0 drop 1 data-only\n")
	opts := chaosOptions(nodes, groups, alg, shards, nw)
	opts.RoundTimeout = 200 * time.Millisecond
	opts.MinQuorum = 2
	var logs chaosLogBuf
	opts.Logger = slog.New(slog.NewTextHandler(&logs, nil))
	got, stats := trainUnderChaos(t, opts, rounds)
	if stats.ExcludedRounds != rounds {
		t.Errorf("ExcludedRounds = %d, want every one of %d (member 2 never delivers)",
			stats.ExcludedRounds, rounds)
	}
	text := logs.String()
	folded := strings.Count(text, "round folded on quorum")
	pre := strings.Count(text, "round started without suspect members")
	if pre < rounds-2 {
		t.Errorf("pre-excluded %d of %d rounds (quorum folds: %d); the dead member is re-paying the timeout",
			pre, rounds, folded)
	}
	if folded > 2 {
		t.Errorf("%d rounds folded on quorum, want at most the rounds before the suspect mark stuck", folded)
	}
	initial := meanLoss(alg, make([]float64, alg.ModelSize()), shards)
	final := meanLoss(alg, got, shards)
	if final >= initial {
		t.Fatalf("loss %g after training, %g before", final, initial)
	}
}
