package runtime

import (
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/cosmicnet"
	"repro/internal/obs"
)

// roundSecondsBuckets spans loopback micro-rounds (tens of microseconds) up
// to multi-second WAN rounds.
var roundSecondsBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1, 2.5,
}

// nodeObs holds a node's pre-resolved instruments so the frame, chunk, and
// round paths never touch the registry's lock. A nil *nodeObs (no observer
// attached) makes every recording call a no-op via the obs package's
// nil-instrument contract.
type nodeObs struct {
	tr  *obs.Tracer
	tid int

	// framesHello/Partial/GroupAgg count inbound frames on member
	// connections by type; rxWords/txWords count payload float64s moved.
	framesHello, framesPartial, framesGroupAgg *obs.Counter
	rxWords, txWords                           *obs.Counter

	// chunks and contributions measure the Sigma aggregation fan-in: ring
	// chunks folded into the aggregation buffer, and completed partials.
	chunks, contributions *obs.Counter

	rounds *obs.Counter
	// lastRoundSeconds is the node's most recent round wall time — the
	// series the director's straggler detector keys on.
	lastRoundSeconds *obs.Gauge
	// roundSeconds is the master's per-round wall-time distribution.
	roundSeconds *obs.Histogram

	// roundSeq, roundTx, and roundRx are the stepwise per-round samples the
	// TSDB scrape loop turns into time series: the round sequence number and
	// the payload words this node moved during the round just completed
	// (derived by differencing the cumulative counters at round boundaries).
	roundSeq, roundTx, roundRx *obs.Gauge
	prevTxWords, prevRxWords   int64

	// excludedRounds counts rounds this Sigma folded without a full member
	// set (quorum mode). reg and node back the per-peer suspect gauges,
	// which are resolved lazily — the peer set only matters under faults.
	excludedRounds *obs.Counter
	reg            *obs.Registry
	node           string
}

// newNodeObs resolves one node's instruments; nil observer → nil (disabled).
func newNodeObs(o *obs.Observer, id uint32, role Role) *nodeObs {
	if o == nil {
		return nil
	}
	reg := o.Registry()
	node := strconv.Itoa(int(id))
	frames := func(typ string) *obs.Counter {
		return reg.Counter(obs.Labeled("cosmic_node_frames_received_total", "node", node, "type", typ))
	}
	no := &nodeObs{
		tr:             o.Tracer(),
		tid:            int(id),
		framesHello:    frames("hello"),
		framesPartial:  frames("partial"),
		framesGroupAgg: frames("group_aggregate"),
		rxWords:        reg.Counter(obs.Labeled("cosmic_node_rx_payload_words_total", "node", node)),
		txWords:        reg.Counter(obs.Labeled("cosmic_node_tx_payload_words_total", "node", node)),
		chunks:         reg.Counter(obs.Labeled("cosmic_sigma_chunks_total", "node", node)),
		contributions:  reg.Counter(obs.Labeled("cosmic_sigma_contributions_total", "node", node)),
		rounds:         reg.Counter(obs.Labeled("cosmic_node_rounds_total", "node", node)),
		lastRoundSeconds: reg.Gauge(
			obs.Labeled("cosmic_node_last_round_seconds", "node", node)),
		roundSeq:       reg.Gauge(obs.Labeled("cosmic_node_round_seq", "node", node)),
		roundTx:        reg.Gauge(obs.Labeled("cosmic_node_round_tx_words", "node", node)),
		roundRx:        reg.Gauge(obs.Labeled("cosmic_node_round_rx_words", "node", node)),
		excludedRounds: reg.Counter(obs.Labeled("cosmic_round_excluded_total", "node", node)),
		reg:            reg,
		node:           node,
	}
	if role == RoleMasterSigma {
		no.roundSeconds = reg.Histogram(obs.Labeled("cosmic_round_seconds", "node", node), roundSecondsBuckets)
	}
	no.tr.NameThread(obs.PIDHost, int(id), "node "+node+" ("+role.String()+")")
	return no
}

// tracer returns the node's tracer (nil when disabled — nil-safe to use).
func (no *nodeObs) tracer() *obs.Tracer {
	if no == nil {
		return nil
	}
	return no.tr
}

// threadID returns the node's trace thread ID (0 when disabled).
func (no *nodeObs) threadID() int {
	if no == nil {
		return 0
	}
	return no.tid
}

// recvFrame records one inbound member frame.
func (no *nodeObs) recvFrame(typ *obs.Counter, payloadLen int) {
	if no == nil {
		return
	}
	typ.Inc()
	no.rxWords.Add(int64(payloadLen))
}

// sent records one outbound frame's payload.
func (no *nodeObs) sent(payloadLen int) {
	if no == nil {
		return
	}
	no.txWords.Add(int64(payloadLen))
}

// chunkFolded records one ring chunk reaching the aggregation buffer.
func (no *nodeObs) chunkFolded(last bool) {
	if no == nil {
		return
	}
	no.chunks.Inc()
	if last {
		no.contributions.Inc()
	}
}

// roundDone records one completed round at this node: the cumulative round
// counter and latency, plus the stepwise gauges (sequence number and the
// words moved within just this round). Rounds complete on a single
// goroutine per node, so the prev counters need no synchronization.
func (no *nodeObs) roundDone(seq uint32, d time.Duration) {
	if no == nil {
		return
	}
	no.rounds.Inc()
	no.lastRoundSeconds.Set(d.Seconds())
	no.roundSeconds.Observe(d.Seconds())
	no.roundSeq.Set(float64(seq))
	tx, rx := no.txWords.Value(), no.rxWords.Value()
	no.roundTx.Set(float64(tx - no.prevTxWords))
	no.roundRx.Set(float64(rx - no.prevRxWords))
	no.prevTxWords, no.prevRxWords = tx, rx
}

// roundExcluded counts one round folded on a quorum instead of the full
// member set.
func (no *nodeObs) roundExcluded() {
	if no == nil {
		return
	}
	no.excludedRounds.Inc()
}

// suspect publishes this Sigma's view of one member: 1 while the peer is
// suspect (missing from a fold), 0 once it contributes again.
func (no *nodeObs) suspect(peer uint32, v float64) {
	if no == nil {
		return
	}
	no.reg.Gauge(obs.Labeled("cosmic_node_suspect",
		"node", no.node, "peer", strconv.Itoa(int(peer)))).Set(v)
}

// traceArgs builds the span arguments that let the merger draw flow arrows:
// the frame's trace ID plus its span ID under flowKey (obs.ArgFlowOut on
// send spans, obs.ArgFlowIn on receive spans).
func traceArgs(f *cosmicnet.Frame, flowKey string) map[string]any {
	args := map[string]any{"seq": f.Seq}
	if f.TraceID != 0 {
		args[obs.ArgTraceID] = obs.IDString(f.TraceID)
	}
	if f.SpanID != 0 {
		args[flowKey] = obs.IDString(f.SpanID)
	}
	if f.Chunked() {
		// One flow arrow per streamed chunk; label which slice of the
		// vector this arrow carried.
		args["chunk"] = int64(f.ChunkIndex)
		args["chunks"] = int64(f.ChunkCount)
	}
	return args
}

// summarizeRounds computes nearest-rank p50/p95 and the max over the round
// durations; zeros for an empty run.
func summarizeRounds(durs []time.Duration) (p50, p95, max time.Duration) {
	if len(durs) == 0 {
		return 0, 0, 0
	}
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(q float64) time.Duration {
		idx := int(math.Ceil(q*float64(len(s)))) - 1
		if idx < 0 {
			idx = 0
		}
		return s[idx]
	}
	return rank(0.50), rank(0.95), s[len(s)-1]
}
