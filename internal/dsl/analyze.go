package dsl

import (
	"fmt"
	"math"
	"sort"
)

// NonlinearFuncs is the set of nonlinear functions a PE's lookup-table unit
// implements. The paper names sigmoid, gaussian, divide and logarithm as the
// expensive operations backed by LUTs; the remainder round out the common ML
// activation set.
var NonlinearFuncs = map[string]bool{
	"sigmoid":  true,
	"gaussian": true,
	"log":      true,
	"exp":      true,
	"sqrt":     true,
	"tanh":     true,
	"relu":     true,
	"abs":      true,
	"sign":     true,
}

// Symbol is a resolved DSL variable with concrete extents.
type Symbol struct {
	Name string
	Kind VarKind
	Dims []int // concrete dimension extents; empty for scalars
	// Lo and Hi give the half-open iteration range for iterators.
	Lo, Hi int
	// DeclPos is the declaration site (zero for interim symbols).
	DeclPos Pos
}

// Size returns the number of scalar elements of the symbol.
func (s *Symbol) Size() int {
	n := 1
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// Count returns the iterator trip count (iterators only).
func (s *Symbol) Count() int { return s.Hi - s.Lo }

// Unit is a semantically analyzed program: the AST plus a symbol table with
// all dimension parameters substituted.
type Unit struct {
	Program *Program
	Params  map[string]int
	Symbols map[string]*Symbol
	// Order lists symbol names in declaration order (interims last, in first
	// assignment order).
	Order []string
}

// Analyze checks prog against params (values for symbolic dimension names)
// and produces the resolved unit.
func Analyze(prog *Program, params map[string]int) (*Unit, error) {
	u := &Unit{Program: prog, Params: params, Symbols: map[string]*Symbol{}}
	for _, d := range prog.Decls {
		if _, dup := u.Symbols[d.Name]; dup {
			return nil, errorf(d.Pos, "duplicate declaration of %q", d.Name)
		}
		if _, isParam := params[d.Name]; isParam {
			return nil, errorf(d.Pos, "%q is declared but also given as a dimension parameter", d.Name)
		}
		sym := &Symbol{Name: d.Name, Kind: d.Kind, DeclPos: d.Pos}
		if d.Kind == KindIterator {
			lo, err := evalConst(d.Lo, params)
			if err != nil {
				return nil, err
			}
			hi, err := evalConst(d.Hi, params)
			if err != nil {
				return nil, err
			}
			if hi <= lo {
				return nil, errorf(d.Pos, "iterator %q has empty range [%d:%d)", d.Name, lo, hi)
			}
			sym.Lo, sym.Hi = lo, hi
		} else {
			for _, dim := range d.Dims {
				n, err := evalConst(dim, params)
				if err != nil {
					return nil, err
				}
				if n <= 0 {
					return nil, errorf(d.Pos, "dimension of %q must be positive, got %d", d.Name, n)
				}
				sym.Dims = append(sym.Dims, n)
			}
		}
		u.Symbols[d.Name] = sym
		u.Order = append(u.Order, d.Name)
	}

	// Walk statements: implicit interim declarations and reference checking.
	assigned := map[string]bool{}
	for _, st := range prog.Stmts {
		sym, ok := u.Symbols[st.Name]
		if !ok {
			// Implicitly declare an interim. Its rank is the number of LHS
			// subscripts; extents are derived from the subscript iterators.
			dims, err := u.lhsDims(st)
			if err != nil {
				return nil, err
			}
			sym = &Symbol{Name: st.Name, Kind: KindInterim, Dims: dims, DeclPos: st.Pos}
			u.Symbols[st.Name] = sym
			u.Order = append(u.Order, st.Name)
		} else {
			switch sym.Kind {
			case KindModelInput, KindModelOutput:
				return nil, errorf(st.Pos, "cannot assign to %s %q", sym.Kind, st.Name)
			case KindIterator:
				return nil, errorf(st.Pos, "cannot assign to iterator %q", st.Name)
			}
			if len(st.Indices) != len(sym.Dims) {
				return nil, errorf(st.Pos, "%q has rank %d but is assigned with %d subscripts",
					st.Name, len(sym.Dims), len(st.Indices))
			}
		}
		bound := map[string]bool{}
		for _, ix := range st.Indices {
			collectIterators(ix, u, bound)
		}
		if err := u.checkExpr(st.RHS, bound, assigned); err != nil {
			return nil, err
		}
		assigned[st.Name] = true
	}

	// Every gradient output must be assigned.
	for _, name := range u.Order {
		sym := u.Symbols[name]
		if sym.Kind == KindGradient && !assigned[name] {
			return nil, errorf(sym.DeclPos, "gradient %q is never assigned", name)
		}
	}
	if !prog.HasAggregator {
		return nil, errorf(Pos{1, 1}, "program does not declare an aggregator (average or sum)")
	}
	return u, nil
}

// lhsDims derives the extents of an implicitly declared interim from the
// iterators used in the LHS subscripts.
func (u *Unit) lhsDims(st *Assign) ([]int, error) {
	dims := make([]int, 0, len(st.Indices))
	for _, ix := range st.Indices {
		ref, ok := ix.(*VarRef)
		if !ok || len(ref.Indices) != 0 {
			return nil, errorf(st.Pos, "subscripts of implicitly declared %q must be plain iterators", st.Name)
		}
		it, ok := u.Symbols[ref.Name]
		if !ok || it.Kind != KindIterator {
			return nil, errorf(ref.Pos, "subscript %q of implicitly declared %q is not an iterator", ref.Name, st.Name)
		}
		dims = append(dims, it.Count())
	}
	return dims, nil
}

func collectIterators(e Expr, u *Unit, out map[string]bool) {
	switch e := e.(type) {
	case *VarRef:
		if sym, ok := u.Symbols[e.Name]; ok && sym.Kind == KindIterator {
			out[e.Name] = true
		}
		for _, ix := range e.Indices {
			collectIterators(ix, u, out)
		}
	case *BinaryExpr:
		collectIterators(e.X, u, out)
		collectIterators(e.Y, u, out)
	case *UnaryExpr:
		collectIterators(e.X, u, out)
	case *CondExpr:
		collectIterators(e.Cond, u, out)
		collectIterators(e.Then, u, out)
		collectIterators(e.Else, u, out)
	case *Reduce:
		collectIterators(e.Body, u, out)
	case *CallExpr:
		for _, a := range e.Args {
			collectIterators(a, u, out)
		}
	}
}

func (u *Unit) checkExpr(e Expr, bound map[string]bool, assigned map[string]bool) error {
	switch e := e.(type) {
	case *NumberLit:
		return nil
	case *VarRef:
		sym, ok := u.Symbols[e.Name]
		if !ok {
			if _, isParam := u.Params[e.Name]; isParam {
				if len(e.Indices) != 0 {
					return errorf(e.Pos, "parameter %q cannot be subscripted", e.Name)
				}
				return nil
			}
			return errorf(e.Pos, "undefined variable %q", e.Name)
		}
		if sym.Kind == KindIterator {
			if len(e.Indices) != 0 {
				return errorf(e.Pos, "iterator %q cannot be subscripted", e.Name)
			}
			if !bound[e.Name] {
				return errorf(e.Pos, "iterator %q used outside of a binding context", e.Name)
			}
			return nil
		}
		if sym.Kind == KindInterim && !assigned[e.Name] {
			return errorf(e.Pos, "interim %q used before assignment", e.Name)
		}
		if len(e.Indices) != len(sym.Dims) {
			return errorf(e.Pos, "%q has rank %d but is referenced with %d subscripts",
				e.Name, len(sym.Dims), len(e.Indices))
		}
		for _, ix := range e.Indices {
			if err := u.checkExpr(ix, bound, assigned); err != nil {
				return err
			}
		}
		return nil
	case *BinaryExpr:
		if err := u.checkExpr(e.X, bound, assigned); err != nil {
			return err
		}
		return u.checkExpr(e.Y, bound, assigned)
	case *UnaryExpr:
		return u.checkExpr(e.X, bound, assigned)
	case *CondExpr:
		if err := u.checkExpr(e.Cond, bound, assigned); err != nil {
			return err
		}
		if err := u.checkExpr(e.Then, bound, assigned); err != nil {
			return err
		}
		return u.checkExpr(e.Else, bound, assigned)
	case *Reduce:
		it, ok := u.Symbols[e.Iter]
		if !ok || it.Kind != KindIterator {
			return errorf(e.Pos, "reduction variable %q is not a declared iterator", e.Iter)
		}
		if bound[e.Iter] {
			return errorf(e.Pos, "iterator %q is already bound in an enclosing context", e.Iter)
		}
		bound[e.Iter] = true
		err := u.checkExpr(e.Body, bound, assigned)
		delete(bound, e.Iter)
		return err
	case *CallExpr:
		if !NonlinearFuncs[e.Fn] {
			return errorf(e.Pos, "unknown function %q", e.Fn)
		}
		if len(e.Args) != 1 {
			return errorf(e.Pos, "%s takes exactly 1 argument, got %d", e.Fn, len(e.Args))
		}
		return u.checkExpr(e.Args[0], bound, assigned)
	}
	return fmt.Errorf("dsl: unknown expression type %T", e)
}

// evalConst evaluates a constant integer expression (literals, parameters,
// and + - * / over them).
func evalConst(e Expr, params map[string]int) (int, error) {
	v, err := evalConstF(e, params)
	if err != nil {
		return 0, err
	}
	if v != math.Trunc(v) {
		return 0, errorf(e.Position(), "dimension expression %s is not an integer", e)
	}
	return int(v), nil
}

func evalConstF(e Expr, params map[string]int) (float64, error) {
	switch e := e.(type) {
	case *NumberLit:
		return e.Value, nil
	case *VarRef:
		if len(e.Indices) != 0 {
			return 0, errorf(e.Pos, "subscripted reference %s is not constant", e)
		}
		if v, ok := params[e.Name]; ok {
			return float64(v), nil
		}
		return 0, errorf(e.Pos, "unknown dimension parameter %q", e.Name)
	case *UnaryExpr:
		v, err := evalConstF(e.X, params)
		return -v, err
	case *BinaryExpr:
		x, err := evalConstF(e.X, params)
		if err != nil {
			return 0, err
		}
		y, err := evalConstF(e.Y, params)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case OpAdd:
			return x + y, nil
		case OpSub:
			return x - y, nil
		case OpMul:
			return x * y, nil
		case OpDiv:
			if y == 0 {
				return 0, errorf(e.Pos, "division by zero in dimension expression")
			}
			return x / y, nil
		}
	}
	return 0, errorf(e.Position(), "expression %s is not constant", e)
}

// ModelGradientPairs matches model symbols to gradient symbols by
// declaration order: the i-th declared model is updated by the i-th declared
// gradient. This is the stack's convention for applying the fixed update
// rule θ ← θ − μ·∂f/∂θ. It fails if the program's models and gradients do
// not pair up; layers that never apply updates (e.g. pure compilation) need
// not call it.
func (u *Unit) ModelGradientPairs() ([][2]*Symbol, error) {
	models := u.SymbolsOfKind(KindModel)
	grads := u.SymbolsOfKind(KindGradient)
	if len(models) != len(grads) {
		return nil, errorf(Pos{1, 1}, "%d model symbols but %d gradient symbols", len(models), len(grads))
	}
	pairs := make([][2]*Symbol, len(models))
	for i := range models {
		if models[i].Size() != grads[i].Size() {
			return nil, errorf(grads[i].DeclPos,
				"gradient %q has %d elements but its paired model %q has %d",
				grads[i].Name, grads[i].Size(), models[i].Name, models[i].Size())
		}
		pairs[i] = [2]*Symbol{models[i], grads[i]}
	}
	return pairs, nil
}

// SymbolsOfKind returns the unit's symbols of the given kind in declaration
// order.
func (u *Unit) SymbolsOfKind(kind VarKind) []*Symbol {
	var out []*Symbol
	for _, name := range u.Order {
		if s := u.Symbols[name]; s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// TotalSize sums the element counts of all symbols of the given kind.
func (u *Unit) TotalSize(kind VarKind) int {
	n := 0
	for _, s := range u.SymbolsOfKind(kind) {
		n += s.Size()
	}
	return n
}

// ModelSize returns the number of model parameters.
func (u *Unit) ModelSize() int { return u.TotalSize(KindModel) }

// InputSize returns the number of scalar elements in one training vector
// (model inputs plus model outputs).
func (u *Unit) InputSize() int {
	return u.TotalSize(KindModelInput) + u.TotalSize(KindModelOutput)
}

// GradientSize returns the number of gradient outputs.
func (u *Unit) GradientSize() int { return u.TotalSize(KindGradient) }

// SortedParamNames returns the parameter names in sorted order (for
// deterministic output).
func (u *Unit) SortedParamNames() []string {
	names := make([]string, 0, len(u.Params))
	for n := range u.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
