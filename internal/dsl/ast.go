package dsl

import (
	"fmt"
	"strings"
)

// VarKind classifies a declared DSL variable according to its semantics in
// the learning algorithm.
type VarKind int

// Variable kinds. The kind determines where the value lives at runtime:
// model inputs/outputs stream from training data, model parameters are
// broadcast before each mini-batch, gradients are the program's outputs, and
// everything computed in between is interim state.
const (
	KindModelInput VarKind = iota
	KindModelOutput
	KindModel
	KindGradient
	KindIterator
	KindInterim // implicitly declared by assignment to an undeclared name
)

var varKindNames = [...]string{
	KindModelInput:  "model_input",
	KindModelOutput: "model_output",
	KindModel:       "model",
	KindGradient:    "gradient",
	KindIterator:    "iterator",
	KindInterim:     "interim",
}

// String returns the DSL keyword for the kind.
func (k VarKind) String() string {
	if int(k) < len(varKindNames) {
		return varKindNames[k]
	}
	return fmt.Sprintf("VarKind(%d)", int(k))
}

// AggregatorKind selects how partial gradients from parallel workers are
// combined: parallelized SGD averages partial model updates, batched
// gradient descent sums partial gradients.
type AggregatorKind int

// Aggregation operators.
const (
	AggAverage AggregatorKind = iota
	AggSum
)

// String returns the DSL name of the aggregator.
func (a AggregatorKind) String() string {
	switch a {
	case AggAverage:
		return "average"
	case AggSum:
		return "sum"
	}
	return fmt.Sprintf("AggregatorKind(%d)", int(a))
}

// Decl is a variable declaration, e.g. "model w[M];" or "iterator i[0:M];".
type Decl struct {
	Kind VarKind
	Name string
	Dims []Expr // dimension extents; nil for scalars
	// Lo and Hi give the iterator range [Lo:Hi) for iterator declarations.
	Lo, Hi Expr
	Pos    Pos
}

// Assign is an assignment statement "lhs = expr;". The left-hand side may be
// subscripted with iterator expressions, in which case the statement is
// implicitly repeated for every point of the iteration space.
type Assign struct {
	Name    string
	Indices []Expr
	RHS     Expr
	Pos     Pos
}

// Program is a parsed DSL program: declarations, the gradient-formula
// statements, and the scale-out directives (aggregator, mini-batch size,
// learning rate).
type Program struct {
	Decls      []*Decl
	Stmts      []*Assign
	Aggregator AggregatorKind
	// HasAggregator records whether the program declared one explicitly.
	HasAggregator bool
	MiniBatch     int
	LearningRate  float64
	Source        string
}

// Expr is a DSL expression node.
type Expr interface {
	expr()
	// String renders the expression in DSL syntax.
	String() string
	// Position returns the source position of the expression.
	Position() Pos
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
	Pos   Pos
}

// VarRef references a scalar variable or an element of an array variable.
type VarRef struct {
	Name    string
	Indices []Expr
	Pos     Pos
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpGT
	OpLT
	OpGE
	OpLE
	OpEQ
	OpNE
)

var binaryOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpGT: ">", OpLT: "<", OpGE: ">=", OpLE: "<=", OpEQ: "==", OpNE: "!=",
}

// String returns the operator's DSL spelling.
func (op BinaryOp) String() string {
	if int(op) < len(binaryOpNames) {
		return binaryOpNames[op]
	}
	return fmt.Sprintf("BinaryOp(%d)", int(op))
}

// BinaryExpr is "X op Y".
type BinaryExpr struct {
	Op   BinaryOp
	X, Y Expr
	Pos  Pos
}

// UnaryExpr is unary negation "-X".
type UnaryExpr struct {
	X   Expr
	Pos Pos
}

// CondExpr is the ternary conditional "Cond ? Then : Else".
type CondExpr struct {
	Cond, Then, Else Expr
	Pos              Pos
}

// ReduceKind selects the reduction operator of a Reduce expression.
type ReduceKind int

// Reductions. Sum corresponds to Σ, Prod to Π.
const (
	ReduceSum ReduceKind = iota
	ReduceProd
)

// Reduce is a reduction over an iterator, e.g. "sum[i](w[i]*x[i])".
type Reduce struct {
	Kind ReduceKind
	Iter string
	Body Expr
	Pos  Pos
}

// CallExpr is a nonlinear function application, e.g. "sigmoid(z)". The set
// of legal function names is defined by package dfg's operator table.
type CallExpr struct {
	Fn   string
	Args []Expr
	Pos  Pos
}

func (*NumberLit) expr()  {}
func (*VarRef) expr()     {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*CondExpr) expr()   {}
func (*Reduce) expr()     {}
func (*CallExpr) expr()   {}

// Position returns the literal's source position.
func (e *NumberLit) Position() Pos { return e.Pos }

// Position returns the reference's source position.
func (e *VarRef) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *BinaryExpr) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *UnaryExpr) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *CondExpr) Position() Pos { return e.Pos }

// Position returns the reduction's source position.
func (e *Reduce) Position() Pos { return e.Pos }

// Position returns the call's source position.
func (e *CallExpr) Position() Pos { return e.Pos }

// String renders the literal.
func (e *NumberLit) String() string {
	s := fmt.Sprintf("%g", e.Value)
	return s
}

// String renders the variable reference with its subscripts.
func (e *VarRef) String() string {
	if len(e.Indices) == 0 {
		return e.Name
	}
	parts := make([]string, len(e.Indices))
	for i, ix := range e.Indices {
		parts[i] = ix.String()
	}
	return fmt.Sprintf("%s[%s]", e.Name, strings.Join(parts, ", "))
}

// String renders the binary expression parenthesized.
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y)
}

// String renders the negation.
func (e *UnaryExpr) String() string { return fmt.Sprintf("(-%s)", e.X) }

// String renders the conditional.
func (e *CondExpr) String() string {
	return fmt.Sprintf("(%s ? %s : %s)", e.Cond, e.Then, e.Else)
}

// String renders the reduction.
func (e *Reduce) String() string {
	name := "sum"
	if e.Kind == ReduceProd {
		name = "pi"
	}
	return fmt.Sprintf("%s[%s](%s)", name, e.Iter, e.Body)
}

// String renders the function call.
func (e *CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Fn, strings.Join(parts, ", "))
}

// LinesOfCode reports the number of non-empty, non-comment source lines in
// the program, the metric Table 1 of the paper reports per benchmark.
func (p *Program) LinesOfCode() int {
	n := 0
	for _, line := range strings.Split(p.Source, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		n++
	}
	return n
}
