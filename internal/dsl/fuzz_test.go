package dsl_test

import (
	"strings"
	"testing"

	"repro/internal/dsl"
)

// fuzzParams supplies every dimension parameter the shipped sources use, so
// seeds that survive parsing also exercise analysis.
var fuzzParams = map[string]int{
	"M": 8, "IN": 4, "HID": 3, "OUT": 2,
	"NU": 4, "NV": 3, "K": 2, "C": 3,
}

// FuzzParseAndAnalyze asserts the front end's contract under arbitrary
// input: ParseAndAnalyze either returns a unit or an error — it never
// panics, never overflows the stack, and never returns (nil, nil). The
// corpus seeds are the six shipped DSL programs plus inputs aimed at the
// recursive-descent parser's depth (unary chains, paren nesting, ternaries).
func FuzzParseAndAnalyze(f *testing.F) {
	for _, src := range []string{
		dsl.SourceLinearRegression,
		dsl.SourceLogisticRegression,
		dsl.SourceSVM,
		dsl.SourceBackprop,
		dsl.SourceCollaborativeFiltering,
		dsl.SourceSoftmax,
	} {
		f.Add(src)
	}
	f.Add("model_input x[M]; model w[M]; gradient g[M]; g[1] = w[1] - x[1];")
	f.Add("iterator i[0:M]; gradient g; g = sum[i](1);")
	f.Add("gradient g; g = " + strings.Repeat("-", 300) + "1;")
	f.Add("gradient g; g = " + strings.Repeat("(", 300) + "1" + strings.Repeat(")", 300) + ";")
	f.Add("gradient g; g = 1 > 0 ? 1 ? 2 : 3 : 4;")
	f.Add("minibatch 0; learning_rate = -;")
	f.Add("aggregator sum; aggregator bogus;")

	f.Fuzz(func(t *testing.T, src string) {
		u, err := dsl.ParseAndAnalyze(src, fuzzParams)
		if err == nil && u == nil {
			t.Fatalf("ParseAndAnalyze(%q) returned neither a unit nor an error", src)
		}
	})
}

// TestParserRejectsDeepNesting pins the depth limit found by fuzzing: a
// kilobyte of '-' or '(' must come back as a parse error, not a stack
// overflow.
func TestParserRejectsDeepNesting(t *testing.T) {
	cases := []string{
		"gradient g; g = " + strings.Repeat("-", 100000) + "1;",
		"gradient g; g = " + strings.Repeat("(", 100000) + "1;",
		"gradient g; g = " + strings.Repeat("1?1:", 100000) + "1;",
	}
	for _, src := range cases {
		if _, err := dsl.Parse(src); err == nil {
			t.Errorf("deeply nested input parsed without error")
		} else if !strings.Contains(err.Error(), "nesting") && !strings.Contains(err.Error(), "expected") {
			t.Errorf("unexpected error: %v", err)
		}
	}
}

// TestParserAcceptsReasonableNesting proves the limit is far above what
// real programs use.
func TestParserAcceptsReasonableNesting(t *testing.T) {
	src := "gradient g; g = " + strings.Repeat("(", 50) + "--1" + strings.Repeat(")", 50) + ";"
	if _, err := dsl.Parse(src); err != nil {
		t.Fatalf("50-deep nesting rejected: %v", err)
	}
}
