package dsl

import (
	"reflect"
	"testing"
)

// stripPositions zeroes source positions so ASTs can be compared
// structurally.
func stripPositions(p *Program) {
	for _, d := range p.Decls {
		d.Pos = Pos{}
		for _, dim := range d.Dims {
			stripExprPos(dim)
		}
		if d.Lo != nil {
			stripExprPos(d.Lo)
		}
		if d.Hi != nil {
			stripExprPos(d.Hi)
		}
	}
	for _, st := range p.Stmts {
		st.Pos = Pos{}
		for _, ix := range st.Indices {
			stripExprPos(ix)
		}
		stripExprPos(st.RHS)
	}
	p.Source = ""
}

func stripExprPos(e Expr) {
	switch e := e.(type) {
	case *NumberLit:
		e.Pos = Pos{}
	case *VarRef:
		e.Pos = Pos{}
		for _, ix := range e.Indices {
			stripExprPos(ix)
		}
	case *UnaryExpr:
		e.Pos = Pos{}
		stripExprPos(e.X)
	case *BinaryExpr:
		e.Pos = Pos{}
		stripExprPos(e.X)
		stripExprPos(e.Y)
	case *CondExpr:
		e.Pos = Pos{}
		stripExprPos(e.Cond)
		stripExprPos(e.Then)
		stripExprPos(e.Else)
	case *Reduce:
		e.Pos = Pos{}
		stripExprPos(e.Body)
	case *CallExpr:
		e.Pos = Pos{}
		for _, a := range e.Args {
			stripExprPos(a)
		}
	}
}

// TestFormatRoundTrip: formatting then re-parsing every benchmark program
// (and the extension program) yields a structurally identical AST.
func TestFormatRoundTrip(t *testing.T) {
	sources := map[string]string{
		"linreg":   SourceLinearRegression,
		"logreg":   SourceLogisticRegression,
		"svm":      SourceSVM,
		"backprop": SourceBackprop,
		"cf":       SourceCollaborativeFiltering,
		"softmax":  SourceSoftmax,
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			orig, err := Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			formatted := Format(orig)
			again, err := Parse(formatted)
			if err != nil {
				t.Fatalf("formatted source does not parse: %v\n%s", err, formatted)
			}
			stripPositions(orig)
			stripPositions(again)
			if !reflect.DeepEqual(orig, again) {
				t.Errorf("round trip changed the AST:\n--- formatted ---\n%s", formatted)
			}
		})
	}
}

// TestFormatPreservesPrecedence: minimal parenthesization must not change
// evaluation structure.
func TestFormatPreservesPrecedence(t *testing.T) {
	cases := []string{
		"g = a + b * c; aggregator sum;",
		"g = (a + b) * c; aggregator sum;",
		"g = a - b - c; aggregator sum;",
		"g = a - (b - c); aggregator sum;",
		"g = a / b / c; aggregator sum;",
		"g = -a * b; aggregator sum;",
		"g = -(a * b); aggregator sum;",
		"g = a < b ? c + 1 : d * 2; aggregator sum;",
		"g = (a < b ? c : d) + 1; aggregator sum;",
		"g = sum[i](a * b + c); aggregator sum;",
	}
	for _, src := range cases {
		orig, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		again, err := Parse(Format(orig))
		if err != nil {
			t.Fatalf("%q: formatted does not parse: %v", src, err)
		}
		stripPositions(orig)
		stripPositions(again)
		if !reflect.DeepEqual(orig.Stmts, again.Stmts) {
			t.Errorf("%q: round trip changed structure:\n%s", src, Format(orig))
		}
	}
}

// TestFormatIsStable: formatting is idempotent.
func TestFormatIsStable(t *testing.T) {
	orig, err := Parse(SourceBackprop)
	if err != nil {
		t.Fatal(err)
	}
	once := Format(orig)
	reparsed, err := Parse(once)
	if err != nil {
		t.Fatal(err)
	}
	if twice := Format(reparsed); once != twice {
		t.Errorf("formatting is not idempotent:\n--- once ---\n%s--- twice ---\n%s", once, twice)
	}
}
