// Package dsl implements the CoSMIC programming layer: a math-oriented
// domain-specific language (an extension of the TABLA DSL) in which a
// programmer expresses a learning algorithm as its partial-gradient formula,
// an aggregation operator, and a mini-batch size.
//
// The language has five data types that carry the semantics of learning
// algorithms — model_input, model_output, model, gradient, and iterator —
// and statements that are one-to-one with mathematical formulas, e.g.
//
//	s = sum[i](w[i] * x[i]);
//
// for the term Σᵢ wᵢ·xᵢ. Programs are parsed into an AST (this package) and
// translated into a dataflow graph by package dfg.
package dsl

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber

	// Keywords.
	TokModelInput
	TokModelOutput
	TokModel
	TokGradient
	TokIterator
	TokAggregator
	TokMinibatch
	TokLearnRate
	TokSum
	TokPi

	// Punctuation and operators.
	TokSemi     // ;
	TokComma    // ,
	TokLBracket // [
	TokRBracket // ]
	TokLParen   // (
	TokRParen   // )
	TokAssign   // =
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokGT       // >
	TokLT       // <
	TokGE       // >=
	TokLE       // <=
	TokEQ       // ==
	TokNE       // !=
	TokQuestion // ?
	TokColon    // :
)

var tokenNames = map[TokenKind]string{
	TokEOF:         "EOF",
	TokIdent:       "identifier",
	TokNumber:      "number",
	TokModelInput:  "model_input",
	TokModelOutput: "model_output",
	TokModel:       "model",
	TokGradient:    "gradient",
	TokIterator:    "iterator",
	TokAggregator:  "aggregator",
	TokMinibatch:   "minibatch",
	TokLearnRate:   "learning_rate",
	TokSum:         "sum",
	TokPi:          "pi",
	TokSemi:        ";",
	TokComma:       ",",
	TokLBracket:    "[",
	TokRBracket:    "]",
	TokLParen:      "(",
	TokRParen:      ")",
	TokAssign:      "=",
	TokPlus:        "+",
	TokMinus:       "-",
	TokStar:        "*",
	TokSlash:       "/",
	TokGT:          ">",
	TokLT:          "<",
	TokGE:          ">=",
	TokLE:          "<=",
	TokEQ:          "==",
	TokNE:          "!=",
	TokQuestion:    "?",
	TokColon:       ":",
}

// String returns the printable name of the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"model_input":   TokModelInput,
	"model_output":  TokModelOutput,
	"model":         TokModel,
	"gradient":      TokGradient,
	"iterator":      TokIterator,
	"aggregator":    TokAggregator,
	"minibatch":     TokMinibatch,
	"learning_rate": TokLearnRate,
	"sum":           TokSum,
	"pi":            TokPi,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// Error is a DSL front-end error carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("dsl: %s: %s", e.Pos, e.Msg) }

func errorf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lexer tokenizes DSL source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peekByte() (byte, bool) {
	if lx.off >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.off], true
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipSpaceAndComments consumes whitespace and //-to-end-of-line comments.
func (lx *Lexer) skipSpaceAndComments() {
	for {
		c, ok := lx.peekByte()
		if !ok {
			return
		}
		if isSpace(c) {
			lx.advance()
			continue
		}
		if c == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/' {
			for {
				c, ok := lx.peekByte()
				if !ok || c == '\n' {
					break
				}
				lx.advance()
			}
			continue
		}
		return
	}
}

// Next returns the next token, or an error on an illegal character.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	pos := Pos{Line: lx.line, Col: lx.col}
	c, ok := lx.peekByte()
	if !ok {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	switch {
	case isIdentStart(c):
		start := lx.off
		for {
			c, ok := lx.peekByte()
			if !ok || !isIdentCont(c) {
				break
			}
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, isKW := keywords[text]; isKW {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case isDigit(c) || c == '.':
		start := lx.off
		seenDot := false
		seenExp := false
		for {
			c, ok := lx.peekByte()
			if !ok {
				break
			}
			if isDigit(c) {
				lx.advance()
				continue
			}
			if c == '.' && !seenDot && !seenExp {
				seenDot = true
				lx.advance()
				continue
			}
			if (c == 'e' || c == 'E') && !seenExp && lx.off > start {
				seenExp = true
				lx.advance()
				if c2, ok2 := lx.peekByte(); ok2 && (c2 == '+' || c2 == '-') {
					lx.advance()
				}
				continue
			}
			break
		}
		text := lx.src[start:lx.off]
		if text == "." {
			return Token{}, errorf(pos, "unexpected character %q", c)
		}
		return Token{Kind: TokNumber, Text: text, Pos: pos}, nil
	}
	lx.advance()
	single := map[byte]TokenKind{
		';': TokSemi, ',': TokComma, '[': TokLBracket, ']': TokRBracket,
		'(': TokLParen, ')': TokRParen, '+': TokPlus, '-': TokMinus,
		'*': TokStar, '/': TokSlash, '?': TokQuestion, ':': TokColon,
	}
	if k, isSingle := single[c]; isSingle {
		return Token{Kind: k, Text: string(c), Pos: pos}, nil
	}
	two := func(next byte, with, without TokenKind) (Token, error) {
		if c2, ok := lx.peekByte(); ok && c2 == next {
			lx.advance()
			return Token{Kind: with, Text: string(c) + string(next), Pos: pos}, nil
		}
		return Token{Kind: without, Text: string(c), Pos: pos}, nil
	}
	switch c {
	case '=':
		return two('=', TokEQ, TokAssign)
	case '>':
		return two('=', TokGE, TokGT)
	case '<':
		return two('=', TokLE, TokLT)
	case '!':
		tok, err := two('=', TokNE, TokEOF)
		if err == nil && tok.Kind == TokEOF {
			return Token{}, errorf(pos, "unexpected character '!'")
		}
		return tok, err
	}
	return Token{}, errorf(pos, "unexpected character %q", c)
}

// Tokenize lexes the entire source and returns all tokens including the
// trailing EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}
