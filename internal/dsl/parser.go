package dsl

import "strconv"

// Parser is a recursive-descent parser for the CoSMIC DSL.
type Parser struct {
	toks  []Token
	pos   int
	src   string
	depth int
}

// maxNestingDepth bounds expression recursion so adversarial inputs (a
// kilobyte of '-' or '(') fail with a parse error instead of overflowing
// the goroutine stack. Real DSL programs nest a handful of levels.
const maxNestingDepth = 200

func (p *Parser) enter() error {
	p.depth++
	if p.depth > maxNestingDepth {
		return errorf(p.cur().Pos, "expression nesting exceeds %d levels", maxNestingDepth)
	}
	return nil
}

func (p *Parser) leave() { p.depth-- }

// Parse parses a complete DSL program.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	return p.parseProgram()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) accept(k TokenKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return Token{}, errorf(t.Pos, "expected %s, found %s %q", k, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{Source: p.src, MiniBatch: 1, LearningRate: 0.01}
	for p.cur().Kind != TokEOF {
		switch p.cur().Kind {
		case TokModelInput, TokModelOutput, TokModel, TokGradient:
			d, err := p.parseDataDecl()
			if err != nil {
				return nil, err
			}
			prog.Decls = append(prog.Decls, d)
		case TokIterator:
			d, err := p.parseIteratorDecl()
			if err != nil {
				return nil, err
			}
			prog.Decls = append(prog.Decls, d)
		case TokAggregator:
			if err := p.parseAggregator(prog); err != nil {
				return nil, err
			}
		case TokMinibatch:
			p.next()
			tok, err := p.expect(TokNumber)
			if err != nil {
				return nil, err
			}
			v, err := strconv.Atoi(tok.Text)
			if err != nil || v <= 0 {
				return nil, errorf(tok.Pos, "mini-batch size must be a positive integer, got %q", tok.Text)
			}
			prog.MiniBatch = v
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		case TokLearnRate:
			p.next()
			if _, err := p.expect(TokAssign); err != nil {
				return nil, err
			}
			neg := p.accept(TokMinus)
			tok, err := p.expect(TokNumber)
			if err != nil {
				return nil, err
			}
			v, err := strconv.ParseFloat(tok.Text, 64)
			if err != nil {
				return nil, errorf(tok.Pos, "bad learning rate %q", tok.Text)
			}
			if neg {
				v = -v
			}
			prog.LearningRate = v
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
		case TokIdent:
			s, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			prog.Stmts = append(prog.Stmts, s)
		default:
			t := p.cur()
			return nil, errorf(t.Pos, "unexpected %s %q at top level", t.Kind, t.Text)
		}
	}
	return prog, nil
}

func (p *Parser) parseAggregator(prog *Program) error {
	p.next() // 'aggregator'
	tok, err := p.expect(TokIdent)
	if err != nil {
		// Allow "aggregator sum;" even though sum is a keyword.
		if p.cur().Kind == TokSum {
			tok = p.next()
		} else {
			return err
		}
	}
	switch tok.Text {
	case "average", "avg":
		prog.Aggregator = AggAverage
	case "sum":
		prog.Aggregator = AggSum
	default:
		return errorf(tok.Pos, "unknown aggregator %q (want average or sum)", tok.Text)
	}
	prog.HasAggregator = true
	_, err = p.expect(TokSemi)
	return err
}

func (p *Parser) parseDataDecl() (*Decl, error) {
	kindTok := p.next()
	var kind VarKind
	switch kindTok.Kind {
	case TokModelInput:
		kind = KindModelInput
	case TokModelOutput:
		kind = KindModelOutput
	case TokModel:
		kind = KindModel
	case TokGradient:
		kind = KindGradient
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &Decl{Kind: kind, Name: name.Text, Pos: kindTok.Pos}
	if p.accept(TokLBracket) {
		for {
			dim, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Dims = append(d.Dims, dim)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *Parser) parseIteratorDecl() (*Decl, error) {
	kw := p.next() // 'iterator'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBracket); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &Decl{Kind: KindIterator, Name: name.Text, Lo: lo, Hi: hi, Pos: kw.Pos}, nil
}

func (p *Parser) parseAssign() (*Assign, error) {
	name := p.next()
	a := &Assign{Name: name.Text, Pos: name.Pos}
	if p.accept(TokLBracket) {
		for {
			ix, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			a.Indices = append(a.Indices, ix)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	a.RHS = rhs
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return a, nil
}

// parseExpr parses a full expression (lowest precedence: ternary).
func (p *Parser) parseExpr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	cond, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokQuestion {
		return cond, nil
	}
	q := p.next()
	thenE, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	elseE, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: thenE, Else: elseE, Pos: q.Pos}, nil
}

var comparisonOps = map[TokenKind]BinaryOp{
	TokGT: OpGT, TokLT: OpLT, TokGE: OpGE, TokLE: OpLE, TokEQ: OpEQ, TokNE: OpNE,
}

func (p *Parser) parseComparison() (Expr, error) {
	x, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if op, ok := comparisonOps[p.cur().Kind]; ok {
		t := p.next()
		y, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, X: x, Y: y, Pos: t.Pos}, nil
	}
	return x, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	x, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokPlus:
			t := p.next()
			y, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			x = &BinaryExpr{Op: OpAdd, X: x, Y: y, Pos: t.Pos}
		case TokMinus:
			t := p.next()
			y, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			x = &BinaryExpr{Op: OpSub, X: x, Y: y, Pos: t.Pos}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokStar:
			t := p.next()
			y, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			x = &BinaryExpr{Op: OpMul, X: x, Y: y, Pos: t.Pos}
		case TokSlash:
			t := p.next()
			y, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			x = &BinaryExpr{Op: OpDiv, X: x, Y: y, Pos: t.Pos}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.cur().Kind == TokMinus {
		if err := p.enter(); err != nil {
			return nil, err
		}
		defer p.leave()
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{X: x, Pos: t.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errorf(t.Pos, "bad number %q", t.Text)
		}
		return &NumberLit{Value: v, Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokSum, TokPi:
		p.next()
		kind := ReduceSum
		if t.Kind == TokPi {
			kind = ReduceProd
		}
		if _, err := p.expect(TokLBracket); err != nil {
			return nil, err
		}
		iter, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &Reduce{Kind: kind, Iter: iter.Text, Body: body, Pos: t.Pos}, nil
	case TokIdent:
		p.next()
		// Function call?
		if p.cur().Kind == TokLParen {
			p.next()
			call := &CallExpr{Fn: t.Text, Pos: t.Pos}
			if p.cur().Kind != TokRParen {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(TokComma) {
						break
					}
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		ref := &VarRef{Name: t.Text, Pos: t.Pos}
		if p.accept(TokLBracket) {
			for {
				ix, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ref.Indices = append(ref.Indices, ix)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
		}
		return ref, nil
	}
	return nil, errorf(t.Pos, "unexpected %s %q in expression", t.Kind, t.Text)
}
