package dsl

import (
	"strings"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("model w[M]; g[i] = (c > 1) ? 0 : -y * x[i]; // comment\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []TokenKind{
		TokModel, TokIdent, TokLBracket, TokIdent, TokRBracket, TokSemi,
		TokIdent, TokLBracket, TokIdent, TokRBracket, TokAssign,
		TokLParen, TokIdent, TokGT, TokNumber, TokRParen, TokQuestion,
		TokNumber, TokColon, TokMinus, TokIdent, TokStar, TokIdent,
		TokLBracket, TokIdent, TokRBracket, TokSemi, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := map[string]string{
		"3":       "3",
		"3.5":     "3.5",
		"0.001":   "0.001",
		"1e-3":    "1e-3",
		"2.5E+10": "2.5E+10",
	}
	for src, want := range cases {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != TokNumber || toks[0].Text != want {
			t.Errorf("%q: got %s %q", src, toks[0].Kind, toks[0].Text)
		}
	}
}

func TestTokenizeComparisonOperators(t *testing.T) {
	toks, err := Tokenize(">= <= == != > < =")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokGE, TokLE, TokEQ, TokNE, TokGT, TokLT, TokAssign, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{"@", "#", "w & x", "!"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("%q: expected lex error", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestParseSVMProgram(t *testing.T) {
	prog, err := Parse(SourceSVM)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Decls) != 5 {
		t.Errorf("got %d decls, want 5", len(prog.Decls))
	}
	if len(prog.Stmts) != 3 {
		t.Errorf("got %d stmts, want 3", len(prog.Stmts))
	}
	if !prog.HasAggregator || prog.Aggregator != AggAverage {
		t.Errorf("aggregator = %v (has=%v)", prog.Aggregator, prog.HasAggregator)
	}
	if prog.MiniBatch != 10000 {
		t.Errorf("minibatch = %d, want 10000", prog.MiniBatch)
	}
	if prog.LearningRate != 0.01 {
		t.Errorf("learning rate = %g, want 0.01", prog.LearningRate)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("g = a + b * c; aggregator sum;")
	if err != nil {
		t.Fatal(err)
	}
	got := prog.Stmts[0].RHS.String()
	if got != "(a + (b * c))" {
		t.Errorf("precedence: got %s", got)
	}
}

func TestParseTernaryAndComparison(t *testing.T) {
	prog, err := Parse("g = c < 1 ? 0 - y : 0; aggregator sum;")
	if err != nil {
		t.Fatal(err)
	}
	cond, ok := prog.Stmts[0].RHS.(*CondExpr)
	if !ok {
		t.Fatalf("RHS is %T, want *CondExpr", prog.Stmts[0].RHS)
	}
	if _, ok := cond.Cond.(*BinaryExpr); !ok {
		t.Errorf("cond is %T, want comparison", cond.Cond)
	}
}

func TestParseReduction(t *testing.T) {
	prog, err := Parse("p = sum[i](w[i] * x[i]); q = pi[i](w[i]); aggregator average;")
	if err != nil {
		t.Fatal(err)
	}
	r0, ok := prog.Stmts[0].RHS.(*Reduce)
	if !ok || r0.Kind != ReduceSum || r0.Iter != "i" {
		t.Errorf("stmt 0: %v", prog.Stmts[0].RHS)
	}
	r1, ok := prog.Stmts[1].RHS.(*Reduce)
	if !ok || r1.Kind != ReduceProd {
		t.Errorf("stmt 1: %v", prog.Stmts[1].RHS)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"model w[M]",            // missing semicolon
		"g = ;",                 // empty RHS
		"iterator i[0:M;",       // missing bracket
		"g = sum(i)(x);",        // malformed reduction
		"minibatch -5;",         // negative batch
		"minibatch 0;",          // zero batch
		"aggregator median;",    // unknown aggregator
		"g = a ? b;",            // incomplete ternary
		"model_input x[M,];",    // trailing comma
		"g = (a + b;",           // unbalanced paren
		"learning_rate = 0.1",   // missing semicolon
		"w[i = 3;",              // unterminated subscript
		"unexpected_top (3+4);", // call at top level
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestAnalyzeResolvesDims(t *testing.T) {
	u, err := ParseAndAnalyze(SourceLinearRegression, map[string]int{"M": 64})
	if err != nil {
		t.Fatal(err)
	}
	w := u.Symbols["w"]
	if w == nil || w.Kind != KindModel || w.Size() != 64 {
		t.Fatalf("w = %+v", w)
	}
	it := u.Symbols["i"]
	if it.Lo != 0 || it.Hi != 64 {
		t.Errorf("iterator range [%d:%d), want [0:64)", it.Lo, it.Hi)
	}
	if u.ModelSize() != 64 || u.GradientSize() != 64 {
		t.Errorf("model=%d gradient=%d, want 64/64", u.ModelSize(), u.GradientSize())
	}
	if u.InputSize() != 65 { // x[64] + scalar y
		t.Errorf("input size = %d, want 65", u.InputSize())
	}
}

func TestAnalyzeInterimSymbols(t *testing.T) {
	u, err := ParseAndAnalyze(SourceBackprop, map[string]int{"IN": 8, "HID": 4, "OUT": 2})
	if err != nil {
		t.Fatal(err)
	}
	h := u.Symbols["h"]
	if h == nil || h.Kind != KindInterim || h.Size() != 4 {
		t.Fatalf("h = %+v", h)
	}
	if u.ModelSize() != 8*4+4*2 {
		t.Errorf("model size = %d", u.ModelSize())
	}
	g1 := u.Symbols["g1"]
	if g1.Kind != KindGradient || g1.Size() != 32 {
		t.Errorf("g1 = %+v", g1)
	}
}

func TestAnalyzeAllFamilies(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		params map[string]int
	}{
		{"linreg", SourceLinearRegression, map[string]int{"M": 16}},
		{"logreg", SourceLogisticRegression, map[string]int{"M": 16}},
		{"svm", SourceSVM, map[string]int{"M": 16}},
		{"backprop", SourceBackprop, map[string]int{"IN": 6, "HID": 4, "OUT": 3}},
		{"cf", SourceCollaborativeFiltering, map[string]int{"NU": 5, "NV": 7, "K": 3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			u, err := ParseAndAnalyze(c.src, c.params)
			if err != nil {
				t.Fatal(err)
			}
			if u.ModelSize() == 0 || u.GradientSize() == 0 {
				t.Errorf("empty model or gradient")
			}
			if u.ModelSize() != u.GradientSize() {
				t.Errorf("model size %d != gradient size %d", u.ModelSize(), u.GradientSize())
			}
		})
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		params map[string]int
	}{
		{"undefined var", "g = q + 1; aggregator sum;", nil},
		{"missing param", "model w[M]; aggregator sum;", nil},
		{"dup decl", "model w; model w; aggregator sum;", nil},
		{"assign to input", "model_input x; x = 3; aggregator sum;", nil},
		{"assign to iterator", "iterator i[0:4]; i = 3; aggregator sum;", nil},
		{"gradient unassigned", "gradient g[4]; aggregator sum;", nil},
		{"no aggregator", "g = 1;", nil},
		{"rank mismatch", "model w[4]; g = w; aggregator sum;", nil},
		{"iterator unbound", "iterator i[0:4]; model w[4]; g = w[i] + 0; gq = i; aggregator sum;", nil},
		{"empty iterator", "iterator i[4:4]; g = 1; aggregator sum;", nil},
		{"bad function", "g = softplus(3); aggregator sum;", nil},
		{"interim before assign", "g = t + 1; t = 2; aggregator sum;", nil},
		{"rebind iterator", "iterator i[0:4]; model w[4]; g = sum[i](sum[i](w[i])); aggregator sum;", nil},
		{"negative dim", "model w[0-3]; g = 1; aggregator sum;", nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseAndAnalyze(c.src, c.params); err == nil {
				t.Errorf("expected analysis error")
			}
		})
	}
}

func TestLinesOfCode(t *testing.T) {
	prog, err := Parse(SourceSVM)
	if err != nil {
		t.Fatal(err)
	}
	loc := prog.LinesOfCode()
	// Table 1 reports 22-55 LoC across the suite; the SVM program should be
	// near the bottom of that range.
	if loc < 8 || loc > 30 {
		t.Errorf("SVM LoC = %d, expected a small program", loc)
	}
}

func TestExprString(t *testing.T) {
	prog, err := Parse("g[i] = (c < 1) ? (0 - y * x[i]) : 0; aggregator sum;")
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Stmts[0].RHS.String()
	for _, want := range []string{"c < 1", "y * x[i]", "?"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestIteratorShadowingParamRejected(t *testing.T) {
	_, err := ParseAndAnalyze("model w[M]; iterator M[0:4]; g = 1; aggregator sum;",
		map[string]int{"M": 8})
	if err == nil {
		t.Error("expected error for iterator shadowing a parameter")
	}
}
