package dsl

import (
	"fmt"
	"strings"
)

// Format pretty-prints a parsed program back to canonical DSL source:
// declarations first (in original order), then statements, then the
// scale-out directives. Formatting then re-parsing yields a structurally
// identical program, which the tests check as a round-trip property.
func Format(p *Program) string {
	var b strings.Builder
	for _, d := range p.Decls {
		b.WriteString(formatDecl(d))
		b.WriteByte('\n')
	}
	if len(p.Decls) > 0 && len(p.Stmts) > 0 {
		b.WriteByte('\n')
	}
	for _, st := range p.Stmts {
		b.WriteString(formatAssign(st))
		b.WriteByte('\n')
	}
	if len(p.Stmts) > 0 {
		b.WriteByte('\n')
	}
	if p.HasAggregator {
		fmt.Fprintf(&b, "aggregator %s;\n", p.Aggregator)
	}
	fmt.Fprintf(&b, "minibatch %d;\n", p.MiniBatch)
	fmt.Fprintf(&b, "learning_rate = %g;\n", p.LearningRate)
	return b.String()
}

func formatDecl(d *Decl) string {
	if d.Kind == KindIterator {
		return fmt.Sprintf("iterator %s[%s:%s];", d.Name, formatExpr(d.Lo, 0), formatExpr(d.Hi, 0))
	}
	if len(d.Dims) == 0 {
		return fmt.Sprintf("%s %s;", d.Kind, d.Name)
	}
	dims := make([]string, len(d.Dims))
	for i, dim := range d.Dims {
		dims[i] = formatExpr(dim, 0)
	}
	return fmt.Sprintf("%s %s[%s];", d.Kind, d.Name, strings.Join(dims, ", "))
}

func formatAssign(a *Assign) string {
	lhs := a.Name
	if len(a.Indices) > 0 {
		parts := make([]string, len(a.Indices))
		for i, ix := range a.Indices {
			parts[i] = formatExpr(ix, 0)
		}
		lhs = fmt.Sprintf("%s[%s]", a.Name, strings.Join(parts, ", "))
	}
	return fmt.Sprintf("%s = %s;", lhs, formatExpr(a.RHS, 0))
}

// Operator precedence levels for minimal parenthesization.
const (
	precTernary = iota
	precCompare
	precAdd
	precMul
	precUnary
	precPrimary
)

func precOf(op BinaryOp) int {
	switch op {
	case OpAdd, OpSub:
		return precAdd
	case OpMul, OpDiv:
		return precMul
	default:
		return precCompare
	}
}

// formatExpr renders e, parenthesizing when its precedence is below the
// context's.
func formatExpr(e Expr, ctx int) string {
	switch e := e.(type) {
	case *NumberLit:
		return fmt.Sprintf("%g", e.Value)
	case *VarRef:
		if len(e.Indices) == 0 {
			return e.Name
		}
		parts := make([]string, len(e.Indices))
		for i, ix := range e.Indices {
			parts[i] = formatExpr(ix, 0)
		}
		return fmt.Sprintf("%s[%s]", e.Name, strings.Join(parts, ", "))
	case *UnaryExpr:
		s := "-" + formatExpr(e.X, precUnary)
		if ctx > precUnary {
			return "(" + s + ")"
		}
		return s
	case *BinaryExpr:
		p := precOf(e.Op)
		// Left-associative: the right child needs one level more.
		s := fmt.Sprintf("%s %s %s", formatExpr(e.X, p), e.Op, formatExpr(e.Y, p+1))
		if p < ctx {
			return "(" + s + ")"
		}
		return s
	case *CondExpr:
		s := fmt.Sprintf("%s ? %s : %s",
			formatExpr(e.Cond, precCompare), formatExpr(e.Then, precTernary), formatExpr(e.Else, precTernary))
		if ctx > precTernary {
			return "(" + s + ")"
		}
		return s
	case *Reduce:
		name := "sum"
		if e.Kind == ReduceProd {
			name = "pi"
		}
		return fmt.Sprintf("%s[%s](%s)", name, e.Iter, formatExpr(e.Body, 0))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = formatExpr(a, 0)
		}
		return fmt.Sprintf("%s(%s)", e.Fn, strings.Join(args, ", "))
	}
	return fmt.Sprintf("/* unknown %T */", e)
}
