package dsl

// This file holds the DSL source for the five algorithm families of the
// paper's benchmark suite (Table 1). Each source is parameterized by named
// dimensions supplied at analysis time, so the same program instantiates
// both benchmarks of a family (e.g. stock and texture for linear
// regression) at their respective geometries.

// SourceLinearRegression is the linear-regression training program
// (benchmarks: stock, texture). Parameter M is the feature count.
const SourceLinearRegression = `
// Linear regression: predict y = w . x, squared loss.
model_input x[M];
model_output y;
model w[M];
gradient g[M];
iterator i[0:M];

// Prediction: Sigma_i w_i * x_i
p = sum[i](w[i] * x[i]);
// Error term of the squared loss.
e = p - y;
// Partial gradient: dL/dw_i = e * x_i
g[i] = e * x[i];

aggregator average;
minibatch 10000;
learning_rate = 0.001;
`

// SourceLogisticRegression is the logistic-regression training program
// (benchmarks: tumor, cancer1). Parameter M is the feature count.
const SourceLogisticRegression = `
// Logistic regression: p = sigmoid(w . x), cross-entropy loss.
model_input x[M];
model_output y;
model w[M];
gradient g[M];
iterator i[0:M];

z = sum[i](w[i] * x[i]);
p = sigmoid(z);
e = p - y;
g[i] = e * x[i];

aggregator average;
minibatch 10000;
learning_rate = 0.01;
`

// SourceSVM is the support-vector-machine training program (benchmarks:
// face, cancer2). Parameter M is the feature count. The gradient is the
// subgradient of the hinge loss max(0, 1 - y * (w . x)).
const SourceSVM = `
// Support vector machine with hinge loss.
model_input x[M];
model_output y;
model w[M];
gradient g[M];
iterator i[0:M];

// Margin: y * (Sigma_i w_i * x_i)
s = sum[i](w[i] * x[i]);
c = s * y;
// Subgradient of the hinge loss: -y*x_i inside the margin, 0 outside.
g[i] = (c < 1) ? (0 - y * x[i]) : 0;

aggregator average;
minibatch 10000;
learning_rate = 0.01;
`

// SourceBackprop is the two-layer perceptron backpropagation program
// (benchmarks: mnist, acoustic). Parameters: IN (input features), HID
// (hidden units), OUT (output units).
const SourceBackprop = `
// Backpropagation for a fully connected IN x HID x OUT perceptron with
// sigmoid activations and squared loss.
model_input x[IN];
model_output y[OUT];
model w1[HID, IN];
model w2[OUT, HID];
gradient g1[HID, IN];
gradient g2[OUT, HID];
iterator i[0:IN];
iterator j[0:HID];
iterator k[0:OUT];

// Forward pass.
h[j] = sigmoid(sum[i](w1[j, i] * x[i]));
o[k] = sigmoid(sum[j](w2[k, j] * h[j]));

// Output-layer delta: (o - y) * o * (1 - o).
d2[k] = (o[k] - y[k]) * o[k] * (1 - o[k]);
// Output-layer weight gradient.
g2[k, j] = d2[k] * h[j];

// Backpropagated error into the hidden layer.
e[j] = sum[k](d2[k] * w2[k, j]);
d1[j] = e[j] * h[j] * (1 - h[j]);
// Hidden-layer weight gradient.
g1[j, i] = d1[j] * x[i];

aggregator average;
minibatch 10000;
learning_rate = 0.1;
`

// SourceCollaborativeFiltering is the matrix-factorization recommender
// program (benchmarks: movielens, netflix). Parameters: NU (users), NV
// (items), K (latent factor rank). Each training vector one-hot encodes a
// (user, item) pair with its rating.
const SourceCollaborativeFiltering = `
// Collaborative filtering by low-rank matrix factorization. A training
// record is a one-hot user vector, a one-hot item vector, and the rating.
model_input xu[NU];
model_input xv[NV];
model_output r;
model u[NU, K];
model v[NV, K];
gradient gu[NU, K];
gradient gv[NV, K];
iterator a[0:NU];
iterator b[0:NV];
iterator k[0:K];

// Gather the active user and item factor rows.
uf[k] = sum[a](u[a, k] * xu[a]);
vf[k] = sum[b](v[b, k] * xv[b]);

// Rating error of the factor model.
e = sum[k](uf[k] * vf[k]) - r;

// Gradients flow back only through the active rows.
gu[a, k] = e * xu[a] * vf[k];
gv[b, k] = e * xv[b] * uf[k];

aggregator average;
minibatch 10000;
learning_rate = 0.05;
`

// MustParseAndAnalyze parses and analyzes src with params, panicking on
// error. Intended for the embedded benchmark sources, which are known-good.
func MustParseAndAnalyze(src string, params map[string]int) *Unit {
	u, err := ParseAndAnalyze(src, params)
	if err != nil {
		panic(err)
	}
	return u
}

// ParseAndAnalyze parses and analyzes src with params.
func ParseAndAnalyze(src string, params map[string]int) (*Unit, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Analyze(prog, params)
}

// SourceSoftmax is a multi-class softmax (multinomial logistic) regression
// program — an algorithm the paper lists as expressible ("softmax
// functions") but does not benchmark. It exists to demonstrate the stack's
// extensibility claim: a new learning model is a new DSL program, with no
// changes to the compiler, planner, simulator, or runtime. Parameters: M
// (features), C (classes).
const SourceSoftmax = `
// Softmax regression: p_c = exp(w_c . x) / Sigma_k exp(w_k . x),
// cross-entropy loss against a one-hot label.
model_input x[M];
model_output y[C];
model w[C, M];
gradient g[C, M];
iterator i[0:M];
iterator c[0:C];

// Class scores and their exponentials.
z[c] = sum[i](w[c, i] * x[i]);
e[c] = exp(z[c]);
// Partition function.
s = sum[c](e[c]);
// Predicted class probabilities (the divide runs on the LUT unit).
p[c] = e[c] / s;
// Gradient: (p - y) outer x.
d[c] = p[c] - y[c];
g[c, i] = d[c] * x[i];

aggregator average;
minibatch 10000;
learning_rate = 0.1;
`
