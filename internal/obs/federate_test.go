package obs

import (
	"bytes"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// TestParseExpositionRoundTrip: a registry's exposition parses back into
// the same samples the snapshot reported.
func TestParseExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled("x_total", "node", "1")).Add(5)
	r.Gauge("level").Set(-2.5)
	r.Histogram("lat_seconds", []float64{0.1, 1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseExposition(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if want := r.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("parse mismatch:\ngot  %v\nwant %v", got, want)
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"noval", "name notanumber", " 3"} {
		if _, err := ParseExposition(bad); err == nil {
			t.Errorf("ParseExposition(%q) accepted garbage", bad)
		}
	}
	// Blank and comment lines are tolerated.
	got, err := ParseExposition("\n# HELP x\nx_total 1\n")
	if err != nil || len(got) != 1 || got[0].Name != "x_total" {
		t.Errorf("got %v, %v", got, err)
	}
}

// TestFederationMerge: sources merge with the local registry, updates
// replace a source's previous contribution, and the snapshot is sorted.
func TestFederationMerge(t *testing.T) {
	local := NewRegistry()
	local.Gauge(Labeled("cosmic_cluster_node_round_seconds", "node", "1")).Set(0.25)
	fed := NewFederation(local)
	fed.Update("node-1", []Sample{{Name: `a_total{node="1"}`, Value: 1}})
	fed.Update("node-2", []Sample{{Name: `a_total{node="2"}`, Value: 2}})
	fed.Update("node-1", []Sample{{Name: `a_total{node="1"}`, Value: 3}}) // replaces

	snap := fed.Snapshot()
	want := []Sample{
		{Name: `a_total{node="1"}`, Value: 3},
		{Name: `a_total{node="2"}`, Value: 2},
		{Name: `cosmic_cluster_node_round_seconds{node="1"}`, Value: 0.25},
	}
	if !reflect.DeepEqual(snap, want) {
		t.Errorf("snapshot:\ngot  %v\nwant %v", snap, want)
	}
	if got := fed.Sources(); !reflect.DeepEqual(got, []string{"node-1", "node-2"}) {
		t.Errorf("sources = %v", got)
	}
	if _, ok := fed.Age("node-1"); !ok {
		t.Error("node-1 has no age")
	}

	srv := httptest.NewServer(fed.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), `a_total{node="2"} 2`) {
		t.Errorf("handler body missing federated series:\n%s", body.String())
	}
}

// TestStragglerDetector: a node flags only after M consecutive rounds over
// K×p50, and recovers when it drops back under the bar.
func TestStragglerDetector(t *testing.T) {
	d := NewStragglerDetector(2, 3)
	healthy := map[string]float64{"0": 0.10, "1": 0.11, "2": 0.09, "3": 0.10}
	slow := map[string]float64{"0": 0.10, "1": 0.11, "2": 0.09, "3": 0.55}

	if got := d.Observe(healthy); len(got) != 0 {
		t.Fatalf("flagged %v on healthy cluster", got)
	}
	for i := 0; i < 2; i++ {
		if got := d.Observe(slow); len(got) != 0 {
			t.Fatalf("flagged %v after only %d slow rounds (m=3)", got, i+1)
		}
	}
	if got := d.Observe(slow); len(got) != 1 || got[0] != "3" {
		t.Fatalf("flagged %v after 3 slow rounds, want [3]", got)
	}
	if d.Streak("3") != 3 {
		t.Errorf("streak = %d", d.Streak("3"))
	}
	// One healthy round clears both streak and flag.
	if got := d.Observe(healthy); len(got) != 0 {
		t.Errorf("still flagged %v after recovery", got)
	}
	if d.Streak("3") != 0 {
		t.Errorf("streak after recovery = %d", d.Streak("3"))
	}
}

// TestHealthHandler: /healthz is 503 until SetReady, then merges static
// identity with the live probe.
func TestHealthHandler(t *testing.T) {
	h := NewHealth()
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	get := func() (int, string) {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		body.ReadFrom(resp.Body) //nolint:errcheck
		return resp.StatusCode, body.String()
	}
	if code, body := get(); code != 503 || !strings.Contains(body, "starting") {
		t.Errorf("unconfigured healthz = %d %q, want 503 starting", code, body)
	}
	seq := uint32(0)
	h.SetReady(map[string]any{"role": "delta", "group": 1},
		func() map[string]any { return map[string]any{"last_seq": seq} })
	seq = 12
	code, body := get()
	if code != 200 {
		t.Fatalf("configured healthz = %d", code)
	}
	for _, want := range []string{`"role":"delta"`, `"group":1`, `"last_seq":12`, `"status":"ok"`} {
		if !strings.Contains(body, want) {
			t.Errorf("healthz body missing %s:\n%s", want, body)
		}
	}
	// Nil receiver stays a no-op.
	var nh *Health
	nh.SetReady(nil, nil)
	if ready, _ := nh.Snapshot(); ready {
		t.Error("nil health reported ready")
	}
}

// TestStragglerDetectorUniformSlowdown: if every node slows down equally,
// nobody is a straggler (the bar is relative to the cluster median).
func TestStragglerDetectorUniformSlowdown(t *testing.T) {
	d := NewStragglerDetector(2, 1)
	all := map[string]float64{"0": 5, "1": 5.1, "2": 4.9}
	for i := 0; i < 5; i++ {
		if got := d.Observe(all); len(got) != 0 {
			t.Fatalf("flagged %v under uniform slowdown", got)
		}
	}
}
