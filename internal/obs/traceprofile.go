package obs

import (
	"sort"

	"repro/internal/obs/profile"
)

// TraceToProfile converts recorded trace spans into a pprof profile with
// two sample types: "wall" (nanoseconds, host-domain spans) and "cycles"
// (simulated cycles, accelerator-domain spans). Each complete span becomes
// a sample whose stack is its enclosing-span chain (leaf first, category as
// the root frame) and whose value is its *self* time — its duration minus
// the duration of the spans it directly encloses — so stacking round →
// broadcast → send spans does not double-count. Spans are nested per trace
// row (pid, tid) by interval containment; a span partially overlapping its
// predecessor is treated as a sibling. Named threads contribute a "node"
// label, and every sample carries a "domain" label ("host" or "accel"),
// so merged cluster profiles stay separable with pprof's -tagfocus.
func TraceToProfile(events []Event) *profile.Raw {
	p := profile.New(
		profile.ValueType{Type: "wall", Unit: "nanoseconds"},
		profile.ValueType{Type: "cycles", Unit: "cycles"},
	)
	p.SetDefaultSampleType("wall")
	p.SetPeriod(1, profile.ValueType{Type: "cycles", Unit: "cycles"})

	type row struct{ pid, tid int }
	names := map[row]string{}
	groups := map[row][]Event{}
	for _, e := range events {
		r := row{e.PID, e.TID}
		if e.Phase == "M" && e.Name == "thread_name" {
			if n, ok := e.Args["name"].(string); ok {
				names[r] = n
			}
			continue
		}
		if e.Phase != "X" {
			continue
		}
		groups[r] = append(groups[r], e)
	}
	rows := make([]row, 0, len(groups))
	for r := range groups {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].pid != rows[j].pid {
			return rows[i].pid < rows[j].pid
		}
		return rows[i].tid < rows[j].tid
	})

	for _, r := range rows {
		spans := groups[r]
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].TS != spans[j].TS {
				return spans[i].TS < spans[j].TS
			}
			return spans[i].Dur > spans[j].Dur // widest first: parents open before children
		})

		var labels []profile.Label
		if r.pid == PIDAccel {
			labels = append(labels, profile.Label{Key: "domain", Str: "accel"})
		} else {
			labels = append(labels, profile.Label{Key: "domain", Str: "host"})
		}
		if n := names[r]; n != "" {
			labels = append(labels, profile.Label{Key: "node", Str: n})
		}

		type open struct {
			e        Event
			end      int64
			childDur int64
		}
		var stack []open
		emit := func() {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			self := top.e.Dur - top.childDur
			if self < 0 {
				self = 0
			}
			frames := make([]string, 0, len(stack)+2)
			frames = append(frames, top.e.Name)
			for i := len(stack) - 1; i >= 0; i-- {
				frames = append(frames, stack[i].e.Name)
			}
			if top.e.Cat != "" {
				frames = append(frames, top.e.Cat)
			}
			if r.pid == PIDAccel {
				p.Add([]int64{0, self}, frames, labels...)
			} else {
				p.Add([]int64{self * 1000, 0}, frames, labels...)
			}
			if len(stack) > 0 {
				stack[len(stack)-1].childDur += top.e.Dur
			}
		}
		for _, e := range spans {
			for len(stack) > 0 && e.TS+e.Dur > stack[len(stack)-1].end {
				emit()
			}
			stack = append(stack, open{e: e, end: e.TS + e.Dur})
		}
		for len(stack) > 0 {
			emit()
		}
	}
	return p.Raw()
}
