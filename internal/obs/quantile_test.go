package obs

import (
	"math"
	"sort"
	"testing"
)

func TestQuantileKnownDistributions(t *testing.T) {
	// A uniform distribution over cumulative buckets: 25 observations in
	// each of (0,1], (1,2], (2,3], (3,4].
	uniform := []Bucket{
		{Le: 1, Count: 25}, {Le: 2, Count: 50}, {Le: 3, Count: 75}, {Le: 4, Count: 100},
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.1, 1}, {0.25, 1}, {0.26, 2}, {0.5, 2}, {0.75, 3}, {0.76, 4}, {1, 4},
	}
	for _, c := range cases {
		if got := Quantile(uniform, c.q); got != c.want {
			t.Errorf("uniform q=%v: got %v, want %v", c.q, got, c.want)
		}
	}

	// A heavily skewed distribution: 990 fast observations, 10 slow ones.
	skewed := []Bucket{
		{Le: 0.01, Count: 990}, {Le: 1, Count: 995}, {Le: math.Inf(1), Count: 1000},
	}
	if got := Quantile(skewed, 0.5); got != 0.01 {
		t.Errorf("skewed p50: got %v, want 0.01", got)
	}
	if got := Quantile(skewed, 0.99); got != 0.01 {
		t.Errorf("skewed p99: got %v, want 0.01", got)
	}
	if got := Quantile(skewed, 0.995); got != 1.0 {
		t.Errorf("skewed p99.5: got %v, want 1", got)
	}
	if got := Quantile(skewed, 0.999); !math.IsInf(got, 1) {
		t.Errorf("skewed p99.9: got %v, want +Inf", got)
	}
}

func TestQuantileDegenerateInputs(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("nil buckets: got %v", got)
	}
	empty := []Bucket{{Le: 1, Count: 0}, {Le: math.Inf(1), Count: 0}}
	if got := Quantile(empty, 0.5); got != 0 {
		t.Errorf("zero-count buckets: got %v", got)
	}
	one := []Bucket{{Le: 7, Count: 1}}
	for _, q := range []float64{0, 0.5, 1} {
		if got := Quantile(one, q); got != 7 {
			t.Errorf("single observation q=%v: got %v, want 7", q, got)
		}
	}
}

func TestQuantileOfSortedValues(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.1, 1}, {0.5, 5}, {0.9, 9}, {0.91, 10}, {1, 10},
	}
	for _, c := range cases {
		if got := QuantileOf(vals, c.q); got != c.want {
			t.Errorf("q=%v: got %v, want %v", c.q, got, c.want)
		}
	}
	if got := QuantileOf(nil, 0.5); got != 0 {
		t.Errorf("empty values: got %v", got)
	}
}

// TestQuantileMatchesHistogram pins the satellite contract: the shared
// helper, fed a Histogram's cumulative buckets, answers exactly what the
// Histogram's own Quantile method answers — the straggler detector and the
// /query pNN path reduce through one implementation.
func TestQuantileMatchesHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{0.1, 0.5, 1, 5})
	obsv := []float64{0.05, 0.05, 0.3, 0.3, 0.3, 0.9, 2, 2, 2, 10}
	for _, v := range obsv {
		h.Observe(v)
	}
	sort.Float64s(obsv)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 1} {
		fromHist := h.Quantile(q)
		// Rebuild the cumulative buckets the exposition carries.
		bounds := []float64{0.1, 0.5, 1, 5, math.Inf(1)}
		buckets := make([]Bucket, len(bounds))
		for i, le := range bounds {
			var cum float64
			for _, v := range obsv {
				if v <= le {
					cum++
				}
			}
			buckets[i] = Bucket{Le: le, Count: cum}
		}
		if got := Quantile(buckets, q); got != fromHist {
			t.Errorf("q=%v: helper %v, histogram %v", q, got, fromHist)
		}
	}
}
