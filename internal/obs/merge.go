package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// This file is the cluster half of the tracer: it merges per-node Chrome
// trace files (each on its own wall clock) into one Perfetto timeline. Each
// input's cosmic_clock_sync metadata anchors its relative timestamps to the
// cluster reference clock (the director's), and matching flow_out/flow_in
// span arguments — the wire trace context of cosmicnet.Frame — become
// Chrome flow events (ph "s"/"f") drawing an arrow from every frame's send
// span to its receive span.

// Span-argument keys the runtime stamps and the merger consumes.
const (
	// ArgTraceID tags a span with the round's trace ID (hex string).
	ArgTraceID = "trace_id"
	// ArgFlowOut tags a send span with the frame's span ID (hex string).
	ArgFlowOut = "flow_out"
	// ArgFlowIn tags a receive span with the originating span ID.
	ArgFlowIn = "flow_in"
)

// IDString renders a trace or span ID the way span arguments carry it.
func IDString(id uint64) string { return "0x" + strconv.FormatUint(id, 16) }

// MergeStats summarizes a merge.
type MergeStats struct {
	// Inputs is the number of trace files merged.
	Inputs int
	// Events is the merged event count (flows included, metadata excluded).
	Events int
	// Flows is the number of sender→receiver arrows drawn.
	Flows int
	// UnmatchedFlows counts receive spans whose sender span was not in any
	// input (e.g. a node's trace file is missing from the merge).
	UnmatchedFlows int
}

// MergeChromeTraces merges per-node Chrome trace JSON documents into one.
// Host-domain timestamps are shifted onto the earliest input's clock using
// each file's cosmic_clock_sync anchor (unix_us minus skew_us);
// accelerator-domain (simulated-cycle) events are never shifted. Metadata
// events are deduplicated. The result is deterministic for a given set of
// inputs.
func MergeChromeTraces(inputs [][]byte) ([]byte, MergeStats, error) {
	stats := MergeStats{Inputs: len(inputs)}
	if len(inputs) == 0 {
		return nil, stats, fmt.Errorf("obs: no trace files to merge")
	}
	type parsed struct {
		doc    chromeTrace
		anchor int64 // trace start in reference-clock unix micros
	}
	docs := make([]parsed, 0, len(inputs))
	minAnchor := int64(0)
	for i, raw := range inputs {
		var doc chromeTrace
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, stats, fmt.Errorf("obs: trace file %d: %v", i, err)
		}
		anchor, err := clockAnchor(doc)
		if err != nil {
			return nil, stats, fmt.Errorf("obs: trace file %d: %v", i, err)
		}
		if len(docs) == 0 || anchor < minAnchor {
			minAnchor = anchor
		}
		docs = append(docs, parsed{doc: doc, anchor: anchor})
	}

	out := chromeTrace{DisplayTimeUnit: "ms"}
	seenMeta := map[string]bool{}
	var spans []Event
	for _, p := range docs {
		offset := p.anchor - minAnchor
		for _, e := range p.doc.TraceEvents {
			if e.Phase == "M" {
				if e.Name == ClockSyncEventName {
					continue // replaced by one merged anchor below
				}
				key := fmt.Sprintf("%s/%d/%d/%v", e.Name, e.PID, e.TID, e.Args["name"])
				if seenMeta[key] {
					continue
				}
				seenMeta[key] = true
				out.TraceEvents = append(out.TraceEvents, e)
				continue
			}
			if e.PID == PIDHost {
				e.TS += offset
			}
			spans = append(spans, e)
		}
	}
	out.TraceEvents = append(out.TraceEvents, Event{
		Name: ClockSyncEventName, Phase: "M", PID: PIDHost,
		Args: map[string]any{"unix_us": minAnchor, "skew_us": int64(0)},
	})

	flows, unmatched := drawFlows(spans)
	stats.Flows = len(flows) / 2
	stats.UnmatchedFlows = unmatched
	spans = append(spans, flows...)
	sortEvents(spans)
	out.TraceEvents = append(out.TraceEvents, spans...)
	stats.Events = len(spans)

	blob, err := json.Marshal(out)
	if err != nil {
		return nil, stats, err
	}
	return append(blob, '\n'), stats, nil
}

// clockAnchor extracts a document's reference-clock start time.
func clockAnchor(doc chromeTrace) (int64, error) {
	for _, e := range doc.TraceEvents {
		if e.Phase == "M" && e.Name == ClockSyncEventName {
			unix, ok1 := argInt64(e.Args, "unix_us")
			skew, ok2 := argInt64(e.Args, "skew_us")
			if !ok1 || !ok2 {
				return 0, fmt.Errorf("malformed %s event args %v", ClockSyncEventName, e.Args)
			}
			return unix - skew, nil
		}
	}
	return 0, fmt.Errorf("no %s event (trace written by an older build?)", ClockSyncEventName)
}

// argInt64 reads a numeric argument (JSON decodes numbers as float64).
func argInt64(args map[string]any, key string) (int64, bool) {
	switch v := args[key].(type) {
	case float64:
		return int64(v), true
	case int64:
		return v, true
	case int:
		return int64(v), true
	}
	return 0, false
}

// drawFlows matches receive spans (ArgFlowIn) to their send spans
// (ArgFlowOut) and returns the Chrome flow-event pairs: an "s" anchored at
// the send span's end and an "f" (bp "e") at the receive span's start. One
// send span may fan out to many receivers (a broadcast); each arrow gets
// its own flow ID. It also reports the count of unmatched receive spans.
func drawFlows(spans []Event) (flows []Event, unmatched int) {
	senders := map[string]Event{}
	for _, e := range spans {
		if e.Phase != "X" || e.Args == nil {
			continue
		}
		if id, ok := e.Args[ArgFlowOut].(string); ok {
			if _, dup := senders[id]; !dup {
				senders[id] = e
			}
		}
	}
	// Receivers in deterministic order so flow IDs are stable.
	var recvs []Event
	for _, e := range spans {
		if e.Phase != "X" || e.Args == nil {
			continue
		}
		if _, ok := e.Args[ArgFlowIn].(string); ok {
			recvs = append(recvs, e)
		}
	}
	sortEvents(recvs)
	next := 1
	for _, r := range recvs {
		id := r.Args[ArgFlowIn].(string)
		s, ok := senders[id]
		if !ok {
			unmatched++
			continue
		}
		flowID := strconv.Itoa(next)
		next++
		flows = append(flows,
			Event{Name: "frame", Cat: "cosmicnet", Phase: "s", ID: flowID,
				TS: s.TS + s.Dur, PID: s.PID, TID: s.TID},
			Event{Name: "frame", Cat: "cosmicnet", Phase: "f", BP: "e", ID: flowID,
				TS: r.TS, PID: r.PID, TID: r.TID})
	}
	return flows, unmatched
}

// sortEvents orders events deterministically: by timestamp, then pid, tid,
// phase, and name.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		return a.Name < b.Name
	})
}
