package obs

import (
	"runtime"
	"time"
)

// EnableProcessMetrics adds the default process-health series to the
// registry, refreshed on every scrape via the Snapshot collector hook:
//
//	cosmic_go_goroutines               live goroutine count
//	cosmic_go_heap_bytes               heap in use (MemStats.HeapAlloc)
//	cosmic_go_gc_pause_seconds_total   cumulative stop-the-world pause time
//	cosmic_uptime_seconds              seconds since this call
//
// Observers created with New enable these by default; bare registries
// (tests, embedding) stay empty unless opted in. runtime.ReadMemStats
// costs a brief stop-the-world, which is why collection happens per scrape
// rather than continuously.
func EnableProcessMetrics(r *Registry) {
	if r == nil {
		return
	}
	start := time.Now()
	goroutines := r.Gauge("cosmic_go_goroutines")
	heap := r.Gauge("cosmic_go_heap_bytes")
	gcPause := r.Gauge("cosmic_go_gc_pause_seconds_total")
	uptime := r.Gauge("cosmic_uptime_seconds")
	r.SetCollector(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heap.Set(float64(ms.HeapAlloc))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		uptime.Set(time.Since(start).Seconds())
	})
}
