package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// FlightDir is the direction of a recorded wire event.
type FlightDir uint8

// Directions.
const (
	FlightSend FlightDir = iota
	FlightRecv
	// FlightMark records a runtime milestone that is not a frame (round
	// start, timeout, failure); Type carries the milestone name.
	FlightMark
)

var flightDirNames = [...]string{"send", "recv", "mark"}

// String names the direction.
func (d FlightDir) String() string {
	if int(d) < len(flightDirNames) {
		return flightDirNames[d]
	}
	return fmt.Sprintf("FlightDir(%d)", uint8(d))
}

// FlightEvent is one entry of the flight recorder: a wire or runtime event
// compressed to a fixed-size record so recording never allocates.
type FlightEvent struct {
	// UnixNanos is the event's wall-clock timestamp.
	UnixNanos int64
	Dir       FlightDir
	// Type names the frame type ("model", "partial", ...) or, for
	// FlightMark, the milestone ("round-timeout", "node-failed"). Callers
	// pass string constants, so storing the header is alloc-free.
	Type string
	// Peer is the other node's ID (0 for marks and unknown peers).
	Peer uint32
	// Seq is the mini-batch round the event belongs to.
	Seq uint32
	// Bytes is the frame's payload size in bytes (0 for marks).
	Bytes int
}

// FlightRecorder is a bounded in-memory ring of the last N wire/runtime
// events on one node — the forensic record a dead or straggling node leaves
// behind. Recording is alloc-free and safe for concurrent use; the ring
// overwrites its oldest entry when full.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []FlightEvent
	next  int // next write position
	count int // total events ever recorded
}

// NewFlightRecorder creates a recorder keeping the last capacity events.
// A nil recorder (capacity ≤ 0 is clamped to 1; nil pointer from a disabled
// path) is a no-op.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 1
	}
	return &FlightRecorder{ring: make([]FlightEvent, capacity)}
}

// Record appends one event, stamping it with the current time if the event
// carries none. Nil-safe.
func (fr *FlightRecorder) Record(ev FlightEvent) {
	if fr == nil {
		return
	}
	if ev.UnixNanos == 0 {
		ev.UnixNanos = time.Now().UnixNano()
	}
	fr.mu.Lock()
	fr.ring[fr.next] = ev
	fr.next = (fr.next + 1) % len(fr.ring)
	fr.count++
	fr.mu.Unlock()
}

// Len returns how many events the ring currently holds.
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.count < len(fr.ring) {
		return fr.count
	}
	return len(fr.ring)
}

// Total returns how many events were ever recorded (including overwritten
// ones).
func (fr *FlightRecorder) Total() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.count
}

// Snapshot returns the retained events oldest-first.
func (fr *FlightRecorder) Snapshot() []FlightEvent {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	n := fr.count
	if n > len(fr.ring) {
		n = len(fr.ring)
	}
	out := make([]FlightEvent, 0, n)
	start := 0
	if fr.count >= len(fr.ring) {
		start = fr.next
	}
	for i := 0; i < n; i++ {
		out = append(out, fr.ring[(start+i)%len(fr.ring)])
	}
	return out
}

// LastSeqFrom returns the highest Seq among retained receive events from the
// given peer, and whether any were seen — the "last sign of life" a timeout
// diagnostic reports for a missing member.
func (fr *FlightRecorder) LastSeqFrom(peer uint32) (uint32, bool) {
	if fr == nil {
		return 0, false
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	var last uint32
	seen := false
	n := fr.count
	if n > len(fr.ring) {
		n = len(fr.ring)
	}
	for i := 0; i < n; i++ {
		ev := &fr.ring[i]
		if ev.Dir == FlightRecv && ev.Peer == peer {
			if !seen || ev.Seq > last {
				last = ev.Seq
			}
			seen = true
		}
	}
	return last, seen
}

// LastRecvSeqs returns the highest retained receive Seq per peer — the
// one-line "last sign of life" table a round-timeout error embeds.
func (fr *FlightRecorder) LastRecvSeqs() map[uint32]uint32 {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	n := fr.count
	if n > len(fr.ring) {
		n = len(fr.ring)
	}
	var out map[uint32]uint32
	for i := 0; i < n; i++ {
		ev := &fr.ring[i]
		if ev.Dir != FlightRecv {
			continue
		}
		if out == nil {
			out = make(map[uint32]uint32)
		}
		if last, ok := out[ev.Peer]; !ok || ev.Seq > last {
			out[ev.Peer] = ev.Seq
		}
	}
	return out
}

// Dump writes the retained events as one text line each:
//
//	2026-08-06T17:01:02.000000003Z recv partial peer=3 seq=12 bytes=8192
//
// oldest first, and reports the dumped event count.
func (fr *FlightRecorder) Dump(w io.Writer) (int, error) {
	evs := fr.Snapshot()
	for _, ev := range evs {
		ts := time.Unix(0, ev.UnixNanos).UTC().Format(time.RFC3339Nano)
		if _, err := fmt.Fprintf(w, "%s %s %s peer=%d seq=%d bytes=%d\n",
			ts, ev.Dir, ev.Type, ev.Peer, ev.Seq, ev.Bytes); err != nil {
			return 0, err
		}
	}
	return len(evs), nil
}
