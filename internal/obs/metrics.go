// Package obs is CoSMIC's zero-dependency observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms — all atomic and
// race-clean) with a deterministic snapshot API and Prometheus text
// exposition, and a span tracer that records the host stack in wall-clock
// microseconds and the accelerator simulator in simulated cycles, exporting
// Chrome trace-event JSON viewable in Perfetto (ui.perfetto.dev).
//
// Every instrument is a nil-safe no-op when disabled: methods on nil
// *Counter, *Gauge, *Histogram, *Tracer, *Registry and *Observer return
// immediately without allocating, so hot paths carry instrumentation
// unconditionally and pay nothing when no observer is attached
// (TestDisabledInstrumentsDoNotAllocate pins this to zero allocations).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Negative deltas are a programming error but are not checked on
// the hot path.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram: bucket i counts
// observations ≤ bounds[i], with an implicit +Inf bucket at the end.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	sumBits atomic.Uint64
	count   atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) from the
// bucket counts: the lowest bucket bound with at least q of the mass at or
// below it, +Inf if the mass lies beyond the last bound. It answers through
// the shared Quantile helper, like every other quantile in the stack.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	buckets := make([]Bucket, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		buckets[i] = Bucket{Le: le, Count: float64(cum)}
	}
	return Quantile(buckets, q)
}

// Registry holds named instruments. Registration takes a lock; the returned
// instruments are lock-free, so callers resolve instruments once (at setup)
// and update them on hot paths.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// collect, when set, runs at the start of every Snapshot — outside mu,
	// so it may resolve instruments. EnableProcessMetrics uses it to refresh
	// runtime gauges per scrape instead of per update.
	collect atomic.Pointer[func()]
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, registering it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with the given
// strictly increasing bucket upper bounds on first use. Later calls reuse
// the first registration's buckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	mustValidName(name)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing at %d", name, i))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Sample is one exposition line: a fully labeled series name and its value.
type Sample struct {
	Name  string
	Value float64
}

// Snapshot returns every series in deterministic order: metric names sorted
// lexically, histograms expanded into cumulative _bucket/_sum/_count series
// with buckets in ascending le order. Two registries holding the same state
// snapshot identically.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	if fn := r.collect.Load(); fn != nil {
		(*fn)()
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []Sample
	for _, name := range names {
		if c, ok := r.counters[name]; ok {
			out = append(out, Sample{Name: name, Value: float64(c.Value())})
		}
		if g, ok := r.gauges[name]; ok {
			out = append(out, Sample{Name: name, Value: g.Value()})
		}
		if h, ok := r.hists[name]; ok {
			out = append(out, histSamples(name, h)...)
		}
	}
	r.mu.Unlock()
	return out
}

// histSamples expands one histogram into its exposition series.
func histSamples(name string, h *Histogram) []Sample {
	base, labels := splitName(name)
	out := make([]Sample, 0, len(h.bounds)+3)
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := strconv.FormatFloat(bound, 'g', -1, 64)
		out = append(out, Sample{Name: seriesName(base+"_bucket", labels, `le="`+le+`"`), Value: float64(cum)})
	}
	cum += h.counts[len(h.bounds)].Load()
	out = append(out, Sample{Name: seriesName(base+"_bucket", labels, `le="+Inf"`), Value: float64(cum)})
	out = append(out, Sample{Name: seriesName(base+"_sum", labels, ""), Value: h.Sum()})
	out = append(out, Sample{Name: seriesName(base+"_count", labels, ""), Value: float64(h.count.Load())})
	return out
}

// splitName separates a series name into its metric name and the raw label
// body (without braces), which is empty for unlabeled series.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// seriesName reassembles a series name from a metric name, existing labels,
// and an optional extra label.
func seriesName(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	}
	return base + "{" + labels + "," + extra + "}"
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (sample lines only, no comment lines): every line matches
// ^[a-z_]+(\{[^}]*\})? [0-9.eE+-]+$.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, strconv.FormatFloat(s.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// SetCollector registers fn to run at the start of every Snapshot (and so
// every /metrics scrape), before the registry lock is taken — fn may
// resolve instruments. One collector per registry; nil clears it.
func (r *Registry) SetCollector(fn func()) {
	if r == nil {
		return
	}
	if fn == nil {
		r.collect.Store(nil)
		return
	}
	r.collect.Store(&fn)
}

// Labeled builds a labeled series name from alternating key, value pairs:
// Labeled("x_total", "pe", "3") = `x_total{pe="3"}`. Keys must be given in
// the order the caller wants them emitted; the whole string is the registry
// key, so the same labels in a different order are a different series.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 || len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: Labeled(%q) needs non-empty key/value pairs, got %d strings", name, len(kv)))
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// mustValidName panics unless the series name will satisfy the exposition
// grammar ^[a-z_]+(\{[^}]*\})?$ — catching bad names at registration, where
// the stack trace points at the misspelling, instead of corrupting /metrics.
func mustValidName(name string) {
	base, rest := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, rest = name[:i], name[i:]
	}
	if base == "" {
		panic(fmt.Sprintf("obs: empty metric name %q", name))
	}
	for _, c := range base {
		if (c < 'a' || c > 'z') && c != '_' {
			panic(fmt.Sprintf("obs: metric name %q: %q outside [a-z_] (put digits in labels)", name, c))
		}
	}
	if rest != "" {
		body := strings.TrimPrefix(rest, "{")
		if !strings.HasSuffix(body, "}") || strings.ContainsAny(strings.TrimSuffix(body, "}"), "{}") {
			panic(fmt.Sprintf("obs: malformed label block in %q", name))
		}
	}
}
