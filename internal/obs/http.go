package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text exposition format — the
// body GET /metrics returns. A nil registry serves an empty exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // best-effort over a dying socket
	})
}

// NewHTTPMux builds the live-telemetry mux a long-running process exposes:
// /metrics from the registry plus the net/http/pprof profiling endpoints
// under /debug/pprof/.
func NewHTTPMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
