package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler serves the registry in Prometheus text exposition format — the
// body GET /metrics returns. A nil registry serves an empty exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // best-effort over a dying socket
	})
}

// NewHTTPMux builds the live-telemetry mux a long-running process exposes:
// /metrics from the registry plus the net/http/pprof profiling endpoints
// under /debug/pprof/.
func NewHTTPMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewNodeMux is NewHTTPMux plus the node's /healthz endpoint.
func NewNodeMux(r *Registry, h *Health) *http.ServeMux {
	mux := NewHTTPMux(r)
	mux.Handle("/healthz", h.Handler())
	return mux
}

// Health is a node's /healthz state: 503 with {"status":"starting"} until
// the Director configures the node, then 200 with the node's static
// identity (role, group) merged with a live probe (last-round seq, ring
// depth) sampled per request. All methods are nil-safe.
type Health struct {
	mu     sync.Mutex
	ready  bool
	static map[string]any
	probe  func() map[string]any
}

// NewHealth creates an unconfigured (not-ready) health state.
func NewHealth() *Health { return &Health{} }

// SetReady marks the node configured: static holds identity fields, probe
// (optional) supplies live fields per request.
func (h *Health) SetReady(static map[string]any, probe func() map[string]any) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ready = true
	h.static = static
	h.probe = probe
	h.mu.Unlock()
}

// Snapshot returns readiness and the merged health document.
func (h *Health) Snapshot() (bool, map[string]any) {
	if h == nil {
		return false, nil
	}
	h.mu.Lock()
	ready, probe := h.ready, h.probe
	doc := map[string]any{}
	for k, v := range h.static {
		doc[k] = v
	}
	h.mu.Unlock()
	if !ready {
		return false, nil
	}
	if probe != nil {
		for k, v := range probe() {
			doc[k] = v
		}
	}
	return true, doc
}

// Handler serves /healthz: 503 until SetReady, then the JSON document.
func (h *Health) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		ready, doc := h.Snapshot()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"starting"}`)
			return
		}
		doc["status"] = "ok"
		blob, err := json.Marshal(doc)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(blob, '\n')) //nolint:errcheck // best-effort
	})
}
