package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sync"

	"repro/internal/obs/profile"
)

// Handler serves the registry in Prometheus text exposition format — the
// body GET /metrics returns. A nil registry serves an empty exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // best-effort over a dying socket
	})
}

// NewHTTPMux builds the live-telemetry mux a long-running process exposes:
// /metrics from the registry plus the net/http/pprof profiling endpoints
// under /debug/pprof/.
func NewHTTPMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewNodeMux is NewHTTPMux plus the node's /healthz endpoint.
func NewNodeMux(r *Registry, h *Health) *http.ServeMux {
	mux := NewHTTPMux(r)
	mux.Handle("/healthz", h.Handler())
	return mux
}

// CycleProfilePath is the endpoint cosmic-prof scrapes for simulated-cycle
// profiles, next to Go's own /debug/pprof/profile for wall-clock CPU.
const CycleProfilePath = "/debug/cosmic/cycles"

// ProfileSource serves cycle profiles over HTTP. The provider is installed
// once the simulator exists (a node builds its engine lazily on first
// configuration), so the handler answers 503 until then. All methods are
// nil-safe.
type ProfileSource struct {
	mu sync.Mutex
	fn func() (*profile.Raw, error)
}

// NewProfileSource creates an empty (503-serving) source.
func NewProfileSource() *ProfileSource { return &ProfileSource{} }

// Set installs the profile provider.
func (s *ProfileSource) Set(fn func() (*profile.Raw, error)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
}

// Handler serves the provider's current profile as .pb.gz: 503 before Set,
// 500 when the provider fails (e.g. no batches simulated yet).
func (s *ProfileSource) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var fn func() (*profile.Raw, error)
		if s != nil {
			s.mu.Lock()
			fn = s.fn
			s.mu.Unlock()
		}
		if fn == nil {
			http.Error(w, "cycle profiling not configured", http.StatusServiceUnavailable)
			return
		}
		raw, err := fn()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="cycles.pb.gz"`)
		raw.Write(w) //nolint:errcheck // best-effort over a dying socket
	})
}

// Health is a node's /healthz state: 503 with {"status":"starting"} until
// the Director configures the node, then 200 with the node's static
// identity (role, group) merged with a live probe (last-round seq, ring
// depth) sampled per request. All methods are nil-safe.
type Health struct {
	mu     sync.Mutex
	ready  bool
	static map[string]any
	probe  func() map[string]any
}

// NewHealth creates an unconfigured (not-ready) health state.
func NewHealth() *Health { return &Health{} }

// SetReady marks the node configured: static holds identity fields, probe
// (optional) supplies live fields per request.
func (h *Health) SetReady(static map[string]any, probe func() map[string]any) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.ready = true
	h.static = static
	h.probe = probe
	h.mu.Unlock()
}

// Snapshot returns readiness and the merged health document, which always
// carries the binary's build identity under "build".
func (h *Health) Snapshot() (bool, map[string]any) {
	if h == nil {
		return false, nil
	}
	h.mu.Lock()
	ready, probe := h.ready, h.probe
	doc := map[string]any{}
	for k, v := range h.static {
		doc[k] = v
	}
	h.mu.Unlock()
	if !ready {
		return false, nil
	}
	doc["build"] = BuildInfo()
	if probe != nil {
		for k, v := range probe() {
			doc[k] = v
		}
	}
	return true, doc
}

var (
	buildInfoOnce sync.Once
	buildInfoDoc  map[string]string
)

// BuildInfo returns the binary's build identity from the embedded
// runtime/debug build information: Go toolchain version, main module path
// and version, and — when built from a checkout — the VCS revision, commit
// time, and dirty flag. Computed once; the returned map must not be
// mutated.
func BuildInfo() map[string]string {
	buildInfoOnce.Do(func() {
		buildInfoDoc = map[string]string{}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfoDoc["go"] = bi.GoVersion
		buildInfoDoc["module"] = bi.Main.Path
		if bi.Main.Version != "" {
			buildInfoDoc["version"] = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfoDoc["revision"] = s.Value
			case "vcs.time":
				buildInfoDoc["vcs_time"] = s.Value
			case "vcs.modified":
				buildInfoDoc["dirty"] = s.Value
			}
		}
	})
	return buildInfoDoc
}

// Handler serves /healthz: 503 until SetReady, then the JSON document.
func (h *Health) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		ready, doc := h.Snapshot()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"starting"}`)
			return
		}
		doc["status"] = "ok"
		blob, err := json.Marshal(doc)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(blob, '\n')) //nolint:errcheck // best-effort
	})
}
