package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ParseExposition parses Prometheus text exposition (as WritePrometheus
// emits it: sample lines only) back into samples. Comment and blank lines
// are skipped; a malformed sample line is an error.
func ParseExposition(text string) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("obs: malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad value in %q: %v", line, err)
		}
		out = append(out, Sample{Name: line[:sp], Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Federation merges metric snapshots from many sources (the director's own
// registry plus every scraped node) into one cluster-level exposition. Each
// source's samples replace that source's previous contribution atomically,
// so a node that stops reporting keeps its last-known values (stamped with
// a staleness age) instead of flapping in and out of the exposition.
type Federation struct {
	local *Registry

	mu      sync.Mutex
	sources map[string]*federatedSource
}

type federatedSource struct {
	samples []Sample
	updated time.Time
}

// NewFederation creates a federation rooted at the director's own registry
// (nil for none): local series are merged into every snapshot.
func NewFederation(local *Registry) *Federation {
	return &Federation{local: local, sources: map[string]*federatedSource{}}
}

// Update replaces one source's contribution.
func (f *Federation) Update(source string, samples []Sample) {
	f.mu.Lock()
	f.sources[source] = &federatedSource{
		samples: append([]Sample(nil), samples...),
		updated: time.Now(),
	}
	f.mu.Unlock()
}

// Sources returns the scraped source names, sorted.
func (f *Federation) Sources() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.sources))
	for name := range f.sources {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Age returns how long ago the source last reported, and whether it exists.
func (f *Federation) Age(source string) (time.Duration, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.sources[source]
	if !ok {
		return 0, false
	}
	return time.Since(s.updated), true
}

// Snapshot merges the local registry and every source deterministically:
// all series sorted by name. When two sources export the same series name
// the lexically later source wins (node series are node-labeled, so
// collisions only arise from misconfiguration).
func (f *Federation) Snapshot() []Sample {
	merged := map[string]float64{}
	for _, s := range f.local.Snapshot() {
		merged[s.Name] = s.Value
	}
	f.mu.Lock()
	names := make([]string, 0, len(f.sources))
	for name := range f.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, s := range f.sources[name].samples {
			merged[s.Name] = s.Value
		}
	}
	f.mu.Unlock()

	out := make([]Sample, 0, len(merged))
	for name, v := range merged {
		out = append(out, Sample{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WritePrometheus writes the merged snapshot in the text exposition format.
func (f *Federation) WritePrometheus(w io.Writer) error {
	for _, s := range f.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, strconv.FormatFloat(s.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the merged exposition — the director's /metrics.
func (f *Federation) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		f.WritePrometheus(w) //nolint:errcheck // best-effort over a dying socket
	})
}

// StragglerDetector flags nodes whose round latency stays above K times the
// cluster median for M consecutive observations — the communication skew
// that eats scale-out speedup (Sridharan et al.). It is pure bookkeeping:
// deterministic, no clocks, no goroutines; callers feed it one latency map
// per scrape/round.
type StragglerDetector struct {
	// K is the latency multiple over the cluster p50 that counts as
	// straggling (default 2).
	K float64
	// M is how many consecutive observations must stay above the bar
	// before a node is flagged (default 3).
	M int

	streak  map[string]int
	flagged map[string]bool
}

// NewStragglerDetector creates a detector with the given thresholds;
// non-positive values take the defaults (K=2, M=3).
func NewStragglerDetector(k float64, m int) *StragglerDetector {
	if k <= 0 {
		k = 2
	}
	if m <= 0 {
		m = 3
	}
	return &StragglerDetector{K: k, M: m, streak: map[string]int{}, flagged: map[string]bool{}}
}

// Observe folds in one round of per-node latencies (seconds) and returns
// the currently flagged node names, sorted. A node below the bar resets its
// streak and clears its flag; nodes absent from the map keep their state.
func (d *StragglerDetector) Observe(latency map[string]float64) []string {
	if len(latency) > 0 {
		p50 := medianOf(latency)
		for node, lat := range latency {
			if p50 > 0 && lat > d.K*p50 {
				d.streak[node]++
				if d.streak[node] >= d.M {
					d.flagged[node] = true
				}
			} else {
				d.streak[node] = 0
				delete(d.flagged, node)
			}
		}
	}
	out := make([]string, 0, len(d.flagged))
	for node := range d.flagged {
		out = append(out, node)
	}
	sort.Strings(out)
	return out
}

// Streak returns the node's current consecutive-over-bar count.
func (d *StragglerDetector) Streak(node string) int { return d.streak[node] }

// medianOf returns the nearest-rank p50 of the map's values via the shared
// Quantile helper.
func medianOf(m map[string]float64) float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	return QuantileOf(vals, 0.5)
}
