package obs

import "math"

// Bucket is one cumulative histogram bucket: Count observations with value
// at or below Le. A bucket list is ascending in Le with non-decreasing
// Count; the last bucket's Count is the total observation count (Prometheus
// exposes it as le="+Inf").
type Bucket struct {
	Le    float64
	Count float64
}

// Quantile returns the nearest-rank q-quantile upper bound from cumulative
// buckets: the lowest Le with at least q of the total mass at or below it.
// It is the one quantile estimator the stack uses — Histogram.Quantile, the
// straggler detector's cluster median, and the /query range API's pNN
// aggregation all answer through it, so their numbers agree by construction.
// q is clamped to [0, 1]; an empty or zero-mass bucket list yields 0.
func Quantile(buckets []Bucket, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].Count
	if !(total > 0) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := math.Ceil(q * total)
	if need < 1 {
		need = 1
	}
	for _, b := range buckets {
		if b.Count >= need {
			return b.Le
		}
	}
	return buckets[len(buckets)-1].Le
}

// QuantileOf returns the nearest-rank q-quantile of raw values by treating
// each sorted value as its own singleton bucket. vals must be sorted
// ascending; an empty slice yields 0.
func QuantileOf(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	buckets := make([]Bucket, len(vals))
	for i, v := range vals {
		buckets[i] = Bucket{Le: v, Count: float64(i + 1)}
	}
	return Quantile(buckets, q)
}
