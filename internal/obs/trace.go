package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// The two clock domains of a CoSMIC trace, kept apart as separate trace
// processes so Perfetto never mixes their timelines:
//
//   - PIDHost: the host stack (compiler, cluster nodes), timestamped in
//     wall-clock microseconds since the tracer started;
//   - PIDAccel: the accelerator simulator, timestamped in simulated cycles
//     (one trace microsecond per cycle — zoom labels read as cycles).
const (
	PIDHost  = 1
	PIDAccel = 2
)

// Event is one Chrome trace event (the Trace Event Format's JSON shape).
type Event struct {
	Name  string `json:"name"`
	Cat   string `json:"cat,omitempty"`
	Phase string `json:"ph"`
	TS    int64  `json:"ts"`
	Dur   int64  `json:"dur,omitempty"`
	PID   int    `json:"pid"`
	TID   int    `json:"tid"`
	// ID and BP are set on flow events only ("s"/"f" phases): ID associates
	// a flow's start with its finish, BP "e" binds the finish to the
	// enclosing slice.
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer records spans. All methods are safe for concurrent use and are
// no-ops on a nil tracer.
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	events []Event
	skewUS int64
}

// NewTracer starts a tracer; wall-clock spans are relative to this moment.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// SetClockSkew records this process's estimated clock offset relative to
// the cluster's reference clock (the director), in microseconds: positive
// when the local clock runs ahead. The trace merger subtracts it when
// aligning per-node timelines. Derived from the director's config
// handshake; exact on a single machine, bounded by one control-plane RTT
// across machines.
func (t *Tracer) SetClockSkew(us int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.skewUS = us
	t.mu.Unlock()
}

// Now returns the tracer's wall clock: microseconds since NewTracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.start).Microseconds()
}

// Span is an open wall-clock span; End closes and records it. The zero Span
// (from a nil tracer) is a no-op.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	start int64
}

// Begin opens a wall-clock span in the host domain. tid groups spans into
// trace rows (use a node ID, worker index, or 0).
func (t *Tracer) Begin(cat, name string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, tid: tid, start: t.Now()}
}

// End closes the span.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs closes the span with key/value arguments shown in the trace UI.
func (s Span) EndArgs(args map[string]any) {
	if s.t == nil {
		return
	}
	s.t.add(Event{
		Name: s.name, Cat: s.cat, Phase: "X",
		TS: s.start, Dur: s.t.Now() - s.start,
		PID: PIDHost, TID: s.tid, Args: args,
	})
}

// Cycles records a complete span in the simulated-cycle domain: start and
// dur are cycle counts, rendered as microseconds in the trace UI.
func (t *Tracer) Cycles(cat, name string, tid int, start, dur int64, args map[string]any) {
	if t == nil {
		return
	}
	t.add(Event{
		Name: name, Cat: cat, Phase: "X",
		TS: start, Dur: dur,
		PID: PIDAccel, TID: tid, Args: args,
	})
}

// NameThread labels a trace row (Perfetto shows it as the track title).
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.add(Event{
		Name: "thread_name", Phase: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
}

func (t *Tracer) add(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events in deterministic order:
// metadata first, then spans sorted by (pid, tid, ts, name).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	evs := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if (a.Phase == "M") != (b.Phase == "M") {
			return a.Phase == "M"
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.Name < b.Name
	})
	return evs
}

// chromeTrace is the JSON Object Format document WriteChromeTrace emits.
type chromeTrace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// ClockSyncEventName marks the metadata event carrying a trace's absolute
// clock anchor: args.unix_us is the tracer's start as Unix microseconds and
// args.skew_us the process's estimated offset from the cluster reference
// clock. MergeChromeTraces uses it to put per-node traces on one timeline.
const ClockSyncEventName = "cosmic_clock_sync"

// clockSyncEvent builds the tracer's clock-anchor metadata event.
func (t *Tracer) clockSyncEvent() Event {
	if t == nil {
		return Event{Name: ClockSyncEventName, Phase: "M", PID: PIDHost,
			Args: map[string]any{"unix_us": int64(0), "skew_us": int64(0)}}
	}
	t.mu.Lock()
	skew := t.skewUS
	t.mu.Unlock()
	return Event{
		Name: ClockSyncEventName, Phase: "M", PID: PIDHost,
		Args: map[string]any{
			"unix_us": t.start.UnixMicro(),
			"skew_us": skew,
		},
	}
}

// WriteChromeTrace writes the trace as Chrome trace-event JSON: load the
// file at ui.perfetto.dev (or chrome://tracing) to browse it. The output is
// deterministic for a given set of recorded events.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	doc := chromeTrace{
		TraceEvents: []Event{
			{Name: "process_name", Phase: "M", PID: PIDHost,
				Args: map[string]any{"name": "host (wall-clock us)"}},
			{Name: "process_name", Phase: "M", PID: PIDAccel,
				Args: map[string]any{"name": "accelerator (simulated cycles)"}},
			t.clockSyncEvent(),
		},
		DisplayTimeUnit: "ms",
	}
	doc.TraceEvents = append(doc.TraceEvents, t.Events()...)
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
