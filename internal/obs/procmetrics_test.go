package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs/profile"
)

// TestProcessMetricsOnScrape: an observer's registry refreshes the process
// gauges on every snapshot; a bare registry stays clean (pinning the golden
// tests' assumption that NewRegistry adds nothing).
func TestProcessMetricsOnScrape(t *testing.T) {
	o := New()
	got := map[string]float64{}
	for _, s := range o.Registry().Snapshot() {
		got[s.Name] = s.Value
	}
	for _, name := range []string{
		"cosmic_go_goroutines", "cosmic_go_heap_bytes",
		"cosmic_go_gc_pause_seconds_total", "cosmic_uptime_seconds",
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("observer registry missing %s", name)
		}
	}
	if got["cosmic_go_goroutines"] < 1 {
		t.Errorf("cosmic_go_goroutines = %v, want ≥ 1", got["cosmic_go_goroutines"])
	}
	if got["cosmic_go_heap_bytes"] <= 0 {
		t.Errorf("cosmic_go_heap_bytes = %v, want > 0", got["cosmic_go_heap_bytes"])
	}

	if n := len(NewRegistry().Snapshot()); n != 0 {
		t.Errorf("bare NewRegistry has %d series, want 0", n)
	}
}

// TestHealthBuildInfo: a ready /healthz document carries the build block.
func TestHealthBuildInfo(t *testing.T) {
	h := NewHealth()
	h.SetReady(map[string]any{"role": "delta"}, nil)
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	build, ok := doc["build"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no build block: %v", doc)
	}
	goVer, _ := build["go"].(string)
	if !strings.HasPrefix(goVer, "go1.") {
		t.Errorf("build.go = %q, want a go1.x version", goVer)
	}
	if mod, _ := build["module"].(string); mod != "repro" {
		t.Errorf("build.module = %q, want repro", mod)
	}
}

// TestProfileSourceHandler: 503 before Set, .pb.gz after.
func TestProfileSourceHandler(t *testing.T) {
	src := NewProfileSource()
	srv := httptest.NewServer(src.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unset source served %d, want 503", resp.StatusCode)
	}

	src.Set(func() (*profile.Raw, error) {
		p := profile.New(profile.ValueType{Type: "cycles", Unit: "cycles"})
		p.Add([]int64{42}, []string{"compute"})
		return p.Raw(), nil
	})
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("set source served %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := profile.Decode(body)
	if err != nil {
		t.Fatalf("served profile does not decode: %v", err)
	}
	if len(raw.Sample) != 1 || raw.Sample[0].Value[0] != 42 {
		t.Errorf("served profile content wrong: %+v", raw.Sample)
	}
}
