package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// traceDocBytes hand-builds one node's trace file: a clock anchor plus the
// given span events.
func traceDocBytes(t *testing.T, unixUS, skewUS int64, events ...Event) []byte {
	t.Helper()
	doc := chromeTrace{
		TraceEvents: append([]Event{
			{Name: "process_name", Phase: "M", PID: PIDHost,
				Args: map[string]any{"name": "host (wall-clock us)"}},
			{Name: ClockSyncEventName, Phase: "M", PID: PIDHost,
				Args: map[string]any{"unix_us": unixUS, "skew_us": skewUS}},
		}, events...),
		DisplayTimeUnit: "ms",
	}
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestMergeChromeTraces: two nodes with different clock anchors merge onto
// one timeline, the duplicate process metadata collapses, and the matching
// flow_out/flow_in span pair grows an s→f flow arrow.
func TestMergeChromeTraces(t *testing.T) {
	// Master's tracer started at unix 1_000_000 µs; node 1's at 1_000_300
	// with a measured skew of +100 µs (its clock runs ahead), so node 1's
	// events shift by (1_000_300-100) - 1_000_000 = 200 µs.
	master := traceDocBytes(t, 1_000_000, 0,
		Event{Name: "broadcast", Cat: "runtime", Phase: "X", TS: 50, Dur: 10, PID: PIDHost, TID: 0,
			Args: map[string]any{ArgTraceID: IDString(0xabc), ArgFlowOut: IDString(0x111)}},
	)
	node1 := traceDocBytes(t, 1_000_300, 100,
		Event{Name: "recv-model", Cat: "runtime", Phase: "X", TS: 5, Dur: 2, PID: PIDHost, TID: 1,
			Args: map[string]any{ArgTraceID: IDString(0xabc), ArgFlowIn: IDString(0x111)}},
		Event{Name: "recv-model", Cat: "runtime", Phase: "X", TS: 40, Dur: 2, PID: PIDHost, TID: 1,
			Args: map[string]any{ArgTraceID: IDString(0xdef), ArgFlowIn: IDString(0x999)}}, // no sender
		Event{Name: "pe", Cat: "accel", Phase: "X", TS: 7, Dur: 3, PID: PIDAccel, TID: 0},
	)

	merged, stats, err := MergeChromeTraces([][]byte{master, node1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inputs != 2 || stats.Flows != 1 || stats.UnmatchedFlows != 1 {
		t.Errorf("stats = %+v, want 2 inputs, 1 flow, 1 unmatched", stats)
	}

	var doc chromeTrace
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatalf("merged doc does not parse: %v", err)
	}
	var recvTS, accelTS int64 = -1, -1
	var flowS, flowF *Event
	procMeta := 0
	for i := range doc.TraceEvents {
		e := &doc.TraceEvents[i]
		switch {
		case e.Phase == "M" && e.Name == "process_name" && e.PID == PIDHost:
			procMeta++
		case e.Name == "recv-model" && e.Args[ArgTraceID] == IDString(0xabc):
			recvTS = e.TS
		case e.Name == "pe":
			accelTS = e.TS
		case e.Phase == "s":
			flowS = e
		case e.Phase == "f":
			flowF = e
		}
	}
	if procMeta != 1 {
		t.Errorf("host process_name metadata appears %d times, want deduplicated to 1", procMeta)
	}
	if recvTS != 5+200 {
		t.Errorf("node 1 recv span ts = %d, want 205 (shifted by anchor delta minus skew)", recvTS)
	}
	if accelTS != 7 {
		t.Errorf("accelerator-domain ts = %d, want 7 (cycle domain never shifts)", accelTS)
	}
	if flowS == nil || flowF == nil {
		t.Fatal("merged trace has no flow event pair")
	}
	if flowS.ID != flowF.ID {
		t.Errorf("flow ids differ: s=%q f=%q", flowS.ID, flowF.ID)
	}
	if flowS.TS != 60 || flowS.TID != 0 {
		t.Errorf("flow start at ts=%d tid=%d, want anchored at send span end (60) on master row", flowS.TS, flowS.TID)
	}
	if flowF.TS != 205 || flowF.TID != 1 || flowF.BP != "e" {
		t.Errorf("flow finish = %+v, want ts 205, tid 1, bp e", flowF)
	}
}

func TestMergeChromeTracesErrors(t *testing.T) {
	if _, _, err := MergeChromeTraces(nil); err == nil {
		t.Error("empty merge succeeded")
	}
	if _, _, err := MergeChromeTraces([][]byte{[]byte("not json")}); err == nil {
		t.Error("garbage input accepted")
	}
	// A trace without a clock anchor (older build) is rejected.
	doc := chromeTrace{TraceEvents: []Event{{Name: "x", Phase: "X", PID: PIDHost}}}
	blob, _ := json.Marshal(doc)
	if _, _, err := MergeChromeTraces([][]byte{blob}); err == nil {
		t.Error("anchorless trace accepted")
	}
}

// TestMergeRealTracerOutput merges two real WriteChromeTrace documents —
// the same path cosmic-trace takes on per-node files.
func TestMergeRealTracerOutput(t *testing.T) {
	a, b := NewTracer(), NewTracer()
	a.NameThread(PIDHost, 0, "node 0")
	sp := a.Begin("runtime", "broadcast", 0)
	sp.EndArgs(map[string]any{ArgTraceID: IDString(7), ArgFlowOut: IDString(42)})
	b.NameThread(PIDHost, 1, "node 1")
	sp = b.Begin("runtime", "recv-model", 1)
	sp.EndArgs(map[string]any{ArgTraceID: IDString(7), ArgFlowIn: IDString(42)})

	var bufA, bufB bytes.Buffer
	if err := a.WriteChromeTrace(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChromeTrace(&bufB); err != nil {
		t.Fatal(err)
	}
	merged, stats, err := MergeChromeTraces([][]byte{bufA.Bytes(), bufB.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Flows != 1 || stats.UnmatchedFlows != 0 {
		t.Errorf("stats = %+v, want one matched flow", stats)
	}
	var doc map[string]any
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatalf("merged output does not parse: %v", err)
	}
}
