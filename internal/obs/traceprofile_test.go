package obs

import (
	"testing"

	"repro/internal/obs/profile"
)

// TestTraceToProfileSelfTime pins the interval-nesting math: a 100µs round
// enclosing a 30µs broadcast and a 20µs delta-compute must contribute 50µs
// of self wall time, with the children stacked under it.
func TestTraceToProfileSelfTime(t *testing.T) {
	events := []Event{
		{Phase: "M", Name: "thread_name", PID: PIDHost, TID: 1, Args: map[string]any{"name": "node 1 (master)"}},
		{Phase: "X", Cat: "round", Name: "round", TS: 0, Dur: 100, PID: PIDHost, TID: 1},
		{Phase: "X", Cat: "round", Name: "broadcast", TS: 5, Dur: 30, PID: PIDHost, TID: 1},
		{Phase: "X", Cat: "round", Name: "delta-compute", TS: 40, Dur: 20, PID: PIDHost, TID: 1},
		// A second row in the accelerator domain, cycles not wall time.
		{Phase: "X", Cat: "sim", Name: "thread-compute", TS: 0, Dur: 400, PID: PIDAccel, TID: 0},
	}
	r := TraceToProfile(events)
	if err := r.Check(); err != nil {
		t.Fatalf("invalid profile: %v", err)
	}
	wi := profile.SampleTypeIndex(r, "wall")
	ci := profile.SampleTypeIndex(r, "cycles")
	if wi < 0 || ci < 0 {
		t.Fatalf("missing sample types: wall=%d cycles=%d", wi, ci)
	}

	// Resolve each sample to its leaf-first frame names.
	funcName := map[uint64]string{}
	for _, f := range r.Function {
		funcName[f.ID] = r.StringTable[f.Name]
	}
	locName := map[uint64]string{}
	for _, l := range r.Location {
		locName[l.ID] = funcName[l.Line[0].FunctionID]
	}
	byLeaf := map[string]RawSampleView{}
	for _, s := range r.Sample {
		frames := make([]string, len(s.LocationID))
		for i, id := range s.LocationID {
			frames[i] = locName[id]
		}
		labels := map[string]string{}
		for _, l := range s.Label {
			labels[r.StringTable[l.Key]] = r.StringTable[l.Str]
		}
		byLeaf[frames[0]] = RawSampleView{Frames: frames, Wall: s.Value[wi], Cycles: s.Value[ci], Labels: labels}
	}

	round := byLeaf["round"]
	if round.Wall != 50*1000 {
		t.Errorf("round self wall = %d ns, want 50000 (100µs − 30µs − 20µs children)", round.Wall)
	}
	if len(round.Frames) != 2 || round.Frames[1] != "round" {
		// leaf "round" + category root "round"
		t.Errorf("round frames = %v", round.Frames)
	}
	bc := byLeaf["broadcast"]
	if bc.Wall != 30*1000 {
		t.Errorf("broadcast self wall = %d ns, want 30000", bc.Wall)
	}
	if len(bc.Frames) != 3 || bc.Frames[1] != "round" {
		t.Errorf("broadcast must stack under round: %v", bc.Frames)
	}
	if bc.Labels["node"] != "node 1 (master)" || bc.Labels["domain"] != "host" {
		t.Errorf("broadcast labels = %v", bc.Labels)
	}
	tc := byLeaf["thread-compute"]
	if tc.Cycles != 400 || tc.Wall != 0 {
		t.Errorf("accel span: wall=%d cycles=%d, want 0/400", tc.Wall, tc.Cycles)
	}
	if tc.Labels["domain"] != "accel" {
		t.Errorf("accel labels = %v", tc.Labels)
	}

	// Total wall time must equal the root span's full duration.
	var totalWall int64
	for _, s := range r.Sample {
		totalWall += s.Value[wi]
	}
	if totalWall != 100*1000 {
		t.Errorf("total wall = %d ns, want 100000 (no double counting)", totalWall)
	}
}

// RawSampleView is a resolved sample used by trace-profile tests.
type RawSampleView struct {
	Frames []string
	Wall   int64
	Cycles int64
	Labels map[string]string
}

// TestTraceToProfileSiblingOverlap: a span that starts inside but ends
// after its predecessor is a sibling, not a child — both keep full self
// time.
func TestTraceToProfileSiblingOverlap(t *testing.T) {
	events := []Event{
		{Phase: "X", Name: "a", TS: 0, Dur: 50, PID: PIDHost, TID: 0},
		{Phase: "X", Name: "b", TS: 40, Dur: 50, PID: PIDHost, TID: 0},
	}
	r := TraceToProfile(events)
	wi := profile.SampleTypeIndex(r, "wall")
	var total int64
	for _, s := range r.Sample {
		if len(s.LocationID) != 1 {
			t.Errorf("overlapping spans must be siblings (stack depth 1), got depth %d", len(s.LocationID))
		}
		total += s.Value[wi]
	}
	if total != 100*1000 {
		t.Errorf("total wall = %d, want 100000", total)
	}
}

// TestTraceToProfileFromTracer runs the converter over a real tracer's
// output end to end.
func TestTraceToProfileFromTracer(t *testing.T) {
	tr := NewTracer()
	tr.NameThread(PIDHost, 3, "node 3 (delta)")
	sp := tr.Begin("round", "round", 3)
	inner := tr.Begin("round", "delta-compute", 3)
	inner.End()
	sp.End()
	tr.Cycles("sim", "pe-busy", 0, 0, 123, nil)
	r := TraceToProfile(tr.Events())
	if err := r.Check(); err != nil {
		t.Fatalf("invalid profile: %v", err)
	}
	ci := profile.SampleTypeIndex(r, "cycles")
	var cyc int64
	for _, s := range r.Sample {
		cyc += s.Value[ci]
	}
	if cyc != 123 {
		t.Errorf("cycles total = %d, want 123", cyc)
	}
}
