package obs

import "os"

// Observer bundles the two halves of the observability layer so call sites
// thread one pointer through the stack. A nil *Observer disables everything:
// its accessors return nil instruments whose methods are no-ops.
type Observer struct {
	Metrics *Registry
	Trace   *Tracer
}

// New creates an observer with a fresh registry and tracer. The registry
// carries the default process metrics (goroutines, heap, GC pause, uptime),
// refreshed on every scrape.
func New() *Observer {
	reg := NewRegistry()
	EnableProcessMetrics(reg)
	return &Observer{Metrics: reg, Trace: NewTracer()}
}

// Registry returns the metrics registry, nil when disabled.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Tracer returns the span tracer, nil when disabled.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// WriteTraceFile exports the recorded spans as Chrome trace-event JSON
// (load at https://ui.perfetto.dev). Empty path or nil observer is a no-op.
func (o *Observer) WriteTraceFile(path string) error {
	if o == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Trace.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteMetricsFile exports the registry in Prometheus text exposition
// format. Empty path or nil observer is a no-op.
func (o *Observer) WriteMetricsFile(path string) error {
	if o == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Metrics.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
