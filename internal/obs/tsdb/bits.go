package tsdb

import "fmt"

// bstream is an append-only MSB-first bit stream. The codec writes variable-
// width fields (flag bits, bucketed deltas, XOR windows) without byte
// alignment; the final byte is zero-padded on the low bits.
type bstream struct {
	data []byte
	// free is how many low bits of the last byte are still writable (0 when
	// the stream is byte-aligned).
	free uint
}

// writeBit appends one bit (the low bit of v).
func (b *bstream) writeBit(v uint64) {
	if b.free == 0 {
		b.data = append(b.data, 0)
		b.free = 8
	}
	b.free--
	if v&1 != 0 {
		b.data[len(b.data)-1] |= 1 << b.free
	}
}

// writeBits appends the low n bits of v, most significant first.
func (b *bstream) writeBits(v uint64, n uint) {
	for n > 0 {
		n--
		b.writeBit(v >> n)
	}
}

// clone returns an independent copy of the stream's bytes.
func (b *bstream) clone() []byte {
	return append([]byte(nil), b.data...)
}

// breader reads a bstream back, MSB-first.
type breader struct {
	data []byte
	byt  int
	bit  uint // bits already consumed from data[byt]
}

func newBReader(data []byte) *breader { return &breader{data: data} }

// readBit returns the next bit.
func (r *breader) readBit() (uint64, error) {
	if r.byt >= len(r.data) {
		return 0, fmt.Errorf("tsdb: bit stream exhausted at byte %d", r.byt)
	}
	v := uint64(r.data[r.byt]>>(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.byt++
	}
	return v, nil
}

// readBits returns the next n bits as an unsigned integer.
func (r *breader) readBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | bit
	}
	return v, nil
}
