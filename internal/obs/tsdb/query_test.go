package tsdb

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseSelector(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{in: "cosmic_round_seconds", want: "cosmic_round_seconds"},
		{in: `m{node="3"}`, want: `m{node="3"}`},
		{in: `m{node="3", dom="2"}`, want: `m{dom="2",node="3"}`},
		{in: "m{}", want: "m"},
		{in: "", err: true},
		{in: "{}", err: true},
		{in: `m{node=3}`, err: true},
		{in: `m{node}`, err: true},
	}
	for _, c := range cases {
		sel, err := ParseSelector(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseSelector(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSelector(%q): %v", c.in, err)
			continue
		}
		if got := sel.String(); got != c.want {
			t.Errorf("ParseSelector(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSelectorMatchesSubset(t *testing.T) {
	st := NewStore(Options{})
	for _, name := range []string{
		`m{node="1",dom="0"}`, `m{node="2",dom="0"}`, `m{node="1",dom="1"}`, `other{node="1"}`, "m",
	} {
		st.Append(name, 1000, 1)
	}
	sel, err := ParseSelector(`m{node="1"}`)
	if err != nil {
		t.Fatal(err)
	}
	got := st.Select(sel)
	want := []string{`m{node="1",dom="0"}`, `m{node="1",dom="1"}`}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Select = %v, want %v", got, want)
	}
	// Bare selector matches every labeling of the base name plus the bare one.
	bare, _ := ParseSelector("m")
	if got := st.Select(bare); len(got) != 4 {
		t.Fatalf("bare Select = %v, want 4 series", got)
	}
}

func seedStore(t *testing.T) *Store {
	t.Helper()
	st := NewStore(Options{})
	// 10 samples at 1s cadence, values 1..10.
	for i := 1; i <= 10; i++ {
		st.Append("m", int64(1000*i), float64(i))
	}
	return st
}

func TestQueryRangeAggregations(t *testing.T) {
	st := seedStore(t)
	sel, _ := ParseSelector("m")
	// Windows of 2s over (0, 10s]: {1,2} {3,4} {5,6} {7,8} {9,10}.
	cases := map[string][]float64{
		"avg":  {1.5, 3.5, 5.5, 7.5, 9.5},
		"min":  {1, 3, 5, 7, 9},
		"max":  {2, 4, 6, 8, 10},
		"last": {2, 4, 6, 8, 10},
		"rate": {1, 1, 1, 1, 1}, // slope of the ramp within each window
	}
	for agg, want := range cases {
		res, err := st.QueryRange(sel, 0, 10000, 2000, agg)
		if err != nil {
			t.Fatalf("%s: %v", agg, err)
		}
		if len(res.Series) != 1 {
			t.Fatalf("%s: %d series", agg, len(res.Series))
		}
		pts := res.Series[0].Points
		if len(pts) != len(want) {
			t.Fatalf("%s: %d points, want %d", agg, len(pts), len(want))
		}
		for i, w := range want {
			if !pts[i].OK || pts[i].V != w {
				t.Fatalf("%s: window %d = %+v, want %v", agg, i, pts[i], w)
			}
			if wantT := int64(2000 * (i + 1)); pts[i].T != wantT {
				t.Fatalf("%s: window %d stamped %d, want %d", agg, i, pts[i].T, wantT)
			}
		}
	}
}

func TestQueryRangeEmptyWindowsAreNull(t *testing.T) {
	st := NewStore(Options{})
	st.Append("m", 1000, 1)
	st.Append("m", 9000, 2)
	res, err := st.QueryRange(Selector{Base: "m"}, 0, 10000, 2000, "avg")
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	wantOK := []bool{true, false, false, false, true}
	for i, ok := range wantOK {
		if pts[i].OK != ok {
			t.Fatalf("window %d OK=%v, want %v (%+v)", i, pts[i].OK, ok, pts)
		}
	}
	blob, err := json.Marshal(pts[1])
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != "[4000,null]" {
		t.Fatalf("empty window marshals as %s", blob)
	}
}

func TestQueryRangeRateCounterReset(t *testing.T) {
	st := NewStore(Options{})
	// Counter climbs to 100, resets (process restart), climbs again: the
	// increase over (0, 4s] is 50+50 then 30 since zero, then +40 = 120.
	st.Append("c", 1000, 50)
	st.Append("c", 2000, 100)
	st.Append("c", 3000, 30) // reset
	st.Append("c", 4000, 70)
	res, err := st.QueryRange(Selector{Base: "c"}, 0, 4000, 4000, "rate")
	if err != nil {
		t.Fatal(err)
	}
	p := res.Series[0].Points[0]
	if !p.OK || p.V != 120.0/3.0 {
		t.Fatalf("rate across reset = %+v, want %v", p, 120.0/3.0)
	}
}

func TestQueryRangeQuantileFromBuckets(t *testing.T) {
	st := NewStore(Options{})
	// Two nodes exporting cumulative buckets of the same histogram. Node 1
	// concentrates low, node 2 high.
	app := func(node string, tMillis int64, c01, c1, cInf float64) {
		st.Append(`lat_bucket{node="`+node+`",le="0.1"}`, tMillis, c01)
		st.Append(`lat_bucket{node="`+node+`",le="1"}`, tMillis, c1)
		st.Append(`lat_bucket{node="`+node+`",le="+Inf"}`, tMillis, cInf)
	}
	app("1", 1000, 10, 12, 12) // p50 in the 0.1 bucket
	app("2", 1000, 1, 2, 12)   // p50 in the +Inf bucket
	app("1", 2000, 30, 40, 40) // p95: need 38 → le=1 bucket
	app("2", 2000, 1, 2, 12)

	res, err := st.QueryRange(Selector{Base: "lat"}, 0, 2000, 1000, "p50")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("%d quantile series, want 2 (one per node): %+v", len(res.Series), res.Series)
	}
	if res.Series[0].Name != `lat{node="1"}` || res.Series[1].Name != `lat{node="2"}` {
		t.Fatalf("series names %q, %q", res.Series[0].Name, res.Series[1].Name)
	}
	if p := res.Series[0].Points[0]; !p.OK || p.V != 0.1 {
		t.Fatalf("node 1 p50 = %+v, want 0.1", p)
	}
	n2 := res.Series[1].Points[0]
	if !n2.OK {
		t.Fatalf("node 2 p50 missing")
	}
	blob, _ := json.Marshal(n2)
	if !strings.Contains(string(blob), "+Inf") {
		t.Fatalf("node 2 p50 marshals as %s, want quoted +Inf", blob)
	}

	res, err = st.QueryRange(Selector{Base: "lat"}, 0, 2000, 1000, "p95")
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Series[0].Points[1]; !p.OK || p.V != 1 {
		t.Fatalf("node 1 p95 at t=2000 = %+v, want 1", p)
	}
	// Labeled selectors narrow the bucket match.
	res, err = st.QueryRange(Selector{Base: "lat", Labels: map[string]string{"node": "2"}}, 0, 2000, 1000, "p50")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || res.Series[0].Name != `lat{node="2"}` {
		t.Fatalf("labeled quantile selected %+v", res.Series)
	}
}

func TestQueryRangeRejectsBadArgs(t *testing.T) {
	st := seedStore(t)
	sel, _ := ParseSelector("m")
	if _, err := st.QueryRange(sel, 0, 10000, 0, "avg"); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := st.QueryRange(sel, 10000, 10000, 1000, "avg"); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := st.QueryRange(sel, 0, 1e9, 1, "avg"); err == nil {
		t.Fatal("step-count cap not enforced")
	}
}

func TestQueryHandlerJSONShape(t *testing.T) {
	st := seedStore(t)
	now := time.UnixMilli(10000)
	h := st.queryHandler(func() time.Time { return now })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/query?q=m&agg=max&start=-10s&step=2s", nil))
	if rec.Code != 200 {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
	}
	var res QueryResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body)
	}
	if res.Query != "m" || res.Agg != "max" || res.StartMS != 0 || res.EndMS != 10000 || res.StepMS != 2000 {
		t.Fatalf("envelope %+v", res)
	}
	if len(res.Series) != 1 || res.Series[0].Name != "m" || len(res.Series[0].Points) != 5 {
		t.Fatalf("series %+v", res.Series)
	}

	// Unix-seconds timestamps work too.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/query?q=m&start=0&end=10&step=5s", nil))
	if rec.Code != 200 {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
	}

	// No q: the Stats document.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/query", nil))
	var stats Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, rec.Body)
	}
	if stats.Series != 1 || stats.Samples != 10 {
		t.Fatalf("stats %+v", stats)
	}

	// Malformed input is a 400 with a JSON error, not a panic.
	for _, q := range []string{
		"/query?q=m{", "/query?q=m&start=bogus", "/query?q=m&step=bogus", "/query?q=m&start=-1x",
	} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", q, nil))
		if rec.Code != 400 {
			t.Fatalf("%s: HTTP %d, want 400", q, rec.Code)
		}
		var e map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
			t.Fatalf("%s: error doc %s", q, rec.Body)
		}
	}
}

func TestDashHandlerServesSelfContainedPage(t *testing.T) {
	rec := httptest.NewRecorder()
	DashHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/dash", nil))
	if rec.Code != 200 {
		t.Fatalf("HTTP %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"<svg", "cosmic_round_seconds", "/query?q=", "<script>"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard page lacks %q", want)
		}
	}
	for _, external := range []string{"http://", "https://", "src=", "href="} {
		if strings.Contains(body, external) {
			t.Fatalf("dashboard page references external asset (%q)", external)
		}
	}
}
