package tsdb

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func writeFile(path, s string) error { return os.WriteFile(path, []byte(s), 0o644) }

func TestRuleValidateDefaults(t *testing.T) {
	r := Rule{Name: "x", Expr: "m"}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindThreshold || r.Op != ">" || time.Duration(r.Window) != 15*time.Second {
		t.Fatalf("defaults not applied: %+v", r)
	}
	for _, bad := range []Rule{
		{Expr: "m"},                                  // no name
		{Name: "x", Expr: ""},                        // no expr
		{Name: "x", Expr: "m", Kind: "sideways"},     // bad kind
		{Name: "x", Expr: "m", Op: "!="},             // bad op
		{Name: "x", Expr: `m{oops`, Kind: "absence"}, // bad selector
	} {
		bad := bad
		if err := bad.Validate(); err == nil {
			t.Fatalf("rule %+v validated", bad)
		}
	}
}

func TestDurationJSON(t *testing.T) {
	var r Rule
	if err := json.Unmarshal([]byte(`{"name":"x","expr":"m","window":"30s","for":2000000000}`), &r); err != nil {
		t.Fatal(err)
	}
	if time.Duration(r.Window) != 30*time.Second || time.Duration(r.For) != 2*time.Second {
		t.Fatalf("durations %v / %v", time.Duration(r.Window), time.Duration(r.For))
	}
	blob, err := json.Marshal(Duration(90 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != `"1m30s"` {
		t.Fatalf("marshal %s", blob)
	}
}

func TestEvaluatorThresholdLifecycle(t *testing.T) {
	st := NewStore(Options{})
	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(64)
	e, err := NewEvaluator([]Rule{{
		Name: "hot", Expr: "temp", Kind: KindThreshold, Op: ">", Value: 10,
		Window: Duration(5 * time.Second), For: Duration(2 * time.Second),
	}}, reg, nil, fr)
	if err != nil {
		t.Fatal(err)
	}
	stateOf := func(series string) string {
		doc := e.Snapshot()
		for _, s := range doc.Rules[0].States {
			if s.Series == series {
				return s.State
			}
		}
		return "<absent>"
	}
	gauge := func() float64 {
		for _, s := range reg.Snapshot() {
			if s.Name == obs.Labeled("cosmic_alert_firing", "alert", "hot") {
				return s.Value
			}
		}
		return -1
	}

	st.Append("temp", 1000, 5)
	if f := e.Eval(st, 1000); len(f) != 0 || stateOf("temp") != StateInactive {
		t.Fatalf("cool value: firing=%v state=%s", f, stateOf("temp"))
	}

	// Condition turns true: pending until it has held For=2s.
	st.Append("temp", 2000, 50)
	if f := e.Eval(st, 2000); len(f) != 0 || stateOf("temp") != StatePending {
		t.Fatalf("first hot tick: firing=%v state=%s", f, stateOf("temp"))
	}
	if gauge() != 0 {
		t.Fatalf("gauge %v while pending", gauge())
	}

	st.Append("temp", 4000, 51)
	f := e.Eval(st, 4000)
	if len(f) != 1 || f[0].State != StateFiring || f[0].Value != 51 || stateOf("temp") != StateFiring {
		t.Fatalf("held 2s: firing=%+v state=%s", f, stateOf("temp"))
	}
	if gauge() != 1 {
		t.Fatalf("gauge %v while firing", gauge())
	}

	// Condition clears: resolved back to inactive, gauge drops.
	st.Append("temp", 5000, 3)
	if f := e.Eval(st, 5000); len(f) != 0 || stateOf("temp") != StateInactive {
		t.Fatalf("cooled: firing=%v state=%s", f, stateOf("temp"))
	}
	if gauge() != 0 {
		t.Fatalf("gauge %v after resolve", gauge())
	}

	// Both transitions left flight marks.
	var marks []string
	for _, ev := range fr.Snapshot() {
		marks = append(marks, ev.Type)
	}
	joined := strings.Join(marks, " ")
	if !strings.Contains(joined, "alert-firing:hot") || !strings.Contains(joined, "alert-resolved:hot") {
		t.Fatalf("flight marks %v", marks)
	}
}

func TestEvaluatorPendingResetsWhenConditionFlaps(t *testing.T) {
	st := NewStore(Options{})
	e, err := NewEvaluator([]Rule{{
		Name: "hot", Expr: "temp", Value: 10,
		Window: Duration(5 * time.Second), For: Duration(3 * time.Second),
	}}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Append("temp", 1000, 50)
	e.Eval(st, 1000) // pending, activeSince=1000
	st.Append("temp", 2000, 1)
	e.Eval(st, 2000) // back to inactive
	st.Append("temp", 3000, 50)
	e.Eval(st, 3000) // pending again — the For clock must restart
	st.Append("temp", 4500, 50)
	if f := e.Eval(st, 4500); len(f) != 0 {
		t.Fatalf("fired %v only 1.5s after re-activation (For=3s)", f)
	}
	st.Append("temp", 6000, 50)
	if f := e.Eval(st, 6000); len(f) != 1 {
		t.Fatalf("did not fire 3s after re-activation")
	}
}

func TestEvaluatorAbsence(t *testing.T) {
	st := NewStore(Options{})
	e, err := NewEvaluator([]Rule{{
		Name: "silent", Expr: "heartbeat", Kind: KindAbsence,
		Window: Duration(3 * time.Second),
	}}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The metric has never existed: absent from the start.
	if f := e.Eval(st, 1000); len(f) != 1 || f[0].Series != "heartbeat" {
		t.Fatalf("never-seen metric: firing=%v", f)
	}
	// It appears: resolved.
	st.Append("heartbeat", 2000, 1)
	if f := e.Eval(st, 2000); len(f) != 0 {
		t.Fatalf("reporting metric still firing: %v", f)
	}
	// It keeps reporting: quiet.
	st.Append("heartbeat", 4000, 1)
	if f := e.Eval(st, 4000); len(f) != 0 {
		t.Fatalf("reporting metric fired: %v", f)
	}
	// It goes silent past the window: the seen-series state machine fires
	// even though Select no longer returns fresh samples.
	if f := e.Eval(st, 9000); len(f) != 1 {
		t.Fatalf("silent metric did not fire")
	}
}

func TestEvaluatorRateRule(t *testing.T) {
	st := NewStore(Options{})
	e, err := NewEvaluator([]Rule{{
		Name: "errors", Expr: "errs_total", Kind: KindRate, Op: ">", Value: 0,
		Window: Duration(10 * time.Second),
	}}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Flat counter: rate 0, no alert.
	st.Append("errs_total", 1000, 5)
	st.Append("errs_total", 2000, 5)
	if f := e.Eval(st, 2000); len(f) != 0 {
		t.Fatalf("flat counter fired: %v", f)
	}
	// Counter moves: rate > 0, fires immediately (For=0).
	st.Append("errs_total", 3000, 6)
	if f := e.Eval(st, 3000); len(f) != 1 {
		t.Fatal("moving counter did not fire")
	}
}

func TestEvaluatorPerSeriesInstances(t *testing.T) {
	st := NewStore(Options{})
	e, err := NewEvaluator([]Rule{{
		Name: "lag", Expr: "lag", Value: 10, Window: Duration(5 * time.Second),
	}}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Append(`lag{node="1"}`, 1000, 50)
	st.Append(`lag{node="2"}`, 1000, 1)
	f := e.Eval(st, 1000)
	if len(f) != 1 || f[0].Series != `lag{node="1"}` {
		t.Fatalf("firing %v, want only node 1", f)
	}
	doc := e.Snapshot()
	if len(doc.Rules[0].States) != 2 {
		t.Fatalf("states %+v, want one per series", doc.Rules[0].States)
	}
}

func TestEvaluatorRejectsDuplicateNames(t *testing.T) {
	_, err := NewEvaluator([]Rule{
		{Name: "x", Expr: "m"}, {Name: "x", Expr: "n"},
	}, nil, nil, nil)
	if err == nil {
		t.Fatal("duplicate rule names accepted")
	}
}

func TestAlertsHandlerJSON(t *testing.T) {
	st := NewStore(Options{})
	e, err := NewEvaluator(DefaultClusterRules(), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Append("cosmic_cluster_straggler", 1000, 1)
	e.Eval(st, 1000)
	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/alerts", nil))
	if rec.Code != 200 {
		t.Fatalf("HTTP %d", rec.Code)
	}
	var doc AlertsDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body)
	}
	if doc.EvaluatedMS != 1000 || len(doc.Rules) != 2 {
		t.Fatalf("doc %+v", doc)
	}
	if len(doc.Firing) != 1 || doc.Firing[0].Name != "node-straggling" || doc.Firing[0].State != StateFiring {
		t.Fatalf("firing %+v", doc.Firing)
	}
	if !strings.Contains(rec.Body.String(), `"state":"firing"`) {
		t.Fatalf("the literal the CI smoke greps for is missing:\n%s", rec.Body)
	}
}

func TestLoadRulesFile(t *testing.T) {
	path := t.TempDir() + "/alerts.json"
	blob := `[{"name":"ci","expr":"cosmic_node_rounds_total","kind":"threshold","op":">","value":0,"window":"30s"}]`
	if err := writeFile(path, blob); err != nil {
		t.Fatal(err)
	}
	rules, err := LoadRulesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Name != "ci" || time.Duration(rules[0].Window) != 30*time.Second {
		t.Fatalf("rules %+v", rules)
	}
	if _, err := LoadRulesFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := writeFile(path, `[{"expr":"m"}]`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRulesFile(path); err == nil {
		t.Fatal("nameless rule accepted")
	}
}
