package tsdb

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// roundTrip encodes the samples into one chunk and decodes them back,
// failing on any bit-level mismatch.
func roundTrip(t *testing.T, pts []Point) *Chunk {
	t.Helper()
	c := NewChunk()
	for _, p := range pts {
		c.Append(p.T, p.V)
	}
	if c.Count() != len(pts) {
		t.Fatalf("count %d, want %d", c.Count(), len(pts))
	}
	it := c.Iter()
	for i, want := range pts {
		if !it.Next() {
			t.Fatalf("decode stopped at sample %d/%d: %v", i, len(pts), it.Err())
		}
		got := it.At()
		if got.T != want.T {
			t.Fatalf("sample %d: timestamp %d, want %d", i, got.T, want.T)
		}
		if math.Float64bits(got.V) != math.Float64bits(want.V) {
			t.Fatalf("sample %d: value bits %#x, want %#x (%v vs %v)",
				i, math.Float64bits(got.V), math.Float64bits(want.V), got.V, want.V)
		}
	}
	if it.Next() {
		t.Fatalf("decoder yielded more than %d samples", len(pts))
	}
	if it.Err() != nil {
		t.Fatalf("iterator error after clean decode: %v", it.Err())
	}
	return c
}

func TestChunkRoundTripRandomWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for walk := 0; walk < 50; walk++ {
		n := 1 + rng.Intn(400)
		pts := make([]Point, n)
		ts := int64(1.7546e12) + rng.Int63n(1e9)
		v := rng.NormFloat64() * 1000
		for i := range pts {
			// Scrape-like cadence with jitter, occasionally a big gap.
			ts += 250 + rng.Int63n(20) - 10
			if rng.Intn(50) == 0 {
				ts += rng.Int63n(1e7)
			}
			v += rng.NormFloat64()
			pts[i] = Point{T: ts, V: v}
		}
		roundTrip(t, pts)
	}
}

func TestChunkRoundTripConstantSeries(t *testing.T) {
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = Point{T: int64(1000 + 250*i), V: 3.25}
	}
	c := roundTrip(t, pts)
	// A constant series at a constant cadence costs 2 bits/sample after the
	// 16-byte header and the second sample's 13-bit delta bootstrap: the
	// compression the retention math banks on.
	if got, max := len(c.Bytes()), 16+(13+(len(pts)-2)*2+7)/8; got > max {
		t.Fatalf("constant series used %d bytes for %d samples, want ≤ %d", got, len(pts), max)
	}
}

func TestChunkRoundTripNaNInf(t *testing.T) {
	nanPayload := math.Float64frombits(0x7ff8000000000123) // non-default NaN payload
	pts := []Point{
		{T: 1000, V: math.NaN()},
		{T: 1250, V: math.Inf(1)},
		{T: 1500, V: math.Inf(-1)},
		{T: 1750, V: nanPayload},
		{T: 2000, V: 0},
		{T: 2250, V: math.Copysign(0, -1)}, // -0 must stay -0
		{T: 2500, V: math.MaxFloat64},
		{T: 2750, V: math.SmallestNonzeroFloat64},
	}
	roundTrip(t, pts)
}

func TestChunkRoundTripExtremeTimestamps(t *testing.T) {
	pts := []Point{
		{T: 0, V: 1},
		{T: 1, V: 2},
		{T: 1 << 40, V: 3},     // dod far outside every bucket
		{T: 1<<40 + 1, V: 4},   // large negative dod
		{T: 1<<40 + 300, V: 5}, // mid-bucket dod
	}
	roundTrip(t, pts)
}

func TestChunkDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, 257)
	ts := int64(1e12)
	for i := range pts {
		ts += 250 + rng.Int63n(7)
		pts[i] = Point{T: ts, V: rng.Float64() * float64(rng.Intn(1000))}
	}
	a, b := NewChunk(), NewChunk()
	for _, p := range pts {
		a.Append(p.T, p.V)
	}
	for _, p := range pts {
		b.Append(p.T, p.V)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical sample streams produced different chunk bytes (%d vs %d)",
			len(a.Bytes()), len(b.Bytes()))
	}
	if a.Count() != b.Count() || a.MinT() != b.MinT() || a.MaxT() != b.MaxT() {
		t.Fatalf("identical sample streams produced different chunk metadata")
	}
}

func TestChunkIterSnapshotSurvivesAppends(t *testing.T) {
	c := NewChunk()
	c.Append(1000, 1)
	c.Append(1250, 2)
	it := c.Iter()
	c.Append(1500, 3) // must not corrupt the snapshot iterator
	var got []Point
	for it.Next() {
		got = append(got, it.At())
	}
	if it.Err() != nil {
		t.Fatalf("iterator error: %v", it.Err())
	}
	if len(got) != 2 || got[0] != (Point{1000, 1}) || got[1] != (Point{1250, 2}) {
		t.Fatalf("snapshot iterator saw %v", got)
	}
}

func TestChunkTruncatedStreamFailsCleanly(t *testing.T) {
	c := NewChunk()
	for i := 0; i < 100; i++ {
		c.Append(int64(1000+250*i), float64(i)*1.5)
	}
	// A reader over a truncated copy must error out, not decode garbage
	// silently or run past the buffer.
	trunc := append([]byte(nil), c.Bytes()[:len(c.Bytes())/2]...)
	it := &ChunkIter{r: *newBReader(trunc), remain: c.Count()}
	n := 0
	for it.Next() {
		n++
	}
	if it.Err() == nil {
		t.Fatalf("truncated stream decoded %d samples without error", n)
	}
}
