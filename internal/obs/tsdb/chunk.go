// Package tsdb is a zero-dependency in-memory time-series store for the
// observability layer: Gorilla-style compressed chunks (delta-of-delta
// timestamps, XOR-encoded float values) appended per series, bounded
// retention with oldest-chunk eviction, an optional downsampled tier, a
// range-query engine with step aggregation, and an alert evaluator with
// threshold / rate / absence rules and a firing / pending / resolved state
// machine. The System Director folds every federated metrics snapshot into
// one Store per scrape tick and serves it as /query, /dash, and /alerts.
//
// Encoding is a pure function of the appended (timestamp, value) stream, so
// identical streams yield byte-identical chunks — the determinism contract
// the rest of the system keeps for its artifacts.
package tsdb

import (
	"fmt"
	"math"
	"math/bits"
)

// f64bits and f64from convert between float64 values and their IEEE-754 bit
// patterns; the codec works on bits so every pattern (NaN payloads included)
// survives a round trip exactly.
func f64bits(v float64) uint64 { return math.Float64bits(v) }
func f64from(b uint64) float64 { return math.Float64frombits(b) }

// Point is one sample: a millisecond Unix timestamp and a value.
type Point struct {
	T int64
	V float64
}

// Chunk is one append-only compressed run of samples from a single series.
//
// Bit layout (MSB-first; no byte alignment between fields):
//
//	sample 0:  ts int64 (64 bits raw)   value float64 (64 bits raw)
//	sample n:  dod bucket + value XOR
//
// where dod = (tₙ-tₙ₋₁) - (tₙ₋₁-tₙ₋₂) is encoded as
//
//	0                                  dod == 0
//	10  + 7  bits (dod+63)             dod ∈ [-63, 64]
//	110 + 9  bits (dod+255)            dod ∈ [-255, 256]
//	1110 + 12 bits (dod+2047)          dod ∈ [-2047, 2048]
//	1111 + 64 bits raw                 otherwise
//
// and the value's XOR with its predecessor as
//
//	0                                  xor == 0
//	10  + meaningful bits              window (leading, sigbits) reused
//	11  + 5 bits leading + 6 bits (sigbits-1) + sigbits meaningful bits
//
// Leading-zero counts are clamped to 31 so they fit 5 bits. All 2^64 value
// bit patterns round-trip exactly, NaN and ±Inf included.
type Chunk struct {
	b     bstream
	count int
	minT  int64
	maxT  int64

	prevT     int64
	prevDelta int64
	prevV     uint64
	// leading/sigbits describe the previous XOR window; sigbits == 0 marks
	// "no window yet" (the first XOR always writes an explicit window).
	leading uint
	sigbits uint
}

// NewChunk creates an empty chunk.
func NewChunk() *Chunk { return &Chunk{} }

// Count returns how many samples the chunk holds.
func (c *Chunk) Count() int { return c.count }

// MinT and MaxT bound the chunk's timestamps (undefined when empty).
func (c *Chunk) MinT() int64 { return c.minT }

// MaxT returns the newest timestamp in the chunk.
func (c *Chunk) MaxT() int64 { return c.maxT }

// Bytes returns the encoded stream (the final byte zero-padded). The slice
// aliases the chunk's buffer; treat it as read-only.
func (c *Chunk) Bytes() []byte { return c.b.data }

// Append adds one sample. Timestamps must be strictly increasing within a
// chunk; the Store enforces this per series.
func (c *Chunk) Append(t int64, v float64) {
	vb := f64bits(v)
	if c.count == 0 {
		c.b.writeBits(uint64(t), 64)
		c.b.writeBits(vb, 64)
		c.minT = t
	} else {
		delta := t - c.prevT
		dod := delta - c.prevDelta
		switch {
		case dod == 0:
			c.b.writeBit(0)
		case dod >= -63 && dod <= 64:
			c.b.writeBits(0b10, 2)
			c.b.writeBits(uint64(dod+63), 7)
		case dod >= -255 && dod <= 256:
			c.b.writeBits(0b110, 3)
			c.b.writeBits(uint64(dod+255), 9)
		case dod >= -2047 && dod <= 2048:
			c.b.writeBits(0b1110, 4)
			c.b.writeBits(uint64(dod+2047), 12)
		default:
			c.b.writeBits(0b1111, 4)
			c.b.writeBits(uint64(dod), 64)
		}
		c.prevDelta = delta

		xor := c.prevV ^ vb
		if xor == 0 {
			c.b.writeBit(0)
		} else {
			c.b.writeBit(1)
			leading := uint(bits.LeadingZeros64(xor))
			if leading > 31 {
				leading = 31
			}
			trailing := uint(bits.TrailingZeros64(xor))
			sig := 64 - leading - trailing
			if c.sigbits != 0 && leading >= c.leading && 64-leading-trailing <= c.sigbits &&
				trailing >= 64-c.leading-c.sigbits {
				// The previous window still covers every meaningful bit.
				c.b.writeBit(0)
				c.b.writeBits(xor>>(64-c.leading-c.sigbits), c.sigbits)
			} else {
				c.b.writeBit(1)
				c.b.writeBits(uint64(leading), 5)
				c.b.writeBits(uint64(sig-1), 6)
				c.b.writeBits(xor>>trailing, sig)
				c.leading, c.sigbits = leading, sig
			}
		}
	}
	c.prevT = t
	c.prevV = vb
	c.maxT = t
	c.count++
}

// Iter returns an iterator over the chunk's samples in append order. The
// iterator reads a snapshot of the byte stream, so it stays valid while the
// chunk keeps growing.
func (c *Chunk) Iter() *ChunkIter {
	return &ChunkIter{r: *newBReader(c.b.clone()), remain: c.count}
}

// ChunkIter decodes a chunk sample by sample.
type ChunkIter struct {
	r      breader
	remain int
	first  bool

	t     int64
	delta int64
	v     uint64

	leading uint
	sigbits uint

	err error
}

// Next advances to the next sample, reporting false at the end or on a
// corrupt stream (see Err).
func (it *ChunkIter) Next() bool {
	if it.err != nil || it.remain == 0 {
		return false
	}
	it.remain--
	if !it.first {
		it.first = true
		ts, err := it.r.readBits(64)
		if err != nil {
			it.err = err
			return false
		}
		vb, err := it.r.readBits(64)
		if err != nil {
			it.err = err
			return false
		}
		it.t, it.v = int64(ts), vb
		return true
	}

	dod, err := it.readDoD()
	if err != nil {
		it.err = err
		return false
	}
	it.delta += dod
	it.t += it.delta

	bit, err := it.r.readBit()
	if err != nil {
		it.err = err
		return false
	}
	if bit == 1 {
		ctrl, err := it.r.readBit()
		if err != nil {
			it.err = err
			return false
		}
		if ctrl == 1 {
			lead, err := it.r.readBits(5)
			if err != nil {
				it.err = err
				return false
			}
			sig, err := it.r.readBits(6)
			if err != nil {
				it.err = err
				return false
			}
			it.leading, it.sigbits = uint(lead), uint(sig)+1
		} else if it.sigbits == 0 {
			it.err = fmt.Errorf("tsdb: XOR window reuse before any window")
			return false
		}
		win, err := it.r.readBits(it.sigbits)
		if err != nil {
			it.err = err
			return false
		}
		it.v ^= win << (64 - it.leading - it.sigbits)
	}
	return true
}

// readDoD decodes one delta-of-delta field.
func (it *ChunkIter) readDoD() (int64, error) {
	// Count leading 1-bits of the bucket selector (at most four).
	var ones uint
	for ones < 4 {
		b, err := it.r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			break
		}
		ones++
	}
	switch ones {
	case 0:
		return 0, nil
	case 1:
		v, err := it.r.readBits(7)
		return int64(v) - 63, err
	case 2:
		v, err := it.r.readBits(9)
		return int64(v) - 255, err
	case 3:
		v, err := it.r.readBits(12)
		return int64(v) - 2047, err
	default:
		v, err := it.r.readBits(64)
		return int64(v), err
	}
}

// At returns the current sample.
func (it *ChunkIter) At() Point { return Point{T: it.t, V: f64from(it.v)} }

// Err reports a decoding failure (nil on clean exhaustion).
func (it *ChunkIter) Err() error { return it.err }
