package tsdb

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Options tunes a Store.
type Options struct {
	// Retention bounds how far back raw samples are kept; closed chunks
	// whose newest sample falls behind the horizon are evicted on append
	// (0 = 15 minutes).
	Retention time.Duration
	// MaxSamplesPerChunk closes the head chunk after this many samples
	// (0 = 240).
	MaxSamplesPerChunk int
	// Downsample, when > 0, keeps an averaged lower-resolution tier: samples
	// from evicted raw chunks are folded into one point per Downsample
	// window, retained for DownsampleRetention.
	Downsample time.Duration
	// DownsampleRetention bounds the downsampled tier (0 = 4× Retention).
	DownsampleRetention time.Duration
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Retention <= 0 {
		o.Retention = 15 * time.Minute
	}
	if o.MaxSamplesPerChunk <= 0 {
		o.MaxSamplesPerChunk = 240
	}
	if o.Downsample > 0 && o.DownsampleRetention <= 0 {
		o.DownsampleRetention = 4 * o.Retention
	}
	return o
}

// dsAcc accumulates one in-progress downsample window for a series.
type dsAcc struct {
	bucket int64 // window index (t / resolution)
	sum    float64
	count  int64
}

// series is one named sample stream: closed chunks oldest-first plus the
// growing head.
type series struct {
	name   string
	chunks []*Chunk
	head   *Chunk
	lastT  int64
	acc    dsAcc
}

// retained returns sample and byte totals across the series' chunks.
func (s *series) retained() (samples int, bytes int) {
	for _, c := range s.chunks {
		samples += c.Count()
		bytes += len(c.Bytes())
	}
	if s.head != nil {
		samples += s.head.Count()
		bytes += len(s.head.Bytes())
	}
	return samples, bytes
}

// Store holds many compressed series under one lock. Appends, queries, and
// stat snapshots are safe for concurrent use; the scrape loop is the single
// writer in practice.
type Store struct {
	opts Options

	mu      sync.Mutex
	series  map[string]*series
	tier    *Store // downsampled tier (nil when disabled); has no tier itself
	dropped int64  // out-of-order / duplicate-timestamp samples discarded
}

// NewStore creates a store.
func NewStore(opts Options) *Store {
	st := &Store{opts: opts.withDefaults(), series: map[string]*series{}}
	if st.opts.Downsample > 0 {
		st.tier = &Store{
			opts: Options{
				Retention:          st.opts.DownsampleRetention,
				MaxSamplesPerChunk: st.opts.MaxSamplesPerChunk,
			}.withDefaults(),
			series: map[string]*series{},
		}
	}
	return st
}

// Append adds one sample to the named series at the given Unix-millisecond
// timestamp. Samples at or before the series' newest timestamp are dropped
// (appends must be monotone per series; the scrape loop's ticks are).
func (st *Store) Append(name string, tMillis int64, v float64) {
	st.mu.Lock()
	st.appendLocked(name, tMillis, v)
	st.mu.Unlock()
}

// AppendSet folds one snapshot (e.g. obs.Federation.Snapshot) into the
// store at a single timestamp, evicting chunks that fell behind the
// retention horizon.
func (st *Store) AppendSet(tMillis int64, samples []obs.Sample) {
	st.mu.Lock()
	for _, s := range samples {
		st.appendLocked(s.Name, tMillis, s.Value)
	}
	st.mu.Unlock()
}

// appendLocked is Append with st.mu held.
func (st *Store) appendLocked(name string, t int64, v float64) {
	s, ok := st.series[name]
	if !ok {
		s = &series{name: name, acc: dsAcc{bucket: -1}}
		st.series[name] = s
	}
	if s.head == nil {
		s.head = NewChunk()
	}
	if s.head.Count() > 0 || len(s.chunks) > 0 {
		if t <= s.lastT {
			st.dropped++
			return
		}
	}
	if s.head.Count() >= st.opts.MaxSamplesPerChunk {
		s.chunks = append(s.chunks, s.head)
		s.head = NewChunk()
	}
	s.head.Append(t, v)
	s.lastT = t
	st.evictLocked(s, t)
}

// evictLocked drops closed chunks whose newest sample is older than the
// retention horizon relative to now, folding them into the downsampled tier
// first when one is configured.
func (st *Store) evictLocked(s *series, nowMillis int64) {
	horizon := nowMillis - st.opts.Retention.Milliseconds()
	n := 0
	for _, c := range s.chunks {
		if c.MaxT() >= horizon {
			break
		}
		if st.tier != nil {
			st.downsampleLocked(s, c)
		}
		n++
	}
	if n > 0 {
		s.chunks = append(s.chunks[:0], s.chunks[n:]...)
	}
}

// downsampleLocked folds one evicted chunk into the tier: per-window
// averages at the configured resolution, flushed when the stream crosses a
// window boundary (the partial tail window stays in the series accumulator
// until a later eviction completes it).
func (st *Store) downsampleLocked(s *series, c *Chunk) {
	res := st.opts.Downsample.Milliseconds()
	it := c.Iter()
	for it.Next() {
		p := it.At()
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			continue
		}
		b := p.T / res
		if b != s.acc.bucket {
			st.flushAccLocked(s)
			s.acc.bucket = b
		}
		s.acc.sum += p.V
		s.acc.count++
	}
}

// flushAccLocked writes the finished downsample window (if any) into the
// tier, stamped at the window's end.
func (st *Store) flushAccLocked(s *series) {
	if s.acc.count > 0 {
		res := st.opts.Downsample.Milliseconds()
		st.tier.Append(s.name, (s.acc.bucket+1)*res, s.acc.sum/float64(s.acc.count))
	}
	s.acc = dsAcc{bucket: -1}
}

// SeriesNames returns every retained series name, sorted.
func (st *Store) SeriesNames() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.series))
	for name := range st.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Range returns the series' samples with start < T ≤ end in time order,
// serving older ground from the downsampled tier when the raw window no
// longer reaches back far enough.
func (st *Store) Range(name string, startMillis, endMillis int64) []Point {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.series[name]
	var raw []Point
	if ok {
		chunks := s.chunks
		if s.head != nil && s.head.Count() > 0 {
			chunks = append(append([]*Chunk(nil), s.chunks...), s.head)
		}
		for _, c := range chunks {
			if c.MaxT() <= startMillis || c.MinT() > endMillis {
				continue
			}
			it := c.Iter()
			for it.Next() {
				p := it.At()
				if p.T > startMillis && p.T <= endMillis {
					raw = append(raw, p)
				}
			}
		}
	}
	if st.tier == nil {
		return raw
	}
	// The tier covers ground the raw window has already evicted.
	cut := endMillis
	if len(raw) > 0 {
		cut = raw[0].T - 1
	}
	old := st.tier.Range(name, startMillis, cut)
	return append(old, raw...)
}

// Stats summarizes the store's retained state.
type Stats struct {
	Series         int     `json:"series"`
	Samples        int     `json:"samples"`
	Bytes          int     `json:"bytes"`
	BytesPerSample float64 `json:"bytes_per_sample"`
	Dropped        int64   `json:"dropped"`
	TierSamples    int     `json:"tier_samples,omitempty"`
}

// Stats returns retained series/sample/byte totals; BytesPerSample is the
// store-wide compression ratio (0 when empty).
func (st *Store) Stats() Stats {
	st.mu.Lock()
	out := Stats{Series: len(st.series), Dropped: st.dropped}
	for _, s := range st.series {
		n, b := s.retained()
		out.Samples += n
		out.Bytes += b
	}
	st.mu.Unlock()
	if out.Samples > 0 {
		out.BytesPerSample = float64(out.Bytes) / float64(out.Samples)
	}
	if st.tier != nil {
		out.TierSamples = st.tier.Stats().Samples
	}
	return out
}
