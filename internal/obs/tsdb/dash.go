package tsdb

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// dashPanel is one dashboard sparkline: a query the page polls and renders.
type dashPanel struct {
	Title string
	Query string
	Agg   string
	// Scale multiplies every value client-side (words → bytes).
	Scale float64
	// Unit is the axis annotation.
	Unit string
}

// dashPanels is the cluster dashboard's fixed panel set. Every query runs
// against the Director's federated TSDB, so per-node series fan out into
// one polyline each.
var dashPanels = []dashPanel{
	{Title: "round latency p50", Query: "cosmic_round_seconds", Agg: "p50", Unit: "s"},
	{Title: "round latency p95", Query: "cosmic_round_seconds", Agg: "p95", Unit: "s"},
	{Title: "bytes sent per node", Query: "cosmic_node_tx_payload_words_total", Agg: "rate", Scale: 8, Unit: "B/s"},
	{Title: "sigma pipeline depth", Query: "cosmic_sigma_pipeline_depth", Agg: "max", Unit: "chunks"},
	{Title: "straggler flags", Query: "cosmic_cluster_straggler", Agg: "max", Unit: "0/1"},
	{Title: "alerts firing", Query: "cosmic_alert_firing", Agg: "last", Unit: "count"},
	{Title: "heap bytes", Query: "cosmic_go_heap_bytes", Agg: "last", Unit: "B"},
	{Title: "goroutines", Query: "cosmic_go_goroutines", Agg: "last", Unit: "count"},
}

var (
	dashOnce sync.Once
	dashPage []byte
)

// DashHandler serves the live cluster dashboard: one self-contained HTML
// page (inline CSS/JS/SVG, no external assets) that refreshes its
// sparklines from the sibling /query endpoint every two seconds.
func DashHandler() http.Handler {
	dashOnce.Do(func() { dashPage = []byte(renderDash(dashPanels)) })
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(dashPage) //nolint:errcheck // best-effort HTTP write
	})
}

// renderDash builds the page: a server-rendered <svg> skeleton per panel
// (so the document is meaningful markup before any script runs) plus the
// polling script. Panel metadata is embedded as data- attributes, keeping
// the panel list single-sourced in Go.
func renderDash(panels []dashPanel) string {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>CoSMIC cluster dashboard</title>
<style>
  body { font: 13px/1.4 system-ui, sans-serif; margin: 1.2em; background: #101418; color: #d8dee6; }
  h1 { font-size: 1.1em; font-weight: 600; margin: 0 0 .2em; }
  #meta { color: #7c8894; margin-bottom: 1em; }
  #grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(320px, 1fr)); gap: 12px; }
  .panel { background: #171d24; border: 1px solid #242c36; border-radius: 6px; padding: 8px 10px; }
  .panel h2 { font-size: .85em; font-weight: 600; margin: 0 0 4px; color: #aeb9c4; }
  .panel .now { float: right; color: #6fd18c; font-variant-numeric: tabular-nums; }
  svg { width: 100%; height: 90px; display: block; }
  .axis { stroke: #242c36; stroke-width: 1; }
  .legend { font-size: .75em; color: #7c8894; margin-top: 2px; min-height: 1.2em; }
  .err { color: #e07a7a; }
</style>
</head>
<body>
<h1>CoSMIC cluster dashboard</h1>
<div id="meta">live range queries over the Director&#39;s in-memory TSDB (/query) &middot; window 2m &middot; refresh 2s</div>
<div id="grid">
`)
	for i, p := range panels {
		fmt.Fprintf(&b, `<div class="panel" data-q="%s" data-agg="%s" data-scale="%g" data-unit="%s">
<h2>%s <span class="now" id="now%d">&ndash;</span></h2>
<svg id="svg%d" viewBox="0 0 300 90" preserveAspectRatio="none"><line class="axis" x1="0" y1="89" x2="300" y2="89"/></svg>
<div class="legend" id="leg%d"></div>
</div>
`, p.Query, p.Agg, scaleOr1(p.Scale), p.Unit, p.Title, i, i, i)
	}
	b.WriteString(`</div>
<script>
const COLORS = ["#6fd18c","#6fa8dc","#e0b76f","#d98cc4","#8ce0dd","#e07a7a","#b3a1e6","#a0c46f"];
const panels = Array.from(document.querySelectorAll('.panel'));
function fmtVal(v, unit) {
  if (v == null || typeof v === 'string') return String(v);
  const a = Math.abs(v);
  let s;
  if (a >= 1e9) s = (v/1e9).toFixed(2) + 'G';
  else if (a >= 1e6) s = (v/1e6).toFixed(2) + 'M';
  else if (a >= 1e3) s = (v/1e3).toFixed(2) + 'k';
  else if (a >= 1 || a === 0) s = v.toFixed(2);
  else s = v.toPrecision(3);
  return s + (unit ? ' ' + unit : '');
}
function draw(i, panel, doc) {
  const svg = document.getElementById('svg'+i);
  const leg = document.getElementById('leg'+i);
  const now = document.getElementById('now'+i);
  const scale = parseFloat(panel.dataset.scale) || 1;
  const series = doc.series || [];
  let lo = Infinity, hi = -Infinity, lastVal = null;
  const lines = series.map(s => s.points
    .filter(p => p[1] !== null && typeof p[1] === 'number')
    .map(p => [p[0], p[1]*scale]));
  for (const pts of lines) for (const [, v] of pts) { lo = Math.min(lo, v); hi = Math.max(hi, v); }
  if (!isFinite(lo)) { leg.textContent = 'no data yet'; return; }
  if (hi === lo) { hi = lo + 1; }
  const t0 = doc.start_ms, t1 = doc.end_ms;
  let html = '<line class="axis" x1="0" y1="89" x2="300" y2="89"/>';
  lines.forEach((pts, si) => {
    if (!pts.length) return;
    const d = pts.map(([t, v]) =>
      ((t - t0)/(t1 - t0)*300).toFixed(1) + ',' + (85 - (v - lo)/(hi - lo)*78).toFixed(1)).join(' ');
    html += '<polyline fill="none" stroke-width="1.5" stroke="' + COLORS[si % COLORS.length] + '" points="' + d + '"/>';
    lastVal = pts[pts.length-1][1];
  });
  svg.innerHTML = html;
  now.textContent = fmtVal(lastVal, panel.dataset.unit);
  leg.innerHTML = series.map((s, si) =>
    '<span style="color:' + COLORS[si % COLORS.length] + '">&#9644;</span> ' +
    s.name.replace(/&/g,'&amp;').replace(/</g,'&lt;')).join(' &nbsp; ') +
    ' &nbsp; <span>[' + fmtVal(lo, '') + ' .. ' + fmtVal(hi, '') + ']</span>';
}
async function tick() {
  for (let i = 0; i < panels.length; i++) {
    const p = panels[i];
    const url = '/query?q=' + encodeURIComponent(p.dataset.q) +
      '&agg=' + encodeURIComponent(p.dataset.agg) + '&start=-120s&step=2s';
    try {
      const resp = await fetch(url);
      if (!resp.ok) throw new Error('HTTP ' + resp.status);
      draw(i, p, await resp.json());
    } catch (e) {
      document.getElementById('leg'+i).innerHTML = '<span class="err">' + String(e) + '</span>';
    }
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`)
	return b.String()
}

// scaleOr1 defaults a zero scale to the identity.
func scaleOr1(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}
