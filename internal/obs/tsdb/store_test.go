package tsdb

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func TestStoreRangeAndOutOfOrderDrop(t *testing.T) {
	st := NewStore(Options{Retention: time.Hour})
	st.Append("m", 1000, 1)
	st.Append("m", 2000, 2)
	st.Append("m", 2000, 99) // duplicate timestamp: dropped
	st.Append("m", 1500, 99) // out of order: dropped
	st.Append("m", 3000, 3)
	pts := st.Range("m", 0, 10000)
	want := []Point{{1000, 1}, {2000, 2}, {3000, 3}}
	if len(pts) != len(want) {
		t.Fatalf("got %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("got %v, want %v", pts, want)
		}
	}
	if got := st.Stats().Dropped; got != 2 {
		t.Fatalf("dropped %d, want 2", got)
	}
	// Range bounds are (start, end].
	if pts := st.Range("m", 1000, 2000); len(pts) != 1 || pts[0] != (Point{2000, 2}) {
		t.Fatalf("half-open range returned %v", pts)
	}
}

func TestStoreEvictionUnderRetention(t *testing.T) {
	st := NewStore(Options{Retention: 10 * time.Second, MaxSamplesPerChunk: 10})
	// 600 samples at 1s cadence: far beyond the 10s retention.
	for i := 0; i < 600; i++ {
		st.Append("m", int64(1000*i), float64(i))
	}
	now := int64(1000 * 599)
	pts := st.Range("m", 0, now)
	if len(pts) == 0 {
		t.Fatal("no samples retained")
	}
	// Everything inside the horizon must still be there…
	horizon := now - (10 * time.Second).Milliseconds()
	for _, p := range pts {
		if p.T < horizon-10*1000*2 { // chunks evict whole: allow up to 2 chunk-widths of slack
			t.Fatalf("sample at %d survived far past the %d horizon", p.T, horizon)
		}
	}
	var inWindow int
	for _, p := range pts {
		if p.T > horizon {
			inWindow++
		}
	}
	if inWindow < 10 {
		t.Fatalf("only %d in-window samples retained", inWindow)
	}
	// …and the store must actually have shed chunks.
	if s := st.Stats(); s.Samples > 40 {
		t.Fatalf("retention kept %d samples of 600", s.Samples)
	}
}

func TestStoreDownsampledTier(t *testing.T) {
	st := NewStore(Options{
		Retention:          10 * time.Second,
		MaxSamplesPerChunk: 10,
		Downsample:         5 * time.Second,
	})
	for i := 0; i < 600; i++ {
		st.Append("m", int64(1000*i), float64(i))
	}
	stats := st.Stats()
	if stats.TierSamples == 0 {
		t.Fatal("eviction never fed the downsampled tier")
	}
	// A query reaching far behind raw retention answers from the tier.
	pts := st.Range("m", 0, 599000)
	var old int
	for _, p := range pts {
		if p.T < 580000 {
			old++
		}
	}
	if old == 0 {
		t.Fatalf("range over evicted ground returned no tier samples (got %d total)", len(pts))
	}
	// Tier values are window averages of the linear ramp: every tier sample
	// flushed at the end of window [w, w+5s) averages values w/1000..w/1000+4,
	// i.e. w/1000 + 2. (The tier has its own retention, so the very oldest
	// windows are gone too — check whichever survived.)
	checked := 0
	for _, p := range pts {
		if p.T%5000 == 0 && p.T < 580000 {
			if want := float64(p.T/1000-5) + 2; p.V != want {
				t.Fatalf("tier window ending %d averaged to %v, want %v", p.T, p.V, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("no tier samples to verify; got %v", pts[:min(10, len(pts))])
	}
}

func TestStoreAppendSetAndStats(t *testing.T) {
	st := NewStore(Options{})
	st.AppendSet(1000, []obs.Sample{{Name: "a", Value: 1}, {Name: "b", Value: 2}})
	st.AppendSet(2000, []obs.Sample{{Name: "a", Value: 3}, {Name: "b", Value: 4}})
	names := st.SeriesNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("series %v", names)
	}
	s := st.Stats()
	if s.Series != 2 || s.Samples != 4 {
		t.Fatalf("stats %+v", s)
	}
	if s.BytesPerSample <= 0 {
		t.Fatalf("bytes/sample %v", s.BytesPerSample)
	}
}

// TestStoreScrapeStreamCompression pins the acceptance bound the CI smoke
// asserts live: a realistic scrape stream (steady timestamps, counters and
// near-constant gauges) compresses to ≤ 4 bytes/sample once chunks fill.
func TestStoreScrapeStreamCompression(t *testing.T) {
	st := NewStore(Options{Retention: time.Hour})
	names := []string{"rounds_total", "tx_words_total", "heap_bytes", "pipeline_depth"}
	for i := 0; i < 2000; i++ {
		t_ := int64(1.7e12) + int64(250*i)
		st.AppendSet(t_, []obs.Sample{
			{Name: names[0], Value: float64(i * 3)},
			{Name: names[1], Value: float64(i * 4096)},
			{Name: names[2], Value: float64(5e6 + 1000*(i%7))},
			{Name: names[3], Value: float64(i % 4)},
		})
	}
	s := st.Stats()
	if s.BytesPerSample > 4 {
		t.Fatalf("scrape-like stream compressed to %.2f bytes/sample, want ≤ 4", s.BytesPerSample)
	}
}
