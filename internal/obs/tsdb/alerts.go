package tsdb

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Duration is a time.Duration that (un)marshals as a Go duration string
// ("30s", "1m"), so alert-rule files stay human-editable.
type Duration time.Duration

// UnmarshalJSON accepts "30s"-style strings or raw nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// MarshalJSON emits the duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Rule kinds.
const (
	KindThreshold = "threshold" // a series' latest value crosses Value
	KindRate      = "rate"      // a counter's per-second increase crosses Value
	KindAbsence   = "absence"   // a series stopped reporting for Window
)

// Rule is one alert rule, declarable in Go or in the -alerts JSON file: an
// array of these objects. Example:
//
//	[{"name": "straggling-node", "expr": "cosmic_cluster_straggler",
//	  "kind": "threshold", "op": ">", "value": 0, "for": "2s"}]
type Rule struct {
	// Name identifies the alert in /alerts, logs, and the
	// cosmic_alert_firing{alert=...} gauge.
	Name string `json:"name"`
	// Expr selects the series the rule watches (metric base name plus
	// optional {label="value"} matchers). Each matched series gets its own
	// state machine.
	Expr string `json:"expr"`
	// Kind is threshold, rate, or absence.
	Kind string `json:"kind"`
	// Op compares the observed value against Value: >, >=, <, <= (default
	// >). Ignored for absence rules.
	Op string `json:"op,omitempty"`
	// Value is the comparison bound. Ignored for absence rules.
	Value float64 `json:"value,omitempty"`
	// Window is the evaluation lookback: staleness bound for threshold,
	// rate window for rate, silence bound for absence (default 15s).
	Window Duration `json:"window,omitempty"`
	// For keeps a rule pending until its condition has held this long
	// (default 0: fire on the first true evaluation).
	For Duration `json:"for,omitempty"`
}

// Validate fills defaults and rejects nonsense.
func (r *Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("tsdb: alert rule without a name")
	}
	if _, err := ParseSelector(r.Expr); err != nil {
		return fmt.Errorf("tsdb: alert %q: %v", r.Name, err)
	}
	switch r.Kind {
	case KindThreshold, KindRate, KindAbsence:
	case "":
		r.Kind = KindThreshold
	default:
		return fmt.Errorf("tsdb: alert %q: unknown kind %q", r.Name, r.Kind)
	}
	switch r.Op {
	case ">", ">=", "<", "<=":
	case "":
		r.Op = ">"
	default:
		return fmt.Errorf("tsdb: alert %q: unknown op %q", r.Name, r.Op)
	}
	if r.Window <= 0 {
		r.Window = Duration(15 * time.Second)
	}
	return nil
}

// LoadRulesFile reads a JSON array of rules.
func LoadRulesFile(path string) ([]Rule, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rules []Rule
	if err := json.Unmarshal(blob, &rules); err != nil {
		return nil, fmt.Errorf("tsdb: alerts file %s: %v", path, err)
	}
	for i := range rules {
		if err := rules[i].Validate(); err != nil {
			return nil, err
		}
	}
	return rules, nil
}

// Alert states.
const (
	StateInactive = "inactive"
	StatePending  = "pending"
	StateFiring   = "firing"
)

// instance is one (rule, series) state machine.
type instance struct {
	state       string
	activeSince int64 // ms when the condition most recently became true
	firedAt     int64
	value       float64
	lastTrue    bool
}

// AlertStatus is one instance's externally visible state.
type AlertStatus struct {
	Name          string  `json:"name"`
	Series        string  `json:"series"`
	State         string  `json:"state"`
	Value         float64 `json:"value"`
	ActiveSinceMS int64   `json:"active_since_ms,omitempty"`
	FiredAtMS     int64   `json:"fired_at_ms,omitempty"`
}

// Evaluator runs alert rules against a Store once per scrape tick,
// advancing each (rule, series) instance through inactive → pending →
// firing and back. Transitions surface four ways: the
// cosmic_alert_firing{alert=...} gauge, slog warnings, a flight-recorder
// mark (so alert context lands in cosmic-diag-* bundles), and the /alerts
// JSON handler.
type Evaluator struct {
	rules  []Rule
	reg    *obs.Registry
	logger *slog.Logger

	mu      sync.Mutex
	flight  *obs.FlightRecorder
	insts   map[string]map[string]*instance // rule name → series → state
	lastEMS int64
}

// NewEvaluator builds an evaluator. reg (nilable) receives the firing
// gauges, logger (nilable) the transition warnings, flight (nilable) the
// transition marks.
func NewEvaluator(rules []Rule, reg *obs.Registry, logger *slog.Logger, flight *obs.FlightRecorder) (*Evaluator, error) {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	e := &Evaluator{
		rules:  append([]Rule(nil), rules...),
		reg:    reg,
		logger: logger,
		flight: flight,
		insts:  map[string]map[string]*instance{},
	}
	for i := range e.rules {
		if err := e.rules[i].Validate(); err != nil {
			return nil, err
		}
		if _, dup := e.insts[e.rules[i].Name]; dup {
			return nil, fmt.Errorf("tsdb: duplicate alert name %q", e.rules[i].Name)
		}
		e.insts[e.rules[i].Name] = map[string]*instance{}
	}
	return e, nil
}

// SetFlight installs the flight recorder after construction (a worker's
// recorder exists only once the Director has configured the node).
func (e *Evaluator) SetFlight(fr *obs.FlightRecorder) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.flight = fr
	e.mu.Unlock()
}

// Rules returns the evaluator's validated rules.
func (e *Evaluator) Rules() []Rule { return e.rules }

// Eval runs every rule against the store at the given timestamp and
// returns the currently firing instances, sorted by (name, series).
func (e *Evaluator) Eval(st *Store, nowMillis int64) []AlertStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastEMS = nowMillis
	var firing []AlertStatus
	for i := range e.rules {
		rule := &e.rules[i]
		states := e.insts[rule.Name]
		sel, _ := ParseSelector(rule.Expr)
		names := st.Select(sel)
		// Once seen, a series keeps its state machine even after it stops
		// reporting — that persistence is what absence rules alert on.
		for _, name := range names {
			if _, ok := states[name]; !ok {
				states[name] = &instance{state: StateInactive}
			}
		}
		if len(states) == 0 && rule.Kind == KindAbsence {
			// Nothing ever matched: the metric itself is absent.
			states[rule.Expr] = &instance{state: StateInactive}
		}
		keys := make([]string, 0, len(states))
		for name := range states {
			keys = append(keys, name)
		}
		sort.Strings(keys)
		nowFiring := 0
		for _, name := range keys {
			inst := states[name]
			cond, val := e.condition(st, rule, name, nowMillis)
			e.step(rule, name, inst, cond, val, nowMillis)
			if inst.state == StateFiring {
				nowFiring++
				firing = append(firing, e.status(rule.Name, name, inst))
			}
		}
		e.reg.Gauge(obs.Labeled("cosmic_alert_firing", "alert", rule.Name)).Set(float64(nowFiring))
	}
	return firing
}

// condition evaluates one rule against one series, returning whether the
// rule's predicate holds and the observed value.
func (e *Evaluator) condition(st *Store, rule *Rule, series string, nowMillis int64) (bool, float64) {
	window := time.Duration(rule.Window).Milliseconds()
	pts := st.Range(series, nowMillis-window, nowMillis)
	switch rule.Kind {
	case KindAbsence:
		return len(pts) == 0, float64(len(pts))
	case KindThreshold:
		if len(pts) == 0 {
			return false, 0
		}
		v := pts[len(pts)-1].V
		return cmp(v, rule.Op, rule.Value), v
	case KindRate:
		p := reduceWindow("rate", pts, nowMillis)
		if !p.OK {
			return false, 0
		}
		return cmp(p.V, rule.Op, rule.Value), p.V
	}
	return false, 0
}

// cmp applies a comparison operator.
func cmp(v float64, op string, bound float64) bool {
	switch op {
	case ">":
		return v > bound
	case ">=":
		return v >= bound
	case "<":
		return v < bound
	case "<=":
		return v <= bound
	}
	return false
}

// step advances one instance's state machine.
func (e *Evaluator) step(rule *Rule, series string, inst *instance, cond bool, val float64, nowMillis int64) {
	inst.value = val
	switch {
	case cond && !inst.lastTrue:
		inst.activeSince = nowMillis
	case !cond:
		if inst.state == StateFiring {
			e.logger.Info("alert resolved", "alert", rule.Name, "series", series, "value", val)
			e.flight.Record(obs.FlightEvent{Dir: obs.FlightMark, Type: "alert-resolved:" + rule.Name})
		}
		inst.state = StateInactive
		inst.activeSince = 0
		inst.firedAt = 0
	}
	inst.lastTrue = cond
	if !cond {
		return
	}
	if inst.state == StateFiring {
		return
	}
	if nowMillis-inst.activeSince >= time.Duration(rule.For).Milliseconds() {
		inst.state = StateFiring
		inst.firedAt = nowMillis
		e.logger.Warn("alert firing",
			"alert", rule.Name, "series", series, "kind", rule.Kind,
			"op", rule.Op, "bound", rule.Value, "value", val)
		e.flight.Record(obs.FlightEvent{Dir: obs.FlightMark, Type: "alert-firing:" + rule.Name})
	} else {
		inst.state = StatePending
	}
}

// status snapshots one instance.
func (e *Evaluator) status(rule, series string, inst *instance) AlertStatus {
	return AlertStatus{
		Name: rule, Series: series, State: inst.state, Value: inst.value,
		ActiveSinceMS: inst.activeSince, FiredAtMS: inst.firedAt,
	}
}

// AlertsDoc is the /alerts response.
type AlertsDoc struct {
	EvaluatedMS int64         `json:"evaluated_ms"`
	Rules       []AlertsRule  `json:"rules"`
	Firing      []AlertStatus `json:"firing"`
}

// AlertsRule is one rule plus its instances' states.
type AlertsRule struct {
	Rule
	States []AlertStatus `json:"states"`
}

// Snapshot returns the full /alerts document: every rule with every
// instance's state (sorted), plus the flat firing list.
func (e *Evaluator) Snapshot() AlertsDoc {
	e.mu.Lock()
	defer e.mu.Unlock()
	doc := AlertsDoc{EvaluatedMS: e.lastEMS, Firing: []AlertStatus{}}
	for i := range e.rules {
		rule := e.rules[i]
		ar := AlertsRule{Rule: rule, States: []AlertStatus{}}
		states := e.insts[rule.Name]
		keys := make([]string, 0, len(states))
		for name := range states {
			keys = append(keys, name)
		}
		sort.Strings(keys)
		for _, name := range keys {
			stt := e.status(rule.Name, name, states[name])
			ar.States = append(ar.States, stt)
			if stt.State == StateFiring {
				doc.Firing = append(doc.Firing, stt)
			}
		}
		doc.Rules = append(doc.Rules, ar)
	}
	return doc
}

// Handler serves the /alerts JSON document.
func (e *Evaluator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(e.Snapshot()) //nolint:errcheck // best-effort HTTP write
	})
}

// DefaultClusterRules is the Go-declared rule set every Director installs:
// the cluster-health conditions that should page regardless of what the
// operator's -alerts file adds.
func DefaultClusterRules() []Rule {
	return []Rule{
		{
			Name: "node-straggling", Expr: "cosmic_cluster_straggler",
			Kind: KindThreshold, Op: ">", Value: 0,
			Window: Duration(15 * time.Second),
		},
		{
			Name: "scrape-errors", Expr: "cosmic_cluster_scrape_errors_total",
			Kind: KindRate, Op: ">", Value: 0,
			Window: Duration(10 * time.Second), For: Duration(2 * time.Second),
		},
	}
}
