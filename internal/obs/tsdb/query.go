package tsdb

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Selector names the series a query or alert rule reads: a metric base name
// plus label equality matchers. A selector matches every series whose base
// name equals Base and whose label set contains all of Labels.
type Selector struct {
	Base   string
	Labels map[string]string
}

// ParseSelector parses `name` or `name{k="v",k2="v2"}`.
func ParseSelector(s string) (Selector, error) {
	sel := Selector{Labels: map[string]string{}}
	i := strings.IndexByte(s, '{')
	if i < 0 {
		sel.Base = strings.TrimSpace(s)
		if sel.Base == "" {
			return sel, fmt.Errorf("tsdb: empty selector")
		}
		return sel, nil
	}
	sel.Base = strings.TrimSpace(s[:i])
	body := strings.TrimSpace(s[i:])
	if sel.Base == "" || !strings.HasPrefix(body, "{") || !strings.HasSuffix(body, "}") {
		return sel, fmt.Errorf("tsdb: malformed selector %q", s)
	}
	body = body[1 : len(body)-1]
	if strings.TrimSpace(body) == "" {
		return sel, nil
	}
	for _, pair := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return sel, fmt.Errorf("tsdb: malformed matcher %q in %q", pair, s)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return sel, fmt.Errorf("tsdb: matcher value %q in %q must be quoted", v, s)
		}
		sel.Labels[k] = v[1 : len(v)-1]
	}
	return sel, nil
}

// parseSeriesName splits a stored series name into base and labels; it is
// the inverse of obs.Labeled. Label values are assumed not to contain commas
// or quotes (the registry's label vocabulary is node IDs, domains, and
// bucket bounds).
func parseSeriesName(name string) (string, map[string]string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, nil
	}
	base := name[:i]
	body := strings.TrimSuffix(name[i+1:], "}")
	labels := map[string]string{}
	for _, pair := range strings.Split(body, ",") {
		if k, v, ok := strings.Cut(pair, "="); ok {
			labels[k] = strings.Trim(v, `"`)
		}
	}
	return base, labels
}

// matches reports whether the series name satisfies the selector.
func (sel Selector) matches(name string) bool {
	base, labels := parseSeriesName(name)
	if base != sel.Base {
		return false
	}
	for k, want := range sel.Labels {
		if labels[k] != want {
			return false
		}
	}
	return true
}

// Select returns the retained series names matching sel, sorted.
func (st *Store) Select(sel Selector) []string {
	var out []string
	for _, name := range st.SeriesNames() {
		if sel.matches(name) {
			out = append(out, name)
		}
	}
	return out
}

// QueryPoint is one aggregated step: a Unix-millisecond timestamp and the
// window's value (absent when the window held no samples). It marshals as
// [t, v] with null for absent values, so the JSON shape is deterministic.
type QueryPoint struct {
	T  int64
	V  float64
	OK bool
}

// MarshalJSON emits [t, v] or [t, null].
func (p QueryPoint) MarshalJSON() ([]byte, error) {
	if !p.OK {
		return []byte(fmt.Sprintf("[%d,null]", p.T)), nil
	}
	if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
		return []byte(fmt.Sprintf("[%d,%q]", p.T, strconv.FormatFloat(p.V, 'g', -1, 64))), nil
	}
	return []byte(fmt.Sprintf("[%d,%s]", p.T, strconv.FormatFloat(p.V, 'g', -1, 64))), nil
}

// UnmarshalJSON parses the [t, v] form back (v: number, null, or a quoted
// non-finite float).
func (p *QueryPoint) UnmarshalJSON(b []byte) error {
	var raw [2]json.RawMessage
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	if err := json.Unmarshal(raw[0], &p.T); err != nil {
		return err
	}
	if string(raw[1]) == "null" {
		p.V, p.OK = 0, false
		return nil
	}
	if len(raw[1]) > 0 && raw[1][0] == '"' {
		var s string
		if err := json.Unmarshal(raw[1], &s); err != nil {
			return err
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return err
		}
		p.V, p.OK = v, true
		return nil
	}
	if err := json.Unmarshal(raw[1], &p.V); err != nil {
		return err
	}
	p.OK = true
	return nil
}

// QuerySeries is one series of a range-query result.
type QuerySeries struct {
	Name   string       `json:"name"`
	Points []QueryPoint `json:"points"`
}

// QueryResult is the /query response document.
type QueryResult struct {
	Query   string        `json:"query"`
	Agg     string        `json:"agg"`
	StartMS int64         `json:"start_ms"`
	EndMS   int64         `json:"end_ms"`
	StepMS  int64         `json:"step_ms"`
	Series  []QuerySeries `json:"series"`
}

// QueryRange evaluates a range query: the selector's series are aggregated
// into (end-start)/step windows, each window (tᵢ-step, tᵢ] reduced by agg:
//
//	avg, min, max   over the window's samples
//	last            the window's newest sample
//	rate            per-second increase across the window, counter-reset
//	                aware (a drop restarts the accumulation)
//	p50 … p99.9     histogram quantile: selects <base>_bucket series, groups
//	                by the remaining labels, reduces each group's cumulative
//	                bucket counts through obs.Quantile
//
// Series are returned sorted by name; every series carries exactly
// (end-start)/step points, so the JSON shape is deterministic.
func (st *Store) QueryRange(sel Selector, startMillis, endMillis, stepMillis int64, agg string) (*QueryResult, error) {
	if stepMillis <= 0 {
		return nil, fmt.Errorf("tsdb: non-positive step")
	}
	if endMillis <= startMillis {
		return nil, fmt.Errorf("tsdb: empty range [%d, %d]", startMillis, endMillis)
	}
	steps := int((endMillis - startMillis + stepMillis - 1) / stepMillis)
	if steps > 100000 {
		return nil, fmt.Errorf("tsdb: %d steps exceeds the 100000-step cap", steps)
	}
	res := &QueryResult{
		Query: sel.String(), Agg: agg,
		StartMS: startMillis, EndMS: endMillis, StepMS: stepMillis,
	}
	if q, ok := quantileArg(agg); ok {
		series, err := st.quantileRange(sel, startMillis, stepMillis, steps, q)
		if err != nil {
			return nil, err
		}
		res.Series = series
		return res, nil
	}
	for _, name := range st.Select(sel) {
		pts := st.Range(name, startMillis, startMillis+int64(steps)*stepMillis)
		qs := QuerySeries{Name: name, Points: make([]QueryPoint, steps)}
		j := 0
		for i := 0; i < steps; i++ {
			lo := startMillis + int64(i)*stepMillis
			hi := lo + stepMillis
			first := j
			for j < len(pts) && pts[j].T <= hi {
				j++
			}
			qs.Points[i] = reduceWindow(agg, pts[first:j], hi)
		}
		res.Series = append(res.Series, qs)
	}
	return res, nil
}

// String renders the selector back to its query form, labels sorted.
func (sel Selector) String() string {
	if len(sel.Labels) == 0 {
		return sel.Base
	}
	keys := make([]string, 0, len(sel.Labels))
	for k := range sel.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(sel.Base)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, sel.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// reduceWindow folds one window's samples under the given aggregation.
func reduceWindow(agg string, pts []Point, tMillis int64) QueryPoint {
	out := QueryPoint{T: tMillis}
	if len(pts) == 0 {
		return out
	}
	switch agg {
	case "avg", "":
		sum := 0.0
		for _, p := range pts {
			sum += p.V
		}
		out.V, out.OK = sum/float64(len(pts)), true
	case "min":
		m := pts[0].V
		for _, p := range pts[1:] {
			m = math.Min(m, p.V)
		}
		out.V, out.OK = m, true
	case "max":
		m := pts[0].V
		for _, p := range pts[1:] {
			m = math.Max(m, p.V)
		}
		out.V, out.OK = m, true
	case "last":
		out.V, out.OK = pts[len(pts)-1].V, true
	case "rate":
		if len(pts) < 2 {
			return out
		}
		inc := 0.0
		for i := 1; i < len(pts); i++ {
			d := pts[i].V - pts[i-1].V
			if d < 0 {
				// Counter reset: the new value is the increase since zero.
				d = pts[i].V
			}
			inc += d
		}
		secs := float64(pts[len(pts)-1].T-pts[0].T) / 1000
		if secs <= 0 {
			return out
		}
		out.V, out.OK = inc/secs, true
	}
	return out
}

// quantileArg parses a pNN aggregation name ("p50", "p99.9") into a
// quantile in [0, 1].
func quantileArg(agg string) (float64, bool) {
	if len(agg) < 2 || agg[0] != 'p' {
		return 0, false
	}
	pct, err := strconv.ParseFloat(agg[1:], 64)
	if err != nil || pct < 0 || pct > 100 {
		return 0, false
	}
	return pct / 100, true
}

// quantileRange evaluates a pNN aggregation: cumulative <base>_bucket
// series grouped by their non-le labels, each group's windows reduced to
// obs.Quantile over the window-final bucket counts.
func (st *Store) quantileRange(sel Selector, startMillis, stepMillis int64, steps int, q float64) ([]QuerySeries, error) {
	bsel := Selector{Base: sel.Base + "_bucket", Labels: sel.Labels}
	names := st.Select(bsel)
	if len(names) == 0 {
		return nil, nil
	}
	// Group bucket series by their identity without le; remember each
	// member's upper bound.
	type member struct {
		name string
		le   float64
	}
	groups := map[string][]member{}
	var order []string
	for _, name := range names {
		base, labels := parseSeriesName(name)
		leStr, ok := labels["le"]
		if !ok {
			continue
		}
		le, err := parseLe(leStr)
		if err != nil {
			return nil, fmt.Errorf("tsdb: series %q: %v", name, err)
		}
		delete(labels, "le")
		group := groupName(strings.TrimSuffix(base, "_bucket"), labels)
		if _, seen := groups[group]; !seen {
			order = append(order, group)
		}
		groups[group] = append(groups[group], member{name: name, le: le})
	}
	sort.Strings(order)
	var out []QuerySeries
	for _, group := range order {
		members := groups[group]
		sort.Slice(members, func(i, j int) bool { return members[i].le < members[j].le })
		ranges := make([][]Point, len(members))
		idx := make([]int, len(members))
		for i, m := range members {
			ranges[i] = st.Range(m.name, startMillis, startMillis+int64(steps)*stepMillis)
		}
		qs := QuerySeries{Name: group, Points: make([]QueryPoint, steps)}
		buckets := make([]obs.Bucket, len(members))
		for i := 0; i < steps; i++ {
			hi := startMillis + int64(i+1)*stepMillis
			complete := true
			for mi := range members {
				pts := ranges[mi]
				for idx[mi] < len(pts) && pts[idx[mi]].T <= hi {
					idx[mi]++
				}
				if idx[mi] == 0 {
					complete = false
					continue
				}
				buckets[mi] = obs.Bucket{Le: members[mi].le, Count: pts[idx[mi]-1].V}
			}
			pt := QueryPoint{T: hi}
			if complete {
				pt.V, pt.OK = obs.Quantile(buckets, q), true
			}
			qs.Points[i] = pt
		}
		out = append(out, qs)
	}
	return out, nil
}

// parseLe parses a bucket upper bound, accepting Prometheus' "+Inf".
func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// groupName reassembles a series identity from base name and labels, keys
// sorted — the name a quantile series reports.
func groupName(base string, labels map[string]string) string {
	if len(labels) == 0 {
		return base
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// QueryHandler serves the store's range-query API:
//
//	GET /query?q=<selector>&agg=<agg>&start=<t>&end=<t>&step=<dur>
//
// start/end accept Unix seconds ("1754640000", fractions allowed) or
// offsets relative to now ("-60s"); end defaults to now, start to end-5m,
// step to (end-start)/60. agg is avg (default), min, max, last, rate, or
// pNN. Without q the handler answers the store's Stats as JSON — the
// compression/retention readout the CI smoke asserts on.
func (st *Store) QueryHandler() http.Handler {
	return st.queryHandler(time.Now)
}

// queryHandler is QueryHandler with an injectable clock for tests.
func (st *Store) queryHandler(now func() time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		qp := req.URL.Query()
		if qp.Get("q") == "" {
			json.NewEncoder(w).Encode(st.Stats()) //nolint:errcheck // best-effort HTTP write
			return
		}
		sel, err := ParseSelector(qp.Get("q"))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		nowMS := now().UnixMilli()
		end, err := parseTime(qp.Get("end"), nowMS, nowMS)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("end: %v", err))
			return
		}
		start, err := parseTime(qp.Get("start"), nowMS, end-5*time.Minute.Milliseconds())
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("start: %v", err))
			return
		}
		step := (end - start) / 60
		if s := qp.Get("step"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("step: %v", err))
				return
			}
			step = d.Milliseconds()
		}
		if step <= 0 {
			step = 1
		}
		res, err := st.QueryRange(sel, start, end, step, qp.Get("agg"))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		json.NewEncoder(w).Encode(res) //nolint:errcheck // best-effort HTTP write
	})
}

// parseTime parses a query timestamp: empty → def, "-30s" → now-30s,
// otherwise Unix seconds (fractions allowed). Returns Unix milliseconds.
func parseTime(s string, nowMillis, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	if strings.HasPrefix(s, "-") {
		d, err := time.ParseDuration(s[1:])
		if err != nil {
			return 0, err
		}
		return nowMillis - d.Milliseconds(), nil
	}
	secs, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return int64(secs * 1000), nil
}

// httpError writes a JSON error document.
func httpError(w http.ResponseWriter, code int, err error) {
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck // best-effort
}
