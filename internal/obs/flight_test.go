package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderOrderAndWrap(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		fr.Record(FlightEvent{UnixNanos: int64(i + 1), Dir: FlightSend, Type: "model", Seq: uint32(i)})
	}
	if fr.Len() != 4 || fr.Total() != 6 {
		t.Fatalf("len=%d total=%d, want 4/6", fr.Len(), fr.Total())
	}
	evs := fr.Snapshot()
	for i, ev := range evs {
		if want := uint32(i + 2); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d (oldest two overwritten)", i, ev.Seq, want)
		}
	}
}

func TestFlightRecorderLastSeqFrom(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record(FlightEvent{UnixNanos: 1, Dir: FlightRecv, Type: "partial", Peer: 3, Seq: 5})
	fr.Record(FlightEvent{UnixNanos: 2, Dir: FlightRecv, Type: "partial", Peer: 3, Seq: 7})
	fr.Record(FlightEvent{UnixNanos: 3, Dir: FlightSend, Type: "partial", Peer: 3, Seq: 9})
	fr.Record(FlightEvent{UnixNanos: 4, Dir: FlightRecv, Type: "partial", Peer: 4, Seq: 2})
	if seq, ok := fr.LastSeqFrom(3); !ok || seq != 7 {
		t.Errorf("LastSeqFrom(3) = %d,%v, want 7,true (sends don't count)", seq, ok)
	}
	if _, ok := fr.LastSeqFrom(99); ok {
		t.Error("LastSeqFrom(99) found events for an unknown peer")
	}
}

func TestFlightRecorderDump(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record(FlightEvent{UnixNanos: 1700000000000000001, Dir: FlightRecv, Type: "partial", Peer: 2, Seq: 11, Bytes: 8192})
	fr.Record(FlightEvent{UnixNanos: 1700000000000000002, Dir: FlightMark, Type: "round-timeout", Seq: 11})
	var buf bytes.Buffer
	n, err := fr.Dump(&buf)
	if err != nil || n != 2 {
		t.Fatalf("Dump = %d, %v", n, err)
	}
	out := buf.String()
	if !strings.Contains(out, "recv partial peer=2 seq=11 bytes=8192") {
		t.Errorf("dump missing recv line:\n%s", out)
	}
	if !strings.Contains(out, "mark round-timeout") {
		t.Errorf("dump missing mark line:\n%s", out)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(FlightEvent{})
	if fr.Len() != 0 || fr.Total() != 0 || fr.Snapshot() != nil {
		t.Error("nil recorder not a no-op")
	}
	if _, ok := fr.LastSeqFrom(1); ok {
		t.Error("nil recorder reported a seq")
	}
}

func TestFlightRecorderRecordDoesNotAllocate(t *testing.T) {
	fr := NewFlightRecorder(64)
	ev := FlightEvent{UnixNanos: 1, Dir: FlightSend, Type: "partial", Peer: 1, Seq: 2, Bytes: 3}
	if allocs := testing.AllocsPerRun(100, func() { fr.Record(ev) }); allocs != 0 {
		t.Errorf("Record allocates %v times per call, want 0", allocs)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				fr.Record(FlightEvent{UnixNanos: 1, Dir: FlightSend, Type: "model", Peer: uint32(g), Seq: uint32(i)})
			}
		}(g)
	}
	wg.Wait()
	if fr.Total() != 800 || fr.Len() != 32 {
		t.Errorf("total=%d len=%d, want 800/32", fr.Total(), fr.Len())
	}
}
