package profile

import (
	"fmt"
	"strings"
)

// Input is one profile to merge, tagged with the node it came from. An empty
// NodeLabel merges the profile without adding a label.
type Input struct {
	Raw       *Raw
	NodeLabel string
}

// Merge combines profiles into one, attaching a "node" string label to every
// sample from a labeled input so per-node breakdowns survive the merge
// (pprof: `-tagfocus node=worker-2`). All inputs must agree on sample types
// (same type/unit sequence). Strings, functions, locations, and mappings are
// re-interned by content, so profiles from different processes — with
// different table numbering, including real Go runtime CPU profiles — merge
// correctly. Samples with equal stacks and labels are coalesced by summing.
func Merge(inputs []Input) (*Raw, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("profile: nothing to merge")
	}
	first := inputs[0].Raw
	out := &Raw{
		StringTable:   []string{""},
		TimeNanos:     first.TimeNanos,
		DurationNanos: first.DurationNanos,
		Period:        first.Period,
	}
	m := &merger{
		out:      out,
		strings:  map[string]int64{"": 0},
		funcs:    map[string]uint64{},
		locs:     map[string]uint64{},
		mappings: map[string]uint64{},
		samples:  map[string]int{},
	}
	for _, st := range first.SampleType {
		out.SampleType = append(out.SampleType, RawValueType{
			Type: m.str(first.str(st.Type)),
			Unit: m.str(first.str(st.Unit)),
		})
	}
	out.PeriodType = RawValueType{
		Type: m.str(first.str(first.PeriodType.Type)),
		Unit: m.str(first.str(first.PeriodType.Unit)),
	}
	out.DefaultSampleType = m.str(first.str(first.DefaultSampleType))
	for i, in := range inputs {
		if err := sameSampleTypes(first, in.Raw); err != nil {
			return nil, fmt.Errorf("profile: input %d: %w", i, err)
		}
		m.add(in.Raw, in.NodeLabel)
		for _, c := range in.Raw.Comment {
			if s := in.Raw.str(c); s != "" {
				out.Comment = append(out.Comment, m.str(s))
			}
		}
	}
	return out, nil
}

func sameSampleTypes(a, b *Raw) error {
	if len(a.SampleType) != len(b.SampleType) {
		return fmt.Errorf("sample type count mismatch: %d vs %d", len(a.SampleType), len(b.SampleType))
	}
	for i := range a.SampleType {
		at, au := a.str(a.SampleType[i].Type), a.str(a.SampleType[i].Unit)
		bt, bu := b.str(b.SampleType[i].Type), b.str(b.SampleType[i].Unit)
		if at != bt || au != bu {
			return fmt.Errorf("sample type %d mismatch: %s/%s vs %s/%s", i, at, au, bt, bu)
		}
	}
	return nil
}

type merger struct {
	out      *Raw
	strings  map[string]int64
	funcs    map[string]uint64 // content key -> merged Function.ID
	locs     map[string]uint64 // content key -> merged Location.ID
	mappings map[string]uint64 // content key -> merged Mapping.ID
	samples  map[string]int    // stack+label key -> merged Sample index
}

func (m *merger) str(s string) int64 {
	if i, ok := m.strings[s]; ok {
		return i
	}
	i := int64(len(m.out.StringTable))
	m.out.StringTable = append(m.out.StringTable, s)
	m.strings[s] = i
	return i
}

// add folds one input profile into the merged output, remapping every table
// reference through content keys.
func (m *merger) add(in *Raw, nodeLabel string) {
	funcByID := make(map[uint64]RawFunction, len(in.Function))
	for _, f := range in.Function {
		funcByID[f.ID] = f
	}
	mapByID := make(map[uint64]RawMapping, len(in.Mapping))
	for _, mp := range in.Mapping {
		mapByID[mp.ID] = mp
	}

	funcRemap := make(map[uint64]uint64, len(in.Function))
	for _, f := range in.Function {
		key := fmt.Sprintf("%s\x00%s\x00%s\x00%d",
			in.str(f.Name), in.str(f.SystemName), in.str(f.Filename), f.StartLine)
		id, ok := m.funcs[key]
		if !ok {
			id = uint64(len(m.out.Function) + 1)
			m.out.Function = append(m.out.Function, RawFunction{
				ID:         id,
				Name:       m.str(in.str(f.Name)),
				SystemName: m.str(in.str(f.SystemName)),
				Filename:   m.str(in.str(f.Filename)),
				StartLine:  f.StartLine,
			})
			m.funcs[key] = id
		}
		funcRemap[f.ID] = id
	}

	mapRemap := make(map[uint64]uint64, len(in.Mapping))
	for _, mp := range in.Mapping {
		key := fmt.Sprintf("%d\x00%d\x00%d\x00%s\x00%s",
			mp.MemoryStart, mp.MemoryLimit, mp.FileOffset, in.str(mp.Filename), in.str(mp.BuildID))
		id, ok := m.mappings[key]
		if !ok {
			id = uint64(len(m.out.Mapping) + 1)
			nm := mp
			nm.ID = id
			nm.Filename = m.str(in.str(mp.Filename))
			nm.BuildID = m.str(in.str(mp.BuildID))
			m.out.Mapping = append(m.out.Mapping, nm)
			m.mappings[key] = id
		}
		mapRemap[mp.ID] = id
	}

	locRemap := make(map[uint64]uint64, len(in.Location))
	for _, l := range in.Location {
		var kb strings.Builder
		fmt.Fprintf(&kb, "%d\x00%d\x00%d\x00", mapRemap[l.MappingID], l.Address, boolInt(l.IsFolded))
		lines := make([]RawLine, len(l.Line))
		for i, ln := range l.Line {
			lines[i] = RawLine{FunctionID: funcRemap[ln.FunctionID], Line: ln.Line, Column: ln.Column}
			fmt.Fprintf(&kb, "%d:%d:%d,", lines[i].FunctionID, ln.Line, ln.Column)
		}
		key := kb.String()
		id, ok := m.locs[key]
		if !ok {
			id = uint64(len(m.out.Location) + 1)
			m.out.Location = append(m.out.Location, RawLocation{
				ID:        id,
				MappingID: mapRemap[l.MappingID],
				Address:   l.Address,
				Line:      lines,
				IsFolded:  l.IsFolded,
			})
			m.locs[key] = id
		}
		locRemap[l.ID] = id
	}

	nodeKey := int64(0)
	nodeVal := int64(0)
	if nodeLabel != "" {
		nodeKey = m.str("node")
		nodeVal = m.str(nodeLabel)
	}
	for _, s := range in.Sample {
		locIDs := make([]uint64, len(s.LocationID))
		for i, id := range s.LocationID {
			locIDs[i] = locRemap[id]
		}
		var labels []RawLabel
		for _, l := range s.Label {
			nl := RawLabel{Key: m.str(in.str(l.Key))}
			if l.Str != 0 {
				nl.Str = m.str(in.str(l.Str))
			} else {
				nl.Num = l.Num
				nl.NumUnit = m.str(in.str(l.NumUnit))
			}
			// Drop an input's own node label in favor of the merge-level one.
			if nodeKey != 0 && m.out.str(nl.Key) == "node" {
				continue
			}
			labels = append(labels, nl)
		}
		if nodeKey != 0 {
			labels = append(labels, RawLabel{Key: nodeKey, Str: nodeVal})
		}
		key := sampleKey(locIDs, labels)
		if i, ok := m.samples[key]; ok {
			for j, v := range s.Value {
				m.out.Sample[i].Value[j] += v
			}
			continue
		}
		m.samples[key] = len(m.out.Sample)
		m.out.Sample = append(m.out.Sample, RawSample{
			LocationID: locIDs,
			Value:      append([]int64(nil), s.Value...),
			Label:      labels,
		})
	}
	if in.DurationNanos > m.out.DurationNanos {
		m.out.DurationNanos = in.DurationNanos
	}
	if in.TimeNanos != 0 && (m.out.TimeNanos == 0 || in.TimeNanos < m.out.TimeNanos) {
		m.out.TimeNanos = in.TimeNanos
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
