package profile

import (
	"fmt"
	"io"
	"sort"
)

// topRow is one function's aggregate in a flat report.
type topRow struct {
	name string
	flat int64
	cum  int64
}

// Top writes a pprof-style flat report for one sample type (by index into
// SampleType) to w, limited to the top maxRows functions (0 = all). Flat is
// the value attributed to a function as the leaf frame; cum counts every
// sample the function appears anywhere in (each function at most once per
// sample, so recursive stacks don't double-count).
func Top(w io.Writer, r *Raw, sampleIndex, maxRows int) error {
	if sampleIndex < 0 || sampleIndex >= len(r.SampleType) {
		return fmt.Errorf("profile: sample index %d out of range (%d types)", sampleIndex, len(r.SampleType))
	}
	funcName := make(map[uint64]string, len(r.Function))
	for _, f := range r.Function {
		funcName[f.ID] = r.str(f.Name)
	}
	// A location's display name: its leaf-most line's function, or a hex
	// address for unsymbolized native frames.
	locName := make(map[uint64]string, len(r.Location))
	for _, l := range r.Location {
		name := ""
		if len(l.Line) > 0 {
			name = funcName[l.Line[0].FunctionID]
		}
		if name == "" {
			name = fmt.Sprintf("0x%x", l.Address)
		}
		locName[l.ID] = name
	}

	flat := map[string]int64{}
	cum := map[string]int64{}
	var total int64
	seen := map[string]bool{}
	for _, s := range r.Sample {
		v := s.Value[sampleIndex]
		total += v
		if len(s.LocationID) == 0 {
			flat["<unknown>"] += v
			cum["<unknown>"] += v
			continue
		}
		flat[locName[s.LocationID[0]]] += v
		clear(seen)
		for _, id := range s.LocationID {
			name := locName[id]
			if !seen[name] {
				seen[name] = true
				cum[name] += v
			}
		}
	}

	rows := make([]topRow, 0, len(cum))
	for name, c := range cum {
		rows = append(rows, topRow{name: name, flat: flat[name], cum: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].flat != rows[j].flat {
			return rows[i].flat > rows[j].flat
		}
		if rows[i].cum != rows[j].cum {
			return rows[i].cum > rows[j].cum
		}
		return rows[i].name < rows[j].name
	})
	shown := len(rows)
	if maxRows > 0 && shown > maxRows {
		shown = maxRows
	}

	typ := r.str(r.SampleType[sampleIndex].Type)
	unit := r.str(r.SampleType[sampleIndex].Unit)
	fmt.Fprintf(w, "Showing nodes accounting for top %d of %d functions, %s (%s), total %d\n",
		shown, len(rows), typ, unit, total)
	fmt.Fprintf(w, "      flat  flat%%   sum%%        cum   cum%%   name\n")
	pct := func(v int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(v) / float64(total)
	}
	var sum int64
	for _, row := range rows[:shown] {
		sum += row.flat
		fmt.Fprintf(w, "%10d %5.2f%% %5.2f%% %10d %5.2f%%   %s\n",
			row.flat, pct(row.flat), pct(sum), row.cum, pct(row.cum), row.name)
	}
	return nil
}

// SampleTypeIndex returns the index of the named sample type, or -1.
func SampleTypeIndex(r *Raw, name string) int {
	for i, st := range r.SampleType {
		if r.str(st.Type) == name {
			return i
		}
	}
	return -1
}
