package profile

import (
	"fmt"
	"sort"
	"strings"
)

// ValueType names one dimension of a sample's value vector, e.g.
// {"cycles", "cycles"} or {"wall", "nanoseconds"}.
type ValueType struct {
	Type string
	Unit string
}

// Label annotates a sample. Str and Num are mutually exclusive: a label with
// a non-empty Str is a string label; otherwise it is a numeric label with
// optional NumUnit.
type Label struct {
	Key     string
	Str     string
	Num     int64
	NumUnit string
}

// Profile builds a pprof profile from synthesized measurements. It interns
// strings, functions, and locations, and coalesces samples that share a
// stack and label set, so callers can Add the same stack millions of times
// without growing the profile. Not safe for concurrent use.
type Profile struct {
	raw Raw

	strings map[string]int64  // string -> StringTable index
	funcs   map[string]uint64 // function name -> Function.ID
	locs    map[uint64]uint64 // Function.ID -> Location.ID (synthesized 1:1)
	samples map[string]int    // stack+label key -> Sample index
}

// New creates an empty profile with the given sample types. At least one
// sample type is required; every Add must supply exactly one value per type.
func New(sampleTypes ...ValueType) *Profile {
	if len(sampleTypes) == 0 {
		panic("profile: New requires at least one sample type")
	}
	p := &Profile{
		strings: map[string]int64{"": 0},
		funcs:   map[string]uint64{},
		locs:    map[uint64]uint64{},
		samples: map[string]int{},
	}
	p.raw.StringTable = []string{""}
	for _, st := range sampleTypes {
		p.raw.SampleType = append(p.raw.SampleType, RawValueType{
			Type: p.str(st.Type),
			Unit: p.str(st.Unit),
		})
	}
	return p
}

// str interns s into the string table.
func (p *Profile) str(s string) int64 {
	if i, ok := p.strings[s]; ok {
		return i
	}
	i := int64(len(p.raw.StringTable))
	p.raw.StringTable = append(p.raw.StringTable, s)
	p.strings[s] = i
	return i
}

// function interns a function by name, returning its ID.
func (p *Profile) function(name string) uint64 {
	if id, ok := p.funcs[name]; ok {
		return id
	}
	id := uint64(len(p.raw.Function) + 1)
	p.raw.Function = append(p.raw.Function, RawFunction{
		ID:         id,
		Name:       p.str(name),
		SystemName: p.str(name),
	})
	p.funcs[name] = id
	return id
}

// location interns a synthesized (address-less) location for a frame name.
func (p *Profile) location(name string) uint64 {
	fid := p.function(name)
	if id, ok := p.locs[fid]; ok {
		return id
	}
	id := uint64(len(p.raw.Location) + 1)
	p.raw.Location = append(p.raw.Location, RawLocation{
		ID:   id,
		Line: []RawLine{{FunctionID: fid}},
	})
	p.locs[fid] = id
	return id
}

// Add records one sample: values (one per sample type), a stack of frame
// names ordered leaf first (as pprof expects), and optional labels. Samples
// with identical stacks and labels are coalesced by summing their values.
func (p *Profile) Add(values []int64, stack []string, labels ...Label) {
	if len(values) != len(p.raw.SampleType) {
		panic(fmt.Sprintf("profile: Add got %d values for %d sample types", len(values), len(p.raw.SampleType)))
	}
	locIDs := make([]uint64, len(stack))
	for i, frame := range stack {
		locIDs[i] = p.location(frame)
	}
	var rls []RawLabel
	for _, l := range labels {
		rl := RawLabel{Key: p.str(l.Key)}
		if l.Str != "" {
			rl.Str = p.str(l.Str)
		} else {
			rl.Num = l.Num
			if l.NumUnit != "" {
				rl.NumUnit = p.str(l.NumUnit)
			}
		}
		rls = append(rls, rl)
	}
	key := sampleKey(locIDs, rls)
	if i, ok := p.samples[key]; ok {
		for j, v := range values {
			p.raw.Sample[i].Value[j] += v
		}
		return
	}
	p.samples[key] = len(p.raw.Sample)
	p.raw.Sample = append(p.raw.Sample, RawSample{
		LocationID: locIDs,
		Value:      append([]int64(nil), values...),
		Label:      rls,
	})
}

// sampleKey builds the coalescing key for a stack + label set.
func sampleKey(locIDs []uint64, labels []RawLabel) string {
	var b strings.Builder
	for _, id := range locIDs {
		fmt.Fprintf(&b, "%d,", id)
	}
	b.WriteByte('|')
	for _, l := range labels {
		fmt.Fprintf(&b, "%d:%d:%d:%d,", l.Key, l.Str, l.Num, l.NumUnit)
	}
	return b.String()
}

// SetPeriod records the sampling period and its type (e.g. 1 "cycles" for
// an exact, non-sampled profile).
func (p *Profile) SetPeriod(period int64, vt ValueType) {
	p.raw.Period = period
	p.raw.PeriodType = RawValueType{Type: p.str(vt.Type), Unit: p.str(vt.Unit)}
}

// SetTime records the profile's wall-clock start and duration in
// nanoseconds. Leave unset (zero) for deterministic output.
func (p *Profile) SetTime(timeNanos, durationNanos int64) {
	p.raw.TimeNanos = timeNanos
	p.raw.DurationNanos = durationNanos
}

// AddComment attaches a free-form comment string (shown by pprof's
// `-comments` flag).
func (p *Profile) AddComment(c string) {
	p.raw.Comment = append(p.raw.Comment, p.str(c))
}

// SetDefaultSampleType selects which sample type tools display by default.
// name must match one of the types passed to New.
func (p *Profile) SetDefaultSampleType(name string) {
	p.raw.DefaultSampleType = p.str(name)
}

// Raw returns the built profile. The returned value shares state with the
// builder; callers should finish Adding first. Samples are emitted in a
// deterministic order (sorted by stack then labels) so identical inputs
// yield byte-identical profiles.
func (p *Profile) Raw() *Raw {
	sort.SliceStable(p.raw.Sample, func(i, j int) bool {
		return compareSamples(&p.raw.Sample[i], &p.raw.Sample[j]) < 0
	})
	// The sort invalidated the coalescing index; rebuild lazily if the
	// caller keeps Adding.
	for i := range p.raw.Sample {
		s := &p.raw.Sample[i]
		p.samples[sampleKey(s.LocationID, s.Label)] = i
	}
	return &p.raw
}

func compareSamples(a, b *RawSample) int {
	for i := 0; i < len(a.LocationID) && i < len(b.LocationID); i++ {
		if a.LocationID[i] != b.LocationID[i] {
			if a.LocationID[i] < b.LocationID[i] {
				return -1
			}
			return 1
		}
	}
	if len(a.LocationID) != len(b.LocationID) {
		if len(a.LocationID) < len(b.LocationID) {
			return -1
		}
		return 1
	}
	ka, kb := sampleKey(nil, a.Label), sampleKey(nil, b.Label)
	return strings.Compare(ka, kb)
}

// WriteFile writes the built profile to path as .pb.gz.
func (p *Profile) WriteFile(path string) error {
	return p.Raw().WriteFile(path)
}
