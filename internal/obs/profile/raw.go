// Package profile is a zero-dependency implementation of the pprof profile
// format (profile.proto, gzip-compressed protobuf) — the interchange format
// `go tool pprof`, Perfetto, and every continuous-profiling backend consume.
//
// It has three layers:
//
//   - Raw mirrors profile.proto field for field, with a hand-rolled wire
//     encoder/decoder (proto.go). The decoder handles arbitrary conforming
//     profiles — including the Go runtime's own CPU/heap profiles — so
//     cluster merges work on real pprof data, not just our own output.
//   - Profile is a builder over Raw for synthesizing profiles from
//     measurements: it interns strings, functions, and locations, and
//     coalesces samples with identical stacks and labels.
//   - Merge and Top combine profiles across nodes and render the flat
//     report `go tool pprof -top` would, so a cluster can be profiled with
//     no external tooling.
package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// Raw is the decoded profile.proto message. Field names and numbers follow
// github.com/google/pprof/proto/profile.proto; all string-valued fields are
// indices into StringTable (index 0 is always "").
type Raw struct {
	SampleType        []RawValueType // 1
	Sample            []RawSample    // 2
	Mapping           []RawMapping   // 3
	Location          []RawLocation  // 4
	Function          []RawFunction  // 5
	StringTable       []string       // 6
	DropFrames        int64          // 7
	KeepFrames        int64          // 8
	TimeNanos         int64          // 9
	DurationNanos     int64          // 10
	PeriodType        RawValueType   // 11
	Period            int64          // 12
	Comment           []int64        // 13
	DefaultSampleType int64          // 14
}

// RawValueType describes one dimension of a sample's value vector.
type RawValueType struct {
	Type int64 // 1
	Unit int64 // 2
}

// RawSample is one measurement: a stack (leaf first, location IDs), a value
// per sample type, and optional labels.
type RawSample struct {
	LocationID []uint64   // 1
	Value      []int64    // 2
	Label      []RawLabel // 3
}

// RawLabel is one sample annotation; Str or Num/NumUnit is set, not both.
type RawLabel struct {
	Key     int64 // 1
	Str     int64 // 2
	Num     int64 // 3
	NumUnit int64 // 4
}

// RawMapping is one mapped binary region (native-code profiles only;
// synthesized profiles carry none).
type RawMapping struct {
	ID              uint64 // 1
	MemoryStart     uint64 // 2
	MemoryLimit     uint64 // 3
	FileOffset      uint64 // 4
	Filename        int64  // 5
	BuildID         int64  // 6
	HasFunctions    bool   // 7
	HasFilenames    bool   // 8
	HasLineNumbers  bool   // 9
	HasInlineFrames bool   // 10
}

// RawLocation is one stack frame site; Line[0] is the leaf-most inline
// frame.
type RawLocation struct {
	ID        uint64    // 1
	MappingID uint64    // 2
	Address   uint64    // 3
	Line      []RawLine // 4
	IsFolded  bool      // 5
}

// RawLine resolves a location to a function and source line.
type RawLine struct {
	FunctionID uint64 // 1
	Line       int64  // 2
	Column     int64  // 3
}

// RawFunction names a function.
type RawFunction struct {
	ID         uint64 // 1
	Name       int64  // 2
	SystemName int64  // 3
	Filename   int64  // 4
	StartLine  int64  // 5
}

// str resolves a string-table index, tolerating out-of-range indices from
// malformed inputs (they resolve to "").
func (r *Raw) str(i int64) string {
	if i < 0 || i >= int64(len(r.StringTable)) {
		return ""
	}
	return r.StringTable[i]
}

// Check validates the cross-table invariants a conforming profile must hold;
// Decode calls it, so a decoded profile is safe to index into.
func (r *Raw) Check() error {
	if len(r.StringTable) == 0 || r.StringTable[0] != "" {
		return fmt.Errorf("profile: string table must start with \"\"")
	}
	if len(r.SampleType) == 0 {
		return fmt.Errorf("profile: no sample types")
	}
	locs := make(map[uint64]bool, len(r.Location))
	for _, l := range r.Location {
		if l.ID == 0 {
			return fmt.Errorf("profile: location with ID 0")
		}
		locs[l.ID] = true
	}
	funcs := make(map[uint64]bool, len(r.Function))
	for _, f := range r.Function {
		if f.ID == 0 {
			return fmt.Errorf("profile: function with ID 0")
		}
		funcs[f.ID] = true
	}
	for _, l := range r.Location {
		for _, ln := range l.Line {
			if ln.FunctionID != 0 && !funcs[ln.FunctionID] {
				return fmt.Errorf("profile: location %d references unknown function %d", l.ID, ln.FunctionID)
			}
		}
	}
	for i, s := range r.Sample {
		if len(s.Value) != len(r.SampleType) {
			return fmt.Errorf("profile: sample %d has %d values for %d sample types", i, len(s.Value), len(r.SampleType))
		}
		for _, id := range s.LocationID {
			if !locs[id] {
				return fmt.Errorf("profile: sample %d references unknown location %d", i, id)
			}
		}
	}
	return nil
}

// Encode serializes the profile as uncompressed protobuf bytes, fields in
// ascending order — the output is deterministic for a given Raw.
func (r *Raw) Encode() []byte {
	var e encoder
	for _, vt := range r.SampleType {
		e.message(1, encodeValueType(vt))
	}
	for _, s := range r.Sample {
		var se encoder
		se.packedUint64(1, s.LocationID)
		se.packedInt64(2, s.Value)
		for _, l := range s.Label {
			var le encoder
			le.int64Field(1, l.Key)
			le.int64Field(2, l.Str)
			le.int64Field(3, l.Num)
			le.int64Field(4, l.NumUnit)
			se.message(3, le.buf)
		}
		e.message(2, se.buf)
	}
	for _, m := range r.Mapping {
		var me encoder
		me.uint64Field(1, m.ID)
		me.uint64Field(2, m.MemoryStart)
		me.uint64Field(3, m.MemoryLimit)
		me.uint64Field(4, m.FileOffset)
		me.int64Field(5, m.Filename)
		me.int64Field(6, m.BuildID)
		me.boolField(7, m.HasFunctions)
		me.boolField(8, m.HasFilenames)
		me.boolField(9, m.HasLineNumbers)
		me.boolField(10, m.HasInlineFrames)
		e.message(3, me.buf)
	}
	for _, l := range r.Location {
		var le encoder
		le.uint64Field(1, l.ID)
		le.uint64Field(2, l.MappingID)
		le.uint64Field(3, l.Address)
		for _, ln := range l.Line {
			var lne encoder
			lne.uint64Field(1, ln.FunctionID)
			lne.int64Field(2, ln.Line)
			lne.int64Field(3, ln.Column)
			le.message(4, lne.buf)
		}
		le.boolField(5, l.IsFolded)
		e.message(4, le.buf)
	}
	for _, f := range r.Function {
		var fe encoder
		fe.uint64Field(1, f.ID)
		fe.int64Field(2, f.Name)
		fe.int64Field(3, f.SystemName)
		fe.int64Field(4, f.Filename)
		fe.int64Field(5, f.StartLine)
		e.message(5, fe.buf)
	}
	for _, s := range r.StringTable {
		e.bytesField(6, []byte(s), true)
	}
	e.int64Field(7, r.DropFrames)
	e.int64Field(8, r.KeepFrames)
	e.int64Field(9, r.TimeNanos)
	e.int64Field(10, r.DurationNanos)
	if r.PeriodType != (RawValueType{}) {
		e.message(11, encodeValueType(r.PeriodType))
	}
	e.int64Field(12, r.Period)
	e.packedInt64(13, r.Comment)
	e.int64Field(14, r.DefaultSampleType)
	return e.buf
}

func encodeValueType(vt RawValueType) []byte {
	var e encoder
	e.int64Field(1, vt.Type)
	e.int64Field(2, vt.Unit)
	return e.buf
}

// WriteTo writes the profile in the on-disk pprof format: gzip-compressed
// protobuf (the framing every pprof consumer expects of a .pb.gz file).
func (r *Raw) Write(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(r.Encode()); err != nil {
		return err
	}
	return zw.Close()
}

// WriteFile writes the profile to path in .pb.gz framing.
func (r *Raw) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Decode parses a pprof profile from data, accepting both gzip-compressed
// (the on-disk framing) and raw protobuf bytes, and validates it with Check.
func Decode(data []byte) (*Raw, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		data = raw
	}
	r := &Raw{}
	d := &decoder{buf: data}
	err := d.walk(func(field, wire int, v uint64, b []byte) error {
		switch field {
		case 1, 11:
			vt, err := decodeValueType(b)
			if err != nil {
				return err
			}
			if field == 1 {
				r.SampleType = append(r.SampleType, vt)
			} else {
				r.PeriodType = vt
			}
		case 2:
			s, err := decodeSample(b)
			if err != nil {
				return err
			}
			r.Sample = append(r.Sample, s)
		case 3:
			m, err := decodeMapping(b)
			if err != nil {
				return err
			}
			r.Mapping = append(r.Mapping, m)
		case 4:
			l, err := decodeLocation(b)
			if err != nil {
				return err
			}
			r.Location = append(r.Location, l)
		case 5:
			f, err := decodeFunction(b)
			if err != nil {
				return err
			}
			r.Function = append(r.Function, f)
		case 6:
			r.StringTable = append(r.StringTable, string(b))
		case 7:
			r.DropFrames = int64(v)
		case 8:
			r.KeepFrames = int64(v)
		case 9:
			r.TimeNanos = int64(v)
		case 10:
			r.DurationNanos = int64(v)
		case 12:
			r.Period = int64(v)
		case 13:
			us, err := varints(nil, wire, v, b)
			if err != nil {
				return err
			}
			for _, u := range us {
				r.Comment = append(r.Comment, int64(u))
			}
		case 14:
			r.DefaultSampleType = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := r.Check(); err != nil {
		return nil, err
	}
	return r, nil
}

// ReadFile decodes a .pb.gz (or raw protobuf) profile from path.
func ReadFile(path string) (*Raw, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

func decodeValueType(b []byte) (RawValueType, error) {
	var vt RawValueType
	d := &decoder{buf: b}
	err := d.walk(func(field, wire int, v uint64, _ []byte) error {
		switch field {
		case 1:
			vt.Type = int64(v)
		case 2:
			vt.Unit = int64(v)
		}
		return nil
	})
	return vt, err
}

func decodeSample(b []byte) (RawSample, error) {
	var s RawSample
	d := &decoder{buf: b}
	err := d.walk(func(field, wire int, v uint64, b []byte) error {
		switch field {
		case 1:
			var err error
			s.LocationID, err = varints(s.LocationID, wire, v, b)
			return err
		case 2:
			us, err := varints(nil, wire, v, b)
			if err != nil {
				return err
			}
			for _, u := range us {
				s.Value = append(s.Value, int64(u))
			}
		case 3:
			var l RawLabel
			ld := &decoder{buf: b}
			if err := ld.walk(func(field, wire int, v uint64, _ []byte) error {
				switch field {
				case 1:
					l.Key = int64(v)
				case 2:
					l.Str = int64(v)
				case 3:
					l.Num = int64(v)
				case 4:
					l.NumUnit = int64(v)
				}
				return nil
			}); err != nil {
				return err
			}
			s.Label = append(s.Label, l)
		}
		return nil
	})
	return s, err
}

func decodeMapping(b []byte) (RawMapping, error) {
	var m RawMapping
	d := &decoder{buf: b}
	err := d.walk(func(field, wire int, v uint64, _ []byte) error {
		switch field {
		case 1:
			m.ID = v
		case 2:
			m.MemoryStart = v
		case 3:
			m.MemoryLimit = v
		case 4:
			m.FileOffset = v
		case 5:
			m.Filename = int64(v)
		case 6:
			m.BuildID = int64(v)
		case 7:
			m.HasFunctions = v != 0
		case 8:
			m.HasFilenames = v != 0
		case 9:
			m.HasLineNumbers = v != 0
		case 10:
			m.HasInlineFrames = v != 0
		}
		return nil
	})
	return m, err
}

func decodeLocation(b []byte) (RawLocation, error) {
	var l RawLocation
	d := &decoder{buf: b}
	err := d.walk(func(field, wire int, v uint64, b []byte) error {
		switch field {
		case 1:
			l.ID = v
		case 2:
			l.MappingID = v
		case 3:
			l.Address = v
		case 4:
			var ln RawLine
			ld := &decoder{buf: b}
			if err := ld.walk(func(field, wire int, v uint64, _ []byte) error {
				switch field {
				case 1:
					ln.FunctionID = v
				case 2:
					ln.Line = int64(v)
				case 3:
					ln.Column = int64(v)
				}
				return nil
			}); err != nil {
				return err
			}
			l.Line = append(l.Line, ln)
		case 5:
			l.IsFolded = v != 0
		}
		return nil
	})
	return l, err
}

func decodeFunction(b []byte) (RawFunction, error) {
	var f RawFunction
	d := &decoder{buf: b}
	err := d.walk(func(field, wire int, v uint64, _ []byte) error {
		switch field {
		case 1:
			f.ID = v
		case 2:
			f.Name = int64(v)
		case 3:
			f.SystemName = int64(v)
		case 4:
			f.Filename = int64(v)
		case 5:
			f.StartLine = int64(v)
		}
		return nil
	})
	return f, err
}
