package profile

import (
	"bytes"
	"encoding/hex"
	"runtime/pprof"
	"strings"
	"testing"
)

// buildTestProfile synthesizes a small two-type profile with labels,
// exercising interning, coalescing, and every table.
func buildTestProfile() *Profile {
	p := New(ValueType{"cycles", "cycles"}, ValueType{"samples", "count"})
	p.SetPeriod(1, ValueType{"cycles", "cycles"})
	p.SetDefaultSampleType("cycles")
	p.AddComment("repro test profile")
	p.Add([]int64{100, 1}, []string{"n3 *", "op *", "pe 0", "compute"}, Label{Key: "node", Str: "w1"})
	p.Add([]int64{50, 1}, []string{"n4 +", "op +", "pe 1", "compute"}, Label{Key: "node", Str: "w1"})
	p.Add([]int64{25, 1}, []string{"model-broadcast"}, Label{Key: "node", Str: "w1"})
	// Same stack+labels — must coalesce into the first sample.
	p.Add([]int64{11, 1}, []string{"n3 *", "op *", "pe 0", "compute"}, Label{Key: "node", Str: "w1"})
	// Same stack, different label — must stay distinct.
	p.Add([]int64{7, 1}, []string{"n3 *", "op *", "pe 0", "compute"}, Label{Key: "node", Str: "w2"})
	return p
}

func TestRoundTrip(t *testing.T) {
	p := buildTestProfile()
	var buf bytes.Buffer
	if err := p.Raw().Write(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if buf.Len() < 2 || buf.Bytes()[0] != 0x1f || buf.Bytes()[1] != 0x8b {
		t.Fatalf("output is not gzip-framed: % x", buf.Bytes()[:2])
	}
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want := p.Raw()
	if len(got.Sample) != len(want.Sample) {
		t.Fatalf("sample count: got %d want %d", len(got.Sample), len(want.Sample))
	}
	if len(got.Sample) != 4 {
		t.Errorf("coalescing: got %d samples, want 4", len(got.Sample))
	}
	for i := range want.Sample {
		w, g := want.Sample[i], got.Sample[i]
		if len(w.Value) != len(g.Value) {
			t.Fatalf("sample %d value arity: got %d want %d", i, len(g.Value), len(w.Value))
		}
		for j := range w.Value {
			if w.Value[j] != g.Value[j] {
				t.Errorf("sample %d value %d: got %d want %d", i, j, g.Value[j], w.Value[j])
			}
		}
		if len(w.LocationID) != len(g.LocationID) {
			t.Fatalf("sample %d stack depth: got %d want %d", i, len(g.LocationID), len(w.LocationID))
		}
	}
	// The coalesced sample must carry 100+11 cycles.
	found := false
	for _, s := range got.Sample {
		if s.Value[0] == 111 {
			found = true
		}
	}
	if !found {
		t.Errorf("coalesced sample with value 111 not found")
	}
	if got.str(got.PeriodType.Type) != "cycles" || got.Period != 1 {
		t.Errorf("period round trip: got %q/%d", got.str(got.PeriodType.Type), got.Period)
	}
	if got.str(got.DefaultSampleType) != "cycles" {
		t.Errorf("default sample type: got %q", got.str(got.DefaultSampleType))
	}
	if len(got.Comment) != 1 || got.str(got.Comment[0]) != "repro test profile" {
		t.Errorf("comment round trip failed: %v", got.Comment)
	}
	// Re-encoding the decoded profile must be byte-identical (canonical form).
	if !bytes.Equal(got.Encode(), want.Encode()) {
		t.Errorf("re-encode not byte-identical")
	}
}

// TestEncodeGolden pins the exact wire bytes of a tiny profile so encoder
// regressions (field numbers, ordering, varint widths) are caught even if
// encode and decode drift together.
func TestEncodeGolden(t *testing.T) {
	p := New(ValueType{"cycles", "cycles"})
	p.Add([]int64{42}, []string{"leaf", "root"})
	got := hex.EncodeToString(p.Raw().Encode())
	// Pin the sample_type message bytes (field 1, ValueType{type=1,unit=1})
	// plus determinism and decode/re-encode identity; a full hex dump would
	// break on every intentional schema addition without catching more.
	if !strings.HasPrefix(got, "0a0408011001") {
		t.Fatalf("sample_type encoding changed: prefix %s", got[:24])
	}
	again := hex.EncodeToString(p.Raw().Encode())
	if got != again {
		t.Fatalf("encoding is not deterministic")
	}
	dec, err := Decode(p.Raw().Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if hex.EncodeToString(dec.Encode()) != got {
		t.Fatalf("decode/re-encode changed bytes")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"truncated varint": {0x08, 0x80},
		"bad length":       {0x0a, 0x7f, 0x01},
		"field zero":       {0x00, 0x01},
		"empty (no types)": {},
		"bad gzip":         {0x1f, 0x8b, 0x00, 0x00},
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted malformed input", name)
		}
	}
}

func TestMerge(t *testing.T) {
	mk := func(node string, v int64) *Raw {
		p := New(ValueType{"cycles", "cycles"}, ValueType{"samples", "count"})
		p.Add([]int64{v, 1}, []string{"op +", "compute"})
		p.Add([]int64{v * 2, 1}, []string{"tree-reduce"})
		return p.Raw()
	}
	a, b := mk("w1", 10), mk("w2", 100)
	merged, err := Merge([]Input{{Raw: a, NodeLabel: "w1"}, {Raw: b, NodeLabel: "w2"}})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if err := merged.Check(); err != nil {
		t.Fatalf("merged profile invalid: %v", err)
	}
	// Same stacks but different node labels: 4 distinct samples.
	if len(merged.Sample) != 4 {
		t.Fatalf("got %d samples, want 4", len(merged.Sample))
	}
	var total int64
	nodes := map[string]int64{}
	for _, s := range merged.Sample {
		total += s.Value[0]
		for _, l := range s.Label {
			if merged.str(l.Key) == "node" {
				nodes[merged.str(l.Str)] += s.Value[0]
			}
		}
	}
	if total != 10+20+100+200 {
		t.Errorf("total cycles: got %d want 330", total)
	}
	if nodes["w1"] != 30 || nodes["w2"] != 300 {
		t.Errorf("per-node totals: %v", nodes)
	}
	// Functions and locations must be deduplicated across inputs.
	if len(merged.Function) != 3 {
		t.Errorf("got %d functions, want 3 (deduped)", len(merged.Function))
	}
	if len(merged.Location) != 3 {
		t.Errorf("got %d locations, want 3 (deduped)", len(merged.Location))
	}

	// Merging again with equal node labels must coalesce equal stacks.
	m2, err := Merge([]Input{{Raw: a, NodeLabel: "x"}, {Raw: a, NodeLabel: "x"}})
	if err != nil {
		t.Fatalf("Merge same: %v", err)
	}
	if len(m2.Sample) != 2 {
		t.Errorf("same-label merge: got %d samples, want 2", len(m2.Sample))
	}
}

func TestMergeRejectsMismatchedTypes(t *testing.T) {
	a := New(ValueType{"cycles", "cycles"}).Raw()
	b := New(ValueType{"wall", "nanoseconds"}).Raw()
	if _, err := Merge([]Input{{Raw: a}, {Raw: b}}); err == nil {
		t.Fatal("Merge accepted mismatched sample types")
	}
}

func TestTop(t *testing.T) {
	p := New(ValueType{"cycles", "cycles"})
	p.Add([]int64{70}, []string{"mul", "compute"})
	p.Add([]int64{20}, []string{"add", "compute"})
	p.Add([]int64{10}, []string{"reduce"})
	var buf bytes.Buffer
	if err := Top(&buf, p.Raw(), 0, 0); err != nil {
		t.Fatalf("Top: %v", err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// mul has the largest flat value and must come first; compute has cum 90.
	if !strings.Contains(lines[2], "mul") {
		t.Errorf("first row is not mul:\n%s", out)
	}
	if !strings.Contains(out, "70.00%") || !strings.Contains(out, "90.00%") {
		t.Errorf("percentages missing:\n%s", out)
	}
	var cumCompute string
	for _, l := range lines {
		if strings.Contains(l, "compute") {
			cumCompute = l
		}
	}
	if !strings.Contains(cumCompute, "90") {
		t.Errorf("compute cum should be 90: %s", cumCompute)
	}
	if err := Top(&buf, p.Raw(), 5, 0); err == nil {
		t.Error("Top accepted out-of-range sample index")
	}
	if i := SampleTypeIndex(p.Raw(), "cycles"); i != 0 {
		t.Errorf("SampleTypeIndex: got %d", i)
	}
	if i := SampleTypeIndex(p.Raw(), "absent"); i != -1 {
		t.Errorf("SampleTypeIndex absent: got %d", i)
	}
}

// TestDecodeGoRuntimeProfile feeds the decoder a real CPU profile produced
// by the Go runtime — the same shape cosmic-prof scrapes from
// /debug/pprof/profile — proving the wire layer handles profiles we did not
// write ourselves (mappings, addresses, packed and unpacked encodings).
func TestDecodeGoRuntimeProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cannot start CPU profile: %v", err)
	}
	// Burn a little CPU so the profile likely has samples; the decode below
	// does not depend on it.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	pprof.StopCPUProfile()
	r, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding Go runtime CPU profile: %v", err)
	}
	if len(r.SampleType) != 2 {
		t.Fatalf("CPU profile sample types: got %d want 2", len(r.SampleType))
	}
	if r.str(r.SampleType[1].Type) != "cpu" {
		t.Errorf("sample type 1: got %q want cpu", r.str(r.SampleType[1].Type))
	}
	// Merging a runtime profile with itself must hold Check invariants.
	m, err := Merge([]Input{{Raw: r, NodeLabel: "a"}, {Raw: r, NodeLabel: "b"}})
	if err != nil {
		t.Fatalf("merging runtime profile: %v", err)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("merged runtime profile invalid: %v", err)
	}
}
