package profile

import "fmt"

// This file is the hand-rolled protobuf wire layer under the pprof
// encoder/decoder: varints, field tags, and length-delimited records — the
// three primitives profile.proto needs. Keeping it by hand (rather than
// depending on a protobuf runtime) preserves the repo's zero-dependency
// rule; pprof's schema is small and frozen enough that the ~150 lines here
// are cheaper than the dependency.
//
// Wire types used: 0 (varint) and 2 (length-delimited). pprof's schema has
// no fixed32/fixed64 fields, but the decoder still skips them correctly in
// case a future writer adds some.

const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// encoder builds a protobuf message. Fields must be appended in ascending
// field order for deterministic output (protobuf itself does not care).
type encoder struct {
	buf []byte
}

// uvarint appends a base-128 varint.
func (e *encoder) uvarint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

// tag appends a field tag.
func (e *encoder) tag(field int, wire int) {
	e.uvarint(uint64(field)<<3 | uint64(wire))
}

// int64Field appends a varint field; zero values are omitted, matching
// proto3 semantics (and keeping output canonical for golden tests).
func (e *encoder) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	e.tag(field, wireVarint)
	e.uvarint(uint64(v))
}

// uint64Field appends a varint field for an unsigned value.
func (e *encoder) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	e.tag(field, wireVarint)
	e.uvarint(v)
}

// boolField appends a bool field (omitted when false).
func (e *encoder) boolField(field int, v bool) {
	if !v {
		return
	}
	e.tag(field, wireVarint)
	e.uvarint(1)
}

// bytesField appends a length-delimited field. Empty strings are still
// emitted when emitEmpty is set — the string table's mandatory "" at index 0
// must survive the round trip.
func (e *encoder) bytesField(field int, b []byte, emitEmpty bool) {
	if len(b) == 0 && !emitEmpty {
		return
	}
	e.tag(field, wireBytes)
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// packedUint64 appends a packed repeated varint field.
func (e *encoder) packedUint64(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var body encoder
	for _, v := range vs {
		body.uvarint(v)
	}
	e.bytesField(field, body.buf, false)
}

// packedInt64 appends a packed repeated varint field of signed values.
func (e *encoder) packedInt64(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var body encoder
	for _, v := range vs {
		body.uvarint(uint64(v))
	}
	e.bytesField(field, body.buf, false)
}

// message appends an embedded message field.
func (e *encoder) message(field int, body []byte) {
	e.bytesField(field, body, true)
}

// decoder walks a protobuf message, dispatching each field to a callback.
type decoder struct {
	buf []byte
	pos int
}

// uvarint reads one varint.
func (d *decoder) uvarint() (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		if d.pos >= len(d.buf) {
			return 0, fmt.Errorf("profile: truncated varint")
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("profile: varint over 64 bits")
}

// bytes reads one length-delimited record.
func (d *decoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, fmt.Errorf("profile: length %d exceeds remaining %d bytes", n, len(d.buf)-d.pos)
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// walk dispatches every field in the message to fn. fn receives the field
// number, the wire type, the varint value (wire type 0) and the record bytes
// (wire type 2); unknown fields may simply be ignored by fn. walk itself
// skips fixed32/fixed64 records.
func (d *decoder) walk(fn func(field int, wire int, v uint64, b []byte) error) error {
	for d.pos < len(d.buf) {
		tag, err := d.uvarint()
		if err != nil {
			return err
		}
		field, wire := int(tag>>3), int(tag&7)
		if field == 0 {
			return fmt.Errorf("profile: field number 0")
		}
		switch wire {
		case wireVarint:
			v, err := d.uvarint()
			if err != nil {
				return err
			}
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case wireBytes:
			b, err := d.bytes()
			if err != nil {
				return err
			}
			if err := fn(field, wire, 0, b); err != nil {
				return err
			}
		case wireFixed64:
			if len(d.buf)-d.pos < 8 {
				return fmt.Errorf("profile: truncated fixed64")
			}
			d.pos += 8
		case wireFixed32:
			if len(d.buf)-d.pos < 4 {
				return fmt.Errorf("profile: truncated fixed32")
			}
			d.pos += 4
		default:
			return fmt.Errorf("profile: unsupported wire type %d", wire)
		}
	}
	return nil
}

// varints parses a record that a writer may have encoded packed (one
// length-delimited blob of varints) or unpacked (one varint per occurrence),
// appending the values to dst. Decoders must accept both forms.
func varints(dst []uint64, wire int, v uint64, b []byte) ([]uint64, error) {
	if wire == wireVarint {
		return append(dst, v), nil
	}
	d := &decoder{buf: b}
	for d.pos < len(d.buf) {
		u, err := d.uvarint()
		if err != nil {
			return dst, err
		}
		dst = append(dst, u)
	}
	return dst, nil
}
