package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentInstruments hammers one counter, gauge, and histogram from
// many goroutines; run under -race this is the registry's race-cleanliness
// proof, and the totals check that no update is lost.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total")
	g := r.Gauge("hammer_level")
	h := r.Histogram("hammer_obs", []float64{1, 10, 100})

	const workers, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
				// Re-resolving a registered instrument must be safe
				// concurrently and return the same instance.
				if r.Counter("hammer_total") != c {
					t.Error("counter identity changed")
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Errorf("gauge = %g, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestSnapshotDeterministic: two registries populated in different orders
// must produce byte-identical expositions, and repeated snapshots of one
// registry must agree.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []int) *Registry {
		r := NewRegistry()
		for _, i := range order {
			switch i {
			case 0:
				r.Counter(Labeled("zz_total", "pe", "3")).Add(7)
			case 1:
				r.Gauge("aa_level").Set(2.5)
			case 2:
				r.Histogram("mm_cycles", []float64{10, 100}).Observe(42)
			case 3:
				r.Counter("aa_total").Add(1)
			}
		}
		return r
	}
	var a, b bytes.Buffer
	if err := build([]int{0, 1, 2, 3}).WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := build([]int{3, 2, 1, 0}).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("registration order changed exposition:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestPrometheusGolden pins the exact exposition text, including histogram
// expansion, cumulative buckets, and label merging.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("cosmic_sim_batches_total").Add(3)
	r.Gauge(Labeled("cosmic_node_ring_depth", "node", "0")).Set(5)
	h := r.Histogram(Labeled("cosmic_round_seconds", "node", "0"), []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`cosmic_node_ring_depth{node="0"} 5`,
		`cosmic_round_seconds_bucket{node="0",le="0.01"} 1`,
		`cosmic_round_seconds_bucket{node="0",le="0.1"} 2`,
		`cosmic_round_seconds_bucket{node="0",le="+Inf"} 3`,
		`cosmic_round_seconds_sum{node="0"} 2.055`,
		`cosmic_round_seconds_count{node="0"} 3`,
		`cosmic_sim_batches_total 3`,
	}, "\n") + "\n"
	if buf.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// expositionLine is the grammar the CI smoke test enforces on /metrics
// output; every line the registry emits must match it.
var expositionLine = regexp.MustCompile(`^[a-z_]+(\{[^}]*\})? [0-9.eE+-]+$`)

func TestExpositionGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(1 << 40)
	r.Gauge("b_level").Set(-3.25e-7)
	h := r.Histogram(Labeled("c_cycles", "pe", "12"), []float64{1, 1024})
	h.Observe(2000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("line %q does not match exposition grammar", line)
		}
	}
}

// TestChromeTraceGolden pins the trace export for cycle-domain events,
// which carry no wall-clock and are therefore fully deterministic.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer()
	tr.NameThread(PIDAccel, 0, "thread 0")
	tr.Cycles("accel", "thread-compute", 0, 10, 90, map[string]any{"vectors": 4})
	tr.Cycles("accel", "model-broadcast", 0, 0, 10, nil)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The clock-sync anchor carries the wall-clock start; normalize it so
	// the rest of the document stays golden.
	got := regexp.MustCompile(`"unix_us":\d+`).ReplaceAllString(buf.String(), `"unix_us":0`)
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"host (wall-clock us)"}},` +
		`{"name":"process_name","ph":"M","ts":0,"pid":2,"tid":0,"args":{"name":"accelerator (simulated cycles)"}},` +
		`{"name":"cosmic_clock_sync","ph":"M","ts":0,"pid":1,"tid":0,"args":{"skew_us":0,"unix_us":0}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":2,"tid":0,"args":{"name":"thread 0"}},` +
		`{"name":"model-broadcast","cat":"accel","ph":"X","ts":0,"dur":10,"pid":2,"tid":0},` +
		`{"name":"thread-compute","cat":"accel","ph":"X","ts":10,"dur":90,"pid":2,"tid":0,"args":{"vectors":4}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got != want {
		t.Errorf("trace mismatch:\ngot:  %swant: %s", got, want)
	}
}

// TestTraceWallClockSpans checks the host-domain span path end to end
// (ordering and JSON validity; timestamps are wall-clock so not golden).
func TestTraceWallClockSpans(t *testing.T) {
	tr := NewTracer()
	sp := tr.Begin("compile", "parse", 0)
	sp.EndArgs(map[string]any{"ok": true})
	tr.Begin("compile", "translate", 0).End()

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	for _, e := range evs {
		if e.Phase != "X" || e.PID != PIDHost || e.TS < 0 || e.Dur < 0 {
			t.Errorf("bad span event %+v", e)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
}

// TestDisabledInstrumentsDoNotAllocate is the nil-safety contract: with no
// observer attached, every instrumentation call must be a zero-allocation
// no-op, so hot paths (tape eval, RunBatch) stay allocation-free.
func TestDisabledInstrumentsDoNotAllocate(t *testing.T) {
	var (
		o  *Observer
		r  *Registry
		c  *Counter
		g  *Gauge
		h  *Histogram
		tr *Tracer
	)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(5)
		g.Set(1)
		g.Add(1)
		h.Observe(3)
		tr.Cycles("a", "b", 0, 0, 1, nil)
		sp := tr.Begin("a", "b", 0)
		sp.End()
		r.Counter("x_total").Inc()
		r.Gauge("x_level").Set(1)
		r.Histogram("x_cycles", nil).Observe(1)
		o.Registry().Counter("y_total").Inc()
		o.Tracer().Begin("a", "b", 0).End()
	}); n != 0 {
		t.Errorf("disabled instruments allocated %v times per run, want 0", n)
	}
}

// TestQuantile exercises the histogram quantile estimate.
func TestQuantile(t *testing.T) {
	h := NewRegistry().Histogram("q_cycles", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 3.5, 7, 9} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("p50 = %g, want 4", got)
	}
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("p100 = %g, want +Inf", got)
	}
}

// TestMetricsHandler serves /metrics over HTTP and re-checks the grammar.
func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(2)
	srv := httptest.NewServer(NewHTTPMux(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if want := "served_total 2\n"; buf.String() != want {
		t.Errorf("GET /metrics = %q, want %q", buf.String(), want)
	}
}

// TestLabeledAndValidation covers the label builder and name validation.
func TestLabeledAndValidation(t *testing.T) {
	if got := Labeled("x_total", "pe", "3", "bus", "tree4"); got != `x_total{pe="3",bus="tree4"}` {
		t.Errorf("Labeled = %q", got)
	}
	for _, bad := range []string{"", "Bad", "has2digits", "x{unclosed", "x{a}{b}"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q should panic", bad)
				}
			}()
			NewRegistry().Counter(bad)
		}()
	}
}
