package dfg

import (
	"fmt"
	"math"
)

// Bindings supplies values for graph leaves: Data holds one training
// vector's model_input/model_output values per symbol, Model holds the
// current model parameters per symbol.
type Bindings struct {
	Data  map[string][]float64
	Model map[string][]float64
}

// Eval functionally interprets the graph under b and returns the gradient
// outputs per gradient symbol. It is the golden reference against which the
// cycle-level accelerator simulation is checked.
func (g *Graph) Eval(b Bindings) (map[string][]float64, error) {
	vals := make([]float64, len(g.Nodes))
	for _, n := range g.Nodes {
		v, err := evalNode(n, vals, b)
		if err != nil {
			return nil, err
		}
		vals[n.ID] = v
	}
	out := make(map[string][]float64, len(g.Outputs))
	for name, nodes := range g.Outputs {
		vec := make([]float64, len(nodes))
		for i, n := range nodes {
			vec[i] = vals[n.ID]
		}
		out[name] = vec
	}
	return out, nil
}

func evalNode(n *Node, vals []float64, b Bindings) (float64, error) {
	arg := func(i int) float64 { return vals[n.Args[i].ID] }
	switch n.Op {
	case OpConst:
		return n.Const, nil
	case OpData:
		vec, ok := b.Data[n.Var]
		if !ok || n.Index >= len(vec) {
			return 0, fmt.Errorf("dfg: eval: missing data binding %s[%d]", n.Var, n.Index)
		}
		return vec[n.Index], nil
	case OpModel:
		vec, ok := b.Model[n.Var]
		if !ok || n.Index >= len(vec) {
			return 0, fmt.Errorf("dfg: eval: missing model binding %s[%d]", n.Var, n.Index)
		}
		return vec[n.Index], nil
	case OpAdd:
		return arg(0) + arg(1), nil
	case OpSub:
		return arg(0) - arg(1), nil
	case OpMul:
		return arg(0) * arg(1), nil
	case OpDiv:
		return arg(0) / arg(1), nil
	case OpNeg:
		return -arg(0), nil
	case OpGT:
		return boolVal(arg(0) > arg(1)), nil
	case OpLT:
		return boolVal(arg(0) < arg(1)), nil
	case OpGE:
		return boolVal(arg(0) >= arg(1)), nil
	case OpLE:
		return boolVal(arg(0) <= arg(1)), nil
	case OpEQ:
		return boolVal(arg(0) == arg(1)), nil
	case OpNE:
		return boolVal(arg(0) != arg(1)), nil
	case OpSelect:
		if arg(0) != 0 {
			return arg(1), nil
		}
		return arg(2), nil
	default:
		return EvalNonlinear(n.Op, arg(0))
	}
}

// EvalNonlinear applies a unary nonlinear operation. The accelerator
// implements these with lookup tables; the simulator and the reference
// evaluator share this exact-math implementation so they agree bit-for-bit.
func EvalNonlinear(op Op, x float64) (float64, error) {
	switch op {
	case OpSigmoid:
		return 1 / (1 + math.Exp(-x)), nil
	case OpGaussian:
		return math.Exp(-x * x), nil
	case OpLog:
		return math.Log(x), nil
	case OpExp:
		return math.Exp(x), nil
	case OpSqrt:
		return math.Sqrt(x), nil
	case OpTanh:
		return math.Tanh(x), nil
	case OpRelu:
		return math.Max(0, x), nil
	case OpAbs:
		return math.Abs(x), nil
	case OpSign:
		if x > 0 {
			return 1, nil
		}
		if x < 0 {
			return -1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("dfg: eval: unsupported op %s", op)
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
