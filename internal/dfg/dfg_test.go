package dfg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dsl"
)

func mustGraph(t *testing.T, src string, params map[string]int) *Graph {
	t.Helper()
	u, err := dsl.ParseAndAnalyze(src, params)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Translate(u)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTranslateLinearRegressionStructure(t *testing.T) {
	g := mustGraph(t, dsl.SourceLinearRegression, map[string]int{"M": 8})
	// Per element: one multiply for w*x, one for e*x; the reduction tree has
	// M-1 adds; one subtract for e.
	census := g.OpCensus()
	if census[OpMul] != 16 {
		t.Errorf("multiplies = %d, want 16", census[OpMul])
	}
	if census[OpAdd] != 7 {
		t.Errorf("adds = %d, want 7", census[OpAdd])
	}
	if census[OpSub] != 1 {
		t.Errorf("subs = %d, want 1", census[OpSub])
	}
	if g.DataWords() != 9 { // x[8] + y
		t.Errorf("data words = %d, want 9", g.DataWords())
	}
	if g.ModelWords() != 8 {
		t.Errorf("model words = %d, want 8", g.ModelWords())
	}
	if g.GradientWords() != 8 {
		t.Errorf("gradient words = %d, want 8", g.GradientWords())
	}
}

func TestReductionTreeIsLogDepth(t *testing.T) {
	g := mustGraph(t, dsl.SourceLinearRegression, map[string]int{"M": 64})
	// Chain: mul -> log2(64)=6 adds -> sub -> mul = 9 ops at levels 0..8.
	if cp := g.CriticalPath(); cp != 8 {
		t.Errorf("critical path = %d, want 8", cp)
	}
}

func TestCSESharesLeavesAndSubexpressions(t *testing.T) {
	g := mustGraph(t, `
model_input x[4];
model w[4];
gradient g[4];
iterator i[0:4];
a = sum[i](w[i] * x[i]);
b = sum[i](w[i] * x[i]);
g[i] = (a + b) * x[i];
aggregator sum;
`, nil)
	// a and b are identical: the reduction must be built once.
	census := g.OpCensus()
	if census[OpMul] != 8 { // 4 for w*x, 4 for (a+b)*x
		t.Errorf("multiplies = %d, want 8", census[OpMul])
	}
	if census[OpAdd] != 4 { // 3 reduction adds + a+b
		t.Errorf("adds = %d, want 4", census[OpAdd])
	}
}

func TestConstantFolding(t *testing.T) {
	g := mustGraph(t, `gradient g; g = 2 * 3 + 1; aggregator sum;`, nil)
	if g.NumOps() != 0 {
		t.Errorf("constant program has %d compute ops", g.NumOps())
	}
	out, err := g.Eval(Bindings{})
	if err != nil {
		t.Fatal(err)
	}
	if out["g"][0] != 7 {
		t.Errorf("g = %g, want 7", out["g"][0])
	}
}

func TestEvalSelectAndComparisons(t *testing.T) {
	g := mustGraph(t, `
model_input x;
model w;
gradient g;
g = (x * w > 1) ? x : (0 - x);
aggregator sum;
`, nil)
	eval := func(x, w float64) float64 {
		out, err := g.Eval(Bindings{
			Data:  map[string][]float64{"x": {x}},
			Model: map[string][]float64{"w": {w}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out["g"][0]
	}
	if got := eval(3, 1); got != 3 {
		t.Errorf("eval(3,1) = %g, want 3", got)
	}
	if got := eval(0.5, 1); got != -0.5 {
		t.Errorf("eval(0.5,1) = %g, want -0.5", got)
	}
}

func TestEvalNonlinears(t *testing.T) {
	cases := []struct {
		op   Op
		x    float64
		want float64
	}{
		{OpSigmoid, 0, 0.5},
		{OpGaussian, 0, 1},
		{OpLog, math.E, 1},
		{OpExp, 1, math.E},
		{OpSqrt, 9, 3},
		{OpTanh, 0, 0},
		{OpRelu, -2, 0},
		{OpRelu, 2, 2},
		{OpAbs, -3, 3},
		{OpSign, -3, -1},
		{OpSign, 0, 0},
		{OpSign, 5, 1},
	}
	for _, c := range cases {
		got, err := EvalNonlinear(c.op, c.x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s(%g) = %g, want %g", c.op, c.x, got, c.want)
		}
	}
	if _, err := EvalNonlinear(OpAdd, 1); err == nil {
		t.Error("EvalNonlinear(OpAdd) should fail")
	}
}

func TestLevelsAreMonotone(t *testing.T) {
	g := mustGraph(t, dsl.SourceBackprop, map[string]int{"IN": 6, "HID": 4, "OUT": 3})
	for _, n := range g.Nodes {
		for _, a := range n.Args {
			if a.Level > n.Level {
				t.Fatalf("node %d level %d < arg %d level %d", n.ID, n.Level, a.ID, a.Level)
			}
		}
	}
	// Heights: every non-sink node's height is 1 + max consumer height.
	for _, n := range g.Nodes {
		if len(n.Consumers) == 0 {
			if n.Height != 0 {
				t.Fatalf("sink node %d has height %d", n.ID, n.Height)
			}
			continue
		}
		want := 0
		for _, c := range n.Consumers {
			if c.Height+1 > want {
				want = c.Height + 1
			}
		}
		if n.Height != want {
			t.Fatalf("node %d height %d, want %d", n.ID, n.Height, want)
		}
	}
}

func TestWidthProfileSumsToOps(t *testing.T) {
	g := mustGraph(t, dsl.SourceSVM, map[string]int{"M": 16})
	total := 0
	for _, w := range g.WidthProfile() {
		total += w
	}
	if total != g.NumOps() {
		t.Errorf("width profile sums to %d, NumOps = %d", total, g.NumOps())
	}
	if g.MaxWidth() <= 0 || g.AvgWidth() <= 0 {
		t.Errorf("degenerate widths: max %d avg %g", g.MaxWidth(), g.AvgWidth())
	}
}

func TestStorageWordsCountsAllClasses(t *testing.T) {
	g := mustGraph(t, dsl.SourceLogisticRegression, map[string]int{"M": 8})
	want := g.DataWords() + g.ModelWords() + g.NumOps()
	if got := g.StorageWords(); got != want {
		t.Errorf("storage = %d, want %d", got, want)
	}
}

func TestUnassignedGradientElementsDefaultToZero(t *testing.T) {
	g := mustGraph(t, `
gradient g[4];
iterator i[0:2];
model_input x[2];
g2 = 0;
gpartial[i] = x[i];
g[i] = gpartial[i];
aggregator sum;
`, nil)
	_ = g2Guard
	out, err := g.Eval(Bindings{Data: map[string][]float64{"x": {5, 7}}})
	if err != nil {
		t.Fatal(err)
	}
	if out["g"][0] != 5 || out["g"][1] != 7 || out["g"][2] != 0 || out["g"][3] != 0 {
		t.Errorf("g = %v", out["g"])
	}
}

// g2Guard exists only to keep the test above honest about unused interims.
var g2Guard = struct{}{}

func TestLHSIteratorOverflowRejected(t *testing.T) {
	u, err := dsl.ParseAndAnalyze(`
model w[16];
gradient g[8];
iterator i[0:9];
g[i] = w[i];
aggregator sum;
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(u); err == nil {
		t.Error("expected out-of-range error for iterator spilling past the dimension")
	}
}

func TestIndexOutOfRangeRejected(t *testing.T) {
	u, err := dsl.ParseAndAnalyze(`
model w[4];
gradient g;
iterator i[0:4];
g = sum[i](w[i + 1]);
aggregator sum;
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(u); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestAffineIndexing(t *testing.T) {
	g := mustGraph(t, `
model w[8];
gradient g[4];
iterator i[0:4];
g[i] = w[2 * i] + w[2 * i + 1];
aggregator sum;
`, nil)
	model := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	out, err := g.Eval(Bindings{Model: map[string][]float64{"w": model}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 7, 11, 15}
	for i := range want {
		if out["g"][i] != want[i] {
			t.Errorf("g[%d] = %g, want %g", i, out["g"][i], want[i])
		}
	}
}

// TestEvalDeterministic is a property test: evaluation is a pure function of
// its bindings.
func TestEvalDeterministic(t *testing.T) {
	g := mustGraph(t, dsl.SourceSVM, map[string]int{"M": 5})
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 5)
		w := make([]float64, 5)
		for i := range x {
			x[i] = rng.NormFloat64()
			w[i] = rng.NormFloat64()
		}
		b := Bindings{
			Data:  map[string][]float64{"x": x, "y": {1}},
			Model: map[string][]float64{"w": w},
		}
		o1, err1 := g.Eval(b)
		o2, err2 := g.Eval(b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range o1["g"] {
			if o1["g"][i] != o2["g"][i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEvalMissingBindings(t *testing.T) {
	g := mustGraph(t, dsl.SourceSVM, map[string]int{"M": 3})
	if _, err := g.Eval(Bindings{}); err == nil {
		t.Error("expected missing-binding error")
	}
}

func TestSummary(t *testing.T) {
	g := mustGraph(t, dsl.SourceLogisticRegression, map[string]int{"M": 8})
	s := g.Summary()
	if !s.Nonlinear {
		t.Error("logreg should report nonlinear ops")
	}
	if s.ComputeOps != g.NumOps() || s.CriticalPath != g.CriticalPath() {
		t.Error("summary disagrees with direct queries")
	}
	if s.MulOps == 0 || s.AddSubOps == 0 {
		t.Errorf("census: %+v", s)
	}
}
