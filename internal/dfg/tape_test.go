package dfg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsl"
)

// benchmarkPrograms instantiates every DSL benchmark program (plus the
// extensibility softmax) at small geometries for differential testing.
func benchmarkPrograms(t *testing.T) map[string]*dsl.Unit {
	t.Helper()
	srcs := map[string]struct {
		src    string
		params map[string]int
	}{
		"linreg":   {dsl.SourceLinearRegression, map[string]int{"M": 13}},
		"logistic": {dsl.SourceLogisticRegression, map[string]int{"M": 11}},
		"svm":      {dsl.SourceSVM, map[string]int{"M": 9}},
		"backprop": {dsl.SourceBackprop, map[string]int{"IN": 7, "HID": 5, "OUT": 3}},
		"cf":       {dsl.SourceCollaborativeFiltering, map[string]int{"NU": 4, "NV": 5, "K": 3}},
		"softmax":  {dsl.SourceSoftmax, map[string]int{"M": 6, "C": 4}},
	}
	units := map[string]*dsl.Unit{}
	for name, s := range srcs {
		u, err := dsl.ParseAndAnalyze(s.src, s.params)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		units[name] = u
	}
	return units
}

// randomBindings draws a full binding set for the unit's input/output/model
// symbols.
func randomBindings(u *dsl.Unit, rng *rand.Rand) Bindings {
	b := Bindings{Data: map[string][]float64{}, Model: map[string][]float64{}}
	vec := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	for _, s := range u.SymbolsOfKind(dsl.KindModelInput) {
		b.Data[s.Name] = vec(s.Size())
	}
	for _, s := range u.SymbolsOfKind(dsl.KindModelOutput) {
		b.Data[s.Name] = vec(s.Size())
	}
	for _, s := range u.SymbolsOfKind(dsl.KindModel) {
		b.Model[s.Name] = vec(s.Size())
	}
	return b
}

// requireBitEqual compares two gradient output maps for exact bit equality
// (NaNs produced by the same operation compare equal by bits).
func requireBitEqual(t *testing.T, want, got map[string][]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("output symbols: %d (interpreter) vs %d (tape)", len(want), len(got))
	}
	for name, wv := range want {
		gv, ok := got[name]
		if !ok {
			t.Fatalf("tape missing output %s", name)
		}
		if len(wv) != len(gv) {
			t.Fatalf("%s: length %d vs %d", name, len(wv), len(gv))
		}
		for i := range wv {
			if math.Float64bits(wv[i]) != math.Float64bits(gv[i]) {
				t.Fatalf("%s[%d]: interpreter %v (%#x) vs tape %v (%#x)",
					name, i, wv[i], math.Float64bits(wv[i]), gv[i], math.Float64bits(gv[i]))
			}
		}
	}
}

// TestTapeMatchesInterpreterOnBenchmarks: the compiled tape must agree with
// Graph.Eval bit-for-bit on every DSL benchmark program, with a single
// arena reused across trials (exercising the scratch-state reset story).
func TestTapeMatchesInterpreterOnBenchmarks(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for name, u := range benchmarkPrograms(t) {
		t.Run(name, func(t *testing.T) {
			g, err := Translate(u)
			if err != nil {
				t.Fatal(err)
			}
			tape, err := g.CompileTape()
			if err != nil {
				t.Fatal(err)
			}
			if tape.NumInstrs() != g.NumOps() {
				t.Fatalf("tape has %d instrs for %d compute ops", tape.NumInstrs(), g.NumOps())
			}
			arena := tape.NewArena()
			for trial := 0; trial < 20; trial++ {
				b := randomBindings(u, rng)
				want, err := g.Eval(b)
				if err != nil {
					t.Fatal(err)
				}
				got, err := arena.EvalBindings(b)
				if err != nil {
					t.Fatal(err)
				}
				requireBitEqual(t, want, got)
			}
		})
	}
}

// allOpsGraph hand-builds a graph exercising every DFG op — all comparisons,
// select, and every EvalNonlinear case — none of which appear together in
// any single benchmark program.
func allOpsGraph() *Graph {
	g := &Graph{Outputs: map[string][]*Node{}}
	mk := func(op Op, args ...*Node) *Node {
		n := &Node{ID: len(g.Nodes), Op: op, Args: args}
		g.Nodes = append(g.Nodes, n)
		return n
	}
	x0 := mk(OpData)
	x0.Var, x0.Index = "x", 0
	x1 := mk(OpData)
	x1.Var, x1.Index = "x", 1
	w0 := mk(OpModel)
	w0.Var, w0.Index = "w", 0
	half := mk(OpConst)
	half.Const = 0.5

	var outs []*Node
	out := func(n *Node) { outs = append(outs, n) }
	for _, op := range []Op{OpAdd, OpSub, OpMul, OpDiv, OpGT, OpLT, OpGE, OpLE, OpEQ, OpNE} {
		out(mk(op, x0, x1))
	}
	out(mk(OpNeg, x0))
	cond := mk(OpGT, x0, half)
	out(mk(OpSelect, cond, x1, w0))
	for _, op := range []Op{OpSigmoid, OpGaussian, OpLog, OpExp, OpSqrt, OpTanh, OpRelu, OpAbs, OpSign} {
		out(mk(op, x0))
	}
	// A second layer mixing model values through nonlinear results.
	out(mk(OpMul, outs[len(outs)-1], w0))
	g.Outputs["g"] = outs
	g.OutputOrder = []string{"g"}
	return g
}

// TestTapeMatchesInterpreterAllOps covers every op, including the edge
// inputs the benchmarks never produce: zero (sign/select), equal operands
// (EQ/NE/GE/LE), and negatives under log/sqrt (NaN results must match by
// bits).
func TestTapeMatchesInterpreterAllOps(t *testing.T) {
	g := allOpsGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	tape, err := g.CompileTape()
	if err != nil {
		t.Fatal(err)
	}
	arena := tape.NewArena()
	cases := [][]float64{ // {x0, x1, w0}
		{1.5, -2.25, 0.75},
		{-1.5, -1.5, 2}, // equal operands, negative log/sqrt
		{0, 3, -1},      // sign(0), select false branch
		{0.5, 0.5, 0.5}, // GT boundary at the const
		{1e300, -1e300, 1e-300},
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		cases = append(cases, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
	}
	for _, c := range cases {
		b := Bindings{
			Data:  map[string][]float64{"x": {c[0], c[1]}},
			Model: map[string][]float64{"w": {c[2]}},
		}
		want, err := g.Eval(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := arena.EvalBindings(b)
		if err != nil {
			t.Fatal(err)
		}
		requireBitEqual(t, want, got)
	}
}

// TestTapeBindingErrors: binding validation happens once per Bind, and
// reports missing symbols and short vectors.
func TestTapeBindingErrors(t *testing.T) {
	g := allOpsGraph()
	tape, err := g.CompileTape()
	if err != nil {
		t.Fatal(err)
	}
	arena := tape.NewArena()
	if err := arena.BindData(map[string][]float64{}); err == nil {
		t.Error("expected missing-symbol error")
	}
	if err := arena.BindData(map[string][]float64{"x": {1}}); err == nil {
		t.Error("expected short-vector error")
	}
	if err := arena.BindData(map[string][]float64{"x": {1, 2}}); err != nil {
		t.Errorf("valid data binding rejected: %v", err)
	}
	if err := arena.BindModel(map[string][]float64{}); err == nil {
		t.Error("expected missing-model error")
	}
}

// TestTapeRejectsUnknownOp: op validity is a compile-time check, not an
// evaluation-time one.
func TestTapeRejectsUnknownOp(t *testing.T) {
	g := &Graph{Outputs: map[string][]*Node{}}
	n := &Node{ID: 0, Op: Op(97)}
	g.Nodes = append(g.Nodes, n)
	g.Outputs["g"] = []*Node{n}
	if _, err := g.CompileTape(); err == nil {
		t.Error("expected unsupported-op compile error")
	}
	// Wrong arity is also a compile error.
	g2 := &Graph{Outputs: map[string][]*Node{}}
	c := &Node{ID: 0, Op: OpConst}
	bad := &Node{ID: 1, Op: OpAdd, Args: []*Node{c}}
	g2.Nodes = []*Node{c, bad}
	g2.Outputs["g"] = []*Node{bad}
	if _, err := g2.CompileTape(); err == nil {
		t.Error("expected arity compile error")
	}
}

// TestTapeEvalSteadyStateAllocFree: after arena construction, bind+eval
// must not allocate.
func TestTapeEvalSteadyStateAllocFree(t *testing.T) {
	u, err := dsl.ParseAndAnalyze(dsl.SourceBackprop, map[string]int{"IN": 7, "HID": 5, "OUT": 3})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Translate(u)
	if err != nil {
		t.Fatal(err)
	}
	tape, err := g.CompileTape()
	if err != nil {
		t.Fatal(err)
	}
	arena := tape.NewArena()
	b := randomBindings(u, rand.New(rand.NewSource(43)))
	if _, err := arena.EvalBindings(b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := arena.Bind(b); err != nil {
			t.Fatal(err)
		}
		arena.Eval()
	})
	if allocs != 0 {
		t.Errorf("steady-state bind+eval allocates %v objects per run", allocs)
	}
}
