package dfg

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dsl"
)

// translator elaborates a dsl.Unit into a Graph, hash-consing nodes so that
// common subexpressions (and repeated leaf references) are shared.
type translator struct {
	unit  *dsl.Unit
	graph *Graph
	// cse maps a structural key to an existing node.
	cse map[string]*Node
	// env maps interim symbol elements and assigned model/gradient elements
	// to their producing nodes: env[name][flatIndex].
	env map[string][]*Node
}

// Translate elaborates the analyzed program into a dataflow graph for one
// worker thread's partial-gradient computation.
func Translate(u *dsl.Unit) (*Graph, error) {
	tr := &translator{
		unit: u,
		graph: &Graph{
			DataLeaves:  map[string][]*Node{},
			ModelLeaves: map[string][]*Node{},
			Outputs:     map[string][]*Node{},
			Unit:        u,
		},
		cse: map[string]*Node{},
		env: map[string][]*Node{},
	}
	for _, st := range u.Program.Stmts {
		if err := tr.elaborate(st); err != nil {
			return nil, err
		}
	}
	// Collect gradient outputs in declaration order.
	for _, sym := range u.SymbolsOfKind(dsl.KindGradient) {
		nodes := tr.env[sym.Name]
		if nodes == nil {
			return nil, fmt.Errorf("dfg: gradient %q has no assignments", sym.Name)
		}
		outs := make([]*Node, sym.Size())
		for i := range outs {
			if i < len(nodes) && nodes[i] != nil {
				outs[i] = nodes[i]
			} else {
				// Elements never assigned default to zero gradient.
				outs[i] = tr.constNode(0)
			}
		}
		tr.graph.Outputs[sym.Name] = outs
		tr.graph.OutputOrder = append(tr.graph.OutputOrder, sym.Name)
	}
	computeLevels(tr.graph)
	return tr.graph, nil
}

// MustTranslate translates a known-good unit, panicking on error.
func MustTranslate(u *dsl.Unit) *Graph {
	g, err := Translate(u)
	if err != nil {
		panic(err)
	}
	return g
}

func (tr *translator) newNode(op Op, args ...*Node) *Node {
	n := &Node{ID: len(tr.graph.Nodes), Op: op, Args: args}
	tr.graph.Nodes = append(tr.graph.Nodes, n)
	for _, a := range args {
		a.Consumers = append(a.Consumers, n)
	}
	return n
}

// intern returns an existing node for key or creates one with build.
func (tr *translator) intern(key string, build func() *Node) *Node {
	if n, ok := tr.cse[key]; ok {
		return n
	}
	n := build()
	tr.cse[key] = n
	return n
}

func (tr *translator) constNode(v float64) *Node {
	key := "c:" + strconv.FormatFloat(v, 'g', -1, 64)
	return tr.intern(key, func() *Node {
		n := tr.newNode(OpConst)
		n.Const = v
		return n
	})
}

func (tr *translator) leafNode(op Op, name string, size, flat int) *Node {
	key := fmt.Sprintf("l:%d:%s:%d", op, name, flat)
	return tr.intern(key, func() *Node {
		n := tr.newNode(op)
		n.Var = name
		n.Index = flat
		table := tr.graph.DataLeaves
		if op == OpModel {
			table = tr.graph.ModelLeaves
		}
		leaves := table[name]
		if leaves == nil {
			leaves = make([]*Node, size)
			table[name] = leaves
		}
		leaves[flat] = n
		return n
	})
}

func (tr *translator) opNode(op Op, args ...*Node) *Node {
	// Constant folding for fully constant operands keeps graphs tidy when
	// the programmer writes literal arithmetic.
	if allConst(args) {
		if v, ok := foldConst(op, args); ok {
			return tr.constNode(v)
		}
	}
	var key strings.Builder
	fmt.Fprintf(&key, "o:%d", op)
	for _, a := range args {
		fmt.Fprintf(&key, ":%d", a.ID)
	}
	return tr.intern(key.String(), func() *Node { return tr.newNode(op, args...) })
}

func allConst(args []*Node) bool {
	for _, a := range args {
		if a.Op != OpConst {
			return false
		}
	}
	return true
}

func foldConst(op Op, args []*Node) (float64, bool) {
	a := func(i int) float64 { return args[i].Const }
	switch op {
	case OpAdd:
		return a(0) + a(1), true
	case OpSub:
		return a(0) - a(1), true
	case OpMul:
		return a(0) * a(1), true
	case OpNeg:
		return -a(0), true
	case OpDiv:
		if a(1) != 0 {
			return a(0) / a(1), true
		}
	}
	return 0, false
}

// iterEnv maps bound iterator names to their current values during
// elaboration.
type iterEnv map[string]int

// elaborate expands one assignment statement over its LHS iteration space.
func (tr *translator) elaborate(st *dsl.Assign) error {
	sym := tr.unit.Symbols[st.Name]
	if sym == nil {
		return fmt.Errorf("dfg: unknown symbol %q", st.Name)
	}
	// Determine the iteration space from plain-iterator LHS subscripts.
	type axis struct {
		iter   string
		lo, hi int
	}
	var axes []axis
	for pos, ix := range st.Indices {
		ref, ok := ix.(*dsl.VarRef)
		if ok && len(ref.Indices) == 0 {
			if it := tr.unit.Symbols[ref.Name]; it != nil && it.Kind == dsl.KindIterator {
				// An iterator may cover a prefix of the dimension (the
				// uncovered gradient elements default to zero); spilling
				// past the dimension is caught by the flat-index bounds
				// check below.
				axes = append(axes, axis{iter: ref.Name, lo: it.Lo, hi: it.Hi})
				continue
			}
		}
		return fmt.Errorf("dfg: %s: LHS subscript %d of %s must be a plain iterator", st.Pos, pos, st.Name)
	}

	if tr.env[st.Name] == nil {
		tr.env[st.Name] = make([]*Node, sym.Size())
	}
	// Enumerate all points of the (possibly empty) iteration space.
	env := iterEnv{}
	var walk func(d int) error
	walk = func(d int) error {
		if d == len(axes) {
			node, err := tr.eval(st.RHS, env)
			if err != nil {
				return err
			}
			flat, err := tr.flatIndex(sym, st.Indices, env, st.Pos)
			if err != nil {
				return err
			}
			tr.env[st.Name][flat] = node
			return nil
		}
		ax := axes[d]
		for v := ax.lo; v < ax.hi; v++ {
			env[ax.iter] = v
			if err := walk(d + 1); err != nil {
				return err
			}
		}
		delete(env, ax.iter)
		return nil
	}
	return walk(0)
}

// flatIndex computes the row-major flat index of a subscripted reference.
func (tr *translator) flatIndex(sym *dsl.Symbol, indices []dsl.Expr, env iterEnv, pos dsl.Pos) (int, error) {
	flat := 0
	for d, ix := range indices {
		v, err := tr.evalIndex(ix, env)
		if err != nil {
			return 0, err
		}
		if v < 0 || v >= sym.Dims[d] {
			return 0, fmt.Errorf("dfg: %s: index %d out of range [0,%d) for dimension %d of %s",
				pos, v, sym.Dims[d], d, sym.Name)
		}
		flat = flat*sym.Dims[d] + v
	}
	return flat, nil
}

// evalIndex evaluates an index expression to a concrete integer under the
// current iterator bindings.
func (tr *translator) evalIndex(e dsl.Expr, env iterEnv) (int, error) {
	switch e := e.(type) {
	case *dsl.NumberLit:
		return int(e.Value), nil
	case *dsl.VarRef:
		if v, ok := env[e.Name]; ok {
			return v, nil
		}
		if v, ok := tr.unit.Params[e.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("dfg: %s: index variable %q is not a bound iterator or parameter",
			e.Position(), e.Name)
	case *dsl.UnaryExpr:
		v, err := tr.evalIndex(e.X, env)
		return -v, err
	case *dsl.BinaryExpr:
		x, err := tr.evalIndex(e.X, env)
		if err != nil {
			return 0, err
		}
		y, err := tr.evalIndex(e.Y, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case dsl.OpAdd:
			return x + y, nil
		case dsl.OpSub:
			return x - y, nil
		case dsl.OpMul:
			return x * y, nil
		case dsl.OpDiv:
			if y == 0 {
				return 0, fmt.Errorf("dfg: %s: division by zero in index", e.Position())
			}
			return x / y, nil
		}
	}
	return 0, fmt.Errorf("dfg: %s is not a valid index expression", e)
}

var binOpMap = map[dsl.BinaryOp]Op{
	dsl.OpAdd: OpAdd, dsl.OpSub: OpSub, dsl.OpMul: OpMul, dsl.OpDiv: OpDiv,
	dsl.OpGT: OpGT, dsl.OpLT: OpLT, dsl.OpGE: OpGE, dsl.OpLE: OpLE,
	dsl.OpEQ: OpEQ, dsl.OpNE: OpNE,
}

var callOpMap = map[string]Op{
	"sigmoid": OpSigmoid, "gaussian": OpGaussian, "log": OpLog, "exp": OpExp,
	"sqrt": OpSqrt, "tanh": OpTanh, "relu": OpRelu, "abs": OpAbs, "sign": OpSign,
}

// eval builds the DFG node for an expression under the current iterator
// bindings.
func (tr *translator) eval(e dsl.Expr, env iterEnv) (*Node, error) {
	switch e := e.(type) {
	case *dsl.NumberLit:
		return tr.constNode(e.Value), nil
	case *dsl.VarRef:
		return tr.evalRef(e, env)
	case *dsl.UnaryExpr:
		x, err := tr.eval(e.X, env)
		if err != nil {
			return nil, err
		}
		if x.Op == OpConst {
			return tr.constNode(-x.Const), nil
		}
		return tr.opNode(OpNeg, x), nil
	case *dsl.BinaryExpr:
		x, err := tr.eval(e.X, env)
		if err != nil {
			return nil, err
		}
		y, err := tr.eval(e.Y, env)
		if err != nil {
			return nil, err
		}
		return tr.opNode(binOpMap[e.Op], x, y), nil
	case *dsl.CondExpr:
		c, err := tr.eval(e.Cond, env)
		if err != nil {
			return nil, err
		}
		t, err := tr.eval(e.Then, env)
		if err != nil {
			return nil, err
		}
		f, err := tr.eval(e.Else, env)
		if err != nil {
			return nil, err
		}
		return tr.opNode(OpSelect, c, t, f), nil
	case *dsl.Reduce:
		return tr.evalReduce(e, env)
	case *dsl.CallExpr:
		op, ok := callOpMap[e.Fn]
		if !ok {
			return nil, fmt.Errorf("dfg: %s: unknown function %q", e.Position(), e.Fn)
		}
		x, err := tr.eval(e.Args[0], env)
		if err != nil {
			return nil, err
		}
		return tr.opNode(op, x), nil
	}
	return nil, fmt.Errorf("dfg: unknown expression %T", e)
}

func (tr *translator) evalRef(e *dsl.VarRef, env iterEnv) (*Node, error) {
	if v, ok := env[e.Name]; ok {
		return tr.constNode(float64(v)), nil
	}
	if v, ok := tr.unit.Params[e.Name]; ok {
		return tr.constNode(float64(v)), nil
	}
	sym := tr.unit.Symbols[e.Name]
	if sym == nil {
		return nil, fmt.Errorf("dfg: %s: undefined %q", e.Position(), e.Name)
	}
	flat, err := tr.flatIndex(sym, e.Indices, env, e.Position())
	if err != nil {
		return nil, err
	}
	switch sym.Kind {
	case dsl.KindModelInput, dsl.KindModelOutput:
		return tr.leafNode(OpData, sym.Name, sym.Size(), flat), nil
	case dsl.KindModel:
		return tr.leafNode(OpModel, sym.Name, sym.Size(), flat), nil
	case dsl.KindInterim, dsl.KindGradient:
		nodes := tr.env[sym.Name]
		if nodes == nil || nodes[flat] == nil {
			return nil, fmt.Errorf("dfg: %s: %s[%d] read before assignment", e.Position(), sym.Name, flat)
		}
		return nodes[flat], nil
	}
	return nil, fmt.Errorf("dfg: %s: cannot reference %s %q", e.Position(), sym.Kind, e.Name)
}

// evalReduce expands Σ/Π over the iterator into a balanced binary tree.
func (tr *translator) evalReduce(e *dsl.Reduce, env iterEnv) (*Node, error) {
	it := tr.unit.Symbols[e.Iter]
	terms := make([]*Node, 0, it.Count())
	for v := it.Lo; v < it.Hi; v++ {
		env[e.Iter] = v
		n, err := tr.eval(e.Body, env)
		if err != nil {
			delete(env, e.Iter)
			return nil, err
		}
		terms = append(terms, n)
	}
	delete(env, e.Iter)
	op := OpAdd
	if e.Kind == dsl.ReduceProd {
		op = OpMul
	}
	return tr.reduceTree(op, terms), nil
}

// reduceTree combines terms by power-of-two recursive halving — fold the
// top half onto the bottom half — with any non-power-of-two remainder
// reduced recursively and merged at the root. Halving over a power-of-two
// span matters for the mapped schedule: with the memory-aligned data layout
// and power-of-two PE arrays, term k and term k+half live on the same PE
// whenever half is a multiple of the per-thread PE count, so the first
// log2(n/PEs) reduction levels are bus-free local accumulations and only
// the final log2(PEs) levels travel the interconnect — exactly the
// local-then-tree reduction the hardware's tree-bus ALUs perform.
func (tr *translator) reduceTree(op Op, terms []*Node) *Node {
	n := len(terms)
	if n == 1 {
		return terms[0]
	}
	k := 1
	for k*2 <= n {
		k *= 2
	}
	work := append([]*Node(nil), terms[:k]...)
	for len(work) > 1 {
		half := len(work) / 2
		for i := 0; i < half; i++ {
			work[i] = tr.opNode(op, work[i], work[i+half])
		}
		work = work[:half]
	}
	if k == n {
		return work[0]
	}
	return tr.opNode(op, work[0], tr.reduceTree(op, terms[k:]))
}

// computeLevels fills in ASAP levels and heights. Creation order is
// topological, so a single forward and a single backward pass suffice.
func computeLevels(g *Graph) {
	for _, n := range g.Nodes {
		lvl := 0
		for _, a := range n.Args {
			al := a.Level
			if !a.Op.IsLeaf() {
				al++ // a compute arg adds a pipeline step
			}
			if al > lvl {
				lvl = al
			}
		}
		n.Level = lvl
	}
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		n := g.Nodes[i]
		h := 0
		for _, c := range n.Consumers {
			if c.Height+1 > h {
				h = c.Height + 1
			}
		}
		n.Height = h
	}
}
