package dfg

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the compiled evaluation tape: a lowering of a Graph
// into a flat, topologically ordered instruction array executed by a
// register-machine loop over a per-thread scratch arena. The tape is the
// hot-path twin of Graph.Eval — the interpreter remains the golden
// reference, and the tape is differentially tested against it bit-for-bit.
//
// The lowering eliminates the interpreter's steady-state overheads:
//
//   - per-leaf map lookups become per-symbol binding resolutions applied as
//     direct (slot, element) copies into the value arena;
//   - missing-binding error checks move to Bind time (once per binding map,
//     not once per leaf per vector);
//   - unsupported-op errors move to compile time, so instruction dispatch
//     is a bare switch with no error return;
//   - the per-call vals slice and output map become arena state reused
//     across evaluations, making the steady state allocation-free.

// instr is one tape instruction. dst is the value-arena slot the result is
// written to (slot == node ID); a, b, c are operand slots, -1 when unused.
type instr struct {
	op      Op
	dst     int32
	a, b, c int32
}

// leafLoad copies element elem of a bound symbol vector into arena slot
// slot.
type leafLoad struct {
	slot int32
	elem int32
}

// symBinding is a symbol's compiled binding plan: the loads that scatter
// its vector into the arena, and the minimum vector length that makes every
// load in range (validated once per Bind).
type symBinding struct {
	name   string
	minLen int
	loads  []leafLoad
}

// outGather collects arena slots into one named gradient output vector.
type outGather struct {
	name  string
	slots []int32
}

// Tape is a Graph compiled for repeated evaluation. A Tape is immutable
// after compilation and safe to share across goroutines; each evaluating
// goroutine owns a private Arena.
type Tape struct {
	nSlots int
	// template holds OpConst values at their slots; copied into each new
	// arena once (const slots are never overwritten afterwards).
	template []float64
	instrs   []instr
	data     []symBinding
	model    []symBinding
	outs     []outGather
}

// CompileTape lowers the graph into an evaluation tape. All structural
// checks — dense topological IDs, known ops, correct arities — happen here,
// so Arena.Eval needs no error path.
func (g *Graph) CompileTape() (*Tape, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	t := &Tape{
		nSlots:   len(g.Nodes),
		template: make([]float64, len(g.Nodes)),
	}

	dataSyms := map[string]*symBinding{}
	modelSyms := map[string]*symBinding{}
	for _, n := range g.Nodes {
		switch n.Op {
		case OpConst:
			t.template[n.ID] = n.Const
		case OpData, OpModel:
			syms := dataSyms
			if n.Op == OpModel {
				syms = modelSyms
			}
			sb := syms[n.Var]
			if sb == nil {
				sb = &symBinding{name: n.Var}
				syms[n.Var] = sb
			}
			if n.Index < 0 {
				return nil, fmt.Errorf("dfg: compile: leaf %s has negative index %d", n.Var, n.Index)
			}
			sb.loads = append(sb.loads, leafLoad{slot: int32(n.ID), elem: int32(n.Index)})
			if n.Index+1 > sb.minLen {
				sb.minLen = n.Index + 1
			}
		default:
			in, err := lowerNode(n)
			if err != nil {
				return nil, err
			}
			t.instrs = append(t.instrs, in)
		}
	}
	t.data = sortedBindings(dataSyms)
	t.model = sortedBindings(modelSyms)

	names := make([]string, 0, len(g.Outputs))
	for name := range g.Outputs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		nodes := g.Outputs[name]
		slots := make([]int32, len(nodes))
		for i, n := range nodes {
			slots[i] = int32(n.ID)
		}
		t.outs = append(t.outs, outGather{name: name, slots: slots})
	}
	if debugCheck {
		if issues := t.Check(g); len(issues) > 0 {
			return nil, fmt.Errorf("dfg: tape self-check failed: %s", issues[0])
		}
	}
	return t, nil
}

// lowerNode translates one compute node into an instruction, checking op
// and arity validity.
func lowerNode(n *Node) (instr, error) {
	in := instr{op: n.Op, dst: int32(n.ID), a: -1, b: -1, c: -1}
	var arity int
	switch n.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpGT, OpLT, OpGE, OpLE, OpEQ, OpNE:
		arity = 2
	case OpNeg, OpSigmoid, OpGaussian, OpLog, OpExp, OpSqrt, OpTanh, OpRelu, OpAbs, OpSign:
		arity = 1
	case OpSelect:
		arity = 3
	default:
		return in, fmt.Errorf("dfg: compile: unsupported op %s", n.Op)
	}
	if len(n.Args) != arity {
		return in, fmt.Errorf("dfg: compile: op %s has %d args, want %d", n.Op, len(n.Args), arity)
	}
	in.a = int32(n.Args[0].ID)
	if arity > 1 {
		in.b = int32(n.Args[1].ID)
	}
	if arity > 2 {
		in.c = int32(n.Args[2].ID)
	}
	return in, nil
}

func sortedBindings(syms map[string]*symBinding) []symBinding {
	names := make([]string, 0, len(syms))
	for name := range syms {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]symBinding, len(names))
	for i, name := range names {
		out[i] = *syms[name]
	}
	return out
}

// NumInstrs returns the number of compute instructions on the tape.
func (t *Tape) NumInstrs() int { return len(t.instrs) }

// Instr returns instruction i's operation and destination node ID (arena
// slots are node IDs). Profilers use this to attribute simulated cycles to
// the DFG nodes a batch executed; i must be in [0, NumInstrs()).
func (t *Tape) Instr(i int) (op Op, node int) {
	in := t.instrs[i]
	return in.op, int(in.dst)
}

// Arena is one evaluator's private scratch state: the value slots, the
// reusable gradient output map, and the currently bound symbol vectors. An
// Arena is not safe for concurrent use; create one per goroutine with
// Tape.NewArena.
type Arena struct {
	tape *Tape
	vals []float64
	// out and outVecs alias the same slices: out is handed to callers,
	// outVecs drives the allocation-free gather.
	out     map[string][]float64
	outVecs [][]float64
}

// NewArena allocates the per-thread scratch state for evaluating t. The
// returned arena owns its output map: successive Eval calls overwrite the
// same slices, so callers must consume (or copy) results before the next
// evaluation.
func (t *Tape) NewArena() *Arena {
	a := &Arena{
		tape:    t,
		vals:    make([]float64, t.nSlots),
		out:     make(map[string][]float64, len(t.outs)),
		outVecs: make([][]float64, len(t.outs)),
	}
	copy(a.vals, t.template)
	for i, o := range t.outs {
		vec := make([]float64, len(o.slots))
		a.out[o.name] = vec
		a.outVecs[i] = vec
	}
	return a
}

// BindData resolves and validates one vector's data bindings, scattering
// the bound values into the arena. It is the only steady-state error check:
// each symbol costs one map lookup and one length comparison, independent
// of how many leaves read it.
func (a *Arena) BindData(data map[string][]float64) error {
	return a.bind(a.tape.data, data, "data")
}

// BindModel resolves and validates the model bindings. Model vectors are
// bound by reference semantics at copy time: callers that update the bound
// slices in place (the per-thread local SGD step) must re-bind — or simply
// rely on the next BindModel call — before the next evaluation observes the
// update. In practice RunBatch re-binds the model after each update.
func (a *Arena) BindModel(model map[string][]float64) error {
	return a.bind(a.tape.model, model, "model")
}

// Bind resolves both halves of a binding set.
func (a *Arena) Bind(b Bindings) error {
	if err := a.BindData(b.Data); err != nil {
		return err
	}
	return a.BindModel(b.Model)
}

func (a *Arena) bind(syms []symBinding, vecs map[string][]float64, kind string) error {
	vals := a.vals
	for i := range syms {
		sb := &syms[i]
		vec, ok := vecs[sb.name]
		if !ok || len(vec) < sb.minLen {
			return fmt.Errorf("dfg: bind: missing %s binding %s[%d]", kind, sb.name, sb.minLen-1)
		}
		for _, ld := range sb.loads {
			vals[ld.slot] = vec[ld.elem]
		}
	}
	return nil
}

// Eval executes the tape over the currently bound leaves and returns the
// gradient outputs. The returned map and its slices are owned by the arena
// and reused by the next Eval; it never allocates and never fails — all
// failure modes were discharged at compile or bind time.
//
// The nonlinear cases below are textually identical to EvalNonlinear so the
// tape stays bit-for-bit equal to the interpreter (enforced by the
// differential tests in tape_test.go).
func (a *Arena) Eval() map[string][]float64 {
	vals := a.vals
	for i := range a.tape.instrs {
		in := &a.tape.instrs[i]
		switch in.op {
		case OpAdd:
			vals[in.dst] = vals[in.a] + vals[in.b]
		case OpSub:
			vals[in.dst] = vals[in.a] - vals[in.b]
		case OpMul:
			vals[in.dst] = vals[in.a] * vals[in.b]
		case OpDiv:
			vals[in.dst] = vals[in.a] / vals[in.b]
		case OpNeg:
			vals[in.dst] = -vals[in.a]
		case OpGT:
			vals[in.dst] = boolVal(vals[in.a] > vals[in.b])
		case OpLT:
			vals[in.dst] = boolVal(vals[in.a] < vals[in.b])
		case OpGE:
			vals[in.dst] = boolVal(vals[in.a] >= vals[in.b])
		case OpLE:
			vals[in.dst] = boolVal(vals[in.a] <= vals[in.b])
		case OpEQ:
			vals[in.dst] = boolVal(vals[in.a] == vals[in.b])
		case OpNE:
			vals[in.dst] = boolVal(vals[in.a] != vals[in.b])
		case OpSelect:
			if vals[in.a] != 0 {
				vals[in.dst] = vals[in.b]
			} else {
				vals[in.dst] = vals[in.c]
			}
		case OpSigmoid:
			vals[in.dst] = 1 / (1 + math.Exp(-vals[in.a]))
		case OpGaussian:
			x := vals[in.a]
			vals[in.dst] = math.Exp(-x * x)
		case OpLog:
			vals[in.dst] = math.Log(vals[in.a])
		case OpExp:
			vals[in.dst] = math.Exp(vals[in.a])
		case OpSqrt:
			vals[in.dst] = math.Sqrt(vals[in.a])
		case OpTanh:
			vals[in.dst] = math.Tanh(vals[in.a])
		case OpRelu:
			vals[in.dst] = math.Max(0, vals[in.a])
		case OpAbs:
			vals[in.dst] = math.Abs(vals[in.a])
		case OpSign:
			x := vals[in.a]
			switch {
			case x > 0:
				vals[in.dst] = 1
			case x < 0:
				vals[in.dst] = -1
			default:
				vals[in.dst] = 0
			}
		}
	}
	for i := range a.tape.outs {
		dst := a.outVecs[i]
		for j, s := range a.tape.outs[i].slots {
			dst[j] = vals[s]
		}
	}
	return a.out
}

// EvalBindings binds b and evaluates in one call: the drop-in compiled
// replacement for Graph.Eval when the caller owns an arena.
func (a *Arena) EvalBindings(b Bindings) (map[string][]float64, error) {
	if err := a.Bind(b); err != nil {
		return nil, err
	}
	return a.Eval(), nil
}
