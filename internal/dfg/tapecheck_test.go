package dfg

import (
	"strings"
	"testing"

	"repro/internal/dsl"
)

func tapeFor(t *testing.T, src string, params map[string]int) (*Graph, *Tape) {
	t.Helper()
	u, err := dsl.ParseAndAnalyze(src, params)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Translate(u)
	if err != nil {
		t.Fatal(err)
	}
	tape, err := g.CompileTape()
	if err != nil {
		t.Fatal(err)
	}
	return g, tape
}

func TestTapeCheckCleanOnAllSources(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		params map[string]int
	}{
		{"linreg", dsl.SourceLinearRegression, map[string]int{"M": 16}},
		{"logreg", dsl.SourceLogisticRegression, map[string]int{"M": 16}},
		{"svm", dsl.SourceSVM, map[string]int{"M": 16}},
		{"backprop", dsl.SourceBackprop, map[string]int{"IN": 6, "HID": 4, "OUT": 3}},
		{"cf", dsl.SourceCollaborativeFiltering, map[string]int{"NU": 5, "NV": 4, "K": 3}},
		{"softmax", dsl.SourceSoftmax, map[string]int{"M": 8, "C": 3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, tape := tapeFor(t, c.src, c.params)
			if issues := tape.Check(g); len(issues) != 0 {
				t.Errorf("fresh tape reported issues: %v", issues)
			}
		})
	}
}

// TestTapeCheckCatchesCorruption corrupts one field per case and asserts the
// audit names the damage.
func TestTapeCheckCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*Tape)
		want    string
	}{
		{"operand-out-of-bounds", func(tp *Tape) {
			tp.instrs[0].a = int32(tp.nSlots) + 7
		}, "operand"},
		{"operand-not-topological", func(tp *Tape) {
			tp.instrs[0].a = tp.instrs[0].dst
		}, "strictly before"},
		{"wrong-opcode", func(tp *Tape) {
			tp.instrs[0].op = OpTanh
		}, "op tanh"},
		{"dst-out-of-range", func(tp *Tape) {
			tp.instrs[0].dst = -3
		}, "destination slot"},
		{"const-drift", func(tp *Tape) {
			for i := range tp.template {
				tp.template[i] += 41
			}
		}, "template slot"},
		{"binding-retarget", func(tp *Tape) {
			tp.data[0].loads[0].elem++
		}, "binding"},
		{"binding-dropped", func(tp *Tape) {
			tp.data[0].loads = tp.data[0].loads[:len(tp.data[0].loads)-1]
		}, "never loaded"},
		{"output-retarget", func(tp *Tape) {
			tp.outs[0].slots[0] = 0
		}, "output"},
		{"instr-dropped", func(tp *Tape) {
			tp.instrs = tp.instrs[:len(tp.instrs)-1]
		}, "instructions"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, tape := tapeFor(t, dsl.SourceSVM, map[string]int{"M": 12})
			c.corrupt(tape)
			issues := tape.Check(g)
			if len(issues) == 0 {
				t.Fatal("corruption not detected")
			}
			found := false
			for _, is := range issues {
				if strings.Contains(is, c.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no issue mentions %q: %v", c.want, issues)
			}
		})
	}
}
