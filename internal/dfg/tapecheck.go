package dfg

import (
	"fmt"
	"os"
)

// This file implements the tape's static self-verification: a structural
// audit of a compiled Tape against the graph it was lowered from. CompileTape
// constructs tapes that pass by construction; Check exists so the
// verification layer (internal/check, `cosmicc vet`) can prove that — and so
// corruption anywhere between lowering and evaluation is caught before it
// silently produces wrong gradients.

// debugCheck enables the self-audit at tape-construction time. It is the
// same flag `cosmicc vet` and core.BuildProgram honor, so one environment
// variable turns the whole stack's artifact verification on.
var debugCheck = os.Getenv("COSMIC_VET") != ""

// Check audits the tape against g and returns one human-readable issue per
// violation (empty means the tape is a faithful lowering). It verifies:
//
//   - arena geometry: one slot per graph node, template sized to match;
//   - instructions: known opcodes with correct arity, destination slots that
//     are compute nodes carrying the same op, operand slots in-bounds and
//     strictly below the destination (the topological property Eval's
//     single pass relies on);
//   - constants: the template holds exactly the OpConst values at their
//     slots and zero elsewhere;
//   - bindings: every DATA/MODEL leaf is loaded exactly once, from its own
//     symbol at its own element index, with minLen covering every load;
//   - outputs: the gather lists name every gradient symbol and collect the
//     exact producing nodes, in flat element order.
func (t *Tape) Check(g *Graph) []string {
	var issues []string
	bad := func(format string, args ...any) {
		issues = append(issues, fmt.Sprintf(format, args...))
	}
	if t.nSlots != len(g.Nodes) {
		bad("tape has %d slots, graph has %d nodes", t.nSlots, len(g.Nodes))
		return issues
	}
	if len(t.template) != t.nSlots {
		bad("template has %d entries, want %d", len(t.template), t.nSlots)
		return issues
	}

	// Instructions: one per compute node, in slot order.
	if len(t.instrs) != g.NumOps() {
		bad("tape has %d instructions, graph has %d compute nodes", len(t.instrs), g.NumOps())
	}
	covered := make([]bool, t.nSlots)
	for i := range t.instrs {
		in := &t.instrs[i]
		if in.dst < 0 || int(in.dst) >= t.nSlots {
			bad("instr %d: destination slot %d out of range", i, in.dst)
			continue
		}
		n := g.Nodes[in.dst]
		if n.Op.IsLeaf() {
			bad("instr %d: destination slot %d is a %s leaf", i, in.dst, n.Op)
			continue
		}
		if covered[in.dst] {
			bad("instr %d: destination slot %d written twice", i, in.dst)
		}
		covered[in.dst] = true
		if in.op != n.Op {
			bad("instr %d: op %s but node %d is %s", i, in.op, in.dst, n.Op)
		}
		ops := []int32{in.a, in.b, in.c}
		for k, a := range n.Args {
			if k >= len(ops) || ops[k] != int32(a.ID) {
				bad("instr %d: operand %d is slot %d, node %d wants %d", i, k, ops[k], in.dst, a.ID)
			}
		}
		for k, s := range ops {
			if k < len(n.Args) {
				if s < 0 || s >= in.dst {
					bad("instr %d: operand slot %d not strictly before destination %d", i, s, in.dst)
				}
			} else if s != -1 {
				bad("instr %d: unused operand %d is %d, want -1", i, k, s)
			}
		}
	}

	// Constants: template holds Const values at const slots, zero elsewhere.
	for _, n := range g.Nodes {
		switch {
		case n.Op == OpConst:
			if t.template[n.ID] != n.Const {
				bad("template slot %d holds %g, const node wants %g", n.ID, t.template[n.ID], n.Const)
			}
		case t.template[n.ID] != 0:
			bad("template slot %d holds %g but node is not a constant", n.ID, t.template[n.ID])
		}
	}

	t.checkBindings(g, OpData, t.data, bad)
	t.checkBindings(g, OpModel, t.model, bad)

	// Outputs: sorted names covering every gradient symbol, slots matching
	// the producing nodes element-for-element.
	if len(t.outs) != len(g.Outputs) {
		bad("tape gathers %d outputs, graph has %d", len(t.outs), len(g.Outputs))
	}
	prev := ""
	for _, o := range t.outs {
		if o.name <= prev && prev != "" {
			bad("output %q out of sorted order", o.name)
		}
		prev = o.name
		nodes, ok := g.Outputs[o.name]
		if !ok {
			bad("tape gathers unknown output %q", o.name)
			continue
		}
		if len(o.slots) != len(nodes) {
			bad("output %q gathers %d slots, graph has %d elements", o.name, len(o.slots), len(nodes))
			continue
		}
		for i, s := range o.slots {
			if nodes[i] == nil {
				bad("output %s[%d] has no producing node", o.name, i)
			} else if int(s) != nodes[i].ID {
				bad("output %s[%d] gathered from slot %d, want node %d", o.name, i, s, nodes[i].ID)
			}
		}
	}
	return issues
}

// checkBindings audits one side (data or model) of the binding plan. The
// graph's nodes are the authority (leaf tables may legitimately be absent
// on hand-built graphs; check.Graph audits those against the DSL unit).
func (t *Tape) checkBindings(g *Graph, kind Op, syms []symBinding, bad func(string, ...any)) {
	side := "data"
	if kind == OpModel {
		side = "model"
	}
	loaded := make(map[int32]bool, t.nSlots)
	for i := range syms {
		sb := &syms[i]
		for _, ld := range sb.loads {
			if ld.slot < 0 || int(ld.slot) >= t.nSlots {
				bad("%s binding %q: load slot %d out of range", side, sb.name, ld.slot)
				continue
			}
			n := g.Nodes[ld.slot]
			if n.Op != kind || n.Var != sb.name || int32(n.Index) != ld.elem {
				bad("%s binding %q: slot %d loads element %d, node is %s %s[%d]",
					side, sb.name, ld.slot, ld.elem, n.Op, n.Var, n.Index)
			}
			if int(ld.elem) >= sb.minLen {
				bad("%s binding %q: element %d not covered by minLen %d", side, sb.name, ld.elem, sb.minLen)
			}
			if loaded[ld.slot] {
				bad("%s binding %q: slot %d loaded twice", side, sb.name, ld.slot)
			}
			loaded[ld.slot] = true
		}
	}
	for _, n := range g.Nodes {
		if n.Op == kind && !loaded[int32(n.ID)] {
			bad("%s leaf %s[%d] (slot %d) never loaded by any binding", side, n.Var, n.Index, n.ID)
		}
	}
}
