// Package dfg implements CoSMIC's Translator: it elaborates an analyzed DSL
// program into a Dataflow Graph (DFG) of scalar operations, the intermediate
// representation consumed by the Planner (architecture layer) and the
// Compiler (mapping/scheduling layer).
//
// Nodes produce exactly one value. Leaf nodes carry training data (DATA),
// model parameters (MODEL) or constants; interior nodes are arithmetic,
// comparison, select, or nonlinear operations; nodes assigned to gradient
// variables are the graph's outputs. Reductions (Σ, Π) are expanded into
// balanced binary trees, mirroring the logarithmic-depth reduction the
// template architecture's tree bus performs in hardware.
package dfg

import (
	"fmt"
	"sort"

	"repro/internal/dsl"
)

// Op enumerates DFG operation kinds.
type Op int

// DFG operations. OpData/OpModel/OpConst are leaves.
const (
	OpData Op = iota
	OpModel
	OpConst
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpNeg
	OpGT
	OpLT
	OpGE
	OpLE
	OpEQ
	OpNE
	OpSelect // Args[0] ? Args[1] : Args[2]
	OpSigmoid
	OpGaussian
	OpLog
	OpExp
	OpSqrt
	OpTanh
	OpRelu
	OpAbs
	OpSign
)

var opNames = [...]string{
	OpData: "data", OpModel: "model", OpConst: "const",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpNeg: "neg",
	OpGT: ">", OpLT: "<", OpGE: ">=", OpLE: "<=", OpEQ: "==", OpNE: "!=",
	OpSelect: "select", OpSigmoid: "sigmoid", OpGaussian: "gaussian",
	OpLog: "log", OpExp: "exp", OpSqrt: "sqrt", OpTanh: "tanh",
	OpRelu: "relu", OpAbs: "abs", OpSign: "sign",
}

// String returns the operation's printable name.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// IsLeaf reports whether the op is a graph input (no computation).
func (op Op) IsLeaf() bool { return op == OpData || op == OpModel || op == OpConst }

// IsNonlinear reports whether the op is implemented by the PE's lookup-table
// nonlinear unit rather than its ALU.
func (op Op) IsNonlinear() bool {
	switch op {
	case OpSigmoid, OpGaussian, OpLog, OpExp, OpSqrt, OpTanh, OpDiv:
		return true
	}
	return false
}

// Node is a single DFG vertex producing one scalar value.
type Node struct {
	ID   int
	Op   Op
	Args []*Node

	// Const holds the literal value for OpConst leaves.
	Const float64
	// Var and Index identify the symbol element for OpData/OpModel leaves
	// and for gradient output nodes (via Graph.Outputs).
	Var   string
	Index int

	// Consumers lists nodes that use this node's value (filled by the
	// translator).
	Consumers []*Node

	// Level is the node's ASAP depth (leaves at 0). Height is the longest
	// path from this node to any output, used as scheduling priority (the
	// Compiler "prioritizes scheduling operations that have the longest
	// dependence chain").
	Level  int
	Height int
}

// Graph is an elaborated dataflow graph for one worker thread's gradient
// computation.
type Graph struct {
	// Nodes in creation order; creation order is topological (arguments
	// always precede their consumers).
	Nodes []*Node
	// DataLeaves and ModelLeaves index leaf nodes by symbol name, in flat
	// element order (missing elements are nil if never referenced).
	DataLeaves  map[string][]*Node
	ModelLeaves map[string][]*Node
	// Outputs maps each gradient symbol to its element-producing nodes in
	// flat element order.
	Outputs map[string][]*Node
	// OutputOrder lists gradient symbol names in declaration order.
	OutputOrder []string
	Unit        *dsl.Unit
}

// NumOps returns the number of compute (non-leaf) nodes.
func (g *Graph) NumOps() int {
	n := 0
	for _, nd := range g.Nodes {
		if !nd.Op.IsLeaf() {
			n++
		}
	}
	return n
}

// OpCensus returns compute-node counts per operation.
func (g *Graph) OpCensus() map[Op]int {
	c := map[Op]int{}
	for _, nd := range g.Nodes {
		if !nd.Op.IsLeaf() {
			c[nd.Op]++
		}
	}
	return c
}

// HasNonlinear reports whether any node requires the LUT nonlinear unit.
func (g *Graph) HasNonlinear() bool {
	for _, nd := range g.Nodes {
		if nd.Op.IsNonlinear() {
			return true
		}
	}
	return false
}

// CriticalPath returns the longest compute-node chain in the graph, the
// lower bound on single-thread latency.
func (g *Graph) CriticalPath() int {
	max := 0
	for _, nd := range g.Nodes {
		if nd.Level > max {
			max = nd.Level
		}
	}
	return max
}

// WidthProfile returns, per ASAP level, the number of compute nodes at that
// level: the fine-grained parallelism profile that bounds how many PEs a
// single thread can keep busy.
func (g *Graph) WidthProfile() []int {
	prof := make([]int, g.CriticalPath()+1)
	for _, nd := range g.Nodes {
		if !nd.Op.IsLeaf() {
			prof[nd.Level]++
		}
	}
	return prof
}

// MaxWidth returns the maximum of the width profile.
func (g *Graph) MaxWidth() int {
	max := 0
	for _, w := range g.WidthProfile() {
		if w > max {
			max = w
		}
	}
	return max
}

// AvgWidth returns the mean compute width per level, a measure of how much
// fine-grained parallelism a single thread exposes.
func (g *Graph) AvgWidth() float64 {
	cp := g.CriticalPath()
	if cp == 0 {
		return 0
	}
	return float64(g.NumOps()) / float64(cp)
}

// StorageWords estimates the per-thread on-chip storage footprint in words:
// one word per referenced data element, model parameter, and live interim
// value. The Planner uses this as DFG.storage() when bounding thread count.
func (g *Graph) StorageWords() int {
	words := 0
	for _, leaves := range g.DataLeaves {
		for _, n := range leaves {
			if n != nil {
				words++
			}
		}
	}
	for _, leaves := range g.ModelLeaves {
		for _, n := range leaves {
			if n != nil {
				words++
			}
		}
	}
	for _, nd := range g.Nodes {
		if !nd.Op.IsLeaf() {
			words++
		}
	}
	return words
}

// DataWords returns the number of distinct training-data elements the graph
// reads per input vector.
func (g *Graph) DataWords() int {
	n := 0
	for _, leaves := range g.DataLeaves {
		for _, leaf := range leaves {
			if leaf != nil {
				n++
			}
		}
	}
	return n
}

// ModelWords returns the number of distinct model parameters the graph
// reads.
func (g *Graph) ModelWords() int {
	n := 0
	for _, leaves := range g.ModelLeaves {
		for _, leaf := range leaves {
			if leaf != nil {
				n++
			}
		}
	}
	return n
}

// GradientWords returns the total number of gradient output elements.
func (g *Graph) GradientWords() int {
	n := 0
	for _, outs := range g.Outputs {
		n += len(outs)
	}
	return n
}

// Validate checks structural invariants: IDs are dense and creation order is
// topological. It returns the first violation found.
func (g *Graph) Validate() error {
	for i, nd := range g.Nodes {
		if nd.ID != i {
			return fmt.Errorf("dfg: node %d has ID %d", i, nd.ID)
		}
		for _, a := range nd.Args {
			if a.ID >= nd.ID {
				return fmt.Errorf("dfg: node %d consumes later node %d", nd.ID, a.ID)
			}
		}
		if nd.Op.IsLeaf() && len(nd.Args) != 0 {
			return fmt.Errorf("dfg: leaf node %d has arguments", nd.ID)
		}
	}
	for name, outs := range g.Outputs {
		for i, o := range outs {
			if o == nil {
				return fmt.Errorf("dfg: output %s[%d] is nil", name, i)
			}
		}
	}
	return nil
}

// SortedOutputNames returns gradient symbol names sorted, for deterministic
// iteration when order does not matter semantically.
func (g *Graph) SortedOutputNames() []string {
	names := make([]string, 0, len(g.Outputs))
	for n := range g.Outputs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats summarizes the graph for reports and the Planner.
type Stats struct {
	Nodes        int
	ComputeOps   int
	DataWords    int
	ModelWords   int
	Gradients    int
	CriticalPath int
	MaxWidth     int
	AvgWidth     float64
	StorageWords int
	Nonlinear    bool
	MulOps       int
	AddSubOps    int
}

// Summary computes the graph's statistics.
func (g *Graph) Summary() Stats {
	census := g.OpCensus()
	return Stats{
		Nodes:        len(g.Nodes),
		ComputeOps:   g.NumOps(),
		DataWords:    g.DataWords(),
		ModelWords:   g.ModelWords(),
		Gradients:    g.GradientWords(),
		CriticalPath: g.CriticalPath(),
		MaxWidth:     g.MaxWidth(),
		AvgWidth:     g.AvgWidth(),
		StorageWords: g.StorageWords(),
		Nonlinear:    g.HasNonlinear(),
		MulOps:       census[OpMul],
		AddSubOps:    census[OpAdd] + census[OpSub],
	}
}
