package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/ml"
)

// Binary dataset files let deployments ship pre-generated shards to worker
// machines instead of regenerating them (the paper's nodes each store a
// partition Dᵢ of the training data on local disks). The format is a small
// header followed by packed little-endian float64 rows:
//
//	magic "CSMD" | version u32 | samples u32 | xLen u32 | yLen u32
//	then samples × (xLen + yLen) float64 values
const (
	fileMagic   = "CSMD"
	fileVersion = 1
)

// Save writes samples to w. All samples must share the first sample's
// geometry.
func Save(w io.Writer, samples []ml.Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("dataset: nothing to save")
	}
	xLen, yLen := len(samples[0].X), len(samples[0].Y)
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	for _, v := range []uint32{fileVersion, uint32(len(samples)), uint32(xLen), uint32(yLen)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	writeF := func(x float64) error {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
		_, err := bw.Write(buf)
		return err
	}
	for i, s := range samples {
		if len(s.X) != xLen || len(s.Y) != yLen {
			return fmt.Errorf("dataset: sample %d geometry %dx%d, want %dx%d",
				i, len(s.X), len(s.Y), xLen, yLen)
		}
		for _, v := range s.X {
			if err := writeF(v); err != nil {
				return err
			}
		}
		for _, v := range s.Y {
			if err := writeF(v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a dataset written by Save.
func Load(r io.Reader) ([]ml.Sample, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	var version, count, xLen, yLen uint32
	for _, p := range []*uint32{&version, &count, &xLen, &yLen} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != fileVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", version)
	}
	const maxSaneWords = 1 << 30
	if uint64(count)*uint64(xLen+yLen) > maxSaneWords {
		return nil, fmt.Errorf("dataset: implausible size %d×(%d+%d)", count, xLen, yLen)
	}
	buf := make([]byte, 8)
	readF := func() (float64, error) {
		if _, err := io.ReadFull(br, buf); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf)), nil
	}
	out := make([]ml.Sample, count)
	for i := range out {
		s := ml.Sample{X: make([]float64, xLen), Y: make([]float64, yLen)}
		for j := range s.X {
			v, err := readF()
			if err != nil {
				return nil, fmt.Errorf("dataset: truncated at sample %d: %w", i, err)
			}
			s.X[j] = v
		}
		for j := range s.Y {
			v, err := readF()
			if err != nil {
				return nil, fmt.Errorf("dataset: truncated at sample %d: %w", i, err)
			}
			s.Y[j] = v
		}
		out[i] = s
	}
	return out, nil
}

// SaveFile writes samples to path.
func SaveFile(path string, samples []ml.Sample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(f, samples); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from path.
func LoadFile(path string) ([]ml.Sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
