package dataset

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/ml"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	b, _ := ByName("tumor")
	alg := b.Algorithm(0.02)
	orig := b.Generate(alg, 64, 5)

	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("loaded %d samples, want %d", len(got), len(orig))
	}
	for i := range orig {
		for j := range orig[i].X {
			if got[i].X[j] != orig[i].X[j] {
				t.Fatalf("sample %d X[%d] differs", i, j)
			}
		}
		for j := range orig[i].Y {
			if got[i].Y[j] != orig[i].Y[j] {
				t.Fatalf("sample %d Y[%d] differs", i, j)
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.csmd")
	samples := []ml.Sample{
		{X: []float64{1, 2}, Y: []float64{3}},
		{X: []float64{-4, 5.5}, Y: []float64{0}},
	}
	if err := SaveFile(path, samples); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].X[1] != 5.5 {
		t.Fatalf("loaded %+v", got)
	}
}

func TestSaveRejectsRaggedAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, nil); err == nil {
		t.Error("empty save accepted")
	}
	ragged := []ml.Sample{
		{X: []float64{1}, Y: []float64{1}},
		{X: []float64{1, 2}, Y: []float64{1}},
	}
	if err := Save(&buf, ragged); err == nil {
		t.Error("ragged geometry accepted")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	samples := []ml.Sample{{X: []float64{1, 2, 3}, Y: []float64{4}}}
	var buf bytes.Buffer
	if err := Save(&buf, samples); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte("NOPE"), raw[4:]...)
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated body.
	if _, err := Load(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("truncated file accepted")
	}
	// Implausible declared size.
	huge := append([]byte{}, raw...)
	huge[8], huge[9], huge[10], huge[11] = 0xff, 0xff, 0xff, 0xff // count
	if _, err := Load(bytes.NewReader(huge)); err == nil {
		t.Error("implausible header accepted")
	}
}
