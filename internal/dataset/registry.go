// Package dataset defines the paper's 10-benchmark suite (Table 1) and
// deterministic synthetic dataset generators for each benchmark.
//
// The original datasets (MNIST, Netflix Prize, gene-expression microarrays,
// tick-level stock data, ...) are not available offline, so each benchmark is
// paired with a generator that preserves what the system's behaviour actually
// depends on: the geometry (feature count, model topology, number of
// training vectors) and learnability (labels derive from a hidden
// ground-truth model, so SGD convergence is observable).
package dataset

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/ml"
)

// Family names the five algorithm families of the suite.
type Family string

// The algorithm families.
const (
	FamilyBackprop Family = "backprop"
	FamilyLinReg   Family = "linreg"
	FamilyLogReg   Family = "logreg"
	FamilyCF       Family = "cf"
	FamilySVM      Family = "svm"
)

// Benchmark describes one entry of Table 1.
type Benchmark struct {
	Name        string
	Family      Family
	Domain      string
	Description string

	// Features is the number of elements in each training vector.
	Features int
	// Topology is the model topology: layer sizes for backprop, {M} for the
	// linear families, {users, items, rank} for collaborative filtering.
	Topology []int
	// NumVectors is the number of training vectors in the paper's dataset.
	NumVectors int
	// DataGB is the paper-reported input data size in gigabytes.
	DataGB float64
	// PaperLoC is the paper-reported DSL lines of code.
	PaperLoC int
}

// Benchmarks is the full suite in Table 1 order.
var Benchmarks = []Benchmark{
	{
		Name: "mnist", Family: FamilyBackprop, Domain: "Image Processing",
		Description: "Handwritten digit pattern recognition",
		Features:    784, Topology: []int{784, 784, 10},
		NumVectors: 60000, DataGB: 0.4, PaperLoC: 55,
	},
	{
		Name: "acoustic", Family: FamilyBackprop, Domain: "Audio Processing",
		Description: "Hierarchical acoustic modeling for speech recognition",
		Features:    351, Topology: []int{351, 1000, 40},
		NumVectors: 942626, DataGB: 5.6, PaperLoC: 55,
	},
	{
		Name: "stock", Family: FamilyLinReg, Domain: "Finance",
		Description: "Stock price prediction",
		Features:    8000, Topology: []int{8000},
		NumVectors: 130503, DataGB: 14.7, PaperLoC: 23,
	},
	{
		Name: "texture", Family: FamilyLinReg, Domain: "Image Processing",
		Description: "Image texture recognition",
		Features:    16384, Topology: []int{16384},
		NumVectors: 77461, DataGB: 17.9, PaperLoC: 23,
	},
	{
		Name: "tumor", Family: FamilyLogReg, Domain: "Medical Diagnosis",
		Description: "Tumor classification using gene expression microarray",
		Features:    2000, Topology: []int{2000},
		NumVectors: 387944, DataGB: 10.4, PaperLoC: 22,
	},
	{
		Name: "cancer1", Family: FamilyLogReg, Domain: "Medical Diagnosis",
		Description: "Prostate cancer diagnosis based on the gene expressions",
		Features:    6033, Topology: []int{6033},
		NumVectors: 167219, DataGB: 13.5, PaperLoC: 22,
	},
	{
		Name: "movielens", Family: FamilyCF, Domain: "Recommender System",
		Description: "Movielens recommender system",
		Features:    30101, Topology: []int{20101, 10000, 10},
		NumVectors: 24404096, DataGB: 0.6, PaperLoC: 42,
	},
	{
		Name: "netflix", Family: FamilyCF, Domain: "Recommender System",
		Description: "Netflix recommender system",
		Features:    73066, Topology: []int{55366, 17700, 10},
		NumVectors: 100498287, DataGB: 2.0, PaperLoC: 42,
	},
	{
		Name: "face", Family: FamilySVM, Domain: "Computer Vision",
		Description: "Human face detection",
		Features:    1740, Topology: []int{1740},
		NumVectors: 678392, DataGB: 15.9, PaperLoC: 27,
	},
	{
		Name: "cancer2", Family: FamilySVM, Domain: "Medical Diagnosis",
		Description: "Cancer diagnosis based on the gene expressions",
		Features:    7129, Topology: []int{7129},
		NumVectors: 208444, DataGB: 20.0, PaperLoC: 27,
	},
}

// familyAliases maps algorithm-family names to a representative Table 1
// benchmark, so tools accept `-bench logistic` as well as `-bench tumor`.
var familyAliases = map[string]string{
	"logistic": "tumor",
	"logreg":   "tumor",
	"linear":   "stock",
	"linreg":   "stock",
	"svm":      "face",
	"backprop": "mnist",
	"mlp":      "mnist",
	"cf":       "movielens",
}

// ByName returns the benchmark with the given name. Algorithm-family names
// (logistic, linear, svm, backprop, cf, ...) resolve to a representative
// benchmark of that family.
func ByName(name string) (Benchmark, error) {
	if canon, ok := familyAliases[name]; ok {
		name = canon
	}
	for _, b := range Benchmarks {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("dataset: unknown benchmark %q", name)
}

// Names returns the benchmark names in Table 1 order.
func Names() []string {
	names := make([]string, len(Benchmarks))
	for i, b := range Benchmarks {
		names[i] = b.Name
	}
	return names
}

// ModelParams returns the number of model parameters at full (paper)
// geometry.
func (b Benchmark) ModelParams() int {
	switch b.Family {
	case FamilyBackprop:
		in, hid, out := b.Topology[0], b.Topology[1], b.Topology[2]
		return hid*in + out*hid
	case FamilyCF:
		return (b.Topology[0] + b.Topology[1]) * b.Topology[2]
	default:
		return b.Topology[0]
	}
}

// ModelKB returns the model size in kilobytes assuming 32-bit parameters,
// the unit Table 1 uses.
func (b Benchmark) ModelKB() float64 {
	return float64(b.ModelParams()) * 4 / 1024
}

// Algorithm instantiates the benchmark's algorithm at a geometry scaled by
// scale in (0,1]. scale=1 is the paper geometry; smaller scales preserve
// topology shape while shrinking every dimension (used by the cycle-level
// simulator, which elaborates the full DFG).
func (b Benchmark) Algorithm(scale float64) ml.Algorithm {
	dim := func(n int) int { return scaleDim(n, scale) }
	switch b.Family {
	case FamilyBackprop:
		return &ml.MLP{In: dim(b.Topology[0]), Hid: dim(b.Topology[1]), Out: dim(b.Topology[2])}
	case FamilyLinReg:
		return &ml.LinearRegression{M: dim(b.Topology[0])}
	case FamilyLogReg:
		return &ml.LogisticRegression{M: dim(b.Topology[0])}
	case FamilySVM:
		return &ml.SVM{M: dim(b.Topology[0])}
	case FamilyCF:
		// The factor rank K is an algorithmic constant; only the user/item
		// populations shrink.
		return &ml.CF{NU: dim(b.Topology[0]), NV: dim(b.Topology[1]), K: b.Topology[2]}
	}
	panic("dataset: unknown family " + string(b.Family))
}

// scaleDim scales n by s, clamped to at least 2 so reductions and one-hot
// encodings stay non-degenerate.
func scaleDim(n int, s float64) int {
	if s >= 1 {
		return n
	}
	v := int(math.Round(float64(n) * s))
	if v < 2 {
		v = 2
	}
	return v
}

// DefaultLR returns a learning rate that keeps SGD stable for the
// benchmark's family at the algorithm's geometry. Squared-loss linear
// regression on N(0,1) features diverges unless μ ≲ 1/‖x‖² ≈ 1/M, so its
// rate shrinks with the feature count; the other families have bounded
// per-sample gradients.
func (b Benchmark) DefaultLR(alg ml.Algorithm) float64 {
	switch b.Family {
	case FamilyLinReg:
		return 0.5 / float64(alg.FeatureSize())
	case FamilyLogReg:
		return 0.1
	case FamilySVM:
		return 0.05
	case FamilyBackprop:
		return 0.5
	case FamilyCF:
		return 0.05
	}
	return 0.01
}

// seedFor derives a stable per-benchmark seed.
func seedFor(name string, seed int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64()) ^ seed
}

// Generate produces n learnable synthetic training samples for the
// benchmark's algorithm alg (which must come from b.Algorithm). The same
// (benchmark, seed, n) always yields the same data.
func (b Benchmark) Generate(alg ml.Algorithm, n int, seed int64) []ml.Sample {
	rng := rand.New(rand.NewSource(seedFor(b.Name, seed)))
	truth := groundTruth(alg, rng)
	samples := make([]ml.Sample, n)
	for i := range samples {
		samples[i] = generateSample(alg, truth, rng)
	}
	return samples
}

// GroundTruth returns the hidden model the generator labels from, for tests
// that check recovery.
func (b Benchmark) GroundTruth(alg ml.Algorithm, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seedFor(b.Name, seed)))
	return groundTruth(alg, rng)
}

func groundTruth(alg ml.Algorithm, rng *rand.Rand) []float64 {
	truth := make([]float64, alg.ModelSize())
	switch alg.(type) {
	case *ml.CF:
		for i := range truth {
			truth[i] = 0.2 + 0.8*rng.Float64()
		}
	case *ml.MLP:
		truth = alg.InitModel(rng)
		ml.Scale(3, truth) // saturate activations enough to be learnable
	default:
		for i := range truth {
			truth[i] = rng.NormFloat64() / math.Sqrt(float64(len(truth)))
		}
	}
	return truth
}

func generateSample(alg ml.Algorithm, truth []float64, rng *rand.Rand) ml.Sample {
	s := ml.Sample{
		X: make([]float64, alg.FeatureSize()),
		Y: make([]float64, alg.OutputSize()),
	}
	switch a := alg.(type) {
	case *ml.CF:
		s.X[rng.Intn(a.NU)] = 1
		s.X[a.NU+rng.Intn(a.NV)] = 1
		s.Y[0] = a.Loss(truth, ml.Sample{X: s.X, Y: []float64{0}})
		// Loss is ½(uf·vf)² at rating 0; recover the rating and add noise.
		s.Y[0] = math.Sqrt(2*s.Y[0]) + 0.05*rng.NormFloat64()
	case *ml.MLP:
		for i := range s.X {
			s.X[i] = rng.NormFloat64()
		}
		copy(s.Y, mlpForward(a, truth, s.X))
	case *ml.SVM:
		for i := range s.X {
			s.X[i] = rng.NormFloat64()
		}
		if ml.Dot(truth, s.X) >= 0 {
			s.Y[0] = 1
		} else {
			s.Y[0] = -1
		}
	case *ml.LogisticRegression:
		for i := range s.X {
			s.X[i] = rng.NormFloat64()
		}
		p := 1 / (1 + math.Exp(-4*ml.Dot(truth, s.X)))
		if rng.Float64() < p {
			s.Y[0] = 1
		}
	default: // linear regression
		for i := range s.X {
			s.X[i] = rng.NormFloat64()
		}
		s.Y[0] = ml.Dot(truth, s.X) + 0.01*rng.NormFloat64()
	}
	return s
}

// mlpForward runs the MLP forward pass via the loss-free route: reuse the
// algorithm's gradient machinery would be circular, so compute directly.
func mlpForward(a *ml.MLP, model, x []float64) []float64 {
	w1 := model[:a.Hid*a.In]
	w2 := model[a.Hid*a.In:]
	h := make([]float64, a.Hid)
	for j := 0; j < a.Hid; j++ {
		h[j] = 1 / (1 + math.Exp(-ml.Dot(w1[j*a.In:(j+1)*a.In], x)))
	}
	o := make([]float64, a.Out)
	for k := 0; k < a.Out; k++ {
		o[k] = 1 / (1 + math.Exp(-ml.Dot(w2[k*a.Hid:(k+1)*a.Hid], h)))
	}
	return o
}
