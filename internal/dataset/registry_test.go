package dataset

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsl"
	"repro/internal/ml"
)

func TestSuiteMatchesTable1(t *testing.T) {
	if len(Benchmarks) != 10 {
		t.Fatalf("suite has %d benchmarks, want 10", len(Benchmarks))
	}
	// Model sizes in KB from Table 1 (±2% for rounding conventions).
	wantKB := map[string]float64{
		"mnist": 2432, "acoustic": 1527, "stock": 31, "texture": 64,
		"tumor": 8, "cancer1": 24, "movielens": 1176, "netflix": 2854,
		"face": 7, "cancer2": 28,
	}
	for _, b := range Benchmarks {
		got := b.ModelKB()
		want := wantKB[b.Name]
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: model size %.1f KB, Table 1 says %.0f KB", b.Name, got, want)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("netflix")
	if err != nil || b.Family != FamilyCF {
		t.Fatalf("ByName(netflix) = %+v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
	if len(Names()) != 10 || Names()[0] != "mnist" {
		t.Errorf("Names() = %v", Names())
	}
	// Algorithm-family aliases resolve to a representative benchmark.
	for alias, want := range map[string]string{
		"logistic": "tumor", "linear": "stock", "svm": "face",
		"backprop": "mnist", "cf": "movielens",
	} {
		b, err := ByName(alias)
		if err != nil || b.Name != want {
			t.Errorf("ByName(%s) = %v, %v; want %s", alias, b.Name, err, want)
		}
	}
}

func TestAlgorithmGeometry(t *testing.T) {
	for _, b := range Benchmarks {
		alg := b.Algorithm(1)
		if alg.ModelSize() != b.ModelParams() {
			t.Errorf("%s: algorithm model size %d != registry %d", b.Name, alg.ModelSize(), b.ModelParams())
		}
		if alg.FeatureSize() != b.Features {
			t.Errorf("%s: feature size %d != registry %d", b.Name, alg.FeatureSize(), b.Features)
		}
	}
}

func TestScaledGeometryShrinks(t *testing.T) {
	for _, b := range Benchmarks {
		full := b.Algorithm(1)
		small := b.Algorithm(0.01)
		if small.ModelSize() >= full.ModelSize() {
			t.Errorf("%s: scale 0.01 did not shrink model (%d vs %d)",
				b.Name, small.ModelSize(), full.ModelSize())
		}
		if small.ModelSize() == 0 {
			t.Errorf("%s: degenerate scaled model", b.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	b, _ := ByName("face")
	alg := b.Algorithm(0.02)
	d1 := b.Generate(alg, 16, 7)
	d2 := b.Generate(alg, 16, 7)
	for i := range d1 {
		for j := range d1[i].X {
			if d1[i].X[j] != d2[i].X[j] {
				t.Fatalf("sample %d differs across identical generations", i)
			}
		}
		if d1[i].Y[0] != d2[i].Y[0] {
			t.Fatalf("label %d differs across identical generations", i)
		}
	}
	d3 := b.Generate(alg, 16, 8)
	same := true
	for i := range d1 {
		if d1[i].Y[0] != d3[i].Y[0] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical labels")
	}
}

func TestGeneratedDataIsLearnable(t *testing.T) {
	for _, b := range Benchmarks {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			alg := b.Algorithm(0.01)
			data := b.Generate(alg, 200, 1)
			model := alg.InitModel(newRNG(b.Name))
			cfg := ml.SGDConfig{LearningRate: b.DefaultLR(alg), MiniBatch: 50, Aggregator: dsl.AggAverage}
			initial := ml.MeanLoss(alg, model, data)
			res := ml.Train(alg, cfg, model, data, 2, 6)
			final := res.LossPerEpoch[len(res.LossPerEpoch)-1]
			if final >= initial {
				t.Errorf("loss did not improve: %g -> %g", initial, final)
			}
		})
	}
}

func TestCFSamplesAreOneHot(t *testing.T) {
	b, _ := ByName("movielens")
	alg := b.Algorithm(0.001).(*ml.CF)
	data := b.Generate(alg, 50, 3)
	for i, s := range data {
		uOnes, vOnes := 0, 0
		for j := 0; j < alg.NU; j++ {
			if s.X[j] != 0 {
				uOnes++
			}
		}
		for j := 0; j < alg.NV; j++ {
			if s.X[alg.NU+j] != 0 {
				vOnes++
			}
		}
		if uOnes != 1 || vOnes != 1 {
			t.Fatalf("sample %d: user ones %d, item ones %d", i, uOnes, vOnes)
		}
		if s.Y[0] < 0 {
			t.Fatalf("sample %d: negative rating %g", i, s.Y[0])
		}
	}
}

func TestSVMLabelsAreSigns(t *testing.T) {
	b, _ := ByName("cancer2")
	alg := b.Algorithm(0.01)
	for i, s := range b.Generate(alg, 64, 5) {
		if s.Y[0] != 1 && s.Y[0] != -1 {
			t.Fatalf("sample %d: label %g not in {-1, +1}", i, s.Y[0])
		}
	}
}

func TestLogRegLabelsAreBinary(t *testing.T) {
	b, _ := ByName("tumor")
	alg := b.Algorithm(0.01)
	ones := 0
	data := b.Generate(alg, 128, 5)
	for i, s := range data {
		if s.Y[0] != 0 && s.Y[0] != 1 {
			t.Fatalf("sample %d: label %g not in {0, 1}", i, s.Y[0])
		}
		if s.Y[0] == 1 {
			ones++
		}
	}
	if ones == 0 || ones == len(data) {
		t.Errorf("degenerate label distribution: %d/%d positive", ones, len(data))
	}
}

func newRNG(name string) *rand.Rand { return rand.New(rand.NewSource(seedFor(name, 42))) }
