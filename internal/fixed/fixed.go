// Package fixed implements the fixed-point arithmetic of the template
// accelerator's datapath. The PEs are built from DSP slices — integer
// multiply-accumulate units — and implement expensive nonlinearities with
// lookup tables (Section 5.1: "the non-linear unit is a look-up table that
// implements expensive operations like sigmoid, gaussian, divide, and
// logarithm"). The float64 simulator in package accel abstracts this away;
// this package models the real number format so quantization effects on
// training can be measured.
//
// The default format is Q16.16: a 32-bit word with 16 fractional bits, the
// common choice for TABLA-class statistical ML accelerators.
package fixed

import (
	"fmt"
	"math"
)

// Num is a raw fixed-point value. Arithmetic intermediates need headroom,
// so Num is 64-bit even though the datapath word is 32-bit: Format.clamp
// saturates results back into the word's range, as the DSP slices do.
type Num int64

// Format fixes the binary point and word width.
type Format struct {
	// FracBits is the number of fractional bits (16 for Q16.16).
	FracBits uint
	// WordBits is the datapath width (32 for the template's PEs).
	WordBits uint
}

// Q16 is the template datapath's default format.
var Q16 = Format{FracBits: 16, WordBits: 32}

// one returns the fixed-point representation of 1.0.
func (f Format) one() Num { return 1 << f.FracBits }

// limits returns the saturation bounds of the word.
func (f Format) limits() (lo, hi Num) {
	hi = Num(1)<<(f.WordBits-1) - 1
	return -hi - 1, hi
}

// clamp saturates to the word range (DSP-slice overflow behaviour is
// configured to saturate, not wrap, for learning workloads).
func (f Format) clamp(v Num) Num {
	lo, hi := f.limits()
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// FromFloat quantizes x (round to nearest, saturating).
func (f Format) FromFloat(x float64) Num {
	if math.IsNaN(x) {
		return 0
	}
	return f.clamp(Num(math.RoundToEven(x * float64(f.one()))))
}

// ToFloat converts back to float64.
func (f Format) ToFloat(v Num) float64 {
	return float64(v) / float64(f.one())
}

// Eps returns the quantization step.
func (f Format) Eps() float64 { return 1 / float64(f.one()) }

// Add returns a+b, saturating.
func (f Format) Add(a, b Num) Num { return f.clamp(a + b) }

// Sub returns a−b, saturating.
func (f Format) Sub(a, b Num) Num { return f.clamp(a - b) }

// Mul returns a·b with rounding, saturating — one DSP multiply plus the
// post-shift.
func (f Format) Mul(a, b Num) Num {
	prod := a * b
	// Round to nearest: add half an ulp before the shift.
	half := Num(1) << (f.FracBits - 1)
	if prod >= 0 {
		prod += half
	} else {
		prod -= half
	}
	return f.clamp(prod >> f.FracBits)
}

// Div returns a/b with rounding, saturating (the LUT-assisted reciprocal
// path in hardware; exact division here).
func (f Format) Div(a, b Num) Num {
	if b == 0 {
		_, hi := f.limits()
		if a < 0 {
			lo, _ := f.limits()
			return lo
		}
		return hi
	}
	num := a << f.FracBits
	q := num / b
	// Round toward nearest by examining the remainder.
	r := num % b
	if r != 0 {
		if (r < 0) == (b < 0) { // same sign: positive quotient direction
			if 2*abs(r) >= abs(b) {
				q++
			}
		} else {
			if 2*abs(r) >= abs(b) {
				q--
			}
		}
	}
	return f.clamp(q)
}

func abs(v Num) Num {
	if v < 0 {
		return -v
	}
	return v
}

// String formats the value in the Q notation.
func (f Format) String() string {
	return fmt.Sprintf("Q%d.%d", f.WordBits-f.FracBits, f.FracBits)
}

// LUT is a lookup table with linear interpolation over [Lo, Hi] — the PE's
// nonlinear unit. Inputs outside the range clamp to the edge entries, which
// is the right behaviour for the saturating functions (sigmoid, tanh,
// gaussian) the suite uses.
type LUT struct {
	fmtq    Format
	lo, hi  float64
	entries []Num
	scale   float64 // entries per unit of x
}

// NewLUT samples fn at n+1 points over [lo, hi].
func NewLUT(f Format, fn func(float64) float64, lo, hi float64, n int) *LUT {
	if n < 2 {
		n = 2
	}
	l := &LUT{fmtq: f, lo: lo, hi: hi, entries: make([]Num, n+1)}
	step := (hi - lo) / float64(n)
	for i := range l.entries {
		l.entries[i] = f.FromFloat(fn(lo + float64(i)*step))
	}
	l.scale = float64(n) / (hi - lo)
	return l
}

// Eval looks x up with linear interpolation.
func (l *LUT) Eval(x Num) Num {
	xf := l.fmtq.ToFloat(x)
	pos := (xf - l.lo) * l.scale
	if pos <= 0 {
		return l.entries[0]
	}
	if pos >= float64(len(l.entries)-1) {
		return l.entries[len(l.entries)-1]
	}
	i := int(pos)
	frac := pos - float64(i)
	a, b := l.entries[i], l.entries[i+1]
	return a + Num(frac*float64(b-a))
}

// Unit bundles the LUTs one PE's nonlinear unit holds. Entry counts follow
// the template's BRAM-backed 1024-entry tables.
type Unit struct {
	F        Format
	Sigmoid  *LUT
	Tanh     *LUT
	Gaussian *LUT
	Exp      *LUT
	Log      *LUT
	Sqrt     *LUT
}

// NewUnit builds the standard nonlinear unit for a format.
func NewUnit(f Format) *Unit {
	const n = 1024
	return &Unit{
		F:        f,
		Sigmoid:  NewLUT(f, func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }, -8, 8, n),
		Tanh:     NewLUT(f, math.Tanh, -4, 4, n),
		Gaussian: NewLUT(f, func(x float64) float64 { return math.Exp(-x * x) }, -4, 4, n),
		Exp:      NewLUT(f, math.Exp, -8, 8, n),
		Log:      NewLUT(f, math.Log, 1.0/256, 8, n),
		Sqrt:     NewLUT(f, math.Sqrt, 0, 16, n),
	}
}

// Vector helpers for fixed-point models.

// QuantizeVec converts a float vector to fixed point.
func (f Format) QuantizeVec(xs []float64) []Num {
	out := make([]Num, len(xs))
	for i, x := range xs {
		out[i] = f.FromFloat(x)
	}
	return out
}

// DequantizeVec converts back to floats.
func (f Format) DequantizeVec(vs []Num) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = f.ToFloat(v)
	}
	return out
}
