package fixed

import (
	"fmt"

	"repro/internal/dfg"
)

// Evaluator interprets a dataflow graph entirely in fixed-point arithmetic,
// dispatching nonlinear operations to the LUT unit — the numeric behaviour
// of the real datapath. It mirrors dfg.Graph.Eval, which is the exact-math
// (float64) reference.
type Evaluator struct {
	F    Format
	Unit *Unit
}

// NewEvaluator builds a fixed-point evaluator in the given format.
func NewEvaluator(f Format) *Evaluator {
	return &Evaluator{F: f, Unit: NewUnit(f)}
}

// Eval runs the graph over quantized bindings and returns dequantized
// gradient outputs.
func (ev *Evaluator) Eval(g *dfg.Graph, b dfg.Bindings) (map[string][]float64, error) {
	vals := make([]Num, len(g.Nodes))
	for _, n := range g.Nodes {
		v, err := ev.evalNode(n, vals, b)
		if err != nil {
			return nil, err
		}
		vals[n.ID] = v
	}
	out := make(map[string][]float64, len(g.Outputs))
	for name, nodes := range g.Outputs {
		vec := make([]float64, len(nodes))
		for i, n := range nodes {
			vec[i] = ev.F.ToFloat(vals[n.ID])
		}
		out[name] = vec
	}
	return out, nil
}

func (ev *Evaluator) evalNode(n *dfg.Node, vals []Num, b dfg.Bindings) (Num, error) {
	f := ev.F
	arg := func(i int) Num { return vals[n.Args[i].ID] }
	switch n.Op {
	case dfg.OpConst:
		return f.FromFloat(n.Const), nil
	case dfg.OpData:
		vec, ok := b.Data[n.Var]
		if !ok || n.Index >= len(vec) {
			return 0, fmt.Errorf("fixed: missing data binding %s[%d]", n.Var, n.Index)
		}
		return f.FromFloat(vec[n.Index]), nil
	case dfg.OpModel:
		vec, ok := b.Model[n.Var]
		if !ok || n.Index >= len(vec) {
			return 0, fmt.Errorf("fixed: missing model binding %s[%d]", n.Var, n.Index)
		}
		return f.FromFloat(vec[n.Index]), nil
	case dfg.OpAdd:
		return f.Add(arg(0), arg(1)), nil
	case dfg.OpSub:
		return f.Sub(arg(0), arg(1)), nil
	case dfg.OpMul:
		return f.Mul(arg(0), arg(1)), nil
	case dfg.OpDiv:
		return f.Div(arg(0), arg(1)), nil
	case dfg.OpNeg:
		return f.clamp(-arg(0)), nil
	case dfg.OpGT:
		return boolNum(f, arg(0) > arg(1)), nil
	case dfg.OpLT:
		return boolNum(f, arg(0) < arg(1)), nil
	case dfg.OpGE:
		return boolNum(f, arg(0) >= arg(1)), nil
	case dfg.OpLE:
		return boolNum(f, arg(0) <= arg(1)), nil
	case dfg.OpEQ:
		return boolNum(f, arg(0) == arg(1)), nil
	case dfg.OpNE:
		return boolNum(f, arg(0) != arg(1)), nil
	case dfg.OpSelect:
		if arg(0) != 0 {
			return arg(1), nil
		}
		return arg(2), nil
	case dfg.OpSigmoid:
		return ev.Unit.Sigmoid.Eval(arg(0)), nil
	case dfg.OpTanh:
		return ev.Unit.Tanh.Eval(arg(0)), nil
	case dfg.OpGaussian:
		return ev.Unit.Gaussian.Eval(arg(0)), nil
	case dfg.OpExp:
		return ev.Unit.Exp.Eval(arg(0)), nil
	case dfg.OpLog:
		return ev.Unit.Log.Eval(arg(0)), nil
	case dfg.OpSqrt:
		return ev.Unit.Sqrt.Eval(arg(0)), nil
	case dfg.OpRelu:
		if arg(0) > 0 {
			return arg(0), nil
		}
		return 0, nil
	case dfg.OpAbs:
		return abs(arg(0)), nil
	case dfg.OpSign:
		switch {
		case arg(0) > 0:
			return f.one(), nil
		case arg(0) < 0:
			return -f.one(), nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("fixed: unsupported op %s", n.Op)
}

func boolNum(f Format, b bool) Num {
	if b {
		return f.one()
	}
	return 0
}
