package fixed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/dsl"
	"repro/internal/ml"
)

func TestRoundTripProperty(t *testing.T) {
	f := Q16
	check := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 30000 {
			return true
		}
		back := f.ToFloat(f.FromFloat(x))
		return math.Abs(back-x) <= f.Eps()/2+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestArithmeticAccuracy(t *testing.T) {
	f := Q16
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 1000; i++ {
		a := rng.NormFloat64() * 10
		b := rng.NormFloat64() * 10
		qa, qb := f.FromFloat(a), f.FromFloat(b)
		if got, want := f.ToFloat(f.Add(qa, qb)), a+b; math.Abs(got-want) > 2*f.Eps() {
			t.Fatalf("add(%g,%g) = %g, want %g", a, b, got, want)
		}
		if got, want := f.ToFloat(f.Mul(qa, qb)), a*b; math.Abs(got-want) > (math.Abs(a)+math.Abs(b)+1)*f.Eps() {
			t.Fatalf("mul(%g,%g) = %g, want %g", a, b, got, want)
		}
		if b != 0 {
			// Error budget: quantizing b by δ perturbs a/b by |a/b²|·δ.
			budget := (math.Abs(a/b)*(1+1/math.Abs(b)) + 1) * f.Eps()
			if got, want := f.ToFloat(f.Div(qa, qb)), a/b; math.Abs(want) < 1000 &&
				math.Abs(got-want) > budget {
				t.Fatalf("div(%g,%g) = %g, want %g (budget %g)", a, b, got, want, budget)
			}
		}
	}
}

func TestSaturation(t *testing.T) {
	f := Q16
	lo, hi := f.limits()
	big := f.FromFloat(30000)
	if got := f.Mul(big, big); got != hi {
		t.Errorf("overflowing mul = %d, want saturation at %d", got, hi)
	}
	if got := f.Add(lo, -f.one()); got != lo {
		t.Errorf("underflowing add = %d, want saturation at %d", got, lo)
	}
	if got := f.Div(f.one(), 0); got != hi {
		t.Errorf("1/0 = %d, want +saturation", got)
	}
	if got := f.Div(-f.one(), 0); got != lo {
		t.Errorf("-1/0 = %d, want -saturation", got)
	}
	if got := f.FromFloat(math.NaN()); got != 0 {
		t.Errorf("NaN quantized to %d", got)
	}
}

func TestLUTAccuracy(t *testing.T) {
	f := Q16
	unit := NewUnit(f)
	for x := -6.0; x <= 6; x += 0.037 {
		want := 1 / (1 + math.Exp(-x))
		got := f.ToFloat(unit.Sigmoid.Eval(f.FromFloat(x)))
		if math.Abs(got-want) > 1e-3 {
			t.Fatalf("sigmoid(%g) = %g, want %g", x, got, want)
		}
	}
	// Out-of-range inputs clamp to the saturated edges.
	if got := f.ToFloat(unit.Sigmoid.Eval(f.FromFloat(100))); math.Abs(got-1) > 1e-3 {
		t.Errorf("sigmoid(100) = %g", got)
	}
	if got := f.ToFloat(unit.Sigmoid.Eval(f.FromFloat(-100))); math.Abs(got) > 1e-3 {
		t.Errorf("sigmoid(-100) = %g", got)
	}
}

func TestFormatString(t *testing.T) {
	if Q16.String() != "Q16.16" {
		t.Errorf("format = %s", Q16)
	}
}

// TestFixedEvalTracksFloatEval: the fixed-point DFG evaluation stays within
// quantization-scale error of the exact evaluation for every family.
func TestFixedEvalTracksFloatEval(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	ev := NewEvaluator(Q16)
	algs := []ml.Algorithm{
		&ml.LinearRegression{M: 12},
		&ml.LogisticRegression{M: 12},
		&ml.SVM{M: 12},
		&ml.MLP{In: 5, Hid: 4, Out: 2},
	}
	for _, alg := range algs {
		t.Run(alg.Name(), func(t *testing.T) {
			unit, err := dsl.ParseAndAnalyze(alg.DSLSource(), alg.DSLParams())
			if err != nil {
				t.Fatal(err)
			}
			g, err := dfg.Translate(unit)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 10; trial++ {
				model := alg.InitModel(rng)
				s := ml.Sample{X: make([]float64, alg.FeatureSize()), Y: make([]float64, alg.OutputSize())}
				for j := range s.X {
					s.X[j] = rng.NormFloat64()
				}
				s.Y[0] = 1
				bind := dfg.Bindings{Data: alg.PackSample(s), Model: alg.PackModel(model)}
				exact, err := g.Eval(bind)
				if err != nil {
					t.Fatal(err)
				}
				quant, err := ev.Eval(g, bind)
				if err != nil {
					t.Fatal(err)
				}
				for name, wv := range exact {
					for i := range wv {
						// Error budget: quantization noise accumulates along
						// the reduction; scale with the graph depth and the
						// value's magnitude.
						budget := 1e-3 * (1 + math.Abs(wv[i])) * float64(g.CriticalPath())
						if d := math.Abs(quant[name][i] - wv[i]); d > budget {
							t.Fatalf("trial %d: %s[%d]: fixed %g vs exact %g (|Δ|=%g > %g)",
								trial, name, i, quant[name][i], wv[i], d, budget)
						}
					}
				}
			}
		})
	}
}

// TestFixedPointTrainingConverges is the hardware-fidelity headline: SGD
// whose gradients come from the Q16.16 fixed-point datapath converges to a
// loss close to exact-arithmetic SGD.
func TestFixedPointTrainingConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	alg := &ml.LogisticRegression{M: 16}
	unit, err := dsl.ParseAndAnalyze(alg.DSLSource(), alg.DSLParams())
	if err != nil {
		t.Fatal(err)
	}
	g, err := dfg.Translate(unit)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(Q16)

	truth := make([]float64, alg.M)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	data := make([]ml.Sample, 300)
	for i := range data {
		x := make([]float64, alg.M)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := 0.0
		if ml.Dot(truth, x) > 0 {
			y = 1
		}
		data[i] = ml.Sample{X: x, Y: []float64{y}}
	}

	const lr = 0.1
	train := func(useFixed bool) float64 {
		model := make([]float64, alg.M)
		for epoch := 0; epoch < 4; epoch++ {
			for _, s := range data {
				var grad []float64
				bind := dfg.Bindings{Data: alg.PackSample(s), Model: alg.PackModel(model)}
				if useFixed {
					outs, err := ev.Eval(g, bind)
					if err != nil {
						t.Fatal(err)
					}
					grad = alg.UnpackGradient(outs)
				} else {
					outs, err := g.Eval(bind)
					if err != nil {
						t.Fatal(err)
					}
					grad = alg.UnpackGradient(outs)
				}
				ml.AXPY(-lr, grad, model)
			}
		}
		return ml.MeanLoss(alg, model, data)
	}
	exact := train(false)
	fixedLoss := train(true)
	if fixedLoss > 2*exact+0.05 {
		t.Errorf("fixed-point training loss %g far above exact %g", fixedLoss, exact)
	}
	initial := ml.MeanLoss(alg, make([]float64, alg.M), data)
	if fixedLoss >= initial/2 {
		t.Errorf("fixed-point training barely learned: %g -> %g", initial, fixedLoss)
	}
}

func TestQuantizeVecRoundTrip(t *testing.T) {
	f := Q16
	xs := []float64{0, 1.5, -2.25, 100.125}
	back := f.DequantizeVec(f.QuantizeVec(xs))
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > f.Eps() {
			t.Errorf("vec[%d]: %g -> %g", i, xs[i], back[i])
		}
	}
}
