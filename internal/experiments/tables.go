package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/dataset"
	"repro/internal/dsl"
	"repro/internal/planner"
)

// Table1 — the benchmark suite: algorithms, domains, model geometry, DSL
// lines of code, and dataset sizes, regenerated from the registry and the
// actual DSL programs.
func Table1() (Report, error) {
	rep := Report{
		ID:    "Table 1",
		Title: "Benchmarks, algorithms, application domains, and datasets",
		Header: []string{"name", "algorithm", "domain", "features", "topology",
			"model KB", "LoC", "# vectors", "data GB"},
	}
	for _, b := range dataset.Benchmarks {
		alg := b.Algorithm(1)
		prog, err := dsl.Parse(alg.DSLSource())
		if err != nil {
			return rep, err
		}
		topo := ""
		for i, d := range b.Topology {
			if i > 0 {
				topo += "x"
			}
			topo += fmt.Sprint(d)
		}
		rep.Rows = append(rep.Rows, []string{
			b.Name, string(b.Family), b.Domain,
			fmt.Sprint(b.Features), topo,
			fmt.Sprintf("%.0f", b.ModelKB()),
			fmt.Sprint(prog.LinesOfCode()),
			fmt.Sprint(b.NumVectors),
			fmt.Sprintf("%.1f", b.DataGB),
		})
	}
	rep.Summary = []string{
		"paper LoC range: 22-55 (this DSL's programs are parameterized, so one",
		"program serves both benchmarks of a family; LoC is the program's size)",
	}
	return rep, nil
}

// Table2 — the evaluation platforms.
func Table2() Report {
	rep := Report{
		ID:     "Table 2",
		Title:  "CPU, GPU, FPGA, and P-ASICs",
		Header: []string{"platform", "compute", "memory/BW", "TDP", "frequency", "technology"},
	}
	rep.Rows = append(rep.Rows,
		[]string{"Xeon E3-1275 v5", "4 cores", "32 GB DDR4", "80 W", "3.6 GHz", "14 nm"},
		[]string{"Tesla K40c", "2880 cores", "12 GB / 288 GB/s", "235 W", "875 MHz", "28 nm"},
	)
	for _, c := range []arch.ChipSpec{arch.UltraScalePlus, arch.PASICF, arch.PASICG} {
		compute := fmt.Sprintf("%d DSP slices", c.PEBudget)
		tech := "16 nm"
		if c.Kind == arch.PASIC {
			compute = fmt.Sprintf("%d PEs, %.0f mm²", c.PEBudget, c.AreaMM2)
			tech = fmt.Sprintf("%d nm", c.TechnologyNM)
		}
		rep.Rows = append(rep.Rows, []string{
			c.Name, compute,
			fmt.Sprintf("%d KB / %.1f GB/s", c.StorageKB, c.MemBandwidthGBps),
			fmt.Sprintf("%.0f W", c.TDPWatts),
			fmt.Sprintf("%.0f MHz", c.FrequencyMHz),
			tech,
		})
	}
	rep.Summary = []string{
		fmt.Sprintf("derived: UltraScale+ %d columns × %d rows max; P-ASIC-F %d cols; P-ASIC-G %d cols",
			arch.UltraScalePlus.Columns(), arch.UltraScalePlus.RowLimit(),
			arch.PASICF.Columns(), arch.PASICG.Columns()),
	}
	return rep
}

// Table3 — the Planner's chosen thread count and the FPGA resource
// utilization per benchmark.
func Table3(pl *Pipeline) (Report, error) {
	rep := Report{
		ID:    "Table 3",
		Title: "Number of threads and FPGA resource utilization",
		Header: []string{"name", "threads", "rows", "LUTs", "util",
			"FFs", "util", "BRAM KB", "util", "DSPs", "util"},
	}
	chip := arch.UltraScalePlus
	for _, b := range dataset.Benchmarks {
		pt, err := pl.Point(b, chip)
		if err != nil {
			return rep, err
		}
		g, err := benchGraph(b, probeScale(b))
		if err != nil {
			return rep, err
		}
		res := planner.EstimateResources(pt.Plan, g)
		luts, ffs, bram, dsps := res.Utilization(chip)
		rep.Rows = append(rep.Rows, []string{
			b.Name,
			fmt.Sprint(pt.Plan.Threads),
			fmt.Sprint(pt.Plan.TotalRows()),
			fmt.Sprint(res.LUTs), fmt.Sprintf("%.1f%%", 100*luts),
			fmt.Sprint(res.FlipFlops), fmt.Sprintf("%.1f%%", 100*ffs),
			fmt.Sprint(res.BRAMBytes / 1024), fmt.Sprintf("%.1f%%", 100*bram),
			fmt.Sprint(res.DSPs), fmt.Sprintf("%.1f%%", 100*dsps),
		})
	}
	rep.Summary = []string{
		"paper shape: compute-bound benchmarks (backprop, cf) use most of the",
		"fabric; bandwidth-bound ones use ~20% of LUTs/DSPs; BRAM is ~85-89%",
		"everywhere (the prefetch buffer absorbs what the datapath leaves)",
	}
	return rep, nil
}
