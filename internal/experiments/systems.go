package experiments

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/dataset"
	"repro/internal/platform"
	"repro/internal/sparksim"
)

// SystemTime decomposes a training run's wall time.
type SystemTime struct {
	// ComputeSeconds is the accelerator/CPU gradient-computation time.
	ComputeSeconds float64
	// CommSeconds is inter-node networking plus host-side aggregation and
	// framework overhead.
	CommSeconds float64
}

// Total returns compute + communication.
func (t SystemTime) Total() float64 { return t.ComputeSeconds + t.CommSeconds }

// Mini-batch semantics: per Section 2.2 of the paper, "the mini-batch size
// [b] is the amount of LOCAL data that is processed before each aggregation
// step" — so a cluster of N nodes consumes N·b samples per aggregation
// round, and one epoch takes V/(b·N) rounds. Both systems are charged the
// same number of rounds.
func aggregationsPerEpoch(b dataset.Benchmark, miniBatch, nodes int) float64 {
	return float64(b.NumVectors) / (float64(miniBatch) * float64(nodes))
}

// groupsFor picks the aggregation-tree fan-out for a cluster: one group up
// to four nodes, then more (the hierarchy exists "to avoid overwhelming a
// single Sigma node").
func groupsFor(nodes int) int {
	switch {
	case nodes <= 4:
		return 1
	case nodes <= 9:
		return 2
	default:
		return 4
	}
}

// exchangeBytes is the size of one partial-update exchange. Dense models
// ship whole; collaborative filtering's partial updates are sparse — a node
// only ever touches the factor rows of the users and items in its own data
// shard, so its exchanges are bounded both by the rows its mini-batch
// touched and by its shard's row population, moving as (row index, K
// values) records.
func exchangeBytes(b dataset.Benchmark, perNodeBatch, nodes int) int64 {
	modelBytes := int64(b.ModelParams()) * arch.WordBytes
	if b.Family != dataset.FamilyCF {
		return modelBytes
	}
	k := b.Topology[2]
	touched := int64(2*perNodeBatch) * int64(k+1) * arch.WordBytes
	shardRows := int64((b.Topology[0]+b.Topology[1])/nodes+1) * int64(k+1) * arch.WordBytes
	if shardRows < touched {
		touched = shardRows
	}
	if touched < modelBytes {
		return touched
	}
	return modelBytes
}

// CosmicSystem models a CoSMIC deployment: accelerator-equipped nodes under
// the specialized system software.
type CosmicSystem struct {
	Nodes     int
	MiniBatch int // per-node samples per aggregation (Section 2.2)
	Net       platform.NetworkSpec
	CPU       platform.CPUSpec
}

// NewCosmicSystem returns the paper's deployment defaults for a cluster of
// the given size.
func NewCosmicSystem(nodes int) CosmicSystem {
	return CosmicSystem{
		Nodes:     nodes,
		MiniBatch: DefaultMiniBatch,
		Net:       platform.GigabitEthernet,
		CPU:       platform.XeonE3,
	}
}

// EpochTime returns one training epoch's time for a benchmark whose
// accelerator cost is given by point.
func (s CosmicSystem) EpochTime(point BenchPoint) SystemTime {
	aggs := aggregationsPerEpoch(point.Bench, s.MiniBatch, s.Nodes)
	compute := point.BatchSeconds(s.MiniBatch)
	comm := platform.CosmicCommSeconds(s.Net, s.CPU,
		exchangeBytes(point.Bench, s.MiniBatch, s.Nodes), s.Nodes, groupsFor(s.Nodes))
	return SystemTime{
		ComputeSeconds: aggs * compute,
		CommSeconds:    aggs * comm,
	}
}

// GPUEpochTime returns one epoch's time for the GPU-accelerated CoSMIC
// system (the paper extends CoSMIC's runtime to drive GPUs; the system
// software side is identical).
func (s CosmicSystem) GPUEpochTime(b dataset.Benchmark) SystemTime {
	full, err := fullGeometry(b)
	if err != nil {
		return SystemTime{}
	}
	aggs := aggregationsPerEpoch(b, s.MiniBatch, s.Nodes)
	ops := int64(full.Ops) * int64(s.MiniBatch)
	bytes := platform.GPUBatchBytes(b.Family, full.DataWords, full.ModelWords, s.MiniBatch)
	compute := platform.GPUBatchSeconds(platform.TeslaK40, b.Family, ops, bytes)
	comm := platform.CosmicCommSeconds(s.Net, s.CPU,
		exchangeBytes(b, s.MiniBatch, s.Nodes), s.Nodes, groupsFor(s.Nodes))
	return SystemTime{
		ComputeSeconds: aggs * compute,
		CommSeconds:    aggs * comm,
	}
}

// SparkSystem models the baseline: Spark 2.1 + MLlib on CPU nodes.
type SparkSystem struct {
	Nodes     int
	MiniBatch int // per-node samples per aggregation, as for CoSMIC
	Cost      sparksim.CostModel
	Net       platform.NetworkSpec
}

// NewSparkSystem returns the paper's Spark deployment for a cluster size.
func NewSparkSystem(nodes int) SparkSystem {
	return SparkSystem{
		Nodes:     nodes,
		MiniBatch: DefaultMiniBatch,
		Cost:      sparksim.DefaultCostModel(nodes),
		Net:       platform.GigabitEthernet,
	}
}

// cpuNodeGemmFlops is the per-node sustained rate for the matrix-matrix
// heavy backpropagation benchmarks (OpenBLAS GEMM on 4 AVX2 cores).
const cpuNodeGemmFlops = 40e9

// dramBytesPerSecond bounds the element-wise families: BLAS-1 dot/axpy
// kernels stream operands from DRAM.
const dramBytesPerSecond = 25e9

// scanSecondsPerRow is the cost of MLlib's per-iteration RDD traversal —
// Spark's mini-batch sampling visits every row of every partition to select
// the batch, a well-known cost of GradientDescent.runMiniBatchSGD on large
// RDDs.
const scanSecondsPerRow = 25e-9

// EpochTime returns one training epoch's time under Spark: per aggregation
// round, a torrent broadcast of the weights, a treeAggregate stage pipeline
// (driver scheduling + task launches + the full-RDD sampling scan +
// gradient compute + dense-gradient shipping), and the driver update.
func (s SparkSystem) EpochTime(b dataset.Benchmark) SystemTime {
	full, err := fullGeometry(b)
	if err != nil {
		return SystemTime{}
	}
	aggs := aggregationsPerEpoch(b, s.MiniBatch, s.Nodes)
	modelBytes := int64(b.ModelParams()) * arch.WordBytes
	partitions := s.Nodes * s.Cost.CoresPerExecutor * 2
	slots := s.Nodes * s.Cost.CoresPerExecutor

	// Gradient compute for the round's N·b samples (gradient + loss).
	batch := s.MiniBatch * s.Nodes
	var compute float64
	switch b.Family {
	case dataset.FamilyBackprop:
		ops := float64(full.Ops) * float64(batch) * 2
		compute = ops / (cpuNodeGemmFlops * float64(s.Nodes))
	case dataset.FamilyCF:
		// Sparse gradient per rating: two K-wide rows in, two out.
		k := float64(b.Topology[2])
		bytes := float64(batch) * (6*k + 3) * 8
		compute = bytes / (dramBytesPerSecond * float64(s.Nodes))
	default:
		// Element-wise: x, w and the gradient stream per sample.
		bytes := float64(batch) * float64(full.DataWords) * 8 * 3
		compute = bytes / (dramBytesPerSecond * float64(s.Nodes))
	}

	// System software per round. Task launches serialize at the driver —
	// the well-known Spark driver bottleneck that erodes its scaling as
	// executors (and hence tasks) multiply.
	sched := 3 * s.Cost.StageLatency // treeAggregate stage pipeline
	tasks := float64(partitions) * s.Cost.TaskOverhead
	scan := float64(b.NumVectors) * scanSecondsPerRow / float64(slots)
	broadcast := 2 * float64(modelBytes) / s.Cost.NetworkBytesPerSecond // torrent
	// MLlib's treeAggregate ships dense gradient vectors per partition.
	shuffle := float64(int64(partitions)*modelBytes) / (s.Cost.NetworkBytesPerSecond * float64(s.Nodes))
	comm := sched + tasks + scan + broadcast + shuffle

	return SystemTime{
		ComputeSeconds: aggs * compute,
		CommSeconds:    aggs * comm,
	}
}

// geomean computes the geometric mean of positive values, the averaging
// the paper's "on average" speedups use.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	logSum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vals)))
}

// Speedup returns baseline/measured.
func Speedup(baseline, measured float64) float64 {
	if measured == 0 {
		return 0
	}
	return baseline / measured
}

// fmtX renders a speedup as "12.3x".
func fmtX(v float64) string { return fmt.Sprintf("%.1fx", v) }
